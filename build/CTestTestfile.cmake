# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[test_advanced]=] "/root/repo/build/test_advanced")
set_tests_properties([=[test_advanced]=] PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;33;add_test;/root/repo/CMakeLists.txt;0;")
add_test([=[test_consistency_matrix]=] "/root/repo/build/test_consistency_matrix")
set_tests_properties([=[test_consistency_matrix]=] PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;33;add_test;/root/repo/CMakeLists.txt;0;")
add_test([=[test_directory]=] "/root/repo/build/test_directory")
set_tests_properties([=[test_directory]=] PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;33;add_test;/root/repo/CMakeLists.txt;0;")
add_test([=[test_p_array]=] "/root/repo/build/test_p_array")
set_tests_properties([=[test_p_array]=] PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;33;add_test;/root/repo/CMakeLists.txt;0;")
add_test([=[test_p_associative]=] "/root/repo/build/test_p_associative")
set_tests_properties([=[test_p_associative]=] PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;33;add_test;/root/repo/CMakeLists.txt;0;")
add_test([=[test_p_graph]=] "/root/repo/build/test_p_graph")
set_tests_properties([=[test_p_graph]=] PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;33;add_test;/root/repo/CMakeLists.txt;0;")
add_test([=[test_p_list_vector]=] "/root/repo/build/test_p_list_vector")
set_tests_properties([=[test_p_list_vector]=] PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;33;add_test;/root/repo/CMakeLists.txt;0;")
add_test([=[test_p_sort]=] "/root/repo/build/test_p_sort")
set_tests_properties([=[test_p_sort]=] PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;33;add_test;/root/repo/CMakeLists.txt;0;")
add_test([=[test_runtime]=] "/root/repo/build/test_runtime")
set_tests_properties([=[test_runtime]=] PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;33;add_test;/root/repo/CMakeLists.txt;0;")
add_test([=[test_runtime_extra]=] "/root/repo/build/test_runtime_extra")
set_tests_properties([=[test_runtime_extra]=] PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;33;add_test;/root/repo/CMakeLists.txt;0;")
add_test([=[test_views_algorithms]=] "/root/repo/build/test_views_algorithms")
set_tests_properties([=[test_views_algorithms]=] PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;33;add_test;/root/repo/CMakeLists.txt;0;")
