file(REMOVE_RECURSE
  "CMakeFiles/bench_fig52_graph_partitions.dir/bench/bench_fig52_graph_partitions.cpp.o"
  "CMakeFiles/bench_fig52_graph_partitions.dir/bench/bench_fig52_graph_partitions.cpp.o.d"
  "bench_fig52_graph_partitions"
  "bench_fig52_graph_partitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig52_graph_partitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
