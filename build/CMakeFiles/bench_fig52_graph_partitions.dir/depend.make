# Empty dependencies file for bench_fig52_graph_partitions.
# This may be replaced when dependencies are built.
