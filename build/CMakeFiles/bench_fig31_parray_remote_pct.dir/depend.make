# Empty dependencies file for bench_fig31_parray_remote_pct.
# This may be replaced when dependencies are built.
