file(REMOVE_RECURSE
  "CMakeFiles/bench_fig31_parray_remote_pct.dir/bench/bench_fig31_parray_remote_pct.cpp.o"
  "CMakeFiles/bench_fig31_parray_remote_pct.dir/bench/bench_fig31_parray_remote_pct.cpp.o.d"
  "bench_fig31_parray_remote_pct"
  "bench_fig31_parray_remote_pct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig31_parray_remote_pct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
