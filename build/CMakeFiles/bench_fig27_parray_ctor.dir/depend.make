# Empty dependencies file for bench_fig27_parray_ctor.
# This may be replaced when dependencies are built.
