file(REMOVE_RECURSE
  "CMakeFiles/bench_fig27_parray_ctor.dir/bench/bench_fig27_parray_ctor.cpp.o"
  "CMakeFiles/bench_fig27_parray_ctor.dir/bench/bench_fig27_parray_ctor.cpp.o.d"
  "bench_fig27_parray_ctor"
  "bench_fig27_parray_ctor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig27_parray_ctor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
