file(REMOVE_RECURSE
  "CMakeFiles/bench_fig40_algos_array_vs_list.dir/bench/bench_fig40_algos_array_vs_list.cpp.o"
  "CMakeFiles/bench_fig40_algos_array_vs_list.dir/bench/bench_fig40_algos_array_vs_list.cpp.o.d"
  "bench_fig40_algos_array_vs_list"
  "bench_fig40_algos_array_vs_list.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig40_algos_array_vs_list.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
