# Empty dependencies file for bench_fig40_algos_array_vs_list.
# This may be replaced when dependencies are built.
