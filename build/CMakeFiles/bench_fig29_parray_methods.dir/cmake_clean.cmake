file(REMOVE_RECURSE
  "CMakeFiles/bench_fig29_parray_methods.dir/bench/bench_fig29_parray_methods.cpp.o"
  "CMakeFiles/bench_fig29_parray_methods.dir/bench/bench_fig29_parray_methods.cpp.o.d"
  "bench_fig29_parray_methods"
  "bench_fig29_parray_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig29_parray_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
