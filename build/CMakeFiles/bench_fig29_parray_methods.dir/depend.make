# Empty dependencies file for bench_fig29_parray_methods.
# This may be replaced when dependencies are built.
