file(REMOVE_RECURSE
  "CMakeFiles/example_heat_stencil.dir/examples/heat_stencil.cpp.o"
  "CMakeFiles/example_heat_stencil.dir/examples/heat_stencil.cpp.o.d"
  "example_heat_stencil"
  "example_heat_stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_heat_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
