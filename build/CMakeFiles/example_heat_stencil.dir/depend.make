# Empty dependencies file for example_heat_stencil.
# This may be replaced when dependencies are built.
