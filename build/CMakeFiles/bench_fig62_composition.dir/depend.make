# Empty dependencies file for bench_fig62_composition.
# This may be replaced when dependencies are built.
