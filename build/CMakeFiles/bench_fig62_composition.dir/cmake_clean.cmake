file(REMOVE_RECURSE
  "CMakeFiles/bench_fig62_composition.dir/bench/bench_fig62_composition.cpp.o"
  "CMakeFiles/bench_fig62_composition.dir/bench/bench_fig62_composition.cpp.o.d"
  "bench_fig62_composition"
  "bench_fig62_composition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig62_composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
