file(REMOVE_RECURSE
  "CMakeFiles/bench_fig51_find_sources.dir/bench/bench_fig51_find_sources.cpp.o"
  "CMakeFiles/bench_fig51_find_sources.dir/bench/bench_fig51_find_sources.cpp.o.d"
  "bench_fig51_find_sources"
  "bench_fig51_find_sources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig51_find_sources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
