# Empty dependencies file for bench_fig51_find_sources.
# This may be replaced when dependencies are built.
