# Empty dependencies file for test_views_algorithms.
# This may be replaced when dependencies are built.
