file(REMOVE_RECURSE
  "CMakeFiles/test_views_algorithms.dir/tests/test_views_algorithms.cpp.o"
  "CMakeFiles/test_views_algorithms.dir/tests/test_views_algorithms.cpp.o.d"
  "test_views_algorithms"
  "test_views_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_views_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
