# Empty dependencies file for example_euler_tour_app.
# This may be replaced when dependencies are built.
