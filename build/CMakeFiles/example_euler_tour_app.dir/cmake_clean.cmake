file(REMOVE_RECURSE
  "CMakeFiles/example_euler_tour_app.dir/examples/euler_tour_app.cpp.o"
  "CMakeFiles/example_euler_tour_app.dir/examples/euler_tour_app.cpp.o.d"
  "example_euler_tour_app"
  "example_euler_tour_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_euler_tour_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
