# Empty dependencies file for bench_fig56_pagerank.
# This may be replaced when dependencies are built.
