file(REMOVE_RECURSE
  "CMakeFiles/bench_fig56_pagerank.dir/bench/bench_fig56_pagerank.cpp.o"
  "CMakeFiles/bench_fig56_pagerank.dir/bench/bench_fig56_pagerank.cpp.o.d"
  "bench_fig56_pagerank"
  "bench_fig56_pagerank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig56_pagerank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
