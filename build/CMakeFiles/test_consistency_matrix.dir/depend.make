# Empty dependencies file for test_consistency_matrix.
# This may be replaced when dependencies are built.
