file(REMOVE_RECURSE
  "CMakeFiles/test_consistency_matrix.dir/tests/test_consistency_matrix.cpp.o"
  "CMakeFiles/test_consistency_matrix.dir/tests/test_consistency_matrix.cpp.o.d"
  "test_consistency_matrix"
  "test_consistency_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_consistency_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
