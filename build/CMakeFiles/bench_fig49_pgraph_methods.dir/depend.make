# Empty dependencies file for bench_fig49_pgraph_methods.
# This may be replaced when dependencies are built.
