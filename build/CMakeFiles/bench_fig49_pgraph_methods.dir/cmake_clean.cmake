file(REMOVE_RECURSE
  "CMakeFiles/bench_fig49_pgraph_methods.dir/bench/bench_fig49_pgraph_methods.cpp.o"
  "CMakeFiles/bench_fig49_pgraph_methods.dir/bench/bench_fig49_pgraph_methods.cpp.o.d"
  "bench_fig49_pgraph_methods"
  "bench_fig49_pgraph_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig49_pgraph_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
