# Empty dependencies file for test_p_graph.
# This may be replaced when dependencies are built.
