file(REMOVE_RECURSE
  "CMakeFiles/test_p_graph.dir/tests/test_p_graph.cpp.o"
  "CMakeFiles/test_p_graph.dir/tests/test_p_graph.cpp.o.d"
  "test_p_graph"
  "test_p_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_p_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
