file(REMOVE_RECURSE
  "CMakeFiles/bench_fig28_parray_local.dir/bench/bench_fig28_parray_local.cpp.o"
  "CMakeFiles/bench_fig28_parray_local.dir/bench/bench_fig28_parray_local.cpp.o.d"
  "bench_fig28_parray_local"
  "bench_fig28_parray_local.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig28_parray_local.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
