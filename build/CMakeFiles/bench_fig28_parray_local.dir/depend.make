# Empty dependencies file for bench_fig28_parray_local.
# This may be replaced when dependencies are built.
