file(REMOVE_RECURSE
  "CMakeFiles/bench_fig41_placement.dir/bench/bench_fig41_placement.cpp.o"
  "CMakeFiles/bench_fig41_placement.dir/bench/bench_fig41_placement.cpp.o.d"
  "bench_fig41_placement"
  "bench_fig41_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig41_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
