# Empty dependencies file for bench_fig41_placement.
# This may be replaced when dependencies are built.
