# Empty dependencies file for bench_fig30_parray_sync_async.
# This may be replaced when dependencies are built.
