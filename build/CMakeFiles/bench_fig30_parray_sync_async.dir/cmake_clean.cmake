file(REMOVE_RECURSE
  "CMakeFiles/bench_fig30_parray_sync_async.dir/bench/bench_fig30_parray_sync_async.cpp.o"
  "CMakeFiles/bench_fig30_parray_sync_async.dir/bench/bench_fig30_parray_sync_async.cpp.o.d"
  "bench_fig30_parray_sync_async"
  "bench_fig30_parray_sync_async.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig30_parray_sync_async.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
