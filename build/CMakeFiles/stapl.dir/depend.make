# Empty dependencies file for stapl.
# This may be replaced when dependencies are built.
