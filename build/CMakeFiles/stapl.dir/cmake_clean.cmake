file(REMOVE_RECURSE
  "CMakeFiles/stapl.dir/src/runtime/runtime.cpp.o"
  "CMakeFiles/stapl.dir/src/runtime/runtime.cpp.o.d"
  "libstapl.a"
  "libstapl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stapl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
