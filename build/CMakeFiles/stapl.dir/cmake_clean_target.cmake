file(REMOVE_RECURSE
  "libstapl.a"
)
