file(REMOVE_RECURSE
  "CMakeFiles/test_p_array.dir/tests/test_p_array.cpp.o"
  "CMakeFiles/test_p_array.dir/tests/test_p_array.cpp.o.d"
  "test_p_array"
  "test_p_array.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_p_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
