# Empty dependencies file for test_p_array.
# This may be replaced when dependencies are built.
