# Empty dependencies file for bench_fig33_parray_algorithms.
# This may be replaced when dependencies are built.
