# Empty dependencies file for bench_fig42_list_vs_vector.
# This may be replaced when dependencies are built.
