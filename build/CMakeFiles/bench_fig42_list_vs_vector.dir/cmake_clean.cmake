file(REMOVE_RECURSE
  "CMakeFiles/bench_fig42_list_vs_vector.dir/bench/bench_fig42_list_vs_vector.cpp.o"
  "CMakeFiles/bench_fig42_list_vs_vector.dir/bench/bench_fig42_list_vs_vector.cpp.o.d"
  "bench_fig42_list_vs_vector"
  "bench_fig42_list_vs_vector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig42_list_vs_vector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
