# Empty dependencies file for bench_fig32_parray_local_remote.
# This may be replaced when dependencies are built.
