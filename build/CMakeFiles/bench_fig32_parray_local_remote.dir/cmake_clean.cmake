file(REMOVE_RECURSE
  "CMakeFiles/bench_fig32_parray_local_remote.dir/bench/bench_fig32_parray_local_remote.cpp.o"
  "CMakeFiles/bench_fig32_parray_local_remote.dir/bench/bench_fig32_parray_local_remote.cpp.o.d"
  "bench_fig32_parray_local_remote"
  "bench_fig32_parray_local_remote.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig32_parray_local_remote.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
