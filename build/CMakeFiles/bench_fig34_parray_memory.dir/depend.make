# Empty dependencies file for bench_fig34_parray_memory.
# This may be replaced when dependencies are built.
