file(REMOVE_RECURSE
  "CMakeFiles/bench_fig34_parray_memory.dir/bench/bench_fig34_parray_memory.cpp.o"
  "CMakeFiles/bench_fig34_parray_memory.dir/bench/bench_fig34_parray_memory.cpp.o.d"
  "bench_fig34_parray_memory"
  "bench_fig34_parray_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig34_parray_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
