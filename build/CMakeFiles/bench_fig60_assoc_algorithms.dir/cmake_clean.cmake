file(REMOVE_RECURSE
  "CMakeFiles/bench_fig60_assoc_algorithms.dir/bench/bench_fig60_assoc_algorithms.cpp.o"
  "CMakeFiles/bench_fig60_assoc_algorithms.dir/bench/bench_fig60_assoc_algorithms.cpp.o.d"
  "bench_fig60_assoc_algorithms"
  "bench_fig60_assoc_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig60_assoc_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
