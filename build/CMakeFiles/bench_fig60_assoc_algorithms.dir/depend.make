# Empty dependencies file for bench_fig60_assoc_algorithms.
# This may be replaced when dependencies are built.
