file(REMOVE_RECURSE
  "CMakeFiles/test_p_associative.dir/tests/test_p_associative.cpp.o"
  "CMakeFiles/test_p_associative.dir/tests/test_p_associative.cpp.o.d"
  "test_p_associative"
  "test_p_associative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_p_associative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
