# Empty dependencies file for test_p_associative.
# This may be replaced when dependencies are built.
