file(REMOVE_RECURSE
  "CMakeFiles/bench_fig53_graph_algorithms.dir/bench/bench_fig53_graph_algorithms.cpp.o"
  "CMakeFiles/bench_fig53_graph_algorithms.dir/bench/bench_fig53_graph_algorithms.cpp.o.d"
  "bench_fig53_graph_algorithms"
  "bench_fig53_graph_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig53_graph_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
