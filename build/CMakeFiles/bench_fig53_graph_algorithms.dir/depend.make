# Empty dependencies file for bench_fig53_graph_algorithms.
# This may be replaced when dependencies are built.
