file(REMOVE_RECURSE
  "CMakeFiles/test_advanced.dir/tests/test_advanced.cpp.o"
  "CMakeFiles/test_advanced.dir/tests/test_advanced.cpp.o.d"
  "test_advanced"
  "test_advanced.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_advanced.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
