# Empty dependencies file for test_advanced.
# This may be replaced when dependencies are built.
