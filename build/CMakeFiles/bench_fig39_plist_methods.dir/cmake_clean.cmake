file(REMOVE_RECURSE
  "CMakeFiles/bench_fig39_plist_methods.dir/bench/bench_fig39_plist_methods.cpp.o"
  "CMakeFiles/bench_fig39_plist_methods.dir/bench/bench_fig39_plist_methods.cpp.o.d"
  "bench_fig39_plist_methods"
  "bench_fig39_plist_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig39_plist_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
