# Empty dependencies file for bench_fig39_plist_methods.
# This may be replaced when dependencies are built.
