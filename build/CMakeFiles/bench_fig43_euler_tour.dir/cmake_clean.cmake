file(REMOVE_RECURSE
  "CMakeFiles/bench_fig43_euler_tour.dir/bench/bench_fig43_euler_tour.cpp.o"
  "CMakeFiles/bench_fig43_euler_tour.dir/bench/bench_fig43_euler_tour.cpp.o.d"
  "bench_fig43_euler_tour"
  "bench_fig43_euler_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig43_euler_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
