# Empty dependencies file for bench_fig43_euler_tour.
# This may be replaced when dependencies are built.
