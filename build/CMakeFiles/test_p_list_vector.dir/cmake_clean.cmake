file(REMOVE_RECURSE
  "CMakeFiles/test_p_list_vector.dir/tests/test_p_list_vector.cpp.o"
  "CMakeFiles/test_p_list_vector.dir/tests/test_p_list_vector.cpp.o.d"
  "test_p_list_vector"
  "test_p_list_vector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_p_list_vector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
