# Empty dependencies file for test_p_list_vector.
# This may be replaced when dependencies are built.
