# Empty dependencies file for bench_fig44_et_applications.
# This may be replaced when dependencies are built.
