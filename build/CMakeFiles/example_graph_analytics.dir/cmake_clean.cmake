file(REMOVE_RECURSE
  "CMakeFiles/example_graph_analytics.dir/examples/graph_analytics.cpp.o"
  "CMakeFiles/example_graph_analytics.dir/examples/graph_analytics.cpp.o.d"
  "example_graph_analytics"
  "example_graph_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_graph_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
