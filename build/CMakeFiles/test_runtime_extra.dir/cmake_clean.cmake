file(REMOVE_RECURSE
  "CMakeFiles/test_runtime_extra.dir/tests/test_runtime_extra.cpp.o"
  "CMakeFiles/test_runtime_extra.dir/tests/test_runtime_extra.cpp.o.d"
  "test_runtime_extra"
  "test_runtime_extra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
