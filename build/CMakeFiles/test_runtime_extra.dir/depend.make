# Empty dependencies file for test_runtime_extra.
# This may be replaced when dependencies are built.
