# Empty dependencies file for bench_fig59_mapreduce.
# This may be replaced when dependencies are built.
