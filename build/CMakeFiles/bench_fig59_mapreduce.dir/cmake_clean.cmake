file(REMOVE_RECURSE
  "CMakeFiles/bench_fig59_mapreduce.dir/bench/bench_fig59_mapreduce.cpp.o"
  "CMakeFiles/bench_fig59_mapreduce.dir/bench/bench_fig59_mapreduce.cpp.o.d"
  "bench_fig59_mapreduce"
  "bench_fig59_mapreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig59_mapreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
