# Empty dependencies file for test_p_sort.
# This may be replaced when dependencies are built.
