file(REMOVE_RECURSE
  "CMakeFiles/test_p_sort.dir/tests/test_p_sort.cpp.o"
  "CMakeFiles/test_p_sort.dir/tests/test_p_sort.cpp.o.d"
  "test_p_sort"
  "test_p_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_p_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
