// Tests for associative pContainers (Ch. XII): pMap/pMultiMap/pHashMap and
// pSet/pMultiSet/pHashSet, value-based vs hashed partitions, and the
// map_view bridge into the generic algorithms.

#include "algorithms/p_algorithms.hpp"
#include "containers/p_associative.hpp"

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <string>

namespace {

using namespace stapl;

class PAssocTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(PAssocTest, MapInsertFindErase)
{
  execute(GetParam(), [] {
    p_map<int, std::string> pm;
    if (this_location() == 0) {
      pm.insert_async(1, "one");
      pm.insert_async(2, "two");
      pm.insert_async(42, "answer");
    }
    rmi_fence();
    EXPECT_EQ(pm.size(), 3u);
    auto [v, found] = pm.find_val(42);
    EXPECT_TRUE(found);
    EXPECT_EQ(v, "answer");
    auto [v2, found2] = pm.find_val(99);
    EXPECT_FALSE(found2);
    EXPECT_TRUE(pm.contains(1));
    rmi_fence();
    if (this_location() == 0)
      pm.erase_async(1);
    rmi_fence();
    EXPECT_FALSE(pm.contains(1));
    EXPECT_EQ(pm.size(), 2u);
    rmi_fence();
  });
}

TEST_P(PAssocTest, UniqueInsertSemantics)
{
  execute(GetParam(), [] {
    p_map<int, int> pm;
    // Everyone tries to insert the same key; exactly one wins.
    bool const mine = pm.insert(7, static_cast<int>(this_location()));
    auto const winners =
        allreduce(static_cast<int>(mine), std::plus<>{});
    EXPECT_EQ(winners, 1);
    EXPECT_EQ(pm.size(), 1u);
    rmi_fence();
  });
}

TEST_P(PAssocTest, SplitPhaseFind)
{
  execute(GetParam(), [] {
    p_hash_map<int, double> pm;
    if (this_location() == 0)
      for (int k = 0; k < 20; ++k)
        pm.insert_async(k, k * 0.5);
    rmi_fence();
    std::vector<pc_future<std::pair<double, bool>>> futs;
    for (int k = 0; k < 20; ++k)
      futs.push_back(pm.split_phase_find(k));
    for (int k = 0; k < 20; ++k) {
      auto [v, found] = futs[static_cast<std::size_t>(k)].get();
      EXPECT_TRUE(found);
      EXPECT_DOUBLE_EQ(v, k * 0.5);
    }
    rmi_fence();
  });
}

TEST_P(PAssocTest, ApplyAsyncAccumulates)
{
  execute(GetParam(), [] {
    p_hash_map<std::string, int> pm;
    // Every location increments the same two words many times (the word
    // count kernel of Ch. XII.C.1).
    for (int i = 0; i < 10; ++i) {
      pm.apply_async("alpha", [](int& c) { ++c; });
      if (i % 2 == 0)
        pm.apply_async("beta", [](int& c) { ++c; });
    }
    rmi_fence();
    EXPECT_EQ(pm.find_val("alpha").first,
              10 * static_cast<int>(num_locations()));
    EXPECT_EQ(pm.find_val("beta").first,
              5 * static_cast<int>(num_locations()));
    EXPECT_EQ(pm.size(), 2u);
    rmi_fence();
  });
}

TEST_P(PAssocTest, MultimapKeepsDuplicates)
{
  execute(GetParam(), [] {
    p_multimap<int, int> pm;
    pm.insert_async(5, static_cast<int>(this_location()));
    pm.insert_async(5, static_cast<int>(this_location()) + 100);
    rmi_fence();
    EXPECT_EQ(pm.count(5), 2 * num_locations());
    EXPECT_EQ(pm.size(), 2 * num_locations());
    rmi_fence();
  });
}

TEST_P(PAssocTest, SetBasics)
{
  execute(GetParam(), [] {
    p_set<int> ps;
    // All locations insert overlapping ranges; set keeps unique keys.
    for (int k = 0; k < 30; ++k)
      ps.insert_async(k);
    rmi_fence();
    EXPECT_EQ(ps.size(), 30u);
    EXPECT_TRUE(ps.contains(17));
    EXPECT_FALSE(ps.contains(31));
    EXPECT_EQ(ps.count(3), 1u);
    rmi_fence();
    if (this_location() == 0)
      ps.erase_async(17);
    rmi_fence();
    EXPECT_FALSE(ps.contains(17));
    rmi_fence();
  });
}

TEST_P(PAssocTest, MultisetCounts)
{
  execute(GetParam(), [] {
    p_multiset<int> ps;
    ps.insert_async(9);
    ps.insert_async(9);
    rmi_fence();
    EXPECT_EQ(ps.count(9), 2 * num_locations());
    rmi_fence();
  });
}

TEST_P(PAssocTest, HashSetLargeRandom)
{
  execute(GetParam(), [] {
    p_hash_set<long> ps;
    std::mt19937 gen(7); // same stream everywhere: duplicates across locs
    std::set<long> ref;
    for (int i = 0; i < 300; ++i) {
      long const k = static_cast<long>(gen() % 500);
      ps.insert_async(k);
      ref.insert(k);
    }
    rmi_fence();
    EXPECT_EQ(ps.size(), ref.size());
    for (long k : {0L, 250L, 499L})
      EXPECT_EQ(ps.contains(k), ref.count(k) != 0);
    rmi_fence();
  });
}

TEST_P(PAssocTest, ValuePartitionRangesKeys)
{
  execute(GetParam(), [] {
    using VP = value_partition<int>;
    p_map<int, int, VP> pm(VP::uniform(0, 1000, num_locations()));
    if (this_location() == 0)
      for (int k = 0; k < 1000; k += 10)
        pm.insert_async(k, k);
    rmi_fence();
    EXPECT_EQ(pm.size(), 100u);
    // Value partition keeps key ranges together: every local key must fall
    // into this location's contiguous range (sorted associative, Fig. 58).
    auto local = pm.local_gids();
    if (!local.empty()) {
      auto const [mn, mx] = std::minmax_element(local.begin(), local.end());
      // Range width for uniform partition over [0,1000).
      int const width = 1000 / static_cast<int>(num_locations());
      EXPECT_LE(*mx - *mn, width + 1);
    }
    EXPECT_EQ(pm.find_val(500).first, 500);
    rmi_fence();
  });
}

TEST_P(PAssocTest, GenericAlgorithmsOverMapView)
{
  execute(GetParam(), [] {
    p_hash_map<int, long> pm;
    if (this_location() == 0)
      for (int k = 0; k < 64; ++k)
        pm.insert_async(k, 1);
    rmi_fence();
    map_view mv(pm);
    EXPECT_EQ(p_accumulate(mv, 0L), 64L);
    p_for_each(mv, [](long& v) { v += 2; });
    EXPECT_EQ(p_accumulate(mv, 0L), 64L * 3);
    EXPECT_EQ(p_count_if(mv, [](long v) { return v == 3; }), 64u);
    rmi_fence();
  });
}

TEST_P(PAssocTest, ClearEmptiesContainer)
{
  execute(GetParam(), [] {
    p_hash_map<int, int> pm;
    pm.insert_async(static_cast<int>(this_location()), 1);
    rmi_fence();
    EXPECT_EQ(pm.size(), num_locations());
    pm.clear();
    EXPECT_TRUE(pm.empty());
    rmi_fence();
  });
}

INSTANTIATE_TEST_SUITE_P(Locations, PAssocTest, ::testing::Values(1, 2, 4));

} // namespace
