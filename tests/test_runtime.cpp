// Unit tests for the RTS work-alike: SPMD execution, p_object registration,
// async/sync/split-phase RMI, ordering guarantees, fence termination
// detection, collectives and transports (dissertation Ch. III.B, VII.B).

#include "runtime/runtime.hpp"
#include "runtime/serialization.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <random>
#include <string>
#include <vector>

namespace {

using namespace stapl;

/// Minimal shared counter object used to exercise the RMI layer.
class counter_object : public p_object {
 public:
  void add(int v) { m_value += v; }
  [[nodiscard]] int get() const { return m_value; }
  void append(int v) { m_log.push_back(v); }
  [[nodiscard]] std::vector<int> const& log() const { return m_log; }

 private:
  int m_value = 0;
  std::vector<int> m_log;
};

TEST(Runtime, SpmdLaunchAndIds)
{
  for (unsigned p : {1u, 2u, 4u, 7u}) {
    std::atomic<unsigned> seen{0};
    execute(p, [&] {
      EXPECT_LT(this_location(), p);
      EXPECT_EQ(num_locations(), p);
      seen.fetch_add(1);
    });
    EXPECT_EQ(seen.load(), p);
  }
}

TEST(Runtime, ExceptionPropagates)
{
  EXPECT_THROW(execute(2,
                       [] {
                         if (this_location() == 1)
                           throw std::runtime_error("boom");
                       }),
               std::runtime_error);
}

TEST(Runtime, CollectiveHandlesAgree)
{
  execute(4, [] {
    counter_object a;
    counter_object b;
    auto ha = allgather(a.get_handle());
    auto hb = allgather(b.get_handle());
    for (auto h : ha)
      EXPECT_EQ(h, a.get_handle());
    for (auto h : hb)
      EXPECT_EQ(h, b.get_handle());
    EXPECT_NE(a.get_handle(), b.get_handle());
    rmi_fence();
  });
}

TEST(Runtime, AsyncRmiDeliveredByFence)
{
  execute(4, [] {
    counter_object c;
    // Everyone increments the counter on location 0, ten times.
    for (int i = 0; i < 10; ++i)
      async_rmi<counter_object>(0, c.get_handle(), &counter_object::add, 1);
    rmi_fence();
    if (this_location() == 0)
      EXPECT_EQ(c.get(), 10 * static_cast<int>(num_locations()));
    rmi_fence();
  });
}

TEST(Runtime, AsyncOrderingPerSourceDestination)
{
  // Requests from one location to another execute in invocation order
  // (the RTS in-order guarantee of Ch. III.B).
  execute(3, [] {
    counter_object c;
    location_id const dest = (this_location() + 1) % num_locations();
    for (int i = 0; i < 200; ++i)
      async_rmi<counter_object>(dest, c.get_handle(), &counter_object::append,
                                i);
    rmi_fence();
    // Each location receives from exactly one source; the log must be the
    // exact sequence 0..199.
    ASSERT_EQ(c.log().size(), 200u);
    for (int i = 0; i < 200; ++i)
      EXPECT_EQ(c.log()[static_cast<std::size_t>(i)], i);
    rmi_fence();
  });
}

TEST(Runtime, SyncRmiRoundTrip)
{
  execute(4, [] {
    counter_object c;
    if (this_location() == 0)
      c.add(41);
    rmi_fence();
    int const v =
        sync_rmi<counter_object>(0, c.get_handle(), &counter_object::get);
    EXPECT_EQ(v, 41);
    rmi_fence();
  });
}

TEST(Runtime, SyncRmiConcurrentCrossTraffic)
{
  // All locations synchronously query all others simultaneously; progress
  // must be driven while blocked (no deadlock).
  execute(4, [] {
    counter_object c;
    c.add(static_cast<int>(this_location()) + 100);
    rmi_fence();
    for (location_id l = 0; l < num_locations(); ++l) {
      int const v =
          sync_rmi<counter_object>(l, c.get_handle(), &counter_object::get);
      EXPECT_EQ(v, static_cast<int>(l) + 100);
    }
    rmi_fence();
  });
}

TEST(Runtime, SplitPhaseFuture)
{
  execute(4, [] {
    counter_object c;
    c.add(static_cast<int>(this_location()));
    rmi_fence();
    location_id const dest = (this_location() + 1) % num_locations();
    auto fut =
        opaque_rmi<counter_object>(dest, c.get_handle(), &counter_object::get);
    EXPECT_TRUE(fut.valid());
    EXPECT_EQ(fut.get(), static_cast<int>(dest));
    rmi_fence();
  });
}

TEST(Runtime, SplitPhaseReadyAfterFence)
{
  // Ch. VII.B: the acknowledgment of a split-phase method is received at the
  // latest when a fence completes.
  execute(2, [] {
    counter_object c;
    c.add(7);
    rmi_fence();
    auto fut = opaque_rmi<counter_object>(1 - this_location(), c.get_handle(),
                                          &counter_object::get);
    rmi_fence();
    EXPECT_TRUE(fut.is_ready());
    EXPECT_EQ(fut.get(), 7);
    rmi_fence();
  });
}

TEST(Runtime, FenceTerminationWithCascadingMessages)
{
  // A handler that re-sends: fence must not return until the whole cascade
  // has drained (termination detection, not a plain barrier).
  struct cascade : p_object {
    void bounce(int hops)
    {
      ++received;
      if (hops > 0)
        async_rmi<cascade>((get_location_id() + 1) % get_num_locations(),
                           get_handle(), &cascade::bounce, hops - 1);
    }
    int received = 0;
  };

  execute(4, [] {
    cascade c;
    if (this_location() == 0)
      async_rmi<cascade>(1, c.get_handle(), &cascade::bounce, 25);
    rmi_fence();
    int const total = allreduce(c.received, std::plus<>{});
    EXPECT_EQ(total, 26);
    rmi_fence();
  });
}

TEST(Runtime, Collectives)
{
  for (unsigned p : {1u, 2u, 5u}) {
    execute(p, [] {
      int const me = static_cast<int>(this_location());
      int const n = static_cast<int>(num_locations());
      EXPECT_EQ(allreduce(me, std::plus<>{}), n * (n - 1) / 2);
      EXPECT_EQ(allreduce(me, [](int a, int b) { return std::max(a, b); }),
                n - 1);
      EXPECT_EQ(broadcast(0, me * 3), 0);
      if (num_locations() > 1)
        EXPECT_EQ(broadcast(1, me * 3), 3);
      EXPECT_EQ(exclusive_scan(1, std::plus<>{}, 0), me);
      auto all = allgather(me * 2);
      ASSERT_EQ(all.size(), num_locations());
      for (int l = 0; l < n; ++l)
        EXPECT_EQ(all[static_cast<std::size_t>(l)], 2 * l);
    });
  }
}

TEST(Runtime, SingleLocationObject)
{
  execute(4, [] {
    // Only location 2 owns an instance; everyone else reaches it via RMI.
    struct owner_holder : p_object {
      using p_object::p_object;
      int value = 0;
      void set(int v) { value = v; }
      int get() const { return value; }
    };

    rmi_handle h{};
    owner_holder* obj = nullptr;
    if (this_location() == 2) {
      obj = new owner_holder(single_location);
      obj->set(55);
      h = obj->get_handle();
    }
    h = broadcast(2, h);
    int const v = sync_rmi<owner_holder>(2, h, &owner_holder::get);
    EXPECT_EQ(v, 55);
    rmi_fence();
    if (this_location() == 2)
      delete obj;
    rmi_fence();
  });
}

TEST(Runtime, DirectTransportEquivalence)
{
  runtime_config cfg;
  cfg.num_locations = 4;
  cfg.transport = transport_kind::direct;
  execute(cfg, [] {
    counter_object c;
    for (int i = 0; i < 10; ++i)
      async_rmi<counter_object>(0, c.get_handle(), &counter_object::add, 1);
    rmi_fence();
    if (this_location() == 0)
      EXPECT_EQ(c.get(), 10 * static_cast<int>(num_locations()));
    int const v =
        sync_rmi<counter_object>(0, c.get_handle(), &counter_object::get);
    EXPECT_EQ(v, 10 * static_cast<int>(num_locations()));
    rmi_fence();
  });
}

TEST(Runtime, AggregationReducesMessageCount)
{
  std::uint64_t msgs_agg1 = 0;
  std::uint64_t msgs_agg32 = 0;
  for (unsigned agg : {1u, 32u}) {
    runtime_config cfg;
    cfg.num_locations = 2;
    cfg.aggregation = agg;
    std::atomic<std::uint64_t> msgs{0};
    execute(cfg, [&] {
      counter_object c;
      reset_my_stats();
      if (this_location() == 0)
        for (int i = 0; i < 1000; ++i)
          async_rmi<counter_object>(1, c.get_handle(), &counter_object::add, 1);
      rmi_fence();
      if (this_location() == 0)
        msgs.fetch_add(my_stats().msgs_sent);
      if (this_location() == 1)
        EXPECT_EQ(c.get(), 1000);
      rmi_fence();
    });
    (agg == 1 ? msgs_agg1 : msgs_agg32) = msgs.load();
  }
  EXPECT_GE(msgs_agg1, 1000u);
  EXPECT_LE(msgs_agg32 * 16, msgs_agg1);
}

// ---------------------------------------------------------------------------
// Serialization (typer / define_type, Ch. V.G.1)
// ---------------------------------------------------------------------------

struct inner_payload {
  int a = 0;
  double b[3] = {0, 0, 0};
  void define_type(typer& t)
  {
    t.member(a);
    t.member(b);
  }
};

struct payload {
  inner_payload inner;
  std::string name;
  std::vector<int> data;
  std::map<std::string, int> dict;
  void define_type(typer& t)
  {
    t.member(inner);
    t.member(name);
    t.member(data);
    t.member(dict);
  }
};

TEST(Serialization, RoundTripUserType)
{
  payload p;
  p.inner.a = 42;
  p.inner.b[1] = 2.5;
  p.name = "stapl";
  p.data = {1, 2, 3, 4, 5};
  p.dict = {{"x", 1}, {"yy", 22}};

  auto bytes = pack(p);
  EXPECT_EQ(bytes.size(), packed_size(p));
  auto q = unpack<payload>(bytes);
  EXPECT_EQ(q.inner.a, 42);
  EXPECT_DOUBLE_EQ(q.inner.b[1], 2.5);
  EXPECT_EQ(q.name, "stapl");
  EXPECT_EQ(q.data, p.data);
  EXPECT_EQ(q.dict, p.dict);
}

TEST(Serialization, RoundTripContainers)
{
  std::vector<std::string> v{"a", "bb", "", "dddd"};
  auto v2 = unpack<std::vector<std::string>>(pack(v));
  EXPECT_EQ(v, v2);

  std::list<std::pair<int, int>> l{{1, 2}, {3, 4}};
  auto l2 = unpack<std::list<std::pair<int, int>>>(pack(l));
  EXPECT_EQ(l, l2);

  std::unordered_map<int, std::vector<int>> m{{1, {1, 2}}, {2, {}}};
  auto m2 = unpack<std::unordered_map<int, std::vector<int>>>(pack(m));
  EXPECT_EQ(m, m2);
}

TEST(Serialization, RandomizedVectorsRoundTrip)
{
  std::mt19937 gen(7);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint64_t> v(gen() % 100);
    for (auto& x : v)
      x = gen();
    auto v2 = unpack<std::vector<std::uint64_t>>(pack(v));
    EXPECT_EQ(v, v2);
  }
}

} // namespace
