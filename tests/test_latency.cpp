// Tests for the tail-latency subsystem (runtime/latency.hpp): histogram
// bucket math round-trips at every boundary, merge equals recording the
// union, quantiles are monotone and bounded by the configured relative
// error, a P=4 global_histogram() matches a single recorder that saw every
// location's samples, the sampler's window deltas subtract correctly (and
// re-baseline across metrics::reset_all()), disabled timed_op sites record
// nothing, and reset_all() clears latency recorders.

#include "algorithms/p_algorithms.hpp"
#include "containers/p_array.hpp"
#include "containers/p_associative.hpp"
#include "runtime/runtime.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace {

using namespace stapl;
using latency::histogram;

/// Leaves latency recording off and all recorders/process state cleared,
/// whatever the test did.
struct latency_guard {
  latency_guard() { latency::reset(); }
  ~latency_guard()
  {
    latency::disable();
    latency::reset();
  }
};

// ---------------------------------------------------------------------------
// Bucket math
// ---------------------------------------------------------------------------

TEST(LatencyTest, BucketBoundariesRoundTrip)
{
  for (std::size_t i = 0; i < histogram::n_buckets; ++i) {
    std::uint64_t const lo = histogram::bucket_lower(i);
    EXPECT_EQ(histogram::index_of(lo), i) << "lower of bucket " << i;
    if (i + 1 < histogram::n_buckets) {
      std::uint64_t const hi = histogram::bucket_upper(i);
      EXPECT_EQ(histogram::index_of(hi), i) << "upper of bucket " << i;
      EXPECT_EQ(histogram::bucket_lower(i + 1), hi + 1)
          << "buckets " << i << "/" << i + 1 << " not contiguous";
      std::uint64_t const mid = histogram::bucket_value(i);
      EXPECT_GE(mid, lo);
      EXPECT_LE(mid, hi);
    }
  }
  // Values past the covered range clamp into the final bucket.
  EXPECT_EQ(histogram::index_of(~std::uint64_t{0}), histogram::n_buckets - 1);
  EXPECT_EQ(histogram::index_of(std::uint64_t{1} << 50),
            histogram::n_buckets - 1);
}

TEST(LatencyTest, RecordKeepsExactCountSumMax)
{
  histogram h;
  std::uint64_t sum = 0, mx = 0;
  for (std::uint64_t v : {0ull, 1ull, 31ull, 32ull, 33ull, 1'000ull,
                          123'456ull, 98'765'432ull, 5'000'000'000ull}) {
    h.record(v);
    sum += v;
    mx = std::max(mx, v);
  }
  EXPECT_EQ(h.count, 9u);
  EXPECT_EQ(h.sum_ns, sum);
  EXPECT_EQ(h.max_ns, mx);
}

TEST(LatencyTest, QuantileWithinConfiguredRelativeError)
{
  // One sample per histogram: every quantile must return a representative
  // within the bucket's relative width (1/32) of the true value, for any
  // value inside the histogram's designed range (< 2^max_exp ≈ 18 min).
  std::uint64_t state = 42;
  for (int i = 0; i < 2'000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    std::uint64_t const v = // spread across octaves, clamped into range
        (state >> (state % 48)) & ((1ull << histogram::max_exp) - 1);
    histogram h;
    h.record(v);
    for (double q : {0.0, 0.5, 0.99, 1.0}) {
      std::uint64_t const got = h.quantile(q);
      double const err = v == 0
                             ? static_cast<double>(got)
                             : std::abs(static_cast<double>(got) -
                                        static_cast<double>(v)) /
                                   static_cast<double>(v);
      EXPECT_LE(err, 1.0 / 32.0 + 1e-9)
          << "v=" << v << " q=" << q << " got=" << got;
    }
  }

  // Beyond the range the histogram saturates into the top bucket: the
  // quantile is clamped by the exact max, which stays lossless.
  histogram over;
  over.record(std::uint64_t{1} << 50);
  EXPECT_EQ(over.max(), std::uint64_t{1} << 50);
  EXPECT_GE(over.quantile(1.0), std::uint64_t{1} << (histogram::max_exp - 1));
  EXPECT_LE(over.quantile(1.0), over.max());
}

TEST(LatencyTest, QuantilesAreMonotone)
{
  histogram h;
  std::uint64_t state = 7;
  for (int i = 0; i < 10'000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    h.record(state % 10'000'000);
  }
  std::uint64_t prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    std::uint64_t const cur = h.quantile(q);
    EXPECT_GE(cur, prev) << "quantile not monotone at q=" << q;
    prev = cur;
  }
  EXPECT_LE(h.quantile(1.0), h.max());
  EXPECT_EQ(h.p999(), h.quantile(0.999));
}

TEST(LatencyTest, MergeEqualsRecordingTheUnion)
{
  histogram a, b, both;
  std::uint64_t state = 99;
  for (int i = 0; i < 5'000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    std::uint64_t const v = state >> (state % 40);
    ((i % 2) ? a : b).record(v);
    both.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count, both.count);
  EXPECT_EQ(a.sum_ns, both.sum_ns);
  EXPECT_EQ(a.max_ns, both.max_ns);
  EXPECT_EQ(a.counts, both.counts);
  for (double q : {0.5, 0.9, 0.99, 0.999})
    EXPECT_EQ(a.quantile(q), both.quantile(q));
}

// ---------------------------------------------------------------------------
// Recorders: disabled cost, reset_all, process fold
// ---------------------------------------------------------------------------

TEST(LatencyTest, DisabledTimedOpSitesRecordNothing)
{
  latency_guard guard;
  ASSERT_FALSE(latency::enabled());
  execute(4, [] {
    p_array<long> pa(1'000 * num_locations());
    gid1d const remote = 1'000 * ((this_location() + 1) % num_locations());
    for (std::size_t i = 0; i < 300; ++i)
      pa.set_element(remote + i % 1'000, 1); // sync+async remote traffic
    long volatile sink = pa.get_element(remote);
    (void)sink;
    rmi_fence();
  });
  for (std::size_t i = 0; i != latency::op_count; ++i)
    EXPECT_TRUE(
        latency::process_histogram(static_cast<latency::op>(i)).empty())
        << "family " << latency::name_of(static_cast<latency::op>(i))
        << " recorded while disabled";
}

TEST(LatencyTest, EnabledRunRecordsRuntimeFamiliesIntoProcessAccumulator)
{
  latency_guard guard;
  latency::enable();
  execute(4, [] {
    p_array<long> pa(1'000 * num_locations());
    gid1d const remote = 1'000 * ((this_location() + 1) % num_locations());
    for (std::size_t i = 0; i < 300; ++i)
      pa.set_element(remote + i % 1'000, 1);
    long volatile sink = pa.get_element(remote); // split-phase round trip
    (void)sink;
    p_hash_map<long, long> m;
    m.insert_async(static_cast<long>(this_location()), 1);
    rmi_fence();
    if (m.size() == 0) // one-sided size(): a sync_rmi per remote location
      std::abort();
    rmi_fence();
  });
  // Remote element traffic goes through invoke/invoke_ret; the one-sided
  // size() query issues blocking sync RMIs.  Both families must have
  // samples folded into the process accumulator by execute().
  EXPECT_GT(latency::process_histogram(latency::op::container_apply).count,
            0u);
  EXPECT_GT(latency::process_histogram(latency::op::rmi_sync).count, 0u);
}

TEST(LatencyTest, SnapshotSurfacesLatKeysAndResetAllClearsThem)
{
  latency_guard guard;
  latency::record_ns(latency::op::serve_op, 1'000);
  latency::record_ns(latency::op::serve_op, 2'000);

  auto const snap = metrics::snapshot();
  ASSERT_NE(snap.find("lat.serve.op.count"), snap.end());
  EXPECT_EQ(snap.at("lat.serve.op.count"), 2u);
  EXPECT_EQ(snap.at("lat.serve.op.sum_ns"), 3'000u);
  EXPECT_NE(snap.find("lat.serve.op.p99_ns"), snap.end());
  EXPECT_EQ(snap.at("lat.serve.op.max_ns"), 2'000u);

  // The satellite fix: reset_all() bumps the latency epoch too, so the
  // recorders of *every* thread clear (lazily) along with the counters.
  metrics::reset_all();
  EXPECT_TRUE(latency::local_snapshot(latency::op::serve_op).empty());
  auto const zeroed = metrics::snapshot();
  EXPECT_EQ(zeroed.find("lat.serve.op.count"), zeroed.end());
}

TEST(LatencyTest, GaugeKeysMergeByMaxNotSum)
{
  EXPECT_TRUE(metrics::sums_on_merge("rmi.rmis_sent"));
  EXPECT_TRUE(metrics::sums_on_merge("lat.serve.op.count"));
  EXPECT_TRUE(metrics::sums_on_merge("lat.serve.op.sum_ns"));
  EXPECT_FALSE(metrics::sums_on_merge("lat.serve.op.p50_ns"));
  EXPECT_FALSE(metrics::sums_on_merge("lat.serve.op.p999_ns"));
  EXPECT_FALSE(metrics::sums_on_merge("lat.serve.op.max_ns"));
}

// ---------------------------------------------------------------------------
// P=4 global_histogram vs single-recorder ground truth
// ---------------------------------------------------------------------------

TEST(LatencyTest, GlobalHistogramMatchesSingleRecorderGroundTruth)
{
  latency_guard guard;
  execute(4, [] {
    // Deterministic per-location samples; the ground truth records all of
    // them into one local histogram.
    histogram truth;
    for (location_id l = 0; l < num_locations(); ++l)
      for (std::uint64_t j = 0; j < 500; ++j)
        truth.record((l + 1) * 1'000 + j * 17);
    for (std::uint64_t j = 0; j < 500; ++j)
      latency::record_ns(latency::op::serve_op,
                         (this_location() + 1) * 1'000 + j * 17);

    auto const g = latency::global_histogram(latency::op::serve_op);
    EXPECT_EQ(g.count, truth.count);
    EXPECT_EQ(g.sum_ns, truth.sum_ns);
    EXPECT_EQ(g.max_ns, truth.max_ns);
    EXPECT_EQ(g.counts, truth.counts);
    for (double q : {0.5, 0.9, 0.99, 0.999})
      EXPECT_EQ(g.quantile(q), truth.quantile(q));
    rmi_fence();
  });
}

// ---------------------------------------------------------------------------
// Sampler delta math
// ---------------------------------------------------------------------------

TEST(LatencyTest, SamplerWindowsAreCumulativeDeltas)
{
  latency_guard guard;
  metrics::sampler s;
  s.arm();

  latency::histogram_set cum{};
  auto& h = cum[static_cast<std::size_t>(latency::op::serve_op)];
  metrics::counter_map counters;

  // Window 1: 100 samples at 1000ns, 50 ops.
  for (int i = 0; i < 100; ++i)
    h.record(1'000);
  counters["serve.ops"] = 50;
  s.push(counters, cum, "steady");

  // Window 2 (cumulative!): +10 samples at 1'000'000ns, +25 ops.
  for (int i = 0; i < 10; ++i)
    h.record(1'000'000);
  counters["serve.ops"] = 75;
  s.push(counters, cum, "wave");

  ASSERT_EQ(s.series().size(), 2u);
  auto const op_i = static_cast<std::size_t>(latency::op::serve_op);

  auto const& w1 = s.series()[0];
  EXPECT_EQ(w1.label, "steady");
  EXPECT_EQ(w1.ops[op_i].count, 100u);
  EXPECT_EQ(w1.counters.at("serve.ops"), 50u);
  EXPECT_LE(w1.ops[op_i].p99_ns, 1'032u); // one bucket above 1000ns
  EXPECT_GE(w1.ops[op_i].p99_ns, 969u);

  auto const& w2 = s.series()[1];
  EXPECT_EQ(w2.label, "wave");
  EXPECT_EQ(w2.ops[op_i].count, 10u) << "window must be the delta";
  EXPECT_EQ(w2.counters.at("serve.ops"), 25u);
  // All 10 window samples are ~1ms: the window p50 reflects the slow
  // window, not the cumulative distribution (which is 100:10).
  EXPECT_GT(w2.ops[op_i].p50_ns, 900'000u);
  EXPECT_GT(w2.ops[op_i].max_ns, 900'000u);

  // Timestamps are monotone.
  EXPECT_GE(w2.t_ms, w1.t_ms);

  // The exported timeseries is the acceptance surface: both windows with
  // quantiles, parsable shape checked in test_instrument's JSON parser
  // (here: structural substrings).
  std::string const json = s.to_json();
  EXPECT_NE(json.find("\"label\": \"wave\""), std::string::npos);
  EXPECT_NE(json.find("\"serve.op\""), std::string::npos);
  EXPECT_NE(json.find("\"p999_ns\""), std::string::npos);
}

TEST(LatencyTest, SamplerRebaselinesAcrossResetAll)
{
  latency_guard guard;
  metrics::sampler s;
  s.arm();

  latency::histogram_set cum{};
  auto& h = cum[static_cast<std::size_t>(latency::op::serve_op)];
  for (int i = 0; i < 100; ++i)
    h.record(500);
  s.push({}, cum, "before");

  // A reset between windows restarts the cumulative state from zero; the
  // sampler must re-baseline instead of clamping the whole window away.
  metrics::reset_all();
  latency::histogram_set fresh{};
  auto& h2 = fresh[static_cast<std::size_t>(latency::op::serve_op)];
  for (int i = 0; i < 30; ++i)
    h2.record(700);
  s.push({}, fresh, "after");

  auto const op_i = static_cast<std::size_t>(latency::op::serve_op);
  ASSERT_EQ(s.series().size(), 2u);
  EXPECT_EQ(s.series()[0].ops[op_i].count, 100u);
  EXPECT_EQ(s.series()[1].ops[op_i].count, 30u)
      << "window after reset_all must be measured against a fresh baseline";
}

TEST(LatencyTest, HistogramDeltaApproximatesWindowMax)
{
  histogram old_h, cur_h;
  old_h.record(1'000);
  cur_h.record(1'000);
  cur_h.record(50'000); // the window's only sample
  auto const d = histogram::delta(cur_h, old_h);
  EXPECT_EQ(d.count, 1u);
  EXPECT_EQ(d.sum_ns, 50'000u);
  // Window max is the top delta bucket's upper bound clamped by the exact
  // cumulative max: within one bucket of the true 50'000.
  EXPECT_GE(d.max_ns, 50'000u * 31 / 32);
  EXPECT_LE(d.max_ns, 50'000u + 50'000u / 16);
}

} // namespace
