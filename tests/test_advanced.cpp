// Integration tests across modules: the executor/pRange (Ch. III),
// redistribution (Ch. V.G), composition (Ch. IV.C/XIII), graph algorithms
// (Ch. XI.F), the Euler tour technique (Ch. X.H) and MapReduce (Ch. XII.C).

#include "algorithms/euler_tour.hpp"
#include "algorithms/graph_algorithms.hpp"
#include "algorithms/map_reduce.hpp"
#include "algorithms/p_algorithms.hpp"
#include "containers/graph_generators.hpp"
#include "containers/p_array.hpp"
#include "containers/p_list.hpp"
#include "core/composition.hpp"
#include "core/redistribution.hpp"
#include "runtime/executor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

namespace {

using namespace stapl;

// ---------------------------------------------------------------------------
// Executor / pRange
// ---------------------------------------------------------------------------

TEST(Executor, DiamondDependenceOrder)
{
  execute(4, [] {
    p_array<int> results(4, -1);
    p_range pr;
    // Diamond: t0 -> {t1, t2} -> t3, spread over locations.
    auto t0 = pr.add_task(0, [&] { results.set_element(0, 1); });
    auto t1 = pr.add_task(1 % num_locations(), [&] {
      EXPECT_EQ(results.get_element(0), 1); // t0 completed
      results.set_element(1, 2);
    });
    auto t2 = pr.add_task(2 % num_locations(), [&] {
      EXPECT_EQ(results.get_element(0), 1);
      results.set_element(2, 3);
    });
    auto t3 = pr.add_task(3 % num_locations(), [&] {
      EXPECT_EQ(results.get_element(1), 2);
      EXPECT_EQ(results.get_element(2), 3);
      results.set_element(3, 4);
    });
    pr.add_dependence(t0, t1);
    pr.add_dependence(t0, t2);
    pr.add_dependence(t1, t3);
    pr.add_dependence(t2, t3);
    pr.execute();
    EXPECT_EQ(results.get_element(3), 4);
    rmi_fence();
  });
}

TEST(Executor, ChainAcrossLocations)
{
  execute(4, [] {
    p_array<int> acc(1, 0);
    p_range pr;
    std::size_t prev = static_cast<std::size_t>(-1);
    for (int i = 0; i < 12; ++i) {
      auto t = pr.add_task(static_cast<location_id>(i % num_locations()),
                           [&acc] {
                             acc.apply_set(0, [](int& x) { ++x; });
                           });
      if (prev != static_cast<std::size_t>(-1))
        pr.add_dependence(prev, t);
      prev = t;
    }
    pr.execute();
    EXPECT_EQ(acc.get_element(0), 12);
    rmi_fence();
  });
}

TEST(Executor, MapFuncAppliesWorkFunction)
{
  execute(4, [] {
    p_array<long> pa(200, 1);
    array_1d_view v(pa);
    map_func([](long& x) { x *= 5; }, v);
    EXPECT_EQ(p_accumulate(v, 0L), 1000L);
    rmi_fence();
  });
}

// ---------------------------------------------------------------------------
// Redistribution (Ch. V.G)
// ---------------------------------------------------------------------------

TEST(Redistribution, BalancedToBlockCyclicPreservesContent)
{
  execute(4, [] {
    p_array<int, block_cyclic_partition> pa(
        96, block_cyclic_partition(num_locations(), 8));
    p_for_each_gid(array_1d_view(pa),
                   [](gid1d g, int& x) { x = static_cast<int>(g * 3); });
    // Re-partition with a different block size (metadata + data move).
    redistribute(pa, block_cyclic_partition(2 * num_locations(), 4),
                 blocked_mapper{});
    EXPECT_EQ(pa.partition().size(), 2 * num_locations());
    for (gid1d g = 0; g < 96; ++g)
      EXPECT_EQ(pa.get_element(g), static_cast<int>(g * 3));
    rmi_fence();
  });
}

TEST(Redistribution, RebalanceAfterExplicitSkew)
{
  execute(4, [] {
    // All data initially on location 0 (one big block + empties).
    std::vector<std::size_t> sizes(num_locations(), 0);
    sizes[0] = 80;
    p_array<int, explicit_partition> pa(80, explicit_partition(sizes));
    EXPECT_EQ(allreduce(pa.local_size(), std::plus<>{}), 80u);
    if (this_location() == 0)
      EXPECT_EQ(pa.local_size(), 80u);
    p_for_each_gid(array_1d_view(pa),
                   [](gid1d g, int& x) { x = static_cast<int>(g); });

    redistribute(pa,
                 explicit_partition(std::vector<std::size_t>(
                     num_locations(), 80 / num_locations())),
                 blocked_mapper{});
    EXPECT_EQ(pa.local_size(), 80u / num_locations());
    for (gid1d g = 0; g < 80; g += 7)
      EXPECT_EQ(pa.get_element(g), static_cast<int>(g));
    rmi_fence();
  });
}

TEST(Redistribution, RotateShiftsBlocks)
{
  execute(4, [] {
    p_array<int, balanced_partition, relocatable_array_traits<int>> pa(64);
    p_for_each_gid(array_1d_view(pa),
                   [](gid1d g, int& x) { x = static_cast<int>(g); });
    auto const owner_before = pa.lookup(0);
    rotate(pa, 1);
    auto const owner_after = pa.lookup(0);
    EXPECT_EQ(owner_after, (owner_before + 1) % num_locations());
    for (gid1d g = 0; g < 64; g += 5)
      EXPECT_EQ(pa.get_element(g), static_cast<int>(g));
    rmi_fence();
  });
}

// ---------------------------------------------------------------------------
// Composition (Ch. IV.C / XIII)
// ---------------------------------------------------------------------------

TEST(Composition, ComposedArrayOfArrays)
{
  execute(2, [] {
    // The Ch. IV.C example: pApA(3) with nested sizes 2, 3, 4.
    p_array<std::vector<int>> pApA(3);
    if (this_location() == 0) {
      resize_nested(pApA, 0, 2);
      resize_nested(pApA, 1, 3);
      resize_nested(pApA, 2, 4);
    }
    rmi_fence();
    EXPECT_EQ(nested_size(pApA, 0), 2u);
    EXPECT_EQ(nested_size(pApA, 1), 3u);
    EXPECT_EQ(nested_size(pApA, 2), 4u);

    // Composed domain == Eq. 4.2 enumeration.
    auto dom = composed_domain(pApA);
    EXPECT_EQ(dom.size(), 9u);
    std::vector<gid_nested> expect{{0, 0}, {0, 1}, {1, 0}, {1, 1}, {1, 2},
                                   {2, 0}, {2, 1}, {2, 2}, {2, 3}};
    // Order within the gathered domain follows location order; compare as
    // sets.
    for (auto const& g : expect)
      EXPECT_NE(std::find(dom.begin(), dom.end(), g), dom.end());

    // Composed access: get_element(1).get_element(0) equivalent.
    if (this_location() == 0)
      set_nested(pApA, 1, 0, 77);
    rmi_fence();
    EXPECT_EQ(get_nested(pApA, 1, 0), 77);
    rmi_fence();
  });
}

TEST(Composition, RowMinimumAcrossRepresentations)
{
  execute(4, [] {
    std::size_t const rows = 4 * num_locations(), cols = 16;
    // pArray<pArray>.
    p_array<std::vector<long>> pa(rows);
    array_1d_view pav(pa);
    p_for_each_gid(pav, [cols](gid1d r, std::vector<long>& row) {
      row.resize(cols);
      for (std::size_t c = 0; c < cols; ++c)
        row[c] = static_cast<long>((r * 31 + c * 17) % 101);
    });
    // Row minima through composed access.
    p_array<long> mins(rows);
    p_for_each_gid(array_1d_view(mins), [&pa](gid1d r, long& m) {
      m = pa.apply_get(r, [](std::vector<long> const& row) {
        return *std::min_element(row.begin(), row.end());
      });
    });
    // Reference.
    for (gid1d r = 0; r < rows; r += 5) {
      long expect = std::numeric_limits<long>::max();
      for (std::size_t c = 0; c < cols; ++c)
        expect = std::min(expect, static_cast<long>((r * 31 + c * 17) % 101));
      EXPECT_EQ(mins.get_element(r), expect);
    }
    rmi_fence();
  });
}

// ---------------------------------------------------------------------------
// Graph algorithms (Ch. XI.F.3-4)
// ---------------------------------------------------------------------------

class GraphAlgoTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(GraphAlgoTest, BfsLevelsOnBinaryTree)
{
  execute(GetParam(), [] {
    std::size_t const n = 63; // complete tree of depth 5
    p_graph<DIRECTED, NONMULTI, bfs_property, no_property> g(n);
    generate_binary_tree(g, n);
    auto const visited = bfs_levels(g, 0);
    EXPECT_EQ(visited, n);
    // level(v) == floor(log2(v+1)).
    g.for_each_local_vertex([](vertex_descriptor v, auto& rec) {
      long expect = 0;
      for (std::size_t x = v + 1; x > 1; x /= 2)
        ++expect;
      EXPECT_EQ(rec.property.level, expect) << "vertex " << v;
    });
    rmi_fence();
  });
}

TEST_P(GraphAlgoTest, BfsUnreachableVerticesStayUnvisited)
{
  execute(GetParam(), [] {
    p_graph<DIRECTED, NONMULTI, bfs_property, no_property> g(10);
    if (this_location() == 0) {
      g.add_edge_async(0, 1);
      g.add_edge_async(1, 2);
    }
    rmi_fence();
    EXPECT_EQ(bfs_levels(g, 0), 3u);
    g.for_each_local_vertex([](vertex_descriptor v, auto& rec) {
      if (v > 2)
        EXPECT_EQ(rec.property.level, -1);
    });
    rmi_fence();
  });
}

TEST_P(GraphAlgoTest, ConnectedComponentsOnForest)
{
  execute(GetParam(), [] {
    std::size_t const n = 30;
    p_graph<UNDIRECTED, NONMULTI, cc_property, no_property> g(n);
    // Three chains: [0..9], [10..19], [20..29].
    if (this_location() == 0)
      for (std::size_t v = 0; v < n; ++v)
        if ((v + 1) % 10 != 0)
          g.add_edge_async(v, v + 1);
    rmi_fence();
    EXPECT_EQ(connected_components(g), 3u);
    g.for_each_local_vertex([](vertex_descriptor v, auto& rec) {
      EXPECT_EQ(rec.property.component, (v / 10) * 10);
    });
    rmi_fence();
  });
}

TEST_P(GraphAlgoTest, FindSourcesOnDag)
{
  execute(GetParam(), [] {
    p_graph<DIRECTED, MULTI, indegree_property, no_property> g(6 * 8);
    generate_dag(g, 6, 8, 2);
    auto const sources = find_sources(g);
    auto const total = allreduce(sources.size(), std::plus<>{});
    EXPECT_EQ(total, 8u); // exactly the first layer
    for (auto v : sources)
      EXPECT_LT(v, 8u);
    rmi_fence();
  });
}

TEST_P(GraphAlgoTest, PageRankConservesMassAndRanksHubs)
{
  execute(GetParam(), [] {
    // Star-ish mesh: on a torus all ranks equal; on a path the middle
    // accumulates more than the endpoints.
    p_graph<DIRECTED, NONMULTI, pagerank_property, no_property> g(20);
    if (this_location() == 0)
      for (std::size_t v = 0; v < 20; ++v) {
        if (v + 1 < 20)
          g.add_edge_async(v, v + 1);
        if (v > 0)
          g.add_edge_async(v, v - 1);
      }
    rmi_fence();
    page_rank(g, 30);
    EXPECT_NEAR(total_rank(g), 1.0, 1e-6);
    double const r0 = g.apply_vertex_get(0, [](auto& rec) {
      return rec.property.rank;
    });
    double const r10 = g.apply_vertex_get(10, [](auto& rec) {
      return rec.property.rank;
    });
    EXPECT_GT(r10, r0);
    rmi_fence();
  });
}

TEST_P(GraphAlgoTest, IncrementalPageRankMatchesBatch)
{
  execute(GetParam(), [] {
    // Same bidirectional chain in both graphs; the push-based incremental
    // solver seeded everywhere must converge to the synchronous fixed
    // point.
    std::size_t const n = 20;
    p_graph<DIRECTED, NONMULTI, pagerank_property, no_property> gb(n);
    p_graph<DIRECTED, NONMULTI, dynamic_pagerank_property, no_property>
        gp(n);
    if (this_location() == 0)
      for (std::size_t v = 0; v < n; ++v) {
        if (v + 1 < n) {
          gb.add_edge_async(v, v + 1);
          gp.add_edge_async(v, v + 1);
        }
        if (v > 0) {
          gb.add_edge_async(v, v - 1);
          gp.add_edge_async(v, v - 1);
        }
      }
    rmi_fence();
    page_rank(gb, 100);
    page_rank_push_init(gp);
    auto const drains =
        page_rank_incremental(gp, gp.local_gids(), 500, 0.85, 1e-10);
    EXPECT_GT(drains, 0u);
    EXPECT_NEAR(total_rank(gp), 1.0, 1e-4);
    for (auto v : gp.local_gids()) {
      double const batch = gb.apply_vertex_get(
          v, [](auto& rec) { return rec.property.rank; });
      double const push = gp.apply_vertex_get(
          v, [](auto& rec) { return rec.property.rank; });
      EXPECT_NEAR(push, batch, 1e-4) << v;
    }
    rmi_fence();
  });
}

TEST_P(GraphAlgoTest, RewireEdgeAsyncDrivesIncrementalRecompute)
{
  execute(GetParam(), [] {
    // Streaming-scenario machinery: a dynamic (directory-forwarded) graph
    // under single-visit edge rewires, with incremental recompute chasing
    // exactly the churned vertices.
    std::size_t const n = 12;
    p_graph<DIRECTED, NONMULTI, dynamic_pagerank_property, no_property> g(
        graph_partition_kind::dynamic_forwarding);
    generate_random(g, n, 2, /*seed=*/5);
    page_rank_push_init(g);
    (void)page_rank_incremental(g, g.local_gids(), 200, 0.85, 1e-10);
    double const settled = total_rank(g);
    EXPECT_NEAR(settled, 1.0, 1e-3);

    // Rewire one out-edge of vertex 0 in one routed visit.  The fence
    // between issue and verification is collective, so it stays outside
    // the location-0 block.
    vertex_descriptor old_tgt = 0;
    vertex_descriptor new_tgt = 0;
    std::size_t degree_before = 0;
    if (this_location() == 0) {
      auto const targets = g.out_edges(0);
      EXPECT_FALSE(targets.empty());
      if (!targets.empty()) {
        degree_before = targets.size();
        old_tgt = targets.front();
        new_tgt = old_tgt == 5 ? 6 : 5;
        g.rewire_edge_async(0, old_tgt, new_tgt);
      }
    }
    rmi_fence();
    if (this_location() == 0 && degree_before != 0) {
      auto const after = g.out_edges(0);
      EXPECT_EQ(after.size(), degree_before);
      EXPECT_NE(std::find(after.begin(), after.end(), new_tgt),
                after.end());
      if (old_tgt != new_tgt)
        EXPECT_EQ(std::find(after.begin(), after.end(), old_tgt),
                  after.end());
    }
    rmi_fence();

    // Kick residual mass into the churned vertex and recompute from it:
    // the added mass must settle into ranks (total grows by ~kick/(1-d)).
    std::vector<vertex_descriptor> touched;
    if (this_location() == 0) {
      g.apply_vertex(0, [](auto& rec) { rec.property.residual += 0.01; });
      touched.push_back(0);
    }
    rmi_fence();
    auto const drains = page_rank_incremental(g, touched, 200, 0.85, 1e-10);
    EXPECT_GT(drains, 0u);
    EXPECT_GT(total_rank(g), settled + 0.009);
    rmi_fence();
  });
}

TEST_P(GraphAlgoTest, MaxOutDegree)
{
  execute(GetParam(), [] {
    p_graph<DIRECTED, NONMULTI, int, no_property> g(16);
    if (this_location() == 0)
      for (vertex_descriptor t = 1; t < 6; ++t)
        g.add_edge_async(3, t == 3 ? 6 : t);
    rmi_fence();
    EXPECT_EQ(max_out_degree(g), 5u);
    rmi_fence();
  });
}

INSTANTIATE_TEST_SUITE_P(Locations, GraphAlgoTest, ::testing::Values(1, 2, 4));

// ---------------------------------------------------------------------------
// Euler tour (Ch. X.H)
// ---------------------------------------------------------------------------

class EulerTourTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(EulerTourTest, TourAndRanksSmallTree)
{
  execute(GetParam(), [] {
    std::size_t const n = 7; // complete binary tree, depth 2
    std::size_t const len = 2 * (n - 1);
    p_array<std::size_t> succ(len);
    p_array<long> pos(len);
    build_euler_tour(succ, n);
    list_rank(succ, pos);
    // The tour is a permutation of positions 0..len-1.
    std::vector<bool> seen(len, false);
    for (gid1d a = 0; a < len; ++a) {
      long const p = pos.get_element(a);
      ASSERT_GE(p, 0);
      ASSERT_LT(p, static_cast<long>(len));
      EXPECT_FALSE(seen[static_cast<std::size_t>(p)]);
      seen[static_cast<std::size_t>(p)] = true;
    }
    // First arc: root -> left child; down arc of vertex 1 has position 0.
    EXPECT_EQ(pos.get_element(0), 0);
    rmi_fence();
  });
}

TEST_P(EulerTourTest, ApplicationsMatchSequentialReference)
{
  execute(GetParam(), [] {
    std::size_t const n = 31;
    euler_tour_results r(n);
    euler_tour_applications(n, r);

    // parent / level reference for the implicit binary tree.
    for (gid1d v = 0; v < n; ++v) {
      std::size_t const expect_parent = v == 0 ? 0 : (v - 1) / 2;
      EXPECT_EQ(r.parent.get_element(v), expect_parent);
      long expect_level = 0;
      for (std::size_t x = v + 1; x > 1; x /= 2)
        ++expect_level;
      EXPECT_EQ(r.level.get_element(v), expect_level) << "vertex " << v;
    }
    // Postorder: a permutation of 1..n with children before parents.
    std::vector<long> post(n);
    for (gid1d v = 0; v < n; ++v)
      post[v] = r.postorder.get_element(v);
    std::vector<long> sorted = post;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_EQ(sorted[i], static_cast<long>(i + 1));
    for (gid1d v = 1; v < n; ++v)
      EXPECT_LT(post[v], post[(v - 1) / 2]) << "child after parent";
    rmi_fence();
  });
}

INSTANTIATE_TEST_SUITE_P(Locations, EulerTourTest, ::testing::Values(1, 2, 4));

// ---------------------------------------------------------------------------
// MapReduce (Ch. XII.C.1)
// ---------------------------------------------------------------------------

class MapReduceTest : public ::testing::TestWithParam<bool> {};

TEST_P(MapReduceTest, WordCountMatchesSequential)
{
  bool const combiner = GetParam();
  execute(4, [combiner] {
    // Corpus: each document is a line of words.
    std::vector<std::string> docs{
        "the quick brown fox", "the lazy dog",
        "the quick dog jumps", "fox and dog and fox"};
    p_array<std::string> corpus(docs.size());
    if (this_location() == 0)
      for (gid1d i = 0; i < docs.size(); ++i)
        corpus.set_element(i, docs[i]);
    rmi_fence();

    p_hash_map<std::string, long> counts;
    word_count(array_1d_view(corpus), counts, {combiner});

    std::map<std::string, long> ref;
    for (auto const& d : docs) {
      std::istringstream ss(d);
      std::string w;
      while (ss >> w)
        ++ref[w];
    }
    EXPECT_EQ(counts.size(), ref.size());
    for (auto const& [w, c] : ref)
      EXPECT_EQ(counts.find_val(w).first, c) << w;
    rmi_fence();
  });
}

INSTANTIATE_TEST_SUITE_P(Combiner, MapReduceTest, ::testing::Bool());

TEST(MapReduce, NumericHistogram)
{
  execute(4, [] {
    p_array<int> data(400);
    p_for_each_gid(array_1d_view(data),
                   [](gid1d g, int& x) { x = static_cast<int>(g % 10); });
    p_hash_map<int, long> hist;
    map_reduce_into(
        array_1d_view(data),
        [](int x, auto emit) { emit(x, 1L); },
        [](long a, long b) { return a + b; }, hist);
    for (int k = 0; k < 10; ++k)
      EXPECT_EQ(hist.find_val(k).first, 40);
    rmi_fence();
  });
}

} // namespace
