// Tests for the runtime instrumentation layer (runtime/instrument.hpp):
// the disabled tracer records nothing and the metrics registry matches the
// legacy per-family accessors field-for-field; an enabled P=4 steal run
// yields probe→grant→run chains with monotonic timestamps per location;
// ring overflow reports an exact drop count; the Chrome trace-event
// exporter's output round-trips through a JSON parser; and
// metrics::global_snapshot() surfaces all four stats families plus the
// byte counters in one map.

#include "algorithms/p_algorithms.hpp"
#include "containers/p_array.hpp"
#include "runtime/task_graph.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace {

using namespace stapl;

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

/// Leaves tracing off and all rings released, whatever the test did.
struct trace_guard {
  ~trace_guard()
  {
    trace::disable();
    trace::clear();
  }
};

/// An imbalanced stealable graph: every work task starts on location 0 and
/// sleeps, so idle peers have ample time to pull chunks over (the same
/// regime as the task-graph stealing tests).
void run_imbalanced_steal_graph(int tasks)
{
  task_graph<long> tg;
  tg.set_stealing(true);
  using tid = task_graph<long>::task_id;
  task_options stealable;
  stealable.stealable = true;
  std::vector<tid> work;
  for (int i = 0; i < tasks; ++i) {
    work.push_back(tg.add_task(
        0,
        [i](std::vector<long> const&, char const&) {
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
          return static_cast<long>(i);
        },
        {}, stealable));
  }
  tid const sink = tg.add_task(
      0, [](std::vector<long> const& ins, char const&) {
        return std::accumulate(ins.begin(), ins.end(), 0L);
      });
  for (tid const t : work)
    tg.add_dependence(t, sink);
  tg.execute();
  EXPECT_EQ(tg.global_stats().tasks_run,
            static_cast<std::uint64_t>(tasks) + 1u);
  EXPECT_GT(tg.global_stats().tasks_stolen, 0u);
}

/// Minimal recursive-descent JSON acceptor, enough to round-trip the
/// exporter's output (no external JSON dependency in the image).
class json_parser {
 public:
  explicit json_parser(std::string_view s) : m_s(s) {}

  /// Whole input is exactly one JSON value (plus whitespace).
  [[nodiscard]] bool accept()
  {
    if (!value())
      return false;
    ws();
    return m_i == m_s.size();
  }

 private:
  void ws()
  {
    while (m_i < m_s.size() &&
           (m_s[m_i] == ' ' || m_s[m_i] == '\t' || m_s[m_i] == '\n' ||
            m_s[m_i] == '\r'))
      ++m_i;
  }

  bool eat(char c)
  {
    ws();
    if (m_i < m_s.size() && m_s[m_i] == c) {
      ++m_i;
      return true;
    }
    return false;
  }

  bool literal(std::string_view lit)
  {
    if (m_s.substr(m_i, lit.size()) != lit)
      return false;
    m_i += lit.size();
    return true;
  }

  bool string_lit()
  {
    if (!eat('"'))
      return false;
    while (m_i < m_s.size() && m_s[m_i] != '"') {
      if (m_s[m_i] == '\\')
        ++m_i; // skip the escaped character
      ++m_i;
    }
    return m_i < m_s.size() && m_s[m_i++] == '"';
  }

  bool number()
  {
    std::size_t const start = m_i;
    if (m_i < m_s.size() && m_s[m_i] == '-')
      ++m_i;
    while (m_i < m_s.size() &&
           (std::isdigit(static_cast<unsigned char>(m_s[m_i])) != 0 ||
            m_s[m_i] == '.' || m_s[m_i] == 'e' || m_s[m_i] == 'E' ||
            m_s[m_i] == '+' || m_s[m_i] == '-'))
      ++m_i;
    return m_i > start;
  }

  bool object()
  {
    if (eat('}'))
      return true;
    do {
      if (!string_lit() || !eat(':') || !value())
        return false;
    } while (eat(','));
    return eat('}');
  }

  bool array()
  {
    if (eat(']'))
      return true;
    do {
      if (!value())
        return false;
    } while (eat(','));
    return eat(']');
  }

  bool value()
  {
    ws();
    if (m_i >= m_s.size())
      return false;
    switch (m_s[m_i]) {
      case '{': ++m_i; return object();
      case '[': ++m_i; return array();
      case '"': return string_lit();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default:  return number();
    }
  }

  std::string_view m_s;
  std::size_t m_i = 0;
};

// ---------------------------------------------------------------------------
// Disabled tracer + registry/legacy equivalence
// ---------------------------------------------------------------------------

TEST(InstrumentTest, DisabledTracerRecordsNothing)
{
  trace_guard guard;
  ASSERT_FALSE(trace::enabled());
  execute(4, [] {
    p_array<long> pa(1'000 * num_locations());
    gid1d const remote = 1'000 * ((this_location() + 1) % num_locations());
    for (std::size_t i = 0; i < 500; ++i)
      pa.set_element(remote + i % 1'000, 1);
    rmi_fence();
  });
  EXPECT_EQ(trace::total_events(), 0u);
  EXPECT_EQ(trace::total_dropped(), 0u);
  EXPECT_TRUE(trace::traced_locations().empty());
}

TEST(InstrumentTest, SnapshotMatchesLegacyStatsFieldForField)
{
  execute(4, [] {
    p_array<long> pa(1'000 * num_locations());
    gid1d const remote = 1'000 * ((this_location() + 1) % num_locations());
    for (std::size_t i = 0; i < 200; ++i)
      pa.set_element(remote + i % 1'000, 1);
    long volatile sink = pa.get_element(remote); // a sync RMI as well
    (void)sink;
    rmi_fence();

    auto const snap = metrics::snapshot();
    location_stats const& s = my_stats();
    auto at = [&snap](char const* k) {
      auto const it = snap.find(k);
      return it == snap.end() ? std::uint64_t{0} : it->second;
    };
    EXPECT_EQ(at("rmi.rmis_sent"), s.rmis_sent);
    EXPECT_EQ(at("rmi.rmis_executed"), s.rmis_executed);
    EXPECT_EQ(at("rmi.local_rmis"), s.local_rmis);
    EXPECT_EQ(at("rmi.msgs_sent"), s.msgs_sent);
    EXPECT_EQ(at("rmi.sync_rmis"), s.sync_rmis);
    EXPECT_EQ(at("rmi.fences"), s.fences);
    EXPECT_EQ(at("rmi.rmi_bytes"), s.rmi_bytes);
    EXPECT_EQ(at("rmi.msg_bytes"), s.msg_bytes);
    // Remote traffic happened, so the new byte counters are live.
    EXPECT_GT(s.rmis_sent, 0u);
    EXPECT_GT(s.rmi_bytes, 0u);

    // reset_all() goes through the same contributor hooks: the legacy
    // accessor observes the reset too.
    metrics::reset_all();
    EXPECT_EQ(my_stats().rmis_sent, 0u);
    EXPECT_EQ(my_stats().rmi_bytes, 0u);
    auto const zeroed = metrics::snapshot();
    auto const it = zeroed.find("rmi.rmis_sent");
    ASSERT_NE(it, zeroed.end());
    EXPECT_EQ(it->second, 0u);
    rmi_fence();
  });
}

// ---------------------------------------------------------------------------
// Enabled P=4 steal run: probe→grant→run chains, monotonic per location
// ---------------------------------------------------------------------------

TEST(InstrumentTest, EnabledStealRunHasProbeGrantRunChains)
{
  trace_guard guard;
  trace::enable();
  execute(4, [] { run_imbalanced_steal_graph(24); });

  auto const locs = trace::traced_locations();
  ASSERT_EQ(locs.size(), 4u);
  EXPECT_GT(trace::total_events(), 0u);
  EXPECT_EQ(trace::total_dropped(), 0u);

  std::uint64_t probes = 0, grants = 0, runs = 0;
  for (location_id const loc : locs) {
    auto const evs = trace::events(loc);
    ASSERT_FALSE(evs.empty()) << "location " << loc << " recorded nothing";
    // Events are recorded in emission order; an event's completion time
    // (ts for instants, ts + dur for scopes) is its emission time, so the
    // completion times must be monotonic per location.
    std::uint64_t prev_end = 0;
    std::uint64_t last_probe = 0, last_grant = 0;
    bool saw_probe = false, saw_grant = false, run_after_grant = false;
    for (auto const& e : evs) {
      EXPECT_EQ(e.loc, loc);
      std::uint64_t const end = e.ts_us + e.dur_us;
      EXPECT_GE(end, prev_end) << "timestamps ran backwards on location "
                               << loc << " (" << trace::name_of(e.kind)
                               << ")";
      prev_end = end;
      switch (e.kind) {
        case trace::event_kind::steal_probe:
          probes += 1;
          saw_probe = true;
          last_probe = end;
          break;
        case trace::event_kind::steal_grant:
          grants += 1;
          // A grant answers a probe this thief sent earlier.
          EXPECT_TRUE(saw_probe)
              << "steal_grant before any steal_probe on location " << loc;
          EXPECT_GE(end, last_probe);
          saw_grant = true;
          last_grant = end;
          break;
        case trace::event_kind::task_run:
          runs += 1;
          if (saw_grant && end >= last_grant)
            run_after_grant = true;
          break;
        default:
          break;
      }
    }
    if (saw_grant)
      EXPECT_TRUE(run_after_grant)
          << "location " << loc << " was granted work but never ran a task "
             "afterwards";
  }
  // The all-on-location-0 layout with sleeping chunks guarantees steals.
  EXPECT_GT(probes, 0u);
  EXPECT_GT(grants, 0u);
  EXPECT_EQ(runs, 25u) << "24 work tasks + 1 sink, each traced exactly once";
}

// ---------------------------------------------------------------------------
// Ring overflow: exact drop counts
// ---------------------------------------------------------------------------

TEST(InstrumentTest, RingOverflowReportsExactDropCount)
{
  trace_guard guard;
  trace::enable(8);
  trace::attach(0);
  for (std::uint64_t i = 0; i < 20; ++i)
    trace::emit(trace::event_kind::rmi_send, i);
  trace::detach();

  EXPECT_EQ(trace::events(0).size(), 8u);
  EXPECT_EQ(trace::dropped(0), 12u);
  EXPECT_EQ(trace::total_dropped(), 12u);
  // The ring keeps the *first* capacity events; the drops are the tail.
  auto const evs = trace::events(0);
  for (std::size_t i = 0; i < evs.size(); ++i)
    EXPECT_EQ(evs[i].arg, i);
}

TEST(InstrumentTest, KeepLastRingRetainsTrailingWindowWithExactDrops)
{
  trace_guard guard;
  trace::enable(8, /*keep_last=*/true);
  trace::attach(0);
  for (std::uint64_t i = 0; i < 20; ++i)
    trace::emit(trace::event_kind::rmi_send, i);
  trace::detach();

  // Circular mode keeps the *last* capacity events, oldest first; every
  // overwritten event counts as a drop — still exact.
  EXPECT_EQ(trace::events(0).size(), 8u);
  EXPECT_EQ(trace::total_events(), 8u);
  EXPECT_EQ(trace::dropped(0), 12u);
  EXPECT_EQ(trace::total_dropped(), 12u);
  auto const evs = trace::events(0);
  for (std::size_t i = 0; i < evs.size(); ++i)
    EXPECT_EQ(evs[i].arg, 12 + i);
}

TEST(InstrumentTest, KeepLastRingBelowCapacityDropsNothing)
{
  trace_guard guard;
  trace::enable(8, /*keep_last=*/true);
  trace::attach(0);
  for (std::uint64_t i = 0; i < 5; ++i)
    trace::emit(trace::event_kind::rmi_send, i);
  trace::detach();

  EXPECT_EQ(trace::events(0).size(), 5u);
  EXPECT_EQ(trace::dropped(0), 0u);
  auto const evs = trace::events(0);
  for (std::size_t i = 0; i < evs.size(); ++i)
    EXPECT_EQ(evs[i].arg, i);
}

// ---------------------------------------------------------------------------
// Exporter output round-trips through a JSON parser
// ---------------------------------------------------------------------------

TEST(InstrumentTest, DumpRoundTripsThroughJsonParser)
{
  trace_guard guard;
  trace::enable(64);
  trace::attach(0);
  trace::emit(trace::event_kind::rmi_send, 48);
  trace::emit(trace::event_kind::steal_probe, 1);
  trace::emit_complete(trace::event_kind::fence, 10, 25, 0);
  trace::emit_complete(trace::event_kind::task_run, 40, 5, 7);
  trace::detach();
  // A second lane, so the exporter emits multiple thread_name records.
  trace::attach(1);
  trace::emit(trace::event_kind::epoch_advance, 2);
  trace::detach();

  std::string const path = "test_instrument_trace.json";
  ASSERT_TRUE(trace::dump(path));

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  std::string const text = buf.str();
  std::remove(path.c_str());

  EXPECT_TRUE(json_parser(text).accept()) << "exporter wrote invalid JSON";
  // Structure: the trace-event envelope, one lane per attached location,
  // scopes as complete events and instants as instants.
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(text.find("\"location 0\""), std::string::npos);
  EXPECT_NE(text.find("\"location 1\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(text.find("\"task_run\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Kind-mask filtering at emit
// ---------------------------------------------------------------------------

TEST(InstrumentTest, KindMaskRecordsOnlyMaskedKinds)
{
  trace_guard guard;
  trace::enable(64, /*keep_last=*/false,
                trace::kind_bit(trace::event_kind::fence) |
                    trace::kind_bit(trace::event_kind::rebalance_wave));
  trace::attach(0);
  for (std::uint64_t i = 0; i < 10; ++i)
    trace::emit(trace::event_kind::rmi_send, i); // filtered out
  trace::emit_complete(trace::event_kind::fence, 10, 5, 0);
  trace::emit_complete(trace::event_kind::rebalance_wave, 20, 7, 3);
  trace::emit(trace::event_kind::steal_probe, 1); // filtered out
  trace::detach();

  auto const evs = trace::events(0);
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_EQ(evs[0].kind, trace::event_kind::fence);
  EXPECT_EQ(evs[1].kind, trace::event_kind::rebalance_wave);
  // Filtered events are skipped at emit, not dropped-by-overflow.
  EXPECT_EQ(trace::total_dropped(), 0u);

  // trace_scope consults the mask at construction: a masked-out scope
  // records nothing either.
  trace::attach(0);
  {
    trace::trace_scope masked_out(trace::event_kind::task_run, 1);
  }
  {
    trace::trace_scope recorded(trace::event_kind::fence, 2);
  }
  trace::detach();
  EXPECT_EQ(trace::events(0).size(), 3u);
  EXPECT_EQ(trace::events(0).back().kind, trace::event_kind::fence);
}

TEST(InstrumentTest, DefaultMaskRecordsEveryKind)
{
  trace_guard guard;
  trace::enable(64);
  for (unsigned k = 0;
       k < static_cast<unsigned>(trace::event_kind::kind_count_); ++k)
    EXPECT_TRUE(trace::recording(static_cast<trace::event_kind>(k)));
}

// ---------------------------------------------------------------------------
// Streaming sink: incremental flush to disk, no dump-at-end
// ---------------------------------------------------------------------------

TEST(InstrumentTest, StreamingSinkFlushesRetiredRingsIncrementally)
{
  trace_guard guard;
  std::string const path = "test_instrument_stream.json";
  trace::enable(8); // tiny ring: forces many mid-run flushes
  ASSERT_TRUE(trace::stream_to(path));
  EXPECT_TRUE(trace::streaming());

  trace::attach(0);
  for (std::uint64_t i = 0; i < 100; ++i)
    trace::emit(trace::event_kind::rmi_send, i);
  // 100 events through an 8-slot ring: at least 96 already retired to disk
  // *during* the run — the opposite of dump-at-end.
  EXPECT_GE(trace::streamed_events(), 96u);
  EXPECT_EQ(trace::total_dropped(), 0u) << "no drops while streaming";
  trace::detach();

  // The file is valid JSON even before close (sealed after every flush).
  {
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_TRUE(json_parser(buf.str()).accept())
        << "mid-run streamed file is not well-formed JSON";
  }

  trace::stream_close();
  EXPECT_FALSE(trace::streaming());
  EXPECT_EQ(trace::streamed_events(), 100u)
      << "stream_close must flush the residual ring contents";

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  std::string const text = buf.str();
  std::remove(path.c_str());

  EXPECT_TRUE(json_parser(text).accept()) << "streamed file is invalid JSON";
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(text.find("\"rmi_send\""), std::string::npos);
  // All 100 events are on disk: count the event objects by their arg key.
  std::size_t occurrences = 0;
  for (std::size_t pos = 0;
       (pos = text.find("\"rmi_send\"", pos)) != std::string::npos; ++pos)
    occurrences += 1;
  EXPECT_EQ(occurrences, 100u);
}

TEST(InstrumentTest, StreamedServeStyleRunKeepsEventsUnderKindMask)
{
  trace_guard guard;
  std::string const path = "test_instrument_stream_masked.json";
  trace::enable(16, /*keep_last=*/false,
                trace::kind_bit(trace::event_kind::fence) |
                    trace::kind_bit(trace::event_kind::rebalance_wave) |
                    trace::kind_bit(trace::event_kind::migration));
  ASSERT_TRUE(trace::stream_to(path));

  execute(4, [] {
    p_array<long> pa(256 * num_locations(), 0);
    load_balancer_config lb_cfg;
    lb_cfg.imbalance_threshold = 1.05;
    pa.enable_load_balancing(lb_cfg);
    // Hammer location 0's elements so the wave migrates something.
    for (std::size_t i = 0; i < 400; ++i)
      pa.apply_set(i % 64, [](long& v) { v += 1; });
    rmi_fence();
    (void)pa.rebalance();
    rmi_fence();
  });

  trace::stream_close();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  std::string const text = buf.str();
  std::remove(path.c_str());

  EXPECT_TRUE(json_parser(text).accept());
  EXPECT_NE(text.find("\"fence\""), std::string::npos);
  EXPECT_NE(text.find("\"rebalance_wave\""), std::string::npos);
  // The flood kinds were filtered at emit.
  EXPECT_EQ(text.find("\"rmi_send\""), std::string::npos);
  EXPECT_EQ(text.find("\"task_run\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Global snapshot: all four families + byte counters in one map
// ---------------------------------------------------------------------------

TEST(InstrumentTest, GlobalSnapshotSurfacesAllFamilies)
{
  execute(4, [] {
    metrics::reset_all();

    // rmi.* and dir.*: remote element traffic through a pArray.
    p_array<long> pa(1'000 * num_locations(), 0);
    load_balancer_config lb_cfg;
    pa.enable_load_balancing(lb_cfg);
    gid1d const remote = 1'000 * ((this_location() + 1) % num_locations());
    for (std::size_t i = 0; i < 200; ++i)
      pa.apply_set(remote + i % 1'000, [](long& v) { v += 1; });
    rmi_fence();

    // tg.*: an imbalanced stealable graph.
    run_imbalanced_steal_graph(24);

    // lb.*: one rebalance wave (triggered or not, the wave is counted).
    (void)pa.rebalance();

    auto g = metrics::global_snapshot();
    for (char const* key :
         {"rmi.rmis_sent", "rmi.rmis_executed", "rmi.msgs_sent",
          "rmi.rmi_bytes", "rmi.msg_bytes", "idle.spins", "idle.sleeps",
          "idle.nap_us", "tg.tasks_run", "tg.tasks_stolen", "tg.steal_grants",
          "tg.spawn_bytes", "dir.local_hits", "dir.home_routed",
          "dir.forwards", "dir.owner_accesses", "lb.waves"}) {
      EXPECT_TRUE(g.count(key) != 0) << "missing counter: " << key;
    }
    // The reduce is over all four locations: totals, not one location's view.
    EXPECT_EQ(g["tg.tasks_run"], 25u); // 24 work tasks + 1 sink
    // Every location counts the collective wave it took part in.
    EXPECT_EQ(g["lb.waves"], static_cast<std::uint64_t>(num_locations()));
    EXPECT_GT(g["rmi.rmis_sent"], 0u);
    EXPECT_GT(g["rmi.rmi_bytes"], 0u);
    EXPECT_GT(g["rmi.msg_bytes"], 0u); // queue transport aggregates messages
    EXPECT_GT(g["dir.owner_accesses"], 0u);
    rmi_fence();
  });
}

} // namespace
