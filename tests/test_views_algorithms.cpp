// Tests for the pView layer (Ch. III.A, Table II) and the generic
// pAlgorithms (Ch. VIII.C), validated against sequential references.

#include "algorithms/p_algorithms.hpp"
#include "containers/p_array.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <random>
#include <vector>

namespace {

using namespace stapl;

class ViewAlgoTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(ViewAlgoTest, GenerateForEachAccumulate)
{
  execute(GetParam(), [] {
    std::size_t const n = 1000;
    p_array<long> pa(n);
    array_1d_view v(pa);

    // p_generate with a deterministic generator seeded per location.
    long counter = 0;
    p_generate(v, [&counter]() { return counter++; });
    // Each local element got 0..local_size-1; global sum is the sum of
    // per-location arithmetic series.
    auto const local_n = pa.local_size();
    long const local_expect =
        static_cast<long>(local_n * (local_n - 1) / 2);
    long const expect = allreduce(local_expect, std::plus<>{});
    EXPECT_EQ(p_accumulate(v, 0L), expect);

    // p_for_each increments every element (the Fig. 24 kernel body).
    p_for_each(v, [](long& x) { ++x; });
    EXPECT_EQ(p_accumulate(v, 0L), expect + static_cast<long>(n));
    rmi_fence();
  });
}

TEST_P(ViewAlgoTest, FillCountFind)
{
  execute(GetParam(), [] {
    p_array<int> pa(500);
    array_1d_view v(pa);
    p_fill(v, 9);
    EXPECT_EQ(p_count(v, 9), 500u);
    EXPECT_EQ(p_count(v, 1), 0u);

    if (this_location() == 0)
      pa.set_element(321, 77);
    rmi_fence();
    EXPECT_EQ(p_find(v, 77), 321u);
    EXPECT_EQ(p_find(v, 123456), invalid_gid);
    EXPECT_EQ(p_count_if(v, [](int x) { return x > 10; }), 1u);
    rmi_fence();
  });
}

TEST_P(ViewAlgoTest, MinMaxInnerProduct)
{
  execute(GetParam(), [] {
    std::size_t const n = 256;
    p_array<int> pa(n);
    p_array<int> pb(n);
    array_1d_view va(pa), vb(pb);
    // a[i] = (i*37)%101, b[i] = 2 — deterministic, computed via gid.
    p_for_each_gid(va, [](gid1d g, int& x) {
      x = static_cast<int>((g * 37) % 101);
    });
    p_fill(vb, 2);

    std::vector<int> ref(n);
    for (std::size_t i = 0; i < n; ++i)
      ref[i] = static_cast<int>((i * 37) % 101);

    auto mn = p_min_element(va);
    auto mx = p_max_element(va);
    ASSERT_TRUE(mn.has_value());
    ASSERT_TRUE(mx.has_value());
    auto ref_mn = std::min_element(ref.begin(), ref.end());
    auto ref_mx = std::max_element(ref.begin(), ref.end());
    EXPECT_EQ(mn->second, *ref_mn);
    EXPECT_EQ(mx->second, *ref_mx);
    EXPECT_EQ(mn->first, static_cast<gid1d>(ref_mn - ref.begin()));
    EXPECT_EQ(mx->first, static_cast<gid1d>(ref_mx - ref.begin()));

    long const ip = p_inner_product(va, vb, 0L);
    long const ref_ip =
        std::inner_product(ref.begin(), ref.end(), ref.begin(), 0L,
                           std::plus<>{},
                           [](int a, int) { return 2L * a; });
    EXPECT_EQ(ip, ref_ip);
    rmi_fence();
  });
}

TEST_P(ViewAlgoTest, TransformAndCopy)
{
  execute(GetParam(), [] {
    std::size_t const n = 300;
    p_array<int> pa(n), pb(n);
    array_1d_view va(pa), vb(pb);
    p_for_each_gid(va, [](gid1d g, int& x) { x = static_cast<int>(g); });
    p_transform(va, vb, [](int x) { return x * x; });
    for (gid1d g = 0; g < n; g += 37)
      EXPECT_EQ(pb.get_element(g), static_cast<int>(g * g));

    p_array<int> pc(n);
    p_copy(vb, array_1d_view(pc));
    EXPECT_EQ(p_inner_product(array_1d_view(pb), array_1d_view(pc), 0L),
              p_inner_product(vb, vb, 0L));
    rmi_fence();
  });
}

TEST_P(ViewAlgoTest, PartialSum)
{
  execute(GetParam(), [] {
    std::size_t const n = 777;
    p_array<long> pa(n), pb(n);
    p_for_each_gid(array_1d_view(pa),
                   [](gid1d g, long& x) { x = static_cast<long>(g % 7); });
    p_partial_sum(pa, pb);

    std::vector<long> ref(n);
    for (std::size_t i = 0; i < n; ++i)
      ref[i] = static_cast<long>(i % 7);
    std::partial_sum(ref.begin(), ref.end(), ref.begin());
    for (gid1d g = 0; g < n; g += 31)
      EXPECT_EQ(pb.get_element(g), ref[g]);
    EXPECT_EQ(pb.get_element(n - 1), ref[n - 1]);
    rmi_fence();
  });
}

TEST_P(ViewAlgoTest, AdjacentDifference)
{
  execute(GetParam(), [] {
    std::size_t const n = 128;
    p_array<int> pa(n), pb(n);
    p_for_each_gid(array_1d_view(pa),
                   [](gid1d g, int& x) { x = static_cast<int>(g * g); });
    p_adjacent_difference(pa, pb);
    EXPECT_EQ(pb.get_element(0), 0);
    for (gid1d g = 1; g < n; ++g)
      EXPECT_EQ(pb.get_element(g),
                static_cast<int>(g * g - (g - 1) * (g - 1)));
    rmi_fence();
  });
}

// ---------------------------------------------------------------------------
// Specific views
// ---------------------------------------------------------------------------

TEST_P(ViewAlgoTest, BalancedViewCoversDomainOnce)
{
  execute(GetParam(), [] {
    p_array<int> pa(101);
    balanced_view bv(pa);
    auto counts = allgather(bv.local_gids());
    if (this_location() == 0) {
      std::vector<int> seen(101, 0);
      for (auto const& gs : counts)
        for (auto g : gs)
          ++seen[g];
      for (int c : seen)
        EXPECT_EQ(c, 1);
    }
    rmi_fence();
  });
}

TEST_P(ViewAlgoTest, StridedView)
{
  execute(GetParam(), [] {
    p_array<int> pa(100);
    p_for_each_gid(array_1d_view(pa),
                   [](gid1d g, int& x) { x = static_cast<int>(g); });
    strided_1d_view sv(pa, 2); // even elements
    EXPECT_EQ(sv.size(), 50u);
    // Double every even element through the strided view.
    p_for_each(sv, [](int& x) { x *= 2; });
    for (gid1d g = 0; g < 100; ++g)
      EXPECT_EQ(pa.get_element(g),
                g % 2 == 0 ? static_cast<int>(2 * g) : static_cast<int>(g));
    rmi_fence();
  });
}

TEST_P(ViewAlgoTest, TransformView)
{
  execute(GetParam(), [] {
    p_array<int> pa(64);
    p_fill(array_1d_view(pa), 3);
    array_1d_view av(pa);
    transform_view tv(av, [](int x) { return x * 10; });
    EXPECT_EQ(p_accumulate(tv, 0), 64 * 30);
    rmi_fence();
  });
}

TEST_P(ViewAlgoTest, FilteredView)
{
  execute(GetParam(), [] {
    p_array<int> pa(60);
    p_for_each_gid(array_1d_view(pa),
                   [](gid1d g, int& x) { x = static_cast<int>(g); });
    array_1d_view av(pa);
    filtered_view fv(av, [](gid1d g) { return g % 3 == 0; });
    EXPECT_EQ(fv.size(), 20u);
    // Sum of multiples of 3 below 60.
    EXPECT_EQ(p_accumulate(fv, 0), 3 * (19 * 20 / 2));
    rmi_fence();
  });
}

TEST_P(ViewAlgoTest, CountingView)
{
  execute(GetParam(), [] {
    counting_view<long> cv(1000, 5);
    EXPECT_EQ(p_accumulate(cv, 0L), 5L * 1000 + 999L * 1000 / 2);
    rmi_fence();
  });
}

TEST(OverlapView, PaperExample)
{
  // Fig. 2: A[0,10] (11 elements), c=2, l=2, r=1 -> windows
  // A[0,4], A[2,6], A[4,8], A[6,10].
  execute(2, [] {
    p_array<int> pa(11);
    p_for_each_gid(array_1d_view(pa),
                   [](gid1d g, int& x) { x = static_cast<int>(g); });
    array_1d_view v(pa);
    overlap_view ov(v, 2, 2, 1);
    EXPECT_EQ(ov.size(), 4u);
    for (gid1d i = 0; i < 4; ++i) {
      auto w = ov.read(i);
      EXPECT_EQ(w.first(), 2 * i);
      EXPECT_EQ(w.last(), 2 * i + 4);
      EXPECT_EQ(w.size(), 5u);
      for (std::size_t k = 0; k < w.size(); ++k)
        EXPECT_EQ(w[k], static_cast<int>(2 * i + k));
    }
    rmi_fence();
  });
}

TEST(OverlapView, StringMatchingPattern)
{
  // Sliding windows of 3 with core 1: classic adjacent-triples traversal.
  execute(4, [] {
    std::size_t const n = 50;
    p_array<int> pa(n);
    p_for_each_gid(array_1d_view(pa),
                   [](gid1d g, int& x) { x = static_cast<int>(g % 5); });
    array_1d_view v(pa);
    overlap_view ov(v, 1, 0, 2);
    EXPECT_EQ(ov.size(), n - 2);
    // Count windows summing to 6 ((1,2,3) and (2,3,4) patterns, etc.).
    std::size_t local = 0;
    for (auto i : ov.local_gids()) {
      auto w = ov.read(i);
      if (w[0] + w[1] + w[2] == 6)
        ++local;
    }
    auto const total = allreduce(local, std::plus<>{});
    std::size_t expect = 0;
    for (std::size_t i = 0; i + 2 < n; ++i)
      if (static_cast<int>(i % 5) + static_cast<int>((i + 1) % 5) +
              static_cast<int>((i + 2) % 5) ==
          6)
        ++expect;
    EXPECT_EQ(total, expect);
    rmi_fence();
  });
}

// ---------------------------------------------------------------------------
// Chunk descriptors (locality pipeline)
// ---------------------------------------------------------------------------

TEST_P(ViewAlgoTest, ChunkDescriptorsCoverLocalDomain)
{
  execute(GetParam(), [] {
    p_array<long> pa(1000);
    array_1d_view v(pa);
    std::size_t total = 0;
    for (auto const& d : v.chunks(64)) {
      EXPECT_FALSE(d.empty());
      EXPECT_LE(d.size(), 64u);
      EXPECT_EQ(d.owner, this_location());
      EXPECT_EQ(d.cached_at, invalid_location) << "cold view claims warmth";
      EXPECT_EQ(d.bytes, d.size() * sizeof(long));
      EXPECT_LE(d.digest_lo(), d.digest_hi());
      // Contiguous local runs of an integral GID space run-encode.
      EXPECT_TRUE(d.gids.run_encoded());
      // The wire form mirrors the descriptor's metadata, payload-free.
      auto const w = d.wire();
      EXPECT_EQ(w.owner, d.owner);
      EXPECT_EQ(w.cached_at, d.cached_at);
      EXPECT_EQ(w.bytes, d.bytes);
      EXPECT_EQ(w.elements, d.size());
      EXPECT_TRUE(w.has_digest);
      EXPECT_EQ(w.digest_lo, d.digest_lo());
      EXPECT_EQ(w.digest_hi, d.digest_hi());
      total += d.size();
    }
    EXPECT_EQ(total, pa.local_size());
    rmi_fence();
  });
}

TEST_P(ViewAlgoTest, BalancedViewDescriptorOwnersFollowStorage)
{
  execute(GetParam(), [] {
    std::size_t const n = 96;
    p_array<int> pa(n);
    balanced_view bv(pa, 4 * num_locations());
    bool any_remote = false;
    std::size_t total = 0;
    for (auto const& d : bv.chunks(8)) {
      // The descriptor's owner is where the chunk's head element is
      // *stored* (closed-form lookup), not where the balanced deal landed
      // it — the executor spawns the chunk task at the data.
      EXPECT_EQ(d.owner, pa.lookup(d.gids.front()));
      any_remote |= d.owner != this_location();
      total += d.size();
    }
    EXPECT_EQ(total, bv.local_gids().size());
    // With several locations the round-robin deal must cross the blocked
    // storage distribution somewhere.
    auto const crossed = allreduce(any_remote ? 1 : 0, std::plus<>{});
    if (num_locations() > 1) {
      EXPECT_GT(crossed, 0);
    }
    rmi_fence();
  });
}

TEST_P(ViewAlgoTest, WrapperViewsProduceChunkDescriptors)
{
  execute(GetParam(), [] {
    std::size_t const n = 120;
    p_array<int> pa(n);
    p_for_each_gid(array_1d_view(pa),
                   [](gid1d g, int& x) { x = static_cast<int>(g); });
    array_1d_view av(pa);

    auto cover = [](auto const& view, auto const& chunks) {
      std::size_t total = 0;
      for (auto const& d : chunks) {
        EXPECT_FALSE(d.empty());
        total += d.size();
      }
      EXPECT_EQ(total, view.local_gids().size());
    };

    transform_view tv(av, [](int x) { return x * 2; });
    cover(tv, tv.chunks(16));

    filtered_view fv(av, [](gid1d g) { return g % 2 == 0; });
    cover(fv, fv.chunks(16));

    strided_1d_view sv(pa, 3);
    cover(sv, sv.chunks(16));

    overlap_view ov(av, 2, 1, 1);
    cover(ov, ov.chunks(16));

    // And the chunked (stealable) execution path over a wrapper view still
    // computes the right answer — the descriptors are consumed end-to-end.
    exec_policy pol;
    pol.grain = 16;
    pol.stealable = true;
    auto const sum = map_reduce(
        tv, [](int x) { return static_cast<long>(x); },
        [](long a, long b) { return a + b; }, pol);
    ASSERT_TRUE(sum.has_value());
    EXPECT_EQ(*sum, static_cast<long>(n * (n - 1)));
    rmi_fence();
  });
}

TEST(NativeView, AlignedTraversalIsAllLocal)
{
  execute(4, [] {
    p_array<int> pa(128);
    native_view nv(pa);
    for (auto g : nv.local_gids())
      EXPECT_NE(nv.try_local_ref(g), nullptr);
    // Chunk traversal visits exactly the local elements.
    std::size_t seen = 0;
    nv.for_each_local([&](gid1d, int&) { ++seen; });
    EXPECT_EQ(seen, pa.local_size());
    rmi_fence();
  });
}

INSTANTIATE_TEST_SUITE_P(Locations, ViewAlgoTest,
                         ::testing::Values(1, 2, 4, 8));

} // namespace
