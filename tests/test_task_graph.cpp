// Unit tests for the PARAGRAPH-style task-graph executor
// (runtime/task_graph.hpp): coarsened chunk tasks, value-carrying
// dependence edges across locations, cross-location work stealing
// (determinism of results, not schedules), exactly-once chunk execution
// under concurrent element migration, and the scheduler stats — on both
// transports with at least 4 locations.

#include "algorithms/p_algorithms.hpp"
#include "containers/p_array.hpp"
#include "runtime/executor.hpp"
#include "runtime/task_graph.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <numeric>
#include <thread>
#include <vector>

namespace {

using namespace stapl;

runtime_config config_for(transport_kind t, unsigned p)
{
  runtime_config cfg;
  cfg.num_locations = p;
  cfg.transport = t;
  return cfg;
}

class task_graph_test : public ::testing::TestWithParam<transport_kind> {};

INSTANTIATE_TEST_SUITE_P(Transports, task_graph_test,
                         ::testing::Values(transport_kind::queue,
                                           transport_kind::direct),
                         [](auto const& info) {
                           return info.param == transport_kind::queue
                                      ? "queue"
                                      : "direct";
                         });

// ---------------------------------------------------------------------------
// Value-carrying dependence edges
// ---------------------------------------------------------------------------

TEST_P(task_graph_test, ValueChainAcrossLocations)
{
  execute(config_for(GetParam(), 4), [] {
    task_graph<long> tg;
    using tid = task_graph<long>::task_id;
    // A 16-task chain snaking over the locations; each link adds its index.
    tid prev = 0;
    long expect = 0;
    for (int i = 0; i < 16; ++i) {
      tid const t = tg.add_task(
          static_cast<location_id>(i % num_locations()),
          [i](std::vector<long> const& ins, char const&) {
            return (ins.empty() ? 0L : ins[0]) + i;
          });
      if (i > 0)
        tg.add_dependence(prev, t);
      prev = t;
      expect += i;
    }
    // Fan the chain's result out to a sink per location.
    std::vector<tid> sinks;
    for (location_id l = 0; l < num_locations(); ++l) {
      sinks.push_back(tg.add_task(
          l, [](std::vector<long> const& ins, char const&) {
            return ins.at(0);
          }));
      tg.add_dependence(prev, sinks.back());
    }
    tg.execute();
    EXPECT_EQ(tg.result_of(sinks[this_location()]), expect);
    rmi_fence();
  });
}

TEST_P(task_graph_test, DiamondDeliversBothValues)
{
  execute(config_for(GetParam(), 4), [] {
    task_graph<long> tg;
    auto const src = tg.add_task(
        0, [](std::vector<long> const&, char const&) { return 7L; });
    auto const left = tg.add_task(
        1 % num_locations(), [](std::vector<long> const& ins, char const&) {
          return ins.at(0) * 2;
        });
    auto const right = tg.add_task(
        2 % num_locations(), [](std::vector<long> const& ins, char const&) {
          return ins.at(0) * 3;
        });
    auto const join = tg.add_task(
        3 % num_locations(), [](std::vector<long> const& ins, char const&) {
          return ins.at(0) + ins.at(1);
        });
    tg.add_dependence(src, left);
    tg.add_dependence(src, right);
    tg.add_dependence(left, join);
    tg.add_dependence(right, join);
    tg.execute();
    if (this_location() == 3 % num_locations())
      EXPECT_EQ(tg.result_of(join), 7 * 2 + 7 * 3);
    EXPECT_TRUE(tg.task_done(join) ||
                this_location() != 3 % num_locations());
    rmi_fence();
  });
}

// ---------------------------------------------------------------------------
// Coarsened chunk tasks
// ---------------------------------------------------------------------------

TEST_P(task_graph_test, ChunkedMapAppliesEveryElementOnce)
{
  execute(config_for(GetParam(), 4), [] {
    std::size_t const n = 4000;
    p_array<long> pa(n, 1);
    array_1d_view v(pa);
    // Tiny grain: many chunk tasks per location.
    exec_policy pol;
    pol.grain = 64;
    map_func([](long& x) { x += 41; }, v, pol);
    EXPECT_EQ(p_accumulate(v, 0L), static_cast<long>(n) * 42);
    rmi_fence();
  });
}

TEST_P(task_graph_test, ViewChunksRespectGrain)
{
  execute(config_for(GetParam(), 4), [] {
    p_array<long> pa(1024);
    array_1d_view v(pa);
    auto const chunks = v.chunks(100);
    std::size_t total = 0;
    for (auto const& c : chunks) {
      EXPECT_LE(c.size(), 100u);
      EXPECT_FALSE(c.empty());
      total += c.size();
    }
    EXPECT_EQ(total, pa.local_size());
    // The heuristic grain stays within [min_grain, n].
    EXPECT_GE(default_grain(pa.size()), 1u);
    rmi_fence();
  });
}

TEST_P(task_graph_test, TreeReduceMatchesReference)
{
  execute(config_for(GetParam(), 4), [] {
    std::size_t const n = 3000;
    p_array<long> pa(n);
    array_1d_view v(pa);
    p_for_each_gid(v, [](gid1d g, long& x) { x = static_cast<long>(g % 97); });

    long ref = 0;
    for (std::size_t g = 0; g < n; ++g)
      ref += static_cast<long>(g % 97);

    exec_policy pol;
    pol.grain = 50; // deep combine tree
    auto const sum = map_reduce(
        v, [](long const& x) { return x; },
        [](long a, long b) { return a + b; }, pol);
    ASSERT_TRUE(sum.has_value());
    EXPECT_EQ(*sum, ref);

    // GID-arity map functor.
    auto const weighted = map_reduce(
        v, [](gid1d g, long const& x) { return static_cast<long>(g) + x; },
        [](long a, long b) { return a + b; }, pol);
    ASSERT_TRUE(weighted.has_value());
    EXPECT_EQ(*weighted, ref + static_cast<long>(n * (n - 1) / 2));
    rmi_fence();
  });
}

TEST_P(task_graph_test, TreeReduceEmptyViewIsNullopt)
{
  execute(config_for(GetParam(), 4), [] {
    p_array<long> pa(0);
    auto const r = map_reduce(
        array_1d_view(pa), [](long const& x) { return x; },
        [](long a, long b) { return a + b; });
    EXPECT_FALSE(r.has_value());
    rmi_fence();
  });
}

// ---------------------------------------------------------------------------
// Work stealing
// ---------------------------------------------------------------------------

/// Builds a deliberately imbalanced graph: every stealable task is owned
/// by location 0 and simulates a latency-bound chunk (sleep), returning a
/// known value into a per-location sink.
long run_imbalanced(bool steal, task_graph_stats* agg = nullptr,
                    int tasks = 24)
{
  task_graph<long> tg;
  tg.set_stealing(steal);
  using tid = task_graph<long>::task_id;
  task_options stealable;
  stealable.stealable = true;
  std::vector<tid> work;
  for (int i = 0; i < tasks; ++i) {
    work.push_back(tg.add_task(
        0,
        [i](std::vector<long> const&, char const&) {
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
          return static_cast<long>(i * i);
        },
        {}, stealable));
  }
  std::vector<tid> sinks;
  for (location_id l = 0; l < num_locations(); ++l) {
    tid const s = tg.add_task(
        l, [](std::vector<long> const& ins, char const&) {
          return std::accumulate(ins.begin(), ins.end(), 0L);
        });
    for (tid const t : work)
      tg.add_dependence(t, s);
    sinks.push_back(s);
  }
  tg.execute();
  if (agg)
    *agg = tg.global_stats();
  return tg.result_of(sinks[this_location()]);
}

TEST_P(task_graph_test, StealingPreservesResultsNotSchedules)
{
  execute(config_for(GetParam(), 4), [] {
    long expect = 0;
    for (int i = 0; i < 24; ++i)
      expect += static_cast<long>(i) * i;

    task_graph_stats stolen_stats;
    long const with_steal = run_imbalanced(true, &stolen_stats);
    EXPECT_EQ(with_steal, expect);
    // Every task ran exactly once somewhere (24 work + P sinks).
    EXPECT_EQ(stolen_stats.tasks_run, 24u + num_locations());
    // The all-on-location-0 layout with sleeping tasks gives idle peers
    // ample time to pull work over.
    EXPECT_GT(stolen_stats.tasks_stolen, 0u)
        << "no task was stolen from the overloaded location";
    EXPECT_EQ(stolen_stats.tasks_stolen, stolen_stats.tasks_lost);

    task_graph_stats pinned_stats;
    long const without_steal = run_imbalanced(false, &pinned_stats);
    EXPECT_EQ(without_steal, expect) << "result depends on the schedule";
    EXPECT_EQ(pinned_stats.tasks_stolen, 0u);
    EXPECT_EQ(pinned_stats.tasks_lost, 0u);
    rmi_fence();
  });
}

TEST_P(task_graph_test, StealHalfGrantsBatchesAndPreservesResults)
{
  execute(config_for(GetParam(), 4), [] {
    // A large all-on-location-0 backlog of sleeping tasks: steal-half
    // grants ship several tasks per probe, and the result must not depend
    // on how the batches were cut.
    long expect = 0;
    for (int i = 0; i < 32; ++i)
      expect += static_cast<long>(i) * i;
    task_graph_stats stats;
    long const got = run_imbalanced(true, &stats, 32);
    EXPECT_EQ(got, expect);
    EXPECT_EQ(stats.tasks_run, 32u + num_locations());
    EXPECT_GT(stats.tasks_stolen, 0u);
    EXPECT_EQ(stats.tasks_stolen, stats.tasks_lost);
    // Every grant carries at least one task, and with a 32-task backlog
    // the first grants carry many — batching is visible as more tasks
    // stolen than probe round trips that returned work.
    EXPECT_GE(stats.tasks_stolen, stats.steal_grants);
    rmi_fence();
  });
}

// The ISSUE's constructed two-victim scenario, at the unit level: the
// victim order is computed from the replicated descriptor, so it is a pure
// function — the thief must rank the victim whose stealable chunks are
// annotated cached-at-thief above a colder, even more loaded one.
TEST(steal_victim_order, PrefersCacheWarmThenLoadedVictims)
{
  // Location 3's perspective: 0 and 2 own more tasks, but 1 owns two
  // chunks cached at 3.
  auto const order = steal_victim_order(
      3, /*owned=*/{8, 5, 8, 0}, /*warmth=*/{0, 2, 0, 0});
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1u) << "cache-warm victim not probed first";
  EXPECT_EQ(order[1], 0u) << "load order (ties toward lower id) broken";
  EXPECT_EQ(order[2], 2u);

  // No warmth anywhere: pure descending-load order, lower id on ties.
  auto const cold = steal_victim_order(0, {0, 3, 7, 3}, {0, 0, 0, 0});
  ASSERT_EQ(cold.size(), 3u);
  EXPECT_EQ(cold[0], 2u);
  EXPECT_EQ(cold[1], 1u);
  EXPECT_EQ(cold[2], 3u);
}

TEST_P(task_graph_test, TwoVictimStealPrefersCacheWarmVictim)
{
  execute(config_for(GetParam(), 3), [] {
    // Locations 1 and 2 each own a backlog of sleeping stealable tasks;
    // location 1's are annotated cached-at-0.  The idle location 0 must
    // drain the warm victim first.  Each task returns the location that
    // executed it, so the owners can count where their work went.
    int const per_victim = 12;
    task_graph<long> tg;
    using tid = task_graph<long>::task_id;
    std::vector<tid> warm_tasks, cold_tasks;
    task_options warm;
    warm.stealable = true;
    warm.cached_at = 0;
    task_options cold;
    cold.stealable = true;
    auto work = [](std::vector<long> const&, char const&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      return static_cast<long>(this_location());
    };
    for (int i = 0; i < per_victim; ++i) {
      warm_tasks.push_back(tg.add_task(1, work, {}, warm));
      cold_tasks.push_back(tg.add_task(2, work, {}, cold));
    }
    tg.execute();

    // Owners know where each of their tasks ran (completion records).
    int warm_to_thief = 0, cold_to_thief = 0;
    if (this_location() == 1)
      for (tid const t : warm_tasks)
        warm_to_thief += tg.result_of(t) == 0 ? 1 : 0;
    if (this_location() == 2)
      for (tid const t : cold_tasks)
        cold_to_thief += tg.result_of(t) == 0 ? 1 : 0;
    auto const warm_stolen = allreduce(warm_to_thief, std::plus<>{});
    auto const cold_stolen = allreduce(cold_to_thief, std::plus<>{});
    // The schedule is timing-dependent, but the warm victim is always
    // probed first, so it can never lose *more* work to the thief than
    // the cold one... it must lose at least as much.
    EXPECT_GE(warm_stolen, cold_stolen)
        << "thief drained the cold victim before the cache-warm one";
    rmi_fence();
  });
}

TEST_P(task_graph_test, NonStealableTasksStayHome)
{
  execute(config_for(GetParam(), 4), [] {
    task_graph<long> tg; // stealing on, but nothing is marked stealable
    for (int i = 0; i < 8; ++i) {
      tg.add_task(0, [](std::vector<long> const&, char const&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        return 0L;
      });
    }
    tg.execute();
    auto const stats = tg.global_stats();
    EXPECT_EQ(stats.tasks_stolen, 0u);
    EXPECT_EQ(stats.tasks_run, 8u);
    rmi_fence();
  });
}

// ---------------------------------------------------------------------------
// Adaptive grain and placement feedback (locality pipeline)
// ---------------------------------------------------------------------------

TEST_P(task_graph_test, AdaptiveGrainShrinksUnderStealsAndRecovers)
{
  execute(config_for(GetParam(), 4), [] {
    p_array<long> pa(1024);
    EXPECT_DOUBLE_EQ(pa.grain_factor(), 1.0);
    std::size_t const base = 1000;
    EXPECT_EQ(pa.tuned_grain(base), base);

    // A graph that moved >= 25% of this location's tasks: chunks were too
    // coarse to balance — the factor halves (and keeps halving down to
    // the clamp across consecutive stormy graphs).
    task_graph_stats stormy;
    stormy.tasks_run = 8;
    stormy.tasks_stolen = 4;
    pa.note_task_graph_stats(stormy);
    EXPECT_DOUBLE_EQ(pa.grain_factor(), 0.5);
    EXPECT_EQ(pa.tuned_grain(base), 500u);
    for (int i = 0; i < 10; ++i)
      pa.note_task_graph_stats(stormy);
    EXPECT_DOUBLE_EQ(pa.grain_factor(), grain_tuner::min_factor);
    EXPECT_GE(pa.tuned_grain(base), 1u);

    // Quiet steal-free graphs relax the factor back up (clamped above).
    task_graph_stats quiet;
    quiet.tasks_run = 8;
    double prev = pa.grain_factor();
    pa.note_task_graph_stats(quiet);
    EXPECT_GT(pa.grain_factor(), prev);
    for (int i = 0; i < 40; ++i)
      pa.note_task_graph_stats(quiet);
    EXPECT_DOUBLE_EQ(pa.grain_factor(), grain_tuner::max_factor);

    // Both signals accumulated into the epoch's task stats (the load
    // balancer's second signal) until reset.
    EXPECT_GT(pa.epoch_task_stats().tasks_run, 0u);
    EXPECT_GT(pa.epoch_task_stats().tasks_stolen, 0u);
    pa.reset_task_stats();
    EXPECT_EQ(pa.epoch_task_stats().tasks_run, 0u);
    rmi_fence();
  });
}

TEST_P(task_graph_test, PlacementFeedbackWarmsChunkDescriptors)
{
  execute(config_for(GetParam(), 4), [] {
    std::size_t const n = 64 * num_locations();
    p_array<long> pa(n, 0);
    array_1d_view v(pa);

    // Cold start: no placement has been observed, no cached-at hints.
    for (auto const& d : v.chunks(16))
      EXPECT_EQ(d.cached_at, invalid_location);

    // A deliberately skewed stealable run: location 0's elements carry all
    // the work, so thieves drag its chunks away and the lost_events()
    // feedback lands in the container's affinity table.
    exec_policy pol;
    pol.grain = 8;
    pol.stealable = true;
    p_for_each_gid(v, [n](gid1d g, long& x) {
      if (g < n / 4)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      x += 1;
    }, pol);

    // Where steals happened, the owner's next descriptors carry hints
    // (the schedule is timing-dependent, so gate on observed losses).
    if (pa.epoch_task_stats().tasks_lost > 0) {
      bool any_warm = false;
      for (auto const& d : v.chunks(16))
        any_warm |= d.cached_at != invalid_location;
      EXPECT_TRUE(any_warm)
          << "chunks were lost to thieves but no descriptor warmed up";
    }
    auto const total_lost = allreduce(pa.epoch_task_stats().tasks_lost,
                                      std::plus<>{});
    EXPECT_GT(total_lost, 0u) << "skewed sleeping chunks were never stolen";
    rmi_fence();
  });
}

// ---------------------------------------------------------------------------
// Chunk tasks vs. concurrent element migration
// ---------------------------------------------------------------------------

TEST_P(task_graph_test, ChunkTasksExactlyOnceUnderConcurrentMigration)
{
  execute(config_for(GetParam(), 4), [] {
    std::size_t const n = 64 * num_locations();
    p_array<long> pa(n, 0);
    pa.make_dynamic();

    // Chunk tasks increment every element through the routed apply path
    // (stealable: correct from any location) while migrator tasks scatter
    // elements between locations mid-flight.  Chunks travel the split
    // spawn path like every chunked factory: wire forms allgathered,
    // run-encoded payloads attached owner-locally — and, with every
    // descriptor deliberately owned by the *next* location over, each
    // payload must be forwarded producer→owner while the migration churn
    // runs.
    task_graph<char, gid_sequence<gid1d>> tg;
    auto local = tg_detail::make_descriptors(
        tg_detail::chunk_gids(pa.local_gids(), 16), sizeof(long));
    std::size_t const my_chunks = local.size();
    for (auto& d : local)
      d.owner = (this_location() + 1) % num_locations();
    std::uint64_t wire_bytes = 0;
    auto all = tg_detail::exchange_wire_forms(local, wire_bytes);
    tg.note_spawn_bytes(wire_bytes);
    EXPECT_GT(wire_bytes, 0u);
    auto work = [&pa](std::vector<char> const&,
                      gid_sequence<gid1d> const& gids) {
      gids.for_each(
          [&](gid1d g) { pa.apply_set(g, [](long& x) { x += 1; }); });
      return char{};
    };
    for (location_id l = 0; l < num_locations(); ++l)
      for (std::size_t k = 0; k < all[l].size(); ++k)
        tg_detail::spawn_chunk_task(tg, all[l][k], l, k, local, work, true);
    // One migrator task per location, interleaved with the increments:
    // each scatters a slice of the domain to the next location over.
    for (location_id l = 0; l < num_locations(); ++l)
      tg.add_task(l, [&pa, n](std::vector<char> const&,
                              gid_sequence<gid1d> const&) {
        location_id const me = this_location();
        for (std::size_t g = me; g < n; g += 2 * num_locations())
          pa.migrate(g, (me + 1) % num_locations());
        return char{};
      });
    tg.execute();

    // Exactly once: every element was incremented exactly one time, no
    // matter where its chunk ran, where its payload was forwarded from,
    // or where the element went.
    for (std::size_t g = 0; g < n; ++g)
      EXPECT_EQ(pa.get_element(g), 1) << "gid " << g;

    // Every chunk's payload crossed producer→owner exactly once.
    auto const stats = tg.global_stats();
    auto const total_chunks = allreduce(my_chunks, std::plus<>{});
    EXPECT_EQ(stats.payload_forwards, total_chunks);
    EXPECT_GT(stats.spawn_bytes, 0u);

    // And the traversal after the dust settles covers the domain exactly.
    auto const total = allreduce(pa.local_gids().size(), std::plus<>{});
    EXPECT_EQ(total, n);
    rmi_fence();
  });
}

// ---------------------------------------------------------------------------
// Run-length GID serialization (the spawn path's payload encoding)
// ---------------------------------------------------------------------------

template <typename G>
std::vector<G> round_trip(stapl::gid_sequence<G> const& s)
{
  return stapl::unpack<stapl::gid_sequence<G>>(stapl::pack(s)).to_vector();
}

TEST(gid_sequence, DenseRunCompressesAndRoundTrips)
{
  std::vector<gid1d> gids(1000);
  std::iota(gids.begin(), gids.end(), 100);
  gid_sequence<gid1d> s(gids);
  EXPECT_TRUE(s.run_encoded());
  ASSERT_EQ(s.runs().size(), 1u);
  EXPECT_EQ(s.runs()[0], (gid_run{100, 1000}));
  EXPECT_EQ(s.size(), 1000u);
  EXPECT_EQ(s.front(), 100u);
  EXPECT_EQ(s.back(), 1099u);
  // O(runs) on the wire: far below the raw 8 bytes per element.
  EXPECT_LT(packed_size(s), 1000 * sizeof(gid1d) / 4);
  EXPECT_EQ(round_trip(s), gids);
}

TEST(gid_sequence, MultipleRunsPreserveOrder)
{
  std::vector<gid1d> const gids{0, 1, 2, 10, 11, 12, 13, 100};
  gid_sequence<gid1d> s(gids);
  EXPECT_TRUE(s.run_encoded());
  EXPECT_EQ(s.runs().size(), 3u);
  EXPECT_EQ(round_trip(s), gids);
}

TEST(gid_sequence, SparseSequenceFallsBackToRawVector)
{
  std::vector<gid1d> gids;
  for (gid1d g = 0; g < 500; g += 2)
    gids.push_back(g); // all runs are singletons: encoding cannot compress
  gid_sequence<gid1d> s(gids);
  EXPECT_FALSE(s.run_encoded());
  EXPECT_EQ(s.size(), gids.size());
  EXPECT_EQ(round_trip(s), gids);
}

TEST(gid_sequence, SingleElementAndEmptyRoundTrip)
{
  gid_sequence<gid1d> one(std::vector<gid1d>{42});
  EXPECT_EQ(one.size(), 1u);
  EXPECT_EQ(one.front(), 42u);
  EXPECT_EQ(one.back(), 42u);
  EXPECT_EQ(round_trip(one), std::vector<gid1d>{42});

  gid_sequence<gid1d> empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_TRUE(round_trip(empty).empty());
}

TEST(gid_sequence, NonIntegralGidsUseRawFallback)
{
  std::vector<double> const gids{1.5, 2.5, 3.5, 10.0};
  gid_sequence<double> s(gids);
  EXPECT_FALSE(gid_sequence<double>::run_capable);
  EXPECT_FALSE(s.run_encoded());
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(round_trip(s), gids);
}

// ---------------------------------------------------------------------------
// Steal-grant hoarding guard (pure cap function; see handle_steal_request)
// ---------------------------------------------------------------------------

TEST(steal_grant_cap, CapsGrantByThiefBacklog)
{
  // Idle-handed thief: classic steal-half, down to a lone small task.
  EXPECT_EQ(steal_grant_cap(10, 0), 5u);
  EXPECT_EQ(steal_grant_cap(11, 0), 5u);
  EXPECT_EQ(steal_grant_cap(1, 0), 1u);
  // A loaded thief gets at most half the weight gap, so after the grant
  // it still holds no more than the victim keeps.
  EXPECT_EQ(steal_grant_cap(10, 4), 3u);
  EXPECT_EQ(steal_grant_cap(100, 98), 1u);
  // Backlog at or above the victim's stealable weight: nothing to grant —
  // including the half==0 gap where an idle thief would get the floor.
  EXPECT_EQ(steal_grant_cap(10, 10), 0u);
  EXPECT_EQ(steal_grant_cap(10, 20), 0u);
  EXPECT_EQ(steal_grant_cap(10, 9), 0u);
  EXPECT_EQ(steal_grant_cap(0, 0), 0u);
}

// ---------------------------------------------------------------------------
// Affinity-table splitting (partial overlaps keep their remainders)
// ---------------------------------------------------------------------------

TEST(chunk_affinity_table, SplitsEntriesOnPartialOverlap)
{
  chunk_affinity_table t(8);
  t.note(0, 100, 1);
  // A sharper observation inside the old range owns exactly [40, 60];
  // the stale whole-range hint survives only outside it.
  t.note(40, 60, 2);
  EXPECT_EQ(t.lookup(0, 10), 1u);
  EXPECT_EQ(t.lookup(45, 55), 2u);
  EXPECT_EQ(t.lookup(70, 100), 1u);
  EXPECT_EQ(t.size(), 3u);

  // One-sided overlap trims the edge instead of dropping the entry.
  t.note(90, 120, 3);
  EXPECT_EQ(t.lookup(95, 110), 3u);
  EXPECT_EQ(t.lookup(70, 80), 1u);
  EXPECT_EQ(t.lookup(200, 210), invalid_location);

  // Exact re-observation replaces in place (no remainder fragments).
  std::size_t const before = t.size();
  t.note(40, 60, 0);
  EXPECT_EQ(t.lookup(45, 55), 0u);
  EXPECT_EQ(t.size(), before);
}

TEST(chunk_affinity_table, SplittingRespectsCapacityBound)
{
  chunk_affinity_table t(4);
  t.note(0, 1000, 1);
  // Each inner observation splits the survivor into more fragments; the
  // FIFO bound must still hold.
  for (std::uint64_t k = 0; k < 10; ++k)
    t.note(10 + 50 * k, 30 + 50 * k, static_cast<location_id>(k % 3));
  EXPECT_LE(t.size(), 4u);
  // The most recent observation always survives the eviction.
  EXPECT_EQ(t.lookup(10 + 50 * 9, 30 + 50 * 9), 0u);
}

// ---------------------------------------------------------------------------
// Metadata-only spawn exchange
// ---------------------------------------------------------------------------

TEST_P(task_graph_test, StealableSpawnShipsWireFormNotGids)
{
  execute(config_for(GetParam(), 4), [] {
    std::size_t const n = 512 * num_locations();
    p_array<long> pa(n, 0);
    array_1d_view v(pa);
    exec_policy pol;
    pol.grain = 64;
    pol.stealable = true;

    // What PR 4's full-descriptor allgather would have shipped to the
    // P-1 peers: raw GID vectors plus the metadata.
    std::uint64_t full = 0;
    for (auto const& d : v.chunks(pol.grain))
      full += packed_size(d.gids.to_vector()) + packed_size(d.wire());
    full *= num_locations() - 1;

    p_for_each(v, [](long& x) { x += 1; }, pol);
    EXPECT_EQ(p_accumulate(v, 0L), static_cast<long>(n));

    // feed_back_execution accumulated the executor's counters into the
    // container: the spawn path moved bytes, far fewer than the full
    // descriptors — dense integral chunks ride the >= 5x acceptance bar
    // with room to spare.
    auto const spawn = allreduce(pa.epoch_task_stats().spawn_bytes,
                                 std::plus<std::uint64_t>{});
    auto const full_total = allreduce(full, std::plus<std::uint64_t>{});
    EXPECT_GT(spawn, 0u);
    EXPECT_LT(spawn * 5, full_total)
        << "wire-form exchange is not at least 5x smaller";
    // Aligned array chunks are produced by their owners: no payload ever
    // needed forwarding.
    EXPECT_EQ(allreduce(pa.epoch_task_stats().payload_forwards,
                        std::plus<std::uint64_t>{}),
              0u);
    rmi_fence();
  });
}

// ---------------------------------------------------------------------------
// p_range compatibility shim
// ---------------------------------------------------------------------------

TEST_P(task_graph_test, PRangeShimRunsDependenceOrder)
{
  execute(config_for(GetParam(), 4), [] {
    p_array<int> acc(1, 0);
    p_range pr;
    std::size_t prev = static_cast<std::size_t>(-1);
    for (int i = 0; i < 8; ++i) {
      auto const t = pr.add_task(
          static_cast<location_id>(i % num_locations()),
          [&acc] { acc.apply_set(0, [](int& x) { ++x; }); });
      if (prev != static_cast<std::size_t>(-1))
        pr.add_dependence(prev, t);
      prev = t;
    }
    pr.execute();
    EXPECT_EQ(acc.get_element(0), 8);
    rmi_fence();
  });
}

// ---------------------------------------------------------------------------
// Stress: chunked algorithms + stealing + migration churn (sized for the
// sanitizer CI job as well)
// ---------------------------------------------------------------------------

TEST_P(task_graph_test, StressMixedLoad)
{
  execute(config_for(GetParam(), 4), [] {
    std::size_t const n = 96 * num_locations();
    p_array<long> pa(n, 0);
    array_1d_view v(pa);
    pa.make_dynamic();

    long expect_round = 0;
    for (int round = 0; round < 3; ++round) {
      exec_policy pol;
      pol.grain = 8 + 13 * round;
      p_for_each(v, [](long& x) { x += 2; }, pol);
      expect_round += 2;
      if (this_location() == round % num_locations())
        for (std::size_t g = round; g < n; g += 5)
          pa.migrate(g, (this_location() + 1 + round) % num_locations());
      rmi_fence(); // placement settles before the next phase snapshots it
      auto const sum = p_accumulate(v, 0L);
      EXPECT_EQ(sum, static_cast<long>(n) * expect_round);
      rmi_fence();
    }
    rmi_fence();
  });
}

} // namespace
