// Tests for the pGraph (Ch. XI): static vs dynamic partitions, method
// forwarding vs no-forwarding address translation, vertex/edge methods,
// directedness/multiplicity semantics, graph views and the generators.

#include "containers/graph_generators.hpp"
#include "containers/p_graph.hpp"

#include <gtest/gtest.h>

#include <set>

namespace {

using namespace stapl;

using static_digraph = p_graph<DIRECTED, MULTI, int, int>;

class PGraphStatic : public ::testing::TestWithParam<unsigned> {};

TEST_P(PGraphStatic, ConstructionPreCreatesVertices)
{
  execute(GetParam(), [] {
    static_digraph g(50);
    EXPECT_TRUE(g.is_static());
    EXPECT_EQ(g.get_num_vertices(), 50u);
    EXPECT_EQ(g.get_num_edges(), 0u);
    for (vertex_descriptor v : {0u, 24u, 49u})
      EXPECT_TRUE(g.find_vertex(v));
    EXPECT_FALSE(g.find_vertex(50));
    rmi_fence();
  });
}

TEST_P(PGraphStatic, AddFindDeleteEdges)
{
  execute(GetParam(), [] {
    static_digraph g(20);
    if (this_location() == 0) {
      g.add_edge_async(0, 5);
      g.add_edge_async(5, 10, 42);
      g.add_edge_async(19, 0);
    }
    rmi_fence();
    EXPECT_EQ(g.get_num_edges(), 3u);
    EXPECT_TRUE(g.find_edge(0, 5));
    EXPECT_TRUE(g.find_edge(5, 10));
    EXPECT_FALSE(g.find_edge(10, 5)); // directed
    EXPECT_EQ(g.out_degree(5), 1u);
    rmi_fence();
    if (this_location() == 0)
      g.delete_edge(0, 5);
    rmi_fence();
    EXPECT_FALSE(g.find_edge(0, 5));
    EXPECT_EQ(g.get_num_edges(), 2u);
    rmi_fence();
  });
}

TEST_P(PGraphStatic, VertexProperties)
{
  execute(GetParam(), [] {
    static_digraph g(16);
    // Everyone sets the properties of its own vertex id range via the
    // shared-object view.
    for (vertex_descriptor v = this_location(); v < 16; v += num_locations())
      g.set_vertex_property(v, static_cast<int>(v * 10));
    rmi_fence();
    for (vertex_descriptor v = 0; v < 16; ++v)
      EXPECT_EQ(g.get_vertex_property(v), static_cast<int>(v * 10));
    // apply_vertex mutates in place.
    if (this_location() == 0)
      g.apply_vertex(3, [](auto& rec) { rec.property += 1; });
    rmi_fence();
    EXPECT_EQ(g.get_vertex_property(3), 31);
    rmi_fence();
  });
}

TEST_P(PGraphStatic, UndirectedEdgesAreMirrored)
{
  execute(GetParam(), [] {
    p_graph<UNDIRECTED, MULTI, no_property, no_property> g(10);
    if (this_location() == 0)
      g.add_edge_async(2, 7);
    rmi_fence();
    EXPECT_TRUE(g.find_edge(2, 7));
    EXPECT_TRUE(g.find_edge(7, 2));
    EXPECT_EQ(g.get_num_edges(), 1u); // one undirected edge
    rmi_fence();
    if (this_location() == 0)
      g.delete_edge(2, 7);
    rmi_fence();
    EXPECT_FALSE(g.find_edge(7, 2));
    rmi_fence();
  });
}

TEST_P(PGraphStatic, NonMultiRejectsDuplicates)
{
  execute(GetParam(), [] {
    p_graph<DIRECTED, NONMULTI, no_property, no_property> g(5);
    // Everyone inserts the same edge; only one copy may exist.
    g.add_edge_async(1, 2);
    g.add_edge_async(1, 2);
    rmi_fence();
    EXPECT_EQ(g.get_num_edges(), 1u);
    EXPECT_EQ(g.out_degree(1), 1u);

    p_graph<DIRECTED, MULTI, no_property, no_property> gm(5);
    gm.add_edge_async(1, 2);
    gm.add_edge_async(1, 2);
    rmi_fence();
    EXPECT_EQ(gm.get_num_edges(), 2u * num_locations());
    rmi_fence();
  });
}

INSTANTIATE_TEST_SUITE_P(Locations, PGraphStatic, ::testing::Values(1, 2, 4));

// ---------------------------------------------------------------------------
// Dynamic graphs: forwarding vs no-forwarding address translation
// ---------------------------------------------------------------------------

class PGraphDynamic
    : public ::testing::TestWithParam<std::tuple<unsigned, int>> {
 public:
  [[nodiscard]] static graph_partition_kind kind_of(int k)
  {
    return k == 0 ? graph_partition_kind::dynamic_forwarding
                  : graph_partition_kind::dynamic_no_forwarding;
  }
};

TEST_P(PGraphDynamic, AddVerticesAutoDescriptors)
{
  auto const [p, k] = GetParam();
  auto const kind = kind_of(k);
  execute(p, [kind] {
    p_graph<DIRECTED, MULTI, int, no_property> g(kind);
    std::vector<vertex_descriptor> mine;
    for (int i = 0; i < 10; ++i)
      mine.push_back(g.add_vertex(static_cast<int>(i)));
    rmi_fence();
    EXPECT_EQ(g.get_num_vertices(), 10u * num_locations());
    // Own vertices are local and readable.
    for (std::size_t i = 0; i < mine.size(); ++i)
      EXPECT_EQ(g.get_vertex_property(mine[i]), static_cast<int>(i));
    // Remote vertices are reachable through the directory.
    auto theirs = broadcast(
        (this_location() + 1) % num_locations() == 0 && num_locations() == 1
            ? 0u
            : 0u,
        mine[3]);
    EXPECT_EQ(g.get_vertex_property(theirs), 3);
    rmi_fence();
  });
}

TEST_P(PGraphDynamic, ExplicitDescriptorsAndEdges)
{
  auto const [p, k] = GetParam();
  auto const kind = kind_of(k);
  execute(p, [kind] {
    p_graph<DIRECTED, MULTI, int, int> g(kind);
    // Everyone adds a disjoint range of explicit vertex ids.
    std::size_t const base = 100 * this_location();
    for (std::size_t i = 0; i < 20; ++i)
      g.add_vertex(base + i, static_cast<int>(base + i));
    rmi_fence();
    EXPECT_EQ(g.get_num_vertices(), 20u * num_locations());

    // Cross-location edges: vertex i on loc l -> vertex i on loc l+1.
    std::size_t const next_base = 100 * ((this_location() + 1) % num_locations());
    for (std::size_t i = 0; i < 20; ++i)
      g.add_edge_async(base + i, next_base + i, 1);
    rmi_fence();
    EXPECT_EQ(g.get_num_edges(), 20u * num_locations());

    // Read a remote vertex property through the directory.
    EXPECT_EQ(g.get_vertex_property(next_base + 7),
              static_cast<int>(next_base + 7));
    EXPECT_TRUE(g.find_edge(base + 7, next_base + 7));
    rmi_fence();
  });
}

TEST_P(PGraphDynamic, DeleteVertexRemovesIt)
{
  auto const [p, k] = GetParam();
  auto const kind = kind_of(k);
  execute(p, [kind] {
    p_graph<DIRECTED, MULTI, int, no_property> g(kind);
    vertex_descriptor doomed{};
    if (this_location() == 0) {
      g.add_vertex(1000, 5);
      doomed = 1000;
    }
    doomed = broadcast(0, doomed);
    rmi_fence();
    EXPECT_TRUE(g.find_vertex(doomed));
    rmi_fence();
    if (this_location() == 0)
      g.delete_vertex(doomed);
    rmi_fence();
    EXPECT_FALSE(g.find_vertex(doomed));
    EXPECT_EQ(g.get_num_vertices(), 0u);
    rmi_fence();
  });
}

INSTANTIATE_TEST_SUITE_P(
    Modes, PGraphDynamic,
    ::testing::Combine(::testing::Values(1u, 2u, 4u),
                       ::testing::Values(0, 1)));

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

class GeneratorTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(GeneratorTest, MeshDegreesAndCounts)
{
  execute(GetParam(), [] {
    p_graph<UNDIRECTED, NONMULTI, int, no_property> g(12 * 5);
    generate_mesh(g, 12, 5);
    EXPECT_EQ(g.get_num_vertices(), 60u);
    // Undirected mesh edges: r*(c-1) + (r-1)*c.
    EXPECT_EQ(g.get_num_edges(), 12u * 4 + 11u * 5);
    // Corner vertex 0 has degree 2.
    EXPECT_EQ(g.out_degree(0), 2u);
    rmi_fence();
  });
}

TEST_P(GeneratorTest, TorusIsRegular)
{
  execute(GetParam(), [] {
    p_graph<DIRECTED, NONMULTI, no_property, no_property> g(6 * 4);
    generate_torus(g, 6, 4);
    EXPECT_EQ(g.get_num_vertices(), 24u);
    EXPECT_EQ(g.get_num_edges(), 2u * 24);
    for (vertex_descriptor v : {0u, 13u, 23u})
      EXPECT_EQ(g.out_degree(v), 2u);
    rmi_fence();
  });
}

TEST_P(GeneratorTest, BinaryTreeStructure)
{
  execute(GetParam(), [] {
    p_graph<DIRECTED, NONMULTI, int, no_property> g(31);
    generate_binary_tree(g, 31);
    EXPECT_EQ(g.get_num_edges(), 30u); // tree: n-1 edges
    EXPECT_EQ(g.out_degree(0), 2u);
    EXPECT_EQ(g.out_degree(15), 0u); // leaf
    EXPECT_TRUE(g.find_edge(7, 15));
    rmi_fence();
  });
}

TEST_P(GeneratorTest, Ssca2CliqueStructure)
{
  execute(GetParam(), [] {
    p_graph<DIRECTED, NONMULTI, int, no_property> g(64);
    generate_ssca2(g, 64, 8, 0.25);
    EXPECT_EQ(g.get_num_vertices(), 64u);
    // Intra-clique edges alone: 8 cliques x 8*7 directed edges.
    EXPECT_GE(g.get_num_edges(), 8u * 8 * 7);
    // All intra-clique edges of vertex 0's clique exist.
    for (vertex_descriptor w = 1; w < 8; ++w)
      EXPECT_TRUE(g.find_edge(0, w));
    EXPECT_FALSE(g.find_edge(0, 0));
    rmi_fence();
  });
}

TEST_P(GeneratorTest, DagLayersHaveNoBackEdges)
{
  execute(GetParam(), [] {
    p_graph<DIRECTED, MULTI, int, no_property> g(5 * 8);
    generate_dag(g, 5, 8, 2);
    EXPECT_EQ(g.get_num_vertices(), 40u);
    // Last layer vertices have no out-edges.
    for (vertex_descriptor v = 32; v < 40; ++v)
      EXPECT_EQ(g.out_degree(v), 0u);
    // All other layers have out-degree 2 into the next layer.
    for (vertex_descriptor v = 0; v < 32; v += 7) {
      auto const ts = g.out_edges(v);
      EXPECT_EQ(ts.size(), 2u);
      for (auto t : ts)
        EXPECT_EQ(t / 8, v / 8 + 1);
    }
    rmi_fence();
  });
}

INSTANTIATE_TEST_SUITE_P(Locations, GeneratorTest, ::testing::Values(1, 2, 4));

// ---------------------------------------------------------------------------
// Graph views (Fig. 48)
// ---------------------------------------------------------------------------

TEST(GraphViews, InnerAndBoundaryPartitionLocalVertices)
{
  execute(4, [] {
    p_graph<DIRECTED, NONMULTI, int, no_property> g(32);
    // Chain 0 -> 1 -> ... -> 31: only block-boundary vertices have remote
    // targets under the balanced static partition (8 per location).
    auto const [lo, hi] = std::pair<std::size_t, std::size_t>(
        8 * this_location(), 8 * this_location() + 8);
    for (std::size_t v = lo; v < hi; ++v)
      if (v + 1 < 32)
        g.add_edge_async(v, v + 1);
    rmi_fence();

    graph_inner_view iv(g);
    graph_boundary_view bv(g);
    auto inner = iv.local_gids();
    auto boundary = bv.local_gids();
    EXPECT_EQ(inner.size() + boundary.size(), 8u);
    // Exactly one boundary vertex per location except the last.
    if (this_location() + 1 < num_locations())
      EXPECT_EQ(boundary.size(), 1u);
    else
      EXPECT_EQ(boundary.size(), 0u);
    rmi_fence();
  });
}

// ---------------------------------------------------------------------------
// Dense (vector) storage customization (Fig. 16)
// ---------------------------------------------------------------------------

TEST(DenseGraphStorage, StaticGraphWithVectorStorage)
{
  execute(4, [] {
    using G = p_graph<DIRECTED, NONMULTI, int, int,
                      p_static_graph_traits<int, int>>;
    G g(64);
    EXPECT_EQ(g.get_num_vertices(), 64u);
    // Chain edges + properties through the shared-object view.
    if (this_location() == 0)
      for (vertex_descriptor v = 0; v + 1 < 64; ++v)
        g.add_edge_async(v, v + 1, static_cast<int>(v));
    for (vertex_descriptor v = this_location(); v < 64; v += num_locations())
      g.set_vertex_property(v, static_cast<int>(v * 2));
    rmi_fence();
    EXPECT_EQ(g.get_num_edges(), 63u);
    for (vertex_descriptor v = 0; v < 64; v += 7) {
      EXPECT_EQ(g.get_vertex_property(v), static_cast<int>(v * 2));
      if (v + 1 < 64)
        EXPECT_TRUE(g.find_edge(v, v + 1));
    }
    // delete_edge works on dense storage; out_degree consistent.
    if (this_location() == 0)
      g.delete_edge(10, 11);
    rmi_fence();
    EXPECT_FALSE(g.find_edge(10, 11));
    EXPECT_EQ(g.out_degree(10), 0u);
    rmi_fence();
  });
}

TEST(DenseGraphStorage, GeneratorAndTraversalEquivalence)
{
  // The same SSCA2 workload must produce identical structure under hashed
  // and dense storage.
  execute(4, [] {
    using GH = p_graph<DIRECTED, NONMULTI, int, no_property>;
    using GD = p_graph<DIRECTED, NONMULTI, int, no_property,
                       p_static_graph_traits<int, no_property>>;
    GH gh(128);
    GD gd(128);
    generate_ssca2(gh, 128, 8, 0.2);
    generate_ssca2(gd, 128, 8, 0.2);
    EXPECT_EQ(gh.get_num_edges(), gd.get_num_edges());
    for (vertex_descriptor v = 0; v < 128; v += 11)
      EXPECT_EQ(gh.out_degree(v), gd.out_degree(v));
    rmi_fence();
  });
}

TEST(GraphViews, VerticesViewRunsAlgorithms)
{
  execute(4, [] {
    p_graph<DIRECTED, NONMULTI, long, no_property> g(40);
    graph_vertices_view vv(g);
    // Initialize every vertex property to 2 via the view.
    for (auto v : vv.local_gids())
      vv.write(v, 2);
    rmi_fence();
    long total = 0;
    for (auto v : vv.local_gids())
      total += vv.read(v);
    EXPECT_EQ(allreduce(total, std::plus<>{}), 80L);
    rmi_fence();
  });
}

} // namespace
