// Unit tests for the scaling-sweep harness (bench/scaling_harness.hpp):
// deterministic sweep enumeration covering the declared axes, exact
// weak-scaling problem sizes, efficiency math on a synthetic timing table,
// and the metrics snapshot keys surviving the JSON round-trip of a real
// sweep point.

#include "../bench/scaling_harness.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <set>
#include <string_view>

namespace sc = bench::scaling;
using stapl::transport_kind;

namespace {

/// Minimal recursive-descent JSON acceptor (same shape as the
/// test_instrument one): enough to check the harness emits valid JSON
/// without an external dependency in the image.
class json_parser {
 public:
  explicit json_parser(std::string_view s) : m_s(s) {}

  [[nodiscard]] bool accept()
  {
    if (!value())
      return false;
    ws();
    return m_i == m_s.size();
  }

 private:
  void ws()
  {
    while (m_i < m_s.size() &&
           (m_s[m_i] == ' ' || m_s[m_i] == '\t' || m_s[m_i] == '\n' ||
            m_s[m_i] == '\r'))
      ++m_i;
  }

  bool eat(char c)
  {
    ws();
    if (m_i < m_s.size() && m_s[m_i] == c) {
      ++m_i;
      return true;
    }
    return false;
  }

  bool literal(std::string_view lit)
  {
    if (m_s.substr(m_i, lit.size()) != lit)
      return false;
    m_i += lit.size();
    return true;
  }

  bool string_lit()
  {
    if (!eat('"'))
      return false;
    while (m_i < m_s.size() && m_s[m_i] != '"') {
      if (m_s[m_i] == '\\')
        ++m_i;
      ++m_i;
    }
    return m_i < m_s.size() && m_s[m_i++] == '"';
  }

  bool number()
  {
    std::size_t const start = m_i;
    if (m_i < m_s.size() && m_s[m_i] == '-')
      ++m_i;
    while (m_i < m_s.size() &&
           (std::isdigit(static_cast<unsigned char>(m_s[m_i])) != 0 ||
            m_s[m_i] == '.' || m_s[m_i] == 'e' || m_s[m_i] == 'E' ||
            m_s[m_i] == '+' || m_s[m_i] == '-'))
      ++m_i;
    return m_i > start;
  }

  bool object()
  {
    if (eat('}'))
      return true;
    do {
      if (!string_lit() || !eat(':') || !value())
        return false;
    } while (eat(','));
    return eat('}');
  }

  bool array()
  {
    if (eat(']'))
      return true;
    do {
      if (!value())
        return false;
    } while (eat(','));
    return eat(']');
  }

  bool value()
  {
    ws();
    if (m_i >= m_s.size())
      return false;
    char const c = m_s[m_i];
    if (c == '{') {
      ++m_i;
      return object();
    }
    if (c == '[') {
      ++m_i;
      return array();
    }
    if (c == '"')
      return string_lit();
    if (c == 't')
      return literal("true");
    if (c == 'f')
      return literal("false");
    if (c == 'n')
      return literal("null");
    return number();
  }

  std::string_view m_s;
  std::size_t m_i = 0;
};

sc::axes full_axes()
{
  sc::axes ax;
  ax.p_list = {1, 2, 4};
  ax.modes = {sc::scale_mode::strong, sc::scale_mode::weak};
  ax.transports = {transport_kind::queue, transport_kind::direct};
  ax.steal = {true, false};
  ax.grains = {0, 256};
  return ax;
}

} // namespace

TEST(ScalingHarness, EnumerationIsDeterministicAndCoversAxes)
{
  auto const ax = full_axes();
  auto const pts = sc::enumerate("k", 1000, ax);
  EXPECT_EQ(pts.size(), 2u * 2u * 2u * 2u * 3u);

  // Deterministic: same call, same order.
  auto const again = sc::enumerate("k", 1000, ax);
  ASSERT_EQ(again.size(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(sc::series_key(again[i]), sc::series_key(pts[i])) << i;
    EXPECT_EQ(again[i].p, pts[i].p) << i;
  }

  // Every declared axes combination appears exactly once.
  std::set<std::string> seen;
  for (auto const& pt : pts)
    seen.insert(sc::series_key(pt) + "/p" + std::to_string(pt.p));
  EXPECT_EQ(seen.size(), pts.size());

  // Within a series P ascends, so the P=1 baseline precedes its curve.
  std::string prev_series;
  unsigned prev_p = 0;
  for (auto const& pt : pts) {
    if (sc::series_key(pt) == prev_series)
      EXPECT_GT(pt.p, prev_p);
    else
      EXPECT_EQ(pt.p, 1u);
    prev_series = sc::series_key(pt);
    prev_p = pt.p;
  }
}

TEST(ScalingHarness, WeakScalingProblemSizeIsExact)
{
  EXPECT_EQ(sc::problem_size(sc::scale_mode::strong, 1000, 1), 1000u);
  EXPECT_EQ(sc::problem_size(sc::scale_mode::strong, 1000, 8), 1000u);
  EXPECT_EQ(sc::problem_size(sc::scale_mode::weak, 1000, 1), 1000u);
  EXPECT_EQ(sc::problem_size(sc::scale_mode::weak, 1000, 4), 4000u);
  EXPECT_EQ(sc::problem_size(sc::scale_mode::weak, 333, 7), 2331u);
}

TEST(ScalingHarness, EfficiencyMathOnSyntheticTimings)
{
  // Point math.
  EXPECT_DOUBLE_EQ(sc::efficiency(sc::scale_mode::strong, 4, 1.0, 0.25), 1.0);
  EXPECT_DOUBLE_EQ(sc::efficiency(sc::scale_mode::strong, 4, 1.0, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(sc::efficiency(sc::scale_mode::weak, 4, 1.0, 1.25), 0.8);
  EXPECT_DOUBLE_EQ(sc::efficiency(sc::scale_mode::weak, 4, 1.0, 1.0), 1.0);
  // Unusable timings never divide by zero.
  EXPECT_DOUBLE_EQ(sc::efficiency(sc::scale_mode::strong, 4, 0.0, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(sc::efficiency(sc::scale_mode::strong, 4, 1.0, 0.0), 0.0);

  // Series resolution: each point gets its own series' P=1 baseline.
  auto mk = [](char const* kernel, sc::scale_mode m, unsigned p,
               double secs) {
    sc::point_result r;
    r.pt.kernel = kernel;
    r.pt.mode = m;
    r.pt.p = p;
    r.seconds = secs;
    return r;
  };
  std::vector<sc::point_result> rs{
      mk("a", sc::scale_mode::strong, 1, 2.0),
      mk("a", sc::scale_mode::strong, 4, 1.0),
      mk("a", sc::scale_mode::weak, 1, 2.0),
      mk("a", sc::scale_mode::weak, 4, 2.5),
      mk("b", sc::scale_mode::strong, 1, 8.0),
      mk("b", sc::scale_mode::strong, 4, 1.0),
  };
  sc::compute_efficiencies(rs);
  EXPECT_DOUBLE_EQ(rs[0].efficiency, 1.0);
  EXPECT_DOUBLE_EQ(rs[1].efficiency, 0.5);   // 2 / (4 * 1)
  EXPECT_DOUBLE_EQ(rs[2].efficiency, 1.0);
  EXPECT_DOUBLE_EQ(rs[3].efficiency, 0.8);   // 2 / 2.5
  EXPECT_DOUBLE_EQ(rs[4].efficiency, 1.0);
  EXPECT_DOUBLE_EQ(rs[5].efficiency, 2.0);   // b's own baseline (8s)
}

TEST(ScalingHarness, MetricsKeysSurviveJsonRoundTrip)
{
  // A real sweep point: the metrics map is the collective global_snapshot
  // of that execute, and every key must reappear quoted in the JSON.
  sc::kernel_def k{"noop", 64, [](sc::sweep_point const&) {
                     return bench::timed_kernel([] {
                       stapl::rmi_fence();
                     });
                   }};
  sc::sweep_point pt;
  pt.kernel = "noop";
  pt.p = 2;
  pt.n = 64;
  auto res = sc::run_point(k, pt);
  EXPECT_FALSE(res.metrics.empty());

  auto const json = sc::to_json({res});
  EXPECT_TRUE(json_parser(json).accept()) << json;
  for (auto const& [key, value] : res.metrics) {
    EXPECT_NE(json.find('"' + key + "\": " + std::to_string(value)),
              std::string::npos)
        << key;
  }

  // Axes serialize as the documented fields.
  EXPECT_NE(json.find("\"kernel\": \"noop\""), std::string::npos);
  EXPECT_NE(json.find("\"grain\": \"auto\""), std::string::npos);
  EXPECT_NE(json.find("\"p\": 2"), std::string::npos);
}
