// Memory-consistency model tests (Ch. VII): completion guarantees of
// sync/async/split-phase methods, per-element per-source ordering, fence
// semantics, the relaxed default model (Dekker, Fig. 22b) vs the
// sequential-consistency restriction of Claim 3 — plus thread-safety under
// the direct (locked shared-memory) transport (Ch. VI) and pMatrix tests.

#include "algorithms/p_algorithms.hpp"
#include "containers/p_array.hpp"
#include "containers/p_list.hpp"
#include "containers/p_matrix.hpp"
#include "containers/p_vector.hpp"

#include <gtest/gtest.h>

namespace {

using namespace stapl;

// ---------------------------------------------------------------------------
// Completion guarantees (Ch. VII.B)
// ---------------------------------------------------------------------------

TEST(Consistency, ReadAfterAsyncWriteSameElementSameThread)
{
  // Ch. VII.C condition 4: a synchronous method on element x forces the
  // acknowledgment of pending asynchronous methods on x from this thread.
  execute(4, [] {
    p_array<int> pa(num_locations());
    rmi_fence();
    // Write to a REMOTE element then read it back immediately — the read
    // must observe the write (same source, same element, FIFO channel).
    gid1d const x = (this_location() + 1) % num_locations();
    for (int i = 0; i < 50; ++i) {
      pa.set_element(x, i);
      EXPECT_EQ(pa.get_element(x), i);
    }
    rmi_fence();
  });
}

TEST(Consistency, AsyncWritesSameElementCompleteInProgramOrder)
{
  execute(2, [] {
    p_array<int> pa(1);
    rmi_fence();
    if (this_location() == 1)
      for (int i = 1; i <= 200; ++i)
        pa.set_element(0, i); // all to location 0's element
    rmi_fence();
    // After the fence the LAST write in program order must have won.
    EXPECT_EQ(pa.get_element(0), 200);
    rmi_fence();
  });
}

TEST(Consistency, SplitPhaseAckByFence)
{
  // Ch. VII.B: split-phase acknowledgments are received at the latest when
  // a fence completes.
  execute(4, [] {
    p_array<int> pa(64, 9);
    rmi_fence();
    std::vector<pc_future<int>> futs;
    for (gid1d g = 0; g < 64; ++g)
      futs.push_back(pa.split_phase_get_element(g));
    rmi_fence();
    for (auto& f : futs) {
      EXPECT_TRUE(f.is_ready());
      EXPECT_EQ(f.get(), 9);
    }
    rmi_fence();
  });
}

TEST(Consistency, FenceMakesWritesGloballyVisible)
{
  execute(4, [] {
    p_array<long> pa(256);
    // Everyone writes a strided quarter, fence, everyone checks everything.
    for (gid1d g = this_location(); g < 256; g += num_locations())
      pa.set_element(g, static_cast<long>(g) * 7);
    rmi_fence();
    for (gid1d g = 0; g < 256; ++g)
      EXPECT_EQ(pa.get_element(g), static_cast<long>(g) * 7);
    rmi_fence();
  });
}

// ---------------------------------------------------------------------------
// Relaxed default MCM vs sequential consistency (Ch. VII.E)
// ---------------------------------------------------------------------------

TEST(Consistency, DekkerWithSyncWritesIsSequentiallyConsistent)
{
  // Claim 3: with only synchronous methods, concurrent invocations satisfy
  // sequential consistency — (r1, r2) == (0, 0) is impossible.
  unsigned const trials = 50;
  for (unsigned t = 0; t < trials; ++t) {
    execute(2, [] {
      p_array<int> flags(2, 0);
      rmi_fence();
      int r = -1;
      if (this_location() == 0) {
        flags.set_element_sync(0, 1); // completes at the owner before...
        r = flags.get_element(1);     // ...the read is issued
      } else {
        flags.set_element_sync(1, 1);
        r = flags.get_element(0);
      }
      auto const results = allgather(r);
      EXPECT_FALSE(results[0] == 0 && results[1] == 0)
          << "SC violation with synchronous writes";
      rmi_fence();
    });
  }
}

TEST(Consistency, DekkerWithAsyncWritesAllowsRelaxedOutcome)
{
  // The default MCM is weaker than SC (Ch. VII.E.1): with asynchronous
  // writes the (0,0) outcome is permitted.  We only verify that every
  // observed outcome is one of the four allowed ones and report whether the
  // relaxed outcome occurred (it usually does under the queue transport).
  unsigned relaxed = 0;
  unsigned const trials = 50;
  for (unsigned t = 0; t < trials; ++t) {
    bool both_zero = false;
    execute(2, [&both_zero] {
      p_array<int> flags(2, 0);
      rmi_fence();
      int r = -1;
      if (this_location() == 0) {
        flags.set_element(0, 1); // asynchronous
        r = flags.get_element(1);
      } else {
        flags.set_element(1, 1);
        r = flags.get_element(0);
      }
      auto const results = allgather(r);
      EXPECT_TRUE(results[0] == 0 || results[0] == 1);
      EXPECT_TRUE(results[1] == 0 || results[1] == 1);
      if (this_location() == 0 && results[0] == 0 && results[1] == 0)
        both_zero = true;
      rmi_fence();
    });
    if (both_zero)
      ++relaxed;
  }
  // Informational: the relaxed outcome is allowed, not required.
  RecordProperty("relaxed_outcomes", static_cast<int>(relaxed));
}

// ---------------------------------------------------------------------------
// Thread safety under the direct transport (Ch. VI)
// ---------------------------------------------------------------------------

TEST(ThreadSafety, ConcurrentRemoteIncrementsUnderDirectTransport)
{
  // Under the direct transport, RMIs execute on the caller's thread against
  // the target's storage: without the locking of Ch. VI the concurrent
  // read-modify-writes below would race (ThreadSanitizer-visible) and lose
  // updates through torn interleavings of larger critical sections.
  runtime_config cfg;
  cfg.num_locations = 4;
  cfg.transport = transport_kind::direct;
  execute(cfg, [] {
    p_array<long> pa(1, 0);
    rmi_fence();
    // All locations hammer the same element with read-modify-write applies.
    for (int i = 0; i < 1000; ++i)
      pa.apply_set(0, [](long& x) { x += 1; });
    rmi_fence();
    EXPECT_EQ(pa.get_element(0), 4000);
    rmi_fence();
  });
}

TEST(ThreadSafety, ConcurrentListAnywhereInsertsDirect)
{
  runtime_config cfg;
  cfg.num_locations = 4;
  cfg.transport = transport_kind::direct;
  execute(cfg, [] {
    p_list<int> pl;
    // insert_element_async on a shared anchor from all locations.
    dynamic_gid anchor;
    if (this_location() == 0)
      anchor = pl.push_anywhere(0);
    anchor = broadcast(0, anchor);
    rmi_fence();
    for (int i = 0; i < 200; ++i)
      pl.insert_element_async(anchor, 1);
    rmi_fence();
    EXPECT_EQ(pl.size(), 1u + 4 * 200);
    rmi_fence();
  });
}

TEST(ThreadSafety, LockingPolicyTableDefaults)
{
  locking_policy_table t;
  EXPECT_EQ(t.get(MP_GET_ELEMENT).data, rw_mode::read);
  EXPECT_EQ(t.get(MP_SET_ELEMENT).data, rw_mode::write);
  EXPECT_EQ(t.get(MP_SET_ELEMENT).granularity, lock_granularity::element);
  EXPECT_EQ(t.get(MP_INSERT).granularity, lock_granularity::bcontainer);
  EXPECT_EQ(t.get(MP_INSERT).metadata, rw_mode::write);
  EXPECT_EQ(t.get(MP_SIZE).granularity, lock_granularity::local);
  // Per-instance override (Ch. VI.D: users can modify attributes).
  t.set(MP_GET_ELEMENT, {lock_granularity::none, rw_mode::read, rw_mode::read});
  EXPECT_EQ(t.get(MP_GET_ELEMENT).granularity, lock_granularity::none);
}

TEST(ThreadSafety, NoLockingTraitOverride)
{
  // Ch. VI.E customization: a read-only phase can run with the no-locking
  // manager even under the direct transport.
  struct no_lock_traits {
    using bcontainer_type = vector_bcontainer<int>;
    using mapper_type = blocked_mapper;
    using ths_manager_type = no_locking_manager;
  };
  runtime_config cfg;
  cfg.num_locations = 2;
  cfg.transport = transport_kind::direct;
  execute(cfg, [] {
    p_array<int, balanced_partition, no_lock_traits> pa(32, 5);
    rmi_fence();
    long total = 0;
    for (gid1d g = 0; g < 32; ++g)
      total += pa.get_element(g);
    EXPECT_EQ(total, 160);
    rmi_fence();
  });
}

// ---------------------------------------------------------------------------
// pMatrix (Ch. V.F)
// ---------------------------------------------------------------------------

class PMatrixTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(PMatrixTest, SetGetByCoordinates)
{
  execute(GetParam(), [] {
    p_matrix<int> m(8, 12);
    EXPECT_EQ(m.size(), 96u);
    EXPECT_EQ(m.rows(), 8u);
    EXPECT_EQ(m.cols(), 12u);
    if (this_location() == 0)
      for (std::size_t r = 0; r < 8; ++r)
        for (std::size_t c = 0; c < 12; ++c)
          m.set(r, c, static_cast<int>(r * 100 + c));
    rmi_fence();
    for (std::size_t r = 0; r < 8; ++r)
      for (std::size_t c = 0; c < 12; c += 5)
        EXPECT_EQ(m.get(r, c), static_cast<int>(r * 100 + c));
    rmi_fence();
  });
}

TEST_P(PMatrixTest, CheckerboardPartition)
{
  execute(GetParam(), [] {
    p_matrix<int> m(16, 16, matrix_partition(2, 2));
    EXPECT_EQ(m.partition().size(), 4u);
    // Every element is owned exactly once; local sizes sum to 256.
    auto const total = allreduce(m.local_size(), std::plus<>{});
    EXPECT_EQ(total, 256u);
    m(3, 3) = 77;
    rmi_fence();
    int const v = m(3, 3);
    EXPECT_EQ(v, 77);
    rmi_fence();
  });
}

TEST_P(PMatrixTest, RowsViewComputesRowMinima)
{
  execute(GetParam(), [] {
    std::size_t const R = 12, C = 10;
    p_matrix<long> m(R, C);
    p_for_each_gid(matrix_linear_view(m), [C](gid1d i, long& x) {
      std::size_t const r = i / C, c = i % C;
      x = static_cast<long>((r * 31 + c * 17) % 57);
    });
    matrix_rows_view rows(m);
    EXPECT_EQ(rows.size(), R);
    long local_sum_of_minima = 0;
    for (auto ri : rows.local_gids()) {
      auto row = rows.read(ri);
      long mn = row[0];
      for (std::size_t c = 1; c < row.size(); ++c)
        mn = std::min(mn, row[c]);
      local_sum_of_minima += mn;
    }
    long const total = allreduce(local_sum_of_minima, std::plus<>{});
    long expect = 0;
    for (std::size_t r = 0; r < R; ++r) {
      long mn = std::numeric_limits<long>::max();
      for (std::size_t c = 0; c < C; ++c)
        mn = std::min(mn, static_cast<long>((r * 31 + c * 17) % 57));
      expect += mn;
    }
    EXPECT_EQ(total, expect);
    rmi_fence();
  });
}

TEST_P(PMatrixTest, LinearViewAlgorithms)
{
  execute(GetParam(), [] {
    p_matrix<long> m(10, 10);
    matrix_linear_view lv(m);
    p_fill(lv, 3L);
    EXPECT_EQ(p_accumulate(lv, 0L), 300L);
    p_for_each(lv, [](long& x) { x *= 2; });
    EXPECT_EQ(p_accumulate(lv, 0L), 600L);
    rmi_fence();
  });
}

INSTANTIATE_TEST_SUITE_P(Locations, PMatrixTest, ::testing::Values(1, 2, 4));

} // namespace
