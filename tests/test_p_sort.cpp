// Tests for parallel sample sort (the Ch. VI bucket kernel) across
// distributions, input patterns, location counts and both transports.

#include "algorithms/p_algorithms.hpp"
#include "algorithms/p_sort.hpp"
#include "containers/p_array.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

namespace {

using namespace stapl;

struct sort_case {
  unsigned locations;
  std::size_t n;
  int pattern; // 0 = random, 1 = sorted, 2 = reverse, 3 = constant
};

class SampleSortTest : public ::testing::TestWithParam<sort_case> {};

TEST_P(SampleSortTest, SortsAndPreservesMultiset)
{
  auto const [p, n, pattern] = GetParam();
  execute(p, [n = n, pattern = pattern] {
    p_array<long> pa(n);
    std::vector<long> ref(n);
    for (gid1d g = 0; g < n; ++g) {
      long v = 0;
      switch (pattern) {
        case 0: v = static_cast<long>((g * 2654435761u) % 1000); break;
        case 1: v = static_cast<long>(g); break;
        case 2: v = static_cast<long>(n - g); break;
        case 3: v = 42; break;
      }
      ref[g] = v;
      if (pa.is_local(g))
        pa.local_element(g) = v;
    }
    rmi_fence();

    p_sample_sort(pa);
    EXPECT_TRUE(p_is_sorted(pa));

    std::sort(ref.begin(), ref.end());
    for (gid1d g = 0; g < n; g += std::max<std::size_t>(n / 64, 1))
      EXPECT_EQ(pa.get_element(g), ref[g]) << "index " << g;
    EXPECT_EQ(pa.get_element(n - 1), ref[n - 1]);
    rmi_fence();
  });
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SampleSortTest,
    ::testing::Values(sort_case{1, 100, 0}, sort_case{2, 128, 0},
                      sort_case{4, 1000, 0}, sort_case{8, 2048, 0},
                      sort_case{4, 777, 1}, sort_case{4, 777, 2},
                      sort_case{4, 500, 3}, sort_case{3, 97, 0}));

TEST(SampleSort, DescendingComparator)
{
  execute(4, [] {
    p_array<int> pa(256);
    p_for_each_gid(array_1d_view(pa), [](gid1d g, int& x) {
      x = static_cast<int>((g * 37) % 97);
    });
    p_sample_sort(pa, std::greater<>{});
    EXPECT_TRUE(p_is_sorted(pa, std::greater<>{}));
    rmi_fence();
  });
}

TEST(SampleSort, DirectTransportBucketsNeedLocks)
{
  // The Ch. VI claim: bucket insertion is correct under concurrent access
  // as long as bucket-level atomicity holds — exercised by the direct
  // transport where RMIs run on caller threads.
  runtime_config cfg;
  cfg.num_locations = 4;
  cfg.transport = transport_kind::direct;
  execute(cfg, [] {
    p_array<long> pa(512);
    p_for_each_gid(array_1d_view(pa), [](gid1d g, long& x) {
      x = static_cast<long>((g * 48271) % 701);
    });
    p_sample_sort(pa);
    EXPECT_TRUE(p_is_sorted(pa));
    long const sum = p_accumulate(array_1d_view(pa), 0L);
    long expect = 0;
    for (std::size_t g = 0; g < 512; ++g)
      expect += static_cast<long>((g * 48271) % 701);
    EXPECT_EQ(sum, expect); // multiset preserved
    rmi_fence();
  });
}

} // namespace
