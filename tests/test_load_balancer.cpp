// Unit tests for the hot-element load balancer (core/load_balancer.hpp)
// and its supporting directory machinery: the bounded space-saving hot-GID
// tracker, owner-side access counting, greedy plan determinism, skewed
// workloads converging below the imbalance threshold, reachability and
// exactly-once execution through stale caches after balancer-driven
// migration, and home-driven forwarding-hint reclamation — on both
// transports with at least 4 locations.

#include "containers/p_array.hpp"
#include "containers/p_associative.hpp"
#include "containers/p_graph.hpp"
#include "core/directory.hpp"
#include "core/load_balancer.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <vector>

namespace {

using namespace stapl;

runtime_config config_for(transport_kind t, unsigned p)
{
  runtime_config cfg;
  cfg.num_locations = p;
  cfg.transport = t;
  return cfg;
}

class load_balancer_test : public ::testing::TestWithParam<transport_kind> {};

INSTANTIATE_TEST_SUITE_P(Transports, load_balancer_test,
                         ::testing::Values(transport_kind::queue,
                                           transport_kind::direct),
                         [](auto const& info) {
                           return info.param == transport_kind::queue
                                      ? "queue"
                                      : "direct";
                         });

/// max/avg over per-location loads (the planner's own spread metric).
double spread_of(std::vector<std::uint64_t> const& loads)
{
  return lb_detail::imbalance_of(loads);
}

// ---------------------------------------------------------------------------
// Space-saving tracker (pure data structure, no runtime needed)
// ---------------------------------------------------------------------------

TEST(space_saving_tracker, BoundedAndKeepsHotItems)
{
  space_saving_tracker<std::size_t> t;
  t.set_capacity(8);
  // 4 hot items with 500 hits each, 1000 distinct cold items with 1 hit.
  // The space-saving guarantee keeps any item with true count > N/k
  // (3000/8 = 375) in the sketch, so the hot four must survive the flood.
  for (int r = 0; r < 500; ++r)
    for (std::size_t g = 0; g < 4; ++g)
      t.note(g);
  for (std::size_t g = 100; g < 1100; ++g)
    t.note(g);
  EXPECT_LE(t.size(), 8u) << "tracker grew past its capacity";

  auto const top = t.top();
  ASSERT_GE(top.size(), 4u);
  // The four hot items survive the cold flood, hottest first, and their
  // counts never underestimate the true frequency.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_LT(top[i].first, 4u) << "hot item evicted by cold tail";
    EXPECT_GE(top[i].second, 500u);
  }
}

TEST(space_saving_tracker, ZeroCapacityTracksNothing)
{
  space_saving_tracker<int> t;
  for (int g = 0; g < 50; ++g)
    t.note(g);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.top().empty());
}

// ---------------------------------------------------------------------------
// Greedy planner (pure function: deterministic, improves the spread)
// ---------------------------------------------------------------------------

TEST(greedy_plan, DrainsOverloadedLocationDeterministically)
{
  std::vector<std::uint64_t> const loads{1000, 0, 0, 0};
  std::vector<std::vector<lb_detail::hot_candidate<std::size_t>>> hot(4);
  for (std::size_t g = 0; g < 16; ++g)
    hot[0].push_back({g, 250 - 10 * g, 8}); // hottest first, sums ~ loads[0]

  auto const plan_a = lb_detail::greedy_plan<std::size_t>(loads, hot, 64);
  auto const plan_b = lb_detail::greedy_plan<std::size_t>(loads, hot, 64);
  ASSERT_EQ(plan_a.size(), plan_b.size());
  for (std::size_t i = 0; i < plan_a.size(); ++i) {
    EXPECT_EQ(plan_a[i].gid, plan_b[i].gid);
    EXPECT_EQ(plan_a[i].to, plan_b[i].to);
    EXPECT_EQ(plan_a[i].weight, plan_b[i].weight);
  }

  ASSERT_FALSE(plan_a.empty());
  std::vector<double> projected(loads.begin(), loads.end());
  for (auto const& mv : plan_a) {
    EXPECT_EQ(mv.from, 0u);
    projected[mv.from] -= static_cast<double>(mv.weight);
    projected[mv.to] += static_cast<double>(mv.weight);
  }
  EXPECT_LT(lb_detail::imbalance_of(projected), 4.0)
      << "plan did not improve the all-on-one-location spread";
  EXPECT_LT(lb_detail::imbalance_of(projected), 1.5);
}

TEST(greedy_plan, PrefersDenserElementsAndReportsBytes)
{
  // Two donors' worth of load on location 0; the candidates tie on count
  // but differ wildly in payload size.  The density ordering must drain
  // with the small elements first, so the same load moves for a fraction
  // of the bytes.
  std::vector<std::uint64_t> const loads{800, 0, 0, 0};
  std::vector<std::vector<lb_detail::hot_candidate<std::size_t>>> hot(4);
  hot[0].push_back({0, 200, 1 << 20}); // hot but huge (1 MiB)
  hot[0].push_back({1, 200, 16});
  hot[0].push_back({2, 200, 16});
  hot[0].push_back({3, 200, 16});

  auto const plan = lb_detail::greedy_plan<std::size_t>(loads, hot, 64);
  ASSERT_GE(plan.size(), 3u);
  // The three small elements drain first (density order), carrying their
  // byte estimates with them.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NE(plan[i].gid, 0u) << "huge element planned before small ones";
    EXPECT_EQ(plan[i].bytes, 16u);
  }
  std::uint64_t bytes = 0;
  for (auto const& mv : plan)
    bytes += mv.bytes;
  EXPECT_LT(bytes, (1u << 20))
      << "moving the huge element was not needed to reach the mean";
}

TEST(greedy_plan, WaveByteBudgetCapsTransfers)
{
  std::vector<std::uint64_t> const loads{900, 0, 0};
  std::vector<std::vector<lb_detail::hot_candidate<std::size_t>>> hot(3);
  for (std::size_t g = 0; g < 8; ++g)
    hot[0].push_back({g, 100, 100});

  auto const capped =
      lb_detail::greedy_plan<std::size_t>(loads, hot, 64, /*max_bytes=*/250);
  std::uint64_t bytes = 0;
  for (auto const& mv : capped)
    bytes += mv.bytes;
  EXPECT_LE(bytes, 250u);
  EXPECT_EQ(capped.size(), 2u);

  auto const uncapped = lb_detail::greedy_plan<std::size_t>(loads, hot, 64);
  EXPECT_GT(uncapped.size(), capped.size());
}

TEST(greedy_plan, NoMovesWhenBalancedOrIdle)
{
  std::vector<std::vector<lb_detail::hot_candidate<std::size_t>>> hot(4);
  for (auto& h : hot)
    h.push_back({1, 100, 8});
  EXPECT_TRUE(lb_detail::greedy_plan<std::size_t>({100, 100, 100, 100}, hot, 64)
                  .empty());
  EXPECT_TRUE(
      lb_detail::greedy_plan<std::size_t>({0, 0, 0, 0}, hot, 64).empty());
}

// ---------------------------------------------------------------------------
// Rebalancing a skewed pArray workload
// ---------------------------------------------------------------------------

/// All locations pound the first `hot` GIDs (location 0's closed-form
/// block) with `rounds` asynchronous increments each.
template <typename PA>
void skewed_workload(PA& pa, std::size_t hot, int rounds)
{
  for (int r = 0; r < rounds; ++r)
    for (std::size_t g = 0; g < hot; ++g)
      pa.apply_set(g, [](long& v) { v += 1; });
  rmi_fence();
}

TEST_P(load_balancer_test, SkewedArrayConvergesBelowThreshold)
{
  unsigned const p = 4;
  execute(config_for(GetParam(), p), [] {
    std::size_t const n = 16 * num_locations();
    std::size_t const hot = 16; // all on location 0 initially
    int const rounds = 25;
    p_array<long> pa(n, 0);

    load_balancer_config cfg;
    cfg.imbalance_threshold = 1.3;
    cfg.hot_k = 64;
    pa.enable_load_balancing(cfg);
    ASSERT_TRUE(pa.load_balancing_enabled());

    int waves = 0, triggered = 0;
    bool converged = false;
    while (waves < 4 && !converged) {
      skewed_workload(pa, hot, rounds);
      auto const rep = pa.rebalance();
      waves += 1;
      if (rep.triggered) {
        triggered += 1;
        EXPECT_GT(rep.imbalance_before, cfg.imbalance_threshold);
        EXPECT_GT(rep.moves, 0u);
        // Transfer cost is reported: one fixed-size long per move.
        EXPECT_EQ(rep.bytes_moved, rep.moves * sizeof(long));
      } else {
        converged = true; // measured spread within tolerance: done
      }
    }
    EXPECT_TRUE(converged) << "still above threshold after 4 waves";
    EXPECT_GE(triggered, 1) << "initial skew never tripped the balancer";

    // Re-measure the converged placement against the raw counters.
    skewed_workload(pa, hot, rounds);
    rmi_fence();
    auto const loads = allgather(pa.get_directory().epoch_accesses());
    EXPECT_LE(spread_of(loads), cfg.imbalance_threshold);

    // Exactly-once throughout: every wave (and the re-measure pass) added
    // num_locations() * rounds to every hot element.
    long const expect =
        static_cast<long>(waves + 1) * rounds * num_locations();
    for (std::size_t g = 0; g < hot; ++g)
      EXPECT_EQ(pa.get_element(g), expect);
    rmi_fence();
  });
}

// Balancer-migrated elements stay reachable through deliberately stale
// caches: every location plants a cache entry naming the *old* owner, then
// routes one increment at each hot element — each must execute exactly
// once at the element's post-rebalance location.
TEST_P(load_balancer_test, StaleCachesAfterRebalanceExactlyOnce)
{
  unsigned const p = 4;
  execute(config_for(GetParam(), p), [] {
    std::size_t const n = 8 * num_locations();
    std::size_t const hot = 8;
    int const rounds = 30;
    p_array<long> pa(n, 0);

    load_balancer_config cfg;
    cfg.imbalance_threshold = 1.3;
    pa.enable_load_balancing(cfg);

    skewed_workload(pa, hot, rounds);
    auto const rep = pa.rebalance();
    EXPECT_TRUE(rep.triggered);

    // Plant stale routing knowledge: the hot block's old closed-form owner.
    for (std::size_t g = 0; g < hot; ++g)
      pa.get_directory().handle_cache_update(g, 0);
    for (std::size_t g = 0; g < hot; ++g)
      pa.apply_set(g, [](long& v) { v += 1; });
    rmi_fence();

    long const expect = static_cast<long>(rounds + 1) * num_locations();
    for (std::size_t g = 0; g < hot; ++g)
      EXPECT_EQ(pa.get_element(g), expect)
          << "increment lost or duplicated through a stale cache";
    rmi_fence();
  });
}

TEST_P(load_balancer_test, AdvanceEpochHonorsInterval)
{
  unsigned const p = 4;
  execute(config_for(GetParam(), p), [] {
    std::size_t const n = 8 * num_locations();
    p_array<long> pa(n, 0);

    load_balancer_config cfg;
    cfg.imbalance_threshold = 1.3;
    cfg.epoch_interval = 2;
    pa.enable_load_balancing(cfg);

    skewed_workload(pa, 8, 20);
    auto const r1 = pa.advance_epoch();
    EXPECT_FALSE(r1.has_value()) << "rebalanced before the interval elapsed";
    auto const r2 = pa.advance_epoch();
    ASSERT_TRUE(r2.has_value());
    EXPECT_TRUE(r2->triggered);
    rmi_fence();
  });
}

// ---------------------------------------------------------------------------
// Lock-free note_access: sampled sketch, exact load counters
// ---------------------------------------------------------------------------

// The owner hot path now bumps relaxed atomic counters and only takes the
// directory mutex for sampled (1-in-N) sketch updates.  The load counters
// must match the old locked path exactly — under the direct transport the
// accesses run concurrently on caller threads, the regime the lock-free
// path exists for — and the weighted sketch must keep every genuinely hot
// GID on the books.
TEST_P(load_balancer_test, SampledNoteAccessCountsMatchLockedPath)
{
  unsigned const p = 4;
  execute(config_for(GetParam(), p), [] {
    std::size_t const n = 16 * num_locations();
    std::size_t const hot = 16; // location 0's closed-form block
    int const rounds = 40;

    for (unsigned sample : {1u, 4u}) {
      p_array<long> pa(n, 0);
      load_balancer_config cfg;
      cfg.hot_k = 64;
      cfg.access_sample = sample;
      pa.enable_load_balancing(cfg);
      EXPECT_EQ(pa.get_directory().access_sample_every(), sample);

      skewed_workload(pa, hot, rounds);

      // The per-epoch load counter counts *every* owner access, sampled
      // sketch or not: identical to the locked path's verdict.
      std::uint64_t const expect =
          static_cast<std::uint64_t>(hot) * rounds * num_locations();
      auto const loads = allgather(pa.get_directory().epoch_accesses());
      std::uint64_t total = 0;
      for (auto l : loads)
        total += l;
      EXPECT_EQ(total, expect)
          << "lock-free counter diverged at sample=" << sample;
      EXPECT_EQ(loads[0], expect) << "accesses counted off-owner";

      // The sketch tracks all hot GIDs (weight-compensated sampling: each
      // is expected ~rounds*P/sample times, so none can be missed), and
      // its count estimates stay within the space-saving error bound.
      if (this_location() == 0) {
        auto const top = pa.get_directory().hot_elements();
        EXPECT_GE(top.size(), hot);
        std::uint64_t sketch_total = 0;
        for (auto const& [g, count] : top) {
          EXPECT_LT(g, hot);
          sketch_total += count;
        }
        if (sample == 1) {
          EXPECT_EQ(sketch_total, expect); // exact when unsampled
        }
      }
      rmi_fence();
    }
  });
}

// ---------------------------------------------------------------------------
// advance_epoch() auto-tuning from imbalance drift
// ---------------------------------------------------------------------------

TEST_P(load_balancer_test, AdvanceEpochAutoTunesInterval)
{
  unsigned const p = 4;
  execute(config_for(GetParam(), p), [] {
    std::size_t const n = 8 * num_locations();
    p_array<long> pa(n, 0);

    load_balancer_config cfg;
    cfg.imbalance_threshold = 1.3;
    cfg.epoch_interval = 4;
    cfg.auto_epoch = true;
    cfg.min_epoch_interval = 1;
    cfg.max_epoch_interval = 8;
    pa.enable_load_balancing(cfg);
    EXPECT_EQ(pa.epoch_interval(), 4u);

    // Skewed epoch: the wave triggers -> the interval halves (placement
    // is in flux, re-measure sooner).
    skewed_workload(pa, 8, 20);
    std::optional<rebalance_report> rep;
    for (int e = 0; e < 4; ++e) {
      EXPECT_FALSE(rep.has_value());
      rep = pa.advance_epoch();
    }
    ASSERT_TRUE(rep.has_value());
    EXPECT_TRUE(rep->triggered);
    EXPECT_EQ(pa.epoch_interval(), 2u);

    // The next wave sees a big drift (skew collapsed to idle): halve
    // again to the floor.
    rep = pa.advance_epoch();
    EXPECT_FALSE(rep.has_value());
    rep = pa.advance_epoch();
    ASSERT_TRUE(rep.has_value());
    EXPECT_FALSE(rep->triggered);
    EXPECT_EQ(pa.epoch_interval(), 1u);

    // Quiet, stable epochs: the interval doubles back out toward the cap
    // (stop paying measurement fences when nothing moves).
    rep = pa.advance_epoch();
    ASSERT_TRUE(rep.has_value());
    EXPECT_EQ(pa.epoch_interval(), 2u);
    rep = pa.advance_epoch();
    EXPECT_FALSE(rep.has_value());
    rep = pa.advance_epoch();
    ASSERT_TRUE(rep.has_value());
    EXPECT_EQ(pa.epoch_interval(), 4u);
    rmi_fence();
  });
}

// ---------------------------------------------------------------------------
// Task-graph stats as the balancer's second signal
// ---------------------------------------------------------------------------

// Two locations with identical directory access counts, but the executor
// reports one of them kept losing its chunk tasks to thieves: the load
// model must rank the loser hotter and trigger a wave that plain access
// counts would not.
TEST_P(load_balancer_test, TaskStatsShiftTheLoadModel)
{
  unsigned const p = 4;
  execute(config_for(GetParam(), p), [] {
    std::size_t const n = 16 * num_locations();
    p_array<long> pa(n, 0);

    load_balancer_config cfg;
    cfg.imbalance_threshold = 1.3;
    cfg.task_stats_weight = 1.0;
    pa.enable_load_balancing(cfg);

    // Balanced element traffic: every location pounds its own block.
    for (int r = 0; r < 20; ++r)
      for (std::size_t k = 0; k < 8; ++k)
        pa.apply_set(this_location() * 16 + k, [](long& v) { v += 1; });
    rmi_fence();

    // Executor verdict: location 0 lost a task-equivalent of most of its
    // accesses; the others pulled that work in.
    task_graph_stats s;
    if (this_location() == 0) {
      s.tasks_run = 4;
      s.tasks_lost = 12;
    } else {
      s.tasks_run = 8;
      s.tasks_stolen = 4;
    }
    pa.note_task_graph_stats(s);

    auto const rep = pa.rebalance();
    EXPECT_TRUE(rep.triggered)
        << "task-graph losses did not register as load";
    EXPECT_GT(rep.imbalance_before, cfg.imbalance_threshold);

    // The wave resets both signals so the next epoch measures fresh.
    EXPECT_EQ(pa.epoch_task_stats().tasks_lost, 0u);
    EXPECT_EQ(pa.get_directory().epoch_accesses(), 0u);
    rmi_fence();
  });
}

// ---------------------------------------------------------------------------
// Forwarding-hint reclamation under repeated migration waves
// ---------------------------------------------------------------------------

TEST_P(load_balancer_test, HintsBoundedAfterMigrationWaves)
{
  unsigned const p = 4;
  execute(config_for(GetParam(), p), [] {
    std::size_t const n = 4 * num_locations();
    std::size_t const moving = 8; // GIDs bounced around every wave
    int const waves = 6;
    p_array<long> pa(n, 5);
    pa.make_dynamic();

    for (int w = 1; w <= waves; ++w) {
      if (this_location() == 0)
        for (std::size_t g = 0; g < moving; ++g)
          pa.migrate(g, static_cast<location_id>((g + w) % num_locations()));
      rmi_fence();
    }
    rmi_fence(); // reclamation traffic of the last wave fully retires

    // Home-driven reclamation keeps at most one live hint per migrating
    // GID system-wide (at its most recent former owner) — without it the
    // total grows toward moving * (P - 1) under ring migration.
    auto const hints = allreduce(pa.get_directory().hint_count(),
                                 std::plus<>{});
    EXPECT_LE(hints, moving);
    auto const reclaimed = allreduce(
        pa.get_directory().stats().hints_reclaimed, std::plus<>{});
    EXPECT_GT(reclaimed, 0u) << "reclamation never fired across the waves";

    // Every bounced element is still reachable and intact.
    for (std::size_t g = 0; g < n; ++g)
      EXPECT_EQ(pa.get_element(g), 5);
    rmi_fence();
  });
}

// ---------------------------------------------------------------------------
// Other container families
// ---------------------------------------------------------------------------

TEST_P(load_balancer_test, MapHotKeysRebalance)
{
  unsigned const p = 4;
  execute(config_for(GetParam(), p), [] {
    int const n = 32;
    int const rounds = 25;
    p_map<int, long> pm;
    pm.make_dynamic();
    if (this_location() == 0)
      for (int k = 0; k < n; ++k)
        pm.insert_async(k, 0L);
    rmi_fence();

    load_balancer_config cfg;
    cfg.imbalance_threshold = 1.3;
    pm.enable_load_balancing(cfg);

    // Location 0's keys become the hot set, hammered from every location.
    auto const mine = allgather(this_location() == 0
                                    ? pm.local_gids()
                                    : std::vector<int>{});
    auto const& hot = mine[0];
    ASSERT_FALSE(hot.empty());

    auto pound = [&] {
      for (int r = 0; r < rounds; ++r)
        for (int k : hot)
          pm.apply_async(k, [](long& v) { v += 1; });
      rmi_fence();
    };

    pound();
    auto const rep = pm.rebalance();
    EXPECT_TRUE(rep.triggered);
    EXPECT_LT(rep.imbalance_after, rep.imbalance_before);

    // Hot keys remain reachable with exactly-once semantics, and the
    // re-measured spread sits below the threshold.
    pound();
    auto const loads = allgather(pm.get_directory().epoch_accesses());
    EXPECT_LE(spread_of(loads), cfg.imbalance_threshold);
    for (int k : hot)
      EXPECT_EQ(pm.find_val(k),
                (std::pair<long, bool>{2L * rounds * num_locations(), true}));
    EXPECT_EQ(pm.size(), static_cast<std::size_t>(n));
    rmi_fence();
  });
}

TEST_P(load_balancer_test, GraphHubVerticesSpreadAcrossLocations)
{
  unsigned const p = 4;
  execute(config_for(GetParam(), p), [] {
    p_graph<DIRECTED, MULTI, int> g;
    // Location 0 owns four hub vertices everyone reads; each location
    // adds one cold vertex of its own (the hubs' edge targets).
    if (this_location() == 0)
      for (vertex_descriptor v = 100; v < 104; ++v)
        g.add_vertex(v, static_cast<int>(v));
    g.add_vertex(200 + this_location(), 0);
    rmi_fence();
    if (this_location() == 0)
      for (vertex_descriptor v = 100; v < 104; ++v)
        g.add_edge_async(v, 200 + v % num_locations());
    rmi_fence();

    load_balancer_config cfg;
    cfg.imbalance_threshold = 1.3;
    g.enable_load_balancing(cfg);

    for (int r = 0; r < 25; ++r)
      for (vertex_descriptor v = 100; v < 104; ++v)
        (void)g.get_vertex_property(v);
    rmi_fence();

    auto const rep = g.rebalance();
    EXPECT_TRUE(rep.triggered);
    EXPECT_GT(rep.moves, 0u);
    EXPECT_LT(rep.imbalance_after, rep.imbalance_before);

    // The hubs spread out: location 0 no longer holds them all, every hub
    // has exactly one owner, and property/adjacency survived the moves.
    int local_hubs = 0;
    for (vertex_descriptor v = 100; v < 104; ++v)
      local_hubs += g.is_local(v) ? 1 : 0;
    auto const per_loc = allgather(local_hubs);
    int total = 0;
    for (int c : per_loc)
      total += c;
    EXPECT_EQ(total, 4);
    EXPECT_LE(per_loc[0], 2) << "hubs stayed piled on the hot location";
    for (vertex_descriptor v = 100; v < 104; ++v) {
      EXPECT_TRUE(g.find_vertex(v));
      EXPECT_EQ(g.get_vertex_property(v), static_cast<int>(v));
      EXPECT_EQ(g.out_degree(v), 1u);
    }
    EXPECT_EQ(g.get_num_edges(), 4u);

    // Methods still route correctly to a migrated hub.
    if (this_location() == 2)
      g.set_vertex_property(101, 9);
    rmi_fence();
    EXPECT_EQ(g.get_vertex_property(101), 9);
    rmi_fence();
  });
}

} // namespace
