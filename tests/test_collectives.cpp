// Unit tests for the tree-structured collectives layer
// (runtime/collectives.hpp): tree vs flat result equality for every
// primitive at P=1..8 (including non-power-of-two P), deterministic
// rank-ordered folds for non-commutative associative operators,
// aggregation flush-on-fence exactly-once delivery under both transports,
// and counter plausibility (recursive doubling runs ceil(log2 P) rounds).

#include "runtime/collectives.hpp"
#include "runtime/runtime.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace {

using namespace stapl;

/// Pins the collective mode for one scope (set outside execute()).
class mode_guard {
 public:
  explicit mode_guard(coll::mode m) : m_prev(coll::get_mode())
  {
    coll::set_mode(m);
  }
  ~mode_guard() { coll::set_mode(m_prev); }

 private:
  coll::mode m_prev;
};

std::vector<unsigned> const test_ps{1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u};

TEST(Collectives, AllreduceTreeMatchesFlat)
{
  for (unsigned p : test_ps) {
    for (coll::mode m : {coll::mode::flat, coll::mode::tree}) {
      mode_guard guard(m);
      execute(p, [&] {
        long const mine = static_cast<long>(this_location()) * 7 + 3;
        long expected = 0;
        for (unsigned l = 0; l < p; ++l)
          expected += static_cast<long>(l) * 7 + 3;
        EXPECT_EQ(allreduce(mine, std::plus<>{}), expected)
            << "p=" << p << " mode=" << static_cast<int>(m);
        // min: commutative but not plus — catches order-only bugs.
        long const mn = allreduce(mine, [](long a, long b) {
          return a < b ? a : b;
        });
        EXPECT_EQ(mn, 3) << "p=" << p;
      });
    }
  }
}

TEST(Collectives, BroadcastTreeMatchesFlat)
{
  for (unsigned p : test_ps) {
    for (coll::mode m : {coll::mode::flat, coll::mode::tree}) {
      mode_guard guard(m);
      execute(p, [&] {
        // Every location takes a turn as root, back to back — also covers
        // cell/token reuse across consecutive tree collectives.
        for (unsigned root = 0; root < p; ++root) {
          std::string const mine =
              "loc" + std::to_string(this_location());
          std::string const got =
              broadcast(static_cast<location_id>(root), mine);
          EXPECT_EQ(got, "loc" + std::to_string(root))
              << "p=" << p << " root=" << root;
        }
      });
    }
  }
}

TEST(Collectives, ReduceTreeMatchesFlat)
{
  for (unsigned p : test_ps) {
    for (coll::mode m : {coll::mode::flat, coll::mode::tree}) {
      mode_guard guard(m);
      execute(p, [&] {
        for (unsigned root = 0; root < p; ++root) {
          std::uint64_t const mine = this_location() + 1;
          std::uint64_t const got =
              reduce(static_cast<location_id>(root), mine,
                     std::multiplies<>{});
          if (this_location() == root) {
            std::uint64_t expected = 1;
            for (unsigned l = 0; l < p; ++l)
              expected *= l + 1;
            EXPECT_EQ(got, expected) << "p=" << p << " root=" << root;
          }
        }
      });
    }
  }
}

TEST(Collectives, AllgatherTreeMatchesFlat)
{
  for (unsigned p : test_ps) {
    for (coll::mode m : {coll::mode::flat, coll::mode::tree}) {
      mode_guard guard(m);
      execute(p, [&] {
        auto const got =
            allgather(std::string("v") + std::to_string(this_location()));
        ASSERT_EQ(got.size(), p);
        for (unsigned l = 0; l < p; ++l)
          EXPECT_EQ(got[l], "v" + std::to_string(l)) << "p=" << p;
      });
    }
  }
}

// String concatenation: associative, emphatically not commutative.  The
// tree paths must produce the exact rank-ordered fold on every location
// and every run; the flat allreduce makes no such promise (it combines
// me-first), which is precisely why the dispatcher documents it.
TEST(Collectives, NonCommutativeFoldIsRankOrdered)
{
  // Both engines must produce the rank-ordered fold, on every location —
  // auto-select switching engines at the threshold must never change an
  // answer.
  for (coll::mode m : {coll::mode::tree, coll::mode::flat}) {
    mode_guard guard(m);
    for (unsigned p : test_ps) {
      std::string expected;
      for (unsigned l = 0; l < p; ++l)
        expected += static_cast<char>('a' + l);
      execute(p, [&] {
        std::string const mine(1, static_cast<char>('a' + this_location()));
        EXPECT_EQ(allreduce(mine, std::plus<>{}), expected) << "p=" << p;
        std::string const at_zero = reduce(0, mine, std::plus<>{});
        if (this_location() == 0) {
          EXPECT_EQ(at_zero, expected) << "p=" << p;
        }
        if (p >= 2) {
          // Root-rotated order for reduce at a non-zero root.
          std::string rotated;
          for (unsigned i = 0; i < p; ++i)
            rotated += static_cast<char>('a' + (1 + i) % p);
          std::string const at_root = reduce(1, mine, std::plus<>{});
          if (this_location() == 1) {
            EXPECT_EQ(at_root, rotated) << "p=" << p;
          }
        }
      });
    }
  }
}

// Flat and tree agree even for non-commutative ops on reduce (both fold in
// rotated rank order by construction).
TEST(Collectives, NonCommutativeReduceFlatAgreesWithTree)
{
  for (unsigned p : test_ps) {
    std::string tree_result, flat_result;
    {
      mode_guard guard(coll::mode::tree);
      execute(p, [&] {
        std::string const mine(1, static_cast<char>('A' + this_location()));
        auto const r = reduce(0, mine, std::plus<>{});
        if (this_location() == 0)
          tree_result = r;
      });
    }
    {
      mode_guard guard(coll::mode::flat);
      execute(p, [&] {
        std::string const mine(1, static_cast<char>('A' + this_location()));
        auto const r = reduce(0, mine, std::plus<>{});
        if (this_location() == 0)
          flat_result = r;
      });
    }
    EXPECT_EQ(tree_result, flat_result) << "p=" << p;
  }
}

/// Target object for the aggregation exactly-once test.
class sink_object : public p_object {
 public:
  void hit(int seq)
  {
    std::lock_guard lock(m_mutex);
    m_seen.push_back(seq);
  }
  [[nodiscard]] std::size_t count() const
  {
    std::lock_guard lock(m_mutex);
    return m_seen.size();
  }
  [[nodiscard]] std::vector<int> sorted() const
  {
    std::lock_guard lock(m_mutex);
    auto v = m_seen;
    std::sort(v.begin(), v.end());
    return v;
  }

 private:
  mutable std::mutex m_mutex;
  std::vector<int> m_seen;
};

// Messages parked in aggregation buffers below both flush thresholds must
// be delivered exactly once by the fence, under both transports.
TEST(Collectives, AggregationFlushOnFenceExactlyOnce)
{
  for (transport_kind t : {transport_kind::queue, transport_kind::direct}) {
    runtime_config cfg;
    cfg.num_locations = 4;
    cfg.transport = t;
    cfg.aggregation = 64;      // count threshold never reached
    cfg.agg_max_bytes = 1 << 20; // byte threshold never reached
    execute(cfg, [&] {
      sink_object sink;
      int const n = 10; // well below both thresholds
      location_id const dest =
          (this_location() + 1) % num_locations();
      for (int i = 0; i < n; ++i)
        async_rmi<sink_object>(dest, sink.get_handle(), &sink_object::hit,
                               static_cast<int>(this_location()) * 100 + i);
      rmi_fence();
      EXPECT_EQ(sink.count(), static_cast<std::size_t>(n));
      auto const seen = sink.sorted();
      location_id const src =
          (this_location() + num_locations() - 1) % num_locations();
      for (int i = 0; i < n; ++i)
        EXPECT_EQ(seen[i], static_cast<int>(src) * 100 + i);
      rmi_fence(); // sink destruction is collective
    });
  }
}

// The byte cap flushes a buffer before the count threshold when payloads
// are large: with a tiny agg_max_bytes every remote RMI goes out solo and
// msgs_sent counts them individually.
TEST(Collectives, AggregationByteThresholdFlushes)
{
  runtime_config cfg;
  cfg.num_locations = 2;
  cfg.aggregation = 1000;
  cfg.agg_max_bytes = 1; // every enqueue trips the byte cap
  execute(cfg, [&] {
    sink_object sink;
    std::uint64_t const msgs_before = my_stats().msgs_sent;
    if (this_location() == 0)
      for (int i = 0; i < 8; ++i)
        async_rmi<sink_object>(1, sink.get_handle(), &sink_object::hit, i);
    rmi_fence();
    if (this_location() == 0) {
      EXPECT_GE(my_stats().msgs_sent - msgs_before, 8u);
    } else {
      EXPECT_EQ(sink.count(), 8u);
    }
    rmi_fence();
  });
}

// Tree allreduce at power-of-two P runs exactly ceil(log2 P) rounds on
// every location, and the depth gauge records it.
TEST(Collectives, TreeRoundsMatchLogP)
{
  mode_guard guard(coll::mode::tree);
  for (unsigned p : {2u, 4u, 8u}) {
    unsigned const logp =
        static_cast<unsigned>(std::lround(std::log2(p)));
    std::atomic<bool> ok{true};
    execute(p, [&] {
      auto const before = my_stats();
      (void)allreduce(1, std::plus<>{});
      auto const after = my_stats();
      if (after.coll_rounds - before.coll_rounds != logp ||
          after.coll_ops - before.coll_ops != 1 ||
          after.coll_depth < logp)
        ok.store(false);
    });
    EXPECT_TRUE(ok.load()) << "p=" << p;
  }
}

// The auto_select dispatcher takes the flat path below the threshold and
// counts the fallback.
TEST(Collectives, AutoSelectCountsFlatFallbacks)
{
  mode_guard guard(coll::mode::auto_select);
  unsigned const thresh = coll::flat_threshold();
  ASSERT_GE(thresh, 2u);
  execute(2, [&] {
    auto const before = my_stats();
    (void)allreduce(1, std::plus<>{});
    auto const after = my_stats();
    EXPECT_EQ(after.coll_flat - before.coll_flat, 1u);
    EXPECT_EQ(after.coll_ops, before.coll_ops); // flat path: no tree op
  });
  execute(thresh + 1, [&] {
    auto const before = my_stats();
    (void)allreduce(1, std::plus<>{});
    auto const after = my_stats();
    EXPECT_EQ(after.coll_flat, before.coll_flat);
    EXPECT_EQ(after.coll_ops - before.coll_ops, 1u);
  });
}

// Interleaving every primitive back to back exercises token/cell reuse
// with no barrier between tree collectives (a fast location may enter
// collective N+1 while a slow one is inside N).
TEST(Collectives, BackToBackMixedPrimitives)
{
  mode_guard guard(coll::mode::tree);
  for (unsigned p : {3u, 5u, 8u}) {
    execute(p, [&] {
      long total = 0;
      for (int round = 0; round < 50; ++round) {
        long const mine = static_cast<long>(this_location()) + round;
        long const sum = allreduce(mine, std::plus<>{});
        auto const all = allgather(mine);
        long expect_sum = 0;
        for (unsigned l = 0; l < p; ++l)
          expect_sum += static_cast<long>(l) + round;
        ASSERT_EQ(sum, expect_sum) << "p=" << p << " round=" << round;
        ASSERT_EQ(all[p - 1], static_cast<long>(p - 1) + round);
        location_id const root = round % p;
        long const b = broadcast(root, mine);
        ASSERT_EQ(b, static_cast<long>(root) + round);
        total += reduce(root, mine, std::plus<>{});
      }
      (void)total;
    });
  }
}

// global_snapshot rides the tree allreduce now; sanity-check the merged
// coll.* keys surface and tree_depth merges as a gauge.
TEST(Collectives, GlobalSnapshotCarriesCollKeys)
{
  mode_guard guard(coll::mode::tree);
  execute(8, [&] {
    (void)allreduce(1, std::plus<>{});
    auto const m = metrics::global_snapshot();
    ASSERT_TRUE(m.count("coll.ops"));
    EXPECT_GE(m.at("coll.ops"), 8u);      // one per location at least
    EXPECT_EQ(m.at("coll.tree_depth"), 3u); // gauge: log2(8), not 8*3
    EXPECT_GE(m.at("coll.rounds"), 8u * 3u);
  });
}

} // namespace
