// Unit tests for the distributed directory subsystem (core/directory.hpp,
// core/migration.hpp) and its container wiring: GID registration across
// home locations, request forwarding through stale caches and in-flight
// migrations, cache invalidation on ownership change, and the element
// migration protocol on pArray / pMap / pGraph — on both transports with
// at least 4 locations.

#include "algorithms/p_algorithms.hpp"
#include "containers/p_array.hpp"
#include "containers/p_associative.hpp"
#include "containers/p_graph.hpp"
#include "core/directory.hpp"
#include "core/migration.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <vector>

namespace {

using namespace stapl;

runtime_config config_for(transport_kind t, unsigned p)
{
  runtime_config cfg;
  cfg.num_locations = p;
  cfg.transport = t;
  return cfg;
}

class directory_test : public ::testing::TestWithParam<transport_kind> {};

INSTANTIATE_TEST_SUITE_P(Transports, directory_test,
                         ::testing::Values(transport_kind::queue,
                                           transport_kind::direct),
                         [](auto const& info) {
                           return info.param == transport_kind::queue
                                      ? "queue"
                                      : "direct";
                         });

// ---------------------------------------------------------------------------
// Bare directory
// ---------------------------------------------------------------------------

TEST_P(directory_test, RegisterAndResolve)
{
  unsigned const p = 4;
  execute(config_for(GetParam(), p), [] {
    directory<std::size_t> dir;
    // Every location owns the GIDs congruent to it mod P.
    for (std::size_t g = this_location(); g < 64; g += num_locations())
      dir.register_gid(g);
    rmi_fence();

    for (std::size_t g = 0; g < 64; ++g) {
      location_id const owner = dir.resolve(g);
      EXPECT_EQ(owner, g % num_locations());
      EXPECT_EQ(dir.owns(g), owner == this_location());
    }
    rmi_fence();
  });
}

TEST_P(directory_test, UnknownGidResolvesInvalid)
{
  execute(config_for(GetParam(), 4), [] {
    directory<std::size_t> dir; // no default owner installed
    rmi_fence();
    EXPECT_EQ(dir.resolve(12345), invalid_location);
    rmi_fence();
  });
}

// Registration skew: location 0 registers; every other location routes work
// at the GID *before* any fence.  The work must park (post_to_self retry)
// until the registration lands, and the fence must not pass over it.
TEST_P(directory_test, ConcurrentRegistrationSkew)
{
  unsigned const p = 5;
  std::atomic<int> executed{0};
  std::atomic<unsigned> exec_loc{~0u};
  execute(config_for(GetParam(), p), [&] {
    directory<std::size_t> dir;
    std::size_t const gid = 7;
    if (this_location() == 0) {
      dir.register_gid(gid);
    } else {
      dir.invoke_where(gid, [&](location_id where) {
        executed.fetch_add(1);
        exec_loc.store(where);
      });
    }
    rmi_fence(); // must drain every parked/forwarded request
    EXPECT_EQ(executed.load(), static_cast<int>(p) - 1);
    EXPECT_EQ(exec_loc.load(), 0u);
    rmi_fence();
  });
}

// Massive skew: every location registers a disjoint batch while every other
// location immediately routes work at all of them.
TEST_P(directory_test, RegistrationSkewAllToAll)
{
  unsigned const p = 4;
  std::size_t const n = 32;
  std::atomic<int> executed{0};
  std::atomic<int> misrouted{0};
  execute(config_for(GetParam(), p), [&] {
    directory<std::size_t> dir;
    for (std::size_t g = this_location(); g < n; g += num_locations())
      dir.register_gid(g);
    // No fence: requests race the registrations.
    for (std::size_t g = 0; g < n; ++g) {
      location_id const expect = g % num_locations();
      dir.invoke_where(g, [&, expect](location_id where) {
        executed.fetch_add(1);
        if (where != expect)
          misrouted.fetch_add(1);
      });
    }
    rmi_fence();
    EXPECT_EQ(executed.load(), static_cast<int>(n * num_locations()));
    EXPECT_EQ(misrouted.load(), 0);
    rmi_fence();
  });
}

TEST_P(directory_test, InvokeWhereUsesCache)
{
  execute(config_for(GetParam(), 4), [] {
    directory<std::size_t> dir;
    std::size_t const gid = 3 + num_locations(); // ensure remote for loc != 3
    if (this_location() == 3)
      dir.register_gid(gid);
    rmi_fence();

    if (this_location() == 0) {
      // Cold: routes through the home.  The home piggybacks the owner, so
      // a later request forwards directly.
      std::atomic<int> ran{0};
      dir.invoke_where(gid, [&](location_id) { ran.fetch_add(1); });
      rmi_fence();
      auto const cold_cache_hits = dir.stats().cache_hits;
      EXPECT_TRUE(dir.try_resolve(gid).has_value())
          << "home lookup should have warmed the cache";
      dir.invoke_where(gid, [&](location_id) { ran.fetch_add(1); });
      rmi_fence();
      EXPECT_EQ(ran.load(), 2);
      EXPECT_GT(dir.stats().cache_hits, cold_cache_hits);
    } else {
      rmi_fence();
      rmi_fence();
    }
    rmi_fence();
  });
}

// ---------------------------------------------------------------------------
// Migration through the container wiring (pArray)
// ---------------------------------------------------------------------------

TEST_P(directory_test, ArrayMigrateAndAccess)
{
  unsigned const p = 4;
  execute(config_for(GetParam(), p), [] {
    std::size_t const n = 8 * num_locations();
    p_array<long> pa(n);
    for (std::size_t g = 0; g < n; ++g)
      if (pa.is_local(g))
        pa.set_element(g, static_cast<long>(g));
    pa.make_dynamic();

    // Location 0 scatters the first 2P elements round-robin.
    if (this_location() == 0)
      for (std::size_t g = 0; g < 2 * num_locations(); ++g)
        pa.migrate(g, static_cast<location_id>((g + 1) % num_locations()));
    rmi_fence();

    for (std::size_t g = 0; g < 2 * num_locations(); ++g) {
      location_id const expect = (g + 1) % num_locations();
      EXPECT_EQ(pa.is_local(g), expect == this_location());
      EXPECT_EQ(pa.get_element(g), static_cast<long>(g));
    }
    // Untouched elements kept their closed-form placement and value.
    for (std::size_t g = 2 * num_locations(); g < n; ++g)
      EXPECT_EQ(pa.get_element(g), static_cast<long>(g));
    rmi_fence(); // keep the write phase out of the verification reads

    // Writes through the directory land on the migrated copy.
    if (this_location() == 0)
      for (std::size_t g = 0; g < 2 * num_locations(); ++g)
        pa.set_element(g, static_cast<long>(100 + g));
    rmi_fence();
    for (std::size_t g = 0; g < 2 * num_locations(); ++g)
      EXPECT_EQ(pa.get_element(g), static_cast<long>(100 + g));
    rmi_fence();
  });
}

// The ISSUE acceptance scenario: a location with a stale owner cache routes
// work at a migrated element; it must execute exactly once, on the new
// owner, and rmi_fence must drain all forwarded traffic.
TEST_P(directory_test, StaleCacheForwardsExactlyOnce)
{
  unsigned const p = 4;
  std::atomic<int> executed{0};
  std::atomic<unsigned> exec_loc{~0u};
  execute(config_for(GetParam(), p), [&] {
    std::size_t const n = 4 * num_locations();
    p_array<long> pa(n, 1);
    pa.make_dynamic();
    std::size_t const gid = 0; // owned by location 0 initially

    // The element moves 0 -> 1.
    if (this_location() == 0)
      pa.migrate(gid, 1);
    rmi_fence();

    if (this_location() == 3) {
      // Plant a deliberately stale cache entry pointing at the *old*
      // owner, then route work through it: the request must chase the
      // forwarding hint at location 0 to the element's new home.
      pa.get_directory().handle_cache_update(gid, 0);
      pa.get_directory().invoke_where(gid, [&](location_id where) {
        executed.fetch_add(1);
        exec_loc.store(where);
      });
    }
    rmi_fence(); // must drain the chase/bounce traffic

    EXPECT_EQ(executed.load(), 1);
    EXPECT_EQ(exec_loc.load(), 1u);
    if (this_location() == 3) {
      // The home's invalidation-or-update left no stale entry behind.
      auto const cached = pa.get_directory().try_resolve(gid);
      if (cached.has_value())
        EXPECT_EQ(*cached, 1u);
      EXPECT_EQ(pa.get_directory().resolve(gid), 1u);
    }
    rmi_fence();
  });
}

TEST_P(directory_test, CacheInvalidationOnMigration)
{
  unsigned const p = 4;
  execute(config_for(GetParam(), p), [] {
    std::size_t const n = 4 * num_locations();
    p_array<long> pa(n, 7);
    pa.make_dynamic();
    std::size_t const gid = 1;

    // Everyone except the owner caches the current owner (location 0).
    if (!pa.is_local(gid))
      EXPECT_EQ(pa.get_directory().resolve(gid), 0u);
    rmi_fence();

    if (this_location() == 0)
      pa.migrate(gid, 2);
    rmi_fence();
    rmi_fence(); // one extra round so async invalidations fully retire

    // Every cached copy was either invalidated or refreshed; a fresh
    // resolve must agree on the new owner everywhere.
    auto const cached = pa.get_directory().try_resolve(gid);
    if (this_location() != 2 && cached.has_value())
      EXPECT_EQ(*cached, 2u) << "stale cache entry survived migration";
    EXPECT_EQ(pa.get_directory().resolve(gid), 2u);
    EXPECT_EQ(pa.get_element(gid), 7);
    rmi_fence();
  });
}

// Work pounded at an element *while* it migrates: every request must
// execute exactly once wherever the element currently is.
TEST_P(directory_test, ForwardingToElementMidFlight)
{
  unsigned const p = 4;
  std::atomic<long> applied{0};
  execute(config_for(GetParam(), p), [&] {
    std::size_t const n = 4 * num_locations();
    p_array<long> pa(n, 0);
    pa.make_dynamic();
    std::size_t const gid = 2; // starts on location 0
    int const rounds = 50;

    if (this_location() == 0) {
      // Bounce the element around the ring while others shoot at it.
      for (int r = 0; r < rounds; ++r)
        pa.migrate(gid, static_cast<location_id>((r + 1) % num_locations()));
    } else {
      for (int r = 0; r < rounds; ++r) {
        pa.apply_set(gid, [&](long& v) {
          v += 1;
          applied.fetch_add(1);
        });
        if (r % 8 == 0)
          rmi_poll();
      }
    }
    rmi_fence();

    long const expect = static_cast<long>(rounds) * (num_locations() - 1);
    EXPECT_EQ(applied.load(), expect);
    EXPECT_EQ(pa.get_element(gid), expect);
    // After the dust settles the element is wherever the last migration
    // put it, and every location agrees.
    auto const owner = pa.get_directory().resolve(gid);
    auto const owners = allgather(owner);
    for (auto o : owners)
      EXPECT_EQ(o, owner);
    rmi_fence();
  });
}

// Element migrated away and back: it must land in its original
// partition-assigned slot again (no overflow-store residue).
TEST_P(directory_test, ArrayMigrateRoundTrip)
{
  execute(config_for(GetParam(), 4), [] {
    std::size_t const n = 4 * num_locations();
    p_array<long> pa(n, 3);
    pa.make_dynamic();
    std::size_t const gid = 0;

    if (this_location() == 0) {
      pa.migrate(gid, 1);
    }
    rmi_fence();
    if (this_location() == 1) {
      EXPECT_TRUE(pa.is_local(gid));
      pa.set_element(gid, 42);
      pa.migrate(gid, 0);
    }
    rmi_fence();

    EXPECT_EQ(pa.get_element(gid), 42);
    if (this_location() == 0) {
      EXPECT_TRUE(pa.is_local(gid));
      // Back in contiguous storage: the native local path sees it.
      EXPECT_NE(pa.local_element_ptr(gid), nullptr);
      EXPECT_EQ(*pa.local_element_ptr(gid), 42);
    }
    rmi_fence();
  });
}

// ---------------------------------------------------------------------------
// Associative containers
// ---------------------------------------------------------------------------

TEST_P(directory_test, MapDynamicInsertFindMigrate)
{
  unsigned const p = 4;
  execute(config_for(GetParam(), p), [] {
    p_map<int, long> pm;
    pm.make_dynamic();
    int const n = 40;

    // Dynamic inserts from every location (fresh keys adopt their
    // closed-form owner through the directory's default-owner path).
    if (this_location() == 0)
      for (int k = 0; k < n; ++k)
        pm.insert_async(k, k * 10L);
    rmi_fence();
    EXPECT_EQ(pm.size(), static_cast<std::size_t>(n));

    for (int k = this_location(); k < n; k += num_locations())
      EXPECT_EQ(pm.find_val(k), (std::pair<long, bool>{k * 10L, true}));
    EXPECT_FALSE(pm.find_val(n + 1).second);
    rmi_fence();

    // Migrate a handful of keys onto location 0 and verify access.
    if (this_location() == 1)
      for (int k = 0; k < 8; ++k)
        migrate(pm, k, 0);
    rmi_fence();

    for (int k = 0; k < 8; ++k) {
      EXPECT_EQ(pm.is_local(k), this_location() == 0);
      EXPECT_EQ(pm.find_val(k), (std::pair<long, bool>{k * 10L, true}));
    }
    EXPECT_EQ(pm.size(), static_cast<std::size_t>(n));
    rmi_fence();
  });
}

// Erasing a key from a dynamic container must also retire its directory
// state: the home record disappears and a later insert/find resolves via
// the closed-form default again.
TEST_P(directory_test, EraseRetiresDirectoryState)
{
  execute(config_for(GetParam(), 4), [] {
    p_map<int, long> pm;
    pm.make_dynamic();
    int const k = 11;
    if (this_location() == 0) {
      pm.insert_async(k, 5L);
    }
    rmi_fence();
    // Migrate away from the key's closed-form owner, so the erase under
    // test retires a *migrated* element (leaving a forwarding hint at the
    // old owner that must not resurrect after the re-insert below).
    if (this_location() == 2)
      migrate(pm, k, 1);
    rmi_fence();
    EXPECT_EQ(pm.is_local(k), this_location() == 1);
    rmi_fence(); // ownership checks before the erase phase starts

    if (this_location() == 1)
      EXPECT_EQ(pm.erase(k), 1u);
    rmi_fence();
    rmi_fence(); // drain the unregister + invalidation traffic

    // No probes before this check: probing a missing key re-adopts it at
    // its default owner (ownership without an element), by design.
    EXPECT_FALSE(pm.get_directory().owns(k));
    rmi_fence();
    EXPECT_FALSE(pm.find_val(k).second);
    EXPECT_EQ(pm.size(), 0u);
    rmi_fence(); // keep the re-insert phase out of the emptiness checks

    // Re-insert behaves like a fresh key again.
    if (this_location() == 0)
      pm.insert_async(k, 9L);
    rmi_fence();
    EXPECT_EQ(pm.find_val(k), (std::pair<long, bool>{9L, true}));
    rmi_fence();
  });
}

// Migrating a multimap key moves exactly one occurrence; the remaining
// duplicates stay in place (total element count is preserved).
TEST_P(directory_test, MultimapMigratesEqualRangeAtomically)
{
  execute(config_for(GetParam(), 4), [] {
    p_multimap<int, long> pm;
    pm.make_dynamic();
    int const k = 4;
    if (this_location() == 0)
      for (long v = 0; v < 3; ++v)
        pm.insert_async(k, 10 + v);
    rmi_fence();
    EXPECT_EQ(pm.size(), 3u);

    if (this_location() == 1)
      migrate(pm, k, 2);
    rmi_fence();

    EXPECT_EQ(pm.size(), 3u) << "migration must not destroy duplicates";
    EXPECT_EQ(pm.is_local(k), this_location() == 2);
    // The whole equal range moved with the key: the routed count sees all
    // three occurrences at the new owner, and no stranded occurrence stays
    // behind in any other location's bContainers.
    EXPECT_EQ(pm.count(k), 3u);
    std::size_t stranded = 0;
    pm.for_each_local([&](int key, long&) {
      if (key == k && this_location() != 2)
        ++stranded;
    });
    EXPECT_EQ(stranded, 0u) << "occurrences left behind at the old owner";
    // The values are the original equal range.
    if (this_location() == 2) {
      long sum = 0;
      pm.for_each_local([&](int key, long& v) {
        if (key == k)
          sum += v;
      });
      EXPECT_EQ(sum, 10 + 11 + 12);
    }
    rmi_fence();
  });
}

TEST_P(directory_test, MultisetMigratesEqualRangeAtomically)
{
  execute(config_for(GetParam(), 4), [] {
    p_multiset<int> ps;
    ps.make_dynamic();
    int const k = 9;
    if (this_location() == 0)
      for (int i = 0; i < 4; ++i)
        ps.insert_async(k);
    rmi_fence();
    EXPECT_EQ(ps.size(), 4u);
    EXPECT_EQ(ps.count(k), 4u);

    if (this_location() == 3)
      migrate(ps, k, 1);
    rmi_fence();

    EXPECT_EQ(ps.size(), 4u) << "migration must not destroy duplicates";
    EXPECT_EQ(ps.is_local(k), this_location() == 1);
    EXPECT_EQ(ps.count(k), 4u) << "equal range must move atomically";
    rmi_fence(); // everyone observes placement before it changes again
    // And it can move again, still intact.
    if (this_location() == 0)
      migrate(ps, k, 2);
    rmi_fence();
    EXPECT_EQ(ps.is_local(k), this_location() == 2);
    EXPECT_EQ(ps.count(k), 4u);
    rmi_fence();
  });
}

// ---------------------------------------------------------------------------
// Native local traversals of dynamic indexed containers (ROADMAP PR-1
// follow-up): local_gids()/for_each_local must follow current ownership —
// migrated-away slots disappear, adopted overflow elements appear.
// ---------------------------------------------------------------------------

TEST_P(directory_test, DynamicIndexedLocalTraversalFollowsOwnership)
{
  unsigned const p = 4;
  execute(config_for(GetParam(), p), [] {
    std::size_t const n = 8 * num_locations();
    p_array<long> pa(n, 0);
    array_1d_view v(pa);
    p_for_each_gid(v, [](gid1d g, long& x) { x = static_cast<long>(g); });
    pa.make_dynamic();

    // Location 0's first four elements scatter over the other locations.
    if (this_location() == 0)
      for (gid1d g = 0; g < 4; ++g)
        pa.migrate(g, 1 + static_cast<location_id>(g % (num_locations() - 1)));
    rmi_fence();

    auto const gids = pa.local_gids();
    for (auto g : gids) {
      EXPECT_TRUE(pa.is_local(g)) << "local_gids listed a departed slot";
      if (g < 4)
        EXPECT_NE(this_location(), 0u)
            << "migrated-away element still listed at the source";
    }
    // Exactly-once cover: the union over locations is the whole domain.
    auto const total = allreduce(gids.size(), std::plus<>{});
    EXPECT_EQ(total, n);

    // for_each_local visits adopted elements (with their values) too.
    long local_sum = 0;
    std::size_t visited = 0;
    pa.for_each_local([&](gid1d, long& x) {
      local_sum += x;
      ++visited;
    });
    EXPECT_EQ(visited, gids.size());
    long const global_sum = allreduce(local_sum, std::plus<>{});
    EXPECT_EQ(global_sum, static_cast<long>(n * (n - 1) / 2));

    // A chunked algorithm over the native bView sees every element exactly
    // once despite the scattered placement.
    EXPECT_EQ(p_accumulate(array_1d_view(pa), 0L),
              static_cast<long>(n * (n - 1) / 2));
    rmi_fence();
  });
}

// ---------------------------------------------------------------------------
// Graph vertex migration
// ---------------------------------------------------------------------------

TEST_P(directory_test, GraphVertexMigration)
{
  unsigned const p = 4;
  execute(config_for(GetParam(), p), [] {
    p_graph<DIRECTED, MULTI, int> g;
    // Every location adds one vertex with a known descriptor.
    vertex_descriptor const mine = 100 + this_location();
    g.add_vertex(mine, static_cast<int>(10 * this_location()));
    rmi_fence();
    // A ring over the explicit descriptors.
    g.add_edge_async(mine, 100 + (this_location() + 1) % num_locations());
    rmi_fence();

    // Move vertex 100 (owned by location 0) to location 2, adjacency and
    // all.
    if (this_location() == 1)
      g.migrate(100, 2);
    rmi_fence();

    EXPECT_EQ(g.is_local(100), this_location() == 2);
    EXPECT_TRUE(g.find_vertex(100));
    EXPECT_EQ(g.get_vertex_property(100), 0);
    EXPECT_EQ(g.out_degree(100), 1u);
    EXPECT_EQ(g.get_num_edges(), static_cast<std::size_t>(num_locations()));

    // Methods still route correctly post-migration.
    if (this_location() == 3)
      g.set_vertex_property(100, 77);
    rmi_fence();
    EXPECT_EQ(g.get_vertex_property(100), 77);
    rmi_fence();
  });
}

// Cross-home pressure: every location concurrently cold-resolves GIDs
// homed on every other location while migrations churn the records.  This
// drives the home representatives into servicing each other
// simultaneously — a deadlock here means a handler executed inline into a
// peer while holding its own representative's lock.
TEST_P(directory_test, ConcurrentCrossHomeResolves)
{
  unsigned const p = 4;
  execute(config_for(GetParam(), p), [] {
    std::size_t const n = 16 * num_locations();
    p_array<long> pa(n, 1);
    pa.make_dynamic();
    auto& dir = pa.get_directory();

    for (int round = 0; round < 20; ++round) {
      // Everyone migrates one of its own elements around the ring...
      std::size_t const mine = 16 * this_location() + (round % 16);
      if (pa.is_local(mine))
        pa.migrate(mine, (this_location() + 1) % num_locations());
      // ...while cold-resolving everyone else's (cache dropped each round
      // so the lookups really hit the homes).
      dir.clear_cache();
      for (std::size_t g = round % 4; g < n; g += 7)
        (void)dir.resolve(g);
      if (round % 5 == 0)
        rmi_poll();
    }
    rmi_fence();

    // Every element is still reachable and worth its initial value.
    for (std::size_t g = 0; g < n; ++g)
      EXPECT_EQ(pa.get_element(g), 1);
    rmi_fence();
  });
}

// ---------------------------------------------------------------------------
// Directory statistics sanity
// ---------------------------------------------------------------------------

TEST_P(directory_test, StatsObserveMigrationTraffic)
{
  execute(config_for(GetParam(), 4), [] {
    std::size_t const n = 4 * num_locations();
    p_array<long> pa(n, 0);
    pa.make_dynamic();

    if (this_location() == 0)
      pa.migrate(0, 1);
    rmi_fence();

    auto const& st = pa.get_directory().stats();
    auto const out = allreduce(st.migrations_out, std::plus<>{});
    auto const in = allreduce(st.migrations_in, std::plus<>{});
    EXPECT_EQ(out, 1u);
    EXPECT_EQ(in, 1u);
    rmi_fence();
  });
}

} // namespace
