// Unit and property tests for pArray and the PCF machinery beneath it:
// domains, partitions, mappers, address resolution, the invoke skeleton,
// method categories (sync/async/split-phase) and the memory study interface
// (dissertation Ch. IV, V, IX).

#include "containers/p_array.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <random>
#include <vector>

namespace {

using namespace stapl;

// ---------------------------------------------------------------------------
// Domain properties (Tables V/VI)
// ---------------------------------------------------------------------------

TEST(IndexedDomain, Basics)
{
  indexed_domain d(3, 11);
  EXPECT_EQ(d.first(), 3u);
  EXPECT_EQ(d.last(), 11u);
  EXPECT_EQ(d.size(), 8u);
  EXPECT_TRUE(d.contains(3));
  EXPECT_TRUE(d.contains(10));
  EXPECT_FALSE(d.contains(11));
  EXPECT_EQ(d.next(3), 4u);
  EXPECT_EQ(d.prev(4), 3u);
  EXPECT_EQ(d.advance(3, 5), 8u);
  EXPECT_EQ(d.offset(7), 4u);
  EXPECT_EQ(d.at_offset(4), 7u);
}

TEST(IndexedDomain, EnumerationIsUnique)
{
  indexed_domain d(0, 100);
  gid1d g = d.first();
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(d.offset(g), i);
    g = d.next(g);
  }
  EXPECT_EQ(g, d.last());
}

TEST(Domain2D, RowMajorLinearization)
{
  domain2d d(3, 4);
  EXPECT_EQ(d.size(), 12u);
  EXPECT_EQ(d.offset({0, 0}), 0u);
  EXPECT_EQ(d.offset({1, 0}), 4u);
  EXPECT_EQ(d.offset({2, 3}), 11u);
  gid2d g = d.first();
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(d.offset(g), i);
    EXPECT_EQ(d.at_offset(i), g);
    g = d.next(g);
  }
}

TEST(FilteredDomain, EverySecondElement)
{
  // The Ch. IV.B.3 example: every second element of [0,10].
  filtered_domain fd(indexed_domain(0, 11),
                     [](gid1d g) { return g % 2 == 0; });
  EXPECT_EQ(fd.size(), 6u);
  EXPECT_TRUE(fd.contains(4));
  EXPECT_FALSE(fd.contains(5));
  auto gids = fd.gids();
  std::vector<gid1d> expect{0, 2, 4, 6, 8, 10};
  EXPECT_EQ(gids, expect);
}

// ---------------------------------------------------------------------------
// Partition invariants (Definition 9: cover, disjoint, ordered)
// ---------------------------------------------------------------------------

template <typename Partition>
void check_indexed_partition_invariants(Partition const& p, std::size_t n)
{
  // Each GID maps to exactly one sub-domain and round-trips through
  // (bcid, local_index) <-> gid.
  std::vector<std::size_t> counts(p.size(), 0);
  for (gid1d g = 0; g < n; ++g) {
    bcid_type const b = p.get_info(g);
    ASSERT_LT(b, p.size());
    std::size_t const li = p.local_index(g);
    ASSERT_LT(li, p.subdomain_size(b));
    EXPECT_EQ(p.gid_of(b, li), g);
    ++counts[b];
  }
  // Sub-domain sizes are consistent and cover the domain (disjointness is
  // implied by get_info being a function plus the counts matching).
  std::size_t total = 0;
  for (bcid_type b = 0; b < p.size(); ++b) {
    EXPECT_EQ(counts[b], p.subdomain_size(b));
    total += p.subdomain_size(b);
  }
  EXPECT_EQ(total, n);
}

class PartitionProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PartitionProperty, Balanced)
{
  std::size_t const n = GetParam();
  for (std::size_t parts : {1u, 2u, 3u, 7u, 16u}) {
    balanced_partition p(indexed_domain(n), parts);
    check_indexed_partition_invariants(p, n);
    // Balanced: sizes differ by at most one.
    std::size_t mn = n + 1, mx = 0;
    for (bcid_type b = 0; b < p.size(); ++b) {
      mn = std::min(mn, p.subdomain_size(b));
      mx = std::max(mx, p.subdomain_size(b));
    }
    if (n > 0)
      EXPECT_LE(mx - mn, 1u);
  }
}

TEST_P(PartitionProperty, Blocked)
{
  std::size_t const n = GetParam();
  if (n == 0)
    return;
  for (std::size_t bs : {1u, 3u, 10u, 64u}) {
    blocked_partition p(indexed_domain(n), bs);
    check_indexed_partition_invariants(p, n);
    for (bcid_type b = 0; b + 1 < p.size(); ++b)
      EXPECT_EQ(p.subdomain_size(b), bs); // all but last are full blocks
  }
}

TEST_P(PartitionProperty, BlockCyclic)
{
  std::size_t const n = GetParam();
  for (std::size_t parts : {1u, 2u, 5u}) {
    for (std::size_t bs : {1u, 3u}) {
      block_cyclic_partition p(parts, bs);
      p.set_domain(indexed_domain(n));
      check_indexed_partition_invariants(p, n);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PartitionProperty,
                         ::testing::Values(0, 1, 7, 10, 100, 101, 1024));

TEST(Partition, BlockCyclicDealing)
{
  // Ch. V.D.4 example: partition_block_cyclic(D[0..10], 2, BLOCK_CYCLIC(1))
  // deals single elements alternately.
  block_cyclic_partition p(2, 1);
  p.set_domain(indexed_domain(0, 11));
  for (gid1d g = 0; g <= 10; ++g)
    EXPECT_EQ(p.get_info(g), g % 2);
}

TEST(Partition, ExplicitBlocks)
{
  // Ch. V.D.4 example: BLOCK(v{3,4,4}) over [0..10].
  explicit_partition p({3, 4, 4});
  p.set_domain(indexed_domain(0, 11));
  EXPECT_EQ(p.size(), 3u);
  EXPECT_EQ(p.get_info(0), 0u);
  EXPECT_EQ(p.get_info(2), 0u);
  EXPECT_EQ(p.get_info(3), 1u);
  EXPECT_EQ(p.get_info(6), 1u);
  EXPECT_EQ(p.get_info(7), 2u);
  EXPECT_EQ(p.get_info(10), 2u);
  check_indexed_partition_invariants(p, 11);
}

TEST(Mapper, CyclicAndBlocked)
{
  execute(4, [] {
    cyclic_mapper cm(10, 4);
    for (bcid_type b = 0; b < 10; ++b)
      EXPECT_EQ(cm.map(b), b % 4);

    blocked_mapper bm(10, 4);
    // 10 bContainers over 4 locations: 3,3,2,2.
    std::vector<std::size_t> per_loc(4, 0);
    for (bcid_type b = 0; b < 10; ++b) {
      location_id const l = bm.map(b);
      ASSERT_LT(l, 4u);
      ++per_loc[l];
    }
    EXPECT_EQ(per_loc[0], 3u);
    EXPECT_EQ(per_loc[1], 3u);
    EXPECT_EQ(per_loc[2], 2u);
    EXPECT_EQ(per_loc[3], 2u);
    // local_bcids agrees with map.
    for (location_id l = 0; l < 4; ++l)
      for (bcid_type b : bm.local_bcids(l))
        EXPECT_EQ(bm.map(b), l);
  });
}

// ---------------------------------------------------------------------------
// pArray (Ch. IX)
// ---------------------------------------------------------------------------

class PArrayTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(PArrayTest, ConstructionAndSize)
{
  execute(GetParam(), [] {
    p_array<int> pa(100);
    EXPECT_EQ(pa.size(), 100u);
    EXPECT_FALSE(pa.empty());
    // Local sizes sum to the global size.
    auto const total = allreduce(pa.local_size(), std::plus<>{});
    EXPECT_EQ(total, 100u);
    rmi_fence();
  });
}

TEST_P(PArrayTest, SetGetRoundTripAllElements)
{
  execute(GetParam(), [] {
    p_array<int> pa(123);
    // Location 0 writes every element; everyone reads every element.
    if (this_location() == 0)
      for (gid1d g = 0; g < 123; ++g)
        pa.set_element(g, static_cast<int>(3 * g + 1));
    rmi_fence();
    for (gid1d g = 0; g < 123; ++g)
      EXPECT_EQ(pa.get_element(g), static_cast<int>(3 * g + 1));
    rmi_fence();
  });
}

TEST_P(PArrayTest, EveryLocationWritesOwnSlice)
{
  execute(GetParam(), [] {
    std::size_t const n = 64 * num_locations();
    p_array<int> pa(n);
    // SPMD: each location writes the slice [me*64, me*64+64).
    gid1d const lo = 64 * this_location();
    for (gid1d g = lo; g < lo + 64; ++g)
      pa.set_element(g, static_cast<int>(g));
    rmi_fence();
    for (gid1d g = 0; g < n; ++g)
      EXPECT_EQ(pa.get_element(g), static_cast<int>(g));
    rmi_fence();
  });
}

TEST_P(PArrayTest, SplitPhaseGet)
{
  execute(GetParam(), [] {
    p_array<int> pa(50);
    if (this_location() == 0)
      for (gid1d g = 0; g < 50; ++g)
        pa.set_element(g, static_cast<int>(g * g));
    rmi_fence();
    // Issue all futures first, then harvest (the split-phase pattern).
    std::vector<pc_future<int>> futs;
    futs.reserve(50);
    for (gid1d g = 0; g < 50; ++g)
      futs.push_back(pa.split_phase_get_element(g));
    for (gid1d g = 0; g < 50; ++g)
      EXPECT_EQ(futs[g].get(), static_cast<int>(g * g));
    rmi_fence();
  });
}

TEST_P(PArrayTest, ApplyGetApplySet)
{
  execute(GetParam(), [] {
    p_array<int> pa(40, 5);
    if (this_location() == 0)
      for (gid1d g = 0; g < 40; ++g)
        pa.apply_set(g, [](int& x) { x *= 2; });
    rmi_fence();
    for (gid1d g = 0; g < 40; ++g)
      EXPECT_EQ(pa.apply_get(g, [](int const& x) { return x + 1; }), 11);
    rmi_fence();
  });
}

TEST_P(PArrayTest, OperatorBracketProxy)
{
  execute(GetParam(), [] {
    p_array<int> pa(10);
    if (this_location() == 0) {
      pa[3] = 42;
      pa[4] = pa[3]; // proxy-to-proxy assignment
    }
    rmi_fence();
    int const v3 = pa[3];
    int const v4 = pa[4];
    EXPECT_EQ(v3, 42);
    EXPECT_EQ(v4, 42);
    rmi_fence();
  });
}

TEST_P(PArrayTest, IsLocalAndLookupConsistent)
{
  execute(GetParam(), [] {
    p_array<int> pa(97);
    std::size_t local_count = 0;
    for (gid1d g = 0; g < 97; ++g) {
      location_id const owner = pa.lookup(g);
      ASSERT_LT(owner, num_locations());
      EXPECT_EQ(pa.is_local(g), owner == this_location());
      if (pa.is_local(g))
        ++local_count;
    }
    EXPECT_EQ(local_count, pa.local_size());
    // Ownership agrees across locations.
    for (gid1d g : {gid1d{0}, gid1d{48}, gid1d{96}}) {
      auto owners = allgather(pa.lookup(g));
      for (auto o : owners)
        EXPECT_EQ(o, owners[0]);
    }
    rmi_fence();
  });
}

TEST_P(PArrayTest, InitialValueConstructor)
{
  execute(GetParam(), [] {
    p_array<double> pa(30, 2.5);
    for (gid1d g = 0; g < 30; ++g)
      EXPECT_DOUBLE_EQ(pa.get_element(g), 2.5);
    rmi_fence();
  });
}

TEST_P(PArrayTest, BlockCyclicPartitionedArray)
{
  execute(GetParam(), [] {
    p_array<int, block_cyclic_partition> pa(
        60, block_cyclic_partition(2 * num_locations(), 3));
    gid1d const stride = num_locations();
    // Every location writes a strided set of elements.
    for (gid1d g = this_location(); g < 60; g += stride)
      pa.set_element(g, static_cast<int>(g + 7));
    rmi_fence();
    for (gid1d g = 0; g < 60; ++g)
      EXPECT_EQ(pa.get_element(g), static_cast<int>(g + 7));
    rmi_fence();
  });
}

TEST_P(PArrayTest, LocalElementFastPath)
{
  execute(GetParam(), [] {
    p_array<int> pa(64);
    for (gid1d g = 0; g < 64; ++g)
      if (pa.is_local(g)) {
        pa.local_element(g) = static_cast<int>(g) + 1;
      }
    rmi_fence();
    for (gid1d g = 0; g < 64; ++g)
      EXPECT_EQ(pa.get_element(g), static_cast<int>(g) + 1);
    rmi_fence();
  });
}

TEST_P(PArrayTest, RandomizedMixedReadsWrites)
{
  execute(GetParam(), [] {
    std::size_t const n = 200;
    p_array<long> pa(n, 0);
    // Each location owns a disjoint random subset (by modulo) and mirrors
    // the operations into a reference vector.
    std::mt19937 gen(42 + this_location());
    std::vector<long> expect(n, -1);
    for (int op = 0; op < 500; ++op) {
      gid1d const g =
          (gen() % (n / num_locations())) * num_locations() + this_location();
      long const v = static_cast<long>(gen() % 1000);
      pa.set_element(g, v);
      expect[g] = v;
    }
    rmi_fence();
    for (gid1d g = 0; g < n; ++g)
      if (expect[g] != -1)
        EXPECT_EQ(pa.get_element(g), expect[g]);
    rmi_fence();
  });
}

INSTANTIATE_TEST_SUITE_P(Locations, PArrayTest, ::testing::Values(1, 2, 4, 8));

TEST(PArray, MemoryReport)
{
  execute(4, [] {
    p_array<double> pa(1000);
    auto const [meta, data] = pa.global_memory_size();
    // Data: exactly 1000 doubles across locations.
    EXPECT_EQ(data, 1000 * sizeof(double));
    EXPECT_GT(meta, 0u);
    // Metadata should be small relative to data for a large container.
    EXPECT_LT(meta, data);
    rmi_fence();
  });
}

TEST(PArray, DirectTransport)
{
  runtime_config cfg;
  cfg.num_locations = 4;
  cfg.transport = transport_kind::direct;
  execute(cfg, [] {
    p_array<int> pa(128);
    gid1d const lo = 32 * this_location();
    for (gid1d g = lo; g < lo + 32; ++g)
      pa.set_element((g + 64) % 128, static_cast<int>((g + 64) % 128));
    rmi_fence();
    for (gid1d g = 0; g < 128; ++g)
      EXPECT_EQ(pa.get_element(g), static_cast<int>(g));
    rmi_fence();
  });
}

} // namespace
