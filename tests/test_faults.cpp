// Chaos suite for the deterministic fault-injection layer and the runtime
// hardening behind it (runtime/fault.hpp): same-seed replay, exactly-once
// delivery under duplication/reordering/delay storms, fence and collective
// completion under injected stalls, the hang watchdog, straggler demotion,
// and the deferred-queue / inbox-depth observability satellites.
//
// The base seed comes from STAPL_FAULT_SEED (default 42) so the CI chaos
// lane replays the whole binary under several seeds.

#include "containers/p_associative.hpp"
#include "core/migration.hpp"
#include "runtime/executor.hpp"
#include "runtime/fault.hpp"
#include "runtime/runtime.hpp"
#include "runtime/task_graph.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace {

using namespace stapl;

[[nodiscard]] std::uint64_t base_seed()
{
  if (char const* s = std::getenv("STAPL_FAULT_SEED"))
    return std::strtoull(s, nullptr, 10);
  return 42;
}

runtime_config config_for(transport_kind t, unsigned p)
{
  runtime_config cfg;
  cfg.num_locations = p;
  cfg.transport = t;
  return cfg;
}

/// RAII guard: every test leaves the fault layer disarmed and empty, with
/// the hardening knobs back at their defaults, no matter how it exits.
struct fault_guard {
  ~fault_guard()
  {
    fault::disarm();
    fault::clear_plans();
    fault::clear_events();
    fault::set_gate(0);
    fault::set_watchdog_ms(30000);
    robust::set_probe_timeout_us(100000);
    robust::set_demote_after(3);
    robust::reset_demotions();
  }
};

fault::plan make_plan(fault::site where, unsigned actions)
{
  fault::plan p;
  p.where = where;
  p.actions = actions;
  return p;
}

/// Shared log object: receivers record (src, k) pairs so the tests can
/// assert exactly-once per message, independent of arrival order.
class recorder : public p_object {
 public:
  void record(int src, int k)
  {
    std::lock_guard lock(m_mutex);
    m_seen[{src, k}] += 1;
  }

  void append(int k)
  {
    std::lock_guard lock(m_mutex);
    m_order.push_back(k);
  }

  [[nodiscard]] std::map<std::pair<int, int>, int> seen() const
  {
    std::lock_guard lock(m_mutex);
    return m_seen;
  }

  [[nodiscard]] std::vector<int> order() const
  {
    std::lock_guard lock(m_mutex);
    return m_order;
  }

 private:
  mutable std::mutex m_mutex;
  std::map<std::pair<int, int>, int> m_seen;
  std::vector<int> m_order;
};

// ---------------------------------------------------------------------------
// Deterministic replay
// ---------------------------------------------------------------------------

void run_replay_workload()
{
  execute(config_for(transport_kind::queue, 4), [] {
    recorder r;
    int const me = static_cast<int>(this_location());
    location_id const dest = (this_location() + 1) % num_locations();
    for (int k = 0; k < 200; ++k)
      queued_rmi<recorder>(dest, r.get_handle(), &recorder::record, me, k);
    rmi_fence();
  });
}

TEST(Faults, SameSeedReplaysIdenticalInjectionTrace)
{
  fault_guard guard;
  // Probability plans so the seed actually decides; sited only at
  // rmi.enqueue, whose per-location hit count is workload-determined
  // (poll counts are scheduling-dependent and would not replay).
  auto delay = make_plan(fault::site::rmi_enqueue, fault::act_delay);
  delay.probability = 0.10;
  delay.delay_polls = 3;
  auto dup = make_plan(fault::site::rmi_enqueue, fault::act_duplicate);
  dup.probability = 0.05;
  auto reorder = make_plan(fault::site::rmi_enqueue, fault::act_reorder);
  reorder.probability = 0.25;
  fault::add_plan(delay);
  fault::add_plan(dup);
  fault::add_plan(reorder);

  fault::arm(base_seed());
  run_replay_workload();
  std::vector<std::vector<fault::event>> first;
  for (location_id l = 0; l < 4; ++l)
    first.push_back(fault::events(l));
  fault::clear_events();

  fault::arm(base_seed());
  run_replay_workload();
  std::uint64_t total = 0;
  for (location_id l = 0; l < 4; ++l) {
    EXPECT_EQ(first[l], fault::events(l)) << "location " << l;
    total += first[l].size();
  }
  EXPECT_GT(total, 0u) << "storm injected nothing: the replay check is vacuous";
  fault::clear_events();

  // A different seed draws a different trace (0.05–0.25 hit rates over 800
  // decisions: collision probability is negligible).
  fault::arm(base_seed() + 1);
  run_replay_workload();
  bool any_diff = false;
  for (location_id l = 0; l < 4; ++l)
    any_diff = any_diff || first[l] != fault::events(l);
  EXPECT_TRUE(any_diff);
}

// ---------------------------------------------------------------------------
// Exactly-once under duplication + reordering + delay storms
// ---------------------------------------------------------------------------

class fault_transport_test : public ::testing::TestWithParam<transport_kind> {
};

INSTANTIATE_TEST_SUITE_P(Transports, fault_transport_test,
                         ::testing::Values(transport_kind::queue,
                                           transport_kind::direct),
                         [](auto const& info) {
                           return info.param == transport_kind::queue
                                      ? "queue"
                                      : "direct";
                         });

void arm_dup_reorder_delay_storm()
{
  auto dup = make_plan(fault::site::rmi_enqueue, fault::act_duplicate);
  dup.every_n = 3;
  auto delay = make_plan(fault::site::rmi_enqueue, fault::act_delay);
  delay.every_n = 5;
  delay.delay_polls = 4;
  auto reorder = make_plan(fault::site::rmi_enqueue, fault::act_reorder);
  reorder.every_n = 7;
  auto flush_reorder = make_plan(fault::site::rmi_flush, fault::act_reorder);
  flush_reorder.every_n = 4;
  fault::add_plan(dup);
  fault::add_plan(delay);
  fault::add_plan(reorder);
  fault::add_plan(flush_reorder);
  fault::arm(base_seed());
}

TEST_P(fault_transport_test, QueuedRmiExactlyOnceUnderStorm)
{
  fault_guard guard;
  arm_dup_reorder_delay_storm();
  for (unsigned p : {4u, 8u}) {
    auto before = metrics::process_totals()["robust.dups_suppressed"];
    execute(config_for(GetParam(), p), [] {
      recorder r;
      int const me = static_cast<int>(this_location());
      int const n = 150;
      for (int k = 0; k < n; ++k)
        for (location_id d = 0; d < num_locations(); ++d)
          queued_rmi<recorder>(d, r.get_handle(), &recorder::record, me, k);
      rmi_fence();
      auto const seen = r.seen();
      EXPECT_EQ(seen.size(),
                static_cast<std::size_t>(n) * num_locations());
      for (auto const& [key, count] : seen)
        EXPECT_EQ(count, 1) << "src " << key.first << " k " << key.second;
      rmi_fence();
    });
    auto after = metrics::process_totals()["robust.dups_suppressed"];
    EXPECT_GT(after, before)
        << "storm never duplicated: exactly-once was not exercised (P=" << p
        << ")";
  }
}

TEST_P(fault_transport_test, MigrationExactlyOnceUnderStorm)
{
  fault_guard guard;
  arm_dup_reorder_delay_storm();
  auto mig_stall = make_plan(fault::site::migration, fault::act_stall);
  mig_stall.every_n = 2;
  mig_stall.stall_us = 100;
  fault::add_plan(mig_stall);
  auto dir_stall = make_plan(fault::site::dir_forward, fault::act_stall);
  dir_stall.every_n = 3;
  dir_stall.stall_us = 100;
  fault::add_plan(dir_stall);
  fault::arm(base_seed());
  for (unsigned p : {4u, 8u}) {
    execute(config_for(GetParam(), p), [] {
      p_map<int, long> pm;
      pm.make_dynamic();
      int const n = 40;
      if (this_location() == 0)
        for (int k = 0; k < n; ++k)
          pm.insert_async(k, k * 10L);
      rmi_fence();
      EXPECT_EQ(pm.size(), static_cast<std::size_t>(n));
      // One-sided size() queries race against migrations: fence so no
      // element is in transit while a slower location is still counting.
      rmi_fence();

      // Every location migrates a disjoint slice onto the next location;
      // duplicated/reordered migration traffic must still move each
      // element exactly once.
      location_id const next = (this_location() + 1) % num_locations();
      for (int k = static_cast<int>(this_location()); k < n;
           k += static_cast<int>(num_locations()))
        migrate(pm, k, next);
      rmi_fence();

      EXPECT_EQ(pm.size(), static_cast<std::size_t>(n));
      for (int k = 0; k < n; ++k)
        EXPECT_EQ(pm.find_val(k), (std::pair<long, bool>{k * 10L, true}));
      rmi_fence();
    });
  }
}

TEST_P(fault_transport_test, PayloadForwardExactlyOnceUnderStorm)
{
  fault_guard guard;
  arm_dup_reorder_delay_storm();
  auto payload_stall = make_plan(fault::site::tg_payload, fault::act_stall);
  payload_stall.every_n = 2;
  payload_stall.stall_us = 100;
  fault::add_plan(payload_stall);
  fault::arm(base_seed());
  for (unsigned p : {4u, 8u}) {
    execute(config_for(GetParam(), p), [] {
      task_graph<long, long> tg;
      using tid = task_graph<long, long>::task_id;
      task_options pending;
      pending.payload_pending = true;
      // Every location owns one payload-gated task per peer; each peer
      // produces and forwards the payload.  The owner-side results prove
      // exactly-once payload delivery.
      std::vector<std::pair<tid, long>> mine;
      for (location_id owner = 0; owner < num_locations(); ++owner)
        for (location_id src = 0; src < num_locations(); ++src) {
          tid const t = tg.add_task(
              owner,
              [](std::vector<long> const&, long const& pay) { return pay; },
              0L, src == owner ? task_options{} : pending);
          if (src != owner && owner == this_location())
            mine.emplace_back(t, static_cast<long>(owner * 1000 + src));
        }
      // Forward payloads for the tasks this location is the source of.
      tid t = 0;
      for (location_id owner = 0; owner < num_locations(); ++owner)
        for (location_id src = 0; src < num_locations(); ++src, ++t)
          if (src == this_location() && src != owner)
            tg.forward_payload(t, static_cast<long>(owner * 1000 + src));
      tg.execute();
      for (auto const& [id, expect] : mine)
        EXPECT_EQ(tg.result_of(id), expect);
      rmi_fence();
    });
  }
}

// ---------------------------------------------------------------------------
// Fences and tree collectives under stalls and delay storms
// ---------------------------------------------------------------------------

TEST(Faults, CollectivesCompleteUnderDelayStorm)
{
  fault_guard guard;
  auto delay = make_plan(fault::site::rmi_enqueue, fault::act_delay);
  delay.every_n = 2;
  delay.delay_polls = 8;
  auto poll_stall = make_plan(fault::site::rmi_poll, fault::act_stall);
  poll_stall.probability = 0.05;
  poll_stall.stall_us = 200;
  auto cell_stall = make_plan(fault::site::coll_cell, fault::act_stall);
  cell_stall.every_n = 3;
  cell_stall.stall_us = 300;
  fault::add_plan(delay);
  fault::add_plan(poll_stall);
  fault::add_plan(cell_stall);
  fault::arm(base_seed());

  coll::set_mode(coll::mode::tree);
  execute(config_for(transport_kind::queue, 8), [] {
    recorder r;
    long const me = static_cast<long>(this_location());
    for (int round = 0; round < 3; ++round) {
      // Background RMI traffic so the delay plan has messages to hold.
      for (int k = 0; k < 20; ++k)
        queued_rmi<recorder>((this_location() + 1) % num_locations(),
                             r.get_handle(), &recorder::record,
                             static_cast<int>(me), round * 20 + k);
      EXPECT_EQ(allreduce(me, [](long a, long b) { return a + b; }),
                static_cast<long>(num_locations() *
                                  (num_locations() - 1) / 2));
      EXPECT_EQ(broadcast(2, me), 2L);
      long const red = reduce(1, me, [](long a, long b) { return a + b; });
      if (this_location() == 1)
        EXPECT_EQ(red, static_cast<long>(num_locations() *
                                         (num_locations() - 1) / 2));
      auto const all = allgather(me);
      ASSERT_EQ(all.size(), num_locations());
      for (location_id l = 0; l < num_locations(); ++l)
        EXPECT_EQ(all[l], static_cast<long>(l));
      rmi_fence();
    }
    EXPECT_EQ(r.seen().size(), 60u);
    rmi_fence();
  });
  coll::set_mode(coll::mode::auto_select);
}

// ---------------------------------------------------------------------------
// Hang watchdog
// ---------------------------------------------------------------------------

TEST(Faults, WatchdogNamesTheBlockedSite)
{
  fault_guard guard;
  fault::set_watchdog_ms(20);
  auto before = metrics::process_totals()["robust.watchdog_dumps"];
  execute(config_for(transport_kind::queue, 2), [] {
    recorder r;
    rmi_fence();
    if (this_location() == 0) {
      // Location 1 naps without polling: the sync round trip blocks past
      // the 20ms deadline and the watchdog must dump, naming rmi.sync.
      auto const v = sync_rmi<recorder>(
          1, r.get_handle(),
          [](recorder& rec) { return rec.order().size(); });
      EXPECT_EQ(v, 0u);
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(150));
    }
    rmi_fence();
  });
  auto after = metrics::process_totals()["robust.watchdog_dumps"];
  EXPECT_GT(after, before);
  EXPECT_NE(fault::last_watchdog_report().find("rmi.sync"), std::string::npos)
      << fault::last_watchdog_report();
}

// ---------------------------------------------------------------------------
// Straggler demotion and recovery
// ---------------------------------------------------------------------------

TEST(Faults, VictimOrderRanksDemotedLast)
{
  std::vector<std::size_t> owned = {4, 9, 2, 7};
  std::vector<std::size_t> warmth = {0, 5, 0, 0};
  // Without a mask: warmth first (1), then load (3, 0), tie rules.
  auto order = steal_victim_order(2, owned, warmth, 0);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 3u);
  EXPECT_EQ(order[2], 0u);
  // Demoting the warmth leader pushes it strictly last.
  order = steal_victim_order(2, owned, warmth, std::uint64_t{1} << 1);
  EXPECT_EQ(order[0], 3u);
  EXPECT_EQ(order[1], 0u);
  EXPECT_EQ(order[2], 1u);
}

TEST(Faults, DemotionRegistryTransitions)
{
  robust::reset_demotions();
  EXPECT_FALSE(robust::is_demoted(3));
  EXPECT_TRUE(robust::demote(3));
  EXPECT_FALSE(robust::demote(3)) << "second demotion is not a transition";
  EXPECT_TRUE(robust::is_demoted(3));
  EXPECT_EQ(robust::demoted_mask(), std::uint64_t{1} << 3);
  EXPECT_TRUE(robust::promote(3));
  EXPECT_FALSE(robust::promote(3));
  EXPECT_EQ(robust::demoted_mask(), 0u);
  // Locations past the 64-bit registry are never demoted.
  EXPECT_FALSE(robust::demote(64));
  EXPECT_FALSE(robust::is_demoted(64));
}

TEST(Faults, StragglerDemotionVisibleInStats)
{
  fault_guard guard;
  robust::set_probe_timeout_us(2000);
  robust::set_demote_after(1);
  // Location 3 stalls 5ms on every poll: probes at it time out, thieves
  // strike it, and with demote_after=1 the first timeout demotes.
  auto stall = make_plan(fault::site::rmi_poll, fault::act_stall);
  stall.every_n = 1;
  stall.stall_us = 5000;
  stall.only_location = 3;
  fault::add_plan(stall);
  fault::arm(base_seed());

  auto before = metrics::process_totals();
  execute(config_for(transport_kind::queue, 4), [] {
    task_graph<long> tg;
    task_options stealable;
    stealable.stealable = true;
    // All work owned by the straggler, so every thief probes it.
    for (int i = 0; i < 12; ++i)
      tg.add_task(
          3,
          [i](std::vector<long> const&, char const&) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            return static_cast<long>(i);
          },
          {}, stealable);
    tg.execute();
    rmi_fence();
  });
  auto after = metrics::process_totals();
  EXPECT_GT(after["robust.probe_timeouts"], before["robust.probe_timeouts"]);
  EXPECT_GT(after["robust.demotions"], before["robust.demotions"]);
}

// ---------------------------------------------------------------------------
// Injected allocation failure
// ---------------------------------------------------------------------------

TEST(Faults, StealAllocFailureDegradesToNacks)
{
  fault_guard guard;
  auto alloc = make_plan(fault::site::tg_steal, fault::act_alloc_fail);
  alloc.every_n = 1;
  fault::add_plan(alloc);
  fault::arm(base_seed());
  execute(config_for(transport_kind::queue, 4), [] {
    task_graph<long> tg;
    task_options stealable;
    stealable.stealable = true;
    long expect = 0;
    std::vector<task_graph<long>::task_id> work;
    for (int i = 0; i < 16; ++i) {
      work.push_back(tg.add_task(
          0,
          [i](std::vector<long> const&, char const&) {
            return static_cast<long>(i);
          },
          {}, stealable));
      expect += i;
    }
    auto const sink = tg.add_task(
        0, [](std::vector<long> const& ins, char const&) {
          long s = 0;
          for (long v : ins)
            s += v;
          return s;
        });
    for (auto t : work)
      tg.add_dependence(t, sink);
    tg.execute();
    auto const stats = tg.global_stats();
    EXPECT_EQ(stats.steal_grants, 0u)
        << "every grant allocation was failed: only nacks may flow";
    if (this_location() == 0)
      EXPECT_EQ(tg.result_of(sink), expect);
    rmi_fence();
  });
}

TEST(Faults, EnqueueAllocFailureForcesFlushes)
{
  fault_guard guard;
  auto alloc = make_plan(fault::site::rmi_enqueue, fault::act_alloc_fail);
  alloc.every_n = 2;
  fault::add_plan(alloc);
  fault::arm(base_seed());
  auto before = metrics::process_totals()["fault.alloc_fails"];
  execute(config_for(transport_kind::queue, 4), [] {
    recorder r;
    int const me = static_cast<int>(this_location());
    for (int k = 0; k < 100; ++k)
      queued_rmi<recorder>((this_location() + 1) % num_locations(),
                           r.get_handle(), &recorder::record, me, k);
    rmi_fence();
    EXPECT_EQ(r.seen().size(), 100u);
    rmi_fence();
  });
  auto after = metrics::process_totals()["fault.alloc_fails"];
  EXPECT_GT(after, before);
}

// ---------------------------------------------------------------------------
// queued_rmi ordering (satellite)
// ---------------------------------------------------------------------------

TEST(Faults, QueuedOrderingPreservedWithoutInjection)
{
  ASSERT_FALSE(fault::armed());
  execute(config_for(transport_kind::direct, 4), [] {
    recorder r;
    if (this_location() == 1)
      for (int k = 0; k < 300; ++k)
        queued_rmi<recorder>(0, r.get_handle(), &recorder::append, k);
    rmi_fence();
    if (this_location() == 0) {
      auto const log = r.order();
      ASSERT_EQ(log.size(), 300u);
      for (int k = 0; k < 300; ++k)
        EXPECT_EQ(log[k], k);
    }
    rmi_fence();
  });
}

TEST(Faults, QueuedDeliveryCompleteUnderReorderStorm)
{
  fault_guard guard;
  auto reorder = make_plan(fault::site::rmi_enqueue, fault::act_reorder);
  reorder.every_n = 2;
  auto flush_reorder = make_plan(fault::site::rmi_flush, fault::act_reorder);
  flush_reorder.every_n = 3;
  fault::add_plan(reorder);
  fault::add_plan(flush_reorder);
  fault::arm(base_seed());
  execute(config_for(transport_kind::queue, 4), [] {
    recorder r;
    if (this_location() == 1)
      for (int k = 0; k < 300; ++k)
        queued_rmi<recorder>(0, r.get_handle(), &recorder::append, k);
    rmi_fence();
    if (this_location() == 0) {
      // Injected reordering may permute delivery, but every message
      // arrives exactly once.
      auto log = r.order();
      ASSERT_EQ(log.size(), 300u);
      std::sort(log.begin(), log.end());
      for (int k = 0; k < 300; ++k)
        EXPECT_EQ(log[k], k);
    }
    rmi_fence();
  });
}

// ---------------------------------------------------------------------------
// post_to_self retryable park + depth gauges (satellites)
// ---------------------------------------------------------------------------

TEST(Faults, PostToSelfRetryParksUntilReady)
{
  execute(config_for(transport_kind::queue, 2), [] {
    std::atomic<int> executed{0};
    int attempts = 0;
    post_to_self([&executed, attempts]() mutable -> bool {
      if (++attempts < 5)
        return false; // park on the deferred queue, retried next poll
      executed.fetch_add(1);
      return true;
    });
    rmi_fence();
    EXPECT_EQ(executed.load(), 1);
    EXPECT_GT(my_stats().deferred_hw, 0u);
    rmi_fence();
  });
}

TEST(Faults, InboxDepthGaugeObservesBacklog)
{
  EXPECT_FALSE(metrics::sums_on_merge("rmi.inbox_depth"));
  EXPECT_FALSE(metrics::sums_on_merge("rmi.deferred_depth"));
  runtime_config cfg = config_for(transport_kind::queue, 4);
  cfg.aggregation = 1; // every send lands in the inbox immediately
  execute(cfg, [] {
    recorder r;
    location_barrier();
    if (this_location() == 0) {
      // Let the backlog build before location 0 polls it down.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    } else {
      for (int k = 0; k < 200; ++k)
        queued_rmi<recorder>(0, r.get_handle(), &recorder::record,
                             static_cast<int>(this_location()), k);
    }
    rmi_fence();
    if (this_location() == 0) {
      EXPECT_EQ(r.seen().size(), 200u * (num_locations() - 1));
      EXPECT_GT(my_stats().inbox_depth, 0u);
      auto const snap = metrics::snapshot();
      auto const it = snap.find("rmi.inbox_depth");
      EXPECT_TRUE(it != snap.end() && it->second > 0);
    }
    rmi_fence();
  });
}

// ---------------------------------------------------------------------------
// Disabled layer, naming, gates
// ---------------------------------------------------------------------------

TEST(Faults, DisarmedLayerRecordsNothing)
{
  fault_guard guard;
  fault::clear_events();
  ASSERT_FALSE(fault::armed());
  execute(config_for(transport_kind::queue, 4), [] {
    recorder r;
    for (int k = 0; k < 50; ++k)
      queued_rmi<recorder>((this_location() + 1) % num_locations(),
                           r.get_handle(), &recorder::record,
                           static_cast<int>(this_location()), k);
    rmi_fence();
  });
  EXPECT_TRUE(fault::all_events().empty());
}

TEST(Faults, SiteNamesRoundTrip)
{
  for (unsigned i = 0; i < fault::num_sites; ++i) {
    auto const s = static_cast<fault::site>(i);
    EXPECT_EQ(fault::site_from_name(fault::name_of(s)), s);
  }
  EXPECT_EQ(fault::site_from_name("no.such.site"), fault::site::site_count_);
}

TEST(Faults, GatedPlanOnlyFiresWhenGateOpen)
{
  fault_guard guard;
  auto dup = make_plan(fault::site::rmi_enqueue, fault::act_duplicate);
  dup.every_n = 1;
  dup.gate = 1;
  fault::add_plan(dup);
  fault::arm(base_seed());

  fault::set_gate(0);
  execute(config_for(transport_kind::queue, 2), [] {
    recorder r;
    for (int k = 0; k < 20; ++k)
      queued_rmi<recorder>(1, r.get_handle(), &recorder::record, 0, k);
    rmi_fence();
  });
  EXPECT_TRUE(fault::all_events().empty());

  fault::set_gate(1);
  execute(config_for(transport_kind::queue, 2), [] {
    recorder r;
    for (int k = 0; k < 20; ++k)
      queued_rmi<recorder>(1, r.get_handle(), &recorder::record, 0, k);
    rmi_fence();
  });
  EXPECT_FALSE(fault::all_events().empty());
}

TEST(Faults, DedupWindowMarksAndSuppresses)
{
  runtime_detail::dedup_window w;
  EXPECT_FALSE(w.is_dup(1));
  w.mark(1);
  EXPECT_TRUE(w.is_dup(1));
  // Out-of-order marks park in the ahead set until the gap closes.
  w.mark(4);
  EXPECT_TRUE(w.is_dup(4));
  EXPECT_FALSE(w.is_dup(2));
  EXPECT_FALSE(w.is_dup(3));
  w.mark(2);
  EXPECT_TRUE(w.is_dup(2));
  w.mark(3);
  EXPECT_TRUE(w.is_dup(3));
  EXPECT_EQ(w.contiguous, 4u);
  EXPECT_TRUE(w.ahead.empty());
}

} // namespace
