// Additional runtime and algorithm edge-case coverage: instrumentation
// counters (the performance monitor of Fig. 1), collective edge cases,
// post_to_self retry semantics, and algorithm boundary conditions.

#include "algorithms/p_algorithms.hpp"
#include "containers/p_array.hpp"

#include <gtest/gtest.h>

#include <string>

namespace {

using namespace stapl;

TEST(Instrumentation, CountersTrackTrafficClasses)
{
  execute(2, [] {
    p_array<int> pa(2);
    rmi_fence();
    reset_my_stats();

    // Local op: counted as local, no messages.
    gid1d const mine = this_location();
    pa.set_element(mine, 1);
    EXPECT_EQ(my_stats().local_rmis, 1u);
    EXPECT_EQ(my_stats().rmis_sent, 0u);

    // Remote async: counted as sent.
    pa.set_element(1 - mine, 2);
    EXPECT_EQ(my_stats().rmis_sent, 1u);

    // Remote sync read through the container: counted as a sent RMI (the
    // container's synchronous methods ride the split-phase machinery);
    // a raw sync_rmi moves the sync counter.
    auto const before_sent = my_stats().rmis_sent;
    (void)pa.get_element(1 - mine);
    EXPECT_GT(my_stats().rmis_sent, before_sent);
    auto const before_sync = my_stats().sync_rmis;
    (void)sync_rmi<p_array<int>>(1 - mine, pa.get_handle(),
                                 [](p_array<int> const& c) {
                                   return c.local_size();
                                 });
    EXPECT_GT(my_stats().sync_rmis, before_sync);

    auto const fences_before = my_stats().fences;
    rmi_fence();
    EXPECT_EQ(my_stats().fences, fences_before + 1);
    rmi_fence();
  });
}

TEST(Instrumentation, AggregationBatchesCounted)
{
  runtime_config cfg;
  cfg.num_locations = 2;
  cfg.aggregation = 10;
  execute(cfg, [] {
    p_array<int> pa(2);
    rmi_fence();
    reset_my_stats();
    for (int i = 0; i < 100; ++i)
      pa.set_element(1 - this_location(), i);
    rmi_fence();
    EXPECT_EQ(my_stats().rmis_sent, 100u);
    // 100 RMIs in batches of 10 -> exactly 10 messages.
    EXPECT_EQ(my_stats().msgs_sent, 10u);
    rmi_fence();
  });
}

TEST(Runtime, PostToSelfRetriesLater)
{
  execute(2, [] {
    int order = 0;
    int posted_at = -1;
    post_to_self([&] { posted_at = order++; });
    int const direct_at = order++;
    rmi_fence(); // the self-post drains here
    EXPECT_EQ(direct_at, 0); // ran before the parked request
    EXPECT_EQ(posted_at, 1);
    rmi_fence();
  });
}

TEST(Runtime, GetRegisteredObjectFindsLocalRep)
{
  execute(2, [] {
    struct holder : p_object {
      int tag = 0;
    } h;
    h.tag = 100 + static_cast<int>(this_location());
    auto* p = get_registered_object<holder>(h.get_handle());
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->tag, 100 + static_cast<int>(this_location()));
    EXPECT_EQ(p, &h);
    rmi_fence();
  });
}

TEST(Collectives, NonCommutativeScanOrder)
{
  execute(4, [] {
    // Exclusive scan with string concatenation: order must be by location.
    std::string const mine(1, static_cast<char>('a' + this_location()));
    auto const prefix = exclusive_scan(
        mine, [](std::string const& x, std::string const& y) { return x + y; },
        std::string{});
    std::string expect;
    for (location_id l = 0; l < this_location(); ++l)
      expect += static_cast<char>('a' + l);
    EXPECT_EQ(prefix, expect);
    rmi_fence();
  });
}

TEST(Collectives, AllgatherVectorsAndBroadcastNonzeroRoot)
{
  execute(3, [] {
    std::vector<int> mine(this_location() + 1, static_cast<int>(this_location()));
    auto all = allgather(mine);
    ASSERT_EQ(all.size(), 3u);
    for (location_id l = 0; l < 3; ++l) {
      EXPECT_EQ(all[l].size(), l + 1);
      for (int x : all[l])
        EXPECT_EQ(x, static_cast<int>(l));
    }
    auto const v = broadcast(2, static_cast<int>(this_location()) * 7);
    EXPECT_EQ(v, 14);
    rmi_fence();
  });
}

TEST(Collectives, LocationBarrierSynchronizes)
{
  execute(4, [] {
    std::atomic<int>* counter = nullptr;
    static std::atomic<int> shared{0};
    counter = &shared;
    if (this_location() == 0)
      shared.store(0);
    location_barrier();
    counter->fetch_add(1);
    location_barrier();
    EXPECT_EQ(counter->load(), 4);
    location_barrier();
  });
}

// ---------------------------------------------------------------------------
// Algorithm boundary conditions
// ---------------------------------------------------------------------------

TEST(AlgorithmEdges, EmptyAndSingleElementViews)
{
  execute(4, [] {
    p_array<int> empty_pa(0);
    array_1d_view ev(empty_pa);
    EXPECT_EQ(p_accumulate(ev, 42), 42);
    EXPECT_EQ(p_count(ev, 1), 0u);
    EXPECT_FALSE(p_min_element(ev).has_value());
    EXPECT_EQ(p_find(ev, 5), invalid_gid);

    p_array<int> one(1, 9);
    array_1d_view ov(one);
    EXPECT_EQ(p_accumulate(ov, 0), 9);
    auto mn = p_min_element(ov);
    ASSERT_TRUE(mn.has_value());
    EXPECT_EQ(mn->first, 0u);
    EXPECT_EQ(mn->second, 9);
    rmi_fence();
  });
}

TEST(AlgorithmEdges, FewerElementsThanLocations)
{
  execute(8, [] {
    p_array<long> pa(3, 5); // more locations than elements
    array_1d_view v(pa);
    EXPECT_EQ(p_accumulate(v, 0L), 15L);
    p_for_each(v, [](long& x) { x *= 2; });
    EXPECT_EQ(p_accumulate(v, 0L), 30L);
    EXPECT_EQ(p_count(v, 10L), 3u);
    rmi_fence();
  });
}

TEST(AlgorithmEdges, MinElementTieBreaksByLowestGid)
{
  execute(4, [] {
    p_array<int> pa(40, 7); // all equal: first gid must win
    auto mn = p_min_element(array_1d_view(pa));
    ASSERT_TRUE(mn.has_value());
    EXPECT_EQ(mn->first, 0u);
    rmi_fence();
  });
}

TEST(AlgorithmEdges, PartialSumSingleBlockAndManyBlocks)
{
  execute(4, [] {
    for (std::size_t n : {1u, 2u, 16u, 17u}) {
      p_array<long> in(n, 1), out(n);
      p_partial_sum(in, out);
      for (gid1d g = 0; g < n; ++g)
        EXPECT_EQ(out.get_element(g), static_cast<long>(g + 1)) << n;
      rmi_fence();
    }
  });
}

} // namespace
