// Tests for pList (Ch. X) and pVector (Ch. V.F): sequence semantics, the
// anywhere-insertion fast path, dynamic operations and the documented
// pList/pVector performance trade-off surfaces.

#include "algorithms/p_algorithms.hpp"
#include "containers/p_list.hpp"
#include "containers/p_vector.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <vector>

namespace {

using namespace stapl;

class PListTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(PListTest, PushBackGlobalOrder)
{
  execute(GetParam(), [] {
    p_list<int> pl;
    // Location 0 appends 0..19 at the global tail; the sequence order must
    // be exactly the append order.
    if (this_location() == 0)
      for (int i = 0; i < 20; ++i)
        pl.push_back(i);
    rmi_fence();
    EXPECT_EQ(pl.size(), 20u);
    // Collect the global sequence: concatenation of bContainers by bCID.
    auto local = pl.local_gids();
    std::vector<int> local_vals;
    pl.for_each_local([&](dynamic_gid, int& v) { local_vals.push_back(v); });
    auto all = allgather(local_vals);
    if (this_location() == 0) {
      std::vector<int> seq;
      for (auto const& part : all)
        seq.insert(seq.end(), part.begin(), part.end());
      ASSERT_EQ(seq.size(), 20u);
      for (int i = 0; i < 20; ++i)
        EXPECT_EQ(seq[static_cast<std::size_t>(i)], i);
    }
    rmi_fence();
  });
}

TEST_P(PListTest, PushFrontReversesOrder)
{
  execute(GetParam(), [] {
    p_list<int> pl;
    if (this_location() == 0)
      for (int i = 0; i < 10; ++i)
        pl.push_front(i);
    rmi_fence();
    std::vector<int> head_vals;
    pl.for_each_local([&](dynamic_gid, int& v) { head_vals.push_back(v); });
    auto all = allgather(head_vals);
    if (this_location() == 0) {
      auto const& head = all[0]; // bCID 0 lives on location 0
      ASSERT_EQ(head.size(), 10u);
      for (int i = 0; i < 10; ++i)
        EXPECT_EQ(head[static_cast<std::size_t>(i)], 9 - i);
    }
    rmi_fence();
  });
}

TEST_P(PListTest, PushAnywhereIsLocalAndBalanced)
{
  execute(GetParam(), [] {
    p_list<int> pl;
    metrics::reset_all(); // resets location_stats and the pList's directory
    for (int i = 0; i < 50; ++i)
      pl.push_anywhere_async(i);
    // Anywhere-insertion must not communicate.
    EXPECT_EQ(my_stats().rmis_sent, 0u);
    rmi_fence();
    EXPECT_EQ(pl.local_size(), 50u);
    EXPECT_EQ(pl.size(), 50u * num_locations());
    rmi_fence();
  });
}

TEST_P(PListTest, ElementAccessByGid)
{
  execute(GetParam(), [] {
    p_list<long> pl;
    std::vector<dynamic_gid> gids;
    for (int i = 0; i < 30; ++i)
      gids.push_back(pl.push_anywhere(static_cast<long>(i)));
    rmi_fence();
    for (int i = 0; i < 30; ++i)
      EXPECT_EQ(pl.get_element(gids[static_cast<std::size_t>(i)]), i);
    // Remote access: everyone reads location 0's first element.
    auto g0 = broadcast(0, gids[0]);
    EXPECT_EQ(pl.get_element(g0), 0);
    rmi_fence(); // separate the read phase from the write phase
    pl.set_element(g0, 999); // last writer wins; all write the same value
    rmi_fence();
    EXPECT_EQ(pl.get_element(g0), 999);
    // Split-phase access.
    auto fut = pl.split_phase_get_element(g0);
    EXPECT_EQ(fut.get(), 999);
    rmi_fence();
  });
}

TEST_P(PListTest, InsertBeforeAndErase)
{
  execute(GetParam(), [] {
    p_list<int> pl;
    dynamic_gid anchor;
    if (this_location() == 0) {
      anchor = pl.push_anywhere(100);
      (void)pl.push_anywhere(200);
    }
    anchor = broadcast(0, anchor);
    rmi_fence();
    // Everyone inserts one element before the anchor (on location 0).
    pl.insert_element_async(anchor, 7);
    rmi_fence();
    EXPECT_EQ(pl.size(), 2u + num_locations());
    // Sequence on location 0: all the 7s precede 100.
    if (this_location() == 0) {
      std::vector<int> vals;
      pl.for_each_local([&](dynamic_gid, int& v) { vals.push_back(v); });
      auto it100 = std::find(vals.begin(), vals.end(), 100);
      ASSERT_NE(it100, vals.end());
      EXPECT_EQ(std::count(vals.begin(), it100, 7),
                static_cast<long>(num_locations()));
    }
    rmi_fence();
    pl.erase_element(anchor);
    rmi_fence(); // idempotent erase of the same gid from all locations
    EXPECT_EQ(pl.size(), 1u + num_locations());
    rmi_fence();
  });
}

TEST_P(PListTest, SynchronousInsertReturnsUsableGid)
{
  execute(GetParam(), [] {
    p_list<int> pl;
    dynamic_gid tail_anchor;
    if (this_location() == 0)
      tail_anchor = pl.push_anywhere(-1);
    tail_anchor = broadcast(0, tail_anchor);
    rmi_fence();
    auto g = pl.insert_element(tail_anchor, static_cast<int>(this_location()));
    EXPECT_EQ(pl.get_element(g), static_cast<int>(this_location()));
    rmi_fence();
  });
}

TEST_P(PListTest, AlgorithmsOverListView)
{
  execute(GetParam(), [] {
    p_list<long> pl;
    for (int i = 0; i < 40; ++i)
      pl.push_anywhere_async(1);
    rmi_fence();
    // pList works with the generic algorithms through the view concept.
    native_view nv(pl);
    long const total = p_accumulate(nv, 0L);
    EXPECT_EQ(total, 40L * num_locations());
    p_for_each(nv, [](long& x) { x *= 3; });
    EXPECT_EQ(p_accumulate(nv, 0L), 120L * num_locations());
    rmi_fence();
  });
}

INSTANTIATE_TEST_SUITE_P(Locations, PListTest, ::testing::Values(1, 2, 4));

class PVectorTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(PVectorTest, ConstructAndIndexedAccess)
{
  execute(GetParam(), [] {
    p_vector<int> pv(100);
    EXPECT_EQ(pv.size(), 100u);
    if (this_location() == 0)
      for (gid1d g = 0; g < 100; ++g)
        pv.set_element(g, static_cast<int>(g + 1));
    rmi_fence();
    for (gid1d g = 0; g < 100; g += 9)
      EXPECT_EQ(pv.get_element(g), static_cast<int>(g + 1));
    rmi_fence();
  });
}

TEST_P(PVectorTest, PushBackGrowsTail)
{
  execute(GetParam(), [] {
    p_vector<int> pv(10);
    if (this_location() == 0)
      for (int i = 0; i < 25; ++i)
        pv.push_back(100 + i);
    pv.flush();
    EXPECT_EQ(pv.size(), 35u);
    // Elements 10..34 are the appended values, in order.
    for (gid1d g = 10; g < 35; ++g)
      EXPECT_EQ(pv.get_element(g), static_cast<int>(100 + g - 10));
    rmi_fence();
  });
}

TEST_P(PVectorTest, InsertShiftsElements)
{
  execute(GetParam(), [] {
    p_vector<int> pv(8);
    if (this_location() == 0) {
      for (gid1d g = 0; g < 8; ++g)
        pv.set_element(g, static_cast<int>(g));
    }
    rmi_fence();
    if (this_location() == 0)
      pv.insert_async(3, 99); // 0 1 2 99 3 4 5 6 7
    pv.flush();
    EXPECT_EQ(pv.size(), 9u);
    std::vector<int> expect{0, 1, 2, 99, 3, 4, 5, 6, 7};
    for (gid1d g = 0; g < 9; ++g)
      EXPECT_EQ(pv.get_element(g), expect[g]);
    rmi_fence();
  });
}

TEST_P(PVectorTest, EraseRemovesElement)
{
  execute(GetParam(), [] {
    p_vector<int> pv(10);
    if (this_location() == 0)
      for (gid1d g = 0; g < 10; ++g)
        pv.set_element(g, static_cast<int>(g));
    rmi_fence();
    if (this_location() == 0)
      pv.erase_async(4); // 0 1 2 3 5 6 7 8 9
    pv.flush();
    EXPECT_EQ(pv.size(), 9u);
    std::vector<int> expect{0, 1, 2, 3, 5, 6, 7, 8, 9};
    for (gid1d g = 0; g < 9; ++g)
      EXPECT_EQ(pv.get_element(g), expect[g]);
    rmi_fence();
  });
}

TEST_P(PVectorTest, MixedPhases)
{
  execute(GetParam(), [] {
    p_vector<long> pv(0);
    // Phase 1: everyone appends (serialized through the tail owner).
    for (int i = 0; i < 10; ++i)
      pv.push_back(1);
    pv.flush();
    EXPECT_EQ(pv.size(), 10u * num_locations());
    // Phase 2: algorithms over the vector.
    array_1d_view v(pv);
    EXPECT_EQ(p_accumulate(v, 0L),
              static_cast<long>(10 * num_locations()));
    // Phase 3: erase the first 5 indices (location 0 only), then verify.
    if (this_location() == 0)
      for (int i = 0; i < 5; ++i)
        pv.erase_async(0);
    pv.flush();
    EXPECT_EQ(pv.size(), 10u * num_locations() - 5u);
    rmi_fence();
  });
}

TEST_P(PVectorTest, UnbalancedPartitionResolution)
{
  // Direct unit test of pv_unbalanced_partition invariants.
  std::vector<std::size_t> sizes{3, 0, 5, 2};
  pv_unbalanced_partition p(sizes);
  EXPECT_EQ(p.size(), 4u);
  EXPECT_EQ(p.domain().size(), 10u);
  std::size_t covered = 0;
  for (bcid_type b = 0; b < 4; ++b) {
    for (std::size_t i = 0; i < p.subdomain_size(b); ++i) {
      gid1d const g = p.gid_of(b, i);
      EXPECT_EQ(p.get_info(g), b);
      EXPECT_EQ(p.local_index(g), i);
      ++covered;
    }
  }
  EXPECT_EQ(covered, 10u);
}

INSTANTIATE_TEST_SUITE_P(Locations, PVectorTest, ::testing::Values(1, 2, 4));

} // namespace
