#!/usr/bin/env python3
"""Diff two directories of BENCH_*.json files (bench_common.hpp --json
output) and emit a GitHub-flavored markdown summary of per-bench deltas.

Usage: bench_diff.py PREV_DIR CUR_DIR
       bench_diff.py --render CUR_DIR

For every bench present in both directories, every table row is matched by
its first cell (the row key, e.g. the location count) and each numeric
column's relative change is reported.  Informational only — the caller
treats the output as a job-summary annotation, never as a gate.

Columns whose direction is unambiguous (``*_s``/``seconds`` are
lower-is-better; recovery/speedup/mops/efficiency are higher-is-better)
additionally emit a GitHub ``::warning`` workflow command on stderr when
they regress by more than REGRESSION_PCT — stdout stays pure markdown so
the caller can keep redirecting it into the job summary, while the runner
picks the annotations out of the log.  Still non-blocking: warnings only,
exit 0.

Benches carrying a ``"latency"`` section (per-op-family histogram
quantiles, see bench_common.hpp) get a latency table — p50/p99/p999/max
are unambiguously lower-is-better, so growth past REGRESSION_PCT warns.
Benches carrying a ``"timeseries"`` array (bench_serve) additionally
compare the median steady-window serve.op p99 against the previous main
artifact and warn past SERVE_REGRESSION_PCT.

Benches carrying a scaling sweep (a top-level ``"sweeps"`` array, see
bench/scaling_harness.hpp) get curve-aware treatment: points are matched
by their full axes tuple (kernel/mode/transport/steal/grain/p/n), each
kernel renders a per-series scaling table (efficiency across P, seconds
delta vs previous), and a series whose efficiency at the largest common P
regressed by more than REGRESSION_PCT emits the same non-blocking
``::warning``.  ``--render CUR_DIR`` renders the curve tables of a single
run without a baseline (the scheduled scaling-full job summary).

BENCH_collectives gets its own curve treatment: the flat
"<primitive>/p<P>"-keyed latency table is regrouped into one
latency-vs-P table per primitive (flat_us / tree_us / speedup across the
swept location counts, deltas vs the baseline when present).  Counter
directions for the collectives family: ``coll.rounds`` and
``coll.agg_bytes`` are lower-is-better; ``coll.flat_fallbacks`` (and the
other shape counters) are informational only.
"""

import json
import sys
from pathlib import Path

REGRESSION_PCT = 10.0
SERVE_REGRESSION_PCT = 15.0  # steady-window serve p99 vs previous main

LOWER_IS_BETTER_SUFFIXES = ("_s", "_bytes", "_ns", "_us")
LOWER_IS_BETTER_NAMES = {
    "seconds", "wire_bytes", "spawn_bytes", "rmi_bytes", "msg_bytes",
    "bytes_moved", "steal_fail", "nap_us",
    # Collectives counters: fewer tree rounds is better; "coll.agg_bytes"
    # is lower-is-better through the "_bytes" suffix.  "flat_fallbacks",
    # "tree_depth", "ops" and "agg_batches" are deliberately unlisted —
    # they track configuration/workload shape, not quality (direction 0,
    # informational only).
    "rounds",
    # Hardening counters: escalated waits and watchdog dumps in a clean
    # bench run mean something got slower or stuck.
    "retries", "watchdog_dumps",
}
HIGHER_IS_BETTER_NAMES = {"recovery", "speedup", "mops", "reduction",
                          "efficiency"}

# Whole families that describe the injected scenario rather than the
# code's quality: "fault.*" counts what a chaos plan fired, so any growth
# is configuration, never a regression — even for keys whose suffix would
# otherwise be judged (e.g. a future fault.*_us).
INFORMATIONAL_FAMILIES = ("fault.",)
# Per-key overrides: suppressed duplicates and straggler bookkeeping scale
# with the injected storm, not with code quality.
INFORMATIONAL_NAMES = {"dups_suppressed", "probe_timeouts", "demotions",
                       "repromotions"}

SWEEP_AXES = ("kernel", "mode", "transport", "steal", "grain", "p", "n")


def column_direction(name):
    """-1 = lower is better, +1 = higher is better, 0 = don't judge.

    Also applied to the embedded metrics-registry keys ("rmi.rmi_bytes",
    "tg.steal_fail", ...): the family prefix is stripped first.
    """
    if name.startswith(INFORMATIONAL_FAMILIES):
        return 0
    name = name.rsplit(".", 1)[-1]
    if name in INFORMATIONAL_NAMES:
        return 0
    if name in LOWER_IS_BETTER_NAMES or name.endswith(LOWER_IS_BETTER_SUFFIXES):
        return -1
    if name in HIGHER_IS_BETTER_NAMES:
        return 1
    return 0


def warn_regression(bench, table, row_key, col, pct):
    print(
        f"::warning title=Bench regression ({bench})::"
        f"{table} — row {row_key}, {col}: {pct:+.1f}% vs previous main run "
        f"(threshold {REGRESSION_PCT:.0f}%, non-blocking)",
        file=sys.stderr,
    )


def load_benches(d):
    out = {}
    for f in sorted(Path(d).glob("BENCH_*.json")):
        try:
            out[f.stem] = json.loads(f.read_text())
        except (OSError, json.JSONDecodeError) as e:
            print(f"<!-- skipped {f}: {e} -->")
    return out


def rows_by_key(table):
    return {str(r[0]): r for r in table.get("rows", []) if r}


def fmt_delta(prev, cur):
    if not isinstance(prev, (int, float)) or not isinstance(cur, (int, float)):
        return None
    if prev == 0:
        return None
    pct = 100.0 * (cur - prev) / abs(prev)
    arrow = "+" if pct >= 0 else ""
    return f"{arrow}{pct:.1f}%"


def diff_metrics(name, prev_bench, cur_bench):
    """Diffs the embedded metrics-registry snapshot of one bench.

    Returns the markdown lines (empty when either side lacks metrics).
    Counter keys with an unambiguous direction (bytes, steal_fail, nap_us
    lower-better) emit the same non-blocking ::warning as table columns.
    """
    pmet, cmet = prev_bench.get("metrics"), cur_bench.get("metrics")
    if not isinstance(pmet, dict) or not isinstance(cmet, dict):
        return []
    lines = []
    for key in sorted(set(pmet) & set(cmet)):
        old, new = pmet[key], cmet[key]
        delta = fmt_delta(old, new)
        if delta is None:
            continue
        direction = column_direction(key)
        if (
            direction != 0
            and isinstance(old, (int, float))
            and isinstance(new, (int, float))
            and old != 0
        ):
            pct = 100.0 * (new - old) / abs(old)
            if pct * direction < -REGRESSION_PCT:
                warn_regression(name.removeprefix("BENCH_"), "metrics", key,
                                key, pct)
        lines.append(f"| {key} | {old} | {new} | {delta} |")
    if not lines:
        return []
    bench = name.removeprefix("BENCH_")
    return (
        [f"<details><summary><b>{bench}</b> — metrics registry</summary>", "",
         "| counter | previous | current | delta |", "|---|---|---|---|"]
        + lines + ["", "</details>", ""]
    )


LATENCY_QUANTILE_KEYS = ("p50_ns", "p90_ns", "p99_ns", "p999_ns", "max_ns")


def diff_latency(name, prev_bench, cur_bench):
    """Diffs the per-op-family latency histogram section of one bench.

    Renders one row per family present on both sides (current value with
    relative delta per quantile) and emits the non-blocking ``::warning``
    when a tail quantile regressed (grew) by more than REGRESSION_PCT —
    latency is unambiguously lower-is-better.
    """
    plat, clat = prev_bench.get("latency"), cur_bench.get("latency")
    if not isinstance(plat, dict) or not isinstance(clat, dict):
        return []
    lines = []
    for fam in sorted(set(plat) & set(clat)):
        old, new = plat[fam], clat[fam]
        if not isinstance(old, dict) or not isinstance(new, dict):
            continue
        cells = [fam, str(new.get("count", "–"))]
        for q in LATENCY_QUANTILE_KEYS:
            po, pn = old.get(q), new.get(q)
            delta = fmt_delta(po, pn)
            cells.append(f"{pn} ({delta})" if delta is not None
                         else str(pn if pn is not None else "–"))
            if (
                isinstance(po, (int, float))
                and isinstance(pn, (int, float))
                and po != 0
            ):
                pct = 100.0 * (pn - po) / abs(po)
                if pct > REGRESSION_PCT:
                    warn_regression(name.removeprefix("BENCH_"),
                                    "latency quantiles", fam, q, pct)
        lines.append("| " + " | ".join(cells) + " |")
    if not lines:
        return []
    bench = name.removeprefix("BENCH_")
    cols = ["family", "count"] + list(LATENCY_QUANTILE_KEYS)
    return (
        [f"<details><summary><b>{bench}</b> — latency quantiles (ns, "
         "current with delta vs previous)</summary>", "",
         "| " + " | ".join(cols) + " |", "|" + "---|" * len(cols)]
        + lines + ["", "</details>", ""]
    )


def steady_p99(bench, family="serve.op"):
    """Median p99 of the bench's steady-labelled timeseries windows."""
    ts = bench.get("timeseries")
    if not isinstance(ts, list):
        return None
    vals = []
    for w in ts:
        if not isinstance(w, dict) or w.get("label") != "steady":
            continue
        op = w.get("ops", {}).get(family) if isinstance(w.get("ops"), dict) \
            else None
        if isinstance(op, dict) and isinstance(op.get("p99_ns"), (int, float)):
            vals.append(op["p99_ns"])
    if not vals:
        return None
    vals.sort()
    return vals[len(vals) // 2]


def diff_timeseries(name, prev_bench, cur_bench):
    """Compares the serving timeseries' steady-state p99 against the
    previous main artifact: the serve-smoke tail-latency signal.  Uses the
    median of steady windows (waves and flash crowds excluded) so one
    noisy window doesn't trip the warning; threshold SERVE_REGRESSION_PCT,
    still non-gating."""
    old, new = steady_p99(prev_bench), steady_p99(cur_bench)
    if old is None or new is None:
        return []
    bench = name.removeprefix("BENCH_")
    delta = fmt_delta(old, new)
    lines = [f"**{bench}** — steady-window serve.op p99: "
             f"{old} → {new} ns ({delta if delta is not None else 'n/a'})",
             ""]
    if old > 0:
        pct = 100.0 * (new - old) / old
        if pct > SERVE_REGRESSION_PCT:
            print(
                f"::warning title=Serve p99 regression ({bench})::"
                f"steady-window serve.op p99 {pct:+.1f}% vs previous main "
                f"run (threshold {SERVE_REGRESSION_PCT:.0f}%, non-blocking)",
                file=sys.stderr,
            )
    return lines


def sweep_points(bench):
    """The bench's "sweeps" array (scaling_harness output), or []."""
    sweeps = bench.get("sweeps") if isinstance(bench, dict) else None
    return [p for p in sweeps if isinstance(p, dict)] \
        if isinstance(sweeps, list) else []


def point_key(pt):
    """Full-axes identity of a sweep point — the curve-matching key."""
    return tuple(pt.get(a) for a in SWEEP_AXES)


def series_key(pt):
    """Everything but P and N: one scaling curve."""
    return tuple(pt.get(a) for a in SWEEP_AXES[:5])


def series_label(key):
    _, mode, transport, steal, grain = key
    steal_s = "steal" if steal else "nosteal"
    return f"{mode}/{transport}/{steal_s}/g:{grain}"


def warn_efficiency_regressions(bench, kernel, skey, spts, ps, prev_pts):
    """Warns when a series' efficiency at the largest common P dropped by
    more than REGRESSION_PCT (the curve-level regression signal)."""
    for p in reversed(ps):
        pt = spts.get(p)
        old = prev_pts.get(point_key(pt)) if pt is not None else None
        if old is None:
            continue
        pe, ce = old.get("efficiency"), pt.get("efficiency")
        if isinstance(pe, (int, float)) and isinstance(ce, (int, float)) \
                and pe > 0:
            pct = 100.0 * (ce - pe) / pe
            if pct < -REGRESSION_PCT:
                warn_regression(bench, f"{kernel} curve",
                                f"{series_label(skey)} p={p}", "efficiency",
                                pct)
        return  # only the largest P present on both sides


def render_curves(name, cur_bench, prev_bench=None, warn=True):
    """Markdown curve tables for one bench's sweeps: per kernel, one row
    pair per series — current efficiency across P, and (with a baseline)
    the seconds delta against the axes-matched previous point."""
    pts = sweep_points(cur_bench)
    if not pts:
        return []
    prev_pts = {point_key(p): p
                for p in sweep_points(prev_bench if prev_bench else {})}
    bench = name.removeprefix("BENCH_")
    by_kernel = {}
    for pt in pts:
        by_kernel.setdefault(str(pt.get("kernel")), []).append(pt)

    lines = []
    for kernel in sorted(by_kernel):
        kpts = by_kernel[kernel]
        series = {}
        for pt in kpts:
            series.setdefault(series_key(pt), []).append(pt)
        ps = sorted({pt.get("p") for pt in kpts
                     if isinstance(pt.get("p"), int)})
        if not ps:
            continue
        rows = []
        for skey in sorted(series, key=str):
            spts = {pt.get("p"): pt for pt in series[skey]}
            eff_cells, dt_cells = [], []
            for p in ps:
                pt = spts.get(p)
                if pt is None:
                    eff_cells.append("–")
                    dt_cells.append("–")
                    continue
                eff = pt.get("efficiency")
                eff_cells.append(f"{eff:.2f}"
                                 if isinstance(eff, (int, float)) else "–")
                old = prev_pts.get(point_key(pt))
                delta = fmt_delta(old.get("seconds"), pt.get("seconds")) \
                    if old is not None else None
                dt_cells.append(delta if delta is not None else "–")
            label = series_label(skey)
            rows.append("| " + " | ".join([label, "efficiency"] + eff_cells)
                        + " |")
            if prev_pts:
                rows.append("| " + " | ".join([label, "Δseconds"] + dt_cells)
                            + " |")
                if warn:
                    warn_efficiency_regressions(bench, kernel, skey, spts,
                                                ps, prev_pts)
        if not rows:
            continue
        cols = ["series", "metric"] + [f"p={p}" for p in ps]
        lines += [f"<details><summary><b>{bench}</b> — {kernel} scaling "
                  f"curves</summary>", "",
                  "| " + " | ".join(cols) + " |",
                  "|" + "---|" * len(cols)]
        lines += rows
        lines += ["", "</details>", ""]
    return lines


COLLECTIVE_TABLE_TITLE = "collective latency vs P (flat vs tree)"
COLLECTIVE_CURVE_METRICS = ("flat_us", "tree_us", "speedup")


def collective_rows(bench):
    """Point-keyed rows + columns of the collectives latency table, or
    ({}, []).  Row keys are "<primitive>/p<P>" (bench_collectives.cpp)."""
    tables = bench.get("tables", []) if isinstance(bench, dict) else []
    for t in tables:
        if isinstance(t, dict) and t.get("title") == COLLECTIVE_TABLE_TITLE:
            return rows_by_key(t), t.get("columns", [])
    return {}, []


def render_collective_curves(name, cur_bench, prev_bench=None):
    """Per-primitive latency-vs-P curve tables for BENCH_collectives.

    Regroups the flat "<primitive>/p<P>"-keyed rows into one table per
    primitive — flat_us / tree_us / speedup across the swept location
    counts, each cell carrying its relative delta when the previous run
    measured the same point.  Purely presentational: regression warnings
    on these columns already come from the generic row-matched table diff
    (flat_us/tree_us lower-better via the "_us" suffix, speedup
    higher-better), so this renderer never warns.
    """
    rows, cols = collective_rows(cur_bench)
    if not rows or not cols or cols[0] != "point":
        return []
    metric_idx = {c: i for i, c in enumerate(cols)}
    if any(m not in metric_idx for m in COLLECTIVE_CURVE_METRICS):
        return []
    prev_rows, _ = collective_rows(prev_bench if prev_bench else {})

    by_prim = {}
    for key, row in rows.items():
        prim, sep, ptag = key.rpartition("/p")
        if not sep or not ptag.isdigit():
            continue
        by_prim.setdefault(prim, {})[int(ptag)] = row

    bench = name.removeprefix("BENCH_")
    lines = []
    for prim in sorted(by_prim):
        prows = by_prim[prim]
        ps = sorted(prows)
        header = ["metric"] + [f"p={p}" for p in ps]
        body = []
        for metric in COLLECTIVE_CURVE_METRICS:
            i = metric_idx[metric]
            cells = [metric]
            for p in ps:
                row = prows[p]
                val = row[i] if i < len(row) else None
                if not isinstance(val, (int, float)):
                    cells.append("–")
                    continue
                old = prev_rows.get(f"{prim}/p{p}")
                delta = fmt_delta(old[i], val) \
                    if old is not None and i < len(old) else None
                text = f"{val:.3g}"
                cells.append(f"{text} ({delta})" if delta is not None
                             else text)
            body.append("| " + " | ".join(cells) + " |")
        lines += [f"<details><summary><b>{bench}</b> — {prim} latency vs P "
                  "(flat vs tree)</summary>", "",
                  "| " + " | ".join(header) + " |",
                  "|" + "---|" * len(header)]
        lines += body
        lines += ["", "</details>", ""]
    return lines


def main(argv=None):
    argv = sys.argv if argv is None else argv
    if len(argv) == 3 and argv[1] == "--render":
        benches = load_benches(argv[2])
        print("### Scaling curves")
        print()
        printed = 0
        for name in sorted(benches):
            lines = render_curves(name, benches[name], None, warn=False)
            lines += render_collective_curves(name, benches[name])
            if lines:
                print("\n".join(lines))
                printed += 1
        if printed == 0:
            print("_No sweep data found._")
        return 0
    if len(argv) != 3:
        print(__doc__)
        return 1
    prev, cur = load_benches(argv[1]), load_benches(argv[2])
    common = sorted(set(prev) & set(cur))
    if not common:
        print("_No previous bench artifacts to diff against._")
        return 0

    print("### Bench deltas vs previous main run")
    print()
    print("Relative change per numeric cell (current vs previous; sign "
          "follows the metric — lower is better for seconds columns).")
    print()
    printed = 0
    for name in common:
        ptables = {t["title"]: t for t in prev[name].get("tables", [])}
        for table in cur[name].get("tables", []):
            pt = ptables.get(table["title"])
            if pt is None or pt.get("columns") != table.get("columns"):
                continue
            cols = table["columns"]
            prow = rows_by_key(pt)
            lines = []
            for row in table.get("rows", []):
                if not row or str(row[0]) not in prow:
                    continue
                old = prow[str(row[0])]
                cells = [str(row[0])]
                for i in range(1, len(cols)):
                    delta = None
                    if i < len(row) and i < len(old):
                        delta = fmt_delta(old[i], row[i])
                        direction = column_direction(cols[i])
                        if (
                            direction != 0
                            and isinstance(old[i], (int, float))
                            and isinstance(row[i], (int, float))
                            and old[i] != 0
                        ):
                            pct = 100.0 * (row[i] - old[i]) / abs(old[i])
                            if pct * direction < -REGRESSION_PCT:
                                warn_regression(name.removeprefix("BENCH_"),
                                                table["title"], str(row[0]),
                                                cols[i], pct)
                    cells.append(delta if delta is not None else "–")
                lines.append("| " + " | ".join(cells) + " |")
            if not lines:
                continue
            bench = name.removeprefix("BENCH_")
            print(f"<details><summary><b>{bench}</b> — {table['title']}"
                  f"</summary>\n")
            print("| " + " | ".join(cols) + " |")
            print("|" + "---|" * len(cols))
            print("\n".join(lines))
            print("\n</details>\n")
            printed += 1
        metric_lines = diff_metrics(name, prev[name], cur[name])
        if metric_lines:
            print("\n".join(metric_lines))
            printed += 1
        latency_lines = diff_latency(name, prev[name], cur[name])
        if latency_lines:
            print("\n".join(latency_lines))
            printed += 1
        ts_lines = diff_timeseries(name, prev[name], cur[name])
        if ts_lines:
            print("\n".join(ts_lines))
            printed += 1
        curve_lines = render_curves(name, cur[name], prev[name])
        if curve_lines:
            print("\n".join(curve_lines))
            printed += 1
        coll_lines = render_collective_curves(name, cur[name], prev[name])
        if coll_lines:
            print("\n".join(coll_lines))
            printed += 1
    if printed == 0:
        print("_No comparable tables found._")
    return 0


if __name__ == "__main__":
    sys.exit(main())
