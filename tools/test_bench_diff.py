#!/usr/bin/env python3
"""Tests for bench_diff.py — pytest-collectible, but with no pytest
dependency: ``python3 tools/test_bench_diff.py`` runs the same tests
standalone (the container image may lack pytest; CI's tools-test job uses
it when present).

Fixtures are built in-memory and written to temp dirs: classic row/column
tables (direction-aware warnings, missing bench / mismatched columns),
embedded metrics, and scaling sweeps (axes matching, the
efficiency-at-largest-P regression warning, --render mode).
"""

import contextlib
import io
import json
import os
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import bench_diff


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

def run_main(argv):
    """Runs bench_diff.main with captured stdout/stderr."""
    out, err = io.StringIO(), io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
        rc = bench_diff.main(["bench_diff.py"] + argv)
    return rc, out.getvalue(), err.getvalue()


def write_bench(d, name, data):
    Path(d, f"BENCH_{name}.json").write_text(json.dumps(data))


def table_bench(seconds, mops=1.0, columns=("locations", "run_s", "mops")):
    return {
        "bench": "t",
        "scale": 1,
        "tables": [{
            "title": "timings",
            "columns": list(columns),
            "rows": [[1, seconds, mops]],
        }],
        "metrics": {"rmi.rmi_bytes": 1000},
    }


def sweep_point(kernel="for_each", mode="strong", transport="queue",
                steal=True, grain="auto", p=1, n=1000, seconds=1.0,
                efficiency=1.0):
    return {
        "kernel": kernel, "mode": mode, "transport": transport,
        "steal": steal, "grain": grain, "p": p, "n": n,
        "seconds": seconds, "efficiency": efficiency,
        "metrics": {"rmi.rmis_sent": 10},
    }


def sweep_bench(points):
    return {"bench": "scaling", "scale": 1, "tables": [], "metrics": {},
            "sweeps": points}


# ---------------------------------------------------------------------------
# Classic table diffing
# ---------------------------------------------------------------------------

def test_lower_is_better_regression_warns():
    with tempfile.TemporaryDirectory() as prev, \
            tempfile.TemporaryDirectory() as cur:
        write_bench(prev, "t", table_bench(seconds=1.0))
        write_bench(cur, "t", table_bench(seconds=1.5))  # +50% run_s
        rc, out, err = run_main([prev, cur])
        assert rc == 0
        assert "::warning" in err and "run_s" in err
        assert "+50.0%" in out


def test_higher_is_better_regression_warns():
    with tempfile.TemporaryDirectory() as prev, \
            tempfile.TemporaryDirectory() as cur:
        write_bench(prev, "t", table_bench(seconds=1.0, mops=10.0))
        write_bench(cur, "t", table_bench(seconds=1.0, mops=5.0))
        rc, out, err = run_main([prev, cur])
        assert rc == 0
        assert "::warning" in err and "mops" in err


def test_improvement_does_not_warn():
    with tempfile.TemporaryDirectory() as prev, \
            tempfile.TemporaryDirectory() as cur:
        write_bench(prev, "t", table_bench(seconds=1.5, mops=5.0))
        write_bench(cur, "t", table_bench(seconds=1.0, mops=10.0))
        rc, out, err = run_main([prev, cur])
        assert rc == 0
        assert "::warning" not in err


def test_missing_bench_yields_no_diff():
    with tempfile.TemporaryDirectory() as prev, \
            tempfile.TemporaryDirectory() as cur:
        write_bench(prev, "a", table_bench(seconds=1.0))
        write_bench(cur, "b", table_bench(seconds=1.0))
        rc, out, err = run_main([prev, cur])
        assert rc == 0
        assert "No previous bench artifacts" in out
        assert "::warning" not in err


def test_mismatched_columns_skipped():
    with tempfile.TemporaryDirectory() as prev, \
            tempfile.TemporaryDirectory() as cur:
        write_bench(prev, "t", table_bench(seconds=1.0))
        changed = table_bench(seconds=9.0,
                              columns=("locations", "other_s", "mops"))
        write_bench(cur, "t", changed)
        rc, out, err = run_main([prev, cur])
        assert rc == 0
        # Tables are incomparable; only the metrics block is rendered.
        assert "timings" not in out
        assert "::warning" not in err


def test_malformed_json_skipped():
    with tempfile.TemporaryDirectory() as prev, \
            tempfile.TemporaryDirectory() as cur:
        Path(prev, "BENCH_t.json").write_text("{not json")
        write_bench(cur, "t", table_bench(seconds=1.0))
        rc, out, err = run_main([prev, cur])
        assert rc == 0


def test_metrics_direction_warning():
    with tempfile.TemporaryDirectory() as prev, \
            tempfile.TemporaryDirectory() as cur:
        a, b = table_bench(seconds=1.0), table_bench(seconds=1.0)
        a["metrics"] = {"rmi.rmi_bytes": 1000}
        b["metrics"] = {"rmi.rmi_bytes": 2000}  # bytes doubled
        write_bench(prev, "t", a)
        write_bench(cur, "t", b)
        rc, out, err = run_main([prev, cur])
        assert rc == 0
        assert "::warning" in err and "rmi.rmi_bytes" in err


# ---------------------------------------------------------------------------
# Latency quantiles and the serving timeseries
# ---------------------------------------------------------------------------

def latency_section(p99=5000, p999=20000):
    return {"serve.op": {"count": 1000, "sum_ns": 2_000_000, "p50_ns": 1500,
                         "p90_ns": 3000, "p99_ns": p99, "p999_ns": p999,
                         "max_ns": p999 * 2}}


def timeseries(steady_p99s, wave_p99=400_000):
    ts = []
    for i, p99 in enumerate(steady_p99s):
        ts.append({"t_ms": 100 * i, "label": "steady",
                   "ops": {"serve.op": {"count": 500, "p50_ns": 1000,
                                        "p90_ns": 2000, "p99_ns": p99,
                                        "p999_ns": p99 * 4,
                                        "max_ns": p99 * 10}},
                   "counters": {}})
    ts.append({"t_ms": 100 * len(steady_p99s), "label": "wave",
               "ops": {"serve.op": {"count": 500, "p50_ns": 1500,
                                    "p90_ns": 10_000, "p99_ns": wave_p99,
                                    "p999_ns": wave_p99 * 2,
                                    "max_ns": wave_p99 * 3}},
               "counters": {}})
    return ts


def test_latency_table_renders_and_tail_regression_warns():
    with tempfile.TemporaryDirectory() as prev, \
            tempfile.TemporaryDirectory() as cur:
        a, b = table_bench(seconds=1.0), table_bench(seconds=1.0)
        a["latency"] = latency_section(p99=5000)
        b["latency"] = latency_section(p99=9000)  # +80% p99
        write_bench(prev, "serve", a)
        write_bench(cur, "serve", b)
        rc, out, err = run_main([prev, cur])
        assert rc == 0
        assert "latency quantiles" in out
        assert "serve.op" in out
        assert "::warning" in err and "p99_ns" in err


def test_latency_improvement_does_not_warn():
    with tempfile.TemporaryDirectory() as prev, \
            tempfile.TemporaryDirectory() as cur:
        a, b = table_bench(seconds=1.0), table_bench(seconds=1.0)
        a["latency"] = latency_section(p99=9000)
        b["latency"] = latency_section(p99=5000)  # got faster
        write_bench(prev, "serve", a)
        write_bench(cur, "serve", b)
        rc, out, err = run_main([prev, cur])
        assert rc == 0
        assert "latency quantiles" in out
        assert "p99_ns" not in err


def test_serve_steady_p99_regression_warns_at_15_pct():
    with tempfile.TemporaryDirectory() as prev, \
            tempfile.TemporaryDirectory() as cur:
        a, b = table_bench(seconds=1.0), table_bench(seconds=1.0)
        a["timeseries"] = timeseries([5000, 5200, 5100])
        b["timeseries"] = timeseries([6500, 6400, 6600])  # ~ +25% median
        write_bench(prev, "serve", a)
        write_bench(cur, "serve", b)
        rc, out, err = run_main([prev, cur])
        assert rc == 0
        assert "steady-window serve.op p99" in out
        assert "Serve p99 regression" in err


def test_serve_steady_p99_uses_median_and_ignores_waves():
    """One noisy steady window must not trip the warning (median), and the
    huge wave-window p99 must be excluded from the comparison."""
    with tempfile.TemporaryDirectory() as prev, \
            tempfile.TemporaryDirectory() as cur:
        a, b = table_bench(seconds=1.0), table_bench(seconds=1.0)
        a["timeseries"] = timeseries([5000, 5200, 5100])
        # Median of [5100, 5150, 90000] is 5150: +1% vs prev median 5100.
        b["timeseries"] = timeseries([5100, 90_000, 5150],
                                     wave_p99=10_000_000)
        write_bench(prev, "serve", a)
        write_bench(cur, "serve", b)
        rc, out, err = run_main([prev, cur])
        assert rc == 0
        assert "Serve p99 regression" not in err


def test_steady_p99_helper_handles_missing_data():
    assert bench_diff.steady_p99({}) is None
    assert bench_diff.steady_p99({"timeseries": []}) is None
    assert bench_diff.steady_p99({"timeseries": [{"label": "wave"}]}) is None


# ---------------------------------------------------------------------------
# Curve-aware sweep diffing
# ---------------------------------------------------------------------------

def curve_fixture(eff_p4_cur):
    """prev/cur sweep pair: one for_each series over P=1,2,4; the current
    efficiency at the largest P is the knob."""
    prev = sweep_bench([
        sweep_point(p=1, seconds=1.0, efficiency=1.0),
        sweep_point(p=2, seconds=0.55, efficiency=0.91),
        sweep_point(p=4, seconds=0.30, efficiency=0.83),
    ])
    cur = sweep_bench([
        sweep_point(p=1, seconds=1.0, efficiency=1.0),
        sweep_point(p=2, seconds=0.55, efficiency=0.91),
        sweep_point(p=4, seconds=1.0 / (4 * eff_p4_cur),
                    efficiency=eff_p4_cur),
    ])
    return prev, cur


def test_curve_matching_by_axes():
    """Points match on the full axes tuple; an axes change unmatches."""
    prev_b, cur_b = curve_fixture(eff_p4_cur=0.80)
    # Give the current P=2 point a different n: no previous match.
    cur_b["sweeps"][1]["n"] = 2222
    with tempfile.TemporaryDirectory() as prev, \
            tempfile.TemporaryDirectory() as cur:
        write_bench(prev, "scaling", prev_b)
        write_bench(cur, "scaling", cur_b)
        rc, out, err = run_main([prev, cur])
        assert rc == 0
        assert "for_each scaling curves" in out
        assert "Δseconds" in out
        row = next(line for line in out.splitlines()
                   if "Δseconds" in line)
        # p=1 and p=4 matched, the n-changed p=2 point did not.
        cells = [c.strip() for c in row.strip("|").split("|")]
        assert cells[2] == "+0.0%"
        assert cells[3] == "–"
        assert cells[4] != "–"


def test_efficiency_regression_at_largest_p_warns():
    prev_b, cur_b = curve_fixture(eff_p4_cur=0.50)  # 0.83 -> 0.50: -39%
    with tempfile.TemporaryDirectory() as prev, \
            tempfile.TemporaryDirectory() as cur:
        write_bench(prev, "scaling", prev_b)
        write_bench(cur, "scaling", cur_b)
        rc, out, err = run_main([prev, cur])
        assert rc == 0
        assert "::warning" in err
        assert "efficiency" in err and "p=4" in err


def test_efficiency_within_threshold_does_not_warn():
    prev_b, cur_b = curve_fixture(eff_p4_cur=0.78)  # 0.83 -> 0.78: -6%
    with tempfile.TemporaryDirectory() as prev, \
            tempfile.TemporaryDirectory() as cur:
        write_bench(prev, "scaling", prev_b)
        write_bench(cur, "scaling", cur_b)
        rc, out, err = run_main([prev, cur])
        assert rc == 0
        assert "efficiency" not in err


def test_smaller_p_regression_does_not_warn():
    """Only the largest common P gates the curve warning."""
    prev_b, cur_b = curve_fixture(eff_p4_cur=0.83)
    cur_b["sweeps"][1]["efficiency"] = 0.40  # p=2 tanked, p=4 fine
    with tempfile.TemporaryDirectory() as prev, \
            tempfile.TemporaryDirectory() as cur:
        write_bench(prev, "scaling", prev_b)
        write_bench(cur, "scaling", cur_b)
        rc, out, err = run_main([prev, cur])
        assert rc == 0
        assert "efficiency" not in err


def test_render_mode_without_baseline():
    _, cur_b = curve_fixture(eff_p4_cur=0.83)
    with tempfile.TemporaryDirectory() as cur:
        write_bench(cur, "scaling", cur_b)
        rc, out, err = run_main(["--render", cur])
        assert rc == 0
        assert "Scaling curves" in out
        assert "for_each scaling curves" in out
        assert "p=1" in out and "p=4" in out
        assert "0.83" in out
        assert "Δseconds" not in out  # no baseline: no delta rows
        assert "::warning" not in err


def test_render_mode_empty_dir():
    with tempfile.TemporaryDirectory() as cur:
        rc, out, err = run_main(["--render", cur])
        assert rc == 0
        assert "No sweep data found" in out


def test_usage_error():
    rc, out, err = run_main([])
    assert rc == 1


# ---------------------------------------------------------------------------
# Collectives: counter directions and per-primitive latency-vs-P curves
# ---------------------------------------------------------------------------

def collectives_bench(tree_us_p8=30.0, metrics=None):
    """Minimal BENCH_collectives shape: the "<primitive>/p<P>"-keyed
    latency table (two primitives, P=2,4,8) plus the coll.* counters."""
    rows = []
    for prim in ("allreduce", "broadcast"):
        for p, flat_us in ((2, 10.0), (4, 25.0), (8, 60.0)):
            tree_us = tree_us_p8 if p == 8 else flat_us * 1.1
            rows.append([f"{prim}/p{p}", p, flat_us, tree_us,
                         flat_us / tree_us])
    return {
        "bench": "collectives",
        "scale": 1,
        "tables": [{
            "title": bench_diff.COLLECTIVE_TABLE_TITLE,
            "columns": ["point", "locations", "flat_us", "tree_us",
                        "speedup"],
            "rows": rows,
        }],
        "metrics": metrics if metrics is not None else
        {"coll.rounds": 100, "coll.agg_bytes": 5000,
         "coll.flat_fallbacks": 7, "coll.tree_depth": 3},
    }


def test_coll_counter_directions():
    assert bench_diff.column_direction("coll.rounds") == -1
    assert bench_diff.column_direction("coll.agg_bytes") == -1
    assert bench_diff.column_direction("coll.flat_fallbacks") == 0
    assert bench_diff.column_direction("coll.tree_depth") == 0
    assert bench_diff.column_direction("coll.agg_batches") == 0
    assert bench_diff.column_direction("flat_us") == -1
    assert bench_diff.column_direction("tree_us") == -1
    assert bench_diff.column_direction("speedup") == 1


def test_coll_rounds_regression_warns():
    with tempfile.TemporaryDirectory() as prev, \
            tempfile.TemporaryDirectory() as cur:
        write_bench(prev, "collectives",
                    collectives_bench(metrics={"coll.rounds": 100}))
        write_bench(cur, "collectives",
                    collectives_bench(metrics={"coll.rounds": 150}))
        rc, out, err = run_main([prev, cur])
        assert rc == 0
        assert "::warning" in err and "coll.rounds" in err


def test_coll_flat_fallbacks_is_informational():
    """flat_fallbacks tracks the auto-select threshold, not quality: a big
    swing renders in the metrics table but never warns."""
    with tempfile.TemporaryDirectory() as prev, \
            tempfile.TemporaryDirectory() as cur:
        write_bench(prev, "collectives",
                    collectives_bench(metrics={"coll.flat_fallbacks": 2}))
        write_bench(cur, "collectives",
                    collectives_bench(metrics={"coll.flat_fallbacks": 40}))
        rc, out, err = run_main([prev, cur])
        assert rc == 0
        assert "coll.flat_fallbacks" in out
        assert "::warning" not in err


def test_fault_and_robust_counter_directions():
    # fault.* describes the injected scenario: informational even for keys
    # whose suffix would otherwise be judged.
    assert bench_diff.column_direction("fault.injected") == 0
    assert bench_diff.column_direction("fault.dups") == 0
    assert bench_diff.column_direction("fault.stall_us") == 0
    # Hardening counters: escalated waits and watchdog dumps are
    # unambiguously bad; dedup/straggler bookkeeping scales with the storm.
    assert bench_diff.column_direction("robust.retries") == -1
    assert bench_diff.column_direction("robust.watchdog_dumps") == -1
    assert bench_diff.column_direction("robust.dups_suppressed") == 0
    assert bench_diff.column_direction("robust.probe_timeouts") == 0
    assert bench_diff.column_direction("robust.demotions") == 0
    assert bench_diff.column_direction("robust.repromotions") == 0


def test_robust_retries_regression_warns():
    with tempfile.TemporaryDirectory() as prev, \
            tempfile.TemporaryDirectory() as cur:
        write_bench(prev, "collectives",
                    collectives_bench(metrics={"robust.retries": 10}))
        write_bench(cur, "collectives",
                    collectives_bench(metrics={"robust.retries": 30}))
        rc, out, err = run_main([prev, cur])
        assert rc == 0
        assert "::warning" in err and "robust.retries" in err


def test_fault_counters_never_warn():
    with tempfile.TemporaryDirectory() as prev, \
            tempfile.TemporaryDirectory() as cur:
        write_bench(prev, "collectives",
                    collectives_bench(metrics={"fault.injected": 5,
                                               "robust.dups_suppressed": 3}))
        write_bench(cur, "collectives",
                    collectives_bench(metrics={"fault.injected": 500,
                                               "robust.dups_suppressed": 300}))
        rc, out, err = run_main([prev, cur])
        assert rc == 0
        assert "fault.injected" in out
        assert "::warning" not in err


def test_collective_curves_render_per_primitive():
    """The diff regroups the flat point-keyed table into one latency-vs-P
    table per primitive, cells carrying deltas vs the matched baseline."""
    with tempfile.TemporaryDirectory() as prev, \
            tempfile.TemporaryDirectory() as cur:
        write_bench(prev, "collectives", collectives_bench(tree_us_p8=30.0))
        write_bench(cur, "collectives", collectives_bench(tree_us_p8=15.0))
        rc, out, err = run_main([prev, cur])
        assert rc == 0
        assert "allreduce latency vs P (flat vs tree)" in out
        assert "broadcast latency vs P (flat vs tree)" in out
        assert "p=2" in out and "p=8" in out
        row = next(line for line in out.splitlines()
                   if line.startswith("| tree_us"))
        assert "(-50.0%)" in row  # p=8 tree halved vs baseline


def test_collective_tree_us_regression_warns_via_row_diff():
    """Row-level regression warnings come from the generic table differ
    ("_us" suffix = lower-better) — the curve renderer itself never
    warns, so exactly one warning fires per regressed point."""
    with tempfile.TemporaryDirectory() as prev, \
            tempfile.TemporaryDirectory() as cur:
        write_bench(prev, "collectives", collectives_bench(tree_us_p8=30.0))
        write_bench(cur, "collectives", collectives_bench(tree_us_p8=60.0))
        rc, out, err = run_main([prev, cur])
        assert rc == 0
        warnings = [l for l in err.splitlines()
                    if "::warning" in l and "tree_us" in l]
        assert len(warnings) == 2  # one per primitive's p=8 row
        assert any("allreduce/p8" in w for w in warnings)


def test_collective_curves_in_render_mode():
    with tempfile.TemporaryDirectory() as cur:
        write_bench(cur, "collectives", collectives_bench())
        rc, out, err = run_main(["--render", cur])
        assert rc == 0
        assert "allreduce latency vs P (flat vs tree)" in out
        assert "(-" not in out.split("allreduce latency")[1].split(
            "</details>")[0]  # no baseline: bare values, no deltas
        assert "::warning" not in err


def test_collective_curves_absent_table_is_noop():
    assert bench_diff.render_collective_curves(
        "BENCH_t", table_bench(seconds=1.0)) == []
    assert bench_diff.render_collective_curves("BENCH_t", {}) == []


if __name__ == "__main__":
    failed = 0
    for name, fn in sorted(t for t in globals().items()
                           if t[0].startswith("test_") and callable(t[1])):
        try:
            fn()
            print(f"PASS {name}")
        except AssertionError:
            import traceback
            traceback.print_exc()
            print(f"FAIL {name}")
            failed += 1
    sys.exit(1 if failed else 0)
