// Quickstart: the Fig. 26-style introduction to stapl-pcf.
//
// Build & run:   ./quickstart [num_locations]
//
// Shows: SPMD execution, pArray construction with different partitions, the
// shared-object view (every location can touch every element), sync/async/
// split-phase element methods, views and generic pAlgorithms.

#include "algorithms/p_algorithms.hpp"
#include "containers/p_array.hpp"

#include <cstdio>
#include <cstdlib>

int main(int argc, char** argv)
{
  unsigned const p = argc > 1 ? std::atoi(argv[1]) : 4;

  stapl::execute(p, [] {
    using namespace stapl;

    // A pArray of 100 integers, balanced across locations (Fig. 26).
    p_array<int> pa(100);

    // A second pArray with an explicit blocked partition of block size 10.
    p_array<int, blocked_partition> pa_blocked(100, blocked_partition(10));

    // Shared object view: location 0 writes elements it does NOT own.
    if (this_location() == 0)
      for (gid1d g = 0; g < 100; ++g)
        pa.set_element(g, static_cast<int>(g)); // asynchronous write
    rmi_fence();                                // completion guarantee

    // Everyone reads an arbitrary element (synchronous).
    int const v42 = pa.get_element(42);

    // Split-phase read: overlap communication with computation.
    auto fut = pa.split_phase_get_element(7);
    int local_work = 0;
    for (int i = 0; i < 1000; ++i)
      local_work += i;
    int const v7 = fut.get();

    // Views + pAlgorithms: double everything, then reduce.
    array_1d_view view(pa);
    p_for_each(view, [](int& x) { x *= 2; });
    long const total = p_accumulate(view, 0L);

    if (this_location() == 0) {
      std::printf("pa[42] = %d, pa[7] = %d (+%d)\n", v42, v7,
                  local_work > 0 ? 0 : 1);
      std::printf("sum of 2*0..2*99 = %ld (expect 9900)\n", total);
      std::printf("locations: %u, local elements here: %zu\n",
                  num_locations(), pa.local_size());
    }
    rmi_fence();
  });
  return 0;
}
