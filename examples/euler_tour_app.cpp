// Euler tour application (Ch. X.H): root a tree, compute vertex levels and
// postorder numbers with the Euler tour technique + parallel list ranking.
//
// Run: ./euler_tour_app [num_locations] [tree_vertices]

#include "algorithms/euler_tour.hpp"
#include "runtime/timer.hpp"

#include <cstdio>
#include <cstdlib>

int main(int argc, char** argv)
{
  unsigned const p = argc > 1 ? std::atoi(argv[1]) : 4;
  std::size_t const n = argc > 2 ? (std::size_t)std::atoll(argv[2]) : 1023;

  stapl::execute(p, [n] {
    using namespace stapl;

    euler_tour_results results(n);
    auto tm = start_timer();
    euler_tour_applications(n, results);
    double const t = stop_timer(tm);

    if (this_location() == 0) {
      std::printf("Euler tour over binary tree with %zu vertices: %.3fs\n",
                  n, t);
      std::printf("vertex  parent  level  postorder\n");
      for (gid1d v = 0; v < std::min<std::size_t>(n, 15); ++v)
        std::printf("%6zu %7zu %6ld %10ld\n", v,
                    results.parent.get_element(v),
                    results.level.get_element(v),
                    results.postorder.get_element(v));
      std::printf("root postorder = %ld (expect %zu)\n",
                  results.postorder.get_element(0), n);
    }
    rmi_fence();
  });
  return 0;
}
