// 1D heat diffusion: a stencil computation exercising the overlap-view
// pattern (Fig. 2) and double-buffered pArrays — the kind of scientific
// kernel the pView layer is designed for.
//
// Run: ./heat_stencil [num_locations] [cells] [steps]

#include "algorithms/p_algorithms.hpp"
#include "containers/p_array.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

int main(int argc, char** argv)
{
  unsigned const p = argc > 1 ? std::atoi(argv[1]) : 4;
  std::size_t const n = argc > 2 ? (std::size_t)std::atoll(argv[2]) : 1000;
  std::size_t const steps = argc > 3 ? (std::size_t)std::atoll(argv[3]) : 200;

  stapl::execute(p, [n, steps] {
    using namespace stapl;

    p_array<double> a(n, 0.0), b(n, 0.0);
    // Hot spot in the middle.
    if (this_location() == 0)
      a.set_element(n / 2, 1000.0);
    rmi_fence();

    p_array<double>* cur = &a;
    p_array<double>* nxt = &b;
    double const alpha = 0.25;

    for (std::size_t s = 0; s < steps; ++s) {
      array_1d_view cv(*cur);
      // Each location updates its own elements reading the 3-point window;
      // only block-boundary reads communicate (the overlap pattern).
      for (auto g : cv.local_gids()) {
        double const left = g > 0 ? cv.read(g - 1) : cv.read(g);
        double const mid = *cv.try_local_ref(g);
        double const right = g + 1 < n ? cv.read(g + 1) : cv.read(g);
        nxt->local_element(g) = mid + alpha * (left - 2 * mid + right);
      }
      rmi_fence();
      std::swap(cur, nxt);
    }

    double const total = p_accumulate(array_1d_view(*cur), 0.0);
    auto mx = p_max_element(array_1d_view(*cur));
    if (this_location() == 0 && mx) {
      std::printf("after %zu steps: total heat %.3f (conserved ~1000), "
                  "peak %.3f at cell %zu\n",
                  steps, total, mx->second, mx->first);
    }
    rmi_fence();
  });
  return 0;
}
