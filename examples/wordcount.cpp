// MapReduce word count (Ch. XII.C.1, Fig. 59): counts word occurrences
// across a distributed corpus into a pHashMap.
//
// Run: ./wordcount [num_locations]

#include "algorithms/map_reduce.hpp"
#include "containers/p_array.hpp"
#include "views/views.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

int main(int argc, char** argv)
{
  unsigned const p = argc > 1 ? std::atoi(argv[1]) : 4;

  stapl::execute(p, [] {
    using namespace stapl;

    std::vector<std::string> const docs{
        "to be or not to be",
        "that is the question",
        "whether tis nobler in the mind to suffer",
        "the slings and arrows of outrageous fortune",
        "or to take arms against a sea of troubles",
        "and by opposing end them"};

    p_array<std::string> corpus(docs.size());
    if (this_location() == 0)
      for (gid1d i = 0; i < docs.size(); ++i)
        corpus.set_element(i, docs[i]);
    rmi_fence();

    p_hash_map<std::string, long> counts;
    word_count(array_1d_view(corpus), counts);

    if (this_location() == 0) {
      std::printf("distinct words: %zu\n", counts.size());
      for (auto const* w : {"the", "to", "be", "or", "question"})
        std::printf("  %-10s %ld\n", w, counts.find_val(w).first);
    }
    rmi_fence();
  });
  return 0;
}
