// Graph analytics with the pGraph (Ch. XI): build a mesh and an SSCA2-style
// graph, run BFS, connected components and PageRank.
//
// Run: ./graph_analytics [num_locations]

#include "algorithms/graph_algorithms.hpp"
#include "containers/graph_generators.hpp"

#include <cstdio>
#include <cstdlib>

int main(int argc, char** argv)
{
  unsigned const p = argc > 1 ? std::atoi(argv[1]) : 4;

  stapl::execute(p, [] {
    using namespace stapl;

    // BFS on a 40x25 mesh.
    {
      p_graph<DIRECTED, NONMULTI, bfs_property, no_property> mesh(1000);
      generate_mesh(mesh, 40, 25);
      auto const visited = bfs_levels(mesh, 0);
      long max_level = 0;
      mesh.for_each_local_vertex([&](vertex_descriptor, auto& rec) {
        max_level = std::max(max_level, rec.property.level);
      });
      max_level = allreduce(max_level, [](long a, long b) {
        return std::max(a, b);
      });
      if (this_location() == 0)
        std::printf("BFS: visited %zu vertices, eccentricity %ld "
                    "(expect 63 for 40x25)\n",
                    visited, max_level);
    }

    // Connected components on a 3-component forest.
    {
      p_graph<UNDIRECTED, NONMULTI, cc_property, no_property> g(300);
      if (this_location() == 0)
        for (std::size_t v = 0; v < 300; ++v)
          if ((v + 1) % 100 != 0)
            g.add_edge_async(v, v + 1);
      rmi_fence();
      auto const ncc = connected_components(g);
      if (this_location() == 0)
        std::printf("connected components: %zu (expect 3)\n", ncc);
    }

    // PageRank on an SSCA2-style clique graph.
    {
      p_graph<DIRECTED, NONMULTI, pagerank_property, no_property> g(512);
      generate_ssca2(g, 512, 8, 0.2);
      page_rank(g, 15);
      if (this_location() == 0)
        std::printf("PageRank total mass: %.6f (expect ~1.0)\n",
                    total_rank(g));
      else
        (void)total_rank(g); // collective
    }
    rmi_fence();
  });
  return 0;
}
