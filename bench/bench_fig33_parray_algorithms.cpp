// Fig. 33: execution times for generic algorithms (p_generate, p_for_each,
// p_accumulate) on a pArray, weak scaling (fixed elements per location).
// Expected shape: near-flat weak-scaling curves (all work is local through
// the native-aligned view).

#include "algorithms/p_algorithms.hpp"
#include "bench_common.hpp"
#include "containers/p_array.hpp"

#include <atomic>

int main(int argc, char** argv)
{
  bench::init(argc, argv);
  using namespace stapl;
  std::printf("# Fig. 33 — generic algorithms on pArray, weak scaling\n");
  bench::table_header("per-loc 200k elements (seconds)",
                      {"locations", "p_generate", "p_for_each",
                       "p_accumulate"});

  std::size_t const per_loc = 200'000 * bench::scale();
  for (unsigned p : bench::default_locations) {
    std::atomic<double> tg{0}, tf{0}, ta{0};
    execute(p, [&] {
      p_array<long> pa(per_loc * num_locations());
      array_1d_view v(pa);

      double t = bench::timed_kernel([&] {
        long c = 0;
        p_generate(v, [&c] { return c++; });
      });
      if (this_location() == 0)
        tg.store(t);

      t = bench::timed_kernel([&] {
        p_for_each(v, [](long& x) { x += 3; });
      });
      if (this_location() == 0)
        tf.store(t);

      t = bench::timed_kernel([&] {
        long const s = p_accumulate(v, 0L);
        if (s < 0)
          std::abort();
      });
      if (this_location() == 0)
        ta.store(t);
    });
    bench::cell(static_cast<std::size_t>(p));
    bench::cell(tg.load());
    bench::cell(tf.load());
    bench::cell(ta.load());
    bench::endrow();
  }
  return 0;
}
