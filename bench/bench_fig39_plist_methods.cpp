// Fig. 39: execution times for pList methods.  Expected shape:
// push_anywhere (local) is by far the cheapest and scales perfectly;
// push_back funnels to the tail owner (serialization point); insert/erase
// by GID sit in between (one async hop each).

#include "bench_common.hpp"
#include "containers/p_list.hpp"

#include <atomic>

int main(int argc, char** argv)
{
  bench::init(argc, argv);
  using namespace stapl;
  std::printf("# Fig. 39 — pList methods (seconds for N/P ops per loc)\n");
  bench::table_header("pList methods",
                      {"locations", "push_back", "push_anywhere",
                       "insert_async", "erase"});

  std::size_t const ops = 10'000 * bench::scale();
  for (unsigned p : bench::default_locations) {
    std::atomic<double> tb{0}, ta{0}, ti{0}, te{0};
    execute(p, [&] {
      p_list<long> pl;

      double t = bench::timed_kernel([&] {
        for (std::size_t i = 0; i < ops; ++i)
          pl.push_back(static_cast<long>(i));
      });
      if (this_location() == 0)
        tb.store(t);

      t = bench::timed_kernel([&] {
        for (std::size_t i = 0; i < ops; ++i)
          pl.push_anywhere_async(static_cast<long>(i));
      });
      if (this_location() == 0)
        ta.store(t);

      // Insert before a local anchor.
      auto anchor = pl.push_anywhere(-1);
      rmi_fence();
      t = bench::timed_kernel([&] {
        for (std::size_t i = 0; i < ops; ++i)
          pl.insert_element_async(anchor, static_cast<long>(i));
      });
      if (this_location() == 0)
        ti.store(t);

      // Erase local elements.
      std::vector<dynamic_gid> gids;
      gids.reserve(ops);
      for (std::size_t i = 0; i < ops; ++i)
        gids.push_back(pl.push_anywhere(1));
      rmi_fence();
      t = bench::timed_kernel([&] {
        for (auto g : gids)
          pl.erase_element(g);
      });
      if (this_location() == 0)
        te.store(t);
    });
    bench::cell(static_cast<std::size_t>(p));
    bench::cell(tb.load());
    bench::cell(ta.load());
    bench::cell(ti.load());
    bench::cell(te.load());
    bench::endrow();
  }
  return 0;
}
