// Fig. 52: comparison of pGraph partitions — build time and traversal time
// under the three address-translation modes on an SSCA2-style input.
// Expected shape: static builds fastest (no directory registration) and
// traverses fastest; the dynamic variants pay directory maintenance.

#include "algorithms/graph_algorithms.hpp"
#include "bench_common.hpp"
#include "containers/graph_generators.hpp"

#include <atomic>

int main(int argc, char** argv)
{
  bench::init(argc, argv);
  using namespace stapl;
  std::printf("# Fig. 52 — pGraph partitions: build + traversal\n");
  bench::table_header("SSCA2 4k/loc (seconds)",
                      {"locations", "kind", "build", "bfs"});

  std::size_t const per_loc = 1'000 * bench::scale();
  char const* names[3] = {"static", "dyn_fwd", "dyn_nofwd"};
  graph_partition_kind const kinds[3] = {
      graph_partition_kind::static_balanced,
      graph_partition_kind::dynamic_forwarding,
      graph_partition_kind::dynamic_no_forwarding};

  for (unsigned p : bench::default_locations) {
    for (int k = 0; k < 3; ++k) {
      std::atomic<double> tb{0}, tt{0};
      execute(p, [&] {
        using G = p_graph<DIRECTED, MULTI, bfs_property, no_property>;
        std::size_t const n = per_loc * num_locations();
        double t = bench::timed_kernel([&] {
          G g(kinds[k] == graph_partition_kind::static_balanced ? n : 0,
              kinds[k]);
          generate_ssca2(g, n, 8, 0.3);
        });
        if (this_location() == 0)
          tb.store(t);

        G g(kinds[k] == graph_partition_kind::static_balanced ? n : 0,
            kinds[k]);
        generate_ssca2(g, n, 8, 0.3);
        // Link cliques into a chain so BFS reaches most of the graph.
        auto const [lo, hi] = std::pair<std::size_t, std::size_t>(
            0, n); // location 0 adds chain edges
        if (this_location() == 0)
          for (std::size_t v = lo; v + 8 < hi; v += 8)
            g.add_edge_async(v, v + 8);
        rmi_fence();
        t = bench::timed_kernel([&] { (void)bfs_levels(g, 0); });
        if (this_location() == 0)
          tt.store(t);
      });
      bench::cell(static_cast<std::size_t>(p));
      bench::cell(std::string(names[k]));
      bench::cell(tb.load());
      bench::cell(tt.load());
      bench::endrow();
    }
  }
  return 0;
}
