// Figs. 49/50: evaluation of static and dynamic pGraph methods using the
// SSCA2-style generator: add_vertex, add_edge, find_vertex, find_edge,
// delete_edge.  Expected shape: static resolution is cheapest (closed
// form); the dynamic graph pays directory traffic on vertex creation and
// remote lookups.

#include "bench_common.hpp"
#include "containers/graph_generators.hpp"

#include <atomic>

int main(int argc, char** argv)
{
  bench::init(argc, argv);
  using namespace stapl;
  std::printf("# Figs. 49/50 — pGraph methods with SSCA2 input\n");
  bench::table_header("per-loc 2k vertices (seconds)",
                      {"locations", "kind", "build", "find_vertex",
                       "add_edge", "find_edge"});

  std::size_t const per_loc = 2'000 * bench::scale();
  for (unsigned p : bench::default_locations) {
    for (int kindi = 0; kindi < 2; ++kindi) {
      std::atomic<double> tb{0}, tfv{0}, tae{0}, tfe{0};
      std::size_t const n = per_loc * p;
      execute(p, [&] {
        auto const kind = kindi == 0
                              ? graph_partition_kind::static_balanced
                              : graph_partition_kind::dynamic_forwarding;
        using G = p_graph<DIRECTED, MULTI, int, no_property>;

        double t = bench::timed_kernel([&] {
          G g(kind == graph_partition_kind::static_balanced ? n : 0, kind);
          generate_ssca2(g, n, 8, 0.1); // adds vertices for dynamic graphs
        });
        if (this_location() == 0)
          tb.store(t);

        G g(kind == graph_partition_kind::static_balanced ? n : 0, kind);
        generate_ssca2(g, n, 8, 0.1);

        std::size_t const probes = 1'000;
        t = bench::timed_kernel([&] {
          for (std::size_t i = 0; i < probes; ++i)
            if (!g.find_vertex((i * 37 + this_location()) % n))
              std::abort();
        });
        if (this_location() == 0)
          tfv.store(t);

        t = bench::timed_kernel([&] {
          for (std::size_t i = 0; i < probes; ++i)
            g.add_edge_async((i * 13 + this_location()) % n, (i * 41) % n);
        });
        if (this_location() == 0)
          tae.store(t);

        t = bench::timed_kernel([&] {
          std::size_t hits = 0;
          for (std::size_t i = 0; i < probes; ++i)
            hits += g.find_edge((i * 7) % n, (i * 7) % n + 1 < n
                                                ? (i * 7) % n + 1
                                                : 0);
          if (hits == static_cast<std::size_t>(-1))
            std::abort();
        });
        if (this_location() == 0)
          tfe.store(t);
      });
      bench::cell(static_cast<std::size_t>(p));
      bench::cell(std::string(kindi == 0 ? "static" : "dynamic"));
      bench::cell(tb.load());
      bench::cell(tfv.load());
      bench::cell(tae.load());
      bench::cell(tfe.load());
      bench::endrow();
    }
  }
  return 0;
}
