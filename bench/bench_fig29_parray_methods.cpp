// Fig. 29: pArray methods for various input sizes — each location performs
// N/P invocations spread over the whole index space (mix of local and
// remote).  Expected shape: time scales linearly with N/P; async writes are
// cheaper per op than sync reads.

#include "bench_common.hpp"
#include "containers/p_array.hpp"

#include <atomic>

int main(int argc, char** argv)
{
  bench::init(argc, argv);
  using namespace stapl;
  std::printf("# Fig. 29 — pArray methods over the whole index space\n");
  bench::table_header("methods vs input size (seconds)",
                      {"N", "set_async", "get_sync", "split_phase"});

  unsigned const p = 4;
  for (std::size_t n : {4'000u, 16'000u, 64'000u}) {
    std::size_t const total = n * bench::scale();
    std::atomic<double> ts{0}, tg{0}, tsp{0};
    execute(p, [&] {
      p_array<long> pa(total);
      // Strided accesses covering the full array: ~1/P local.
      std::size_t const per_loc = total / num_locations();
      gid1d const start = this_location();

      double t = bench::timed_kernel([&] {
        for (std::size_t i = 0; i < per_loc; ++i)
          pa.set_element((start + i * num_locations()) % total,
                         static_cast<long>(i));
      });
      if (this_location() == 0)
        ts.store(t);

      t = bench::timed_kernel([&] {
        long sink = 0;
        for (std::size_t i = 0; i < per_loc; ++i)
          sink += pa.get_element((start + i * num_locations()) % total);
        if (sink == std::numeric_limits<long>::min())
          std::abort();
      });
      if (this_location() == 0)
        tg.store(t);

      t = bench::timed_kernel([&] {
        // Split-phase: overlap batches of 64 in-flight futures.
        std::vector<pc_future<long>> futs;
        futs.reserve(64);
        long sink = 0;
        for (std::size_t i = 0; i < per_loc; ++i) {
          futs.push_back(pa.split_phase_get_element(
              (start + i * num_locations()) % total));
          if (futs.size() == 64) {
            for (auto& f : futs)
              sink += f.get();
            futs.clear();
          }
        }
        for (auto& f : futs)
          sink += f.get();
        if (sink == std::numeric_limits<long>::min())
          std::abort();
      });
      if (this_location() == 0)
        tsp.store(t);
    });
    bench::cell(total);
    bench::cell(ts.load());
    bench::cell(tg.load());
    bench::cell(tsp.load());
    bench::endrow();
  }
  std::printf("\n# shape check: set_async < split_phase < get_sync per op\n");
  return 0;
}
