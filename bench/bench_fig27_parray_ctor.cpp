// Fig. 27: pArray constructor execution time for various input sizes and
// location counts (paper: CRAY4 / P5-cluster; here: thread-backed
// locations).  Expected shape: time grows linearly with the per-location
// share and is essentially flat in P for fixed per-location size.

#include "bench_common.hpp"
#include "containers/p_array.hpp"

#include <atomic>

int main(int argc, char** argv)
{
  bench::init(argc, argv);
  using namespace stapl;
  std::printf("# Fig. 27 — pArray constructor time (seconds)\n");
  bench::table_header("p_array(n) constructor",
                      {"locations", "n=100k", "n=400k", "n=1.6M"});

  for (unsigned p : bench::default_locations) {
    std::atomic<double> t100{0}, t400{0}, t1600{0};
    std::pair<std::size_t, std::atomic<double>*> const cases[] = {
        {100'000, &t100}, {400'000, &t400}, {1'600'000, &t1600}};
    execute(p, [&] {
      for (auto const& [n, slot] : cases) {
        std::size_t const total = n * bench::scale();
        double const t = bench::timed_kernel([&] {
          p_array<double> pa(total);
          (void)pa;
        });
        if (this_location() == 0)
          slot->store(t);
      }
    });
    bench::cell(static_cast<std::size_t>(p));
    bench::cell(t100.load());
    bench::cell(t400.load());
    bench::cell(t1600.load());
    bench::endrow();
  }
  return 0;
}
