// Fig. 43: weak scaling of the Euler tour algorithm (binary tree input,
// fixed vertices per location).  Expected shape: near-linear growth of the
// tour+ranking cost with log(len) rounds of pointer jumping; weak-scaling
// curves stay close as P grows.

#include "algorithms/euler_tour.hpp"
#include "bench_common.hpp"

#include <atomic>

int main(int argc, char** argv)
{
  bench::init(argc, argv);
  using namespace stapl;
  std::printf("# Fig. 43 — Euler tour weak scaling\n");
  bench::table_header("per-loc vertices (seconds)",
                      {"locations", "n_total", "build_tour", "list_rank"});

  std::size_t const per_loc = 8'000 * bench::scale();
  for (unsigned p : bench::default_locations) {
    std::atomic<double> tb{0}, tr{0};
    std::size_t const n = per_loc * p;
    execute(p, [&] {
      std::size_t const len = 2 * (n - 1);
      p_array<std::size_t> succ(len);
      p_array<long> pos(len);

      double t = bench::timed_kernel([&] { build_euler_tour(succ, n); });
      if (this_location() == 0)
        tb.store(t);

      t = bench::timed_kernel([&] { list_rank(succ, pos); });
      if (this_location() == 0)
        tr.store(t);
    });
    bench::cell(static_cast<std::size_t>(p));
    bench::cell(n);
    bench::cell(tb.load());
    bench::cell(tr.load());
    bench::endrow();
  }
  return 0;
}
