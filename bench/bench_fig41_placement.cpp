// Fig. 41: weak scaling of p_for_each with processes allocated on the same
// node vs spread across nodes.  On one host the placement axis is modeled
// by the message-aggregation factor: co-located processes enjoy cheap,
// batched transfers (high aggregation), spread processes pay per-message
// overhead (aggregation 1).  Expected shape: the "spread" (agg=1) curve
// sits above the "same node" (agg=64) curve for communication-heavy
// work, and the gap grows with P.

#include "algorithms/p_algorithms.hpp"
#include "bench_common.hpp"
#include "containers/p_array.hpp"

#include <atomic>

int main(int argc, char** argv)
{
  bench::init(argc, argv);
  using namespace stapl;
  std::printf("# Fig. 41 — placement (modeled by aggregation factor)\n");
  bench::table_header("remote-heavy p_for_each pattern (seconds)",
                      {"locations", "same_node(a)", "spread(b)", "msgs_a",
                       "msgs_b"});

  std::size_t const ops = 25'000 * bench::scale();
  for (unsigned p : bench::default_locations) {
    double times[2] = {0, 0};
    std::uint64_t msgs[2] = {0, 0};
    unsigned const aggs[2] = {64, 1};
    for (int cfgi = 0; cfgi < 2; ++cfgi) {
      std::atomic<double> t{0};
      std::atomic<std::uint64_t> m{0};
      runtime_config cfg;
      cfg.num_locations = p;
      cfg.aggregation = aggs[cfgi];
      execute(cfg, [&] {
        p_array<long> pa(1'000 * num_locations());
        gid1d const remote =
            1'000 * ((this_location() + 1) % num_locations());
        auto kernel = [&] {
          for (std::size_t i = 0; i < ops; ++i)
            pa.apply_set(remote + i % 1'000, [](long& x) { ++x; });
        };
        kernel(); // warmup: allocator arenas, buffers
        rmi_fence();
        metrics::reset_all(); // every stats family, not just location_stats
        double const tt = bench::timed_kernel(kernel);
        auto const total_msgs =
            allreduce(my_stats().msgs_sent, std::plus<>{});
        if (this_location() == 0) {
          t.store(tt);
          m.store(total_msgs);
        }
      });
      times[cfgi] = t.load();
      msgs[cfgi] = m.load();
    }
    bench::cell(static_cast<std::size_t>(p));
    bench::cell(times[0]);
    bench::cell(times[1]);
    bench::cell(static_cast<std::size_t>(msgs[0]));
    bench::cell(static_cast<std::size_t>(msgs[1]));
    bench::endrow();
  }
  return 0;
}
