// Fig. 40: p_for_each / p_generate / p_accumulate on pArray vs pList.
// Expected shape: both flat under weak scaling; the pList pays a constant
// factor for linked storage and GID indexing.

#include "algorithms/p_algorithms.hpp"
#include "bench_common.hpp"
#include "containers/p_array.hpp"
#include "containers/p_list.hpp"

#include <atomic>

int main(int argc, char** argv)
{
  bench::init(argc, argv);
  using namespace stapl;
  std::printf("# Fig. 40 — algorithms on pArray vs pList (seconds)\n");
  bench::table_header("per-loc 100k elements",
                      {"locations", "arr_foreach", "list_foreach",
                       "arr_accum", "list_accum"});

  std::size_t const per_loc = 100'000 * bench::scale();
  for (unsigned p : bench::default_locations) {
    std::atomic<double> taf{0}, tlf{0}, taa{0}, tla{0};
    execute(p, [&] {
      p_array<long> pa(per_loc * num_locations(), 1);
      p_list<long> pl;
      for (std::size_t i = 0; i < per_loc; ++i)
        pl.push_anywhere_async(1);
      rmi_fence();

      array_1d_view av(pa);
      native_view lv(pl);

      double t = bench::timed_kernel([&] {
        p_for_each(av, [](long& x) { x += 1; });
      });
      if (this_location() == 0)
        taf.store(t);

      t = bench::timed_kernel([&] {
        p_for_each(lv, [](long& x) { x += 1; });
      });
      if (this_location() == 0)
        tlf.store(t);

      t = bench::timed_kernel([&] {
        if (p_accumulate(av, 0L) < 0)
          std::abort();
      });
      if (this_location() == 0)
        taa.store(t);

      t = bench::timed_kernel([&] {
        if (p_accumulate(lv, 0L) < 0)
          std::abort();
      });
      if (this_location() == 0)
        tla.store(t);
    });
    bench::cell(static_cast<std::size_t>(p));
    bench::cell(taf.load());
    bench::cell(tlf.load());
    bench::cell(taa.load());
    bench::cell(tla.load());
    bench::endrow();
  }
  return 0;
}
