// Scaling & scenario suite: strong/weak scaling sweeps over the declared
// harness axes (P, transport, steal, grain) for six kernels — the core
// p_algorithms (for_each, map_reduce, partial_sum, sample_sort) plus the
// two scenarios the paper's figures never stressed:
//
//   * graph_stream — edge churn on a dynamic (directory-forwarded) pGraph
//     with incremental push-based PageRank re-running after every churn
//     round, i.e. the streaming recompute path over the migration
//     machinery;
//   * assoc_mixed — a mixed read/write/scan workload over p_hash_map
//     (synchronous find_val reads, insert_async writes, apply_async
//     updates, one local scan per round).
//
// Default axes are the CI-smoke "lite" sweep (steal on, grain auto);
// --full opts into the complete cross product; --pmax K caps the location
// list (powers of two up to K).  With --json the per-point results land in
// BENCH_scaling.json under "sweeps" (timing + efficiency + the per-point
// metrics::global_snapshot delta) next to the row/column tables.

#include "algorithms/graph_algorithms.hpp"
#include "algorithms/p_algorithms.hpp"
#include "algorithms/p_sort.hpp"
#include "bench_common.hpp"
#include "containers/graph_generators.hpp"
#include "containers/p_array.hpp"
#include "containers/p_associative.hpp"
#include "scaling_harness.hpp"

#include <cstring>
#include <random>

namespace {

using bench::scaling::kernel_def;
using bench::scaling::sweep_point;

stapl::exec_policy policy_of(sweep_point const& pt)
{
  return stapl::exec_policy{pt.grain, pt.steal, pt.steal};
}

/// p_for_each over a pArray: per-element arithmetic, the baseline
/// data-parallel curve.
double k_for_each(sweep_point const& pt)
{
  using namespace stapl;
  p_array<double> a(pt.n, 1.0);
  array_1d_view v(a);
  return bench::timed_kernel([&] {
    p_for_each(v, [](double& x) { x = x * 1.0000001 + 0.5; }, policy_of(pt));
  });
}

/// map_reduce over a pArray: tree reduction of a per-element map.
double k_map_reduce(sweep_point const& pt)
{
  using namespace stapl;
  p_array<double> a(pt.n, 2.0);
  array_1d_view v(a);
  return bench::timed_kernel([&] {
    auto const r = map_reduce(v, [](double x) { return x * x; },
                              std::plus<>{}, policy_of(pt));
    if (r && *r < 0)
      std::abort();
  });
}

/// p_partial_sum: the cross-location dependence-chain scan.
double k_partial_sum(sweep_point const& pt)
{
  using namespace stapl;
  p_array<long> in(pt.n, 1), out(pt.n);
  return bench::timed_kernel([&] { p_partial_sum(in, out); });
}

/// p_sample_sort on a pseudo-random pArray.
double k_sample_sort(sweep_point const& pt)
{
  using namespace stapl;
  p_array<long> a(pt.n);
  a.for_each_local([](gid1d g, long& x) {
    x = static_cast<long>((g * 2654435761UL) % 1000003UL);
  });
  rmi_fence();
  return bench::timed_kernel([&] { p_sample_sort(a); });
}

/// Streaming pGraph scenario: a dynamic (directory-forwarded) random graph
/// under edge churn.  Each timed round rewires a sample of local out-edges
/// (rewire_edge_async: one routed visit per rewire) and *deletes* every
/// third sampled edge outright (delete_edge, no replacement) so
/// out-degrees genuinely shrink as the stream progresses, kicks residual
/// mass into the churned sources, and re-runs incremental PageRank from
/// exactly those vertices — recompute cost follows the churn, not the
/// graph size.
double k_graph_stream(sweep_point const& pt)
{
  using namespace stapl;
  using G = p_graph<DIRECTED, NONMULTI, dynamic_pagerank_property,
                    no_property>;
  std::size_t const n = std::max<std::size_t>(pt.n, 16);
  G g(graph_partition_kind::dynamic_forwarding);
  generate_random(g, n, 4);
  page_rank_push_init(g);
  (void)page_rank_incremental(g, g.local_gids(), 30);

  return bench::timed_kernel([&] {
    std::mt19937 gen(7 + this_location());
    std::uniform_int_distribution<std::size_t> pick(0, n - 1);
    auto const locals = g.local_gids();
    std::size_t const churn =
        std::max<std::size_t>(1, locals.size() / 16);
    for (unsigned round = 0; round < 3; ++round) {
      std::vector<vertex_descriptor> touched;
      for (std::size_t i = 0; i < churn && !locals.empty(); ++i) {
        vertex_descriptor const v = locals[gen() % locals.size()];
        auto const targets = g.out_edges(v);
        if (targets.empty())
          continue;
        vertex_descriptor const old = targets[gen() % targets.size()];
        if (i % 3 == 2) {
          // Deletion-heavy churn: drop the edge without a replacement.
          g.delete_edge(v, old);
        } else {
          vertex_descriptor w = pick(gen);
          if (w == v)
            w = (w + 1) % n;
          g.rewire_edge_async(v, old, w);
        }
        g.apply_vertex(v, [](auto& rec) { rec.property.residual += 1e-4; });
        touched.push_back(v);
      }
      rmi_fence();
      (void)page_rank_incremental(g, touched, 10);
    }
  });
}

/// Mixed read/write/scan workload over p_hash_map: 50% synchronous reads
/// (find_val), 30% asynchronous writes (insert_async), 20% asynchronous
/// read-modify-writes (apply_async), plus one local scan per location.
double k_assoc_mixed(sweep_point const& pt)
{
  using namespace stapl;
  p_hash_map<long, long> m;
  std::size_t const n = std::max<std::size_t>(pt.n, 10);
  for (std::size_t k = this_location(); k < n; k += num_locations())
    m.insert_async(static_cast<long>(k), 1);
  rmi_fence();

  return bench::timed_kernel([&] {
    std::size_t const ops = n / num_locations();
    std::mt19937 gen(11 + this_location());
    std::uniform_int_distribution<long> key(0, static_cast<long>(n) - 1);
    long checksum = 0;
    for (std::size_t i = 0; i < ops; ++i) {
      long const k = key(gen);
      switch (i % 10) {
        case 0: case 1: case 2: case 3: case 4:
          checksum += m.find_val(k).first;
          break;
        case 5: case 6: case 7:
          m.insert_async(k, static_cast<long>(i));
          break;
        default:
          m.apply_async(k, [](long& v) { ++v; });
          break;
      }
    }
    m.for_each_local([&](long, long& v) { checksum += v; });
    if (checksum < 0)
      std::abort();
    rmi_fence();
  });
}

} // namespace

int main(int argc, char** argv)
{
  bench::init(argc, argv);
  namespace sc = bench::scaling;

  bool full = false;
  unsigned pmax = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0)
      full = true;
    else if (std::strcmp(argv[i], "--pmax") == 0 && i + 1 < argc)
      pmax = static_cast<unsigned>(std::atoi(argv[++i]));
    else if (std::strcmp(argv[i], "--trace-points") == 0)
      // Keep-last trace ring per sweep point: each point dumps its own
      // Perfetto timeline (trace_point_<kernel>_<axes>_pP.json), so a
      // regressed curve point ships the timeline of that exact execution.
      sc::trace_points_prefix() = "trace_point_";
  }

  sc::axes ax;
  if (full) {
    ax.steal = {true, false};
    ax.grains = {0, 256};
    ax.p_list = {1, 2, 4, 8};
  }
  if (pmax != 0) {
    ax.p_list.clear();
    for (unsigned p = 1; p <= pmax; p *= 2)
      ax.p_list.push_back(p);
  }

  std::size_t const s = bench::scale();
  std::vector<sc::kernel_def> const kernels{
      {"for_each", 200'000 * s, k_for_each},
      {"map_reduce", 200'000 * s, k_map_reduce},
      {"partial_sum", 100'000 * s, k_partial_sum},
      {"sample_sort", 50'000 * s, k_sample_sort},
      {"graph_stream", 1'500 * s, k_graph_stream},
      {"assoc_mixed", 20'000 * s, k_assoc_mixed},
  };

  std::printf("# Scaling sweep: %zu kernels, %s axes\n", kernels.size(),
              full ? "full" : "lite");
  auto const results = sc::run_sweep(kernels, ax);
  sc::print_tables(results);
  bench::set_extra_json("sweeps", sc::to_json(results));
  return 0;
}
