// Fig. 28: pArray *local* method invocations for various container sizes.
// Each location performs N/P invocations on elements it owns (the Fig. 24
// kernel).  Expected shape: per-op cost is flat in container size and in P
// (closed-form address resolution, no communication).

#include "bench_common.hpp"
#include "containers/p_array.hpp"

#include <atomic>

int main(int argc, char** argv)
{
  bench::init(argc, argv);
  using namespace stapl;
  std::printf("# Fig. 28 — pArray local methods, Mops/s per location\n");
  bench::table_header(
      "local methods",
      {"size", "set_element", "get_element", "operator[]", "apply_set"});

  unsigned const p = 4;
  for (std::size_t n : {40'000u, 160'000u, 640'000u}) {
    std::size_t const total = n * bench::scale();
    std::atomic<double> tset{0}, tget{0}, tidx{0}, tapply{0};
    execute(p, [&] {
      p_array<long> pa(total);
      auto const locals = pa.local_gids();
      std::size_t const ops = locals.size();

      double t = bench::timed_kernel([&] {
        for (auto g : locals)
          pa.set_element(g, static_cast<long>(g));
      });
      if (this_location() == 0)
        tset.store(bench::mops(ops, t));

      t = bench::timed_kernel([&] {
        long sink = 0;
        for (auto g : locals)
          sink += pa.get_element(g);
        if (sink == -1)
          std::abort();
      });
      if (this_location() == 0)
        tget.store(bench::mops(ops, t));

      t = bench::timed_kernel([&] {
        long sink = 0;
        for (auto g : locals)
          sink += pa[g];
        if (sink == -1)
          std::abort();
      });
      if (this_location() == 0)
        tidx.store(bench::mops(ops, t));

      t = bench::timed_kernel([&] {
        for (auto g : locals)
          pa.apply_set(g, [](long& x) { ++x; });
      });
      if (this_location() == 0)
        tapply.store(bench::mops(ops, t));
    });
    bench::cell(total);
    bench::cell(tset.load());
    bench::cell(tget.load());
    bench::cell(tidx.load());
    bench::cell(tapply.load());
    bench::endrow();
  }
  return 0;
}
