// Collectives benchmark (runtime/collectives.hpp):
//
//   1. latency vs P for each primitive (broadcast, reduce, allreduce,
//      allgather), flat value-exchange vs tree engine, P=2..64.  The flat
//      protocol pays two full barriers and O(P) reads per participant per
//      call; the trees pay ceil(log2 P) point-to-point hops — the table's
//      `speedup` column (flat/tree) shows where the crossover lands on
//      oversubscribed thread-backed locations.
//   2. tree/flat crossover summary — smallest measured P at which the tree
//      beats the flat exchange per primitive.
//   3. sender-side aggregation on the steal-heavy Zipf workload at P=8:
//      the same imbalanced chunk graph run with aggregation disabled
//      (aggregation=1) vs the default batching (16 RMIs or
//      agg_max_bytes per message), comparing wall time, messages sent,
//      and the coll.agg_* batching counters.
//
// Run with --json to also write BENCH_collectives.json.
// --pmax N caps the swept location counts (default 64).

#include "bench_common.hpp"
#include "runtime/collectives.hpp"
#include "runtime/task_graph.hpp"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

using namespace stapl;

namespace {

std::vector<unsigned> swept_ps(unsigned pmax)
{
  std::vector<unsigned> ps;
  for (unsigned p : {2u, 3u, 4u, 8u, 16u, 32u, 64u})
    if (p <= pmax)
      ps.push_back(p);
  return ps;
}

[[nodiscard]] std::size_t iters_for(unsigned p)
{
  std::size_t const s = bench::scale();
  if (p <= 8)
    return 60 * s;
  if (p <= 16)
    return 30 * s;
  if (p <= 32)
    return 15 * s;
  return 8 * s;
}

/// Seconds per call (max over locations) of `iters` back-to-back runs of
/// one collective primitive under the currently pinned mode.
template <typename Body>
double time_collective(unsigned p, std::size_t iters, Body body)
{
  std::atomic<double> out{0.0};
  execute(p, [&] {
    double const sec = bench::timed_kernel([&] {
      for (std::size_t i = 0; i < iters; ++i)
        body(i);
    });
    if (this_location() == 0)
      out.store(sec / static_cast<double>(iters));
  });
  return out.load();
}

struct primitive {
  char const* name;
  double (*run)(unsigned p, std::size_t iters);
};

double run_broadcast(unsigned p, std::size_t iters)
{
  return time_collective(p, iters, [p](std::size_t i) {
    (void)broadcast(static_cast<location_id>(i % p),
                    static_cast<long>(this_location() + i));
  });
}

double run_reduce(unsigned p, std::size_t iters)
{
  return time_collective(p, iters, [p](std::size_t i) {
    (void)reduce(static_cast<location_id>(i % p),
                 static_cast<long>(this_location() + i), std::plus<>{});
  });
}

double run_allreduce(unsigned p, std::size_t iters)
{
  return time_collective(p, iters, [](std::size_t i) {
    (void)allreduce(static_cast<long>(this_location() + i), std::plus<>{});
  });
}

double run_allgather(unsigned p, std::size_t iters)
{
  return time_collective(p, iters, [](std::size_t i) {
    (void)allgather(static_cast<long>(this_location() + i));
  });
}

primitive const primitives[] = {
    {"broadcast", run_broadcast},
    {"reduce", run_reduce},
    {"allreduce", run_allreduce},
    {"allgather", run_allgather},
};

/// Work units of `chunks` Zipf(s=1)-sized chunks totalling ~`total` (the
/// bench_taskgraph adversarial placement: the whole head on location 0).
std::vector<std::size_t> zipf_sizes(std::size_t chunks, std::size_t total)
{
  double h = 0.0;
  for (std::size_t r = 0; r < chunks; ++r)
    h += 1.0 / static_cast<double>(r + 1);
  std::vector<std::size_t> sizes(chunks);
  for (std::size_t r = 0; r < chunks; ++r)
    sizes[r] = static_cast<std::size_t>(static_cast<double>(total) / h /
                                        static_cast<double>(r + 1)) +
               1;
  return sizes;
}

struct agg_result {
  double seconds = 0.0;
  std::uint64_t msgs = 0;
  std::uint64_t batches = 0;
  std::uint64_t batch_bytes = 0;
  std::uint64_t stolen = 0;
};

/// Per-location accumulator for the scattered per-unit results.
class result_sink : public p_object {
 public:
  void note(long v) noexcept
  {
    m_hits.fetch_add(1, std::memory_order_relaxed);
    m_sum.fetch_add(v, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t hits() const noexcept
  {
    return m_hits.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> m_hits{0};
  std::atomic<long> m_sum{0};
};

/// The steal-heavy Zipf chunk graph at P=8 under a given aggregation
/// setting.  Each chunk finishes by scattering one small per-unit result
/// RMI to the unit's home location (u mod P) — the fine-grained
/// element-update pattern sender-side aggregation exists for.  The burst
/// is emitted without polling, so with batching on, the per-destination
/// buffers coalesce it into ~units/P-sized messages; with aggregation=1
/// every update is its own message.  Exactly-once is asserted: the
/// global hit count must equal the total unit count either way.
agg_result run_zipf_steal(unsigned aggregation)
{
  std::chrono::microseconds const unit{100};
  std::size_t const chunks = 24;
  std::size_t const total_units = 240 * bench::scale();

  runtime_config cfg;
  cfg.num_locations = 8;
  cfg.transport = transport_kind::queue;
  cfg.aggregation = aggregation;

  agg_result res;
  std::atomic<double> sec{0.0};
  std::atomic<std::uint64_t> msgs{0}, batches{0}, bytes{0}, stolen{0};
  execute(cfg, [&] {
    auto const sizes = zipf_sizes(chunks, total_units);
    std::size_t expected_hits = 0;
    for (std::size_t r = 0; r < chunks; ++r)
      expected_hits += sizes[r];
    std::vector<location_id> owner(chunks);
    std::size_t const per = chunks / num_locations();
    for (std::size_t r = 0; r < chunks; ++r)
      owner[r] = static_cast<location_id>(
          std::min<std::size_t>(r / per, num_locations() - 1));

    result_sink sink;
    auto const sink_handle = sink.get_handle();
    unsigned const p = static_cast<unsigned>(num_locations());

    task_graph<char> tg;
    tg.set_stealing(true);
    for (std::size_t r = 0; r < chunks; ++r) {
      task_options stealable;
      stealable.stealable = true;
      stealable.weight = sizes[r];
      std::size_t const units = sizes[r];
      tg.add_task(
          owner[r],
          [units, unit, sink_handle, p, r](std::vector<char> const&,
                                           char const&) {
            for (std::size_t u = 0; u < units; ++u) {
              std::this_thread::sleep_for(unit);
              rmi_poll();
            }
            // Scatter per-unit results to each unit's home, no polls in
            // between: the burst aggregation batches (or doesn't).
            for (std::size_t u = 0; u < units; ++u)
              async_rmi<result_sink>(
                  static_cast<location_id>(u % p), sink_handle,
                  &result_sink::note, static_cast<long>(r * 1000 + u));
            return char{};
          },
          {}, stealable);
    }
    double const s = bench::timed_kernel([&] { tg.execute(); });
    auto const delivered =
        allreduce(sink.hits(), std::plus<std::uint64_t>{});
    if (delivered != expected_hits) {
      std::fprintf(stderr,
                   "FATAL: aggregation lost updates: %llu delivered, "
                   "%zu expected (aggregation=%u)\n",
                   static_cast<unsigned long long>(delivered),
                   expected_hits, aggregation);
      std::abort();
    }
    auto const& st = my_stats();
    auto const m = allreduce(st.msgs_sent, std::plus<std::uint64_t>{});
    auto const b = allreduce(st.agg_batches, std::plus<std::uint64_t>{});
    auto const bb =
        allreduce(st.agg_batch_bytes, std::plus<std::uint64_t>{});
    auto const tstolen = tg.global_stats().tasks_stolen;
    if (this_location() == 0) {
      sec.store(s);
      msgs.store(m);
      batches.store(b);
      bytes.store(bb);
      stolen.store(tstolen);
    }
    rmi_fence(); // sink destruction is collective
  });
  res.seconds = sec.load();
  res.msgs = msgs.load();
  res.batches = batches.load();
  res.batch_bytes = bytes.load();
  res.stolen = stolen.load();
  return res;
}

} // namespace

int main(int argc, char** argv)
{
  bench::init(argc, argv);
  unsigned pmax = 64;
  for (int i = 1; i < argc; ++i)
    if (std::string_view(argv[i]) == "--pmax" && i + 1 < argc)
      pmax = static_cast<unsigned>(std::atoi(argv[++i]));

  std::printf("# Collectives — tree vs flat latency, sender-side "
              "aggregation (pmax=%u)\n", pmax);

  auto const ps = swept_ps(pmax);
  std::size_t const nprims = sizeof(primitives) / sizeof(primitives[0]);
  // crossover[i]: smallest swept P where the tree beat the flat exchange.
  std::vector<unsigned> crossover(nprims, 0);

  // Row key "<primitive>/p<P>" is unique, so bench_diff.py's row-matched
  // differ tracks every point; its collectives-aware curve renderer parses
  // the same key back into per-primitive latency-vs-P curves.
  bench::table_header("collective latency vs P (flat vs tree)",
                      {"point", "locations", "flat_us", "tree_us",
                       "speedup"});
  for (std::size_t i = 0; i < nprims; ++i) {
    for (unsigned p : ps) {
      std::size_t const iters = iters_for(p);
      coll::set_mode(coll::mode::flat);
      double const flat_s = primitives[i].run(p, iters);
      coll::set_mode(coll::mode::tree);
      double const tree_s = primitives[i].run(p, iters);
      coll::set_mode(coll::mode::auto_select);
      bench::cell(std::string(primitives[i].name) + "/p" +
                  std::to_string(p));
      bench::cell(static_cast<std::size_t>(p));
      bench::cell(flat_s * 1e6);
      bench::cell(tree_s * 1e6);
      bench::cell(tree_s > 0 ? flat_s / tree_s : 0.0);
      bench::endrow();
      if (crossover[i] == 0 && tree_s < flat_s)
        crossover[i] = p;
    }
  }

  bench::table_header("tree/flat crossover (smallest P where tree wins)",
                      {"primitive", "crossover_p"});
  for (std::size_t i = 0; i < nprims; ++i) {
    bench::cell(std::string(primitives[i].name));
    bench::cell(static_cast<std::size_t>(crossover[i]));
    bench::endrow();
  }

  // Aggregation win on the steal-heavy Zipf workload at P=8.  agg=1
  // disables coalescing (every RMI is its own message); the default
  // batches up to 16 RMIs (or agg_max_bytes) per destination per flush.
  bench::table_header("sender-side aggregation (Zipf steal workload, P=8)",
                      {"aggregation", "seconds", "msgs_sent", "agg_batches",
                       "agg_bytes", "stolen"});
  for (unsigned agg : {1u, 16u}) {
    auto const r = run_zipf_steal(agg);
    bench::cell(static_cast<std::size_t>(agg));
    bench::cell(r.seconds);
    bench::cell(static_cast<std::size_t>(r.msgs));
    bench::cell(static_cast<std::size_t>(r.batches));
    bench::cell(static_cast<std::size_t>(r.batch_bytes));
    bench::cell(static_cast<std::size_t>(r.stolen));
    bench::endrow();
  }
  return 0;
}
