// Google-benchmark micro-benchmarks of the primitive costs every figure is
// built from: local vs remote element methods, RMI layer primitives, fence
// cost, and serialization throughput.  Complements the paper-figure tables
// with statistically-sound per-op numbers.

#include <benchmark/benchmark.h>

#include "containers/p_array.hpp"
#include "runtime/serialization.hpp"
#include "runtime/timer.hpp"

#include <atomic>

namespace {

using namespace stapl;

// Runs `ops` operations inside a 4-location SPMD region and reports
// per-operation time (the SPMD launch overhead is subtracted by measuring
// inside the region and maximizing over locations).
template <typename Kernel>
double spmd_seconds(std::size_t ops, Kernel kernel)
{
  std::atomic<double> out{0};
  execute(4, [&] {
    p_array<long> pa(4'000);
    rmi_fence();
    auto tm = start_timer();
    kernel(pa, ops);
    rmi_fence();
    double const t = stop_timer(tm);
    double const worst =
        allreduce(t, [](double a, double b) { return a < b ? b : a; });
    if (this_location() == 0)
      out.store(worst);
  });
  return out.load();
}

void BM_LocalSetElement(benchmark::State& state)
{
  std::size_t const ops = 50'000;
  for (auto _ : state) {
    double const secs = spmd_seconds(ops, [](p_array<long>& pa,
                                             std::size_t n) {
      gid1d const base = 1'000 * this_location();
      for (std::size_t i = 0; i < n; ++i)
        pa.set_element(base + i % 1'000, 1);
    });
    state.SetIterationTime(secs / static_cast<double>(ops));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ops) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LocalSetElement)->UseManualTime()->Iterations(3);

void BM_RemoteAsyncSetElement(benchmark::State& state)
{
  std::size_t const ops = 50'000;
  for (auto _ : state) {
    double const secs = spmd_seconds(ops, [](p_array<long>& pa,
                                             std::size_t n) {
      gid1d const base = 1'000 * ((this_location() + 1) % num_locations());
      for (std::size_t i = 0; i < n; ++i)
        pa.set_element(base + i % 1'000, 1);
    });
    state.SetIterationTime(secs / static_cast<double>(ops));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ops) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RemoteAsyncSetElement)->UseManualTime()->Iterations(3);

void BM_RemoteSyncGetElement(benchmark::State& state)
{
  std::size_t const ops = 2'000;
  for (auto _ : state) {
    double const secs = spmd_seconds(ops, [](p_array<long>& pa,
                                             std::size_t n) {
      gid1d const base = 1'000 * ((this_location() + 1) % num_locations());
      long sink = 0;
      for (std::size_t i = 0; i < n; ++i)
        sink += pa.get_element(base + i % 1'000);
      benchmark::DoNotOptimize(sink);
    });
    state.SetIterationTime(secs / static_cast<double>(ops));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ops) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RemoteSyncGetElement)->UseManualTime()->Iterations(3);

void BM_RmiFence(benchmark::State& state)
{
  std::size_t const ops = 500;
  for (auto _ : state) {
    double const secs =
        spmd_seconds(ops, [](p_array<long>&, std::size_t n) {
          for (std::size_t i = 0; i < n; ++i)
            rmi_fence();
        });
    state.SetIterationTime(secs / static_cast<double>(ops));
  }
}
BENCHMARK(BM_RmiFence)->UseManualTime()->Iterations(3);

void BM_SerializationPackUnpack(benchmark::State& state)
{
  std::vector<std::pair<std::size_t, double>> payload(
      static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = {i, i * 0.5};
  for (auto _ : state) {
    auto bytes = pack(payload);
    auto copy = unpack<std::vector<std::pair<std::size_t, double>>>(bytes);
    benchmark::DoNotOptimize(copy);
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(payload.size() * sizeof(payload[0])));
}
BENCHMARK(BM_SerializationPackUnpack)->Arg(1'000)->Arg(100'000);

} // namespace

BENCHMARK_MAIN();
