// Directory subsystem benchmark (no dissertation figure — new subsystem):
//   1. GID resolution latency: cold home-location lookup (synchronous round
//      trip) vs the per-location owner cache.  The cached path must be at
//      least 5x faster than a cold lookup for the cache to pay for its
//      invalidation traffic.
//   2. Element-method throughput through the directory: before migration
//      (closed-form placement), first touch after migration (stale routes:
//      forwarding-hint chases), and steady state after caches re-warm.
//
// Run with --json to also write BENCH_directory.json.

#include "bench_common.hpp"
#include "containers/p_array.hpp"
#include "core/migration.hpp"

#include <atomic>
#include <vector>

using namespace stapl;

namespace {

/// Cold vs cached resolve on location 0 while the other locations serve
/// lookups from inside the trailing fence.
void resolution_latency(unsigned p)
{
  std::atomic<double> cold_us{0}, cached_us{0};
  execute(p, [&] {
    std::size_t const n = 1024 * num_locations();
    p_array<long> pa(n, 0);
    pa.make_dynamic();
    auto& dir = pa.get_directory();

    if (this_location() == 0) {
      // Targets neither owned nor homed here: every cold resolve is a full
      // synchronous round trip to a remote home.
      std::vector<std::size_t> targets;
      for (std::size_t g = 0; g < n && targets.size() < 256; ++g)
        if (!dir.owns(g) && dir.home_of(g) != this_location())
          targets.push_back(g);

      std::size_t const rounds = 20 * bench::scale();
      auto tm = start_timer();
      for (std::size_t r = 0; r < rounds; ++r) {
        dir.clear_cache();
        for (auto g : targets)
          (void)dir.resolve(g);
      }
      double const cold = stop_timer(tm);
      cold_us.store(cold / static_cast<double>(rounds * targets.size()) * 1e6);

      // Same GIDs, warm cache (last round left every entry cached).
      std::size_t const reps = 200 * bench::scale();
      long sink = 0;
      tm = start_timer();
      for (std::size_t r = 0; r < reps; ++r)
        for (auto g : targets)
          sink += static_cast<long>(dir.resolve(g));
      double const cached = stop_timer(tm);
      if (sink < 0)
        std::abort();
      cached_us.store(cached / static_cast<double>(reps * targets.size()) *
                      1e6);
    }
    rmi_fence(); // peers poll here, serving location 0's lookups
  });
  bench::cell(static_cast<std::size_t>(p));
  bench::cell(cold_us.load());
  bench::cell(cached_us.load());
  bench::cell(cached_us.load() > 0 ? cold_us.load() / cached_us.load() : 0.0);
  bench::endrow();
}

/// get_element throughput from location 0 against a remote slice, before
/// and after that slice migrates to a different location.
void migration_throughput(unsigned p)
{
  std::atomic<double> before{0}, first_touch{0}, warm{0};
  execute(p, [&] {
    std::size_t const block = 512 * bench::scale();
    std::size_t const n = block * num_locations();
    p_array<long> pa(n, 1);
    pa.make_dynamic();

    // The victim slice: location 1's closed-form elements.
    std::vector<std::size_t> targets;
    for (std::size_t g = block; g < 2 * block && num_locations() > 1; ++g)
      targets.push_back(g);

    auto read_all = [&] {
      long sink = 0;
      for (auto g : targets)
        sink += pa.get_element(g);
      if (sink < 0)
        std::abort();
    };

    double t = bench::timed_kernel([&] {
      if (this_location() == 0)
        read_all();
    });
    if (this_location() == 0)
      before.store(bench::mops(targets.size(), t));

    // Move the slice to the last location; location 0's cache entries (and
    // the home records) go stale and must be chased/invalidated.
    if (this_location() == 1)
      for (auto g : targets)
        pa.migrate(g, num_locations() - 1);
    rmi_fence();

    t = bench::timed_kernel([&] {
      if (this_location() == 0)
        read_all(); // first touch: stale routes, hint chases
    });
    if (this_location() == 0)
      first_touch.store(bench::mops(targets.size(), t));

    t = bench::timed_kernel([&] {
      if (this_location() == 0)
        read_all(); // steady state: re-warmed caches
    });
    if (this_location() == 0)
      warm.store(bench::mops(targets.size(), t));
  });
  bench::cell(static_cast<std::size_t>(p));
  bench::cell(before.load());
  bench::cell(first_touch.load());
  bench::cell(warm.load());
  bench::endrow();
}

} // namespace

int main(int argc, char** argv)
{
  bench::init(argc, argv, "directory");
  std::printf("# Directory subsystem: resolution latency and "
              "post-migration throughput\n");

  bench::table_header("GID resolution latency (location 0)",
                      {"locations", "cold_us", "cached_us", "speedup"});
  for (unsigned p : {2u, 4u, 8u})
    resolution_latency(p);

  bench::table_header(
      "remote get_element Mops (location 0, migrated slice)",
      {"locations", "before_migr", "first_touch", "warm_cache"});
  for (unsigned p : {2u, 4u, 8u})
    migration_throughput(p);

  return 0;
}
