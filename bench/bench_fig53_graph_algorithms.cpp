// Figs. 53/54/55: execution times for different pGraph algorithms — BFS,
// connected components, find_sources and max out-degree — on mesh and
// SSCA2 inputs, weak scaling.  Expected shape: near-flat per-location cost
// for the full-scan statistic; BFS/CC grow with graph diameter and
// cross-location edges.

#include "algorithms/graph_algorithms.hpp"
#include "bench_common.hpp"
#include "containers/graph_generators.hpp"

#include <atomic>

int main(int argc, char** argv)
{
  bench::init(argc, argv);
  using namespace stapl;
  std::printf("# Figs. 53/54/55 — pGraph algorithms\n");
  bench::table_header("mesh + ssca2 (seconds)",
                      {"locations", "bfs_mesh", "cc_mesh", "sources_dag",
                       "maxdeg_ssca2"});

  std::size_t const per_loc = 1'000 * bench::scale();
  for (unsigned p : bench::default_locations) {
    std::atomic<double> tb{0}, tc{0}, ts{0}, td{0};
    execute(p, [&] {
      std::size_t const n = per_loc * num_locations();
      std::size_t const cols = 50;
      std::size_t const rows = n / cols;

      {
        p_graph<DIRECTED, NONMULTI, bfs_property, no_property> mesh(rows *
                                                                    cols);
        generate_mesh(mesh, rows, cols);
        double const t = bench::timed_kernel([&] {
          if (bfs_levels(mesh, 0) == 0)
            std::abort();
        });
        if (this_location() == 0)
          tb.store(t);
      }
      {
        p_graph<UNDIRECTED, NONMULTI, cc_property, no_property> mesh(rows *
                                                                     cols);
        generate_mesh(mesh, rows, cols);
        double const t = bench::timed_kernel([&] {
          if (connected_components(mesh) != 1)
            std::abort();
        });
        if (this_location() == 0)
          tc.store(t);
      }
      {
        p_graph<DIRECTED, MULTI, indegree_property, no_property> dag(n);
        generate_dag(dag, n / 100, 100, 2);
        double const t = bench::timed_kernel([&] {
          auto const s = find_sources(dag);
          (void)s;
        });
        if (this_location() == 0)
          ts.store(t);
      }
      {
        p_graph<DIRECTED, NONMULTI, int, no_property> ssca(n);
        generate_ssca2(ssca, n, 8, 0.2);
        double const t = bench::timed_kernel([&] {
          if (max_out_degree(ssca) == 0)
            std::abort();
        });
        if (this_location() == 0)
          td.store(t);
      }
    });
    bench::cell(static_cast<std::size_t>(p));
    bench::cell(tb.load());
    bench::cell(tc.load());
    bench::cell(ts.load());
    bench::cell(td.load());
    bench::endrow();
  }
  return 0;
}
