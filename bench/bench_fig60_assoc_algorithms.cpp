// Fig. 60: scalability of generic algorithms over associative pContainers
// (p_for_each / p_accumulate / p_count_if on pMap and pHashMap views).
// Expected shape: flat weak scaling; the sorted map pays a log-factor over
// the hash map on local traversal.

#include "algorithms/p_algorithms.hpp"
#include "bench_common.hpp"
#include "containers/p_associative.hpp"

#include <atomic>

int main(int argc, char** argv)
{
  bench::init(argc, argv);
  using namespace stapl;
  std::printf("# Fig. 60 — generic algorithms on associative containers\n");
  bench::table_header("per-loc 20k keys (seconds)",
                      {"locations", "hmap_foreach", "hmap_accum",
                       "map_foreach", "map_accum"});

  std::size_t const per_loc = 20'000 * bench::scale();
  for (unsigned p : bench::default_locations) {
    std::atomic<double> thf{0}, tha{0}, tmf{0}, tma{0};
    execute(p, [&] {
      std::size_t const n = per_loc * num_locations();
      p_hash_map<long, long> hm;
      p_map<long, long> sm;
      // Bulk load: each location inserts a strided share (mostly remote,
      // aggregated).
      for (std::size_t k = this_location(); k < n; k += num_locations()) {
        hm.insert_async(static_cast<long>(k), 1);
        sm.insert_async(static_cast<long>(k), 1);
      }
      rmi_fence();

      map_view hv(hm);
      map_view sv(sm);

      double t = bench::timed_kernel([&] {
        p_for_each(hv, [](long& v) { v += 1; });
      });
      if (this_location() == 0)
        thf.store(t);
      t = bench::timed_kernel([&] {
        if (p_accumulate(hv, 0L) < 0)
          std::abort();
      });
      if (this_location() == 0)
        tha.store(t);
      t = bench::timed_kernel([&] {
        p_for_each(sv, [](long& v) { v += 1; });
      });
      if (this_location() == 0)
        tmf.store(t);
      t = bench::timed_kernel([&] {
        if (p_accumulate(sv, 0L) < 0)
          std::abort();
      });
      if (this_location() == 0)
        tma.store(t);
    });
    bench::cell(static_cast<std::size_t>(p));
    bench::cell(thf.load());
    bench::cell(tha.load());
    bench::cell(tmf.load());
    bench::cell(tma.load());
    bench::endrow();
  }
  return 0;
}
