// Fig. 44: execution times for the Euler tour technique and its
// applications (rooting, vertex levels, postorder numbering) on binary
// trees of two sizes (paper: 500k / 1M subtrees per processor; scaled
// here).  Expected shape: the applications add only prefix-sum and scatter
// time on top of tour construction + list ranking.

#include "algorithms/euler_tour.hpp"
#include "bench_common.hpp"

#include <atomic>

int main(int argc, char** argv)
{
  bench::init(argc, argv);
  using namespace stapl;
  std::printf("# Fig. 44 — Euler tour applications\n");
  bench::table_header("full pipeline (seconds)",
                      {"locations", "n_small", "t_small", "n_large",
                       "t_large"});

  for (unsigned p : bench::default_locations) {
    std::size_t const n_small = 4'000 * p * bench::scale();
    std::size_t const n_large = 8'000 * p * bench::scale();
    std::atomic<double> ts{0}, tl{0};
    execute(p, [&] {
      {
        euler_tour_results r(n_small);
        double const t = bench::timed_kernel(
            [&] { euler_tour_applications(n_small, r); });
        if (this_location() == 0)
          ts.store(t);
      }
      {
        euler_tour_results r(n_large);
        double const t = bench::timed_kernel(
            [&] { euler_tour_applications(n_large, r); });
        if (this_location() == 0)
          tl.store(t);
      }
    });
    bench::cell(static_cast<std::size_t>(p));
    bench::cell(n_small);
    bench::cell(ts.load());
    bench::cell(n_large);
    bench::cell(tl.load());
    bench::endrow();
  }
  return 0;
}
