#ifndef STAPL_BENCH_COMMON_HPP
#define STAPL_BENCH_COMMON_HPP

// Common harness for the figure-reproduction benchmarks.
//
// Each bench binary regenerates one table/figure of the dissertation's
// evaluation (Ch. VIII-XIII): same rows/series as the paper, measured on
// thread-backed locations (see EXPERIMENTS.md for the substitution notes).
// The measurement kernel is the Fig. 24 kernel: concurrently perform N/P
// method invocations per location, fence, report the maximum time across
// locations.
//
// STAPL_BENCH_SCALE (env var, default 1) scales workload sizes.

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "runtime/runtime.hpp"
#include "runtime/timer.hpp"

namespace bench {

[[nodiscard]] inline std::size_t scale()
{
  if (char const* s = std::getenv("STAPL_BENCH_SCALE"))
    return std::max(1L, std::atol(s));
  return 1;
}

/// Runs the Fig. 24 kernel body on every location and returns the maximum
/// elapsed seconds over locations.  Call from inside stapl::execute.
template <typename Body>
[[nodiscard]] double timed_kernel(Body&& body)
{
  stapl::rmi_fence();
  auto tm = stapl::start_timer();
  body();
  stapl::rmi_fence();
  double const elapsed = stapl::stop_timer(tm);
  return stapl::allreduce(elapsed,
                          [](double a, double b) { return a < b ? b : a; });
}

/// Prints one table header: name + column captions.
inline void table_header(std::string const& title,
                         std::vector<std::string> const& columns)
{
  std::printf("\n== %s ==\n", title.c_str());
  for (auto const& c : columns)
    std::printf("%16s", c.c_str());
  std::printf("\n");
}

inline void cell(double v) { std::printf("%16.6f", v); }
inline void cell(std::size_t v) { std::printf("%16zu", v); }
inline void cell(long v) { std::printf("%16ld", v); }
inline void cell(std::string const& v) { std::printf("%16s", v.c_str()); }
inline void endrow() { std::printf("\n"); }

/// Throughput in million operations per second.
[[nodiscard]] inline double mops(std::size_t ops, double seconds)
{
  return seconds > 0 ? static_cast<double>(ops) / seconds / 1e6 : 0.0;
}

inline std::vector<unsigned> const default_locations{1, 2, 4, 8};

} // namespace bench

#endif
