#ifndef STAPL_BENCH_COMMON_HPP
#define STAPL_BENCH_COMMON_HPP

// Common harness for the figure-reproduction benchmarks.
//
// Each bench binary regenerates one table/figure of the dissertation's
// evaluation (Ch. VIII-XIII): same rows/series as the paper, measured on
// thread-backed locations (see EXPERIMENTS.md for the substitution notes).
// The measurement kernel is the Fig. 24 kernel: concurrently perform N/P
// method invocations per location, fence, report the maximum time across
// locations.
//
// STAPL_BENCH_SCALE (env var, default 1) scales workload sizes.
//
// Machine-readable output: a bench that calls bench::init(argc, argv)
// honours a `--json` flag; every table printed through
// table_header/cell/endrow is then mirrored into BENCH_<name>.json in the
// working directory, so successive PRs can track the performance
// trajectory without scraping stdout.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "runtime/runtime.hpp"
#include "runtime/timer.hpp"

namespace bench {

[[nodiscard]] inline std::size_t scale()
{
  if (char const* s = std::getenv("STAPL_BENCH_SCALE"))
    return std::max(1L, std::atol(s));
  return 1;
}

// ---------------------------------------------------------------------------
// JSON mirroring (--json)
// ---------------------------------------------------------------------------

namespace detail {

struct json_state {
  bool enabled = false;
  std::string name;
  std::string title;                           ///< current table
  std::vector<std::string> columns;            ///< current table columns
  std::vector<std::vector<std::string>> rows;  ///< values as JSON literals
  std::vector<std::string> row;                ///< row under construction
  std::string tables;                          ///< serialized finished tables
  std::vector<std::pair<std::string, std::string>>
      extra;                                   ///< extra top-level sections
};

[[nodiscard]] inline json_state& jstate()
{
  static json_state s;
  return s;
}

inline void json_append(std::string v)
{
  auto& j = jstate();
  if (j.enabled)
    j.row.push_back(std::move(v));
}

[[nodiscard]] inline std::string json_quote(std::string const& s)
{
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\')
      out += '\\';
    out += c;
  }
  return out + "\"";
}

/// Serializes the current table (if any) onto j.tables.
inline void json_flush_table()
{
  auto& j = jstate();
  if (!j.enabled || j.title.empty())
    return;
  std::string t = "    {\n      \"title\": " + json_quote(j.title) +
                  ",\n      \"columns\": [";
  for (std::size_t i = 0; i < j.columns.size(); ++i)
    t += (i ? ", " : "") + json_quote(j.columns[i]);
  t += "],\n      \"rows\": [";
  for (std::size_t r = 0; r < j.rows.size(); ++r) {
    t += (r ? ", " : "") + std::string("[");
    for (std::size_t c = 0; c < j.rows[r].size(); ++c)
      t += (c ? ", " : "") + j.rows[r][c];
    t += "]";
  }
  t += "]\n    }";
  if (!j.tables.empty())
    j.tables += ",\n";
  j.tables += t;
  j.title.clear();
  j.columns.clear();
  j.rows.clear();
  j.row.clear();
}

/// Serializes the process-wide metrics accumulator (every counter family
/// the runtime folded at the end of each execute()) as one JSON object, so
/// comm volume and steal behaviour are regression-tracked next to the
/// timing tables.
[[nodiscard]] inline std::string json_metrics()
{
  std::string out = "{";
  bool first = true;
  for (auto const& [k, v] : stapl::metrics::process_totals()) {
    if (!first)
      out += ", ";
    first = false;
    out += json_quote(k) + ": " + std::to_string(v);
  }
  return out + "}";
}

/// Serializes the process-wide latency accumulator: one object per op
/// family that recorded samples, with count/sum and the tail quantiles.
/// Empty ({}) unless the bench enabled latency recording (--latency /
/// STAPL_LATENCY=1) or fed histograms directly.
[[nodiscard]] inline std::string json_latency()
{
  std::string out = "{";
  bool first = true;
  for (std::size_t i = 0; i != stapl::latency::op_count; ++i) {
    auto const o = static_cast<stapl::latency::op>(i);
    auto const h = stapl::latency::process_histogram(o);
    if (h.empty())
      continue;
    if (!first)
      out += ", ";
    first = false;
    out += json_quote(stapl::latency::name_of(o)) +
           ": {\"count\": " + std::to_string(h.count) +
           ", \"sum_ns\": " + std::to_string(h.sum_ns) +
           ", \"p50_ns\": " + std::to_string(h.p50()) +
           ", \"p90_ns\": " + std::to_string(h.p90()) +
           ", \"p99_ns\": " + std::to_string(h.p99()) +
           ", \"p999_ns\": " + std::to_string(h.p999()) +
           ", \"max_ns\": " + std::to_string(h.max()) + "}";
  }
  return out + "}";
}

inline void json_write_file()
{
  auto& j = jstate();
  if (!j.enabled)
    return;
  json_flush_table();
  std::string const path = "BENCH_" + j.name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return;
  }
  std::string extra;
  for (auto const& [k, v] : j.extra)
    extra += ",\n  " + json_quote(k) + ": " + v;
  std::fprintf(f,
               "{\n  \"bench\": %s,\n  \"scale\": %zu,\n  \"tables\": [\n%s\n"
               "  ],\n  \"metrics\": %s,\n  \"latency\": %s%s\n}\n",
               json_quote(j.name).c_str(), scale(), j.tables.c_str(),
               json_metrics().c_str(), json_latency().c_str(), extra.c_str());
  std::fclose(f);
  std::printf("# wrote %s\n", path.c_str());
}

} // namespace detail

/// Attaches an extra top-level section to the `--json` output file: `value`
/// must already be serialized JSON (object/array/literal).  Lets a bench
/// emit structured data beyond the row/column tables — e.g. the scaling
/// harness's "sweeps" array.  Replaces any previous value for `key`;
/// a no-op without --json.
inline void set_extra_json(std::string const& key, std::string value)
{
  auto& j = detail::jstate();
  if (!j.enabled)
    return;
  for (auto& [k, v] : j.extra)
    if (k == key) {
      v = std::move(value);
      return;
    }
  j.extra.emplace_back(key, std::move(value));
}

/// Parses bench CLI flags (`--json`, `--latency`).  `name` defaults to the
/// binary's basename with a leading "bench_" stripped.  The JSON file is
/// written at normal process exit.  Latency recording stays opt-in
/// (`--latency` or STAPL_LATENCY=1) so the figure benches' timings are not
/// perturbed by clock reads on their fast paths; when on, per-family tail
/// quantiles land in the "latency" JSON section.
inline void init(int argc, char** argv, std::string name = {})
{
  auto& j = detail::jstate();
  if (name.empty() && argc > 0) {
    name = argv[0];
    if (auto const pos = name.find_last_of('/'); pos != std::string::npos)
      name = name.substr(pos + 1);
    if (name.rfind("bench_", 0) == 0)
      name = name.substr(6);
  }
  j.name = std::move(name);
  for (int i = 1; i < argc; ++i) {
    std::string const arg = argv[i];
    if (arg == "--json")
      j.enabled = true;
    else if (arg == "--latency")
      stapl::latency::enable();
  }
  if (char const* e = std::getenv("STAPL_LATENCY"); e && *e && *e != '0')
    stapl::latency::enable();
  if (j.enabled)
    std::atexit(detail::json_write_file);
}

/// Runs the Fig. 24 kernel body on every location and returns the maximum
/// elapsed seconds over locations.  Call from inside stapl::execute.
template <typename Body>
[[nodiscard]] double timed_kernel(Body&& body)
{
  stapl::rmi_fence();
  auto tm = stapl::start_timer();
  body();
  stapl::rmi_fence();
  double const elapsed = stapl::stop_timer(tm);
  return stapl::allreduce(elapsed,
                          [](double a, double b) { return a < b ? b : a; });
}

/// Prints one table header: name + column captions.
inline void table_header(std::string const& title,
                         std::vector<std::string> const& columns)
{
  std::printf("\n== %s ==\n", title.c_str());
  for (auto const& c : columns)
    std::printf("%16s", c.c_str());
  std::printf("\n");
  auto& j = detail::jstate();
  if (j.enabled) {
    detail::json_flush_table();
    j.title = title;
    j.columns = columns;
  }
}

inline void cell(double v)
{
  std::printf("%16.6f", v);
  if (!std::isfinite(v)) {
    detail::json_append("null"); // inf/nan are not JSON literals
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  detail::json_append(buf);
}
inline void cell(std::size_t v)
{
  std::printf("%16zu", v);
  detail::json_append(std::to_string(v));
}
inline void cell(long v)
{
  std::printf("%16ld", v);
  detail::json_append(std::to_string(v));
}
inline void cell(std::string const& v)
{
  std::printf("%16s", v.c_str());
  detail::json_append(detail::json_quote(v));
}
inline void endrow()
{
  std::printf("\n");
  auto& j = detail::jstate();
  if (j.enabled && !j.row.empty())
    j.rows.push_back(std::move(j.row));
  j.row.clear();
}

/// Throughput in million operations per second.
[[nodiscard]] inline double mops(std::size_t ops, double seconds)
{
  return seconds > 0 ? static_cast<double>(ops) / seconds / 1e6 : 0.0;
}

inline std::vector<unsigned> const default_locations{1, 2, 4, 8};

} // namespace bench

#endif
