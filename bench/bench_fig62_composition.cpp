// Fig. 62: comparison of pArray<pArray<>>, pList<pArray<>> and pMatrix on
// computing the minimum value of each row of a matrix.  Expected shape:
// pMatrix fastest (dense native storage), composed pArray close behind,
// pList<pArray> slowest (linked outer level) — but all within a small
// factor, the composition-overhead claim of Ch. XIII.

#include "algorithms/p_algorithms.hpp"
#include "bench_common.hpp"
#include "containers/p_array.hpp"
#include "containers/p_list.hpp"
#include "containers/p_matrix.hpp"

#include <atomic>

int main(int argc, char** argv)
{
  bench::init(argc, argv);
  using namespace stapl;
  std::printf("# Fig. 62 — row minima: pa<pa>, plist<pa>, pMatrix\n");
  bench::table_header("rows x 256 (seconds)",
                      {"locations", "pa<pa>", "plist<pa>", "pMatrix"});

  std::size_t const cols = 256;
  std::size_t const rows_per_loc = 200 * bench::scale();
  for (unsigned p : bench::default_locations) {
    std::atomic<double> tpa{0}, tpl{0}, tpm{0};
    execute(p, [&] {
      std::size_t const rows = rows_per_loc * num_locations();
      auto fill_row = [cols](std::size_t r, auto& row) {
        row.resize(cols);
        for (std::size_t c = 0; c < cols; ++c)
          row[c] = static_cast<long>((r * 31 + c * 17) % 1009);
      };

      // pArray<pArray<>> — composed array of rows.
      p_array<std::vector<long>> pa(rows);
      pa.for_each_local(fill_row);
      rmi_fence();
      double t = bench::timed_kernel([&] {
        long sink = 0;
        pa.for_each_local([&](gid1d, std::vector<long>& row) {
          sink += *std::min_element(row.begin(), row.end());
        });
        long const total = allreduce(sink, std::plus<>{});
        if (total < 0)
          std::abort();
      });
      if (this_location() == 0)
        tpa.store(t);

      // pList<pArray<>> — composed list of rows.
      p_list<std::vector<long>> pl;
      for (std::size_t r = 0; r < rows_per_loc; ++r) {
        std::vector<long> row;
        fill_row(r + rows_per_loc * this_location(), row);
        pl.push_anywhere_async(std::move(row));
      }
      rmi_fence();
      t = bench::timed_kernel([&] {
        long sink = 0;
        pl.for_each_local([&](dynamic_gid, std::vector<long>& row) {
          sink += *std::min_element(row.begin(), row.end());
        });
        long const total = allreduce(sink, std::plus<>{});
        if (total < 0)
          std::abort();
      });
      if (this_location() == 0)
        tpl.store(t);

      // pMatrix — native 2D container, row-wise blocks.
      p_matrix<long> pm(rows, cols);
      pm.for_each_local([&](gid2d g, long& x) {
        x = static_cast<long>((g.row * 31 + g.col * 17) % 1009);
      });
      rmi_fence();
      t = bench::timed_kernel([&] {
        // Native traversal: iterate dense blocks row by row (the pMatrix
        // fast path the figure contrasts against composed containers).
        long acc = 0;
        for (auto& [bcid, bcptr] : pm.get_location_manager()) {
          auto const& data = bcptr->data();
          std::size_t const bc_cols = bcptr->cols();
          for (std::size_t r = 0; r < bcptr->rows(); ++r) {
            long row_min = data[r * bc_cols];
            for (std::size_t c = 1; c < bc_cols; ++c)
              row_min = std::min(row_min, data[r * bc_cols + c]);
            acc += row_min;
          }
        }
        long const total = allreduce(acc, std::plus<>{});
        if (total < 0)
          std::abort();
      });
      if (this_location() == 0)
        tpm.store(t);
    });
    bench::cell(static_cast<std::size_t>(p));
    bench::cell(tpa.load());
    bench::cell(tpl.load());
    bench::cell(tpm.load());
    bench::endrow();
  }
  return 0;
}
