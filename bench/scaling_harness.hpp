#ifndef STAPL_BENCH_SCALING_HARNESS_HPP
#define STAPL_BENCH_SCALING_HARNESS_HPP

// Declarative scaling-sweep harness (pSTL-Bench style).
//
// A *kernel* is a named SPMD body plus a base problem size; the harness
// crosses it with the sweep axes — location count P, strong/weak scaling
// mode, transport (queue inboxes vs locked direct execution), stealing
// on/off and grain auto/fixed — runs one stapl::execute per sweep point,
// and reports per-point wall time, parallel efficiency against the P=1
// point of the same series, and the `metrics::global_snapshot()` delta of
// that execution (threads are fresh per execute, so the collective
// snapshot covers exactly one sweep point).
//
// Efficiency definitions (t1 = seconds of the same series at P=1):
//   strong:  e(P) = t1 / (P * tP)   (fixed total N)
//   weak:    e(P) = t1 / tP         (fixed N per location: N = base_n * P)
//
// Output: tables through the bench_common row/column mirror (one table per
// kernel x mode, rows keyed "transport/steal/grain/pP" for the row-matching
// differ) plus a machine-first "sweeps" JSON array attached to
// BENCH_scaling.json via bench::set_extra_json — the input of
// bench_diff.py's curve-aware diffing.

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace bench {
namespace scaling {

enum class scale_mode { strong, weak };

[[nodiscard]] inline char const* name(scale_mode m)
{
  return m == scale_mode::strong ? "strong" : "weak";
}

[[nodiscard]] inline char const* name(stapl::transport_kind t)
{
  return t == stapl::transport_kind::direct ? "direct" : "queue";
}

/// The declared sweep axes.  Defaults are the CI-smoke ("lite") sweep;
/// the full cross product is opt-in (bench_scaling --full).
struct axes {
  std::vector<unsigned> p_list{1, 2, 4};
  std::vector<scale_mode> modes{scale_mode::strong, scale_mode::weak};
  std::vector<stapl::transport_kind> transports{
      stapl::transport_kind::queue, stapl::transport_kind::direct};
  std::vector<bool> steal{true};
  std::vector<std::size_t> grains{0};  ///< 0 = auto (default_grain)
};

/// One point of the sweep: the axes values plus the problem size there.
struct sweep_point {
  std::string kernel;
  scale_mode mode = scale_mode::strong;
  stapl::transport_kind transport = stapl::transport_kind::queue;
  bool steal = true;
  std::size_t grain = 0;  ///< 0 = auto
  unsigned p = 1;
  std::size_t n = 0;
};

/// Problem size at location count `p`: strong scaling keeps the total
/// fixed, weak scaling keeps the per-location share fixed (exactly
/// base_n elements per location).
[[nodiscard]] inline std::size_t problem_size(scale_mode m,
                                              std::size_t base_n, unsigned p)
{
  return m == scale_mode::weak ? base_n * p : base_n;
}

/// Parallel efficiency of one point given the series' P=1 seconds.
/// Returns 0 when either timing is unusable (too fast to measure).
[[nodiscard]] inline double efficiency(scale_mode m, unsigned p, double t1,
                                       double tp)
{
  if (t1 <= 0.0 || tp <= 0.0)
    return 0.0;
  return m == scale_mode::strong ? t1 / (static_cast<double>(p) * tp)
                                 : t1 / tp;
}

/// Series identity: everything but P (and the P-derived N).  Efficiency is
/// computed within a series; the differ matches curves by this key + p.
[[nodiscard]] inline std::string series_key(sweep_point const& pt)
{
  return pt.kernel + '/' + name(pt.mode) + '/' + name(pt.transport) +
         (pt.steal ? "/steal" : "/nosteal") + "/g:" +
         (pt.grain == 0 ? std::string("auto") : std::to_string(pt.grain));
}

/// A registered workload: `body` runs on every location inside the sweep
/// point's stapl::execute and returns the timed_kernel seconds (identical
/// on all locations — timed_kernel allreduces the max).
struct kernel_def {
  std::string name;
  std::size_t base_n = 0;  ///< N at P=1, both modes
  std::function<double(sweep_point const&)> body;
};

/// All sweep points of one kernel, deterministically ordered:
/// mode > transport > steal > grain > p, with p ascending so the P=1
/// baseline of every series precedes the rest of its curve.
[[nodiscard]] inline std::vector<sweep_point>
enumerate(std::string const& kernel, std::size_t base_n, axes const& ax)
{
  std::vector<sweep_point> out;
  for (scale_mode m : ax.modes)
    for (stapl::transport_kind t : ax.transports)
      for (bool s : ax.steal)
        for (std::size_t g : ax.grains)
          for (unsigned p : ax.p_list)
            out.push_back({kernel, m, t, s, g, p,
                           problem_size(m, base_n, p)});
  return out;
}

/// One measured point.
struct point_result {
  sweep_point pt;
  double seconds = 0.0;
  double efficiency = 0.0;
  stapl::metrics::counter_map metrics;  ///< global_snapshot of this execute
};

/// When nonempty, every sweep point records into a keep-last circular
/// trace ring and dumps its own Perfetto-loadable timeline to
/// "<prefix><point-tag>.json" right after the point's execute returns —
/// so a regressed curve point ships the trace of exactly that execution
/// (its final window; the ring keeps the newest events).  Set from the
/// bench's --trace-points flag before run_sweep.
[[nodiscard]] inline std::string& trace_points_prefix()
{
  static std::string prefix;
  return prefix;
}

/// Filesystem-safe tag of one sweep point (series key + P, '/'→'_').
[[nodiscard]] inline std::string point_file_tag(sweep_point const& pt)
{
  std::string tag = series_key(pt) + "_p" + std::to_string(pt.p);
  for (char& c : tag)
    if (c == '/' || c == ':')
      c = '_';
  return tag;
}

/// Runs one sweep point: a fresh stapl::execute with the point's location
/// count and transport, the kernel body inside, and the collective metrics
/// snapshot captured before the threads join.
[[nodiscard]] inline point_result run_point(kernel_def const& k,
                                            sweep_point const& pt)
{
  point_result res;
  res.pt = pt;
  bool const tracing = !trace_points_prefix().empty();
  if (tracing)
    stapl::trace::enable(std::size_t{1} << 14, /*keep_last=*/true);
  std::atomic<double> secs{0.0};
  auto metrics_out = std::make_shared<stapl::metrics::counter_map>();
  stapl::runtime_config cfg;
  cfg.num_locations = pt.p;
  cfg.transport = pt.transport;
  stapl::execute(cfg, [&] {
    double const s = k.body(pt);
    auto m = stapl::metrics::global_snapshot();
    if (stapl::this_location() == 0) {
      secs.store(s);
      *metrics_out = std::move(m);
    }
  });
  res.seconds = secs.load();
  res.metrics = std::move(*metrics_out);
  if (tracing) {
    std::string const path =
        trace_points_prefix() + point_file_tag(pt) + ".json";
    bool const ok = stapl::trace::dump(path);
    std::printf("# %s %s (%llu events, %llu dropped)\n",
                ok ? "wrote" : "FAILED to write", path.c_str(),
                static_cast<unsigned long long>(stapl::trace::total_events()),
                static_cast<unsigned long long>(stapl::trace::total_dropped()));
    stapl::trace::disable();
    stapl::trace::clear();
  }
  return res;
}

/// Fills every result's efficiency from the P=1 point of its series.
inline void compute_efficiencies(std::vector<point_result>& rs)
{
  for (auto& r : rs) {
    double t1 = 0.0;
    for (auto const& s : rs)
      if (s.pt.p == 1 && series_key(s.pt) == series_key(r.pt)) {
        t1 = s.seconds;
        break;
      }
    r.efficiency = efficiency(r.pt.mode, r.pt.p, t1, r.seconds);
  }
}

/// Runs the full sweep of every kernel and computes efficiencies.
[[nodiscard]] inline std::vector<point_result>
run_sweep(std::vector<kernel_def> const& kernels, axes const& ax)
{
  std::vector<point_result> out;
  for (auto const& k : kernels)
    for (auto const& pt : enumerate(k.name, k.base_n, ax)) {
      std::printf("# point %s p=%u n=%zu\n", series_key(pt).c_str(), pt.p,
                  pt.n);
      std::fflush(stdout);
      out.push_back(run_point(k, pt));
    }
  compute_efficiencies(out);
  return out;
}

// ---------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------

/// Serializes a metrics map as a JSON object (sorted keys — counter_map is
/// ordered, so the round-trip is deterministic).
[[nodiscard]] inline std::string
metrics_json(stapl::metrics::counter_map const& m)
{
  std::string out = "{";
  bool first = true;
  for (auto const& [k, v] : m) {
    if (!first)
      out += ", ";
    first = false;
    out += detail::json_quote(k) + ": " + std::to_string(v);
  }
  return out + "}";
}

/// The "sweeps" JSON array: one object per point with the axes spelled out
/// (bench_diff.py matches points by the axes tuple), timing, efficiency
/// and the per-point metrics delta.
[[nodiscard]] inline std::string to_json(std::vector<point_result> const& rs)
{
  std::string out = "[";
  bool first = true;
  for (auto const& r : rs) {
    char num[64];
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"kernel\": " + detail::json_quote(r.pt.kernel) +
           ", \"mode\": " + detail::json_quote(name(r.pt.mode)) +
           ", \"transport\": " + detail::json_quote(name(r.pt.transport)) +
           ", \"steal\": " + (r.pt.steal ? "true" : "false") +
           ", \"grain\": " +
           detail::json_quote(r.pt.grain == 0 ? "auto"
                                              : std::to_string(r.pt.grain)) +
           ", \"p\": " + std::to_string(r.pt.p) +
           ", \"n\": " + std::to_string(r.pt.n);
    std::snprintf(num, sizeof num, "%.9g", r.seconds);
    out += std::string(", \"seconds\": ") + num;
    std::snprintf(num, sizeof num, "%.9g", r.efficiency);
    out += std::string(", \"efficiency\": ") + num;
    out += ", \"metrics\": " + metrics_json(r.metrics) + "}";
  }
  return out + "\n  ]";
}

/// Prints one table per kernel x mode through the bench_common mirror.
/// The row key ("transport/steal/grain/pP") is unique within a table, so
/// the classic row-matching differ tracks every point too.
inline void print_tables(std::vector<point_result> const& rs)
{
  for (std::size_t i = 0; i < rs.size(); ++i) {
    auto const& r = rs[i];
    bool const head =
        i == 0 || rs[i - 1].pt.kernel != r.pt.kernel ||
        rs[i - 1].pt.mode != r.pt.mode;
    if (head)
      bench::table_header(
          r.pt.kernel + " (" + name(r.pt.mode) + " scaling)",
          {"point", "n", "seconds", "efficiency"});
    std::string key = std::string(name(r.pt.transport)) +
                      (r.pt.steal ? "/steal" : "/nosteal") + "/g:" +
                      (r.pt.grain == 0 ? std::string("auto")
                                       : std::to_string(r.pt.grain)) +
                      "/p" + std::to_string(r.pt.p);
    bench::cell(key);
    bench::cell(r.pt.n);
    bench::cell(r.seconds);
    bench::cell(r.efficiency);
    bench::endrow();
  }
}

} // namespace scaling
} // namespace bench

#endif
