// Long-running Zipf key-value serving scenario (no dissertation figure —
// the ROADMAP's "millions of users" tail-latency story): a p_hash_map
// serves an open-loop find/insert/apply mix whose hotspot drifts across
// the key space and periodically spikes into a flash crowd, while
// rebalance() waves fire mid-window — measuring p50/p99/p999 operation
// latency *during* the waves against steady-state windows.
//
// Methodology:
//
//   * Open loop with intended-start correction (coordinated-omission
//     safe): a warm-up burst calibrates the achievable closed-loop rate,
//     then a couple of unmeasured *adaptation* windows pace at ~70% of it
//     and back the rate off to what the paced loop actually sustains —
//     the burst overstates capacity when locations oversubscribe cores
//     (pacing adds scheduling and polling overhead the burst never pays),
//     and serving above capacity turns every window into backlog noise.
//     The measured loop then paces each op against its *intended* start
//     time and charges completion - intended_start.  A rebalance wave
//     that stalls the world mid-window therefore lands in the recorded
//     tail of every op queued behind it, exactly like queued user
//     requests.
//
//   * Each location polls the runtime while it is ahead of schedule, so
//     remote requests keep draining between its own ops; when a poll
//     finds no work it yields, so waiting never starves the locations
//     that are serving.
//
//   * Window boundaries fence, then capture one collective
//     metrics::sample_global window into the timeseries sampler —
//     steady-state observability instead of one end-of-run number.
//
// Tables: per-window latency (the timeseries), steady-vs-wave class
// histograms with the p99 excursion ratio, and throughput.  With --json
// the timeseries rides the "timeseries" extra section of
// BENCH_serve.json.  --trace <path> streams a kind-masked event trace
// (waves, fences, migrations — not the per-op rmi_send flood) to disk
// incrementally via trace::stream_to.  --smoke shrinks everything for CI.

#include "bench_common.hpp"
#include "containers/p_associative.hpp"
#include "core/load_balancer.hpp"
#include "runtime/fault.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

using namespace stapl;

namespace {

/// Zipf(s=1) sampler over [0, n) via inverse-CDF lookup driven by a
/// per-location LCG (deterministic, no shared RNG state).
class zipf_sampler {
 public:
  explicit zipf_sampler(std::size_t n)
  {
    m_cdf.resize(n);
    double sum = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      sum += 1.0 / static_cast<double>(r + 1);
      m_cdf[r] = sum;
    }
    for (auto& c : m_cdf)
      c /= sum;
  }

  [[nodiscard]] std::size_t operator()(std::uint64_t& state) const
  {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    double const u =
        static_cast<double>(state >> 11) * (1.0 / 9007199254740992.0);
    return static_cast<std::size_t>(
        std::lower_bound(m_cdf.begin(), m_cdf.end(), u) - m_cdf.begin());
  }

 private:
  std::vector<double> m_cdf;
};

struct serve_config {
  unsigned locations = 4;
  std::size_t keys = 1 << 14;          ///< key-space size
  std::size_t warm_ops = 4000;         ///< calibration burst per location
  std::size_t adapt_windows = 2;       ///< unmeasured rate-adaptation windows
  std::size_t windows = 12;            ///< serve windows after warm-up
  std::size_t wave_every = 4;          ///< rebalance mid-window every Nth
  std::size_t flash_every = 5;         ///< flash-crowd every Nth window
  std::uint64_t window_ns = 400'000'000;  ///< target window length
  double pace = 0.70;                  ///< open-loop rate vs calibrated max
  bool faults = false;                 ///< --faults: gated chaos windows
  std::uint64_t fault_seed = 0;
};

/// Gate bits for the --faults window schedule (plans installed in main).
inline constexpr std::uint64_t gate_storm = 1;     ///< delay+dup storm
inline constexpr std::uint64_t gate_straggler = 2; ///< last location stalls

struct window_row {
  std::string label;
  std::uint64_t ops = 0;
  std::uint64_t p50_ns = 0, p99_ns = 0, p999_ns = 0, max_ns = 0;
};

struct serve_result {
  std::vector<window_row> rows;              ///< one per window (loc 0 view)
  latency::histogram steady, wave;           ///< serve.op by window class
  double achieved_rate = 0;                  ///< calibrated ops/s/location
  std::uint64_t total_ops = 0;
  double serve_seconds = 0;
};

/// One serving run.  `sampler` is only touched by location 0 (inside
/// sample_global); `result` is written by location 0 under `m`.
void run_serve(serve_config const& cfg, metrics::sampler& sampler,
               std::mutex& m, serve_result& result)
{
  execute(cfg.locations, [&] {
    std::size_t const n = cfg.keys;
    p_hash_map<long, long> kv;

    load_balancer_config lb;
    lb.imbalance_threshold = 1.10; // migrate eagerly: waves should move keys
    lb.hot_k = 256;
    kv.enable_load_balancing(lb);

    // Preload the whole key space so finds hit.
    for (std::size_t k = this_location(); k < n; k += num_locations())
      kv.insert_async(static_cast<long>(k), 1);
    rmi_fence();

    zipf_sampler const zipf(n);
    std::uint64_t rng =
        0x9E3779B97F4A7C15ull * (this_location() + 1) + 12345;

    // Op mix: 70% find, 20% apply, 10% insert(overwrite-style touch).
    // `hot_base` drifts the Zipf head across the key space per window;
    // flash windows funnel half the traffic into 64 keys at the head.
    auto serve_one = [&](std::size_t hot_base, bool flash) {
      rng = rng * 6364136223846793005ull + 1442695040888963407ull;
      std::uint64_t const dice = (rng >> 33) % 100;
      std::size_t rank = zipf(rng);
      if (flash && (rng & 1))
        rank %= 64;
      long const key = static_cast<long>((hot_base + rank) % n);
      if (dice < 70)
        (void)kv.find_val(key);
      else if (dice < 90)
        kv.apply_async(key, [](long& v) { v += 1; });
      else
        kv.insert_async(key, static_cast<long>(dice));
    };

    // Pace against the intended schedule; when ahead, drain remote traffic
    // and yield on empty polls instead of burning the timeslice.
    auto pace_until = [](std::uint64_t intended) {
      while (latency::now_ns() < intended)
        if (!rmi_poll())
          std::this_thread::yield();
    };

    // --- Calibration: closed-loop burst -> first guess at the rate.
    rmi_fence();
    std::uint64_t const cal_t0 = latency::now_ns();
    for (std::size_t i = 0; i < cfg.warm_ops; ++i)
      serve_one(0, false);
    rmi_fence();
    std::uint64_t const cal_ns =
        std::max<std::uint64_t>(1, latency::now_ns() - cal_t0);
    double const my_rate =
        static_cast<double>(cfg.warm_ops) / static_cast<double>(cal_ns);
    // Everyone paces at the slowest location's sustainable rate.
    double rate_per_ns =
        cfg.pace *
        allreduce(my_rate, [](double a, double b) { return a < b ? a : b; });

    // --- Adaptation: unmeasured paced windows back the rate off to what
    // the open-loop structure actually sustains.  A window that overruns
    // its schedule by >10% means the offered load exceeds capacity (the
    // burst overstates it under core oversubscription); re-anchor at
    // `pace` times the achieved rate.  Within schedule = leave the rate
    // alone (a paced loop can never exceed its offered rate, so achieved
    // rate alone is not a capacity signal).
    for (std::size_t a = 0; a < cfg.adapt_windows; ++a) {
      std::size_t const ops = std::max<std::size_t>(
          64, static_cast<std::size_t>(rate_per_ns *
                                       static_cast<double>(cfg.window_ns)));
      std::uint64_t const t0 = latency::now_ns();
      for (std::size_t i = 0; i < ops; ++i) {
        pace_until(t0 + static_cast<std::uint64_t>(
                            static_cast<double>(i) / rate_per_ns));
        serve_one(0, false);
      }
      rmi_fence();
      std::uint64_t const elapsed =
          std::max<std::uint64_t>(1, latency::now_ns() - t0);
      double my_adapted = rate_per_ns;
      if (static_cast<double>(elapsed) >
          1.10 * static_cast<double>(cfg.window_ns))
        my_adapted = cfg.pace * static_cast<double>(ops) /
                     static_cast<double>(elapsed);
      rate_per_ns = allreduce(
          my_adapted, [](double a_, double b_) { return a_ < b_ ? a_ : b_; });
    }

    std::size_t const ops_per_window = std::max<std::size_t>(
        64, static_cast<std::size_t>(rate_per_ns *
                                     static_cast<double>(cfg.window_ns)));

    // Fresh epoch for the measured phase: drops warm-up samples from every
    // recorder (lazily, via the reset epoch) and re-baselines the sampler.
    metrics::reset_all();
    rmi_fence();
    if (this_location() == 0)
      sampler.arm();
    rmi_fence();

    latency::histogram steady_h, wave_h;
    std::uint64_t served = 0;
    std::uint64_t const serve_t0 = latency::now_ns();

    for (std::size_t w = 1; w <= cfg.windows; ++w) {
      bool const wave = cfg.wave_every != 0 && w % cfg.wave_every == 0;
      bool const flash = cfg.flash_every != 0 && w % cfg.flash_every == 0;
      bool const storm = cfg.faults && w % 3 == 2;
      bool const straggler = cfg.faults && w % 3 == 0;
      if (cfg.faults) {
        // The gate is process-global: one location flips it between the
        // boundary fences so every location serves the whole window under
        // the same injection regime.
        if (this_location() == 0)
          fault::set_gate(storm ? gate_storm : straggler ? gate_straggler : 0);
        location_barrier();
      }
      std::size_t const hot_base = (w * n) / 7; // drifting hotspot
      latency::histogram& class_h = wave ? wave_h : steady_h;

      std::uint64_t const t0 = latency::now_ns();
      for (std::size_t i = 0; i < ops_per_window; ++i) {
        // The wave is collective: every location fires it at the same op
        // index, mid-window, while its own queue keeps its schedule — the
        // stall shows up as backlog against the intended starts below.
        if (wave && i == ops_per_window / 2)
          (void)kv.rebalance();

        std::uint64_t const intended =
            t0 + static_cast<std::uint64_t>(static_cast<double>(i) /
                                            rate_per_ns);
        pace_until(intended); // ahead of schedule: serve remotes, yield
        serve_one(hot_base, flash);
        std::uint64_t const lat = latency::now_ns() - intended;
        latency::record_ns(latency::op::serve_op, lat);
        class_h.record(lat);
        served += 1;
      }

      rmi_fence();
      metrics::sample_global(sampler, storm       ? "storm"
                                      : straggler ? "straggler"
                                      : wave      ? "wave"
                                      : flash     ? "flash"
                                                  : "steady");
    }
    if (cfg.faults && this_location() == 0)
      fault::set_gate(0);

    double const serve_s =
        static_cast<double>(latency::now_ns() - serve_t0) / 1e9;

    // Class histograms: exact global merge (what a single recorder that
    // saw every location's samples would hold).
    auto const g_steady =
        allreduce(steady_h, [](latency::histogram a,
                               latency::histogram const& b) {
          a.merge(b);
          return a;
        });
    auto const g_wave =
        allreduce(wave_h, [](latency::histogram a,
                             latency::histogram const& b) {
          a.merge(b);
          return a;
        });
    auto const g_served =
        allreduce(served, [](std::uint64_t a, std::uint64_t b) {
          return a + b;
        });

    if (this_location() == 0) {
      std::lock_guard lock(m);
      result.steady = g_steady;
      result.wave = g_wave;
      result.achieved_rate = rate_per_ns * 1e9 / cfg.pace;
      result.total_ops = g_served;
      result.serve_seconds = serve_s;
      for (auto const& p : sampler.series()) {
        auto const& w =
            p.ops[static_cast<std::size_t>(latency::op::serve_op)];
        result.rows.push_back(
            {p.label, w.count, w.p50_ns, w.p99_ns, w.p999_ns, w.max_ns});
      }
    }
  });
}

[[nodiscard]] double us(std::uint64_t ns)
{
  return static_cast<double>(ns) / 1e3;
}

} // namespace

int main(int argc, char** argv)
{
  bench::init(argc, argv, "serve");

  serve_config cfg;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    std::string_view const arg = argv[i];
    if (arg == "--smoke") {
      cfg.keys = 1 << 12;
      cfg.warm_ops = 1500;
      cfg.windows = 6;
      cfg.wave_every = 3;
      cfg.window_ns = 120'000'000;
    } else if (arg == "--p" && i + 1 < argc) {
      cfg.locations = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (arg == "--windows" && i + 1 < argc) {
      cfg.windows = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (arg == "--pace" && i + 1 < argc) {
      cfg.pace = std::atof(argv[++i]);
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--faults" && i + 1 < argc) {
      cfg.faults = true;
      cfg.fault_seed = std::strtoull(argv[++i], nullptr, 10);
    }
  }

  if (cfg.faults) {
    // Gated chaos plans: the serve loop opens one gate per labelled window
    // (storm = message delay + duplication everywhere, straggler = the last
    // location stalls on every poll), so their tail cost lands in named
    // timeseries rows instead of smearing across the whole run.
    fault::plan delay;
    delay.where = fault::site::rmi_enqueue;
    delay.actions = fault::act_delay;
    delay.probability = 0.05;
    delay.delay_polls = 4;
    delay.gate = gate_storm;
    fault::add_plan(delay);
    fault::plan dup;
    dup.where = fault::site::rmi_enqueue;
    dup.actions = fault::act_duplicate;
    dup.probability = 0.05;
    dup.gate = gate_storm;
    fault::add_plan(dup);
    fault::plan stall;
    stall.where = fault::site::rmi_poll;
    stall.actions = fault::act_stall;
    stall.every_n = 1;
    stall.stall_us = 500;
    stall.only_location = cfg.locations - 1;
    stall.gate = gate_straggler;
    fault::add_plan(stall);
    fault::set_gate(0);
    fault::arm(cfg.fault_seed);
  }

  std::printf("# Zipf KV serving: open-loop find/apply/insert mix, drifting "
              "hotspot + flash crowds,\n# rebalance waves mid-window; "
              "p50/p99/p999 per window via metrics::sample_global\n");
  std::printf("# P=%u keys=%zu windows=%zu (wave every %zu, flash every "
              "%zu)\n",
              cfg.locations, cfg.keys, cfg.windows, cfg.wave_every,
              cfg.flash_every);
  if (cfg.faults)
    std::printf("# fault injection armed (seed %llu): storm windows w%%3==2 "
                "(delay+dup p=0.05), straggler windows w%%3==0 (loc %u "
                "stalls 500us/poll)\n",
                static_cast<unsigned long long>(cfg.fault_seed),
                cfg.locations - 1);

  latency::enable(); // the whole point of this bench

  if (!trace_path.empty()) {
    // Streamed, kind-masked trace: the reshaping events only — fences,
    // waves, migrations, epoch advances — not the per-op rmi_send flood.
    trace::enable(std::size_t{1} << 12, false,
                  trace::kind_bit(trace::event_kind::fence) |
                      trace::kind_bit(trace::event_kind::rebalance_wave) |
                      trace::kind_bit(trace::event_kind::migration) |
                      trace::kind_bit(trace::event_kind::epoch_advance));
    if (!trace::stream_to(trace_path))
      std::fprintf(stderr, "bench_serve: cannot stream trace to %s\n",
                   trace_path.c_str());
  }

  metrics::sampler sampler;
  std::mutex m;
  serve_result res;
  run_serve(cfg, sampler, m, res);

  if (cfg.faults) {
    fault::disarm();
    fault::clear_plans();
  }

  if (!trace_path.empty()) {
    trace::stream_close();
    trace::disable();
    std::printf("# streamed %llu trace events to %s\n",
                static_cast<unsigned long long>(trace::streamed_events()),
                trace_path.c_str());
    trace::clear();
  }

  bench::table_header("per-window serve.op latency (us)",
                      {"window", "label", "ops", "p50", "p99", "p999"});
  for (std::size_t i = 0; i < res.rows.size(); ++i) {
    auto const& r = res.rows[i];
    bench::cell(i + 1);
    bench::cell(r.label);
    bench::cell(r.ops);
    bench::cell(us(r.p50_ns));
    bench::cell(us(r.p99_ns));
    bench::cell(us(r.p999_ns));
    bench::endrow();
  }

  double const excursion =
      res.steady.p99() > 0 ? static_cast<double>(res.wave.p99()) /
                                 static_cast<double>(res.steady.p99())
                           : 0.0;
  bench::table_header(
      "steady vs wave windows (us)",
      {"class", "ops", "p50", "p99", "p999", "max", "p99_ratio"});
  bench::cell(std::string("steady"));
  bench::cell(res.steady.count);
  bench::cell(us(res.steady.p50()));
  bench::cell(us(res.steady.p99()));
  bench::cell(us(res.steady.p999()));
  bench::cell(us(res.steady.max()));
  bench::cell(1.0);
  bench::endrow();
  bench::cell(std::string("wave"));
  bench::cell(res.wave.count);
  bench::cell(us(res.wave.p50()));
  bench::cell(us(res.wave.p99()));
  bench::cell(us(res.wave.p999()));
  bench::cell(us(res.wave.max()));
  bench::cell(excursion);
  bench::endrow();

  bench::table_header("throughput", {"calibrated_rate", "served_mops_s"});
  bench::cell(res.achieved_rate * cfg.locations);
  bench::cell(res.serve_seconds > 0
                  ? static_cast<double>(res.total_ops) / res.serve_seconds /
                        1e6
                  : 0.0);
  bench::endrow();

  bench::set_extra_json("timeseries", sampler.to_json());

  std::printf("\n# wave p99 / steady p99 = %.2f\n", excursion);
  return 0;
}
