// Fig. 31: pArray methods for various percentages of remote invocations.
// Expected shape: cost grows monotonically with the remote fraction; async
// writes degrade much more slowly than sync reads.

#include "bench_common.hpp"
#include "containers/p_array.hpp"

#include <atomic>

int main(int argc, char** argv)
{
  using namespace stapl;
  bench::init(argc, argv);
  std::printf("# Fig. 31 — methods vs %% remote invocations (P=4)\n");
  bench::table_header("remote fraction",
                      {"remote_pct", "set_async", "get_sync"});

  unsigned const p = 4;
  std::size_t const ops = 4'000 * bench::scale();
  for (int pct : {0, 25, 50, 75, 100}) {
    std::atomic<double> ts{0}, tg{0};
    execute(p, [&] {
      std::size_t const block = 1'000;
      p_array<long> pa(block * num_locations());
      gid1d const local_base = block * this_location();
      gid1d const remote_base =
          block * ((this_location() + 1) % num_locations());

      auto target = [&](std::size_t i) {
        bool const remote =
            static_cast<int>(i * 100 / ops) < pct && num_locations() > 1;
        return (remote ? remote_base : local_base) + i % block;
      };

      double t = bench::timed_kernel([&] {
        for (std::size_t i = 0; i < ops; ++i)
          pa.set_element(target(i), static_cast<long>(i));
      });
      if (this_location() == 0)
        ts.store(t);

      t = bench::timed_kernel([&] {
        long sink = 0;
        for (std::size_t i = 0; i < ops; ++i)
          sink += pa.get_element(target(i));
        if (sink == std::numeric_limits<long>::min())
          std::abort();
      });
      if (this_location() == 0)
        tg.store(t);
    });
    bench::cell(static_cast<std::size_t>(pct));
    bench::cell(ts.load());
    bench::cell(tg.load());
    bench::endrow();
  }
  return 0;
}
