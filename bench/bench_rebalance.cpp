// Hot-element load balancer benchmark (no dissertation figure — new
// subsystem, see core/load_balancer.hpp):
//
// A Zipf-skewed element-method workload hammers a p_array whose hottest
// elements all start on location 0 (Zipf rank == GID, blocked partition),
// so location 0 executes most of the traffic and the remaining locations
// idle — the skewed-placement regime pSTL-Bench identifies as the
// scalability killer.  One rebalance() wave migrates the tracked hot
// elements across locations; the same workload is then measured again.
//
//   1. throughput table — apply_set Mops before vs after the wave; the
//      after column must be measurably higher for P > 1 (acceptance);
//   2. load-spread table — max/avg owner load: measured before, projected
//      by the plan, and re-measured after, against the configured
//      threshold.
//
// Run with --json to also write BENCH_rebalance.json.

#include "bench_common.hpp"
#include "containers/p_array.hpp"
#include "core/load_balancer.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <vector>

using namespace stapl;

namespace {

double const kThreshold = 1.30; ///< imbalance tolerated before migrating

/// Zipf(s=1) sampler over [0, n): rank r is drawn with weight 1/(r+1),
/// via inverse-CDF lookup driven by a per-location LCG (deterministic, no
/// shared RNG state between locations).
class zipf_sampler {
 public:
  explicit zipf_sampler(std::size_t n)
  {
    m_cdf.resize(n);
    double sum = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      sum += 1.0 / static_cast<double>(r + 1);
      m_cdf[r] = sum;
    }
    for (auto& c : m_cdf)
      c /= sum;
  }

  [[nodiscard]] std::size_t operator()(std::uint64_t& state) const
  {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    double const u =
        static_cast<double>(state >> 11) * (1.0 / 9007199254740992.0);
    return static_cast<std::size_t>(
        std::lower_bound(m_cdf.begin(), m_cdf.end(), u) - m_cdf.begin());
  }

 private:
  std::vector<double> m_cdf;
};

struct case_result {
  double before_mops = 0, after_mops = 0;
  double imb_before = 0, imb_projected = 0, imb_measured = 0;
  std::size_t moves = 0;
};

case_result run_case(unsigned p)
{
  std::atomic<double> before{0}, after{0}, ib{0}, ip{0}, im{0};
  std::atomic<std::size_t> moves{0};
  execute(p, [&] {
    std::size_t const n = 256 * num_locations();
    std::size_t const accesses = 20000 * bench::scale(); // per location
    p_array<long> pa(n, 0);

    load_balancer_config cfg;
    cfg.imbalance_threshold = kThreshold;
    cfg.hot_k = 128;
    pa.enable_load_balancing(cfg);

    zipf_sampler const zipf(n); // rank==GID: hot set starts on location 0
    auto workload = [&](std::uint64_t seed) {
      std::uint64_t state = seed * 0x9E3779B97F4A7C15ull + this_location();
      for (std::size_t i = 0; i < accesses; ++i)
        pa.apply_set(zipf(state), [](long& v) { v += 1; });
    };

    double t = bench::timed_kernel([&] { workload(1); });
    double const mops_before = bench::mops(accesses * num_locations(), t);

    auto const rep = pa.rebalance();

    t = bench::timed_kernel([&] { workload(2); });
    double const mops_after = bench::mops(accesses * num_locations(), t);

    // Re-measured spread: the post-wave epoch observed only phase-2 traffic.
    auto const loads = allgather(pa.get_directory().epoch_accesses());

    if (this_location() == 0) {
      before.store(mops_before);
      after.store(mops_after);
      ib.store(rep.imbalance_before);
      ip.store(rep.imbalance_after);
      im.store(lb_detail::imbalance_of(loads));
      moves.store(rep.moves);
    }
  });
  return {before.load(), after.load(), ib.load(), ip.load(), im.load(),
          moves.load()};
}

} // namespace

int main(int argc, char** argv)
{
  bench::init(argc, argv, "rebalance");
  std::printf("# Load balancer: Zipf-skewed apply_set throughput and load "
              "spread, before/after one rebalance() wave\n");

  std::vector<unsigned> const ps{2, 4, 8};
  std::vector<case_result> results;
  results.reserve(ps.size());
  for (unsigned p : ps)
    results.push_back(run_case(p));

  bench::table_header("Zipf apply_set throughput (Mops, all locations)",
                      {"locations", "before", "after", "speedup", "moves"});
  for (std::size_t i = 0; i < ps.size(); ++i) {
    auto const& r = results[i];
    bench::cell(static_cast<std::size_t>(ps[i]));
    bench::cell(r.before_mops);
    bench::cell(r.after_mops);
    bench::cell(r.before_mops > 0 ? r.after_mops / r.before_mops : 0.0);
    bench::cell(r.moves);
    bench::endrow();
  }

  bench::table_header(
      "owner-load spread max/avg (threshold " + std::to_string(kThreshold) +
          ")",
      {"locations", "before", "projected", "measured"});
  for (std::size_t i = 0; i < ps.size(); ++i) {
    auto const& r = results[i];
    bench::cell(static_cast<std::size_t>(ps[i]));
    bench::cell(r.imb_before);
    bench::cell(r.imb_projected);
    bench::cell(r.imb_measured);
    bench::endrow();
  }
  return 0;
}
