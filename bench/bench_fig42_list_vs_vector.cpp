// Fig. 42: pList vs pVector on a mix of read/write/insert/delete
// operations (paper: 10M ops; scaled here).  Expected shape: for
// insert/delete-heavy mixes the pList wins (O(1) linked insertion); for
// read/write-heavy mixes the pVector wins (contiguous storage); the
// crossover moves with the insert fraction.

#include "bench_common.hpp"
#include "containers/p_list.hpp"
#include "containers/p_vector.hpp"

#include <atomic>
#include <random>

int main(int argc, char** argv)
{
  bench::init(argc, argv);
  using namespace stapl;
  std::printf("# Fig. 42 — pList vs pVector, operation mixes (P=4)\n");
  bench::table_header("mix sweep (seconds, 40k ops/loc)",
                      {"insert_pct", "pList", "pVector"});

  std::size_t const ops = 40'000 * bench::scale();
  for (int insert_pct : {0, 10, 30, 50, 80}) {
    std::atomic<double> tl{0}, tv{0};
    execute(4, [&] {
      // --- pList: anywhere-inserts + local gid reads/writes -------------
      p_list<long> pl;
      std::vector<dynamic_gid> gids;
      for (int i = 0; i < 1'000; ++i)
        gids.push_back(pl.push_anywhere(i));
      rmi_fence();
      std::mt19937 gen(11 + this_location());
      double t = bench::timed_kernel([&] {
        for (std::size_t i = 0; i < ops; ++i) {
          int const dice = static_cast<int>(gen() % 100);
          if (dice < insert_pct) {
            if (gen() % 2 == 0 || gids.size() < 8)
              gids.push_back(pl.push_anywhere(1));
            else {
              pl.erase_element(gids.back());
              gids.pop_back();
            }
          } else {
            auto const g = gids[gen() % gids.size()];
            if (gen() % 2 == 0)
              pl.set_element(g, 7);
            else if (pl.get_element(g) < 0)
              std::abort();
          }
        }
      });
      if (this_location() == 0)
        tl.store(t);

      // --- pVector: indexed reads/writes + middle inserts ---------------
      p_vector<long> pv(1'000 * num_locations());
      pv.flush();
      std::size_t const block = 1'000;
      gid1d const base = block * this_location();
      t = bench::timed_kernel([&] {
        for (std::size_t i = 0; i < ops; ++i) {
          int const dice = static_cast<int>(gen() % 100);
          if (dice < insert_pct) {
            if (gen() % 2 == 0)
              pv.insert_async(base + gen() % block, 1);
            else
              pv.erase_async(base + gen() % block);
          } else {
            gid1d const g = base + gen() % block;
            if (gen() % 2 == 0)
              pv.set_element(g, 7);
            else if (pv.get_element(g) < -1'000'000)
              std::abort();
          }
        }
      });
      if (this_location() == 0)
        tv.store(t);
    });
    bench::cell(static_cast<std::size_t>(insert_pct));
    bench::cell(tl.load());
    bench::cell(tv.load());
    bench::endrow();
  }
  std::printf("\n# shape check: pVector wins at 0%% inserts; pList gains as"
              " insert%% grows\n");
  return 0;
}
