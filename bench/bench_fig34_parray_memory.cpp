// Tables XXII/XXIII + Fig. 34: pArray memory consumption — data vs
// metadata bytes as a function of the number of bContainers per location.
// Expected shape: data constant; metadata grows linearly with the number of
// sub-domains, staying a small fraction of data for reasonable block
// counts.

#include "bench_common.hpp"
#include "containers/p_array.hpp"

#include <atomic>

int main(int argc, char** argv)
{
  bench::init(argc, argv);
  using namespace stapl;
  std::printf("# Fig. 34 / Tables XXII-XXIII — pArray memory usage\n");
  bench::table_header("N=1M doubles, P=4",
                      {"bContainers", "data_bytes", "metadata_bytes",
                       "meta_pct"});

  std::size_t const n = 1'000'000 * bench::scale();
  for (std::size_t bcs_per_loc : {1u, 4u, 16u, 64u, 256u}) {
    std::atomic<std::size_t> data{0}, meta{0};
    execute(4, [&] {
      p_array<double, block_cyclic_partition> pa(
          n, block_cyclic_partition(bcs_per_loc * num_locations(),
                                    n / (bcs_per_loc * num_locations() * 4)));
      auto const [m, d] = pa.global_memory_size();
      if (this_location() == 0) {
        data.store(d);
        meta.store(m);
      }
    });
    bench::cell(bcs_per_loc * 4);
    bench::cell(data.load());
    bench::cell(meta.load());
    bench::cell(100.0 * static_cast<double>(meta.load()) /
                static_cast<double>(data.load()));
    bench::endrow();
  }
  return 0;
}
