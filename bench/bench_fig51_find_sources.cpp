// Fig. 51: find_sources in a directed pGraph using static, dynamic with
// forwarding and dynamic with no forwarding partitions.  The kernel issues
// one remote vertex method per edge, so it magnifies address-translation
// cost.  Expected shape: static < dynamic+forwarding < dynamic
// no-forwarding (the extra synchronous directory round trip per miss).

#include "algorithms/graph_algorithms.hpp"
#include "bench_common.hpp"
#include "containers/graph_generators.hpp"

#include <atomic>

int main(int argc, char** argv)
{
  bench::init(argc, argv);
  using namespace stapl;
  std::printf("# Fig. 51 — find_sources vs address translation mode\n");
  bench::table_header("DAG layers x width (seconds)",
                      {"locations", "static", "dyn_fwd", "dyn_nofwd"});

  for (unsigned p : bench::default_locations) {
    std::size_t const width = 500 * bench::scale();
    std::size_t const layers = 2 * p;
    double times[3] = {0, 0, 0};
    graph_partition_kind const kinds[3] = {
        graph_partition_kind::static_balanced,
        graph_partition_kind::dynamic_forwarding,
        graph_partition_kind::dynamic_no_forwarding};
    for (int k = 0; k < 3; ++k) {
      std::atomic<double> t{0};
      execute(p, [&] {
        using G = p_graph<DIRECTED, MULTI, indegree_property, no_property>;
        std::size_t const n = layers * width;
        G g(kinds[k] == graph_partition_kind::static_balanced ? n : 0,
            kinds[k]);
        generate_dag(g, layers, width, 2);
        double const tt = bench::timed_kernel([&] {
          auto const sources = find_sources(g);
          auto const total = allreduce(sources.size(), std::plus<>{});
          if (total != width)
            std::abort();
        });
        if (this_location() == 0)
          t.store(tt);
      });
      times[k] = t.load();
    }
    bench::cell(static_cast<std::size_t>(p));
    bench::cell(times[0]);
    bench::cell(times[1]);
    bench::cell(times[2]);
    bench::endrow();
  }
  return 0;
}
