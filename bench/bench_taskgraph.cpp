// Task-graph executor benchmark (no dissertation figure — new subsystem,
// see runtime/task_graph.hpp):
//
// An imbalanced workload of Zipf-sized chunk tasks — chunk rank r carries
// ~1/(r+1) of the work, and the whole Zipf head starts on location 0 (the
// same adversarial placement regime as bench_rebalance).  Each chunk
// simulates a latency-bound task (a calibrated sleep per work unit,
// modeling remote-fetch/IO-dominated chunks), so chunks overlap across
// locations regardless of the host's core count.
//
//   1. steal recovery table — wall time with stealing disabled (static
//      per-location scheduling: the loaded location serializes its Zipf
//      head while the rest idle) versus enabled (idle locations pull the
//      head's chunks over), plus the executor's steal counters.  The
//      `recovery` column is static/steal throughput: acceptance wants
//      >= 1.3x for P > 1;
//   2. balanced guard table — the same total work in equal chunks: with no
//      imbalance the steal path must cost ~nothing (ratio ~1.0), showing
//      the scheduler does not tax well-balanced pAlgorithms.
//
// Run with --json to also write BENCH_taskgraph.json.

#include "bench_common.hpp"
#include "runtime/task_graph.hpp"

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

using namespace stapl;

namespace {

std::chrono::microseconds const kUnit{200}; ///< latency per work unit

/// Work units of `chunks` Zipf(s=1)-sized chunks totalling ~`total`.
std::vector<std::size_t> zipf_sizes(std::size_t chunks, std::size_t total)
{
  double h = 0.0;
  for (std::size_t r = 0; r < chunks; ++r)
    h += 1.0 / static_cast<double>(r + 1);
  std::vector<std::size_t> sizes(chunks);
  for (std::size_t r = 0; r < chunks; ++r) {
    double const w = static_cast<double>(total) / h /
                     static_cast<double>(r + 1);
    sizes[r] = static_cast<std::size_t>(w) + 1;
  }
  return sizes;
}

struct sched_result {
  double seconds = 0.0;
  std::uint64_t stolen = 0;
  std::uint64_t steal_fail = 0;
};

/// Runs one graph of latency-bound chunk tasks with the given owner per
/// chunk; returns wall seconds (max over locations) and steal counters.
sched_result run_chunks(std::vector<std::size_t> const& sizes,
                        std::vector<location_id> const& owner, bool steal)
{
  sched_result res;
  task_graph<char> tg;
  tg.set_stealing(steal);
  task_options stealable;
  stealable.stealable = true;
  for (std::size_t r = 0; r < sizes.size(); ++r) {
    std::size_t const units = sizes[r];
    tg.add_task(
        owner[r],
        [units](std::vector<char> const&, char const&) {
          // One latency unit at a time, polling in between — like a real
          // latency-bound chunk whose remote reads drive the RMI layer, so
          // a loaded location keeps granting steals mid-chunk.
          for (std::size_t u = 0; u < units; ++u) {
            std::this_thread::sleep_for(kUnit);
            rmi_poll();
          }
          return char{};
        },
        {}, stealable);
  }
  res.seconds = bench::timed_kernel([&] { tg.execute(); });
  auto const stats = tg.global_stats();
  res.stolen = stats.tasks_stolen;
  res.steal_fail = stats.steal_fail;
  return res;
}

} // namespace

int main(int argc, char** argv)
{
  bench::init(argc, argv);
  std::printf("# Task-graph executor — work stealing on imbalanced "
              "(Zipf-sized) chunks\n");

  std::size_t const chunks = 32;
  std::size_t const total_units = 1200 * bench::scale();

  bench::table_header("Zipf head on location 0 (steal recovery)",
                      {"locations", "static_s", "steal_s", "recovery",
                       "stolen", "steal_fail"});
  for (unsigned p : {2u, 4u, 8u}) {
    std::atomic<double> ts{0}, tw{0};
    std::atomic<std::uint64_t> stolen{0}, fail{0};
    execute(p, [&] {
      auto const sizes = zipf_sizes(chunks, total_units);
      // Block deal: ranks 0..C/P-1 (the Zipf head) land on location 0.
      std::vector<location_id> owner(chunks);
      std::size_t const per = chunks / num_locations();
      for (std::size_t r = 0; r < chunks; ++r)
        owner[r] = static_cast<location_id>(
            std::min<std::size_t>(r / per, num_locations() - 1));

      auto const stat = run_chunks(sizes, owner, false);
      auto const dyn = run_chunks(sizes, owner, true);
      if (this_location() == 0) {
        ts.store(stat.seconds);
        tw.store(dyn.seconds);
        stolen.store(dyn.stolen);
        fail.store(dyn.steal_fail);
      }
    });
    bench::cell(static_cast<std::size_t>(p));
    bench::cell(ts.load());
    bench::cell(tw.load());
    bench::cell(tw.load() > 0 ? ts.load() / tw.load() : 0.0);
    bench::cell(static_cast<std::size_t>(stolen.load()));
    bench::cell(static_cast<std::size_t>(fail.load()));
    bench::endrow();
  }

  bench::table_header("balanced chunks (scheduler overhead guard)",
                      {"locations", "static_s", "steal_s", "ratio"});
  for (unsigned p : bench::default_locations) {
    std::atomic<double> ts{0}, tw{0};
    execute(p, [&] {
      std::size_t const balanced_chunks = 8 * num_locations();
      std::vector<std::size_t> sizes(balanced_chunks,
                                     total_units / balanced_chunks + 1);
      std::vector<location_id> owner(balanced_chunks);
      for (std::size_t r = 0; r < balanced_chunks; ++r)
        owner[r] = static_cast<location_id>(r % num_locations());
      auto const stat = run_chunks(sizes, owner, false);
      auto const dyn = run_chunks(sizes, owner, true);
      if (this_location() == 0) {
        ts.store(stat.seconds);
        tw.store(dyn.seconds);
      }
    });
    bench::cell(static_cast<std::size_t>(p));
    bench::cell(ts.load());
    bench::cell(tw.load());
    bench::cell(tw.load() > 0 ? ts.load() / tw.load() : 0.0);
    bench::endrow();
  }
  return 0;
}
