// Task-graph executor benchmark (no dissertation figure — new subsystem,
// see runtime/task_graph.hpp):
//
// An imbalanced workload of Zipf-sized chunk tasks — chunk rank r carries
// ~1/(r+1) of the work, and the whole Zipf head starts on location 0 (the
// same adversarial placement regime as bench_rebalance).  Each chunk
// simulates a latency-bound task (a calibrated sleep per work unit,
// modeling remote-fetch/IO-dominated chunks), so chunks overlap across
// locations regardless of the host's core count.
//
//   1. steal recovery table — wall time with stealing disabled (static
//      per-location scheduling: the loaded location serializes its Zipf
//      head while the rest idle) versus enabled (idle locations pull the
//      head's chunks over), plus the executor's steal counters.  The
//      `recovery` column is static/steal throughput: acceptance wants
//      >= 1.3x for P > 1;
//   2. balanced guard table — the same total work in equal chunks: with no
//      imbalance the steal path must cost ~nothing (ratio ~1.0), showing
//      the scheduler does not tax well-balanced pAlgorithms;
//   3. (--locality) cache-warm vs cold steals — an idle thief facing
//      several loaded victims, one of whose chunks are annotated
//      cached-at-thief: the locality-aware victim order must concentrate
//      the thief's steals on the warm victim, against a hint-less control;
//   4. (--spawn) the stealable spawn path — descriptor-exchange bytes and
//      spawn latency of a dense integral-GID chunked map: the measured
//      spawn_bytes (wire forms only) against what the pre-split
//      full-descriptor allgather would have shipped (raw GID vectors to
//      every peer), plus a repartitioning balanced deal whose payloads
//      must be forwarded producer→owner.
//
// Run with --json to also write BENCH_taskgraph.json.
// Run with --trace <path> to additionally record one traced P=4 Zipf steal
// run and export it as Chrome trace-event JSON (Perfetto-loadable), one
// lane per location.

#include "bench_common.hpp"
#include "algorithms/p_algorithms.hpp"
#include "containers/p_array.hpp"
#include "runtime/task_graph.hpp"
#include "views/views.hpp"

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

using namespace stapl;

namespace {

std::chrono::microseconds const kUnit{200}; ///< latency per work unit

/// Work units of `chunks` Zipf(s=1)-sized chunks totalling ~`total`.
std::vector<std::size_t> zipf_sizes(std::size_t chunks, std::size_t total)
{
  double h = 0.0;
  for (std::size_t r = 0; r < chunks; ++r)
    h += 1.0 / static_cast<double>(r + 1);
  std::vector<std::size_t> sizes(chunks);
  for (std::size_t r = 0; r < chunks; ++r) {
    double const w = static_cast<double>(total) / h /
                     static_cast<double>(r + 1);
    sizes[r] = static_cast<std::size_t>(w) + 1;
  }
  return sizes;
}

struct sched_result {
  double seconds = 0.0;
  std::uint64_t stolen = 0;
  std::uint64_t steal_fail = 0;
};

/// Runs one graph of latency-bound chunk tasks with the given owner per
/// chunk; returns wall seconds (max over locations) and steal counters.
sched_result run_chunks(std::vector<std::size_t> const& sizes,
                        std::vector<location_id> const& owner, bool steal)
{
  sched_result res;
  task_graph<char> tg;
  tg.set_stealing(steal);
  for (std::size_t r = 0; r < sizes.size(); ++r) {
    std::size_t const units = sizes[r];
    task_options stealable;
    stealable.stealable = true;
    stealable.weight = units; // the descriptor byte-estimate analogue
    tg.add_task(
        owner[r],
        [units](std::vector<char> const&, char const&) {
          // One latency unit at a time, polling in between — like a real
          // latency-bound chunk whose remote reads drive the RMI layer, so
          // a loaded location keeps granting steals mid-chunk.
          for (std::size_t u = 0; u < units; ++u) {
            std::this_thread::sleep_for(kUnit);
            rmi_poll();
          }
          return char{};
        },
        {}, stealable);
  }
  res.seconds = bench::timed_kernel([&] { tg.execute(); });
  auto const stats = tg.global_stats();
  res.stolen = stats.tasks_stolen;
  res.steal_fail = stats.steal_fail;
  return res;
}

struct locality_result {
  double seconds = 0.0;
  std::uint64_t from_warm = 0;  ///< thief executions of the warm victim's tasks
  std::uint64_t from_cold = 0;  ///< thief executions of other victims' tasks
};

/// Cache-warm vs cold steals: location 0 idles while every other location
/// owns `per_victim` latency-bound chunks; with `hints`, the *last*
/// location's chunks are annotated cached-at-0 — deliberately the victim
/// the load/id tie-break would probe last, so any warm-share shift is the
/// hint's doing.  Each task returns the location that executed it, so
/// owners can report where their work went.
locality_result run_locality(std::size_t per_victim, std::size_t units,
                             bool hints)
{
  location_id const warm_victim = num_locations() - 1;
  locality_result res;
  task_graph<long> tg;
  using tid = task_graph<long>::task_id;
  std::vector<tid> mine;
  for (location_id v = 1; v < num_locations(); ++v) {
    task_options opts;
    opts.stealable = true;
    if (hints && v == warm_victim)
      opts.cached_at = 0;
    for (std::size_t k = 0; k < per_victim; ++k) {
      tid const t = tg.add_task(
          v,
          [units](std::vector<long> const&, char const&) {
            for (std::size_t u = 0; u < units; ++u) {
              std::this_thread::sleep_for(kUnit);
              rmi_poll();
            }
            return static_cast<long>(this_location());
          },
          {}, opts);
      if (v == this_location())
        mine.push_back(t);
    }
  }
  res.seconds = bench::timed_kernel([&] { tg.execute(); });
  std::uint64_t from_warm = 0, from_cold = 0;
  for (tid const t : mine) {
    if (tg.result_of(t) != 0)
      continue; // ran on a victim, not the thief
    (this_location() == warm_victim ? from_warm : from_cold) += 1;
  }
  res.from_warm = allreduce(from_warm, std::plus<>{});
  res.from_cold = allreduce(from_cold, std::plus<>{});
  return res;
}

} // namespace

int main(int argc, char** argv)
{
  bench::init(argc, argv);
  bool locality_mode = false;
  bool spawn_mode = false;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--locality")
      locality_mode = true;
    if (std::string_view(argv[i]) == "--spawn")
      spawn_mode = true;
    if (std::string_view(argv[i]) == "--trace" && i + 1 < argc)
      trace_path = argv[++i];
  }
  std::printf("# Task-graph executor — work stealing on imbalanced "
              "(Zipf-sized) chunks\n");

  std::size_t const chunks = 32;
  std::size_t const total_units = 1200 * bench::scale();

  bench::table_header("Zipf head on location 0 (steal recovery)",
                      {"locations", "static_s", "steal_s", "recovery",
                       "stolen", "steal_fail"});
  for (unsigned p : {2u, 4u, 8u}) {
    std::atomic<double> ts{0}, tw{0};
    std::atomic<std::uint64_t> stolen{0}, fail{0};
    execute(p, [&] {
      auto const sizes = zipf_sizes(chunks, total_units);
      // Block deal: ranks 0..C/P-1 (the Zipf head) land on location 0.
      std::vector<location_id> owner(chunks);
      std::size_t const per = chunks / num_locations();
      for (std::size_t r = 0; r < chunks; ++r)
        owner[r] = static_cast<location_id>(
            std::min<std::size_t>(r / per, num_locations() - 1));

      auto const stat = run_chunks(sizes, owner, false);
      auto const dyn = run_chunks(sizes, owner, true);
      if (this_location() == 0) {
        ts.store(stat.seconds);
        tw.store(dyn.seconds);
        stolen.store(dyn.stolen);
        fail.store(dyn.steal_fail);
      }
    });
    bench::cell(static_cast<std::size_t>(p));
    bench::cell(ts.load());
    bench::cell(tw.load());
    bench::cell(tw.load() > 0 ? ts.load() / tw.load() : 0.0);
    bench::cell(static_cast<std::size_t>(stolen.load()));
    bench::cell(static_cast<std::size_t>(fail.load()));
    bench::endrow();
  }

  bench::table_header("balanced chunks (scheduler overhead guard)",
                      {"locations", "static_s", "steal_s", "ratio"});
  for (unsigned p : bench::default_locations) {
    std::atomic<double> ts{0}, tw{0};
    execute(p, [&] {
      std::size_t const balanced_chunks = 8 * num_locations();
      std::vector<std::size_t> sizes(balanced_chunks,
                                     total_units / balanced_chunks + 1);
      std::vector<location_id> owner(balanced_chunks);
      for (std::size_t r = 0; r < balanced_chunks; ++r)
        owner[r] = static_cast<location_id>(r % num_locations());
      auto const stat = run_chunks(sizes, owner, false);
      auto const dyn = run_chunks(sizes, owner, true);
      if (this_location() == 0) {
        ts.store(stat.seconds);
        tw.store(dyn.seconds);
      }
    });
    bench::cell(static_cast<std::size_t>(p));
    bench::cell(ts.load());
    bench::cell(tw.load());
    bench::cell(tw.load() > 0 ? ts.load() / tw.load() : 0.0);
    bench::endrow();
  }

  if (locality_mode) {
    // Cache-warm vs cold steals: the warm-victim share of the thief's
    // executions with locality hints on vs off.  With hints the
    // warmth-ordered victim list concentrates the steals on the warm
    // (last) victim, which the load/id tie-break alone would probe last.
    bench::table_header("--locality: cache-warm vs cold steals "
                        "(thief=loc 0, warm victim=last loc)",
                        {"locations", "hinted_s", "cold_s", "warm_share_hint",
                         "warm_share_cold"});
    for (unsigned p : {3u, 4u, 8u}) {
      std::atomic<double> th{0}, tc{0}, sh{0}, sc{0};
      execute(p, [&] {
        std::size_t const per_victim = 12;
        std::size_t const units = 4 * bench::scale();
        auto const hinted = run_locality(per_victim, units, true);
        auto const cold = run_locality(per_victim, units, false);
        auto share = [](locality_result const& r) {
          auto const total = r.from_warm + r.from_cold;
          return total == 0 ? 0.0
                            : static_cast<double>(r.from_warm) /
                                  static_cast<double>(total);
        };
        if (this_location() == 0) {
          th.store(hinted.seconds);
          tc.store(cold.seconds);
          sh.store(share(hinted));
          sc.store(share(cold));
        }
      });
      bench::cell(static_cast<std::size_t>(p));
      bench::cell(th.load());
      bench::cell(tc.load());
      bench::cell(sh.load());
      bench::cell(sc.load());
      bench::endrow();
    }
  }

  if (spawn_mode) {
    // The stealable spawn path on dense integral-GID chunks: every chunk
    // of an aligned array view is one contiguous run, so the wire-form
    // exchange plus run-encoded payloads collapse the O(elements)
    // descriptor allgather of the pre-split scheme to O(chunks)
    // metadata.  full_bytes reconstructs what that scheme would have
    // shipped (raw GID vectors + metadata to each of the P-1 peers);
    // wire_bytes is the measured spawn_bytes counter.
    bench::table_header("--spawn: metadata-only descriptor exchange "
                        "(dense integral-GID chunks)",
                        {"locations", "full_bytes", "wire_bytes",
                         "reduction", "spawn_s"});
    for (unsigned p : {2u, 4u, 8u}) {
      std::atomic<std::uint64_t> fullb{0}, wireb{0};
      std::atomic<double> sp{0};
      execute(p, [&] {
        std::size_t const n = 2048 * num_locations() * bench::scale();
        p_array<long> pa(n, 1);
        array_1d_view v(pa);
        exec_policy pol;
        pol.grain = 128;
        pol.stealable = true;
        std::uint64_t full = 0;
        for (auto const& d : v.chunks(pol.grain))
          full += packed_size(d.gids.to_vector()) + packed_size(d.wire());
        full *= num_locations() - 1;
        // The chunk body is one add: wall time is spawn exchange + graph
        // machinery, i.e. the per-spawn overhead the split removes.
        double const sec = bench::timed_kernel(
            [&] { p_for_each(v, [](long& x) { x += 1; }, pol); });
        auto const spawn =
            allreduce(pa.epoch_task_stats().spawn_bytes,
                      std::plus<std::uint64_t>{});
        auto const full_total =
            allreduce(full, std::plus<std::uint64_t>{});
        if (this_location() == 0) {
          fullb.store(full_total);
          wireb.store(spawn);
          sp.store(sec);
        }
      });
      bench::cell(static_cast<std::size_t>(p));
      bench::cell(static_cast<std::size_t>(fullb.load()));
      bench::cell(static_cast<std::size_t>(wireb.load()));
      bench::cell(wireb.load() > 0 ? static_cast<double>(fullb.load()) /
                                         static_cast<double>(wireb.load())
                                   : 0.0);
      bench::cell(sp.load());
      bench::endrow();
    }

    // Repartitioning deal: a balanced view over a blocked array crosses
    // the storage distribution, so some chunks are produced on a
    // location other than their (storage) owner — their run-encoded
    // payloads travel point-to-point instead of riding any collective.
    bench::table_header("--spawn: payload forwarding "
                        "(balanced deal over blocked storage)",
                        {"locations", "payload_fwds", "spawn_bytes",
                         "spawn_s"});
    for (unsigned p : {2u, 4u, 8u}) {
      std::atomic<std::uint64_t> fwds{0}, bytes{0};
      std::atomic<double> sp{0};
      execute(p, [&] {
        std::size_t const n = 2048 * num_locations() * bench::scale();
        p_array<long> pa(n, 1);
        balanced_view bv(pa, 4 * num_locations());
        exec_policy pol;
        pol.grain = 128;
        pol.stealable = true;
        double const sec = bench::timed_kernel(
            [&] { p_for_each(bv, [](long& x) { x += 1; }, pol); });
        auto const fw =
            allreduce(pa.epoch_task_stats().payload_forwards,
                      std::plus<std::uint64_t>{});
        auto const sb = allreduce(pa.epoch_task_stats().spawn_bytes,
                                  std::plus<std::uint64_t>{});
        if (this_location() == 0) {
          fwds.store(fw);
          bytes.store(sb);
          sp.store(sec);
        }
      });
      bench::cell(static_cast<std::size_t>(p));
      bench::cell(static_cast<std::size_t>(fwds.load()));
      bench::cell(static_cast<std::size_t>(bytes.load()));
      bench::cell(sp.load());
      bench::endrow();
    }
  }

  if (!trace_path.empty()) {
    // One traced P=4 Zipf steal run: the probe→grant→run chains, fence and
    // task_run scopes land in per-location Perfetto lanes.  A smaller
    // workload than the timing tables — the trace is for inspection, not
    // measurement.
    trace::enable();
    execute(4, [&] {
      auto const sizes = zipf_sizes(chunks, 200 * bench::scale());
      std::vector<location_id> owner(chunks);
      std::size_t const per = chunks / num_locations();
      for (std::size_t r = 0; r < chunks; ++r)
        owner[r] = static_cast<location_id>(
            std::min<std::size_t>(r / per, num_locations() - 1));
      (void)run_chunks(sizes, owner, true);
    });
    bool const ok = trace::dump(trace_path);
    std::printf("# %s %s (%llu events, %llu dropped)\n",
                ok ? "wrote" : "FAILED to write", trace_path.c_str(),
                static_cast<unsigned long long>(trace::total_events()),
                static_cast<unsigned long long>(trace::total_dropped()));
    trace::disable();
    trace::clear();
  }
  return 0;
}
