// Fig. 30: pArray set_element (async), get_element (sync) and
// split_phase_get_element for varying location counts.  Expected shape:
// async writes stay cheap as P grows (aggregated one-way traffic), sync
// reads pay a round trip, split-phase recovers most of the gap by
// overlapping.

#include "bench_common.hpp"
#include "containers/p_array.hpp"

#include <atomic>

int main(int argc, char** argv)
{
  bench::init(argc, argv);
  using namespace stapl;
  std::printf("# Fig. 30 — set vs get vs split-phase (seconds for N ops)\n");
  bench::table_header("methods vs locations",
                      {"locations", "set_async", "get_sync", "split_phase"});

  std::size_t const ops = 2'000 * bench::scale();
  for (unsigned p : bench::default_locations) {
    std::atomic<double> ts{0}, tg{0}, tsp{0};
    execute(p, [&] {
      std::size_t const n = 1'000 * num_locations();
      p_array<long> pa(n);
      // Target the next location's block: all-remote when P > 1.
      gid1d const base = 1'000 * ((this_location() + 1) % num_locations());

      double t = bench::timed_kernel([&] {
        for (std::size_t i = 0; i < ops; ++i)
          pa.set_element(base + i % 1'000, static_cast<long>(i));
      });
      if (this_location() == 0)
        ts.store(t);

      t = bench::timed_kernel([&] {
        long sink = 0;
        for (std::size_t i = 0; i < ops; ++i)
          sink += pa.get_element(base + i % 1'000);
        if (sink == std::numeric_limits<long>::min())
          std::abort();
      });
      if (this_location() == 0)
        tg.store(t);

      t = bench::timed_kernel([&] {
        std::vector<pc_future<long>> futs;
        futs.reserve(128);
        long sink = 0;
        for (std::size_t i = 0; i < ops; ++i) {
          futs.push_back(pa.split_phase_get_element(base + i % 1'000));
          if (futs.size() == 128) {
            for (auto& f : futs)
              sink += f.get();
            futs.clear();
          }
        }
        for (auto& f : futs)
          sink += f.get();
        if (sink == std::numeric_limits<long>::min())
          std::abort();
      });
      if (this_location() == 0)
        tsp.store(t);
    });
    bench::cell(static_cast<std::size_t>(p));
    bench::cell(ts.load());
    bench::cell(tg.load());
    bench::cell(tsp.load());
    bench::endrow();
  }
  return 0;
}
