// Ablation benches for the design choices DESIGN.md calls out:
//   (a) transport: queue (message passing) vs direct (locked shared-memory
//       execution) — the Ch. VI thread-safety cost trade-off;
//   (b) aggregation factor sweep — the Ch. III.B aggregation optimization;
//   (c) thread-safety manager: default vs hashed locks under direct
//       transport.

#include "bench_common.hpp"
#include "containers/p_array.hpp"

#include <atomic>

int main(int argc, char** argv)
{
  bench::init(argc, argv);
  using namespace stapl;
  std::size_t const ops = 20'000 * bench::scale();

  std::printf("# Ablation (a) — transport: queue vs direct (P=4)\n");
  bench::table_header("remote apply_set x ops",
                      {"transport", "seconds", "Mops"});
  for (int ti = 0; ti < 2; ++ti) {
    runtime_config cfg;
    cfg.num_locations = 4;
    cfg.transport = ti == 0 ? transport_kind::queue : transport_kind::direct;
    std::atomic<double> t{0};
    execute(cfg, [&] {
      p_array<long> pa(4'000);
      gid1d const remote = 1'000 * ((this_location() + 1) % num_locations());
      double const tt = bench::timed_kernel([&] {
        for (std::size_t i = 0; i < ops; ++i)
          pa.apply_set(remote + i % 1'000, [](long& x) { ++x; });
      });
      if (this_location() == 0)
        t.store(tt);
    });
    bench::cell(std::string(ti == 0 ? "queue" : "direct"));
    bench::cell(t.load());
    bench::cell(bench::mops(ops, t.load()));
    bench::endrow();
  }

  std::printf("\n# Ablation (b) — aggregation factor sweep (P=2)\n");
  bench::table_header("async writes", {"aggregation", "seconds", "messages"});
  for (unsigned agg : {1u, 4u, 16u, 64u, 256u}) {
    runtime_config cfg;
    cfg.num_locations = 2;
    cfg.aggregation = agg;
    std::atomic<double> t{0};
    std::atomic<std::uint64_t> msgs{0};
    execute(cfg, [&] {
      p_array<long> pa(2'000);
      gid1d const remote = 1'000 * ((this_location() + 1) % num_locations());
      auto kernel = [&] {
        for (std::size_t i = 0; i < ops; ++i)
          pa.set_element(remote + i % 1'000, 1);
      };
      kernel(); // warmup
      rmi_fence();
      metrics::reset_all(); // every stats family, not just location_stats
      double const tt = bench::timed_kernel(kernel);
      auto const m = allreduce(my_stats().msgs_sent, std::plus<>{});
      if (this_location() == 0) {
        t.store(tt);
        msgs.store(m);
      }
    });
    bench::cell(static_cast<std::size_t>(agg));
    bench::cell(t.load());
    bench::cell(static_cast<std::size_t>(msgs.load()));
    bench::endrow();
  }

  std::printf("\n# Ablation (c) — locking manager under direct transport\n");
  bench::table_header("concurrent applies (P=4)",
                      {"manager", "seconds"});
  {
    runtime_config cfg;
    cfg.num_locations = 4;
    cfg.transport = transport_kind::direct;
    std::atomic<double> t{0};
    execute(cfg, [&] {
      p_array<long> pa(4'000);
      gid1d const remote = 1'000 * ((this_location() + 1) % num_locations());
      double const tt = bench::timed_kernel([&] {
        for (std::size_t i = 0; i < ops; ++i)
          pa.apply_set(remote + i % 1'000, [](long& x) { ++x; });
      });
      if (this_location() == 0)
        t.store(tt);
    });
    bench::cell(std::string("mutex(default)"));
    bench::cell(t.load());
    bench::endrow();
  }
  {
    struct hashed_traits {
      using bcontainer_type = stapl::vector_bcontainer<long>;
      using mapper_type = stapl::blocked_mapper;
      using ths_manager_type = stapl::hashed_locking_manager<64>;
    };
    runtime_config cfg;
    cfg.num_locations = 4;
    cfg.transport = transport_kind::direct;
    std::atomic<double> t{0};
    execute(cfg, [&] {
      p_array<long, balanced_partition, hashed_traits> pa(4'000);
      gid1d const remote = 1'000 * ((this_location() + 1) % num_locations());
      double const tt = bench::timed_kernel([&] {
        for (std::size_t i = 0; i < ops; ++i)
          pa.apply_set(remote + i % 1'000, [](long& x) { ++x; });
      });
      if (this_location() == 0)
        t.store(tt);
    });
    bench::cell(std::string("hashed<64>"));
    bench::cell(t.load());
    bench::endrow();
  }
  return 0;
}
