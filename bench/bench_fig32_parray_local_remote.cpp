// Fig. 32: pArray local vs remote method invocations for various container
// sizes.  Expected shape: both flat in container size; a large constant gap
// between local and remote per-op cost.

#include "bench_common.hpp"
#include "containers/p_array.hpp"

#include <atomic>

int main(int argc, char** argv)
{
  bench::init(argc, argv);
  using namespace stapl;
  std::printf("# Fig. 32 — local vs remote invocations (P=4, seconds)\n");
  bench::table_header("size sweep", {"N", "local_set", "remote_set",
                                     "local_get", "remote_get"});

  unsigned const p = 4;
  std::size_t const ops = 4'000 * bench::scale();
  for (std::size_t n : {8'000u, 64'000u, 512'000u}) {
    std::atomic<double> tls{0}, trs{0}, tlg{0}, trg{0};
    execute(p, [&] {
      p_array<long> pa(n);
      std::size_t const block = n / num_locations();
      gid1d const local_base = block * this_location();
      gid1d const remote_base = block * ((this_location() + 1) % num_locations());

      double t = bench::timed_kernel([&] {
        for (std::size_t i = 0; i < ops; ++i)
          pa.set_element(local_base + i % block, 1L);
      });
      if (this_location() == 0)
        tls.store(t);
      t = bench::timed_kernel([&] {
        for (std::size_t i = 0; i < ops; ++i)
          pa.set_element(remote_base + i % block, 1L);
      });
      if (this_location() == 0)
        trs.store(t);
      t = bench::timed_kernel([&] {
        long sink = 0;
        for (std::size_t i = 0; i < ops; ++i)
          sink += pa.get_element(local_base + i % block);
        if (sink < 0)
          std::abort();
      });
      if (this_location() == 0)
        tlg.store(t);
      t = bench::timed_kernel([&] {
        long sink = 0;
        for (std::size_t i = 0; i < ops; ++i)
          sink += pa.get_element(remote_base + i % block);
        if (sink < 0)
          std::abort();
      });
      if (this_location() == 0)
        trg.store(t);
    });
    bench::cell(n);
    bench::cell(tls.load());
    bench::cell(trs.load());
    bench::cell(tlg.load());
    bench::cell(trg.load());
    bench::endrow();
  }
  return 0;
}
