// Fig. 59: MapReduce counting the number of occurrences of every word in a
// corpus (paper: Simple English Wikipedia, 1.5 GB; here: a synthetic
// Zipf-distributed corpus exercising the same pHashMap shuffle path).
// Expected shape: near-flat weak scaling; the local combiner cuts shuffle
// traffic by roughly the corpus/vocabulary ratio.

#include "algorithms/map_reduce.hpp"
#include "bench_common.hpp"
#include "containers/p_array.hpp"
#include "views/views.hpp"

#include <atomic>
#include <random>

namespace {

/// Synthetic document of `words` Zipf-distributed words (vocabulary size
/// `vocab`, exponent ~1: word k with probability ~ 1/k).
std::string make_document(std::mt19937& gen, std::size_t words,
                          std::size_t vocab)
{
  // Inverse-CDF sampling over harmonic weights.
  static thread_local std::vector<double> cdf;
  if (cdf.size() != vocab) {
    cdf.assign(vocab, 0.0);
    double acc = 0;
    for (std::size_t k = 0; k < vocab; ++k) {
      acc += 1.0 / static_cast<double>(k + 1);
      cdf[k] = acc;
    }
    for (auto& x : cdf)
      x /= acc;
  }
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::string doc;
  for (std::size_t i = 0; i < words; ++i) {
    auto it = std::lower_bound(cdf.begin(), cdf.end(), u(gen));
    doc += "w" + std::to_string(it - cdf.begin());
    doc += ' ';
  }
  return doc;
}

} // namespace

int main(int argc, char** argv)
{
  bench::init(argc, argv);
  using namespace stapl;
  std::printf("# Fig. 59 — MapReduce word count (Zipf corpus)\n");
  bench::table_header("40 docs x 500 words per loc (seconds)",
                      {"locations", "combiner_on", "combiner_off",
                       "distinct"});

  std::size_t const docs_per_loc = 40;
  std::size_t const words_per_doc = 500 * bench::scale();
  std::size_t const vocab = 2'000;

  for (unsigned p : bench::default_locations) {
    std::atomic<double> ton{0}, toff{0};
    std::atomic<std::size_t> distinct{0};
    execute(p, [&] {
      std::size_t const ndocs = docs_per_loc * num_locations();
      p_array<std::string> corpus(ndocs);
      std::mt19937 gen(5 + this_location());
      corpus.for_each_local([&](gid1d, std::string& d) {
        d = make_document(gen, words_per_doc, vocab);
      });
      rmi_fence();

      {
        p_hash_map<std::string, long> counts;
        double const t = bench::timed_kernel([&] {
          word_count(array_1d_view(corpus), counts, {true});
        });
        if (this_location() == 0) {
          ton.store(t);
          distinct.store(counts.size());
        }
        rmi_fence();
      }
      {
        p_hash_map<std::string, long> counts;
        double const t = bench::timed_kernel([&] {
          word_count(array_1d_view(corpus), counts, {false});
        });
        if (this_location() == 0)
          toff.store(t);
        rmi_fence();
      }
    });
    bench::cell(static_cast<std::size_t>(p));
    bench::cell(ton.load());
    bench::cell(toff.load());
    bench::cell(distinct.load());
    bench::endrow();
  }
  return 0;
}
