// Fig. 56: PageRank on two input meshes of the same vertex count but
// different aspect ratios (paper: 1500x1500 vs 15x150000).  With row-major
// vertex numbering and 1D blocked distribution, the elongated (tall-narrow)
// mesh cuts only ~width edges per location boundary while the square mesh
// cuts ~sqrt(n), so the elongated mesh communicates less per iteration and
// runs faster — the aspect-ratio effect the figure reports.  Total rank
// stays ~1 for both (mass conservation).

#include "algorithms/graph_algorithms.hpp"
#include "bench_common.hpp"
#include "containers/graph_generators.hpp"

#include <atomic>

int main(int argc, char** argv)
{
  bench::init(argc, argv);
  using namespace stapl;
  std::printf("# Fig. 56 — PageRank: square vs elongated mesh\n");
  bench::table_header("20 iterations (seconds)",
                      {"locations", "square", "elongated", "rank_sq",
                       "rank_el"});

  for (unsigned p : bench::default_locations) {
    std::size_t side = 60 * static_cast<std::size_t>(
                                std::sqrt(static_cast<double>(p)));
    side *= bench::scale() == 1 ? 1 : 2;
    std::size_t const n = side * side;
    std::atomic<double> tsq{0}, tel{0}, rsq{0}, rel{0};
    execute(p, [&] {
      {
        p_graph<DIRECTED, NONMULTI, pagerank_property, no_property> g(n);
        generate_mesh(g, side, side); // square
        double const t = bench::timed_kernel([&] { page_rank(g, 20); });
        double const r = total_rank(g);
        if (this_location() == 0) {
          tsq.store(t);
          rsq.store(r);
        }
      }
      {
        // Elongated: tall and narrow (the 15x150000 aspect ratio,
        // transposed into the row-major numbering so strips align).
        std::size_t const cols = 15;
        std::size_t const rows = n / cols;
        p_graph<DIRECTED, NONMULTI, pagerank_property, no_property> g(rows *
                                                                      cols);
        generate_mesh(g, rows, cols); // elongated
        double const t = bench::timed_kernel([&] { page_rank(g, 20); });
        double const r = total_rank(g);
        if (this_location() == 0) {
          tel.store(t);
          rel.store(r);
        }
      }
    });
    bench::cell(static_cast<std::size_t>(p));
    bench::cell(tsq.load());
    bench::cell(tel.load());
    bench::cell(rsq.load());
    bench::cell(rel.load());
    bench::endrow();
  }
  return 0;
}
