#ifndef STAPL_ALGORITHMS_EULER_TOUR_HPP
#define STAPL_ALGORITHMS_EULER_TOUR_HPP

// The Euler tour technique and its applications (dissertation Ch. X.H,
// Figs. 43/44): rooting a tree, vertex levels, and postorder numbering.
//
// The tour is represented as a distributed successor list over arc ids
// (two arcs per tree edge) stored in pArrays; its positions are computed by
// parallel list ranking (pointer jumping), and the applications reduce to
// scatters plus parallel prefix sums — the exact pipeline the dissertation
// builds from pList/pArray machinery.
//
// Trees are the implicit binary trees of the Fig. 43/44 evaluation
// (vertices [0, n), children of v are 2v+1 / 2v+2); the arc numbering is
// closed-form: the edge to child c has index c-1, its downward arc id
// 2(c-1), its upward arc id 2(c-1)+1.

#include <cassert>
#include <cstddef>
#include <unordered_map>
#include <vector>

#include "../containers/p_array.hpp"
#include "p_algorithms.hpp"

namespace stapl {

namespace et_detail {

[[nodiscard]] inline std::size_t parent_of(std::size_t v) noexcept
{
  return (v - 1) / 2;
}
[[nodiscard]] inline std::size_t down_arc(std::size_t child) noexcept
{
  return 2 * (child - 1);
}
[[nodiscard]] inline std::size_t up_arc(std::size_t child) noexcept
{
  return 2 * (child - 1) + 1;
}
/// The child endpoint of an arc.
[[nodiscard]] inline std::size_t arc_child(std::size_t a) noexcept
{
  return a / 2 + 1;
}
[[nodiscard]] inline bool is_down(std::size_t a) noexcept
{
  return a % 2 == 0;
}

/// Euler-tour successor of arc `a` in the implicit binary tree of n
/// vertices; invalid_gid terminates the tour (arc returning to the root).
[[nodiscard]] inline std::size_t et_successor(std::size_t a, std::size_t n)
{
  std::size_t const c = arc_child(a);
  if (is_down(a)) {
    // Arrived at c going down: continue to c's left-most child, or turn
    // around at a leaf.
    if (2 * c + 1 < n)
      return down_arc(2 * c + 1);
    return up_arc(c);
  }
  // Arrived at parent(c) going up: continue to c's right sibling if it
  // exists and c was the left child, else go further up.
  std::size_t const p = parent_of(c);
  if (c == 2 * p + 1 && 2 * p + 2 < n)
    return down_arc(2 * p + 2);
  if (p == 0)
    return invalid_gid; // tour complete
  return up_arc(p);
}

} // namespace et_detail

/// Batched distributed gather: values[k] = view of arr at indices[k], with
/// one synchronous request per owning location instead of one per element.
template <typename C>
[[nodiscard]] std::vector<typename C::value_type>
p_gather(C& arr, std::vector<gid1d> const& indices)
{
  using T = typename C::value_type;
  std::vector<T> out(indices.size());
  // Group queried indices per owner location.
  std::unordered_map<location_id, std::vector<std::size_t>> per_owner;
  for (std::size_t k = 0; k < indices.size(); ++k)
    per_owner[arr.lookup(indices[k])].push_back(k);

  for (auto& [owner, ks] : per_owner) {
    if (owner == this_location()) {
      for (auto k : ks)
        out[k] = arr.local_element(indices[k]);
      continue;
    }
    std::vector<gid1d> gids;
    gids.reserve(ks.size());
    for (auto k : ks)
      gids.push_back(indices[k]);
    auto vals = sync_rmi<C>(owner, arr.get_handle(),
                            [gids](C& a) {
                              std::vector<T> vs;
                              vs.reserve(gids.size());
                              for (auto g : gids)
                                vs.push_back(a.local_element(g));
                              return vs;
                            });
    for (std::size_t j = 0; j < ks.size(); ++j)
      out[ks[j]] = std::move(vals[j]);
  }
  return out;
}

/// Builds the Euler-tour successor list of the implicit binary tree with n
/// vertices into `succ` (size 2(n-1); invalid_gid = end).  Collective.
inline void build_euler_tour(p_array<std::size_t>& succ, std::size_t n)
{
  assert(succ.size() == 2 * (n - 1));
  succ.for_each_local([n](gid1d a, std::size_t& s) {
    s = et_detail::et_successor(a, n);
  });
  rmi_fence();
}

/// Parallel list ranking by pointer jumping: pos[i] = position of arc i in
/// the tour (0-based from the tour head).  O(len log len) work, log len
/// rounds of batched remote gathers — the classic technique the
/// dissertation's Euler tour implementation relies on.  Collective.
inline void list_rank(p_array<std::size_t>& succ, p_array<long>& pos)
{
  std::size_t const len = succ.size();
  assert(pos.size() == len);

  // dist[i] = number of arcs after i in the tour (0 for the last arc).
  p_array<long> dist(len);
  p_array<std::size_t> nxt_a(len), nxt_b(len);
  p_array<long> dst_a(len), dst_b(len);

  succ.for_each_local([&](gid1d i, std::size_t& s) {
    nxt_a.local_element(i) = s;
    dst_a.local_element(i) = s == invalid_gid ? 0 : 1;
  });
  rmi_fence();

  p_array<std::size_t>* cur_n = &nxt_a;
  p_array<std::size_t>* new_n = &nxt_b;
  p_array<long>* cur_d = &dst_a;
  p_array<long>* new_d = &dst_b;

  std::size_t rounds = 0;
  for (std::size_t span = 1; span < len; span *= 2)
    ++rounds;

  for (std::size_t r = 0; r < rounds; ++r) {
    // Batch-gather succ[succ[i]] and dist[succ[i]] for all local i.
    auto const local = cur_n->local_gids();
    std::vector<gid1d> targets;
    std::vector<std::size_t> which;
    for (std::size_t k = 0; k < local.size(); ++k) {
      std::size_t const s = cur_n->local_element(local[k]);
      if (s != invalid_gid) {
        targets.push_back(s);
        which.push_back(k);
      }
    }
    auto const s2 = p_gather(*cur_n, targets);
    auto const d2 = p_gather(*cur_d, targets);

    // Write the doubled pointers into the fresh buffers.
    for (auto g : local) {
      new_n->local_element(g) = cur_n->local_element(g);
      new_d->local_element(g) = cur_d->local_element(g);
    }
    for (std::size_t j = 0; j < which.size(); ++j) {
      gid1d const g = local[which[j]];
      new_d->local_element(g) = cur_d->local_element(g) + d2[j];
      new_n->local_element(g) = s2[j];
    }
    rmi_fence();
    std::swap(cur_n, new_n);
    std::swap(cur_d, new_d);
  }

  // Position from the head = (len - 1) - distance-to-end.
  pos.for_each_local([&](gid1d i, long& p) {
    p = static_cast<long>(len) - 1 - cur_d->local_element(i);
  });
  rmi_fence();
}

/// Result arrays of the Euler tour applications, indexed by vertex.
struct euler_tour_results {
  explicit euler_tour_results(std::size_t n)
      : parent(n), level(n), postorder(n)
  {}
  p_array<std::size_t> parent;  ///< parent[v]; parent[root] == root
  p_array<long> level;          ///< depth from the root (root == 0)
  p_array<long> postorder;      ///< 1-based postorder number
};

/// Runs the full Euler tour pipeline (Fig. 44 applications): tour
/// construction, list ranking, then rooting / levels / postorder numbering
/// via scatters + parallel prefix sums.  Collective.
inline void euler_tour_applications(std::size_t n, euler_tour_results& out)
{
  assert(n >= 2);
  std::size_t const len = 2 * (n - 1);
  p_array<std::size_t> succ(len);
  p_array<long> pos(len);
  build_euler_tour(succ, n);
  list_rank(succ, pos);

  // Scatter arc weights by tour position:
  //   levels:    down = +1, up = -1  (prefix sum at down arc == depth)
  //   postorder: up = 1, down = 0    (prefix sum at up arc == 1-based number)
  p_array<long> lvl_w(len), post_w(len);
  pos.for_each_local([&](gid1d a, long& p) {
    bool const down = et_detail::is_down(a);
    lvl_w.set_element(static_cast<gid1d>(p), down ? 1 : -1);
    post_w.set_element(static_cast<gid1d>(p), down ? 0 : 1);
  });
  rmi_fence();

  p_array<long> lvl_ps(len), post_ps(len);
  p_partial_sum(lvl_w, lvl_ps);
  p_partial_sum(post_w, post_ps);

  // Rooting: parent known from the arc structure; verified by rank order
  // (down arc precedes up arc in a correct tour).
  out.parent.for_each_local([&](gid1d v, std::size_t& p) {
    p = v == 0 ? 0 : et_detail::parent_of(v);
  });
  // Root values.
  if (out.level.is_local(0))
    out.level.local_element(0) = 0;
  if (out.postorder.is_local(0))
    out.postorder.local_element(0) = static_cast<long>(n);
  rmi_fence();

  // Gather prefix values at each vertex's down/up arc positions.
  {
    auto const local = out.level.local_gids();
    std::vector<gid1d> down_pos_idx, up_pos_idx, verts;
    for (auto v : local)
      if (v != 0) {
        verts.push_back(v);
        down_pos_idx.push_back(et_detail::down_arc(v));
        up_pos_idx.push_back(et_detail::up_arc(v));
      }
    auto const dpos = p_gather(pos, down_pos_idx);
    auto const upos = p_gather(pos, up_pos_idx);
    std::vector<gid1d> dp(dpos.size()), up(upos.size());
    for (std::size_t k = 0; k < dpos.size(); ++k) {
      dp[k] = static_cast<gid1d>(dpos[k]);
      up[k] = static_cast<gid1d>(upos[k]);
    }
    auto const lvls = p_gather(lvl_ps, dp);
    auto const posts = p_gather(post_ps, up);
    for (std::size_t k = 0; k < verts.size(); ++k) {
      out.level.local_element(verts[k]) = lvls[k];
      out.postorder.local_element(verts[k]) = posts[k];
    }
  }
  rmi_fence();
}

} // namespace stapl

#endif
