#ifndef STAPL_ALGORITHMS_MAP_REDUCE_HPP
#define STAPL_ALGORITHMS_MAP_REDUCE_HPP

// MapReduce over pViews into associative pContainers (dissertation
// Ch. XII.C.1, Fig. 59: counting word occurrences across a corpus).
//
// Each location maps its local elements to (key, value) pairs, pre-combines
// them in a location-local table (the classic combiner optimization), and
// flushes the combined pairs into a distributed pHashMap with asynchronous
// accumulate-updates.  The shuffle is therefore one asynchronous RMI per
// distinct (location, key) rather than per emitted pair.

#include <cstddef>
#include <unordered_map>
#include <utility>
#include <vector>

#include "../containers/p_associative.hpp"
#include "../runtime/runtime.hpp"

namespace stapl {

/// options for map_reduce_into
struct map_reduce_options {
  bool use_combiner = true; ///< pre-combine locally before the shuffle
};

/// Runs MapReduce: for every element of `view`, `mapper(element, emit)` may
/// call `emit(key, value)` any number of times; values of equal keys are
/// folded with `reducer` into `out`.  Collective.
template <typename View, typename Mapper, typename Reducer, typename K,
          typename V, typename Hash>
void map_reduce_into(View view, Mapper mapper, Reducer reducer,
                     p_hash_map<K, V, Hash>& out,
                     map_reduce_options opts = {})
{
  auto flush = [&](K const& k, V const& v) {
    out.apply_async(k, [v, reducer](V& cur) { cur = reducer(cur, v); });
  };

  if (opts.use_combiner) {
    std::unordered_map<K, V, Hash> combined;
    auto emit = [&](K k, V v) {
      auto [it, inserted] = combined.emplace(std::move(k), v);
      if (!inserted)
        it->second = reducer(it->second, v);
    };
    for (auto g : view.local_gids())
      mapper(view.read(g), emit);
    for (auto const& [k, v] : combined)
      flush(k, v);
  } else {
    auto emit = [&](K k, V v) { flush(k, v); };
    for (auto g : view.local_gids())
      mapper(view.read(g), emit);
  }
  rmi_fence();
}

/// Word count (the Fig. 59 workload): counts occurrences of every word of a
/// view of strings into `out`.  Collective.
template <typename View, typename Hash>
void word_count(View corpus, p_hash_map<std::string, long, Hash>& out,
                map_reduce_options opts = {})
{
  map_reduce_into(
      std::move(corpus),
      [](std::string const& text, auto emit) {
        std::size_t i = 0;
        while (i < text.size()) {
          while (i < text.size() && text[i] == ' ')
            ++i;
          std::size_t const start = i;
          while (i < text.size() && text[i] != ' ')
            ++i;
          if (i > start)
            emit(text.substr(start, i - start), 1L);
        }
      },
      [](long a, long b) { return a + b; }, out, opts);
}

} // namespace stapl

#endif
