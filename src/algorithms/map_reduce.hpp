#ifndef STAPL_ALGORITHMS_MAP_REDUCE_HPP
#define STAPL_ALGORITHMS_MAP_REDUCE_HPP

// MapReduce over pViews into associative pContainers (dissertation
// Ch. XII.C.1, Fig. 59: counting word occurrences across a corpus).
//
// The map phase runs as chunk tasks on the task-graph executor
// (runtime/task_graph.hpp), coarsened through the view's chunk
// descriptors (runtime/locality.hpp) like every chunked factory —
// including the metadata-only spawn exchange: stealable map phases
// replicate chunk wire forms only, never the GID runs.  Each
// chunk maps its elements to (key, value) pairs and pre-combines them in
// a location-local table (the classic combiner optimization) — one table
// per location, shared by all of that location's chunk tasks, and by any
// chunk a thief runs on its own replica, so stealing redistributes
// combine work without changing the result.  After the map graph drains,
// each location flushes its combined
// pairs into the distributed pHashMap with asynchronous
// accumulate-updates: the shuffle is one asynchronous RMI per distinct
// (location, key) rather than per emitted pair.

#include <cstddef>
#include <unordered_map>
#include <utility>
#include <vector>

#include "../containers/p_associative.hpp"
#include "../runtime/runtime.hpp"
#include "../runtime/task_graph.hpp"

namespace stapl {

/// options for map_reduce_into
struct map_reduce_options {
  bool use_combiner = true; ///< pre-combine locally before the shuffle
  exec_policy policy = {};  ///< chunking/stealing of the map phase
};

/// Runs MapReduce: for every element of `view`, `mapper(element, emit)` may
/// call `emit(key, value)` any number of times; values of equal keys are
/// folded with `reducer` into `out`.  Collective.
template <typename View, typename Mapper, typename Reducer, typename K,
          typename V, typename Hash>
void map_reduce_into(View view, Mapper mapper, Reducer reducer,
                     p_hash_map<K, V, Hash>& out,
                     map_reduce_options opts = {})
{
  auto flush = [&out, reducer](K const& k, V const& v) {
    out.apply_async(k, [v, reducer](V& cur) { cur = reducer(cur, v); });
  };
  auto shared_mapper = std::make_shared<Mapper>(std::move(mapper));

  if (opts.use_combiner) {
    // One combiner table per location (chunk tasks executing here — owned
    // or stolen — all fold into it; it is flushed below once the map graph
    // has drained everywhere).
    std::unordered_map<K, V, Hash> combined;
    tg_detail::chunked_for_each_gid(
        view, opts.policy,
        [shared_mapper, view, &combined,
         reducer](typename View::gid_type g) mutable {
          (*shared_mapper)(view.read(g), [&](K k, V v) {
            auto [it, inserted] = combined.emplace(std::move(k), v);
            if (!inserted)
              it->second = reducer(it->second, v);
          });
        });
    for (auto const& [k, v] : combined)
      flush(k, v);
  } else {
    tg_detail::chunked_for_each_gid(
        view, opts.policy,
        [shared_mapper, view, flush](typename View::gid_type g) mutable {
          (*shared_mapper)(view.read(g),
                           [&](K k, V v) { flush(k, v); });
        });
  }
  rmi_fence();
}

/// Word count (the Fig. 59 workload): counts occurrences of every word of a
/// view of strings into `out`.  Collective.
template <typename View, typename Hash>
void word_count(View corpus, p_hash_map<std::string, long, Hash>& out,
                map_reduce_options opts = {})
{
  map_reduce_into(
      std::move(corpus),
      [](std::string const& text, auto emit) {
        std::size_t i = 0;
        while (i < text.size()) {
          while (i < text.size() && text[i] == ' ')
            ++i;
          std::size_t const start = i;
          while (i < text.size() && text[i] != ' ')
            ++i;
          if (i > start)
            emit(text.substr(start, i - start), 1L);
        }
      },
      [](long a, long b) { return a + b; }, out, opts);
}

} // namespace stapl

#endif
