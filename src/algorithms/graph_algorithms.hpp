#ifndef STAPL_ALGORITHMS_GRAPH_ALGORITHMS_HPP
#define STAPL_ALGORITHMS_GRAPH_ALGORITHMS_HPP

// pGraph algorithms (dissertation Ch. XI.F.3-4): level-synchronous BFS,
// connected components by label propagation, find_sources (the Fig. 51
// address-translation stressor) and PageRank (Fig. 56).
//
// All algorithms are SPMD collectives built from asynchronous vertex methods
// plus fences, i.e. the asynchronous-only style the RTS scales with
// (Ch. III.B: "it becomes essential for algorithms to be implemented using
// only asynchronous RMIs").

#include <algorithm>
#include <cstddef>
#include <functional>
#include <vector>

#include "../containers/p_graph.hpp"
#include "../runtime/runtime.hpp"

namespace stapl {

/// Vertex property for BFS (level == -1 means unvisited).
struct bfs_property {
  long level = -1;
  void define_type(typer& t) { t.member(level); }
};

/// Vertex property for connected components.
struct cc_property {
  std::size_t component = 0;
  void define_type(typer& t) { t.member(component); }
};

/// Vertex property for find_sources.
struct indegree_property {
  std::size_t indegree = 0;
  void define_type(typer& t) { t.member(indegree); }
};

/// Vertex property for PageRank.
struct pagerank_property {
  double rank = 0.0;
  double incoming = 0.0;
  void define_type(typer& t)
  {
    t.member(rank);
    t.member(incoming);
  }
};

namespace graph_algo_detail {

/// Per-location frontier buffer shared between the algorithm driver and the
/// asynchronous visit handlers (reached through its registered handle).
struct frontier_buffer : p_object {
  std::vector<vertex_descriptor> next;
};

} // namespace graph_algo_detail

/// Level-synchronous breadth-first traversal from `source`; fills
/// VP::level with the BFS level.  Returns the number of visited vertices.
/// Requires VP to provide a `level` member (e.g. bfs_property).  Collective.
template <typename G>
std::size_t bfs_levels(G& g, vertex_descriptor source)
{
  using graph_algo_detail::frontier_buffer;
  frontier_buffer frontier;
  rmi_handle const fh = frontier.get_handle();
  rmi_handle const gh = g.get_handle();

  // Reset levels.
  g.for_each_local_vertex([](vertex_descriptor, auto& rec) {
    rec.property.level = -1;
  });
  rmi_fence();

  // Seed.
  if (g.is_local(source)) {
    g.apply_vertex(source, [](auto& rec) { rec.property.level = 0; });
    frontier.next.push_back(source);
  }
  rmi_fence();

  std::size_t visited = allreduce(frontier.next.size(), std::plus<>{});
  long level = 0;
  while (allreduce(frontier.next.size(), std::plus<>{}) != 0) {
    std::vector<vertex_descriptor> current;
    current.swap(frontier.next);
    ++level;
    for (auto v : current) {
      auto const targets = g.out_edges(v); // local: v is in our frontier
      for (auto t : targets) {
        g.apply_vertex(t, [level, t, fh](auto& rec) {
          if (rec.property.level == -1) {
            rec.property.level = level;
            // Executes on t's owner: enqueue into that location's frontier.
            get_registered_object<frontier_buffer>(fh)->next.push_back(t);
          }
        });
      }
    }
    rmi_fence();
    visited += allreduce(frontier.next.size(), std::plus<>{});
  }
  (void)gh;
  rmi_fence();
  return visited;
}

/// Connected components by iterative min-label propagation over an
/// *undirected* pGraph.  Fills VP::component with the component
/// representative (minimum vertex descriptor).  Returns the number of
/// components.  Collective.
template <typename G>
std::size_t connected_components(G& g)
{
  static_assert(!G::is_directed,
                "connected_components expects an undirected pGraph");
  // Init labels to own descriptor.
  g.for_each_local_vertex([](vertex_descriptor v, auto& rec) {
    rec.property.component = v;
  });
  rmi_fence();

  struct change_flag : p_object {
    bool changed = false;
  } flag;
  rmi_handle const fh = flag.get_handle();

  for (;;) {
    flag.changed = false;
    rmi_fence();
    g.for_each_local_vertex([&](vertex_descriptor, auto& rec) {
      std::size_t const label = rec.property.component;
      for (auto const& e : rec.edges)
        g.apply_vertex(e.target, [label, fh](auto& trec) {
          if (label < trec.property.component) {
            trec.property.component = label;
            get_registered_object<change_flag>(fh)->changed = true;
          }
        });
    });
    rmi_fence();
    bool const any =
        allreduce(static_cast<int>(flag.changed), std::plus<>{}) != 0;
    if (!any)
      break;
  }

  // Count distinct representatives: a vertex whose label equals itself.
  std::size_t local = 0;
  g.for_each_local_vertex([&](vertex_descriptor v, auto& rec) {
    if (rec.property.component == v)
      ++local;
  });
  rmi_fence();
  return allreduce(local, std::plus<>{});
}

/// Vertices with in-degree zero in a directed pGraph (Fig. 51).  Every
/// vertex asynchronously bumps its targets' in-degree counters — one remote
/// method per edge, which is why this kernel magnifies the address
/// translation cost differences between partitions.  Collective; returns
/// the local sources on each location.
template <typename G>
std::vector<vertex_descriptor> find_sources(G& g)
{
  static_assert(G::is_directed, "find_sources expects a directed pGraph");
  g.for_each_local_vertex([](vertex_descriptor, auto& rec) {
    rec.property.indegree = 0;
  });
  rmi_fence();

  g.for_each_local_vertex([&](vertex_descriptor, auto& rec) {
    for (auto const& e : rec.edges)
      g.apply_vertex(e.target,
                     [](auto& trec) { ++trec.property.indegree; });
  });
  rmi_fence();

  std::vector<vertex_descriptor> sources;
  g.for_each_local_vertex([&](vertex_descriptor v, auto& rec) {
    if (rec.property.indegree == 0)
      sources.push_back(v);
  });
  rmi_fence();
  return sources;
}

/// PageRank with uniform teleport (damping d), `iterations` synchronous
/// rounds (Fig. 56).  VP must provide `rank` and `incoming`.  Collective.
template <typename G>
void page_rank(G& g, std::size_t iterations, double damping = 0.85)
{
  std::size_t const n = g.get_num_vertices();
  if (n == 0)
    return;
  double const init = 1.0 / static_cast<double>(n);
  g.for_each_local_vertex([&](vertex_descriptor, auto& rec) {
    rec.property.rank = init;
    rec.property.incoming = 0.0;
  });
  rmi_fence();

  for (std::size_t it = 0; it < iterations; ++it) {
    // Scatter rank shares along out-edges.
    g.for_each_local_vertex([&](vertex_descriptor, auto& rec) {
      if (rec.edges.empty())
        return;
      double const share =
          rec.property.rank / static_cast<double>(rec.edges.size());
      for (auto const& e : rec.edges)
        g.apply_vertex(e.target, [share](auto& trec) {
          trec.property.incoming += share;
        });
    });
    rmi_fence();
    // Gather.
    g.for_each_local_vertex([&](vertex_descriptor, auto& rec) {
      rec.property.rank =
          (1.0 - damping) / static_cast<double>(n) +
          damping * rec.property.incoming;
      rec.property.incoming = 0.0;
    });
    rmi_fence();
  }
}

/// Vertex property for push-based (incremental) PageRank: `rank` is the
/// settled mass, `residual` the not-yet-propagated mass.  The fixed point
/// is the same as the synchronous `page_rank` one.
struct dynamic_pagerank_property {
  double rank = 0.0;
  double residual = 0.0;
  void define_type(typer& t)
  {
    t.member(rank);
    t.member(residual);
  }
};

/// Seeds a push-based PageRank from scratch: rank 0 everywhere, teleport
/// mass (1-d)/n as residual.  Draining all residuals (page_rank_incremental
/// with every vertex dirty) then converges to the PageRank fixed point.
/// Collective.
template <typename G>
void page_rank_push_init(G& g, double damping = 0.85)
{
  std::size_t const n = g.get_num_vertices();
  if (n == 0)
    return;
  double const r0 = (1.0 - damping) / static_cast<double>(n);
  g.for_each_local_vertex([r0](vertex_descriptor, auto& rec) {
    rec.property.rank = 0.0;
    rec.property.residual = r0;
  });
  rmi_fence();
}

namespace graph_algo_detail {

/// What one drain visit brings back to the driver: the damped per-edge
/// share and the adjacency snapshot to scatter it along.
struct drain_result {
  double share = 0.0;
  std::vector<vertex_descriptor> targets;
};

} // namespace graph_algo_detail

/// Incremental (push-based) PageRank over whatever residual mass is
/// pending — the streaming-graph recompute kernel.  Each location passes
/// the vertices it dirtied (e.g. churned endpoints after seeding their
/// `residual`); rounds then chase the residual frontier until it drains
/// below `epsilon` or `max_rounds` is hit.  Collective; returns the global
/// number of drain visits performed (the incremental work, vs. n*iters for
/// the synchronous `page_rank`).
///
/// Locking discipline (Ch. VI): a visit handler runs under the element's
/// data lock when the transport is direct, so handlers never nest a second
/// routed call.  The drain therefore settles the residual *and* snapshots
/// the adjacency in one `apply_vertex_get`, the driver scatters from
/// outside the lock, and target handlers only bump `residual` and push
/// into the frontier p_object (the BFS pattern).
template <typename G>
std::size_t page_rank_incremental(G& g,
                                  std::vector<vertex_descriptor> const& dirty,
                                  std::size_t max_rounds,
                                  double damping = 0.85,
                                  double epsilon = 1e-9)
{
  using graph_algo_detail::drain_result;
  using graph_algo_detail::frontier_buffer;
  frontier_buffer frontier;
  rmi_handle const fh = frontier.get_handle();

  frontier.next = dirty;
  rmi_fence();

  std::size_t drains = 0;
  for (std::size_t round = 0;
       round < max_rounds && allreduce(frontier.next.size(), std::plus<>{});
       ++round) {
    std::vector<vertex_descriptor> current;
    current.swap(frontier.next);
    std::sort(current.begin(), current.end());
    current.erase(std::unique(current.begin(), current.end()), current.end());
    for (auto v : current) {
      auto const d = g.apply_vertex_get(v, [damping, epsilon](auto& rec) {
        drain_result out;
        double const r = rec.property.residual;
        if (r <= epsilon)
          return out;  // already drained via another location's frontier
        rec.property.rank += r;
        rec.property.residual = 0.0;
        if (rec.edges.empty())
          return out;
        out.share = damping * r / static_cast<double>(rec.edges.size());
        out.targets.reserve(rec.edges.size());
        for (auto const& e : rec.edges)
          out.targets.push_back(e.target);
        return out;
      });
      if (d.share == 0.0)
        continue;
      ++drains;
      for (auto t : d.targets)
        g.apply_vertex(t, [t, fh, share = d.share, epsilon](auto& trec) {
          bool const was_active = trec.property.residual > epsilon;
          trec.property.residual += share;
          if (!was_active && trec.property.residual > epsilon)
            get_registered_object<frontier_buffer>(fh)->next.push_back(t);
        });
    }
    rmi_fence();
  }
  rmi_fence();
  return allreduce(drains, std::plus<>{});
}

/// Sum of all ranks (sanity: should stay ~1.0).  Collective.
template <typename G>
double total_rank(G& g)
{
  double local = 0;
  g.for_each_local_vertex([&](vertex_descriptor, auto& rec) {
    local += rec.property.rank;
  });
  rmi_fence();
  return allreduce(local, std::plus<>{});
}

/// Maximum out-degree (a cheap full-scan statistic used in the method
/// evaluation figures).  Collective.
template <typename G>
std::size_t max_out_degree(G& g)
{
  std::size_t local = 0;
  g.for_each_local_vertex([&](vertex_descriptor, auto& rec) {
    local = std::max(local, rec.edges.size());
  });
  rmi_fence();
  return allreduce(local, [](std::size_t a, std::size_t b) {
    return std::max(a, b);
  });
}

} // namespace stapl

#endif
