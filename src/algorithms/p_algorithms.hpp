#ifndef STAPL_ALGORITHMS_P_ALGORITHMS_HPP
#define STAPL_ALGORITHMS_P_ALGORITHMS_HPP

// Generic pAlgorithms (dissertation Ch. III, VIII.C), expressed as
// task-graph factories (runtime/task_graph.hpp).
//
// Every algorithm coarsens its view into chunk *descriptors* (GID run +
// owning location + cached-at hint + byte estimate; runtime/locality.hpp)
// — many per location, granularity from exec_policy, or from
// default_grain filtered through the container's adaptive grain hint —
// and runs them on the distributed executor, which places each chunk task
// on its descriptor's owner and schedules steals against the locality
// annotations.  No algorithm call site handles raw GID vectors: the
// descriptor carries the locality metadata end-to-end, and on stealable
// paths only its compact wire form is replicated — the run-encoded GID
// payload stays with its producer (attached locally or forwarded
// point-to-point to a remote owner; see task_graph.hpp).  Element access
// takes the direct-reference fast path when local (native/aligned views)
// and the shared-object read/write path otherwise, so chunk tasks are
// location-transparent: opting a chunk into stealing
// (exec_policy::stealable) changes where it runs, never what it computes.
// Reductions and scans chain partial results through value-carrying
// dependence edges instead of allgather+fence rounds.  Every algorithm
// still ends at a fence (inside task_graph::execute) and the views'
// post_execute hook, implementing the automatic synchronization-point
// insertion of Ch. VII.H.

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "../runtime/runtime.hpp"
#include "../runtime/task_graph.hpp"
#include "../views/views.hpp"

namespace stapl {

namespace algo_detail {

template <typename View, typename G>
concept writable_view = requires(View v, G g, typename View::value_type x) {
  v.write(g, x);
};

/// Applies f(value&) to the element behind gid, using the direct reference
/// when local and read-modify-write otherwise.
template <typename View, typename F>
void apply_element(View& v, typename View::gid_type g, F& f)
{
  if constexpr (view_detail::has_local_ref<View>) {
    if (auto* p = v.try_local_ref(g)) {
      f(*p);
      return;
    }
  }
  auto x = v.read(g);
  f(x);
  if constexpr (writable_view<View, typename View::gid_type>)
    v.write(g, std::move(x));
}

} // namespace algo_detail

// ---------------------------------------------------------------------------
// Mutating map patterns (chunked map_func factories)
// ---------------------------------------------------------------------------

/// Applies `wf` to every element of the view.  Collective.
template <typename View, typename WF>
void p_for_each(View v, WF wf, exec_policy pol = {})
{
  map_func(std::move(wf), std::move(v), pol);
}

/// Applies `wf(gid, element&)` to every element.  Collective.
template <typename View, typename WF>
void p_for_each_gid(View v, WF wf, exec_policy pol = {})
{
  auto shared_wf = std::make_shared<WF>(std::move(wf));
  tg_detail::chunked_for_each_gid(
      v, pol, [shared_wf, v](typename View::gid_type g) mutable {
        auto f = [&](auto& x) { (*shared_wf)(g, x); };
        algo_detail::apply_element(v, g, f);
      });
  v.post_execute();
}

/// Assigns `gen()` to every element.  Collective.
template <typename View, typename Generator>
void p_generate(View v, Generator gen)
{
  p_for_each(std::move(v), [gen = std::move(gen)](auto& x) mutable {
    x = gen();
  });
}

/// Fills every element with `value`.  Collective.
template <typename View, typename T>
void p_fill(View v, T value)
{
  p_for_each(std::move(v), [value](auto& x) { x = value; });
}

/// out[g] = op(in[g]) for every g; distributions should be aligned for
/// performance.  Collective.
template <typename InView, typename OutView, typename Op>
void p_transform(InView in, OutView out, Op op, exec_policy pol = {})
{
  assert(in.size() == out.size());
  tg_detail::chunked_for_each_gid(
      in, pol, [in, out, op](typename InView::gid_type g) mutable {
        out.write(g, op(in.read(g)));
      });
  out.post_execute();
}

/// Copies in to out element-wise.  Collective.
template <typename InView, typename OutView>
void p_copy(InView in, OutView out)
{
  p_transform(std::move(in), std::move(out),
              [](auto const& x) { return x; });
}

// ---------------------------------------------------------------------------
// Reductions (tree_reduce factory, Ch. VIII.C)
// ---------------------------------------------------------------------------

/// Generic map-reduce over a view: reduces map(element) over all elements
/// through a dependence tree of chunk partials (no intermediate fences).
/// `redf` must be associative.  Returns nullopt for empty views.
/// Collective.
template <typename View, typename Map, typename Reduce>
[[nodiscard]] auto map_reduce(View v, Map mapf, Reduce redf,
                              exec_policy pol = {})
{
  return tree_reduce(std::move(v), std::move(mapf), std::move(redf), pol);
}

/// Sum (or op-fold) of all elements plus init.  Collective.
template <typename View, typename T, typename Op = std::plus<>>
[[nodiscard]] T p_accumulate(View v, T init, Op op = {})
{
  auto total = map_reduce(std::move(v), [](auto const& x) { return T(x); }, op);
  return total ? op(init, *total) : init;
}

/// Number of elements equal to `value`.  Collective.
template <typename View, typename T>
[[nodiscard]] std::size_t p_count(View v, T const& value)
{
  auto n = map_reduce(std::move(v),
                      [value](auto const& x) {
                        return static_cast<std::size_t>(x == value);
                      },
                      std::plus<>{});
  return n.value_or(0);
}

/// Number of elements satisfying `pred`.  Collective.
template <typename View, typename Pred>
[[nodiscard]] std::size_t p_count_if(View v, Pred pred)
{
  auto n = map_reduce(std::move(v),
                      [pred](auto const& x) {
                        return static_cast<std::size_t>(pred(x));
                      },
                      std::plus<>{});
  return n.value_or(0);
}

/// GID of the first element (in domain order) satisfying `pred`, or
/// invalid_gid.  Collective.
template <typename View, typename Pred>
[[nodiscard]] gid1d p_find_if(View v, Pred pred)
{
  auto first = map_reduce(
      std::move(v),
      [pred](typename View::gid_type g, auto const& x) {
        return pred(x) ? static_cast<gid1d>(g) : invalid_gid;
      },
      [](gid1d a, gid1d b) { return std::min(a, b); });
  return first.value_or(invalid_gid);
}

template <typename View, typename T>
[[nodiscard]] gid1d p_find(View v, T const& value)
{
  return p_find_if(std::move(v),
                   [value](auto const& x) { return x == value; });
}

/// (gid, value) of the minimum element; nullopt when empty.  Collective.
template <typename View, typename Compare = std::less<>>
[[nodiscard]] auto p_min_element(View v, Compare cmp = {})
    -> std::optional<std::pair<typename View::gid_type,
                               typename View::value_type>>
{
  using P = std::pair<typename View::gid_type, typename View::value_type>;
  return map_reduce(
      std::move(v),
      [](typename View::gid_type g, typename View::value_type x) {
        return P(g, std::move(x));
      },
      [cmp](P const& a, P const& b) {
        if (cmp(b.second, a.second))
          return b;
        if (cmp(a.second, b.second))
          return a;
        return a.first <= b.first ? a : b;
      });
}

template <typename View, typename Compare = std::less<>>
[[nodiscard]] auto p_max_element(View v, Compare cmp = {})
{
  return p_min_element(std::move(v), [cmp](auto const& a, auto const& b) {
    return cmp(b, a);
  });
}

/// Inner product of two equally-sized views plus init.  Collective.
template <typename V1, typename V2, typename T>
[[nodiscard]] T p_inner_product(V1 a, V2 b, T init)
{
  assert(a.size() == b.size());
  auto total = map_reduce(
      std::move(a),
      [b](typename V1::gid_type g, auto const& x) mutable {
        return T(x) * T(b.read(g));
      },
      std::plus<>{});
  return total ? init + *total : init;
}

// ---------------------------------------------------------------------------
// Prefix sums (scan factory: per-block folds chained through value edges)
// ---------------------------------------------------------------------------

/// Inclusive prefix sum over a contiguously partitioned indexed container:
/// out[i] = op(in[0], ..., in[i]).  Three task flavors per bCID — block
/// fold, running-total chain, offset rescan — wired by value-carrying
/// dependences, so no block-sum allgather and no fence between phases.
/// Requires in/out aligned and contiguous sub-domains.  Collective.
template <typename InC, typename OutC, typename Op = std::plus<>>
void p_partial_sum(InC& in, OutC& out, Op op = {})
{
  using T = typename InC::value_type;
  using EV = std::pair<T, bool>;  ///< (partial, nonempty)
  assert(in.size() == out.size());

  std::size_t const nparts = in.partition().size();
  task_graph<EV> tg;
  tg.set_stealing(false);  // every task touches owner-local bContainers
  using tid = typename task_graph<EV>::task_id;

  std::vector<tid> chain(nparts);
  for (std::size_t b = 0; b != nparts; ++b) {
    location_id const loc = in.mapper().map(b);
    // Leaf: fold this block's elements.
    tid const fold = tg.add_task(
        loc, [&in, b, op](std::vector<EV> const& /*ins*/, char const&) {
          auto const& bc = in.bc(b);
          EV acc{T{}, false};
          for (std::size_t i = 0; i != bc.size(); ++i)
            acc = acc.second ? EV{op(std::move(acc.first), bc.at(i)), true}
                             : EV{bc.at(i), true};
          return acc;
        });
    // Chain: running total through block b (inputs: previous total, fold).
    chain[b] = tg.add_task(
        loc, [op](std::vector<EV> const& ins, char const&) {
          EV acc{T{}, false};
          for (auto const& x : ins) {
            if (!x.second)
              continue;
            acc = acc.second ? EV{op(std::move(acc.first), x.first), true} : x;
          }
          return acc;
        });
    if (b > 0)
      tg.add_dependence(chain[b - 1], chain[b]);
    tg.add_dependence(fold, chain[b]);
    // Rescan: rewrite block b with the prefix before it as offset.
    tid const rescan = tg.add_task(
        loc, [&in, &out, b, op](std::vector<EV> const& ins, char const&) {
          EV const off = ins.empty() ? EV{T{}, false} : ins[0];
          auto const& ibc = in.bc(b);
          T run = off.first;
          bool have = off.second;
          for (std::size_t i = 0; i != ibc.size(); ++i) {
            run = have ? op(std::move(run), ibc.at(i)) : ibc.at(i);
            have = true;
            out.bc(b).set(i, run);
          }
          return EV{T{}, false};
        });
    if (b > 0)
      tg.add_dependence(chain[b - 1], rescan);
  }
  tg.execute();
}

/// out[i] = in[i] - in[i-1] (out[0] = in[0]): chunked map over the input's
/// native view; the overlap read at chunk borders goes through the
/// shared-object view (Fig. 2 pattern).  Collective.
template <typename InC, typename OutC, typename Op = std::minus<>>
void p_adjacent_difference(InC& in, OutC& out, Op op = {})
{
  using T = typename InC::value_type;
  assert(in.size() == out.size());
  array_1d_view iv(in);
  tg_detail::chunked_for_each_gid(
      iv, exec_policy{}, [iv, &out, op](gid1d g) mutable {
        T const here = iv.read(g);
        if (g == 0)
          out.set_element(0, here);
        else
          out.set_element(g, op(here, iv.read(g - 1)));
      });
}

} // namespace stapl

#endif
