#ifndef STAPL_ALGORITHMS_P_ALGORITHMS_HPP
#define STAPL_ALGORITHMS_P_ALGORITHMS_HPP

// Generic pAlgorithms (dissertation Ch. III, VIII.C).
//
// pAlgorithms are SPMD collectives written against the view concept of
// views.hpp: every location processes the bView assigned to it (its
// `local_gids`), taking the direct-reference fast path when the element is
// local (native/aligned views) and the shared-object read/write path
// otherwise.  Every algorithm ends with an rmi_fence and the views'
// post_execute hook, implementing the automatic synchronization-point
// insertion of Ch. VII.H.

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "../runtime/runtime.hpp"
#include "../views/views.hpp"

namespace stapl {

namespace algo_detail {

template <typename View, typename G>
concept writable_view = requires(View v, G g, typename View::value_type x) {
  v.write(g, x);
};

/// Applies f(value&) to the element behind gid, using the direct reference
/// when local and read-modify-write otherwise.
template <typename View, typename F>
void apply_element(View& v, typename View::gid_type g, F& f)
{
  if constexpr (view_detail::has_local_ref<View>) {
    if (auto* p = v.try_local_ref(g)) {
      f(*p);
      return;
    }
  }
  auto x = v.read(g);
  f(x);
  if constexpr (writable_view<View, typename View::gid_type>)
    v.write(g, std::move(x));
}

/// Folds all locations' optional partial results in location order.
template <typename T, typename Op>
[[nodiscard]] std::optional<T> combine_partials(std::optional<T> const& local,
                                                Op op)
{
  auto const partials = allgather(std::pair<T, bool>(
      local.value_or(T{}), local.has_value()));
  std::optional<T> out;
  for (auto const& [value, present] : partials) {
    if (!present)
      continue;
    out = out ? op(*out, value) : value;
  }
  return out;
}

} // namespace algo_detail

// ---------------------------------------------------------------------------
// Mutating map patterns
// ---------------------------------------------------------------------------

/// Applies `wf` to every element of the view.  Collective.
template <typename View, typename WF>
void p_for_each(View v, WF wf)
{
  for (auto g : v.local_gids())
    algo_detail::apply_element(v, g, wf);
  rmi_fence();
  v.post_execute();
}

/// Applies `wf(gid, element&)` to every element.  Collective.
template <typename View, typename WF>
void p_for_each_gid(View v, WF wf)
{
  for (auto g : v.local_gids()) {
    auto f = [&](auto& x) { wf(g, x); };
    algo_detail::apply_element(v, g, f);
  }
  rmi_fence();
  v.post_execute();
}

/// Assigns `gen()` to every element.  Collective.
template <typename View, typename Generator>
void p_generate(View v, Generator gen)
{
  p_for_each(std::move(v), [gen = std::move(gen)](auto& x) mutable {
    x = gen();
  });
}

/// Fills every element with `value`.  Collective.
template <typename View, typename T>
void p_fill(View v, T value)
{
  p_for_each(std::move(v), [value](auto& x) { x = value; });
}

/// out[g] = op(in[g]) for every g; distributions should be aligned for
/// performance.  Collective.
template <typename InView, typename OutView, typename Op>
void p_transform(InView in, OutView out, Op op)
{
  assert(in.size() == out.size());
  for (auto g : in.local_gids())
    out.write(g, op(in.read(g)));
  rmi_fence();
  out.post_execute();
}

/// Copies in to out element-wise.  Collective.
template <typename InView, typename OutView>
void p_copy(InView in, OutView out)
{
  p_transform(std::move(in), std::move(out),
              [](auto const& x) { return x; });
}

// ---------------------------------------------------------------------------
// Reductions (map_reduce pattern, Ch. VIII.C)
// ---------------------------------------------------------------------------

/// Generic map-reduce over a view: reduces map(element) over all elements.
/// Returns nullopt for empty views.  Collective.
template <typename View, typename Map, typename Reduce>
[[nodiscard]] auto map_reduce(View v, Map mapf, Reduce redf)
    -> std::optional<decltype(mapf(v.read(typename View::gid_type{})))>
{
  using T = decltype(mapf(v.read(typename View::gid_type{})));
  std::optional<T> local;
  for (auto g : v.local_gids()) {
    T mapped = mapf(v.read(g));
    local = local ? redf(*local, std::move(mapped)) : std::move(mapped);
  }
  return algo_detail::combine_partials(local, redf);
}

/// Sum (or op-fold) of all elements plus init.  Collective.
template <typename View, typename T, typename Op = std::plus<>>
[[nodiscard]] T p_accumulate(View v, T init, Op op = {})
{
  auto total = map_reduce(std::move(v), [](auto const& x) { return T(x); }, op);
  return total ? op(init, *total) : init;
}

/// Number of elements equal to `value`.  Collective.
template <typename View, typename T>
[[nodiscard]] std::size_t p_count(View v, T const& value)
{
  auto n = map_reduce(std::move(v),
                      [value](auto const& x) {
                        return static_cast<std::size_t>(x == value);
                      },
                      std::plus<>{});
  return n.value_or(0);
}

/// Number of elements satisfying `pred`.  Collective.
template <typename View, typename Pred>
[[nodiscard]] std::size_t p_count_if(View v, Pred pred)
{
  auto n = map_reduce(std::move(v),
                      [pred](auto const& x) {
                        return static_cast<std::size_t>(pred(x));
                      },
                      std::plus<>{});
  return n.value_or(0);
}

/// GID of the first element (in domain order) satisfying `pred`, or
/// invalid_gid.  Collective.
template <typename View, typename Pred>
[[nodiscard]] gid1d p_find_if(View v, Pred pred)
{
  gid1d local = invalid_gid;
  for (auto g : v.local_gids())
    if (pred(v.read(g))) {
      local = std::min(local, static_cast<gid1d>(g));
    }
  return allreduce(local, [](gid1d a, gid1d b) { return std::min(a, b); });
}

template <typename View, typename T>
[[nodiscard]] gid1d p_find(View v, T const& value)
{
  return p_find_if(std::move(v),
                   [value](auto const& x) { return x == value; });
}

/// (gid, value) of the minimum element; nullopt when empty.  Collective.
template <typename View, typename Compare = std::less<>>
[[nodiscard]] auto p_min_element(View v, Compare cmp = {})
    -> std::optional<std::pair<typename View::gid_type,
                               typename View::value_type>>
{
  using P = std::pair<typename View::gid_type, typename View::value_type>;
  std::optional<P> local;
  for (auto g : v.local_gids()) {
    auto x = v.read(g);
    if (!local || cmp(x, local->second) ||
        (!cmp(local->second, x) && g < local->first))
      local = P(g, std::move(x));
  }
  return algo_detail::combine_partials(
      local, [&cmp](P const& a, P const& b) {
        if (cmp(b.second, a.second))
          return b;
        if (cmp(a.second, b.second))
          return a;
        return a.first <= b.first ? a : b;
      });
}

template <typename View, typename Compare = std::less<>>
[[nodiscard]] auto p_max_element(View v, Compare cmp = {})
{
  return p_min_element(std::move(v), [cmp](auto const& a, auto const& b) {
    return cmp(b, a);
  });
}

/// Inner product of two equally-sized views plus init.  Collective.
template <typename V1, typename V2, typename T>
[[nodiscard]] T p_inner_product(V1 a, V2 b, T init)
{
  assert(a.size() == b.size());
  T local{};
  bool any = false;
  for (auto g : a.local_gids()) {
    local = local + T(a.read(g)) * T(b.read(g));
    any = true;
  }
  auto total = algo_detail::combine_partials(
      any ? std::optional<T>(local) : std::nullopt, std::plus<>{});
  return total ? init + *total : init;
}

// ---------------------------------------------------------------------------
// Prefix sums (Ch. III: "pAlgorithms for important parallel techniques")
// ---------------------------------------------------------------------------

/// Inclusive prefix sum over a contiguously partitioned indexed container:
/// out[i] = op(in[0], ..., in[i]).  Three phases: local bContainer scans, an
/// exclusive scan of block sums across bCIDs, then a local rescan.
/// Requires in/out aligned and contiguous sub-domains.  Collective.
template <typename InC, typename OutC, typename Op = std::plus<>>
void p_partial_sum(InC& in, OutC& out, Op op = {})
{
  using T = typename InC::value_type;
  assert(in.size() == out.size());

  auto const& part = in.partition();
  std::size_t const nparts = part.size();

  // Per-bCID local sums (only ours are meaningful).
  std::vector<T> block_sum(nparts, T{});
  for (auto& [bcid, bcptr] : in.get_location_manager()) {
    T s{};
    for (std::size_t i = 0; i != bcptr->size(); ++i)
      s = i == 0 ? bcptr->at(0) : op(s, bcptr->at(i));
    block_sum[bcid] = s;
  }
  // Everyone learns every block's sum (small: one entry per bContainer);
  // the authoritative value for bCID b comes from the location owning b.
  auto const all = allgather(block_sum);
  std::vector<T> sums(nparts, T{});
  for (std::size_t b = 0; b != nparts; ++b)
    sums[b] = all[in.mapper().map(b)][b];

  // Exclusive prefix over ordered bCIDs.
  std::vector<T> offset(nparts, T{});
  for (std::size_t b = 1; b != nparts; ++b)
    offset[b] = b == 1 ? sums[0] : op(offset[b - 1], sums[b - 1]);

  // Local rescan writing the output.
  for (auto& [bcid, bcptr] : in.get_location_manager()) {
    T run = offset[bcid];
    for (std::size_t i = 0; i != bcptr->size(); ++i) {
      run = (bcid == 0 && i == 0) ? bcptr->at(0)
            : i == 0              ? op(run, bcptr->at(0))
                                  : op(run, bcptr->at(i));
      out.bc(bcid).set(i, run);
    }
  }
  rmi_fence();
}

/// out[i] = in[i] - in[i-1] (out[0] = in[0]): implemented with the overlap
/// view pattern of Fig. 2.  Collective.
template <typename InC, typename OutC, typename Op = std::minus<>>
void p_adjacent_difference(InC& in, OutC& out, Op op = {})
{
  using T = typename InC::value_type;
  assert(in.size() == out.size());
  array_1d_view iv(in);
  for (auto g : iv.local_gids()) {
    T const here = iv.read(g);
    if (g == 0)
      out.set_element(0, here);
    else
      out.set_element(g, op(here, iv.read(g - 1)));
  }
  rmi_fence();
}

} // namespace stapl

#endif
