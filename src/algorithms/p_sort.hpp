#ifndef STAPL_ALGORITHMS_P_SORT_HPP
#define STAPL_ALGORITHMS_P_SORT_HPP

// Parallel sample sort (the motivating kernel of dissertation Ch. VI: each
// task inserts elements from an input pArray into distributed buckets; the
// computation is correct as long as bucket-level insertion is atomic).
//
// Phases:
//   1. every location samples its local elements;
//   2. samples are allgathered and P-1 splitters chosen;
//   3. local elements are partitioned by splitter and shipped to their
//      bucket's location in bulk asynchronous batches;
//   4. each location sorts its bucket;
//   5. the sorted sequence is written back to the container in order: each
//      location's start offset arrives as a value-carrying dependence from
//      its left neighbour (an offset chain on the task-graph executor), so
//      no bucket-size allgather is needed; the write-back itself is
//      coarsened into chunk tasks sized by the container's adaptive grain
//      hint (locality pipeline).
//
// Sorts any indexed container with 1D gids (pArray, pVector).

#include <algorithm>
#include <cstddef>
#include <functional>
#include <random>
#include <vector>

#include "../runtime/runtime.hpp"
#include "../runtime/task_graph.hpp"
#include "../views/views.hpp"

namespace stapl {

namespace sort_detail {

template <typename T>
struct bucket_buffer : p_object {
  std::vector<T> elems;
  std::mutex mutex; ///< deliveries run on caller threads in direct transport

  void deliver(std::vector<T> batch)
  {
    std::lock_guard lock(mutex);
    elems.insert(elems.end(), batch.begin(), batch.end());
  }
};

} // namespace sort_detail

/// Sorts the elements of an indexed container in place (ascending by
/// `cmp`).  Collective.
template <typename C, typename Compare = std::less<>>
void p_sample_sort(C& arr, Compare cmp = {})
{
  using T = typename C::value_type;
  unsigned const p = num_locations();

  // 1. Local sampling (oversampling factor 8 for balanced splitters).
  std::vector<T> local;
  arr.for_each_local([&](gid1d, T& x) { local.push_back(x); });
  std::size_t const oversample = 8;
  std::vector<T> samples;
  if (!local.empty()) {
    std::mt19937 gen(123 + this_location());
    for (std::size_t i = 0; i < oversample * p; ++i)
      samples.push_back(local[gen() % local.size()]);
  }

  // 2. Global splitters.
  auto all_samples = allgather(samples);
  std::vector<T> pool;
  for (auto& s : all_samples)
    pool.insert(pool.end(), s.begin(), s.end());
  std::sort(pool.begin(), pool.end(), cmp);
  std::vector<T> splitters;
  for (unsigned i = 1; i < p; ++i)
    if (!pool.empty())
      splitters.push_back(pool[i * pool.size() / p]);

  // 3. Partition local elements into buckets and ship them (bulk async) —
  //    the Ch. VI bucket-insertion pattern.
  sort_detail::bucket_buffer<T> bucket;
  rmi_handle const bh = bucket.get_handle();
  std::vector<std::vector<T>> outgoing(p);
  for (auto& x : local) {
    auto it = std::upper_bound(splitters.begin(), splitters.end(), x, cmp);
    outgoing[static_cast<std::size_t>(it - splitters.begin())].push_back(x);
  }
  for (unsigned l = 0; l < p; ++l) {
    if (outgoing[l].empty())
      continue;
    if (l == this_location())
      bucket.deliver(std::move(outgoing[l]));
    else
      async_rmi<sort_detail::bucket_buffer<T>>(
          l, bh, &sort_detail::bucket_buffer<T>::deliver,
          std::move(outgoing[l]));
  }
  rmi_fence();

  // 4. Local bucket sort.
  std::sort(bucket.elems.begin(), bucket.elems.end(), cmp);

  // 5. Write back in global order: bucket l starts where buckets 0..l-1
  //    end.  The running offset travels down a task chain as a dependence
  //    value (each location's chain task adds its bucket size), and the
  //    write-back is coarsened into chunk tasks over the local bucket —
  //    grain from the container's adaptive hint (the locality pipeline's
  //    grain feedback).  The spawn exchange is metadata-only like every
  //    chunked factory: each location allgathers compact chunk_wire
  //    records (element/byte counts; the target GIDs depend on the
  //    offset chain, so no digest bounds) to keep the replicated
  //    descriptor aligned, counted by spawn_bytes and fed back into the
  //    container's epoch task stats so the counter stays observable.
  //    The tasks themselves stay owner-pinned — they read the
  //    location-local bucket — so no payload ever needs to travel.  Every chunk fires as soon as its
  //    location's offset arrives — no size allgather, no phase barrier.
  {
    std::size_t const grain = std::max<std::size_t>(
        1, arr.tuned_grain(default_grain(arr.size())));
    task_graph<std::size_t> tg;
    tg.set_stealing(false);  // tasks touch this location's bucket
    using tid = task_graph<std::size_t>::task_id;
    std::vector<tid> chain(p);
    for (unsigned l = 0; l < p; ++l) {
      chain[l] = tg.add_task(
          l, [&bucket](std::vector<std::size_t> const& ins, char const&) {
            return (ins.empty() ? 0 : ins[0]) + bucket.elems.size();
          });
      if (l > 0)
        tg.add_dependence(chain[l - 1], chain[l]);
    }
    std::vector<chunk_wire> my_wires;
    my_wires.reserve((bucket.elems.size() + grain - 1) / grain);
    for (std::size_t b = 0; b < bucket.elems.size(); b += grain) {
      chunk_wire w;
      w.owner = this_location();
      w.elements = std::min(grain, bucket.elems.size() - b);
      w.bytes = w.elements * sizeof(T);
      my_wires.push_back(w);
    }
    tg.note_spawn_bytes(static_cast<std::uint64_t>(packed_size(my_wires)) *
                        (p - 1));
    auto const all = allgather(my_wires);
    for (unsigned l = 0; l < p; ++l) {
      for (std::size_t k = 0; k < all[l].size(); ++k) {
        tid const wb = tg.add_task(
            l,
            [&bucket, &arr, k, grain](std::vector<std::size_t> const& ins,
                                      char const&) {
              std::size_t const offset = ins.empty() ? 0 : ins[0];
              std::size_t const b = k * grain;
              std::size_t const e =
                  std::min(bucket.elems.size(), b + grain);
              for (std::size_t i = b; i < e; ++i)
                arr.set_element(offset + i, std::move(bucket.elems[i]));
              return std::size_t{0};
            },
            {}, tg_detail::wire_options(all[l][k], false));
        if (l > 0)
          tg.add_dependence(chain[l - 1], wb);
      }
    }
    tg.execute();
    arr.note_task_graph_stats(tg.stats());
  }
}

/// Collective check that a container's elements are globally sorted:
/// a tree_reduce of per-pair checks (the boundary read of g+1 goes through
/// the shared-object view).
template <typename C, typename Compare = std::less<>>
[[nodiscard]] bool p_is_sorted(C& arr, Compare cmp = {})
{
  array_1d_ro_view v(arr);
  std::size_t const n = arr.size();
  auto const ok = tree_reduce(
      v,
      [v, n, cmp](gid1d g, typename C::value_type const& x) mutable {
        return g + 1 < n ? !cmp(v.read(g + 1), x) : true;
      },
      [](bool a, bool b) { return a && b; });
  return ok.value_or(true);
}

} // namespace stapl

#endif
