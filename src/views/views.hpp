#ifndef STAPL_VIEWS_VIEWS_HPP
#define STAPL_VIEWS_VIEWS_HPP

// The stapl pView layer (dissertation Ch. III.A, Table II).
//
// A pView is a tuple (C, D, F, O): an abstract data type over a collection.
// Views have reference semantics (they do not own elements), can be defined
// over containers or over other views, and enable parallelism by exposing a
// partitioned domain whose pieces (bViews) are assigned to locations.
//
// The view concept used by the pAlgorithms layer:
//   using value_type / gid_type;
//   std::size_t size() const;
//   std::vector<gid_type> local_gids() const;   // this location's bView
//   value_type read(gid_type) const;            // possibly remote
//   void write(gid_type, value_type);           // possibly remote
//   value_type* try_local_ref(gid_type);        // nullptr when remote
//
// Native/aligned views return direct references for their whole domain
// (the locality fast path); repartitioning views (balanced over a different
// distribution, strided, ...) fall back to shared-object reads and writes —
// exactly the performance distinction Ch. III.A draws.
//
// Locality pipeline (runtime/locality.hpp): every chunk-producing view
// coarsens its bView into chunk_descriptors — a run-encoded GID payload
// plus the wire-form metadata (owner, cached-at hint, digest bounds,
// byte/element counts) — which the task-graph executor consumes for
// placement and locality-aware stealing.  Only the wire form is ever
// replicated between locations; payloads stay with their producer.  Container-backed views also
// forward the feedback hooks: tuned_grain (the container's adaptive grain
// hint), note_task_graph_stats (steal/idle counters tune that hint) and
// note_chunk_placement / chunk_affinity (where chunks ran last graph,
// stamped as the next graph's cached-at hints).  Wrapper views forward the
// hooks to their base, translating coordinates where their GID space
// differs (strided, overlap).

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "../core/container_base.hpp"
#include "../runtime/task_graph.hpp"

namespace stapl {

namespace view_detail {

/// Single definition lives with the executor (tg_detail::
/// locality_bound_view) — it drives default chunk stealability there and
/// the element fast path here, and must never diverge.
template <typename V>
concept has_local_ref = tg_detail::locality_bound_view<V>;

/// Descriptor producer of container-backed views: wraps the ordered GID
/// sequence into ~grain-element chunk_descriptors owned by this location
/// and stamps each with the container's cached-at hint (the location that
/// executed an overlapping chunk last graph, if any).  The affinity
/// lookup reads off the descriptor's wire form — the same digest bounds
/// peers and the placement feedback see.
template <typename C, typename G>
[[nodiscard]] std::vector<chunk_descriptor<G>>
container_chunks(C& c, std::vector<G> gids, std::size_t grain)
{
  auto out = tg_detail::make_descriptors(
      tg_detail::chunk_gids(std::move(gids), grain),
      sizeof(typename C::value_type));
  for (auto& d : out)
    d.cached_at = c.chunk_affinity(d.wire());
  return out;
}

/// CRTP mixin: the locality-pipeline hook block of container-backed views
/// whose GID space matches the container's — forwarded unchanged to
/// Derived::container() (see p_container_base): adaptive grain,
/// steal/idle counters, placement feedback, cached-at lookup.  Views
/// whose coordinates differ (strided, overlap) translate by hand instead.
template <typename Derived>
class container_locality_hooks {
 public:
  [[nodiscard]] std::size_t tuned_grain(std::size_t base) const
  {
    return c().tuned_grain(base);
  }
  void note_task_graph_stats(task_graph_stats const& s) const
  {
    c().note_task_graph_stats(s);
  }
  void note_chunk_placement(std::uint64_t lo, std::uint64_t hi,
                            location_id where) const
  {
    c().note_chunk_placement(lo, hi, where);
  }
  [[nodiscard]] location_id chunk_affinity(std::uint64_t lo,
                                           std::uint64_t hi) const
  {
    return c().chunk_affinity(lo, hi);
  }

 private:
  [[nodiscard]] auto& c() const
  {
    return static_cast<Derived const&>(*this).container();
  }
};

/// CRTP mixin of wrapper views: forwards the hooks to Derived::base()
/// when the wrapped view has them (requires-gated, mirroring the
/// executor's detection).  A wrapper whose GID space differs from its
/// base's shadows the affected method with a coordinate-translating one.
template <typename Derived, typename V>
class wrapper_locality_hooks {
 public:
  [[nodiscard]] std::size_t tuned_grain(std::size_t base) const
    requires requires(V const& v, std::size_t n) { v.tuned_grain(n); }
  {
    return b().tuned_grain(base);
  }
  void note_task_graph_stats(task_graph_stats const& s) const
    requires requires(V const& v, task_graph_stats const& x) {
      v.note_task_graph_stats(x);
    }
  {
    b().note_task_graph_stats(s);
  }
  void note_chunk_placement(std::uint64_t lo, std::uint64_t hi,
                            location_id where) const
    requires requires(V const& v) {
      v.note_chunk_placement(std::uint64_t{}, std::uint64_t{},
                             location_id{});
    }
  {
    b().note_chunk_placement(lo, hi, where);
  }

 private:
  [[nodiscard]] V const& b() const
  {
    return static_cast<Derived const&>(*this).base();
  }
};

} // namespace view_detail

// ---------------------------------------------------------------------------
// array_1d_view — native one-dimensional view over an indexed container
// ---------------------------------------------------------------------------

/// Identity view over an indexed pContainer: domain and distribution follow
/// the container (the container's native pView).
template <typename C>
class array_1d_view
    : public view_detail::container_locality_hooks<array_1d_view<C>> {
 public:
  using container_type = C;
  using value_type = typename C::value_type;
  using gid_type = typename C::gid_type;

  explicit array_1d_view(C& c) noexcept : m_c(&c) {}

  [[nodiscard]] C& container() const noexcept { return *m_c; }
  [[nodiscard]] std::size_t size() const { return m_c->size(); }

  [[nodiscard]] std::vector<gid_type> local_gids() const
  {
    return m_c->local_gids();
  }

  [[nodiscard]] value_type read(gid_type g) const
  {
    return m_c->get_element(g);
  }
  void write(gid_type g, value_type v) { m_c->set_element(g, std::move(v)); }

  [[nodiscard]] value_type* try_local_ref(gid_type g)
  {
    return m_c->local_element_ptr(g);
  }

  [[nodiscard]] element_proxy<C> operator[](gid_type g) const
  {
    return (*m_c)[g];
  }

  /// This location's bView coarsened into ~grain-element chunk descriptors
  /// (the locality pipeline's coarsening API; see runtime/locality.hpp).
  [[nodiscard]] std::vector<chunk_descriptor<gid_type>> chunks(
      std::size_t grain) const
  {
    return view_detail::container_chunks(*m_c, local_gids(), grain);
  }

  /// Refreshes container metadata after a parallel phase (Ch. VII.H).
  void post_execute() {}

 private:
  C* m_c;
};

/// Read-only variant (Table II array_1d_ro_pview).
template <typename C>
class array_1d_ro_view
    : public view_detail::container_locality_hooks<array_1d_ro_view<C>> {
 public:
  using container_type = C;
  using value_type = typename C::value_type;
  using gid_type = typename C::gid_type;

  explicit array_1d_ro_view(C& c) noexcept : m_c(&c) {}

  [[nodiscard]] C& container() const noexcept { return *m_c; }
  [[nodiscard]] std::size_t size() const { return m_c->size(); }
  [[nodiscard]] std::vector<gid_type> local_gids() const
  {
    return m_c->local_gids();
  }
  [[nodiscard]] value_type read(gid_type g) const
  {
    return m_c->get_element(g);
  }
  [[nodiscard]] value_type const* try_local_ref(gid_type g)
  {
    return m_c->local_element_ptr(g);
  }
  /// This location's bView coarsened into ~grain-element chunk descriptors
  /// (the locality pipeline's coarsening API; see runtime/locality.hpp).
  [[nodiscard]] std::vector<chunk_descriptor<gid_type>> chunks(
      std::size_t grain) const
  {
    return view_detail::container_chunks(*m_c, local_gids(), grain);
  }

  void post_execute() {}

 private:
  C* m_c;
};

// ---------------------------------------------------------------------------
// balanced_view — repartitions [0, n) into num_locations balanced chunks
// ---------------------------------------------------------------------------

/// Splits the element index space evenly across locations regardless of the
/// underlying distribution (Table II balanced_pview).  Used to balance work;
/// accesses outside the local storage go through the shared-object view.
template <typename C>
class balanced_view
    : public view_detail::container_locality_hooks<balanced_view<C>> {
 public:
  using container_type = C;
  using value_type = typename C::value_type;
  using gid_type = gid1d;

  explicit balanced_view(C& c, std::size_t chunks = 0)
      : m_c(&c), m_chunks(chunks == 0 ? num_locations() : chunks)
  {}

  [[nodiscard]] C& container() const noexcept { return *m_c; }
  [[nodiscard]] std::size_t size() const { return m_c->size(); }

  [[nodiscard]] std::vector<gid_type> local_gids() const
  {
    balanced_partition p(indexed_domain(m_c->size()), m_chunks);
    std::vector<gid_type> out;
    // Chunks are dealt to locations round-robin.
    for (bcid_type b = this_location(); b < p.size(); b += num_locations()) {
      auto const d = p.subdomain(b);
      for (gid_type g = d.first(); g != d.last(); ++g)
        out.push_back(g);
    }
    return out;
  }

  [[nodiscard]] value_type read(gid_type g) const
  {
    return m_c->get_element(g);
  }
  void write(gid_type g, value_type v) { m_c->set_element(g, std::move(v)); }
  [[nodiscard]] value_type* try_local_ref(gid_type g)
  {
    return m_c->local_element_ptr(g);
  }
  /// This location's deal coarsened into chunk descriptors.  The balanced
  /// deal crosses the storage distribution, so each descriptor's owner is
  /// the location actually *storing* the chunk's head element (closed-form
  /// lookup; dynamic containers keep the dealing location — resolving
  /// ownership per chunk would need communication): the executor then
  /// spawns the chunk task where the data lives instead of where the deal
  /// happened to land it.
  [[nodiscard]] std::vector<chunk_descriptor<gid_type>> chunks(
      std::size_t grain) const
  {
    auto out = view_detail::container_chunks(*m_c, local_gids(), grain);
    if (!m_c->is_dynamic())
      for (auto& d : out)
        d.owner = m_c->lookup(d.gids.front());
    return out;
  }

  void post_execute() {}

 private:
  C* m_c;
  std::size_t m_chunks;
};

// ---------------------------------------------------------------------------
// strided_1d_view (Table II strided_1D_pview)
// ---------------------------------------------------------------------------

/// Every `stride`-th element starting at `offset`; view index i maps to
/// container index offset + i*stride.
template <typename C>
class strided_1d_view {
 public:
  using container_type = C;
  using value_type = typename C::value_type;
  using gid_type = gid1d;

  strided_1d_view(C& c, std::size_t stride, std::size_t offset = 0)
      : m_c(&c), m_stride(stride), m_offset(offset)
  {
    assert(stride > 0);
  }

  [[nodiscard]] std::size_t size() const
  {
    std::size_t const n = m_c->size();
    return m_offset >= n ? 0 : (n - m_offset + m_stride - 1) / m_stride;
  }

  [[nodiscard]] gid1d map(gid_type i) const { return m_offset + i * m_stride; }

  [[nodiscard]] std::vector<gid_type> local_gids() const
  {
    // View element i is local when its image is locally stored.
    std::vector<gid_type> out;
    std::size_t const n = size();
    for (gid_type i = 0; i < n; ++i)
      if (m_c->is_local(map(i)))
        out.push_back(i);
    return out;
  }

  [[nodiscard]] value_type read(gid_type i) const
  {
    return m_c->get_element(map(i));
  }
  void write(gid_type i, value_type v)
  {
    m_c->set_element(map(i), std::move(v));
  }
  [[nodiscard]] value_type* try_local_ref(gid_type i)
  {
    return m_c->local_element_ptr(map(i));
  }

  /// This location's bView coarsened into chunk descriptors.  Descriptor
  /// GIDs are *view* indices (read/write expect them); the locality
  /// metadata is translated into container coordinates through map(), so
  /// the affinity table shared with other views of the same container
  /// stays in one coordinate space.
  [[nodiscard]] std::vector<chunk_descriptor<gid_type>> chunks(
      std::size_t grain) const
  {
    auto out = tg_detail::make_descriptors(
        tg_detail::chunk_gids(local_gids(), grain), sizeof(value_type));
    for (auto& d : out)
      d.cached_at = m_c->chunk_affinity(map(d.gids.front()),
                                        map(d.gids.back()));
    return out;
  }

  /// Locality-pipeline feedback hooks (container coordinates via map()).
  [[nodiscard]] std::size_t tuned_grain(std::size_t base) const
  {
    return m_c->tuned_grain(base);
  }
  void note_task_graph_stats(task_graph_stats const& s) const
  {
    m_c->note_task_graph_stats(s);
  }
  void note_chunk_placement(std::uint64_t lo, std::uint64_t hi,
                            location_id where) const
  {
    m_c->note_chunk_placement(map(lo), map(hi), where);
  }

  void post_execute() {}

 private:
  C* m_c;
  std::size_t m_stride;
  std::size_t m_offset;
};

// ---------------------------------------------------------------------------
// transform_view (Table II transform_pview)
// ---------------------------------------------------------------------------

/// Overrides the read operation with a user function of the underlying value
/// (read-only).
template <typename V, typename F>
class transform_view
    : public view_detail::wrapper_locality_hooks<transform_view<V, F>, V> {
 public:
  using base_view = V;
  using gid_type = typename V::gid_type;
  using value_type =
      std::invoke_result_t<F const&, typename V::value_type>;

  transform_view(V v, F f) : m_v(std::move(v)), m_f(std::move(f)) {}

  [[nodiscard]] V const& base() const noexcept { return m_v; }
  [[nodiscard]] std::size_t size() const { return m_v.size(); }
  [[nodiscard]] std::vector<gid_type> local_gids() const
  {
    return m_v.local_gids();
  }
  [[nodiscard]] value_type read(gid_type g) const { return m_f(m_v.read(g)); }

  /// Chunk descriptors of the underlying view (same GID space): the
  /// transform only changes what read() returns, not where data lives.
  [[nodiscard]] std::vector<chunk_descriptor<gid_type>> chunks(
      std::size_t grain) const
  {
    return tg_detail::view_chunks(m_v, grain);
  }

  void post_execute() {}

 private:
  V m_v;
  F m_f;
};

template <typename V, typename F>
transform_view(V, F) -> transform_view<V, F>;

// ---------------------------------------------------------------------------
// filtered_view
// ---------------------------------------------------------------------------

/// Restricts a view's domain to GIDs satisfying a predicate on the GID.
template <typename V, typename Pred>
class filtered_view
    : public view_detail::wrapper_locality_hooks<filtered_view<V, Pred>, V> {
 public:
  using base_view = V;
  using gid_type = typename V::gid_type;
  using value_type = typename V::value_type;

  filtered_view(V v, Pred p) : m_v(std::move(v)), m_pred(std::move(p)) {}

  [[nodiscard]] V const& base() const noexcept { return m_v; }

  [[nodiscard]] std::vector<gid_type> local_gids() const
  {
    std::vector<gid_type> out;
    for (auto g : m_v.local_gids())
      if (m_pred(g))
        out.push_back(g);
    return out;
  }
  [[nodiscard]] std::size_t size() const
  {
    // Collective count of matching elements.
    std::size_t const local = local_gids().size();
    return allreduce(local, std::plus<>{});
  }
  [[nodiscard]] value_type read(gid_type g) const { return m_v.read(g); }
  void write(gid_type g, value_type v) { m_v.write(g, std::move(v)); }
  [[nodiscard]] auto try_local_ref(gid_type g)
    requires view_detail::has_local_ref<V>
  {
    return m_v.try_local_ref(g);
  }

  /// Filtered chunk descriptors: runs of the matching GIDs, annotated with
  /// the base view's cached-at knowledge when it exposes any (the filter
  /// keeps the base's GID space, so digests line up).
  [[nodiscard]] std::vector<chunk_descriptor<gid_type>> chunks(
      std::size_t grain) const
  {
    auto out = tg_detail::make_descriptors(
        tg_detail::chunk_gids(local_gids(), grain), sizeof(value_type));
    if constexpr (requires(V const& v) {
                    v.chunk_affinity(std::uint64_t{}, std::uint64_t{});
                  }) {
      for (auto& d : out)
        d.cached_at = m_v.chunk_affinity(d.digest_lo(), d.digest_hi());
    }
    return out;
  }

  void post_execute() {}

 private:
  mutable V m_v;
  Pred m_pred;
};

// ---------------------------------------------------------------------------
// counting_view — generator view (values computed, not stored)
// ---------------------------------------------------------------------------

/// A view that generates the sequence start, start+1, ... without storage
/// ("pViews that generate values dynamically", Ch. III.A).
template <typename T = std::size_t>
class counting_view {
 public:
  using value_type = T;
  using gid_type = gid1d;

  explicit counting_view(std::size_t n, T start = T{})
      : m_n(n), m_start(start)
  {}

  [[nodiscard]] std::size_t size() const noexcept { return m_n; }
  [[nodiscard]] std::vector<gid_type> local_gids() const
  {
    balanced_partition p(indexed_domain(m_n), num_locations());
    auto const d = p.subdomain(this_location() % p.size());
    std::vector<gid_type> out;
    if (this_location() < p.size())
      for (gid_type g = d.first(); g != d.last(); ++g)
        out.push_back(g);
    return out;
  }
  [[nodiscard]] value_type read(gid_type g) const
  {
    return m_start + static_cast<T>(g);
  }
  /// Chunk descriptors of the generated domain.  Values are computed, not
  /// stored, so every chunk is locality-free: owner is the dealing
  /// location and no cached-at hint applies.
  [[nodiscard]] std::vector<chunk_descriptor<gid_type>> chunks(
      std::size_t grain) const
  {
    return tg_detail::make_descriptors(
        tg_detail::chunk_gids(local_gids(), grain), sizeof(T));
  }

  void post_execute() {}

 private:
  std::size_t m_n;
  T m_start;
};

// ---------------------------------------------------------------------------
// overlap_view (Fig. 2)
// ---------------------------------------------------------------------------

/// A window into the underlying view: element i of an overlap view of
/// A[0,n-1] with parameters (c, l, r) is the range A[c*i, c*i + l+c+r-1].
template <typename V>
class overlap_subrange {
 public:
  using value_type = typename V::value_type;

  overlap_subrange(V* v, gid1d lo, gid1d hi) : m_v(v), m_lo(lo), m_hi(hi) {}

  [[nodiscard]] std::size_t size() const noexcept { return m_hi - m_lo + 1; }
  [[nodiscard]] gid1d first() const noexcept { return m_lo; }
  [[nodiscard]] gid1d last() const noexcept { return m_hi; }
  [[nodiscard]] value_type operator[](std::size_t i) const
  {
    return m_v->read(m_lo + i);
  }

 private:
  V* m_v;
  gid1d m_lo, m_hi;
};

template <typename V>
class overlap_view
    : public view_detail::wrapper_locality_hooks<overlap_view<V>, V> {
 public:
  using base_view = V;
  using gid_type = gid1d;
  using value_type = overlap_subrange<V>;

  /// c = core size, l = left overlap, r = right overlap (Fig. 2).
  overlap_view(V v, std::size_t c, std::size_t l, std::size_t r)
      : m_v(std::move(v)), m_c(c), m_l(l), m_r(r)
  {
    assert(c > 0);
  }

  [[nodiscard]] V const& base() const noexcept { return m_v; }

  /// Number of window elements: windows span c*i .. c*i + (l+c+r-1).
  [[nodiscard]] std::size_t size() const
  {
    std::size_t const n = m_v.size();
    std::size_t const w = m_l + m_c + m_r;
    if (n < w)
      return 0;
    return (n - w) / m_c + 1;
  }

  [[nodiscard]] value_type read(gid_type i) const
  {
    return value_type(&m_v, m_c * i, m_c * i + m_l + m_c + m_r - 1);
  }

  [[nodiscard]] std::vector<gid_type> local_gids() const
  {
    // A window is assigned to the location owning its first element.
    std::vector<gid_type> out;
    std::size_t const n = size();
    for (gid_type i = 0; i < n; ++i)
      if (m_v.container().is_local(m_c * i))
        out.push_back(i);
    return out;
  }

  /// Window index `i` spans underlying elements [c*i, c*i + l+c+r-1]; the
  /// locality metadata is translated into that element space so it lines
  /// up with the other views of the same container.
  [[nodiscard]] std::vector<chunk_descriptor<gid_type>> chunks(
      std::size_t grain) const
  {
    std::size_t const window = m_l + m_c + m_r;
    auto out = tg_detail::make_descriptors(
        tg_detail::chunk_gids(local_gids(), grain),
        m_c * sizeof(typename V::value_type)); // ~c fresh elements per window
    if constexpr (requires(V const& v) {
                    v.chunk_affinity(std::uint64_t{}, std::uint64_t{});
                  }) {
      for (auto& d : out)
        d.cached_at = m_v.chunk_affinity(
            m_c * d.gids.front(), m_c * d.gids.back() + window - 1);
    }
    return out;
  }

  /// Placement feedback arrives in window coordinates; shadow the mixin's
  /// plain forward with the element-space translation.
  void note_chunk_placement(std::uint64_t lo, std::uint64_t hi,
                            location_id where) const
    requires requires(V const& v) { v.note_chunk_placement(lo, hi, where); }
  {
    m_v.note_chunk_placement(m_c * lo, m_c * hi + m_l + m_c + m_r - 1,
                             where);
  }

  void post_execute() {}

 private:
  mutable V m_v;
  std::size_t m_c, m_l, m_r;
};

// ---------------------------------------------------------------------------
// native_view — bViews aligned with the container distribution
// ---------------------------------------------------------------------------

/// Exposes the container's own partition as the view partition
/// (Table II native_pview): all references are local by construction.
template <typename C>
class native_view
    : public view_detail::container_locality_hooks<native_view<C>> {
 public:
  using container_type = C;
  using value_type = typename C::value_type;
  using gid_type = typename C::gid_type;

  explicit native_view(C& c) noexcept : m_c(&c) {}

  [[nodiscard]] C& container() const noexcept { return *m_c; }
  [[nodiscard]] std::size_t size() const { return m_c->size(); }
  [[nodiscard]] std::vector<gid_type> local_gids() const
  {
    return m_c->local_gids();
  }
  [[nodiscard]] value_type read(gid_type g) const
  {
    return m_c->get_element(g);
  }
  void write(gid_type g, value_type v) { m_c->set_element(g, std::move(v)); }
  [[nodiscard]] value_type* try_local_ref(gid_type g)
  {
    return m_c->local_element_ptr(g);
  }

  /// Direct bContainer-wise traversal: f(gid, element&).
  template <typename F>
  void for_each_local(F&& f)
  {
    m_c->for_each_local(std::forward<F>(f));
  }
  /// This location's bView coarsened into ~grain-element chunk descriptors
  /// (the locality pipeline's coarsening API; see runtime/locality.hpp).
  [[nodiscard]] std::vector<chunk_descriptor<gid_type>> chunks(
      std::size_t grain) const
  {
    return view_detail::container_chunks(*m_c, local_gids(), grain);
  }

  void post_execute() {}

 private:
  C* m_c;
};

/// Factory helpers.
template <typename C>
[[nodiscard]] array_1d_view<C> make_array_view(C& c)
{
  return array_1d_view<C>(c);
}
template <typename C>
[[nodiscard]] native_view<C> make_native_view(C& c)
{
  return native_view<C>(c);
}
template <typename C>
[[nodiscard]] balanced_view<C> make_balanced_view(C& c, std::size_t chunks = 0)
{
  return balanced_view<C>(c, chunks);
}

} // namespace stapl

#endif
