#ifndef STAPL_CONTAINERS_GRAPH_GENERATORS_HPP
#define STAPL_CONTAINERS_GRAPH_GENERATORS_HPP

// Graph workload generators for the Ch. XI evaluation:
//   * SSCA2-style generator (Figs. 49/50/51): a collection of cliques with
//     sparse inter-clique edges — the structure class produced by the SSCA#2
//     benchmark generator the dissertation uses;
//   * 2D mesh (Fig. 56 PageRank inputs: square vs elongated);
//   * 2D torus;
//   * balanced binary tree / forest of binary trees (Euler tour, Figs. 43/44);
//   * uniform random (Erdos-Renyi style) directed graphs.
//
// All generators are SPMD collectives: every location adds its share of the
// vertex range [0, n) as explicit descriptors, fences, then adds edges.

#include <cstddef>
#include <random>

#include "../runtime/runtime.hpp"
#include "p_graph.hpp"

namespace stapl {

namespace generator_detail {

/// The slice of [0, n) this location is responsible for creating.
inline std::pair<std::size_t, std::size_t> my_slice(std::size_t n)
{
  std::size_t const p = num_locations();
  std::size_t const me = this_location();
  std::size_t const q = n / p, r = n % p;
  std::size_t const lo = me < r ? me * (q + 1) : r * (q + 1) + (me - r) * q;
  std::size_t const sz = me < r ? q + 1 : q;
  return {lo, lo + sz};
}

/// Adds vertices [lo, hi) on this location (skipped for static graphs,
/// which pre-create their vertex set).
template <typename G>
void add_vertex_range(G& g, std::size_t lo, std::size_t hi)
{
  if (!g.is_static())
    for (std::size_t v = lo; v < hi; ++v)
      g.add_vertex(v, typename G::vertex_property{});
  rmi_fence();
}

} // namespace generator_detail

/// SSCA2-style generator: n vertices grouped into cliques of size up to
/// `max_clique`, fully connected inside the clique, plus inter-clique edges
/// with probability `inter_prob` between consecutive cliques.
template <typename G>
void generate_ssca2(G& g, std::size_t n, std::size_t max_clique = 8,
                    double inter_prob = 0.2, unsigned seed = 17)
{
  auto const [lo, hi] = generator_detail::my_slice(n);
  generator_detail::add_vertex_range(g, lo, hi);

  // Clique membership is a pure function of the vertex id, so locations can
  // generate edges independently: clique k covers [k*max_clique, ...).
  std::mt19937 gen(seed + this_location());
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (std::size_t v = lo; v < hi; ++v) {
    std::size_t const k = v / max_clique;
    std::size_t const clique_lo = k * max_clique;
    std::size_t const clique_hi = std::min(clique_lo + max_clique, n);
    for (std::size_t w = clique_lo; w < clique_hi; ++w)
      if (w != v)
        g.add_edge_async(v, w);
    // Sparse edge into the next clique.
    if (clique_hi < n && coin(gen) < inter_prob)
      g.add_edge_async(v, clique_hi + (v % max_clique) % (n - clique_hi));
  }
  rmi_fence();
}

/// 2D mesh: vertex (i, j) = i*cols + j, 4-neighbourhood edges
/// (the Fig. 56 PageRank input; rows x cols controls the aspect ratio).
template <typename G>
void generate_mesh(G& g, std::size_t rows, std::size_t cols)
{
  std::size_t const n = rows * cols;
  auto const [lo, hi] = generator_detail::my_slice(n);
  generator_detail::add_vertex_range(g, lo, hi);

  for (std::size_t v = lo; v < hi; ++v) {
    std::size_t const i = v / cols, j = v % cols;
    if (j + 1 < cols)
      g.add_edge_async(v, v + 1);
    if (i + 1 < rows)
      g.add_edge_async(v, v + cols);
    if constexpr (G::is_directed) { // directed meshes get both directions
      if (j > 0)
        g.add_edge_async(v, v - 1);
      if (i > 0)
        g.add_edge_async(v, v - cols);
    }
  }
  rmi_fence();
}

/// 2D torus: mesh plus wrap-around edges.
template <typename G>
void generate_torus(G& g, std::size_t rows, std::size_t cols)
{
  std::size_t const n = rows * cols;
  auto const [lo, hi] = generator_detail::my_slice(n);
  generator_detail::add_vertex_range(g, lo, hi);

  for (std::size_t v = lo; v < hi; ++v) {
    std::size_t const i = v / cols, j = v % cols;
    g.add_edge_async(v, i * cols + (j + 1) % cols);
    g.add_edge_async(v, ((i + 1) % rows) * cols + j);
  }
  rmi_fence();
}

/// Balanced binary tree rooted at 0: children of v are 2v+1 and 2v+2.
template <typename G>
void generate_binary_tree(G& g, std::size_t n)
{
  auto const [lo, hi] = generator_detail::my_slice(n);
  generator_detail::add_vertex_range(g, lo, hi);

  for (std::size_t v = lo; v < hi; ++v) {
    if (2 * v + 1 < n)
      g.add_edge_async(v, 2 * v + 1);
    if (2 * v + 2 < n)
      g.add_edge_async(v, 2 * v + 2);
  }
  rmi_fence();
}

/// Uniform random directed graph: every vertex gets `degree` out-edges to
/// uniformly random targets (the dynamic-methods workload of Fig. 49).
template <typename G>
void generate_random(G& g, std::size_t n, std::size_t degree,
                     unsigned seed = 23)
{
  auto const [lo, hi] = generator_detail::my_slice(n);
  generator_detail::add_vertex_range(g, lo, hi);

  std::mt19937 gen(seed + this_location());
  std::uniform_int_distribution<std::size_t> pick(0, n - 1);
  for (std::size_t v = lo; v < hi; ++v)
    for (std::size_t d = 0; d < degree; ++d) {
      std::size_t w = pick(gen);
      if (w == v)
        w = (w + 1) % n;
      g.add_edge_async(v, w);
    }
  rmi_fence();
}

/// Directed acyclic layered graph: `layers` layers of `width` vertices; each
/// vertex has edges to random vertices of the next layer.  Sources are
/// exactly the first layer (the find_sources workload of Fig. 51).
template <typename G>
void generate_dag(G& g, std::size_t layers, std::size_t width,
                  std::size_t degree = 2, unsigned seed = 29)
{
  std::size_t const n = layers * width;
  auto const [lo, hi] = generator_detail::my_slice(n);
  generator_detail::add_vertex_range(g, lo, hi);

  std::mt19937 gen(seed + this_location());
  for (std::size_t v = lo; v < hi; ++v) {
    std::size_t const layer = v / width;
    if (layer + 1 == layers)
      continue;
    // One deterministic same-column edge guarantees every vertex of layers
    // 1..L-1 has in-degree >= 1 (sources are exactly the first layer).
    g.add_edge_async(v, v + width);
    for (std::size_t d = 1; d < degree; ++d) {
      std::size_t const w = (layer + 1) * width + gen() % width;
      g.add_edge_async(v, w);
    }
  }
  rmi_fence();
}

} // namespace stapl

#endif
