#ifndef STAPL_CONTAINERS_P_VECTOR_HPP
#define STAPL_CONTAINERS_P_VECTOR_HPP

// The stapl pVector (dissertation Ch. V.F, Fig. 12d): a sequence pContainer
// that also implements the indexed interface.  Derivation chain:
//   p_container_base -> p_container_dynamic -> p_container_indexed -> p_vector.
//
// The pVector starts from a balanced blocked partition; inserts and erases
// make the blocks unbalanced (`pv_unbalanced_partition`, Ch. V.D.4).  Index
// resolution uses a replicated snapshot of the block sizes; dynamic
// operations update live local sizes and the snapshot is refreshed by the
// collective flush() (the post_execute re-synchronization of Ch. VII.H).
// This is the documented trade-off of Ch. V.F: random access in O(1),
// inserts in O(block) — the opposite profile of the pList.

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "../core/container_base.hpp"

namespace stapl {

/// Partition of [0, n) into contiguous blocks of explicitly tracked sizes;
/// initially balanced, arbitrarily unbalanced after dynamic operations.
class pv_unbalanced_partition {
 public:
  using domain_type = indexed_domain;
  using gid_type = gid1d;

  pv_unbalanced_partition() : m_cum{0} {}
  explicit pv_unbalanced_partition(std::vector<std::size_t> const& sizes)
  {
    set_sizes(sizes);
  }

  void set_sizes(std::vector<std::size_t> const& sizes)
  {
    m_cum.assign(1, 0);
    for (std::size_t s : sizes)
      m_cum.push_back(m_cum.back() + s);
  }

  void set_domain(domain_type d)
  {
    // Balanced split of the incoming domain over the current block count.
    std::size_t const parts = std::max<std::size_t>(size(), 1);
    std::vector<std::size_t> sizes(parts);
    for (std::size_t b = 0; b != parts; ++b)
      sizes[b] = d.size() / parts + (b < d.size() % parts ? 1 : 0);
    set_sizes(sizes);
  }

  [[nodiscard]] domain_type domain() const
  {
    return indexed_domain(m_cum.back());
  }
  [[nodiscard]] std::size_t size() const noexcept
  {
    return m_cum.size() - 1;
  }

  [[nodiscard]] bcid_type get_info(gid_type g) const noexcept
  {
    auto it = std::upper_bound(m_cum.begin() + 1, m_cum.end(), g);
    return static_cast<bcid_type>(
        std::min<std::ptrdiff_t>(it - m_cum.begin() - 1,
                                 static_cast<std::ptrdiff_t>(size()) - 1));
  }
  [[nodiscard]] std::size_t subdomain_size(bcid_type b) const noexcept
  {
    return m_cum[b + 1] - m_cum[b];
  }
  [[nodiscard]] std::size_t local_index(gid_type g) const noexcept
  {
    return g - m_cum[get_info(g)];
  }
  [[nodiscard]] gid_type gid_of(bcid_type b, std::size_t i) const noexcept
  {
    return m_cum[b] + i;
  }
  [[nodiscard]] indexed_domain subdomain(bcid_type b) const noexcept
  {
    return {m_cum[b], m_cum[b + 1]};
  }

  void define_type(typer& t) { t.member(m_cum); }

 private:
  std::vector<std::size_t> m_cum; ///< exclusive prefix sums; size() + 1 entries
};

template <typename T>
struct p_vector_traits {
  using bcontainer_type = vector_bcontainer<T>;
  using mapper_type = blocked_mapper;
  using ths_manager_type = default_thread_safety_manager;
};

template <typename T, typename Traits = p_vector_traits<T>>
class p_vector final
    : public p_container_indexed<
          p_vector<T, Traits>,
          detail::indexed_traits_bundle<T, pv_unbalanced_partition, Traits>,
          p_container_dynamic> {
  using base = p_container_indexed<
      p_vector<T, Traits>,
      detail::indexed_traits_bundle<T, pv_unbalanced_partition, Traits>,
      p_container_dynamic>;

 public:
  using typename base::gid_type;
  using typename base::value_type;

  /// Collective: pVector of n elements (balanced across locations).
  explicit p_vector(std::size_t n = 0, T const& init = T{})
  {
    std::vector<std::size_t> sizes(num_locations());
    for (std::size_t b = 0; b != sizes.size(); ++b)
      sizes[b] = n / sizes.size() + (b < n % sizes.size() ? 1 : 0);
    this->m_partition.set_sizes(sizes);
    this->m_mapper.init(sizes.size(), num_locations());
    for (bcid_type b : this->m_mapper.local_bcids(this->get_location_id()))
      this->m_lm.emplace_bcontainer(b, b, sizes[b], init);
    rmi_fence();
  }

  ~p_vector() override { rmi_fence(); }

  /// Snapshot size (exact after flush()).
  [[nodiscard]] std::size_t size() const
  {
    return this->m_partition.domain().size();
  }
  [[nodiscard]] bool empty() const { return size() == 0; }

  /// Appends at the end of the vector (last block).  Asynchronous;
  /// amortized O(1).
  void push_back(T val)
  {
    bcid_type const tail = this->m_partition.size() - 1;
    route_to_block(tail, [val = std::move(val)](p_vector& c, bcid_type b) {
      c.bc(b).push_back(val);
    });
  }

  void pop_back()
  {
    bcid_type const tail = this->m_partition.size() - 1;
    route_to_block(tail, [](p_vector& c, bcid_type b) {
      if (!c.bc(b).data().empty())
        c.bc(b).pop_back();
    });
  }

  /// Inserts `val` before index `idx` (position per the current snapshot).
  /// Asynchronous; O(block) on the owner.
  void insert_async(gid_type idx, T val)
  {
    this->invoke(MP_INSERT, std::min(idx, last_gid()),
                 [idx, val = std::move(val)](p_vector& c, bcid_type b) {
                   auto& bc = c.bc(b);
                   std::size_t const li = std::min(
                       c.partition().local_index(idx), bc.size());
                   bc.insert(li, val);
                 });
  }

  /// Erases the element at index `idx` (per the current snapshot).
  void erase_async(gid_type idx)
  {
    this->invoke(MP_ERASE, idx, [idx](p_vector& c, bcid_type b) {
      auto& bc = c.bc(b);
      std::size_t const li = c.partition().local_index(idx);
      if (li < bc.size())
        bc.erase(li);
    });
  }

  /// Indexed access clamped against the *live* block size: between flushes
  /// the replicated snapshot may lag behind dynamic operations, so the
  /// owner clamps the local offset rather than running off the block
  /// (exact again after flush()).
  void set_element(gid_type idx, T val)
  {
    this->invoke(MP_SET_ELEMENT, idx,
                 [idx, val = std::move(val)](p_vector& c, bcid_type b) {
                   auto& bc = c.bc(b);
                   if (bc.size() == 0)
                     return;
                   std::size_t const li = std::min(
                       c.partition().local_index(idx), bc.size() - 1);
                   bc.set(li, val);
                 });
  }

  [[nodiscard]] T get_element(gid_type idx)
  {
    return this->invoke_ret(MP_GET_ELEMENT, idx,
                            [idx](p_vector& c, bcid_type b) {
                              auto& bc = c.bc(b);
                              if (bc.size() == 0)
                                return T{};
                              std::size_t const li = std::min(
                                  c.partition().local_index(idx),
                                  bc.size() - 1);
                              return bc.at(li);
                            });
  }

  /// Collective: re-synchronizes the replicated block-size snapshot with the
  /// live bContainer sizes (Ch. VII.H post_execute).
  void flush()
  {
    rmi_fence(); // complete pending dynamic operations first
    std::size_t local = 0;
    for (auto& [bcid, bcptr] : this->m_lm)
      local += bcptr->size();
    auto const sizes = allgather(local);
    this->m_partition.set_sizes(sizes);
    rmi_fence();
  }

 private:
  [[nodiscard]] gid_type last_gid() const
  {
    auto const n = this->m_partition.domain().size();
    return n == 0 ? 0 : n - 1;
  }

  template <typename Action>
  void route_to_block(bcid_type b, Action action)
  {
    location_id const loc = this->m_mapper.map(b);
    if (loc == this->get_location_id()) {
      ths_info ti{MP_PUSH_BACK, b};
      this->m_ths.data_access_pre(ti);
      action(*this, b);
      this->m_ths.data_access_post(ti);
      return;
    }
    async_rmi<p_vector>(loc, this->get_handle(),
                        [b, action = std::move(action)](p_vector& c) mutable {
                          ths_info ti{MP_PUSH_BACK, b};
                          c.m_ths.data_access_pre(ti);
                          action(c, b);
                          c.m_ths.data_access_post(ti);
                        });
  }
};

} // namespace stapl

#endif
