#ifndef STAPL_CONTAINERS_P_LIST_HPP
#define STAPL_CONTAINERS_P_LIST_HPP

// The stapl pList (dissertation Ch. X): a dynamic sequence pContainer.
// Derivation chain (Fig. 35):
//   p_container_base -> p_container_dynamic -> p_container_sequence -> p_list.
//
// The list is stored as an ordered chain of list bContainers (Fig. 37); the
// global sequence order is the concatenation of the bContainers in bCID
// order, with list order inside each.  Elements carry `dynamic_gid`s that
// encode their home bContainer, so element-wise methods resolve in closed
// form and run in O(1) (Table XXIV complexity guarantees).
//
// Two flavors of insertion exist (Ch. V.B "new methods facilitating parallel
// use"): the semantic push_back/push_front target the global tail/head
// bContainers, while push_anywhere_async appends to the *local* bContainer,
// trading position control for perfect locality and load balance.

#include <cstddef>
#include <utility>
#include <vector>

#include "../core/container_base.hpp"

namespace stapl {

template <typename T>
struct p_list_traits {
  using bcontainer_type = list_bcontainer<T>;
  using mapper_type = blocked_mapper;
  using ths_manager_type = default_thread_safety_manager;
};

namespace detail {

template <typename T, typename Traits>
struct list_traits_bundle {
  using value_type = T;
  using partition_type = dynamic_partition;
  using mapper_type = typename Traits::mapper_type;
  using bcontainer_type = typename Traits::bcontainer_type;
  using ths_manager_type = typename Traits::ths_manager_type;
};

} // namespace detail

// ---------------------------------------------------------------------------
// p_container_sequence (Table XVIII)
// ---------------------------------------------------------------------------

template <typename Derived, typename Traits>
class p_container_sequence : public p_container_dynamic<Derived, Traits> {
  using base = p_container_dynamic<Derived, Traits>;

 public:
  using typename base::value_type;
  using gid_type = dynamic_gid;
  using reference = element_proxy<Derived>;

  // -- element access (sequence containers also support gid access) --------

  void set_element(gid_type gid, value_type val)
  {
    this->invoke(MP_SET_ELEMENT, gid,
                 [gid, val = std::move(val)](Derived& c, bcid_type b) {
                   c.bc(b).set(gid, val);
                 });
  }

  [[nodiscard]] value_type get_element(gid_type gid)
  {
    return this->invoke_ret(MP_GET_ELEMENT, gid,
                            [gid](Derived& c, bcid_type b) {
                              return c.bc(b).at(gid);
                            });
  }

  [[nodiscard]] pc_future<value_type> split_phase_get_element(gid_type gid)
  {
    return this->invoke_split(MP_GET_ELEMENT, gid,
                              [gid](Derived& c, bcid_type b) {
                                return c.bc(b).at(gid);
                              });
  }

  template <typename F>
  void apply_set(gid_type gid, F f)
  {
    this->invoke(MP_APPLY, gid,
                 [gid, f = std::move(f)](Derived& c, bcid_type b) mutable {
                   f(c.bc(b).at(gid));
                 });
  }

  template <typename F>
  [[nodiscard]] auto apply_get(gid_type gid, F f)
  {
    return this->invoke_ret(MP_APPLY, gid,
                            [gid, f = std::move(f)](Derived& c,
                                                    bcid_type b) mutable {
                              return f(c.bc(b).at(gid));
                            });
  }

  [[nodiscard]] reference operator[](gid_type gid)
  {
    return reference(this->derived(), gid);
  }

  // -- sequence mutation ----------------------------------------------------

  /// Appends at the global tail (last bContainer).  Asynchronous.
  void push_back(value_type val)
  {
    bcid_type const tail = this->m_partition.size() - 1;
    send_to_bcid(MP_PUSH_BACK, tail,
                 [val = std::move(val)](Derived& c, bcid_type b) {
                   (void)c.bc(b).push_back(val);
                 });
  }

  /// Prepends at the global head (first bContainer).  Asynchronous.
  void push_front(value_type val)
  {
    send_to_bcid(MP_PUSH_FRONT, bcid_type{0},
                 [val = std::move(val)](Derived& c, bcid_type b) {
                   (void)c.bc(b).push_front(val);
                 });
  }

  void pop_back()
  {
    bcid_type const tail = this->m_partition.size() - 1;
    send_to_bcid(MP_POP_BACK, tail,
                 [](Derived& c, bcid_type b) { c.bc(b).pop_back(); });
  }

  void pop_front()
  {
    send_to_bcid(MP_POP_FRONT, bcid_type{0},
                 [](Derived& c, bcid_type b) { c.bc(b).pop_front(); });
  }

  /// Inserts before `gid` asynchronously.
  void insert_element_async(gid_type gid, value_type val)
  {
    this->invoke(MP_INSERT, gid,
                 [gid, val = std::move(val)](Derived& c, bcid_type b) {
                   (void)c.bc(b).insert_before(gid, val);
                 });
  }

  /// Inserts before `gid`; returns the GID of the new element.  Synchronous.
  [[nodiscard]] gid_type insert_element(gid_type gid, value_type val)
  {
    return this->invoke_ret(MP_INSERT, gid,
                            [gid, val = std::move(val)](Derived& c,
                                                        bcid_type b) {
                              return c.bc(b).insert_before(gid, val);
                            });
  }

  void erase_element(gid_type gid)
  {
    this->invoke(MP_ERASE, gid,
                 [gid](Derived& c, bcid_type b) { c.bc(b).erase(gid); });
  }

  /// Adds an element at an unspecified position: the *local* bContainer,
  /// giving constant-time, communication-free insertion (Ch. V.B).
  void push_anywhere_async(value_type val)
  {
    bcid_type const b = local_home_bcid();
    ths_info ti{MP_PUSH_BACK, b};
    this->m_ths.data_access_pre(ti);
    (void)this->bc(b).push_back(std::move(val));
    this->m_ths.data_access_post(ti);
  }

  /// Adds locally and returns the new element's GID.
  [[nodiscard]] gid_type push_anywhere(value_type val)
  {
    bcid_type const b = local_home_bcid();
    ths_info ti{MP_PUSH_BACK, b};
    this->m_ths.data_access_pre(ti);
    auto g = this->bc(b).push_back(std::move(val));
    this->m_ths.data_access_post(ti);
    return g;
  }

  /// Reference to some local element (unspecified which).
  [[nodiscard]] value_type& get_anywhere()
  {
    auto& bc = this->bc(local_home_bcid());
    assert(!bc.empty());
    return bc.at(bc.front_gid());
  }

  /// Removes some local element (unspecified which).
  void remove_element()
  {
    auto& bc = this->bc(local_home_bcid());
    if (!bc.empty())
      bc.pop_back();
  }

  /// First bContainer of this location (its "home" for anywhere-inserts).
  [[nodiscard]] bcid_type local_home_bcid() const
  {
    auto locals = this->m_mapper.local_bcids(this->get_location_id());
    assert(!locals.empty());
    return locals.front();
  }

  /// GIDs of local elements in sequence order.
  [[nodiscard]] std::vector<gid_type> local_gids() const
  {
    std::vector<gid_type> out;
    out.reserve(this->m_lm.local_size());
    for (auto const& [bcid, bcptr] : this->m_lm)
      for (auto const& [gid, value] : *bcptr)
        out.push_back(gid);
    return out;
  }

  /// Applies f(gid, element&) over local elements in sequence order.
  template <typename F>
  void for_each_local(F&& f)
  {
    for (auto& [bcid, bcptr] : this->m_lm)
      for (auto& [gid, value] : *bcptr)
        f(gid, value);
  }

  [[nodiscard]] value_type* local_element_ptr(gid_type gid)
  {
    auto const r = this->derived().resolve(gid);
    if (!r.resolved || r.loc != this->get_location_id())
      return nullptr;
    auto& bc = this->bc(r.bcid);
    return bc.contains(gid) ? &bc.at(gid) : nullptr;
  }

 private:
  template <typename Action>
  void send_to_bcid(std::size_t method, bcid_type b, Action action)
  {
    location_id const loc = this->m_mapper.map(b);
    if (loc == this->get_location_id()) {
      ths_info ti{method, b};
      this->m_ths.data_access_pre(ti);
      action(this->derived(), b);
      this->m_ths.data_access_post(ti);
      return;
    }
    async_rmi<Derived>(loc, this->get_handle(),
                       [method, b, action = std::move(action)](
                           Derived& c) mutable {
                         ths_info ti{method, b};
                         c.ths().data_access_pre(ti);
                         action(c, b);
                         c.ths().data_access_post(ti);
                       });
  }

 public:
  /// Framework access to the thread-safety manager (used by forwarded ops).
  [[nodiscard]] auto& ths() noexcept { return this->m_ths; }
};

// ---------------------------------------------------------------------------
// p_list
// ---------------------------------------------------------------------------

template <typename T, typename Traits = p_list_traits<T>>
class p_list final
    : public p_container_sequence<p_list<T, Traits>,
                                  detail::list_traits_bundle<T, Traits>> {
  using base = p_container_sequence<p_list<T, Traits>,
                                    detail::list_traits_bundle<T, Traits>>;

 public:
  using typename base::gid_type;
  using typename base::value_type;

  /// Collective: empty pList with `per_location` bContainers per location
  /// (Fig. 37 shows how multiple sub-lists per location are chained).
  explicit p_list(std::size_t per_location = 1)
  {
    std::size_t const nparts = per_location * num_locations();
    this->m_partition = dynamic_partition(nparts);
    this->m_mapper.init(nparts, num_locations());
    for (bcid_type b : this->m_mapper.local_bcids(this->get_location_id()))
      this->m_lm.emplace_bcontainer(b, b);
    rmi_fence();
  }

  ~p_list() override { rmi_fence(); }
};

} // namespace stapl

#endif
