#ifndef STAPL_CONTAINERS_P_GRAPH_HPP
#define STAPL_CONTAINERS_P_GRAPH_HPP

// The stapl pGraph (dissertation Ch. XI): a relational pContainer of
// vertices and edges (Table XVII/XXVII).  Derivation (Fig. 12e):
//   p_container_base -> p_container_dynamic -> p_container_relational
//   -> p_graph.
//
// Three address-translation modes are supported (the Fig. 51/52 study):
//   * static_balanced      — fixed vertex set [0, N), closed-form resolution
//                            (partition + mapper), no metadata traffic;
//   * dynamic_forwarding   — vertices live where they were added; a
//                            distributed directory (home = hash(gid) mod P)
//                            maps GID -> owner, and requests *migrate*
//                            through the home toward the owner;
//   * dynamic_no_forwarding— same directory, but the requester synchronously
//                            fetches the owner from the home first (two
//                            round trips, no computation migration).
//
// Vertex storage is customizable through the traits (Fig. 16): hashed map
// storage for dynamic graphs or dense vector storage for static ones.
//
// Dynamic graphs are directory-backed from birth, so they opt straight into
// hot-vertex load balancing (core/load_balancer.hpp):
// enable_load_balancing() starts owner-side access tracking, and
// rebalance()/advance_epoch() migrate the hottest vertices (property and
// out-edge list, see the migration hooks below) off overloaded locations.
// High-degree hub vertices of skewed graphs are the canonical case.

#include <cassert>
#include <cstddef>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "../core/container_base.hpp"

namespace stapl {

enum class graph_directedness { directed, undirected };
enum class graph_multiplicity { multi, non_multi };
enum class graph_partition_kind {
  static_balanced,
  dynamic_forwarding,
  dynamic_no_forwarding
};

inline constexpr auto DIRECTED = graph_directedness::directed;
inline constexpr auto UNDIRECTED = graph_directedness::undirected;
inline constexpr auto MULTI = graph_multiplicity::multi;
inline constexpr auto NONMULTI = graph_multiplicity::non_multi;

/// Property placeholder for property-less graphs.
struct no_property {
  void define_type(typer&) {}
  [[nodiscard]] bool operator==(no_property const&) const = default;
};

/// Vertex identifier. For dynamic graphs, auto-allocated descriptors encode
/// the creating location in the high bits.
using vertex_descriptor = std::size_t;

/// Edge reference: (source, target) pair (Table XXVI).
struct edge_descriptor {
  vertex_descriptor source = 0;
  vertex_descriptor target = 0;
  [[nodiscard]] bool operator==(edge_descriptor const&) const = default;
  void define_type(typer& t)
  {
    t.member(source);
    t.member(target);
  }
};

// ---------------------------------------------------------------------------
// Graph base container
// ---------------------------------------------------------------------------

template <typename EP>
struct graph_edge {
  vertex_descriptor target = 0;
  EP property{};
};

/// Adjacency-list storage for the vertices of one location
/// (hashed map storage; Ch. XI.D / Fig. 16 "std::map storage").
template <typename VP, typename EP>
class graph_bcontainer {
 public:
  using vertex_property = VP;
  using edge_property = EP;
  using edge_type = graph_edge<EP>;

  struct vertex_record {
    VP property{};
    std::vector<edge_type> edges;
  };

  graph_bcontainer() = default;
  explicit graph_bcontainer(bcid_type bcid) : m_bcid(bcid) {}

  [[nodiscard]] std::size_t size() const noexcept { return m_v.size(); }
  [[nodiscard]] bool empty() const noexcept { return m_v.empty(); }
  [[nodiscard]] bcid_type get_bcid() const noexcept { return m_bcid; }
  void clear()
  {
    m_v.clear();
    m_edges = 0;
  }

  bool add_vertex(vertex_descriptor v, VP vp)
  {
    return m_v.emplace(v, vertex_record{std::move(vp), {}}).second;
  }
  bool delete_vertex(vertex_descriptor v)
  {
    auto it = m_v.find(v);
    if (it == m_v.end())
      return false;
    m_edges -= it->second.edges.size();
    m_v.erase(it);
    return true;
  }
  /// Removes the vertex and returns its record (edge count stays
  /// consistent — used by the migration protocol).
  [[nodiscard]] vertex_record extract_vertex(vertex_descriptor v)
  {
    auto it = m_v.find(v);
    assert(it != m_v.end() && "extract_vertex: vertex not here");
    vertex_record rec = std::move(it->second);
    m_edges -= rec.edges.size();
    m_v.erase(it);
    return rec;
  }
  [[nodiscard]] bool has_vertex(vertex_descriptor v) const
  {
    return m_v.count(v) != 0;
  }
  [[nodiscard]] vertex_record& vertex(vertex_descriptor v)
  {
    return m_v.at(v);
  }
  [[nodiscard]] vertex_record const& vertex(vertex_descriptor v) const
  {
    return m_v.at(v);
  }

  /// Adds an out-edge at `src` (which must be local).  Returns false when a
  /// duplicate target exists and multi-edges are disallowed.
  bool add_edge(vertex_descriptor src, vertex_descriptor tgt, EP ep,
                bool multi)
  {
    auto& rec = m_v.at(src);
    if (!multi)
      for (auto const& e : rec.edges)
        if (e.target == tgt)
          return false;
    rec.edges.push_back(edge_type{tgt, std::move(ep)});
    ++m_edges;
    return true;
  }

  bool delete_edge(vertex_descriptor src, vertex_descriptor tgt)
  {
    auto it = m_v.find(src);
    if (it == m_v.end())
      return false;
    auto& es = it->second.edges;
    for (auto e = es.begin(); e != es.end(); ++e)
      if (e->target == tgt) {
        es.erase(e);
        --m_edges;
        return true;
      }
    return false;
  }

  [[nodiscard]] std::size_t num_local_edges() const noexcept
  {
    return m_edges;
  }

  [[nodiscard]] auto begin() noexcept { return m_v.begin(); }
  [[nodiscard]] auto end() noexcept { return m_v.end(); }
  [[nodiscard]] auto begin() const noexcept { return m_v.begin(); }
  [[nodiscard]] auto end() const noexcept { return m_v.end(); }

  [[nodiscard]] memory_report memory_size() const noexcept
  {
    std::size_t data = 0;
    for (auto const& [v, rec] : m_v)
      data += sizeof(vertex_record) + rec.edges.capacity() * sizeof(edge_type);
    return {sizeof(*this) + m_v.size() * 4 * sizeof(void*), data};
  }

 private:
  bcid_type m_bcid = invalid_bcid;
  std::unordered_map<vertex_descriptor, vertex_record> m_v;
  std::size_t m_edges = 0;
};

/// Dense vector storage for *static* graphs (the Fig. 16 "vector storage"
/// customization): vertices of the location's contiguous slice [base,
/// base+n) are stored by offset in a flat vector — O(1) access without
/// hashing.  Vertex deletion is not supported (static vertex set).
template <typename VP, typename EP>
class dense_graph_bcontainer {
 public:
  using vertex_property = VP;
  using edge_property = EP;
  using edge_type = graph_edge<EP>;

  struct vertex_record {
    VP property{};
    std::vector<edge_type> edges;
  };

  dense_graph_bcontainer() = default;
  explicit dense_graph_bcontainer(bcid_type bcid) : m_bcid(bcid) {}

  [[nodiscard]] std::size_t size() const noexcept { return m_v.size(); }
  [[nodiscard]] bool empty() const noexcept { return m_v.empty(); }
  [[nodiscard]] bcid_type get_bcid() const noexcept { return m_bcid; }
  void clear()
  {
    m_v.clear();
    m_edges = 0;
  }

  /// Vertices must arrive in ascending contiguous order (static init).
  bool add_vertex(vertex_descriptor v, VP vp)
  {
    if (m_v.empty())
      m_base = v;
    assert(v == m_base + m_v.size() && "dense storage requires contiguous ids");
    m_v.push_back({v, vertex_record{std::move(vp), {}}});
    return true;
  }
  bool delete_vertex(vertex_descriptor)
  {
    assert(false && "dense (static) graph storage cannot delete vertices");
    return false;
  }
  [[nodiscard]] bool has_vertex(vertex_descriptor v) const noexcept
  {
    return v >= m_base && v < m_base + m_v.size();
  }
  [[nodiscard]] vertex_record& vertex(vertex_descriptor v)
  {
    return m_v[v - m_base].second;
  }
  [[nodiscard]] vertex_record const& vertex(vertex_descriptor v) const
  {
    return m_v[v - m_base].second;
  }

  bool add_edge(vertex_descriptor src, vertex_descriptor tgt, EP ep,
                bool multi)
  {
    auto& rec = vertex(src);
    if (!multi)
      for (auto const& e : rec.edges)
        if (e.target == tgt)
          return false;
    rec.edges.push_back(edge_type{tgt, std::move(ep)});
    ++m_edges;
    return true;
  }

  bool delete_edge(vertex_descriptor src, vertex_descriptor tgt)
  {
    if (!has_vertex(src))
      return false;
    auto& es = vertex(src).edges;
    for (auto e = es.begin(); e != es.end(); ++e)
      if (e->target == tgt) {
        es.erase(e);
        --m_edges;
        return true;
      }
    return false;
  }

  [[nodiscard]] std::size_t num_local_edges() const noexcept
  {
    return m_edges;
  }

  [[nodiscard]] auto begin() noexcept { return m_v.begin(); }
  [[nodiscard]] auto end() noexcept { return m_v.end(); }
  [[nodiscard]] auto begin() const noexcept { return m_v.begin(); }
  [[nodiscard]] auto end() const noexcept { return m_v.end(); }

  [[nodiscard]] memory_report memory_size() const noexcept
  {
    std::size_t data = 0;
    for (auto const& [v, rec] : m_v)
      data += sizeof(vertex_record) + rec.edges.capacity() * sizeof(edge_type);
    return {sizeof(*this), data};
  }

 private:
  bcid_type m_bcid = invalid_bcid;
  std::size_t m_base = 0;
  std::vector<std::pair<vertex_descriptor, vertex_record>> m_v;
  std::size_t m_edges = 0;
};

/// Traits selecting dense vector storage (static graphs only) — the
/// Ch. V.H / Fig. 16 customization.
template <typename VP, typename EP>
struct p_static_graph_traits {
  using bcontainer_type = dense_graph_bcontainer<VP, EP>;
  using mapper_type = cyclic_mapper;
  using ths_manager_type = default_thread_safety_manager;
};

/// Partition facade for graphs: one bContainer per location.  Static graphs
/// resolve in closed form over [0, N); dynamic graphs bypass get_info (the
/// container's resolve override consults the directory instead).
class graph_partition {
 public:
  using gid_type = vertex_descriptor;
  using domain_type = indexed_domain;

  graph_partition() = default;
  graph_partition(graph_partition_kind kind, std::size_t n, unsigned p)
      : m_kind(kind), m_n(n), m_p(p)
  {}

  [[nodiscard]] graph_partition_kind kind() const noexcept { return m_kind; }
  [[nodiscard]] std::size_t size() const noexcept { return m_p; }
  [[nodiscard]] domain_type domain() const { return indexed_domain(m_n); }

  /// Closed-form owner of a static vertex (balanced split of [0, N)).
  [[nodiscard]] bcid_type get_info(gid_type v) const noexcept
  {
    assert(m_kind == graph_partition_kind::static_balanced);
    std::size_t const q = m_n / m_p, r = m_n % m_p;
    std::size_t const big = r * (q + 1);
    return v < big ? v / (q + 1) : r + (v - big) / (q > 0 ? q : 1);
  }

  void define_type(typer& t)
  {
    t.member(m_kind);
    t.member(m_n);
    t.member(m_p);
  }

 private:
  graph_partition_kind m_kind = graph_partition_kind::static_balanced;
  std::size_t m_n = 0;
  unsigned m_p = 1;
};

template <typename VP, typename EP>
struct p_graph_traits {
  using bcontainer_type = graph_bcontainer<VP, EP>;
  using mapper_type = cyclic_mapper; // bcid == location (identity for p==p)
  using ths_manager_type = default_thread_safety_manager;
};

namespace detail {

template <typename VP, typename EP, typename Traits>
struct graph_traits_bundle {
  using value_type = VP;
  using partition_type = graph_partition;
  using mapper_type = typename Traits::mapper_type;
  using bcontainer_type = typename Traits::bcontainer_type;
  using ths_manager_type = typename Traits::ths_manager_type;
};

} // namespace detail

// ---------------------------------------------------------------------------
// p_graph
// ---------------------------------------------------------------------------

template <graph_directedness D, graph_multiplicity M,
          typename VP = no_property, typename EP = no_property,
          typename Traits = p_graph_traits<VP, EP>>
class p_graph final
    : public p_container_dynamic<p_graph<D, M, VP, EP, Traits>,
                                 detail::graph_traits_bundle<VP, EP, Traits>> {
  using base = p_container_dynamic<p_graph<D, M, VP, EP, Traits>,
                                   detail::graph_traits_bundle<VP, EP, Traits>>;

 public:
  using vertex_property = VP;
  using edge_property = EP;
  using gid_type = vertex_descriptor;
  using bcontainer_type = typename Traits::bcontainer_type;
  using vertex_record = typename bcontainer_type::vertex_record;

  static constexpr bool is_directed = (D == graph_directedness::directed);
  static constexpr bool is_multi = (M == graph_multiplicity::multi);

  /// Collective: dynamic pGraph (empty), with or without method forwarding.
  explicit p_graph(graph_partition_kind kind =
                       graph_partition_kind::dynamic_forwarding)
  {
    assert(kind != graph_partition_kind::static_balanced &&
           "static graphs must be constructed with a vertex count");
    init(kind, 0);
  }

  /// Collective: static pGraph with n pre-created vertices [0, n).
  explicit p_graph(std::size_t n,
                   graph_partition_kind kind =
                       graph_partition_kind::static_balanced)
  {
    init(kind, n);
  }

  ~p_graph() override { rmi_fence(); }

  [[nodiscard]] graph_partition_kind partition_kind() const noexcept
  {
    return this->m_partition.kind();
  }
  [[nodiscard]] bool is_static() const noexcept
  {
    return partition_kind() == graph_partition_kind::static_balanced;
  }

  // -------------------------------------------------------------------------
  // Address resolution (Fig. 7 + the Ch. XI.F.2 translation mechanisms)
  // -------------------------------------------------------------------------

  [[nodiscard]] resolution resolve(gid_type v) const
  {
    if (is_static()) {
      bcid_type const b = this->m_partition.get_info(v);
      return resolution::at(b, static_cast<location_id>(b));
    }
    // Dynamic graphs resolve through the core directory subsystem: local
    // knowledge first (ownership, home record, owner cache), else the
    // request is routed toward the home.  Element methods do not reach this
    // path (invoke() routes through directory::invoke_where); it serves the
    // view layer's is_local/lookup queries.
    if (auto const o = this->get_directory().try_resolve(v))
      return resolution::at(*o, *o); // one bContainer per location: bcid==loc
    return resolution::forward_to(home_of(v));
  }

  /// Home location of a dynamic vertex's directory entry.
  [[nodiscard]] location_id home_of(gid_type v) const noexcept
  {
    return this->get_directory().home_of(v);
  }

  /// Local dispatch for directory-routed methods: all local vertices live
  /// in this location's single bContainer.
  [[nodiscard]] bcid_type dyn_local_bcid(gid_type) const noexcept
  {
    return this->get_location_id();
  }

  // -------------------------------------------------------------------------
  // Migration protocol hooks (see core/migration.hpp): a vertex migrates
  // with its property and out-edge list; in-edges elsewhere keep their
  // target descriptor, which stays valid under directory resolution.
  // -------------------------------------------------------------------------

  [[nodiscard]] vertex_record extract_element(gid_type v)
  {
    return this->bc(this->get_location_id()).extract_vertex(v);
  }

  void insert_migrated(gid_type v, vertex_record rec)
  {
    auto& bc = this->bc(this->get_location_id());
    (void)bc.add_vertex(v, std::move(rec.property));
    for (auto& e : rec.edges)
      (void)bc.add_edge(v, e.target, std::move(e.property), true);
  }

  // -------------------------------------------------------------------------
  // Vertex methods (Table XVII)
  // -------------------------------------------------------------------------

  /// Adds a vertex on this location; returns its descriptor.  Dynamic only.
  gid_type add_vertex(VP vp = VP{})
  {
    assert(!is_static() && "add_vertex on a static pGraph");
    gid_type const v = next_descriptor();
    add_vertex(v, std::move(vp));
    return v;
  }

  /// Adds a vertex with an explicit descriptor.  Dynamic graphs store it on
  /// the *calling* location and register it with the directory home
  /// (asynchronously — complete at the next fence).  Static graphs route the
  /// property to the closed-form owner of `gid`.
  void add_vertex(gid_type gid, VP vp)
  {
    if (is_static()) {
      this->invoke(MP_ADD_VERTEX, gid,
                   [gid, vp = std::move(vp)](p_graph& g, bcid_type b) {
                     auto& bc = g.bc(b);
                     if (bc.has_vertex(gid))
                       bc.vertex(gid).property = vp;
                     else
                       bc.add_vertex(gid, vp);
                   });
      return;
    }
    bcid_type const me = this->get_location_id();
    {
      ths_info ti{MP_ADD_VERTEX, me};
      this->m_ths.data_access_pre(ti);
      this->bc(me).add_vertex(gid, std::move(vp));
      this->m_ths.data_access_post(ti);
    }
    this->get_directory().register_gid(gid);
  }

  /// Deletes a vertex (its record and out-edges).  As in the dissertation,
  /// this is not a transaction: directory update and record removal are
  /// individually atomic, in-edges elsewhere are not chased.
  void delete_vertex(gid_type v)
  {
    this->invoke(MP_DELETE_VERTEX, v, [v](p_graph& g, bcid_type b) {
      g.bc(b).delete_vertex(v);
      g.dyn_forget(v);
    });
  }

  /// Synchronous existence check.
  [[nodiscard]] bool find_vertex(gid_type v)
  {
    if (is_static()) {
      if (!this->m_partition.domain().contains(v))
        return false;
      return this->invoke_ret(MP_FIND, v, [v](p_graph& g, bcid_type b) {
        return g.bc(b).has_vertex(v);
      });
    }
    // Dynamic: ask the directory home (authoritative, never livelocks on
    // missing vertices; warms this location's owner cache on success).
    return this->get_directory().resolve(v) != invalid_location;
  }

  [[nodiscard]] VP get_vertex_property(gid_type v)
  {
    return this->invoke_ret(MP_GET_ELEMENT, v, [v](p_graph& g, bcid_type b) {
      return g.bc(b).vertex(v).property;
    });
  }

  void set_vertex_property(gid_type v, VP vp)
  {
    this->invoke(MP_SET_ELEMENT, v,
                 [v, vp = std::move(vp)](p_graph& g, bcid_type b) {
                   g.bc(b).vertex(v).property = vp;
                 });
  }

  /// Applies f(vertex_record&) at the vertex, asynchronously.  The workhorse
  /// of the level-synchronous graph algorithms of Ch. XI.F.3.
  template <typename F>
  void apply_vertex(gid_type v, F f)
  {
    this->invoke(MP_APPLY, v,
                 [v, f = std::move(f)](p_graph& g, bcid_type b) mutable {
                   f(g.bc(b).vertex(v));
                 });
  }

  template <typename F>
  [[nodiscard]] auto apply_vertex_get(gid_type v, F f)
  {
    return this->invoke_ret(MP_APPLY, v,
                            [v, f = std::move(f)](p_graph& g,
                                                  bcid_type b) mutable {
                              return f(g.bc(b).vertex(v));
                            });
  }

  // element-view aliases so vertex properties work with generic algorithms
  void set_element(gid_type v, VP vp) { set_vertex_property(v, std::move(vp)); }
  [[nodiscard]] VP get_element(gid_type v) { return get_vertex_property(v); }

  // -------------------------------------------------------------------------
  // Edge methods
  // -------------------------------------------------------------------------

  /// Asynchronous edge insertion (Table XVII add_edge_async).  For
  /// undirected graphs the reverse edge is inserted as well.
  void add_edge_async(gid_type src, gid_type tgt, EP ep = EP{})
  {
    this->invoke(MP_ADD_EDGE, src, [src, tgt, ep](p_graph& g, bcid_type b) {
      (void)g.bc(b).add_edge(src, tgt, ep, is_multi);
    });
    if constexpr (!is_directed) {
      this->invoke(MP_ADD_EDGE, tgt, [src, tgt, ep](p_graph& g, bcid_type b) {
        (void)g.bc(b).add_edge(tgt, src, ep, is_multi);
      });
    }
  }

  /// Synchronous edge insertion; returns the descriptor.
  edge_descriptor add_edge(gid_type src, gid_type tgt, EP ep = EP{})
  {
    bool const ok =
        this->invoke_ret(MP_ADD_EDGE, src,
                         [src, tgt, ep](p_graph& g, bcid_type b) {
                           return g.bc(b).add_edge(src, tgt, ep, is_multi);
                         });
    if constexpr (!is_directed) {
      if (ok)
        this->invoke(MP_ADD_EDGE, tgt,
                     [src, tgt, ep](p_graph& g, bcid_type b) {
                       (void)g.bc(b).add_edge(tgt, src, ep, is_multi);
                     });
    }
    return ok ? edge_descriptor{src, tgt} : edge_descriptor{};
  }

  /// Atomically rewires one out-edge (delete src→old_tgt, insert
  /// src→new_tgt) in a single routed visit at the vertex's owner — the
  /// edge-churn primitive of streaming-graph scenarios: one visit instead
  /// of a delete_edge + add_edge_async pair, and the two mutations are
  /// covered by the same element lock so no observer sees the vertex with
  /// both (or neither) edge.  Directed graphs only: an undirected rewire
  /// would need a second routed visit for the reverse edges.
  void rewire_edge_async(gid_type src, gid_type old_tgt, gid_type new_tgt,
                         EP ep = EP{})
  {
    static_assert(is_directed,
                  "rewire_edge_async is a directed-graph primitive");
    this->invoke(MP_ADD_EDGE, src,
                 [src, old_tgt, new_tgt, ep](p_graph& g, bcid_type b) {
                   (void)g.bc(b).delete_edge(src, old_tgt);
                   (void)g.bc(b).add_edge(src, new_tgt, ep, is_multi);
                 });
  }

  void delete_edge(gid_type src, gid_type tgt)
  {
    this->invoke(MP_DELETE_EDGE, src, [src, tgt](p_graph& g, bcid_type b) {
      (void)g.bc(b).delete_edge(src, tgt);
    });
    if constexpr (!is_directed)
      this->invoke(MP_DELETE_EDGE, tgt, [src, tgt](p_graph& g, bcid_type b) {
        (void)g.bc(b).delete_edge(tgt, src);
      });
  }

  [[nodiscard]] bool find_edge(gid_type src, gid_type tgt)
  {
    return this->invoke_ret(MP_FIND, src, [src, tgt](p_graph& g, bcid_type b) {
      if (!g.bc(b).has_vertex(src))
        return false;
      for (auto const& e : g.bc(b).vertex(src).edges)
        if (e.target == tgt)
          return true;
      return false;
    });
  }

  [[nodiscard]] std::size_t out_degree(gid_type v)
  {
    return this->invoke_ret(MP_FIND, v, [v](p_graph& g, bcid_type b) {
      return g.bc(b).vertex(v).edges.size();
    });
  }

  /// Copies the adjacency (targets) of a vertex.
  [[nodiscard]] std::vector<gid_type> out_edges(gid_type v)
  {
    return this->invoke_ret(MP_FIND, v, [v](p_graph& g, bcid_type b) {
      std::vector<gid_type> ts;
      for (auto const& e : g.bc(b).vertex(v).edges)
        ts.push_back(e.target);
      return ts;
    });
  }

  // -------------------------------------------------------------------------
  // Global properties / traversal
  // -------------------------------------------------------------------------

  [[nodiscard]] std::size_t get_num_vertices() { return this->size(); }

  [[nodiscard]] std::size_t get_local_num_edges() const
  {
    std::size_t n = 0;
    for (auto const& [bcid, bcptr] : this->m_lm)
      n += bcptr->num_local_edges();
    return n;
  }

  /// Total edge count; undirected edges counted once.  Collective.
  [[nodiscard]] std::size_t get_num_edges()
  {
    auto const total = allreduce(get_local_num_edges(), std::plus<>{});
    return is_directed ? total : total / 2;
  }

  /// f(vertex_descriptor, vertex_record&) over local vertices.
  template <typename F>
  void for_each_local_vertex(F&& f)
  {
    for (auto& [bcid, bcptr] : this->m_lm)
      for (auto& [v, rec] : *bcptr)
        f(v, rec);
  }

  /// Local vertex descriptors (view support).
  [[nodiscard]] std::vector<gid_type> local_gids() const
  {
    std::vector<gid_type> out;
    for (auto const& [bcid, bcptr] : this->m_lm)
      for (auto const& [v, rec] : *bcptr)
        out.push_back(v);
    return out;
  }

  [[nodiscard]] VP* local_element_ptr(gid_type v)
  {
    if (!is_static()) {
      typename base::dyn_guard guard(*this); // vs concurrent migrate_out
      if (!this->get_directory().owns(v))
        return nullptr;
      auto& bc = this->bc(this->get_location_id());
      return bc.has_vertex(v) ? &bc.vertex(v).property : nullptr;
    }
    auto const r = resolve(v);
    if (!r.resolved || r.loc != this->get_location_id())
      return nullptr;
    auto& bc = this->bc(r.bcid);
    return bc.has_vertex(v) ? &bc.vertex(v).property : nullptr;
  }

 private:
  void init(graph_partition_kind kind, std::size_t n)
  {
    this->m_partition = graph_partition(kind, n, num_locations());
    this->m_mapper.init(num_locations(), num_locations());
    if (kind != graph_partition_kind::static_balanced) {
      // Directory-backed from birth.  No default owner: requests for
      // unregistered vertices park until the add_vertex registration
      // arrives (or forever, for vertices that never exist — as in the
      // dissertation, accessing a nonexistent vertex is undefined).
      this->enable_directory_resolution(nullptr);
      this->get_directory().set_forwarding(
          kind == graph_partition_kind::dynamic_forwarding);
    }
    bcid_type const me = this->get_location_id();
    auto& bc = this->m_lm.emplace_bcontainer(me, me);
    if (kind == graph_partition_kind::static_balanced) {
      // Pre-create the local slice of [0, n).
      std::size_t const p = num_locations();
      std::size_t const q = n / p, r = n % p;
      std::size_t const lo = me < r ? me * (q + 1) : r * (q + 1) + (me - r) * q;
      std::size_t const sz = me < r ? q + 1 : q;
      for (std::size_t v = lo; v < lo + sz; ++v)
        bc.add_vertex(v, VP{});
    }
    rmi_fence();
  }

  [[nodiscard]] gid_type next_descriptor()
  {
    return (static_cast<std::size_t>(this->get_location_id()) << 48) |
           m_next_vertex++;
  }

  std::uint64_t m_next_vertex = 0;

  template <graph_directedness, graph_multiplicity, typename, typename,
            typename>
  friend class p_graph;
};

// ---------------------------------------------------------------------------
// Graph pViews (Ch. XI.E, Figs. 47/48)
// ---------------------------------------------------------------------------

/// View of the vertex properties as a 1D collection (used to run generic
/// pAlgorithms over vertex data).
template <typename G>
class graph_vertices_view {
 public:
  using container_type = G;
  using gid_type = vertex_descriptor;
  using value_type = typename G::vertex_property;

  explicit graph_vertices_view(G& g) noexcept : m_g(&g) {}

  [[nodiscard]] std::size_t size() const { return m_g->get_num_vertices(); }
  [[nodiscard]] std::vector<gid_type> local_gids() const
  {
    return m_g->local_gids();
  }
  [[nodiscard]] value_type read(gid_type v) const
  {
    return m_g->get_vertex_property(v);
  }
  void write(gid_type v, value_type p)
  {
    m_g->set_vertex_property(v, std::move(p));
  }
  [[nodiscard]] value_type* try_local_ref(gid_type v)
  {
    return m_g->local_element_ptr(v);
  }
  void post_execute() {}

 private:
  G* m_g;
};

/// Boundary pView (Fig. 48d): local vertices with at least one edge whose
/// target lives on another location.
template <typename G>
class graph_boundary_view {
 public:
  using container_type = G;
  using gid_type = vertex_descriptor;
  using value_type = typename G::vertex_property;

  explicit graph_boundary_view(G& g) noexcept : m_g(&g) {}

  [[nodiscard]] std::vector<gid_type> local_gids() const
  {
    std::vector<gid_type> out;
    m_g->for_each_local_vertex([&](vertex_descriptor v, auto& rec) {
      for (auto const& e : rec.edges)
        if (!m_g->is_local(e.target)) {
          out.push_back(v);
          return;
        }
    });
    return out;
  }
  [[nodiscard]] std::size_t size() const
  {
    return allreduce(local_gids().size(), std::plus<>{});
  }
  [[nodiscard]] value_type read(gid_type v) const
  {
    return m_g->get_vertex_property(v);
  }
  void post_execute() {}

 private:
  G* m_g;
};

/// Inner pView (Fig. 48c): local vertices all of whose edges stay local.
template <typename G>
class graph_inner_view {
 public:
  using container_type = G;
  using gid_type = vertex_descriptor;
  using value_type = typename G::vertex_property;

  explicit graph_inner_view(G& g) noexcept : m_g(&g) {}

  [[nodiscard]] std::vector<gid_type> local_gids() const
  {
    std::vector<gid_type> out;
    m_g->for_each_local_vertex([&](vertex_descriptor v, auto& rec) {
      for (auto const& e : rec.edges)
        if (!m_g->is_local(e.target))
          return;
      out.push_back(v);
    });
    return out;
  }
  [[nodiscard]] std::size_t size() const
  {
    return allreduce(local_gids().size(), std::plus<>{});
  }
  [[nodiscard]] value_type read(gid_type v) const
  {
    return m_g->get_vertex_property(v);
  }
  void post_execute() {}

 private:
  G* m_g;
};

} // namespace stapl

#endif
