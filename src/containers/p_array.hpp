#ifndef STAPL_CONTAINERS_P_ARRAY_HPP
#define STAPL_CONTAINERS_P_ARRAY_HPP

// The stapl pArray (dissertation Ch. IX): parallel equivalent of
// std::valarray.  A static, indexed pContainer with closed-form address
// resolution; derivation chain (Fig. 25):
//   p_container_base -> p_container_static -> p_container_indexed -> p_array.
//
// Example (Fig. 26):
//   p_array<int> pa(100);                         // balanced partition
//   p_array<int, blocked_partition> pb(100, blocked_partition(10));
//   pa.set_element(3, 7);  int v = pa.get_element(3);
//
// A pArray resolves GIDs in closed form (partition + mapper).  Calling
// make_dynamic() switches it to directory-backed resolution
// (core/directory.hpp), after which individual elements may migrate
// between locations:
//   pa.make_dynamic();                            // collective
//   pa.migrate(3, 1);  rmi_fence();               // element 3 -> location 1
//   pa.get_element(3);                            // routed via the directory
//
// Hot-element load balancing (core/load_balancer.hpp) builds on this:
//   pa.enable_load_balancing({.imbalance_threshold = 1.25});  // collective
//   ... skewed element-method traffic ...
//   auto rep = pa.rebalance();     // hot elements spread over locations
// or call pa.advance_epoch() from an iteration loop to rebalance
// periodically.  Migrated-out slots of the contiguous bContainers stay
// allocated (see extract_element below), so balancing trades that slack
// space for method-routing throughput.

#include <cstddef>
#include <utility>

#include "../core/container_base.hpp"

namespace stapl {

/// Default pArray traits (Table XXI): storage, partition mapper and
/// thread-safety manager can all be overridden per instance.
template <typename T>
struct p_array_traits {
  using bcontainer_type = vector_bcontainer<T>;
  using mapper_type = blocked_mapper;
  using ths_manager_type = default_thread_safety_manager;
};

template <typename T, typename Partition = balanced_partition,
          typename Traits = p_array_traits<T>>
class p_array final
    : public p_container_indexed<
          p_array<T, Partition, Traits>,
          detail::indexed_traits_bundle<T, Partition, Traits>> {
  using base = p_container_indexed<
      p_array<T, Partition, Traits>,
      detail::indexed_traits_bundle<T, Partition, Traits>>;

 public:
  using typename base::gid_type;
  using typename base::value_type;
  using typename base::reference;
  using partition_type = Partition;
  using domain_type = indexed_domain;

  /// Collective: empty pArray.
  p_array() { rmi_fence(); }

  /// Collective: pArray of n elements, default balanced partition
  /// (one sub-domain per location).  O(n/P + log P).
  explicit p_array(std::size_t n, T const& init = T{})
      : p_array(n, default_partition(n), init)
  {}

  /// Collective: pArray of n elements with the given partition.
  p_array(std::size_t n, Partition partition, T const& init = T{})
  {
    this->m_partition = std::move(partition);
    this->m_partition.set_domain(domain_type(n));
    init_storage(init);
    rmi_fence();
  }

  /// Collective destructor: drains in-flight traffic before teardown.
  ~p_array() override { rmi_fence(); }

  [[nodiscard]] domain_type domain() const
  {
    return this->m_partition.domain();
  }

 private:
  [[nodiscard]] static Partition default_partition(std::size_t n)
  {
    if constexpr (std::is_constructible_v<Partition, indexed_domain,
                                          std::size_t>)
      return Partition(indexed_domain(n), num_locations());
    else
      return Partition{};
  }

  void init_storage(T const& init)
  {
    this->m_mapper.init(this->m_partition.size(), num_locations());
    for (bcid_type b : this->m_mapper.local_bcids(this->get_location_id()))
      this->m_lm.emplace_bcontainer(
          b, b, this->m_partition.subdomain_size(b), init);
  }

  friend class redistribution_access;
};

} // namespace stapl

#endif
