#ifndef STAPL_CONTAINERS_P_MATRIX_HPP
#define STAPL_CONTAINERS_P_MATRIX_HPP

// The stapl pMatrix (dissertation Ch. V.F, evaluated in Ch. XIII): a static,
// two-dimensional indexed pContainer over dense blocked storage.
// Derivation: p_container_base -> p_container_static -> p_container_indexed
// -> p_matrix, with gid2d GIDs and the matrix_partition of Ch. V.D.4
// (row-wise, column-wise or checkerboard block decompositions).

#include <cstddef>
#include <utility>

#include "../core/container_base.hpp"

namespace stapl {

template <typename T>
struct p_matrix_traits {
  using bcontainer_type = matrix_bcontainer<T>;
  using mapper_type = blocked_mapper;
  using ths_manager_type = default_thread_safety_manager;
};

template <typename T, typename Traits = p_matrix_traits<T>>
class p_matrix final
    : public p_container_indexed<
          p_matrix<T, Traits>,
          detail::indexed_traits_bundle<T, matrix_partition, Traits>> {
  using base = p_container_indexed<
      p_matrix<T, Traits>,
      detail::indexed_traits_bundle<T, matrix_partition, Traits>>;

 public:
  using typename base::gid_type; // gid2d
  using typename base::value_type;

  /// Collective: rows x cols matrix, row-wise blocked across locations.
  p_matrix(std::size_t rows, std::size_t cols, T const& init = T{})
      : p_matrix(rows, cols, matrix_partition(num_locations(), 1), init)
  {}

  /// Collective: rows x cols matrix with an explicit block decomposition.
  p_matrix(std::size_t rows, std::size_t cols, matrix_partition partition,
           T const& init = T{})
  {
    this->m_partition = std::move(partition);
    this->m_partition.set_domain(domain2d(rows, cols));
    this->m_mapper.init(this->m_partition.size(), num_locations());
    for (bcid_type b : this->m_mapper.local_bcids(this->get_location_id())) {
      auto const blk = this->m_partition.subblock(b);
      this->m_lm.emplace_bcontainer(b, b, blk.row_sz, blk.col_sz, init);
    }
    rmi_fence();
  }

  ~p_matrix() override { rmi_fence(); }

  [[nodiscard]] std::size_t rows() const
  {
    return this->m_partition.domain().rows();
  }
  [[nodiscard]] std::size_t cols() const
  {
    return this->m_partition.domain().cols();
  }

  /// Element access by (row, col) — synchronous read / asynchronous write.
  [[nodiscard]] T get(std::size_t r, std::size_t c)
  {
    return this->get_element({r, c});
  }
  void set(std::size_t r, std::size_t c, T v)
  {
    this->set_element({r, c}, std::move(v));
  }

  [[nodiscard]] element_proxy<p_matrix> operator()(std::size_t r,
                                                   std::size_t c)
  {
    return (*this)[gid2d{r, c}];
  }
};

// ---------------------------------------------------------------------------
// Matrix pViews (Table II: matrix_pview; Ch. III.A row/column/linear views)
// ---------------------------------------------------------------------------

/// A single row of a matrix exposed as a 1D view element.
template <typename M>
class matrix_row_ref {
 public:
  using value_type = typename M::value_type;

  matrix_row_ref(M& m, std::size_t row) noexcept : m_m(&m), m_row(row) {}

  [[nodiscard]] std::size_t size() const { return m_m->cols(); }
  [[nodiscard]] std::size_t row() const noexcept { return m_row; }
  [[nodiscard]] value_type operator[](std::size_t c) const
  {
    return m_m->get_element({m_row, c});
  }
  void set(std::size_t c, value_type v)
  {
    m_m->set_element({m_row, c}, std::move(v));
  }
  /// Direct pointer when the element is local.
  [[nodiscard]] value_type* try_local_ref(std::size_t c)
  {
    return m_m->local_element_ptr({m_row, c});
  }

 private:
  M* m_m;
  std::size_t m_row;
};

/// View of a matrix as a 1D collection of rows ('viewed as a row-major
/// matrix', Ch. III).  Element i is row i; a row is assigned to the location
/// owning its first element.
template <typename M>
class matrix_rows_view {
 public:
  using container_type = M;
  using gid_type = gid1d;
  using value_type = matrix_row_ref<M>;

  explicit matrix_rows_view(M& m) noexcept : m_m(&m) {}

  [[nodiscard]] std::size_t size() const { return m_m->rows(); }

  [[nodiscard]] std::vector<gid_type> local_gids() const
  {
    std::vector<gid_type> out;
    for (std::size_t r = 0; r < m_m->rows(); ++r)
      if (m_m->is_local({r, 0}))
        out.push_back(r);
    return out;
  }

  [[nodiscard]] value_type read(gid_type r) const
  {
    return value_type(*m_m, r);
  }
  void post_execute() {}

 private:
  M* m_m;
};

/// View of a matrix as a linearized (row-major) 1D array
/// ('or even as linearized vector', Ch. III).
template <typename M>
class matrix_linear_view {
 public:
  using container_type = M;
  using gid_type = gid1d;
  using value_type = typename M::value_type;

  explicit matrix_linear_view(M& m) noexcept : m_m(&m) {}

  [[nodiscard]] std::size_t size() const { return m_m->rows() * m_m->cols(); }

  [[nodiscard]] gid2d map(gid_type i) const
  {
    return {i / m_m->cols(), i % m_m->cols()};
  }

  [[nodiscard]] std::vector<gid_type> local_gids() const
  {
    std::vector<gid_type> out;
    std::size_t const n = size();
    for (gid_type i = 0; i < n; ++i)
      if (m_m->is_local(map(i)))
        out.push_back(i);
    return out;
  }

  [[nodiscard]] value_type read(gid_type i) const
  {
    return m_m->get_element(map(i));
  }
  void write(gid_type i, value_type v)
  {
    m_m->set_element(map(i), std::move(v));
  }
  [[nodiscard]] value_type* try_local_ref(gid_type i)
  {
    return m_m->local_element_ptr(map(i));
  }
  void post_execute() {}

 private:
  M* m_m;
};

} // namespace stapl

#endif
