#ifndef STAPL_CONTAINERS_P_ASSOCIATIVE_HPP
#define STAPL_CONTAINERS_P_ASSOCIATIVE_HPP

// Associative pContainers (dissertation Ch. XII, Fig. 57, Tables XVI/XXVIII):
// pMap, pMultiMap, pHashMap (pair associative) and pSet, pMultiSet, pHashSet
// (simple associative).  Derivation (Fig. 12):
//   p_container_base -> p_container_dynamic -> p_container_associative -> ...
//
// Keys are the GIDs; the partition maps keys to bContainers either by value
// ranges (sorted associative, Fig. 58) or by hashing.  Sorted variants
// guarantee logarithmic local access, hashed variants amortized constant —
// the Ch. XII storage trade-off.
//
// After make_dynamic(), hot keys can be redistributed at run time:
// enable_load_balancing() + rebalance()/advance_epoch() migrate the most
// frequently accessed keys off overloaded locations (see
// core/load_balancer.hpp).  Associative bContainers absorb migrated-in
// keys natively, so balanced placement costs no overflow storage here.

#include <cstddef>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "../core/container_base.hpp"

namespace stapl {

namespace detail {

template <typename Key, typename Value, typename Partition, typename BC,
          typename Mapper = cyclic_mapper,
          typename Ths = default_thread_safety_manager>
struct assoc_traits_bundle {
  using value_type = Value;
  using key_type = Key;
  using partition_type = Partition;
  using mapper_type = Mapper;
  using bcontainer_type = BC;
  using ths_manager_type = Ths;
};

} // namespace detail

// ---------------------------------------------------------------------------
// Pair associative base (Table XVI)
// ---------------------------------------------------------------------------

template <typename Derived, typename Traits>
class p_container_associative : public p_container_dynamic<Derived, Traits> {
  using base = p_container_dynamic<Derived, Traits>;

 public:
  using key_type = typename Traits::key_type;
  using mapped_type = typename Traits::value_type;
  using typename base::gid_type; // == key_type
  using typename base::value_type;

  /// Asynchronous insert of (key, value); unique containers overwrite
  /// nothing on duplicate keys, multi containers always add.
  void insert_async(key_type k, mapped_type v)
  {
    this->invoke(MP_INSERT, k,
                 [k, v = std::move(v)](Derived& c, bcid_type b) {
                   (void)c.bc(b).insert(k, v);
                 });
  }

  /// Synchronous insert; returns whether a new element was created.
  bool insert(key_type k, mapped_type v)
  {
    return this->invoke_ret(MP_INSERT, k,
                            [k, v = std::move(v)](Derived& c, bcid_type b) {
                              return c.bc(b).insert(k, v);
                            });
  }

  /// Asynchronous erase by key (Table XVI erase_async).
  void erase_async(key_type k)
  {
    this->invoke(MP_ERASE, k, [k](Derived& c, bcid_type b) {
      if (c.bc(b).erase(k) != 0)
        c.dyn_forget(k);
    });
  }

  /// Synchronous erase; returns the number of removed elements.
  std::size_t erase(key_type k)
  {
    return this->invoke_ret(MP_ERASE, k, [k](Derived& c, bcid_type b) {
      auto const n = c.bc(b).erase(k);
      if (n != 0)
        c.dyn_forget(k);
      return n;
    });
  }

  /// (value, found) for the key (Table XVI find_val).
  [[nodiscard]] std::pair<mapped_type, bool> find_val(key_type k)
  {
    return this->invoke_ret(MP_FIND, k, [k](Derived& c, bcid_type b) {
      return c.bc(b).find_val(k);
    });
  }

  /// Split-phase find: future for (value, found).
  [[nodiscard]] pc_future<std::pair<mapped_type, bool>>
  split_phase_find(key_type k)
  {
    return this->invoke_split(MP_FIND, k, [k](Derived& c, bcid_type b) {
      return c.bc(b).find_val(k);
    });
  }

  [[nodiscard]] bool contains(key_type k)
  {
    return this->invoke_ret(MP_FIND, k, [k](Derived& c, bcid_type b) {
      return c.bc(b).contains(k);
    });
  }

  [[nodiscard]] std::size_t count(key_type k)
  {
    return this->invoke_ret(MP_FIND, k, [k](Derived& c, bcid_type b) {
      return c.bc(b).count(k);
    });
  }

  /// Applies `f(mapped&)` to the value of `k`, default-constructing the
  /// entry if absent (the accumulate-style access of the MapReduce kernel,
  /// Ch. XII.C.1).  Asynchronous.
  template <typename F>
  void apply_async(key_type k, F f)
  {
    this->invoke(MP_APPLY, k,
                 [k, f = std::move(f)](Derived& c, bcid_type b) mutable {
                   c.bc(b).apply(k, std::move(f));
                 });
  }

  /// Applies `f(mapped&)` and returns its result.  Synchronous.
  template <typename F>
  [[nodiscard]] auto apply_get(key_type k, F f)
  {
    return this->invoke_ret(MP_APPLY, k,
                            [k, f = std::move(f)](Derived& c,
                                                  bcid_type b) mutable {
                              return f(c.bc(b).get_or_create(k));
                            });
  }

  /// set_element/get_element aliases so associative containers satisfy the
  /// element-view concept (read == find, write == overwrite-insert).
  void set_element(key_type k, mapped_type v)
  {
    this->invoke(MP_SET_ELEMENT, k,
                 [k, v = std::move(v)](Derived& c, bcid_type b) {
                   c.bc(b).get_or_create(k) = v;
                 });
  }
  [[nodiscard]] mapped_type get_element(key_type k)
  {
    return find_val(std::move(k)).first;
  }

  /// Local keys in bContainer order (view support).
  [[nodiscard]] std::vector<key_type> local_gids() const
  {
    std::vector<key_type> out;
    for (auto const& [bcid, bcptr] : this->m_lm)
      for (auto const& kv : *bcptr)
        out.push_back(kv.first);
    return out;
  }

  /// f(key, mapped&) over local elements.
  template <typename F>
  void for_each_local(F&& f)
  {
    for (auto& [bcid, bcptr] : this->m_lm)
      for (auto& kv : *bcptr)
        f(kv.first, kv.second);
  }

  [[nodiscard]] mapped_type* local_element_ptr(key_type const& k)
  {
    if (this->is_dynamic()) {
      typename base::dyn_guard guard(*this); // vs concurrent migrate_out
      if (!this->get_directory().owns(k))
        return nullptr;
      auto& bc = this->bc(this->derived().dyn_local_bcid(k));
      return bc.contains(k) ? &bc.at(k) : nullptr;
    }
    auto const r = this->derived().resolve(k);
    if (!r.resolved || r.loc != this->get_location_id())
      return nullptr;
    auto& bc = this->bc(r.bcid);
    return bc.contains(k) ? &bc.at(k) : nullptr;
  }

  // -------------------------------------------------------------------------
  // Migration protocol hooks (see core/migration.hpp).  Associative
  // bContainers are keyed by GID, so migrated-in elements live in a real
  // local bContainer instead of an overflow store.
  // -------------------------------------------------------------------------

  /// Removes the element(s) of `k` from local storage and returns the
  /// mapped values in equal-range order.  The directory owns the *key*, so
  /// multi containers migrate every occurrence atomically — the payload is
  /// the whole equal range (a single-element vector for unique maps).
  [[nodiscard]] std::vector<mapped_type> extract_element(key_type const& k)
  {
    bcid_type const b = this->derived().dyn_local_bcid(k);
    std::vector<mapped_type> vs = this->bc(b).extract_all(k);
    this->m_dyn_index.erase(k);
    return vs;
  }

  /// Stores a migrated-in equal range: into the partition-assigned
  /// bContainer when it is local, else into this location's first
  /// bContainer (tracked in the dynamic index so local dispatch finds it).
  void insert_migrated(key_type const& k, std::vector<mapped_type> vs)
  {
    bcid_type b = this->m_partition.get_info(k);
    if (this->m_lm.has(b)) {
      this->m_dyn_index.erase(k);
    } else {
      assert(this->m_lm.size() > 0 && "migration target has no bContainer");
      b = this->m_lm.begin()->first;
      this->m_dyn_index[k] = b;
    }
    // Plain inserts: the occurrences were just extracted at the source,
    // and (unlike get_or_create) insert compiles for multi containers too.
    // Unique containers receive a single value; multi containers restore
    // the whole equal range.
    for (auto& v : vs)
      (void)this->bc(b).insert(k, std::move(v));
  }
};

// ---------------------------------------------------------------------------
// Simple associative base (key == value; pSet family)
// ---------------------------------------------------------------------------

template <typename Derived, typename Traits>
class p_container_simple_associative
    : public p_container_dynamic<Derived, Traits> {
  using base = p_container_dynamic<Derived, Traits>;

 public:
  using key_type = typename Traits::key_type;
  using typename base::gid_type;

  void insert_async(key_type k)
  {
    this->invoke(MP_INSERT, k,
                 [k](Derived& c, bcid_type b) { (void)c.bc(b).insert(k); });
  }

  bool insert(key_type k)
  {
    return this->invoke_ret(MP_INSERT, k, [k](Derived& c, bcid_type b) {
      return c.bc(b).insert(k);
    });
  }

  void erase_async(key_type k)
  {
    this->invoke(MP_ERASE, k, [k](Derived& c, bcid_type b) {
      if (c.bc(b).erase(k) != 0)
        c.dyn_forget(k);
    });
  }

  std::size_t erase(key_type k)
  {
    return this->invoke_ret(MP_ERASE, k, [k](Derived& c, bcid_type b) {
      auto const n = c.bc(b).erase(k);
      if (n != 0)
        c.dyn_forget(k);
      return n;
    });
  }

  [[nodiscard]] bool contains(key_type k)
  {
    return this->invoke_ret(MP_FIND, k, [k](Derived& c, bcid_type b) {
      return c.bc(b).contains(k);
    });
  }

  [[nodiscard]] std::size_t count(key_type k)
  {
    return this->invoke_ret(MP_FIND, k, [k](Derived& c, bcid_type b) {
      return c.bc(b).count(k);
    });
  }

  [[nodiscard]] pc_future<bool> split_phase_contains(key_type k)
  {
    return this->invoke_split(MP_FIND, k, [k](Derived& c, bcid_type b) {
      return c.bc(b).contains(k);
    });
  }

  [[nodiscard]] std::vector<key_type> local_gids() const
  {
    std::vector<key_type> out;
    for (auto const& [bcid, bcptr] : this->m_lm)
      for (auto const& k : *bcptr)
        out.push_back(k);
    return out;
  }

  // -------------------------------------------------------------------------
  // Migration protocol hooks.  The key is the value, so the payload is
  // just the occurrence count: multisets migrate their whole equal range
  // atomically, sets a single occurrence.
  // -------------------------------------------------------------------------

  /// Removes every occurrence of `k` locally; the payload is how many.
  [[nodiscard]] std::size_t extract_element(key_type const& k)
  {
    bcid_type const b = this->derived().dyn_local_bcid(k);
    std::size_t const n = this->bc(b).erase(k);
    assert(n != 0 && "extract_element: key not in this bContainer");
    this->m_dyn_index.erase(k);
    return n;
  }

  /// Re-inserts `count` occurrences of `k` at the destination.
  void insert_migrated(key_type const& k, std::size_t count)
  {
    bcid_type b = this->m_partition.get_info(k);
    if (this->m_lm.has(b)) {
      this->m_dyn_index.erase(k);
    } else {
      assert(this->m_lm.size() > 0 && "migration target has no bContainer");
      b = this->m_lm.begin()->first;
      this->m_dyn_index[k] = b;
    }
    for (std::size_t i = 0; i != count; ++i)
      (void)this->bc(b).insert(k);
  }
};

// ---------------------------------------------------------------------------
// Concrete containers
// ---------------------------------------------------------------------------

namespace detail {

/// Shared constructor body for all associative containers: `parts_per_loc`
/// bContainers per location, partition given explicitly or default-built.
template <typename C>
void init_associative(C& c, typename C::partition_type partition)
{
  c.partition() = std::move(partition);
  c.mapper().init(c.partition().size(), num_locations());
  for (bcid_type b : c.mapper().local_bcids(c.get_location_id()))
    c.get_location_manager().emplace_bcontainer(b, b);
  rmi_fence();
}

} // namespace detail

/// Sorted pair-associative pContainer.  Default partition hashes keys;
/// pass a value_partition for range-partitioned sorted maps (Fig. 58).
template <typename Key, typename T, typename Partition = hashed_partition<Key>,
          typename Compare = std::less<Key>>
class p_map final
    : public p_container_associative<
          p_map<Key, T, Partition, Compare>,
          detail::assoc_traits_bundle<
              Key, T, Partition,
              map_bcontainer<std::map<Key, T, Compare>>>> {
 public:
  using partition_type = Partition;

  explicit p_map(Partition partition = default_partition())
  {
    detail::init_associative(*this, std::move(partition));
  }
  ~p_map() override { rmi_fence(); }

  [[nodiscard]] static Partition default_partition()
  {
    if constexpr (std::is_constructible_v<Partition, std::size_t>)
      return Partition(num_locations());
    else
      return Partition{};
  }
};

/// Sorted pair-associative with duplicate keys.
template <typename Key, typename T, typename Partition = hashed_partition<Key>,
          typename Compare = std::less<Key>>
class p_multimap final
    : public p_container_associative<
          p_multimap<Key, T, Partition, Compare>,
          detail::assoc_traits_bundle<
              Key, T, Partition,
              map_bcontainer<std::multimap<Key, T, Compare>>>> {
 public:
  using partition_type = Partition;

  explicit p_multimap(Partition partition = Partition(num_locations()))
  {
    detail::init_associative(*this, std::move(partition));
  }
  ~p_multimap() override { rmi_fence(); }
};

/// Hashed pair-associative pContainer (amortized O(1) local access).
template <typename Key, typename T, typename Hash = std::hash<Key>>
class p_hash_map final
    : public p_container_associative<
          p_hash_map<Key, T, Hash>,
          detail::assoc_traits_bundle<
              Key, T, hashed_partition<Key, Hash>,
              map_bcontainer<std::unordered_map<Key, T, Hash>>>> {
 public:
  using partition_type = hashed_partition<Key, Hash>;

  explicit p_hash_map(std::size_t parts_per_loc = 1)
  {
    detail::init_associative(
        *this, partition_type(parts_per_loc * num_locations()));
  }
  ~p_hash_map() override { rmi_fence(); }
};

/// Sorted simple-associative pContainer.
template <typename Key, typename Partition = hashed_partition<Key>,
          typename Compare = std::less<Key>>
class p_set final
    : public p_container_simple_associative<
          p_set<Key, Partition, Compare>,
          detail::assoc_traits_bundle<
              Key, Key, Partition,
              set_bcontainer<std::set<Key, Compare>>>> {
 public:
  using partition_type = Partition;

  explicit p_set(Partition partition = default_partition())
  {
    detail::init_associative(*this, std::move(partition));
  }
  ~p_set() override { rmi_fence(); }

  [[nodiscard]] static Partition default_partition()
  {
    if constexpr (std::is_constructible_v<Partition, std::size_t>)
      return Partition(num_locations());
    else
      return Partition{};
  }
};

/// Sorted simple-associative with duplicates.
template <typename Key, typename Partition = hashed_partition<Key>,
          typename Compare = std::less<Key>>
class p_multiset final
    : public p_container_simple_associative<
          p_multiset<Key, Partition, Compare>,
          detail::assoc_traits_bundle<
              Key, Key, Partition,
              set_bcontainer<std::multiset<Key, Compare>>>> {
 public:
  using partition_type = Partition;

  explicit p_multiset(Partition partition = Partition(num_locations()))
  {
    detail::init_associative(*this, std::move(partition));
  }
  ~p_multiset() override { rmi_fence(); }
};

/// Hashed simple-associative pContainer.
template <typename Key, typename Hash = std::hash<Key>>
class p_hash_set final
    : public p_container_simple_associative<
          p_hash_set<Key, Hash>,
          detail::assoc_traits_bundle<
              Key, Key, hashed_partition<Key, Hash>,
              set_bcontainer<std::unordered_set<Key, Hash>>>> {
 public:
  using partition_type = hashed_partition<Key, Hash>;

  explicit p_hash_set(std::size_t parts_per_loc = 1)
  {
    detail::init_associative(
        *this, partition_type(parts_per_loc * num_locations()));
  }
  ~p_hash_set() override { rmi_fence(); }
};

// ---------------------------------------------------------------------------
// map_view — pView over pair-associative containers
// ---------------------------------------------------------------------------

/// View over a pair-associative container: GIDs are keys, values are the
/// mapped values (Table II p_map_pview).
template <typename C>
class map_view {
 public:
  using container_type = C;
  using key_type = typename C::key_type;
  using gid_type = key_type;
  using value_type = typename C::mapped_type;

  explicit map_view(C& c) noexcept : m_c(&c) {}

  [[nodiscard]] std::size_t size() const { return m_c->size(); }
  [[nodiscard]] std::vector<gid_type> local_gids() const
  {
    return m_c->local_gids();
  }
  [[nodiscard]] value_type read(gid_type k) const
  {
    return m_c->find_val(k).first;
  }
  void write(gid_type k, value_type v) { m_c->set_element(k, std::move(v)); }
  [[nodiscard]] value_type* try_local_ref(gid_type k)
  {
    return m_c->local_element_ptr(k);
  }
  void post_execute() {}

 private:
  C* m_c;
};

} // namespace stapl

#endif
