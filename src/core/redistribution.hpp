#ifndef STAPL_CORE_REDISTRIBUTION_HPP
#define STAPL_CORE_REDISTRIBUTION_HPP

// Redistribution support (dissertation Ch. V.G): reorganizes a
// pContainer's data according to a new partition and/or partition mapping.
// Elements that change location are marshaled with the typer machinery
// (Ch. V.G.1) and shipped in bulk — one message per (source, destination)
// pair — rather than element by element, mirroring the "redistribution map"
// optimization of Fig. 13.

#include <cstddef>
#include <utility>
#include <vector>

#include "../runtime/runtime.hpp"
#include "../runtime/serialization.hpp"
#include "container_base.hpp"

namespace stapl {

namespace redist_detail {

/// Per-location staging area for in-flight elements.
template <typename T>
struct staging : p_object {
  std::vector<std::pair<gid1d, T>> incoming;
  std::mutex mutex; ///< deliveries run on caller threads in direct transport

  void deliver(std::vector<std::byte> bytes)
  {
    auto batch = unpack<std::vector<std::pair<gid1d, T>>>(bytes);
    std::lock_guard lock(mutex);
    incoming.insert(incoming.end(), batch.begin(), batch.end());
  }
};

} // namespace redist_detail

/// Redistributes an indexed pContainer (pArray family) to `new_partition`
/// (same partition type) and optionally a new mapper.  Collective.
template <typename Container, typename Partition, typename Mapper>
void redistribute(Container& c, Partition new_partition, Mapper new_mapper)
{
  using T = typename Container::value_type;
  rmi_fence(); // complete pending element methods first

  new_partition.set_domain(c.partition().domain());
  new_mapper.init(new_partition.size(), num_locations());

  redist_detail::staging<T> stage;
  rmi_handle const sh = stage.get_handle();

  // Group local elements by target location under the new distribution.
  std::vector<std::vector<std::pair<gid1d, T>>> outgoing(num_locations());
  c.for_each_local([&](gid1d g, T& value) {
    bcid_type const nb = new_partition.get_info(g);
    outgoing[new_mapper.map(nb)].emplace_back(g, value);
  });

  for (location_id l = 0; l < num_locations(); ++l) {
    if (outgoing[l].empty())
      continue;
    if (l == this_location()) {
      stage.incoming.insert(stage.incoming.end(), outgoing[l].begin(),
                            outgoing[l].end());
    } else {
      // Marshal the batch (define_type-driven) and ship it in one message.
      async_rmi<redist_detail::staging<T>>(
          l, sh, &redist_detail::staging<T>::deliver, pack(outgoing[l]));
    }
  }
  rmi_fence();

  // Rebuild local storage under the new partition.
  auto& lm = c.get_location_manager();
  lm.clear();
  c.partition() = new_partition;
  c.mapper() = new_mapper;
  for (bcid_type b : new_mapper.local_bcids(this_location()))
    lm.emplace_bcontainer(b, b, new_partition.subdomain_size(b), T{});
  for (auto& [g, value] : stage.incoming) {
    bcid_type const b = new_partition.get_info(g);
    c.bc(b).set(new_partition.local_index(g), std::move(value));
  }
  rmi_fence();
}

/// Redistributes keeping the current partition type but replacing only the
/// sub-domain -> location mapping.
template <typename Container, typename Mapper>
void remap(Container& c, Mapper new_mapper)
{
  redistribute(c, c.partition(), std::move(new_mapper));
}

/// rebalance() (Ch. V.G): even share of elements per location.
template <typename Container>
void rebalance(Container& c)
{
  using P = std::decay_t<decltype(c.partition())>;
  if constexpr (std::is_constructible_v<P, indexed_domain, std::size_t>)
    redistribute(c, P(c.partition().domain(), num_locations()),
                 typename Container::mapper_type{});
  else
    redistribute(c, c.partition(), typename Container::mapper_type{});
}

/// rotate() (Ch. V.G): cyclically shifts each bContainer `shift` locations.
/// Requires a container whose traits select the arbitrary_mapper (see
/// relocatable_array_traits), since block mappers cannot express rotation.
template <typename Container>
void rotate(Container& c, std::size_t shift)
{
  static_assert(
      std::is_same_v<typename Container::mapper_type, arbitrary_mapper>,
      "rotate requires arbitrary_mapper traits (relocatable_array_traits)");
  std::size_t const nb = c.partition().size();
  std::vector<location_id> table(nb);
  for (bcid_type b = 0; b < nb; ++b) {
    location_id const cur = c.mapper().map(b);
    table[b] = static_cast<location_id>((cur + shift) % num_locations());
  }
  redistribute(c, c.partition(), arbitrary_mapper(std::move(table)));
}

/// pArray traits selecting the arbitrary mapper, enabling rotate()/remap()
/// with free-form bContainer placement (a Ch. V.H traits customization).
template <typename T>
struct relocatable_array_traits {
  using bcontainer_type = vector_bcontainer<T>;
  using mapper_type = arbitrary_mapper;
  using ths_manager_type = default_thread_safety_manager;
};

} // namespace stapl

#endif
