#ifndef STAPL_CORE_MIGRATION_HPP
#define STAPL_CORE_MIGRATION_HPP

// Element migration protocol (dissertation Ch. V.C.3: the directory's
// "update" operations; the element-granularity analogue of the bContainer
// handoff used by redistribution.hpp).
//
// migrate(c, gid, dest) moves one element of a directory-backed pContainer
// between bContainers of different locations:
//
//   1. the request routes to the current owner A through the directory
//      (so migration composes with forwarding and with other in-flight
//      migrations of the same GID);
//   2. A extracts the element from its bContainer
//      (`Container::extract_element`, the element-granularity counterpart
//      of location_manager::extract_bcontainer), marks the GID departed in
//      its directory representative (leaving a forwarding hint), and ships
//      the payload to `dest`;
//   3. `dest` stores the payload (`Container::insert_migrated`), takes
//      ownership, and the directory updates the home record — which
//      invalidates every stale owner cache.
//
// The protocol is asynchronous: rmi_fence() guarantees that the move and
// every request it re-routed have completed.  Requests that race the move
// either chase A's forwarding hint (queue transport delivers the payload
// first on the A->dest channel, so the chase lands after the element) or
// park via post_to_self until the ownership metadata settles.

#include <cassert>

#include "../runtime/runtime.hpp"
#include "directory.hpp"

namespace stapl {

/// Moves the element of `gid` to location `dest`, updating the directory.
/// May be called from any location; asynchronous (complete at the next
/// rmi_fence).  The container must be directory-backed (marked dynamic).
template <typename C>
void migrate(C& c, typename C::gid_type gid, location_id dest)
{
  assert(dest < num_locations());
  assert(c.is_dynamic() && "migrate() requires directory-backed resolution");
  STAPL_FAULT_POINT(fault::site::migration);
  rmi_handle const h = c.get_handle();
  c.get_directory().invoke_where(gid, [h, gid, dest](location_id owner) {
    auto* owner_rep = get_registered_object_at<C>(owner, h);
    owner_rep->migrate_out(gid, dest);
  });
}

} // namespace stapl

#endif
