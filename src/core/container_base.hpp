#ifndef STAPL_CORE_CONTAINER_BASE_HPP
#define STAPL_CORE_CONTAINER_BASE_HPP

// The pContainer base hierarchy and the shared-object-view machinery
// (dissertation Ch. V, Figs. 7/8/17, Tables XI-XIV).
//
// Every stapl pContainer derives (through CRTP chains mirroring the PCF
// taxonomy of Fig. 5) from p_container_base, which owns the location
// manager, the data-distribution information (partition + partition mapper)
// and the thread-safety manager, and implements the generic `invoke` method
// skeleton: resolve the GID to a (bCID, location); execute locally under the
// thread-safety hooks, forward to the owner location, or — when resolution
// is incomplete — migrate the request toward a location that knows more
// (method forwarding).

#include <cassert>
#include <memory>
#include <type_traits>
#include <utility>

#include "../runtime/runtime.hpp"
#include "location_manager.hpp"
#include "mappers.hpp"
#include "partitions.hpp"
#include "thread_safety.hpp"

namespace stapl {

/// Result of pContainer address resolution (Fig. 7).  When `resolved` the
/// pair (bcid, loc) is final; otherwise `loc` is a location that may know
/// more about the GID's mapping (forwarding target).
struct resolution {
  bcid_type bcid = invalid_bcid;
  location_id loc = invalid_location;
  bool resolved = false;

  [[nodiscard]] static resolution at(bcid_type b, location_id l) noexcept
  {
    return {b, l, true};
  }
  [[nodiscard]] static resolution forward_to(location_id l) noexcept
  {
    return {invalid_bcid, l, false};
  }
};

namespace detail {

/// Bundles the user-facing template arguments (T, Partition, Traits) into the
/// single traits pack consumed by the p_container_base chain.
template <typename T, typename Partition, typename Traits>
struct indexed_traits_bundle {
  using value_type = T;
  using partition_type = Partition;
  using mapper_type = typename Traits::mapper_type;
  using bcontainer_type = typename Traits::bcontainer_type;
  using ths_manager_type = typename Traits::ths_manager_type;
};

} // namespace detail

// ---------------------------------------------------------------------------
// p_container_base (Table XI)
// ---------------------------------------------------------------------------

template <typename Derived, typename Traits>
class p_container_base : public p_object {
 public:
  using traits_type = Traits;
  using value_type = typename Traits::value_type;
  using partition_type = typename Traits::partition_type;
  using mapper_type = typename Traits::mapper_type;
  using bcontainer_type = typename Traits::bcontainer_type;
  using ths_manager_type = typename Traits::ths_manager_type;
  using gid_type = typename partition_type::gid_type;
  using location_manager_type = location_manager<bcontainer_type>;

  [[nodiscard]] partition_type const& partition() const noexcept
  {
    return m_partition;
  }
  [[nodiscard]] partition_type& partition() noexcept { return m_partition; }
  [[nodiscard]] mapper_type const& mapper() const noexcept { return m_mapper; }
  [[nodiscard]] mapper_type& mapper() noexcept { return m_mapper; }
  [[nodiscard]] location_manager_type& get_location_manager() noexcept
  {
    return m_lm;
  }
  [[nodiscard]] location_manager_type const& get_location_manager()
      const noexcept
  {
    return m_lm;
  }
  [[nodiscard]] locking_policy_table& policies() noexcept { return m_policies; }

  /// Default address resolution: closed-form partition query followed by the
  /// partition mapper (static distributions).  Dynamic containers override.
  [[nodiscard]] resolution resolve(gid_type const& g) const
  {
    bcid_type const b = m_partition.get_info(g);
    return resolution::at(b, m_mapper.map(b));
  }

  /// True when the element lives in a local bContainer.
  [[nodiscard]] bool is_local(gid_type const& g) const
  {
    auto const r = derived().resolve(g);
    return r.resolved && r.loc == get_location_id();
  }

  /// Location that owns (or may know more about) the GID.
  [[nodiscard]] location_id lookup(gid_type const& g) const
  {
    return derived().resolve(g).loc;
  }

  /// Local bContainer shortcut.
  [[nodiscard]] bcontainer_type& bc(bcid_type b)
  {
    return m_lm.get_bcontainer(b);
  }
  [[nodiscard]] bcontainer_type const& bc(bcid_type b) const
  {
    return m_lm.get_bcontainer(b);
  }

  // -------------------------------------------------------------------------
  // Generic method execution (Fig. 8 / Fig. 17).  Framework interface: used
  // by derived containers to implement their element-wise methods.
  // -------------------------------------------------------------------------

  /// Asynchronous execution: route `action(container, bcid)` to the owner of
  /// `gid` and run it under the thread-safety hooks.  Returns immediately.
  template <typename Action>
  void invoke(std::size_t method, gid_type gid, Action action)
  {
    ths_info ti{method, invalid_bcid};
    m_ths.metadata_access_pre(ti);
    auto const info = derived().resolve(gid);
    m_ths.metadata_access_post(ti);

    if (info.resolved && info.loc == get_location_id()) {
      note_local_invocation();
      ti.bcid = info.bcid;
      m_ths.data_access_pre(ti);
      action(derived(), info.bcid);
      m_ths.data_access_post(ti);
      return;
    }
    if (!info.resolved && info.loc == get_location_id()) {
      // Resolution metadata not here yet (directory registration in
      // flight): park the request behind pending traffic and retry.
      Derived* self = &derived();
      post_to_self([self, method, gid, action = std::move(action)]() mutable {
        self->invoke(method, gid, std::move(action));
      });
      return;
    }
    // Forward (computation migration) and re-evaluate on the target.
    async_rmi<Derived>(info.loc, this->get_handle(),
                       [method, gid, action](Derived& c) mutable {
                         c.invoke(method, gid, std::move(action));
                       });
  }

  /// Split-phase execution: returns a future for `action`'s result; the
  /// request migrates through forwarding hops and fulfils the future at the
  /// owner (Ch. VII.F "split phase reads").
  template <typename Action>
  [[nodiscard]] auto invoke_split(std::size_t method, gid_type gid,
                                  Action action)
  {
    using result_type =
        std::invoke_result_t<Action&, Derived&, bcid_type>;
    auto st = std::make_shared<typename pc_future<result_type>::state>();
    route_with_result<result_type>(method, gid, std::move(action), st);
    return pc_future<result_type>(st);
  }

  /// Synchronous execution: blocks until the result is available
  /// (Ch. VII.F "synchronous reads").  Local accesses take a direct path
  /// without future allocation.
  template <typename Action>
  [[nodiscard]] auto invoke_ret(std::size_t method, gid_type gid,
                                Action action)
  {
    ths_info ti{method, invalid_bcid};
    m_ths.metadata_access_pre(ti);
    auto const info = derived().resolve(gid);
    m_ths.metadata_access_post(ti);

    if (info.resolved && info.loc == get_location_id()) {
      note_local_invocation();
      ti.bcid = info.bcid;
      m_ths.data_access_pre(ti);
      auto result = action(derived(), info.bcid);
      m_ths.data_access_post(ti);
      return result;
    }
    return invoke_split(method, gid, std::move(action)).get();
  }

  /// Framework-internal: executes locally or migrates, carrying the shared
  /// response state.  Public because forwarded re-invocations re-enter it on
  /// other representatives.
  template <typename R, typename Action>
  void route_with_result(std::size_t method, gid_type gid, Action action,
                         std::shared_ptr<typename pc_future<R>::state> st)
  {
    ths_info ti{method, invalid_bcid};
    m_ths.metadata_access_pre(ti);
    auto const info = derived().resolve(gid);
    m_ths.metadata_access_post(ti);

    if (info.resolved && info.loc == get_location_id()) {
      ti.bcid = info.bcid;
      m_ths.data_access_pre(ti);
      st->value.emplace(action(derived(), info.bcid));
      m_ths.data_access_post(ti);
      st->ready.store(true, std::memory_order_release);
      return;
    }
    if (!info.resolved && info.loc == get_location_id()) {
      Derived* self = &derived();
      post_to_self(
          [self, method, gid, action = std::move(action), st]() mutable {
            self->template route_with_result<R>(method, gid,
                                                std::move(action), st);
          });
      return;
    }
    async_rmi<Derived>(info.loc, this->get_handle(),
                       [method, gid, action = std::move(action),
                        st](Derived& c) mutable {
                         c.template route_with_result<R>(method, gid,
                                                         std::move(action), st);
                       });
  }

  /// Runs `f(container)` on every location of the container (one-sided
  /// broadcast of work); completion at the next fence.
  template <typename F>
  void for_all_locations(F f)
  {
    for (location_id l = 0; l < num_locations(); ++l) {
      if (l == get_location_id())
        f(derived());
      else
        async_rmi<Derived>(l, this->get_handle(), f);
    }
  }

  /// Memory footprint of the local representative: (metadata, data) bytes
  /// (Ch. IX.F memory study).
  [[nodiscard]] memory_report memory_size() const
  {
    auto r = m_lm.memory_size();
    r.first += sizeof(Derived) + m_ths.memory_size();
    return r;
  }

  /// Aggregated (metadata, data) over all locations.  Collective.
  [[nodiscard]] memory_report global_memory_size() const
  {
    auto const local = memory_size();
    auto const meta = allreduce(local.first, std::plus<>{});
    auto const data = allreduce(local.second, std::plus<>{});
    return {meta, data};
  }

 protected:
  [[nodiscard]] Derived& derived() noexcept
  {
    return static_cast<Derived&>(*this);
  }
  [[nodiscard]] Derived const& derived() const noexcept
  {
    return static_cast<Derived const&>(*this);
  }

  partition_type m_partition;
  mapper_type m_mapper;
  location_manager_type m_lm;
  locking_policy_table m_policies;
  ths_manager_type m_ths{&m_policies};
};

// ---------------------------------------------------------------------------
// p_container_static (Table XII)
// ---------------------------------------------------------------------------

template <typename Derived, typename Traits>
class p_container_static : public p_container_base<Derived, Traits> {
  using base = p_container_base<Derived, Traits>;

 public:
  using typename base::gid_type;

  /// Number of elements in local bContainers.
  [[nodiscard]] std::size_t local_size() const
  {
    return this->m_lm.local_size();
  }
  [[nodiscard]] bool local_empty() const { return local_size() == 0; }

  /// Global size: closed form from the partition's domain (static
  /// containers never change size).
  [[nodiscard]] std::size_t size() const
  {
    return this->m_partition.domain().size();
  }
  [[nodiscard]] bool empty() const { return size() == 0; }
};

// ---------------------------------------------------------------------------
// p_container_dynamic (Table XIII)
// ---------------------------------------------------------------------------

template <typename Derived, typename Traits>
class p_container_dynamic : public p_container_base<Derived, Traits> {
  using base = p_container_base<Derived, Traits>;

 public:
  [[nodiscard]] std::size_t local_size() const
  {
    return this->m_lm.local_size();
  }
  [[nodiscard]] bool local_empty() const { return local_size() == 0; }

  /// Global size.  One-sided: queries every location's local size
  /// (Ch. VII.G discusses the cost trade-offs; the cached-size variant is
  /// refreshed by post_execute in the view layer).
  [[nodiscard]] std::size_t size() const
  {
    std::size_t total = 0;
    for (location_id l = 0; l < num_locations(); ++l) {
      if (l == this->get_location_id())
        total += local_size();
      else
        total += sync_rmi<Derived>(l, this->get_handle(),
                                   [](Derived const& c) {
                                     return c.local_size();
                                   });
    }
    return total;
  }
  [[nodiscard]] bool empty() const { return size() == 0; }

  /// Removes all elements on every location.  Collective: the leading fence
  /// lets in-flight element methods (and one-sided size queries) complete
  /// before any location starts destroying state.
  void clear()
  {
    rmi_fence();
    for (auto& [bcid, bcptr] : this->m_lm)
      bcptr->clear();
    rmi_fence();
  }
};

// ---------------------------------------------------------------------------
// Element proxy (shared-object operator[] support)
// ---------------------------------------------------------------------------

/// Reference-like proxy to a (possibly remote) element: reads resolve via
/// get_element, writes via set_element.
template <typename Container>
class element_proxy {
 public:
  using value_type = typename Container::value_type;
  using gid_type = typename Container::gid_type;

  element_proxy(Container& c, gid_type g) noexcept : m_c(&c), m_gid(g) {}

  operator value_type() const { return m_c->get_element(m_gid); } // NOLINT

  element_proxy& operator=(value_type const& v)
  {
    m_c->set_element(m_gid, v);
    return *this;
  }
  element_proxy& operator=(element_proxy const& o)
  {
    return *this = static_cast<value_type>(o);
  }

  [[nodiscard]] value_type value() const { return m_c->get_element(m_gid); }
  [[nodiscard]] gid_type gid() const noexcept { return m_gid; }

 private:
  Container* m_c;
  gid_type m_gid;
};

// ---------------------------------------------------------------------------
// p_container_indexed (Table XIV)
// ---------------------------------------------------------------------------

/// Indexed interface over any container whose partition provides
/// local_index(gid): set/get/split-phase element access, apply_get/apply_set
/// and operator[].  Base of pArray, pMatrix and pVector.
template <typename Derived, typename Traits,
          template <typename, typename> class SizeBase = p_container_static>
class p_container_indexed : public SizeBase<Derived, Traits> {
  using base = SizeBase<Derived, Traits>;

 public:
  using typename base::gid_type;
  using typename base::value_type;
  using reference = element_proxy<Derived>;

  /// Asynchronous write (no return value — Ch. V.B asynchronous methods).
  void set_element(gid_type gid, value_type val)
  {
    this->invoke(MP_SET_ELEMENT, gid,
                 [gid, val = std::move(val)](Derived& c, bcid_type b) {
                   c.bc(b).set(c.partition().local_index(gid), val);
                 });
  }

  /// Synchronous write: returns only after the write has been applied at the
  /// owner.  Using only synchronous methods restores sequential consistency
  /// (Ch. VII.E Claim 3).
  void set_element_sync(gid_type gid, value_type val)
  {
    (void)this->invoke_ret(MP_SET_ELEMENT, gid,
                           [gid, val = std::move(val)](Derived& c,
                                                       bcid_type b) {
                             c.bc(b).set(c.partition().local_index(gid), val);
                             return true;
                           });
  }

  /// Synchronous read.
  [[nodiscard]] value_type get_element(gid_type gid)
  {
    return this->invoke_ret(MP_GET_ELEMENT, gid,
                            [gid](Derived& c, bcid_type b) {
                              return c.bc(b).at(c.partition().local_index(gid));
                            });
  }

  /// Split-phase read: returns a future immediately (Ch. V.B).
  [[nodiscard]] pc_future<value_type> split_phase_get_element(gid_type gid)
  {
    return this->invoke_split(MP_GET_ELEMENT, gid,
                              [gid](Derived& c, bcid_type b) {
                                return c.bc(b).at(
                                    c.partition().local_index(gid));
                              });
  }

  /// Applies functor `f` to the element; returns f's result (synchronous).
  template <typename F>
  [[nodiscard]] auto apply_get(gid_type gid, F f)
  {
    return this->invoke_ret(MP_APPLY, gid,
                            [gid, f = std::move(f)](Derived& c,
                                                    bcid_type b) mutable {
                              return f(c.bc(b).at(
                                  c.partition().local_index(gid)));
                            });
  }

  /// Applies functor `f` to the element asynchronously (no return).
  template <typename F>
  void apply_set(gid_type gid, F f)
  {
    this->invoke(MP_APPLY, gid,
                 [gid, f = std::move(f)](Derived& c, bcid_type b) mutable {
                   f(c.bc(b).at(c.partition().local_index(gid)));
                 });
  }

  [[nodiscard]] reference operator[](gid_type gid)
  {
    return reference(this->derived(), gid);
  }

  /// Direct reference to a *local* element (native-view fast path).
  [[nodiscard]] value_type& local_element(gid_type gid)
  {
    auto const r = this->derived().resolve(gid);
    assert(r.resolved && r.loc == this->get_location_id());
    return this->bc(r.bcid).at(this->partition().local_index(gid));
  }

  /// Pointer to a local element, or nullptr when the element is remote
  /// (lets views/algorithms take the direct path when possible).
  [[nodiscard]] value_type* local_element_ptr(gid_type gid)
  {
    auto const r = this->derived().resolve(gid);
    if (!r.resolved || r.loc != this->get_location_id())
      return nullptr;
    return &this->bc(r.bcid).at(this->partition().local_index(gid));
  }

  /// Applies `f(gid, element&)` to every element stored on this location,
  /// bContainer by bContainer in partition order (the native traversal).
  template <typename F>
  void for_each_local(F&& f)
  {
    for (auto& [bcid, bcptr] : this->m_lm) {
      std::size_t const n = bcptr->size();
      for (std::size_t i = 0; i != n; ++i)
        f(this->partition().gid_of(bcid, i), bcptr->at(i));
    }
  }

  /// GIDs of all locally stored elements, in partition order.
  [[nodiscard]] std::vector<gid_type> local_gids() const
  {
    std::vector<gid_type> out;
    out.reserve(this->m_lm.local_size());
    for (auto const& [bcid, bcptr] : this->m_lm) {
      std::size_t const n = bcptr->size();
      for (std::size_t i = 0; i != n; ++i)
        out.push_back(this->partition().gid_of(bcid, i));
    }
    return out;
  }
};

} // namespace stapl

#endif
