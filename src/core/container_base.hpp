#ifndef STAPL_CORE_CONTAINER_BASE_HPP
#define STAPL_CORE_CONTAINER_BASE_HPP

// The pContainer base hierarchy and the shared-object-view machinery
// (dissertation Ch. V, Figs. 7/8/17, Tables XI-XIV).
//
// Every stapl pContainer derives (through CRTP chains mirroring the PCF
// taxonomy of Fig. 5) from p_container_base, which owns the location
// manager, the data-distribution information (partition + partition mapper)
// and the thread-safety manager, and implements the generic `invoke` method
// skeleton: resolve the GID to a (bCID, location); execute locally under the
// thread-safety hooks, forward to the owner location, or — when resolution
// is incomplete — migrate the request toward a location that knows more
// (method forwarding).
//
// Module map of the core layer:
//   domains.hpp          GID/domain concepts (1D, 2D, dynamic GIDs)
//   partitions.hpp       domain -> sub-domain (bCID) decompositions
//   mappers.hpp          bCID -> location placement
//   base_containers.hpp  per-location storage units (bContainers)
//   location_manager.hpp the bContainers of one location
//   directory.hpp        distributed GID -> owner registry: home-location
//                        records, per-location owner caches with
//                        invalidation, request forwarding (invoke_where),
//                        owner-side access tracking (bounded hot-GID sketch)
//   migration.hpp        element-granularity handoff between bContainers,
//                        driven through the directory
//   load_balancer.hpp    epoch-based hot-element redistribution on top of
//                        migrate(), driven by the directory's access stats
//   thread_safety.hpp    Ch. VI locking managers + policy tables
//   redistribution.hpp   whole-bContainer repartitioning
//   composition.hpp      nested pContainer support
//   container_base.hpp   this file: the CRTP method-execution skeleton,
//                        switching between closed-form resolution (static
//                        distributions) and the directory (dynamic ones)

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <type_traits>
#include <unordered_map>
#include <utility>

#include "../runtime/locality.hpp"
#include "../runtime/runtime.hpp"
#include "directory.hpp"
#include "load_balancer.hpp"
#include "location_manager.hpp"
#include "mappers.hpp"
#include "migration.hpp"
#include "partitions.hpp"
#include "thread_safety.hpp"

namespace stapl {

/// Result of pContainer address resolution (Fig. 7).  When `resolved` the
/// pair (bcid, loc) is final; otherwise `loc` is a location that may know
/// more about the GID's mapping (forwarding target).
struct resolution {
  bcid_type bcid = invalid_bcid;
  location_id loc = invalid_location;
  bool resolved = false;

  [[nodiscard]] static resolution at(bcid_type b, location_id l) noexcept
  {
    return {b, l, true};
  }
  [[nodiscard]] static resolution forward_to(location_id l) noexcept
  {
    return {invalid_bcid, l, false};
  }
};

namespace detail {

/// Bundles the user-facing template arguments (T, Partition, Traits) into the
/// single traits pack consumed by the p_container_base chain.
template <typename T, typename Partition, typename Traits>
struct indexed_traits_bundle {
  using value_type = T;
  using partition_type = Partition;
  using mapper_type = typename Traits::mapper_type;
  using bcontainer_type = typename Traits::bcontainer_type;
  using ths_manager_type = typename Traits::ths_manager_type;
};

} // namespace detail

// ---------------------------------------------------------------------------
// p_container_base (Table XI)
// ---------------------------------------------------------------------------

template <typename Derived, typename Traits>
class p_container_base : public p_object {
 public:
  using traits_type = Traits;
  using value_type = typename Traits::value_type;
  using partition_type = typename Traits::partition_type;
  using mapper_type = typename Traits::mapper_type;
  using bcontainer_type = typename Traits::bcontainer_type;
  using ths_manager_type = typename Traits::ths_manager_type;
  using gid_type = typename partition_type::gid_type;
  using location_manager_type = location_manager<bcontainer_type>;

  [[nodiscard]] partition_type const& partition() const noexcept
  {
    return m_partition;
  }
  [[nodiscard]] partition_type& partition() noexcept { return m_partition; }
  [[nodiscard]] mapper_type const& mapper() const noexcept { return m_mapper; }
  [[nodiscard]] mapper_type& mapper() noexcept { return m_mapper; }
  [[nodiscard]] location_manager_type& get_location_manager() noexcept
  {
    return m_lm;
  }
  [[nodiscard]] location_manager_type const& get_location_manager()
      const noexcept
  {
    return m_lm;
  }
  [[nodiscard]] locking_policy_table& policies() noexcept { return m_policies; }

  /// Default address resolution: closed-form partition query followed by the
  /// partition mapper (static distributions).  Dynamic containers override.
  [[nodiscard]] resolution resolve(gid_type const& g) const
  {
    bcid_type const b = m_partition.get_info(g);
    return resolution::at(b, m_mapper.map(b));
  }

  /// True when the element lives in a local bContainer.
  [[nodiscard]] bool is_local(gid_type const& g) const
  {
    if (m_dynamic)
      return m_directory->owns(g);
    auto const r = derived().resolve(g);
    return r.resolved && r.loc == get_location_id();
  }

  /// Location that owns (or may know more about) the GID.
  [[nodiscard]] location_id lookup(gid_type const& g) const
  {
    if (m_dynamic) {
      if (auto const o = m_directory->try_resolve(g))
        return *o;
      return m_directory->resolve(g);
    }
    return derived().resolve(g).loc;
  }

  // -------------------------------------------------------------------------
  // Directory-backed (dynamic) resolution
  // -------------------------------------------------------------------------

  using directory_type = directory<gid_type>;

  /// The container's directory representative.  Only valid after the
  /// container switched to dynamic resolution (make_dynamic(), or dynamic
  /// from birth); static containers never construct one.
  [[nodiscard]] directory_type& get_directory() noexcept
  {
    assert(m_directory && "get_directory(): container is not dynamic");
    return *m_directory;
  }
  [[nodiscard]] directory_type const& get_directory() const noexcept
  {
    assert(m_directory && "get_directory(): container is not dynamic");
    return *m_directory;
  }

  /// True when element methods resolve through the directory instead of the
  /// closed-form partition arithmetic.
  [[nodiscard]] bool is_dynamic() const noexcept { return m_dynamic; }

  /// Collective: switches the container to directory-backed resolution.
  /// Every location takes local ownership of its current elements;
  /// afterwards elements may migrate between locations (see migrate()).
  /// The closed-form owner is installed as the directory's default, so no
  /// home records are materialized up front: elements that never move
  /// resolve lazily to the same owner, and fresh GIDs are adopted by
  /// their arithmetic owner.
  void make_dynamic()
  {
    if (m_dynamic) {
      rmi_fence();
      return;
    }
    // Snapshot the closed-form bView before flipping to dynamic
    // resolution: once m_dynamic is set, local_gids() filters by directory
    // ownership, which is exactly what the loop below seeds.
    auto const seed_gids = derived().local_gids();
    enable_directory_resolution([this](gid_type const& g) {
      return m_mapper.map(m_partition.get_info(g));
    });
    for (auto const& g : seed_gids)
      m_directory->seed_ownership(g);
    rmi_fence();
  }

  /// Moves the element of `gid` to `dest` (asynchronous, complete at the
  /// next fence).  Requires directory-backed resolution.
  void migrate(gid_type const& gid, location_id dest)
  {
    stapl::migrate(derived(), gid, dest);
  }

  // -------------------------------------------------------------------------
  // Load balancing (core/load_balancer.hpp): hot-element redistribution on
  // top of migrate(), driven by the directory's owner-side access stats.
  // -------------------------------------------------------------------------

  /// Collective: switches to directory-backed resolution (if not already)
  /// and starts tracking owner-side accesses, making the container eligible
  /// for rebalance()/advance_epoch().
  void enable_load_balancing(load_balancer_config cfg = {})
  {
    m_lb_cfg = cfg;
    derived().make_dynamic(); // no-op fence when already dynamic
    m_directory->enable_access_tracking(cfg.hot_k, cfg.access_sample);
    m_lb_enabled = true;
    m_lb_interval = std::max(1u, cfg.epoch_interval);
    if (cfg.auto_epoch)
      m_lb_interval = std::clamp(m_lb_interval, cfg.min_epoch_interval,
                                 cfg.max_epoch_interval);
    m_lb_countdown = cfg.epoch_interval == 0 ? 0 : m_lb_interval;
    rmi_fence(); // tracking live everywhere before anyone measures
  }

  [[nodiscard]] bool load_balancing_enabled() const noexcept
  {
    return m_lb_enabled;
  }
  [[nodiscard]] load_balancer_config const& lb_config() const noexcept
  {
    return m_lb_cfg;
  }

  /// Collective: one rebalance wave (measure -> plan -> batched migrations);
  /// see stapl::rebalance.  Every location returns the same report.
  rebalance_report rebalance()
  {
    assert(m_lb_enabled && "rebalance(): enable_load_balancing() first");
    return stapl::rebalance(derived(), m_lb_cfg);
  }

  /// Collective: marks the end of one computation epoch; runs a rebalance
  /// wave when the epoch interval elapses.  With cfg.auto_epoch the
  /// interval self-tunes from the imbalance drift observed between
  /// consecutive waves' load summaries: a triggered wave or fast drift
  /// halves it (re-measure soon — placement is in flux), a quiet stable
  /// wave doubles it (stop paying measurement fences), clamped to
  /// [min_epoch_interval, max_epoch_interval].  The reports are identical
  /// on every location, so the tuned interval stays SPMD-consistent.
  /// Returns the report when a wave ran.  Call from the application's
  /// iteration loop.
  std::optional<rebalance_report> advance_epoch()
  {
    if (!m_lb_enabled)
      return std::nullopt; // epochs only count once balancing is live, so
                           // the first wave fires a full interval after
                           // enable_load_balancing(), not at an arbitrary
                           // phase of the app's iteration count
    m_lb_epoch += 1;
    STAPL_TRACE(trace::event_kind::epoch_advance, m_lb_epoch);
    if (m_lb_countdown == 0 || --m_lb_countdown != 0)
      return std::nullopt;
    auto const rep = rebalance();
    if (m_lb_cfg.auto_epoch) {
      double const drift =
          std::abs(rep.imbalance_before - m_lb_last_imbalance);
      m_lb_last_imbalance = rep.imbalance_before;
      if (rep.triggered || drift > m_lb_cfg.auto_drift)
        m_lb_interval =
            std::max(m_lb_cfg.min_epoch_interval, m_lb_interval / 2);
      else
        m_lb_interval =
            std::min(m_lb_cfg.max_epoch_interval, m_lb_interval * 2);
    }
    m_lb_countdown = m_lb_interval;
    return rep;
  }

  /// Effective advance_epoch() interval (after auto-tuning).
  [[nodiscard]] unsigned epoch_interval() const noexcept
  {
    return m_lb_interval;
  }

  // -------------------------------------------------------------------------
  // Locality pipeline (runtime/locality.hpp): per-container feedback state
  // shared between the views (which produce chunk descriptors), the
  // task-graph executor (which reports where chunks ran and how much they
  // moved) and the load balancer (which folds the executor's counters into
  // its load model).
  // -------------------------------------------------------------------------

  /// Chunking grain for this container: the executor's default scaled by
  /// the adaptive factor fed back from previous graphs' steal/idle
  /// counters.  Views forward their tuned_grain here.
  [[nodiscard]] std::size_t tuned_grain(std::size_t base) const
  {
    std::lock_guard lock(m_locality_mutex);
    return m_grain.apply(base);
  }

  /// Current adaptive grain multiplier (1.0 until feedback arrives).
  [[nodiscard]] double grain_factor() const
  {
    std::lock_guard lock(m_locality_mutex);
    return m_grain.factor();
  }

  /// Executor feedback: adapts the grain factor and accumulates the
  /// epoch's task-graph counters — the load balancer's second signal
  /// alongside the directory's access counts.
  void note_task_graph_stats(task_graph_stats const& s)
  {
    std::lock_guard lock(m_locality_mutex);
    m_grain.note(s);
    m_tg_epoch += s;
  }

  /// Task-graph counters accumulated since the last reset_task_stats().
  [[nodiscard]] task_graph_stats epoch_task_stats() const
  {
    std::lock_guard lock(m_locality_mutex);
    return m_tg_epoch;
  }

  /// Ends the task-stats measurement epoch (rebalance() calls this next to
  /// directory::reset_epoch, so both signals measure the same window).
  void reset_task_stats()
  {
    std::lock_guard lock(m_locality_mutex);
    m_tg_epoch = {};
  }

  /// Placement feedback: a chunk covering GID digests [lo, hi] executed at
  /// `where` in the previous graph — its data is warm there.
  void note_chunk_placement(std::uint64_t lo, std::uint64_t hi,
                            location_id where)
  {
    std::lock_guard lock(m_locality_mutex);
    m_affinity.note(lo, hi, where);
  }

  /// Cached-at hint for chunks covering [lo, hi] (invalid_location when no
  /// placement has been observed).  Views stamp descriptors with this.
  [[nodiscard]] location_id chunk_affinity(std::uint64_t lo,
                                           std::uint64_t hi) const
  {
    std::lock_guard lock(m_locality_mutex);
    return m_affinity.lookup(lo, hi);
  }

  /// Same lookup off a descriptor's wire form — the digest bounds peers
  /// and the executor's placement feedback actually see, so the hint a
  /// view stamps and the hint a thief's victim ranking reads cannot
  /// diverge.
  [[nodiscard]] location_id chunk_affinity(chunk_wire const& w) const
  {
    return w.has_digest ? chunk_affinity(w.digest_lo, w.digest_hi)
                        : invalid_location;
  }

  /// Framework-internal: drops the dynamic-resolution bookkeeping of an
  /// erased element (directory ownership + home record, overflow entries).
  /// Called by container erase methods at the owner; no-op when static.
  void dyn_forget(gid_type const& g)
  {
    if (!m_dynamic)
      return;
    m_directory->unregister_gid(g);
    m_dyn_index.erase(g);
    m_migrated.erase(g);
  }

  /// Local bCID holding `g`'s element.  Default: migrated-in overflow
  /// index, then the closed-form partition answer.  Containers with
  /// non-arithmetic partitions (e.g. dynamic pGraph) override.
  [[nodiscard]] bcid_type dyn_local_bcid(gid_type const& g) const
  {
    auto const it = m_dyn_index.find(g);
    if (it != m_dyn_index.end())
      return it->second;
    return m_partition.get_info(g);
  }

  /// Local bContainer shortcut.
  [[nodiscard]] bcontainer_type& bc(bcid_type b)
  {
    return m_lm.get_bcontainer(b);
  }
  [[nodiscard]] bcontainer_type const& bc(bcid_type b) const
  {
    return m_lm.get_bcontainer(b);
  }

  // -------------------------------------------------------------------------
  // Generic method execution (Fig. 8 / Fig. 17).  Framework interface: used
  // by derived containers to implement their element-wise methods.
  // -------------------------------------------------------------------------

  /// Asynchronous execution: route `action(container, bcid)` to the owner of
  /// `gid` and run it under the thread-safety hooks.  Returns immediately.
  template <typename Action>
  void invoke(std::size_t method, gid_type gid, Action action)
  {
    // For async routes this measures the initiation (resolve + enqueue)
    // cost; completion latency is covered by the rmi.sync / serve.op
    // families.
    latency::timed_op lat_scope(latency::op::container_apply);
    if (m_dynamic) {
      rmi_handle const h = this->get_handle();
      m_directory->invoke_where(
          gid, [h, method, gid,
                action = std::move(action)](location_id owner) mutable {
            // Resolved at execution time so the action reaches the
            // representative the directory routed it to (under the direct
            // transport that is not the calling thread's location).
            auto* c = get_registered_object_at<Derived>(owner, h);
            c->dyn_execute(method, gid, std::move(action));
          });
      return;
    }
    ths_info ti{method, invalid_bcid};
    m_ths.metadata_access_pre(ti);
    auto const info = derived().resolve(gid);
    m_ths.metadata_access_post(ti);

    if (info.resolved && info.loc == get_location_id()) {
      note_local_invocation();
      ti.bcid = info.bcid;
      m_ths.data_access_pre(ti);
      action(derived(), info.bcid);
      m_ths.data_access_post(ti);
      return;
    }
    if (!info.resolved && info.loc == get_location_id()) {
      // Resolution metadata not here yet (directory registration in
      // flight): park the request behind pending traffic and retry.
      Derived* self = &derived();
      post_to_self([self, method, gid, action = std::move(action)]() mutable {
        self->invoke(method, gid, std::move(action));
      });
      return;
    }
    // Forward (computation migration) and re-evaluate on the target.
    async_rmi<Derived>(info.loc, this->get_handle(),
                       [method, gid, action](Derived& c) mutable {
                         c.invoke(method, gid, std::move(action));
                       });
  }

  /// Split-phase execution: returns a future for `action`'s result; the
  /// request migrates through forwarding hops and fulfils the future at the
  /// owner (Ch. VII.F "split phase reads").
  template <typename Action>
  [[nodiscard]] auto invoke_split(std::size_t method, gid_type gid,
                                  Action action)
  {
    using result_type =
        std::invoke_result_t<Action&, Derived&, bcid_type>;
    auto st = std::make_shared<typename pc_future<result_type>::state>();
    route_with_result<result_type>(method, gid, std::move(action), st);
    return pc_future<result_type>(st);
  }

  /// Synchronous execution: blocks until the result is available
  /// (Ch. VII.F "synchronous reads").  Local accesses take a direct path
  /// without future allocation.
  template <typename Action>
  [[nodiscard]] auto invoke_ret(std::size_t method, gid_type gid,
                                Action action)
  {
    latency::timed_op lat_scope(latency::op::container_apply);
    if (m_dynamic) {
      {
        dyn_guard guard(*this);
        if (m_directory->owns(gid)) {
          note_local_invocation();
          m_directory->note_access(gid);
          ths_info ti{method, derived().dyn_local_bcid(gid)};
          m_ths.data_access_pre(ti);
          auto result = action(derived(), ti.bcid);
          m_ths.data_access_post(ti);
          return result;
        }
      }
      return invoke_split(method, gid, std::move(action)).get();
    }
    ths_info ti{method, invalid_bcid};
    m_ths.metadata_access_pre(ti);
    auto const info = derived().resolve(gid);
    m_ths.metadata_access_post(ti);

    if (info.resolved && info.loc == get_location_id()) {
      note_local_invocation();
      ti.bcid = info.bcid;
      m_ths.data_access_pre(ti);
      auto result = action(derived(), info.bcid);
      m_ths.data_access_post(ti);
      return result;
    }
    return invoke_split(method, gid, std::move(action)).get();
  }

  /// Framework-internal: executes locally or migrates, carrying the shared
  /// response state.  Public because forwarded re-invocations re-enter it on
  /// other representatives.
  template <typename R, typename Action>
  void route_with_result(std::size_t method, gid_type gid, Action action,
                         std::shared_ptr<typename pc_future<R>::state> st)
  {
    if (m_dynamic) {
      rmi_handle const h = this->get_handle();
      m_directory->invoke_where(
          gid, [h, method, gid, action = std::move(action),
                st](location_id owner) mutable {
            auto* c = get_registered_object_at<Derived>(owner, h);
            c->template dyn_execute_result<R>(method, gid, std::move(action),
                                              std::move(st));
          });
      return;
    }
    ths_info ti{method, invalid_bcid};
    m_ths.metadata_access_pre(ti);
    auto const info = derived().resolve(gid);
    m_ths.metadata_access_post(ti);

    if (info.resolved && info.loc == get_location_id()) {
      ti.bcid = info.bcid;
      m_ths.data_access_pre(ti);
      st->value.emplace(action(derived(), info.bcid));
      m_ths.data_access_post(ti);
      st->ready.store(true, std::memory_order_release);
      return;
    }
    if (!info.resolved && info.loc == get_location_id()) {
      Derived* self = &derived();
      post_to_self(
          [self, method, gid, action = std::move(action), st]() mutable {
            self->template route_with_result<R>(method, gid,
                                                std::move(action), st);
          });
      return;
    }
    async_rmi<Derived>(info.loc, this->get_handle(),
                       [method, gid, action = std::move(action),
                        st](Derived& c) mutable {
                         c.template route_with_result<R>(method, gid,
                                                         std::move(action), st);
                       });
  }

  /// Framework-internal: runs a routed action on the owner's
  /// representative.  Re-verifies ownership — under the direct transport
  /// (or with a migration racing the route) the element may have departed
  /// between the directory's check and this call; the action then re-enters
  /// the routing machinery via post_to_self instead of touching gone data.
  template <typename Action>
  void dyn_execute(std::size_t method, gid_type gid, Action action)
  {
    {
      dyn_guard guard(*this);
      if (m_directory->owns(gid)) {
        note_local_invocation();
        m_directory->note_access(gid);
        ths_info ti{method, derived().dyn_local_bcid(gid)};
        m_ths.data_access_pre(ti);
        action(derived(), ti.bcid);
        m_ths.data_access_post(ti);
        return;
      }
    }
    // Ownership left between routing and execution (migration race):
    // re-enter the routing machinery from the polling location.
    rmi_handle const h = this->get_handle();
    post_to_self([h, method, gid, action = std::move(action)]() mutable {
      auto* c = get_registered_object<Derived>(h);
      c->invoke(method, gid, std::move(action));
    });
  }

  /// dyn_execute for value-returning routes (split-phase/synchronous).
  template <typename R, typename Action>
  void dyn_execute_result(std::size_t method, gid_type gid, Action action,
                          std::shared_ptr<typename pc_future<R>::state> st)
  {
    {
      dyn_guard guard(*this);
      if (m_directory->owns(gid)) {
        m_directory->note_access(gid);
        ths_info ti{method, derived().dyn_local_bcid(gid)};
        m_ths.data_access_pre(ti);
        st->value.emplace(action(derived(), ti.bcid));
        m_ths.data_access_post(ti);
        st->ready.store(true, std::memory_order_release);
        return;
      }
    }
    rmi_handle const h = this->get_handle();
    post_to_self(
        [h, method, gid, action = std::move(action), st]() mutable {
          auto* c = get_registered_object<Derived>(h);
          c->template route_with_result<R>(method, gid, std::move(action),
                                           std::move(st));
        });
  }

  // -------------------------------------------------------------------------
  // Migration protocol steps (driven by migration.hpp's migrate()).
  // -------------------------------------------------------------------------

  /// Owner-side step: extracts the element and ships it to `dest`, leaving
  /// a forwarding hint behind.  Re-routes the whole migration if ownership
  /// moved before this step executed.
  void migrate_out(gid_type gid, location_id dest)
  {
    using payload_type = decltype(derived().extract_element(gid));
    std::optional<payload_type> payload;
    std::uint32_t seq = 0;
    {
      dyn_guard guard(*this);
      if (m_directory->owns(gid)) {
        if (dest == get_location_id())
          return; // already here — a no-op only while we still own it
        payload.emplace(derived().extract_element(gid));
        seq = m_directory->migration_departed(gid, dest);
      }
    }
    if (!payload) {
      rmi_handle const h = this->get_handle();
      post_to_self([h, gid, dest] {
        auto* c = get_registered_object<Derived>(h);
        c->migrate(gid, dest);
      });
      return;
    }
    // The payload travels with its hop number so the home can order this
    // move's record update against updates of neighbouring hops.
    async_rmi<Derived>(dest, this->get_handle(),
                       [gid, seq,
                        payload = std::move(*payload)](Derived& c) mutable {
                         c.migrate_in(gid, std::move(payload), seq + 1);
                       });
  }

  /// Destination-side step: stores the payload and takes ownership (the
  /// directory then updates the home record, invalidating stale caches).
  template <typename Payload>
  void migrate_in(gid_type gid, Payload payload, std::uint32_t seq)
  {
    {
      dyn_guard guard(*this);
      derived().insert_migrated(gid, std::move(payload));
    }
    m_directory->migration_arrived(gid, seq);
  }

  /// Runs `f(container)` on every location of the container (one-sided
  /// broadcast of work); completion at the next fence.
  template <typename F>
  void for_all_locations(F f)
  {
    for (location_id l = 0; l < num_locations(); ++l) {
      if (l == get_location_id())
        f(derived());
      else
        async_rmi<Derived>(l, this->get_handle(), f);
    }
  }

  /// Memory footprint of the local representative: (metadata, data) bytes
  /// (Ch. IX.F memory study).
  [[nodiscard]] memory_report memory_size() const
  {
    auto r = m_lm.memory_size();
    r.first += sizeof(Derived) + m_ths.memory_size();
    return r;
  }

  /// Aggregated (metadata, data) over all locations.  Collective.
  [[nodiscard]] memory_report global_memory_size() const
  {
    auto const local = memory_size();
    auto const meta = allreduce(local.first, std::plus<>{});
    auto const data = allreduce(local.second, std::plus<>{});
    return {meta, data};
  }

 protected:
  [[nodiscard]] Derived& derived() noexcept
  {
    return static_cast<Derived&>(*this);
  }
  [[nodiscard]] Derived const& derived() const noexcept
  {
    return static_cast<Derived const&>(*this);
  }

  /// Enables directory-backed resolution with the given fallback owner
  /// function (nullable: unknown GIDs then park until registered).  Used by
  /// make_dynamic() and by containers that are directory-backed from birth
  /// (dynamic pGraph).
  void enable_directory_resolution(
      std::function<location_id(gid_type const&)> default_owner)
  {
    if (!m_directory)
      m_directory = std::make_unique<directory_type>(); // collective ctor
    m_directory->set_default_owner(std::move(default_owner));
    m_dynamic = true;
  }

  /// Serializes this representative's dynamic dispatch (ownership check +
  /// local bCID computation + element access) against the migration steps
  /// under the direct transport, where both run on arbitrary caller
  /// threads.  No-op under the queue transport (single thread per
  /// location).  Recursive so an element action may nest local operations
  /// on the same container; element actions must not perform *remote*
  /// container operations under the direct transport (Ch. VI discipline).
  struct dyn_guard {
    explicit dyn_guard(p_container_base const& c)
        : m(current_transport() == transport_kind::direct ? &c.m_dyn_mutex
                                                          : nullptr)
    {
      if (m)
        m->lock();
    }
    ~dyn_guard()
    {
      if (m)
        m->unlock();
    }
    dyn_guard(dyn_guard const&) = delete;
    dyn_guard& operator=(dyn_guard const&) = delete;

   private:
    std::recursive_mutex* m;
  };

  partition_type m_partition;
  mapper_type m_mapper;
  location_manager_type m_lm;
  locking_policy_table m_policies;
  ths_manager_type m_ths{&m_policies};
  /// Constructed lazily (and collectively) when the container switches to
  /// dynamic resolution — static containers stay directory-free.
  std::unique_ptr<directory_type> m_directory;
  bool m_dynamic = false;
  /// Load-balancing state (enable_load_balancing / advance_epoch).
  load_balancer_config m_lb_cfg;
  bool m_lb_enabled = false;
  std::uint64_t m_lb_epoch = 0;
  unsigned m_lb_interval = 1;    ///< effective interval (auto-tuned)
  unsigned m_lb_countdown = 0;   ///< epochs until the next wave (0 = never)
  double m_lb_last_imbalance = 1.0;
  /// Locality-pipeline feedback state (guarded: executor feedback may run
  /// on caller threads under the direct transport).
  mutable std::mutex m_locality_mutex;
  grain_tuner m_grain;
  task_graph_stats m_tg_epoch;
  chunk_affinity_table m_affinity;
  mutable std::recursive_mutex m_dyn_mutex;
  /// bCID of migrated-in elements that do not belong to a local bContainer
  /// per the closed-form partition (value == migrated_bcid when the element
  /// lives in m_migrated).
  std::unordered_map<gid_type, bcid_type> m_dyn_index;
  /// Overflow store of migrated-in elements for contiguously indexed
  /// containers whose bContainers cannot host foreign GIDs.
  std::unordered_map<gid_type, value_type> m_migrated;
};

// ---------------------------------------------------------------------------
// p_container_static (Table XII)
// ---------------------------------------------------------------------------

template <typename Derived, typename Traits>
class p_container_static : public p_container_base<Derived, Traits> {
  using base = p_container_base<Derived, Traits>;

 public:
  using typename base::gid_type;

  /// Number of elements in local bContainers.
  [[nodiscard]] std::size_t local_size() const
  {
    return this->m_lm.local_size();
  }
  [[nodiscard]] bool local_empty() const { return local_size() == 0; }

  /// Global size: closed form from the partition's domain (static
  /// containers never change size).
  [[nodiscard]] std::size_t size() const
  {
    return this->m_partition.domain().size();
  }
  [[nodiscard]] bool empty() const { return size() == 0; }
};

// ---------------------------------------------------------------------------
// p_container_dynamic (Table XIII)
// ---------------------------------------------------------------------------

template <typename Derived, typename Traits>
class p_container_dynamic : public p_container_base<Derived, Traits> {
  using base = p_container_base<Derived, Traits>;

 public:
  [[nodiscard]] std::size_t local_size() const
  {
    return this->m_lm.local_size();
  }
  [[nodiscard]] bool local_empty() const { return local_size() == 0; }

  /// Global size.  One-sided: queries every location's local size
  /// (Ch. VII.G discusses the cost trade-offs; the cached-size variant is
  /// refreshed by post_execute in the view layer).
  [[nodiscard]] std::size_t size() const
  {
    std::size_t total = 0;
    for (location_id l = 0; l < num_locations(); ++l) {
      if (l == this->get_location_id())
        total += local_size();
      else
        total += sync_rmi<Derived>(l, this->get_handle(),
                                   [](Derived const& c) {
                                     return c.local_size();
                                   });
    }
    return total;
  }
  [[nodiscard]] bool empty() const { return size() == 0; }

  /// Removes all elements on every location.  Collective: the leading fence
  /// lets in-flight element methods (and one-sided size queries) complete
  /// before any location starts destroying state.
  void clear()
  {
    rmi_fence();
    for (auto& [bcid, bcptr] : this->m_lm)
      bcptr->clear();
    rmi_fence();
  }
};

// ---------------------------------------------------------------------------
// Element proxy (shared-object operator[] support)
// ---------------------------------------------------------------------------

/// Reference-like proxy to a (possibly remote) element: reads resolve via
/// get_element, writes via set_element.
template <typename Container>
class element_proxy {
 public:
  using value_type = typename Container::value_type;
  using gid_type = typename Container::gid_type;

  element_proxy(Container& c, gid_type g) noexcept : m_c(&c), m_gid(g) {}

  operator value_type() const { return m_c->get_element(m_gid); } // NOLINT

  element_proxy& operator=(value_type const& v)
  {
    m_c->set_element(m_gid, v);
    return *this;
  }
  element_proxy& operator=(element_proxy const& o)
  {
    return *this = static_cast<value_type>(o);
  }

  [[nodiscard]] value_type value() const { return m_c->get_element(m_gid); }
  [[nodiscard]] gid_type gid() const noexcept { return m_gid; }

 private:
  Container* m_c;
  gid_type m_gid;
};

// ---------------------------------------------------------------------------
// p_container_indexed (Table XIV)
// ---------------------------------------------------------------------------

/// Indexed interface over any container whose partition provides
/// local_index(gid): set/get/split-phase element access, apply_get/apply_set
/// and operator[].  Base of pArray, pMatrix and pVector.
template <typename Derived, typename Traits,
          template <typename, typename> class SizeBase = p_container_static>
class p_container_indexed : public SizeBase<Derived, Traits> {
  using base = SizeBase<Derived, Traits>;

 public:
  using typename base::gid_type;
  using typename base::value_type;
  using reference = element_proxy<Derived>;

  /// Reference to the element of `gid` stored under bCID `b` — either a
  /// partition-assigned bContainer slot or the migrated-element overflow
  /// store.  The accessor every indexed element method funnels through, so
  /// methods work unchanged after the element migrates.
  [[nodiscard]] value_type& element_at(gid_type gid, bcid_type b)
  {
    if (b == migrated_bcid)
      return this->m_migrated.at(gid);
    return this->bc(b).at(this->partition().local_index(gid));
  }

  /// Removes the element of `gid` from local storage and returns it
  /// (migration protocol hook).  Partition-assigned slots stay allocated —
  /// contiguous storage cannot drop one index — and simply become stale;
  /// resolution never routes to them again until the element returns.
  [[nodiscard]] value_type extract_element(gid_type gid)
  {
    auto const it = this->m_dyn_index.find(gid);
    if (it != this->m_dyn_index.end() && it->second == migrated_bcid) {
      auto node = this->m_migrated.extract(gid);
      this->m_dyn_index.erase(it);
      return std::move(node.mapped());
    }
    return element_at(gid, this->partition().get_info(gid));
  }

  /// Stores a migrated-in element (migration protocol hook).  An element
  /// returning to the location its partition assigns it to lands back in
  /// its original slot; foreign elements go to the overflow store.
  void insert_migrated(gid_type gid, value_type v)
  {
    bcid_type const b = this->partition().get_info(gid);
    if (this->m_lm.has(b)) {
      this->bc(b).set(this->partition().local_index(gid), std::move(v));
      this->m_dyn_index.erase(gid);
      this->m_migrated.erase(gid);
      return;
    }
    this->m_migrated[gid] = std::move(v);
    this->m_dyn_index[gid] = migrated_bcid;
  }

  /// Asynchronous write (no return value — Ch. V.B asynchronous methods).
  void set_element(gid_type gid, value_type val)
  {
    this->invoke(MP_SET_ELEMENT, gid,
                 [gid, val = std::move(val)](Derived& c, bcid_type b) {
                   c.element_at(gid, b) = val;
                 });
  }

  /// Synchronous write: returns only after the write has been applied at the
  /// owner.  Using only synchronous methods restores sequential consistency
  /// (Ch. VII.E Claim 3).
  void set_element_sync(gid_type gid, value_type val)
  {
    (void)this->invoke_ret(MP_SET_ELEMENT, gid,
                           [gid, val = std::move(val)](Derived& c,
                                                       bcid_type b) {
                             c.element_at(gid, b) = val;
                             return true;
                           });
  }

  /// Synchronous read.
  [[nodiscard]] value_type get_element(gid_type gid)
  {
    return this->invoke_ret(MP_GET_ELEMENT, gid,
                            [gid](Derived& c, bcid_type b) {
                              return c.element_at(gid, b);
                            });
  }

  /// Split-phase read: returns a future immediately (Ch. V.B).
  [[nodiscard]] pc_future<value_type> split_phase_get_element(gid_type gid)
  {
    return this->invoke_split(MP_GET_ELEMENT, gid,
                              [gid](Derived& c, bcid_type b) {
                                return c.element_at(gid, b);
                              });
  }

  /// Applies functor `f` to the element; returns f's result (synchronous).
  template <typename F>
  [[nodiscard]] auto apply_get(gid_type gid, F f)
  {
    return this->invoke_ret(MP_APPLY, gid,
                            [gid, f = std::move(f)](Derived& c,
                                                    bcid_type b) mutable {
                              return f(c.element_at(gid, b));
                            });
  }

  /// Applies functor `f` to the element asynchronously (no return).
  template <typename F>
  void apply_set(gid_type gid, F f)
  {
    this->invoke(MP_APPLY, gid,
                 [gid, f = std::move(f)](Derived& c, bcid_type b) mutable {
                   f(c.element_at(gid, b));
                 });
  }

  [[nodiscard]] reference operator[](gid_type gid)
  {
    return reference(this->derived(), gid);
  }

  /// Direct reference to a *local* element (native-view fast path).
  [[nodiscard]] value_type& local_element(gid_type gid)
  {
    if (this->is_dynamic()) {
      typename base::dyn_guard guard(*this); // vs concurrent migrate_out
      assert(this->get_directory().owns(gid));
      return element_at(gid, this->derived().dyn_local_bcid(gid));
    }
    auto const r = this->derived().resolve(gid);
    assert(r.resolved && r.loc == this->get_location_id());
    return this->bc(r.bcid).at(this->partition().local_index(gid));
  }

  /// Pointer to a local element, or nullptr when the element is remote
  /// (lets views/algorithms take the direct path when possible).  The
  /// lookup itself is guarded against concurrent migration; the returned
  /// pointer, like any native-view reference, is only stable within a
  /// computation phase (no concurrent migration of the same element).
  [[nodiscard]] value_type* local_element_ptr(gid_type gid)
  {
    if (this->is_dynamic()) {
      typename base::dyn_guard guard(*this);
      if (!this->get_directory().owns(gid))
        return nullptr;
      return &element_at(gid, this->derived().dyn_local_bcid(gid));
    }
    auto const r = this->derived().resolve(gid);
    if (!r.resolved || r.loc != this->get_location_id())
      return nullptr;
    return &this->bc(r.bcid).at(this->partition().local_index(gid));
  }

  /// Applies `f(gid, element&)` to every element stored on this location,
  /// bContainer by bContainer in partition order (the native traversal).
  /// After make_dynamic() the traversal follows current *ownership*:
  /// partition-assigned slots whose element migrated away are skipped, and
  /// adopted elements living in the overflow store are visited (ascending
  /// GID order) — so bView iteration and task-graph chunks cover exactly
  /// the elements this location owns.  Runs under the dynamic-dispatch
  /// guard; like any element action, `f` must not perform remote container
  /// operations under the direct transport (Ch. VI discipline).
  template <typename F>
  void for_each_local(F&& f)
  {
    if (!this->is_dynamic()) {
      for (auto& [bcid, bcptr] : this->m_lm) {
        std::size_t const n = bcptr->size();
        for (std::size_t i = 0; i != n; ++i)
          f(this->partition().gid_of(bcid, i), bcptr->at(i));
      }
      return;
    }
    typename base::dyn_guard guard(*this);
    auto const owned = this->get_directory().owned_snapshot();
    for (auto& [bcid, bcptr] : this->m_lm) {
      std::size_t const n = bcptr->size();
      for (std::size_t i = 0; i != n; ++i) {
        gid_type const g = this->partition().gid_of(bcid, i);
        if (owned.count(g) != 0)
          f(g, bcptr->at(i));
      }
    }
    for (gid_type const& g : adopted_gids_sorted())
      f(g, this->m_migrated.at(g));
  }

  /// GIDs of all locally stored elements, in partition order.  Dynamic
  /// containers list the elements this location currently *owns*: migrated
  /// -away slots are excluded and adopted overflow elements appended in
  /// ascending GID order (ROADMAP PR-1 follow-up).
  [[nodiscard]] std::vector<gid_type> local_gids() const
  {
    std::vector<gid_type> out;
    out.reserve(this->m_lm.local_size());
    if (!this->is_dynamic()) {
      for (auto const& [bcid, bcptr] : this->m_lm) {
        std::size_t const n = bcptr->size();
        for (std::size_t i = 0; i != n; ++i)
          out.push_back(this->partition().gid_of(bcid, i));
      }
      return out;
    }
    typename base::dyn_guard guard(*this);
    auto const owned = this->get_directory().owned_snapshot();
    for (auto const& [bcid, bcptr] : this->m_lm) {
      std::size_t const n = bcptr->size();
      for (std::size_t i = 0; i != n; ++i) {
        gid_type const g = this->partition().gid_of(bcid, i);
        if (owned.count(g) != 0)
          out.push_back(g);
      }
    }
    auto const adopted = adopted_gids_sorted();
    out.insert(out.end(), adopted.begin(), adopted.end());
    return out;
  }

 private:
  /// GIDs living in the migrated-element overflow store, ascending (a
  /// deterministic traversal order for adopted elements).
  [[nodiscard]] std::vector<gid_type> adopted_gids_sorted() const
  {
    std::vector<gid_type> adopted;
    adopted.reserve(this->m_migrated.size());
    for (auto const& [g, v] : this->m_migrated)
      adopted.push_back(g);
    std::sort(adopted.begin(), adopted.end());
    return adopted;
  }
};

} // namespace stapl

#endif
