#ifndef STAPL_CORE_DIRECTORY_HPP
#define STAPL_CORE_DIRECTORY_HPP

// Distributed directory (dissertation Ch. V.C.3 / Ch. XI.F.2).
//
// The directory is the mechanism that frees a pContainer from purely
// arithmetic GID resolution: each GID has a hash-determined *home location*
// holding its authoritative owner record, so elements can be registered,
// found and *moved* at run time without replicating global metadata.
//
// Per-location state of one directory:
//   * m_registry — authoritative owner records of the GIDs *homed* here,
//     each with the copyset of locations that cached the answer;
//   * m_owned    — the GIDs whose element currently lives on this location;
//   * m_away     — forwarding hints left behind by outbound migrations
//     (requests that still arrive here chase the hint, Ch. XI.F.2
//     "dynamic with forwarding"); bounded by home-driven reclamation:
//     each record update retires the hints of all but the most recent
//     former owner;
//   * m_cache    — owner cache filled by cold home lookups and by the home
//     piggybacking answers onto forwarded work; invalidated by the home
//     when the owner record changes (migration, re-registration, erase).
//
// Work routing (`invoke_where`) migrates the *request* to the data: caller
// -> (cache | home) -> owner, with at most one hop added per stale level.
// When metadata is still in flight (registration or migration racing the
// request), the request parks via post_to_self and is retried once per
// poll round — it stays visible to rmi_fence's termination detection, so a
// fence cannot pass over forwarded-but-unexecuted work.
//
// All inter-representative traffic uses the existing ARMI primitives; the
// per-representative mutex exists for the `direct` transport, where
// handlers execute on caller threads (Ch. VI metadata locking).

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "../runtime/runtime.hpp"

namespace stapl {

/// Performance counters of one location's directory representative.
struct directory_stats {
  std::uint64_t local_hits = 0;      ///< resolved on the owner, no traffic
  std::uint64_t cache_hits = 0;      ///< resolved from the owner cache
  std::uint64_t home_routed = 0;     ///< requests routed through the home
  std::uint64_t cold_lookups = 0;    ///< synchronous home lookups
  std::uint64_t forwards = 0;        ///< forwarding hops taken by work items
  std::uint64_t stale_bounces = 0;   ///< work that hit a stale owner
  std::uint64_t invalidations = 0;   ///< cache entries dropped on update
  std::uint64_t retries = 0;         ///< requests parked for in-flight metadata
  std::uint64_t migrations_in = 0;   ///< elements that arrived here
  std::uint64_t migrations_out = 0;  ///< elements that departed from here
  std::uint64_t owner_accesses = 0;  ///< accesses executed here as owner
  std::uint64_t hints_reclaimed = 0; ///< forwarding hints retired by the home
};

/// Bounded top-k frequency sketch (space-saving, Metwally et al.): at most
/// `capacity` candidates are tracked; when full, the minimum-count candidate
/// is evicted and its count is inherited by the newcomer as an error bound.
/// Counts overestimate by at most the inherited error — exactly the guarantee
/// a greedy migration planner needs: a candidate with a large tracked count
/// is certainly hot, and the map can never grow past the configured capacity
/// no matter how many distinct GIDs are accessed.
template <typename GID, typename Hash = std::hash<GID>>
class space_saving_tracker {
 public:
  struct entry {
    std::uint64_t count = 0;  ///< estimated access count (upper bound)
    std::uint64_t error = 0;  ///< maximum overestimation (inherited)
  };

  void set_capacity(std::size_t k) { m_capacity = k; }
  [[nodiscard]] std::size_t capacity() const noexcept { return m_capacity; }
  [[nodiscard]] std::size_t size() const noexcept { return m_entries.size(); }

  /// Records `weight` observed accesses of `g` (weight > 1 compensates a
  /// sampled caller: 1-in-N sampling with weight N keeps the count
  /// estimates unbiased).
  void note(GID const& g, std::uint64_t weight = 1)
  {
    auto it = m_entries.find(g);
    if (it != m_entries.end()) {
      it->second.count += weight;
      return;
    }
    if (m_entries.size() < m_capacity) {
      m_entries.emplace(g, entry{weight, 0});
      return;
    }
    if (m_capacity == 0)
      return;
    // O(capacity) eviction scan: only on sketch misses, and the balancer
    // uses small capacities (tens).  Swap in a stream-summary bucket list
    // if hot_k ever grows to thousands.
    auto victim = m_entries.begin();
    for (auto e = m_entries.begin(); e != m_entries.end(); ++e)
      if (e->second.count < victim->second.count)
        victim = e;
    entry const inherited{victim->second.count + weight,
                          victim->second.count};
    m_entries.erase(victim);
    m_entries.emplace(g, inherited);
  }

  /// Tracked candidates with their count estimates, hottest first.
  [[nodiscard]] std::vector<std::pair<GID, std::uint64_t>> top() const
  {
    std::vector<std::pair<GID, std::uint64_t>> out;
    out.reserve(m_entries.size());
    for (auto const& [g, e] : m_entries)
      out.emplace_back(g, e.count);
    std::sort(out.begin(), out.end(), [](auto const& a, auto const& b) {
      return a.second > b.second;
    });
    return out;
  }

  void clear() { m_entries.clear(); }

 private:
  std::size_t m_capacity = 0;
  std::unordered_map<GID, entry, Hash> m_entries;
};

/// Distributed GID -> owner-location directory.  One representative per
/// location (collective construction, like any p_object).
///
/// The element *owner* is the location whose bContainer currently stores
/// the element; the *home* of a GID is the hash-determined location holding
/// its owner record.  Owners register/unregister; anyone may resolve or
/// route work; migration updates the record and invalidates stale caches.
template <typename GID, typename Hash = std::hash<GID>>
class directory : public p_object {
 public:
  using gid_type = GID;
  /// Type-erased work item routed to the owner of a GID.  Invoked with the
  /// location of the representative it executes against — under the direct
  /// transport that is not the calling thread's location, so work must use
  /// the argument (not this_location()) to find its container.
  using work_item = std::function<void(location_id)>;

  directory()
      : m_metrics_id(metrics::register_contributor(
            [this](metrics::counter_map& m) {
              directory_stats const s = stats();
              m["dir.local_hits"] += s.local_hits;
              m["dir.cache_hits"] += s.cache_hits;
              m["dir.home_routed"] += s.home_routed;
              m["dir.cold_lookups"] += s.cold_lookups;
              m["dir.forwards"] += s.forwards;
              m["dir.stale_bounces"] += s.stale_bounces;
              m["dir.invalidations"] += s.invalidations;
              m["dir.retries"] += s.retries;
              m["dir.migrations_in"] += s.migrations_in;
              m["dir.migrations_out"] += s.migrations_out;
              m["dir.owner_accesses"] += s.owner_accesses;
              m["dir.hints_reclaimed"] += s.hints_reclaimed;
            },
            [this] {
              std::lock_guard lock(m_mutex);
              m_stats = {};
              m_owner_accesses.store(0, std::memory_order_relaxed);
            }))
  {}

  ~directory() override { metrics::unregister_contributor(m_metrics_id); }

  /// Installs the fallback owner function consulted by the home for GIDs
  /// without a record (e.g. the closed-form partition+mapper owner of a
  /// container).  Without it, requests for unknown GIDs park until a
  /// registration arrives.
  void set_default_owner(std::function<location_id(GID const&)> f)
  {
    m_default_owner = std::move(f);
  }

  /// Selects between the two Ch. XI.F.2 translation modes: with forwarding
  /// (default) unresolved work migrates through the home; without, the
  /// requester synchronously fetches the owner first (two round trips).
  void set_forwarding(bool enable) noexcept { m_forwarding = enable; }

  /// Home location of a GID's owner record (golden-ratio mix of the hash so
  /// clustered GIDs spread over all locations).
  [[nodiscard]] location_id home_of(GID const& g) const noexcept
  {
    auto const h = static_cast<std::uint64_t>(Hash{}(g));
    return static_cast<location_id>((h * 0x9E3779B97F4A7C15ull >> 32) %
                                    get_num_locations());
  }

  /// True when this location currently owns the element of `g`.
  [[nodiscard]] bool owns(GID const& g) const
  {
    std::lock_guard lock(m_mutex);
    return m_owned.count(g) != 0;
  }

  /// Copy of this location's owned-GID set under one lock acquisition —
  /// for bulk traversals that would otherwise pay a mutex round trip per
  /// element (container local_gids()/for_each_local).
  [[nodiscard]] std::unordered_set<GID, Hash> owned_snapshot() const
  {
    std::lock_guard lock(m_mutex);
    return m_owned;
  }

  /// Point-in-time snapshot (by value: the owner-access counter lives
  /// outside the mutex on the note_access hot path, so a reference into
  /// shared state cannot be handed out race-free).
  [[nodiscard]] directory_stats stats() const
  {
    std::lock_guard lock(m_mutex);
    directory_stats s = m_stats;
    s.owner_accesses = m_owner_accesses.load(std::memory_order_relaxed);
    return s;
  }

  /// Number of owner records homed on this location.
  [[nodiscard]] std::size_t local_registry_size() const
  {
    std::lock_guard lock(m_mutex);
    return m_registry.size();
  }

  /// Drops this location's owner cache (bench/test support).
  void clear_cache()
  {
    std::lock_guard lock(m_mutex);
    m_cache.clear();
  }

  /// Outstanding forwarding hints held on this location.  Home-driven
  /// reclamation (see handle_record_owner) bounds this at one live hint per
  /// migrating GID system-wide, however many times the element moves.
  [[nodiscard]] std::size_t hint_count() const
  {
    std::lock_guard lock(m_mutex);
    return m_away.size();
  }

  // -------------------------------------------------------------------------
  // Access tracking (load-balancing support; see core/load_balancer.hpp)
  // -------------------------------------------------------------------------

  /// Starts counting owner-side element accesses into a per-epoch load
  /// counter and a bounded hot-GID tracker of capacity `top_k`.  Intended to
  /// be called collectively (same capacity everywhere) at a quiesce point.
  /// `sample_every` sets the sketch sampling rate of note_access: 1 notes
  /// every access (exact counts, but each one takes the mutex); N > 1
  /// notes ~1-in-N (weight-compensated), so the hot path stays a single
  /// relaxed atomic increment.
  void enable_access_tracking(std::size_t top_k, unsigned sample_every = 1)
  {
    std::lock_guard lock(m_mutex);
    m_hot.set_capacity(top_k);
    m_hot.clear();
    m_epoch_accesses.store(0, std::memory_order_relaxed);
    m_sample_every = sample_every == 0 ? 1 : sample_every;
    m_track_accesses.store(true, std::memory_order_release);
  }

  void disable_access_tracking()
  {
    std::lock_guard lock(m_mutex);
    m_track_accesses.store(false, std::memory_order_release);
  }

  [[nodiscard]] bool access_tracking_enabled() const noexcept
  {
    return m_track_accesses.load(std::memory_order_acquire);
  }

  /// Records one element access executed on this location as the owner.
  /// Called by the container's dynamic dispatch; no-op unless tracking is
  /// enabled, so undisturbed workloads pay a single atomic load.
  ///
  /// The measurement no longer serializes the owner hot path it measures:
  /// the load counters are relaxed atomics, and the mutex-guarded sketch
  /// update runs for ~1-in-sample_every accesses only (weight-compensated
  /// so count estimates stay unbiased).  The sampling decision mixes the
  /// counter value — a fixed stride (n % N) would alias with periodic
  /// access patterns like a round-robin sweep of a hot block.
  void note_access(GID const& g)
  {
    if (!m_track_accesses.load(std::memory_order_relaxed))
      return;
    auto const n =
        m_epoch_accesses.fetch_add(1, std::memory_order_relaxed) + 1;
    m_owner_accesses.fetch_add(1, std::memory_order_relaxed);
    unsigned const every = m_sample_every;
    if (every > 1 && !sampled(n, every))
      return;
    std::lock_guard lock(m_mutex);
    m_hot.note(g, every);
  }

  /// Owner-side accesses recorded since the last reset_epoch().
  [[nodiscard]] std::uint64_t epoch_accesses() const
  {
    return m_epoch_accesses.load(std::memory_order_acquire);
  }

  /// Sketch sampling rate in effect (see enable_access_tracking).
  [[nodiscard]] unsigned access_sample_every() const noexcept
  {
    return m_sample_every;
  }

  /// Tracked hot GIDs with space-saving count estimates, hottest first.
  [[nodiscard]] std::vector<std::pair<GID, std::uint64_t>> hot_elements() const
  {
    std::lock_guard lock(m_mutex);
    return m_hot.top();
  }

  /// Ends the measurement epoch: zeroes the load counter and the tracker so
  /// the next epoch observes only fresh traffic.
  void reset_epoch()
  {
    std::lock_guard lock(m_mutex);
    m_epoch_accesses.store(0, std::memory_order_relaxed);
    m_hot.clear();
  }

  // -------------------------------------------------------------------------
  // Registration (asynchronous; complete at the next rmi_fence)
  // -------------------------------------------------------------------------

  /// Takes local ownership of `g` without creating a home record.  Only
  /// valid when the installed default owner already resolves `g` to this
  /// location (e.g. a container seeding its current elements in
  /// make_dynamic): the home then materializes an identical record lazily
  /// on first use, so no registration traffic is needed.
  void seed_ownership(GID const& g)
  {
    std::lock_guard lock(m_mutex);
    m_owned.insert(g);
    m_owned_seq.erase(g);
    m_away.erase(g);
    m_cache.erase(g);
  }

  /// Declares this location the owner of `g` and records it at the home.
  void register_gid(GID const& g)
  {
    {
      std::lock_guard lock(m_mutex);
      m_owned.insert(g);
      m_owned_seq.erase(g); // a fresh incarnation restarts the hop chain
      m_away.erase(g);
    }
    update_home_record(g);
  }

  /// Removes `g` from this location and erases its home record.
  void unregister_gid(GID const& g)
  {
    {
      std::lock_guard lock(m_mutex);
      m_owned.erase(g);
      m_owned_seq.erase(g);
      m_away.erase(g);
      m_cache.erase(g);
    }
    location_id const home = home_of(g);
    if (home == get_location_id()) {
      handle_erase_record(g);
      return;
    }
    async_rmi<directory>(home, this->get_handle(),
                         [g](directory& d) { d.handle_erase_record(g); });
  }

  // -------------------------------------------------------------------------
  // Resolution
  // -------------------------------------------------------------------------

  /// Owner of `g` using only location-local knowledge (ownership, home
  /// record, cache); nullopt when answering would need communication.
  [[nodiscard]] std::optional<location_id> try_resolve(GID const& g) const
  {
    std::lock_guard lock(m_mutex);
    if (m_owned.count(g))
      return get_location_id();
    if (home_of(g) == get_location_id()) {
      auto it = m_registry.find(g);
      if (it != m_registry.end())
        return it->second.owner;
      return std::nullopt;
    }
    auto it = m_cache.find(g);
    if (it != m_cache.end())
      return it->second;
    return std::nullopt;
  }

  /// Blocking owner lookup: answers locally when possible, otherwise asks
  /// the home synchronously, subscribing this location to invalidations.
  /// The home pushes the answer into this location's cache as a separate
  /// message ordered against its invalidations, so a migration racing the
  /// lookup cannot strand a stale entry here; the return value is the
  /// point-in-time owner.  Returns invalid_location for unknown GIDs on a
  /// directory without a default owner.
  [[nodiscard]] location_id resolve(GID const& g)
  {
    latency::timed_op lat_scope(latency::op::dir_resolve);
    {
      std::lock_guard lock(m_mutex);
      if (m_owned.count(g)) {
        m_stats.local_hits += 1;
        return get_location_id();
      }
      auto it = m_cache.find(g);
      if (it != m_cache.end()) {
        m_stats.cache_hits += 1;
        return it->second;
      }
    }
    location_id const home = home_of(g);
    if (home == get_location_id())
      return handle_lookup(g, invalid_location);
    location_id const me = get_location_id();
    {
      std::lock_guard lock(m_mutex);
      m_stats.cold_lookups += 1;
    }
    return sync_rmi<directory>(
        home, this->get_handle(),
        [g, me](directory& d) { return d.handle_lookup(g, me); });
  }

  // -------------------------------------------------------------------------
  // Work routing (request forwarding)
  // -------------------------------------------------------------------------

  /// Routes `f` to the location currently owning `g` and executes it there
  /// exactly once.  Asynchronous: completion is guaranteed by the next
  /// rmi_fence even when the route crosses stale caches or an in-flight
  /// migration.  `f` must reach state it needs through registered handles
  /// (it executes on another location's thread under the queue transport).
  template <typename F>
  void invoke_where(GID const& g, F f)
  {
    {
      std::unique_lock lock(m_mutex);
      if (m_owned.count(g)) {
        m_stats.local_hits += 1;
        lock.unlock();
        f(get_location_id());
        return;
      }
    }
    route_work(g, work_item(std::move(f)), get_location_id());
  }

  // -------------------------------------------------------------------------
  // Migration protocol hooks (driven by migration.hpp)
  // -------------------------------------------------------------------------

  /// Owner-side step: the element of `g` has been extracted and is on its
  /// way to `dest`.  Leaves a forwarding hint so requests that still arrive
  /// here chase the element.  Returns the element's migration sequence
  /// number — its position on the (linear) chain of ownership transfers —
  /// which must be handed, incremented, to the destination's
  /// migration_arrived so the home can order record updates that race each
  /// other over different channels.
  [[nodiscard]] std::uint32_t migration_departed(GID const& g,
                                                 location_id dest)
  {
    std::lock_guard lock(m_mutex);
    m_owned.erase(g);
    m_away[g] = dest;
    m_stats.migrations_out += 1;
    STAPL_TRACE(trace::event_kind::migration,
                static_cast<std::uint64_t>(Hash{}(g)));
    auto const it = m_owned_seq.find(g);
    if (it == m_owned_seq.end())
      return 0;
    auto const s = it->second;
    m_owned_seq.erase(it);
    return s;
  }

  /// Destination-side step: the element of `g` has been stored locally.
  /// Takes ownership and updates the home record (asynchronously), which
  /// invalidates stale caches.  `seq` is the departure's sequence number
  /// plus one.
  void migration_arrived(GID const& g, std::uint32_t seq)
  {
    {
      std::lock_guard lock(m_mutex);
      m_owned.insert(g);
      m_owned_seq[g] = seq;
      m_away.erase(g);
      m_cache.erase(g);
      m_stats.migrations_in += 1;
      STAPL_TRACE(trace::event_kind::migration,
                  static_cast<std::uint64_t>(Hash{}(g)));
    }
    update_home_record(g, seq);
  }

  // -------------------------------------------------------------------------
  // Message handlers (public: they execute on remote representatives via
  // the ARMI primitives; not part of the user-facing interface)
  // -------------------------------------------------------------------------

  /// At the home: installs/overwrites the owner record of `g` and
  /// invalidates every copyset member that cached a different owner.
  /// Invalidations are issued while the record lock is held, so they
  /// serialize against the cache updates of concurrent lookups: a cache
  /// can never end up holding an owner the home has already replaced.
  ///
  /// Updates carry the element's migration sequence number, because they
  /// arrive over per-sender channels that do not order hops of the same
  /// element against each other: a straggler from hop k must not overwrite
  /// the record of hop k+1 — a regressed record would route new work at a
  /// location whose hint the reclamation below may already have retired.
  /// Stale updates are dropped (seq <= rec.seq); `seq == 0` marks an
  /// explicit registration, which always supersedes the current record.
  ///
  /// Home-driven hint reclamation: once the record names a new owner, only
  /// the hint at the location that just departed is still on a fast path
  /// (the one-hop chase for requests already heading there).  Hints at
  /// older former owners are only reachable through knowledge this update
  /// invalidates, and a hint-less stale location falls back to
  /// park-and-re-route through this never-regressing record — so retiring
  /// them is safe and keeps m_away bounded at one live hint per migrating
  /// GID instead of growing with the migration history.
  void handle_record_owner(GID const& g, location_id owner,
                           std::uint32_t seq = 0)
  {
    std::lock_guard lock(m_mutex);
    auto& rec = m_registry[g];
    if (seq == 0) {
      // Explicit registration: a fresh incarnation of the GID, starting a
      // new sequence space (incarnations are separated by a fence, like
      // any erase/re-insert flow).  Its migrations resume from seq 1.
      rec.seq = 0;
    } else if (seq <= rec.seq) {
      // Straggler of an already-superseded hop.  Its sender's ownership
      // era is provably over, so its forwarding hint — which the era that
      // won the race never learned about — is retired here instead of
      // leaking forever.
      if (owner != rec.owner)
        reclaim_hint_locked(g, owner);
      return;
    } else {
      rec.seq = seq;
    }
    if (rec.owner != owner) {
      std::vector<location_id> stale;
      stale.swap(rec.copyset);
      invalidate_copies_locked(g, owner, stale);
      location_id prev = rec.owner;
      if (prev == invalid_location && m_default_owner) {
        // First update the home ever sees: the element departed a seeded
        // owner (make_dynamic) that never registered.  Its hint lives at
        // the closed-form location, which therefore counts as the
        // previous owner for reclamation purposes.
        location_id const def = m_default_owner(g);
        if (def != owner)
          prev = def;
      }
      std::vector<location_id> reclaim;
      reclaim.swap(rec.former);
      if (prev != invalid_location)
        rec.former.push_back(prev);
      for (location_id l : reclaim) {
        if (l == prev || l == owner)
          continue; // prev keeps its fresh hint; the new owner holds none
        reclaim_hint_locked(g, l);
      }
    }
    rec.owner = owner;
    rec.synthesized = false; // a real owner registered: adoption is over
  }

  /// At the home: erases the record of `g` and invalidates all copies.
  void handle_erase_record(GID const& g)
  {
    std::lock_guard lock(m_mutex);
    auto it = m_registry.find(g);
    if (it == m_registry.end())
      return;
    std::vector<location_id> stale;
    stale.swap(it->second.copyset);
    std::vector<location_id> former;
    former.swap(it->second.former);
    m_registry.erase(it);
    invalidate_copies_locked(g, invalid_location, stale);
    for (location_id l : former) {
      if (l == get_location_id()) {
        m_away.erase(g);
        continue;
      }
      queued_rmi<directory>(l, this->get_handle(),
                            [g](directory& d) { d.handle_clear_hint(g); });
    }
  }

  /// At the home: owner of `g`, subscribing `requester` to invalidations
  /// and pushing the answer into its cache (both under the record lock,
  /// ordered against invalidations).  Installs the default owner for
  /// unknown GIDs when available.
  [[nodiscard]] location_id handle_lookup(GID const& g, location_id requester)
  {
    std::lock_guard lock(m_mutex);
    auto it = m_registry.find(g);
    if (it == m_registry.end()) {
      if (!m_default_owner)
        return invalid_location;
      home_record rec;
      rec.owner = m_default_owner(g);
      rec.synthesized = true;
      it = m_registry.emplace(g, std::move(rec)).first;
    }
    location_id const owner = it->second.owner;
    if (requester != invalid_location && requester != owner &&
        requester != get_location_id()) {
      subscribe(it->second, requester);
      // Queued (never inline): sent under m_mutex, and an inline send
      // would lock the requester's representative while we hold ours —
      // two homes servicing each other would deadlock.
      queued_rmi<directory>(requester, this->get_handle(),
                            [g, owner](directory& d) {
                              d.handle_cache_update(g, owner);
                            });
    }
    return owner;
  }

  /// At the home: routes `f` toward the recorded owner of `g`.  Unknown
  /// GIDs either adopt the default owner or park until registration
  /// arrives; records pointing at an in-flight element park as well.
  void handle_home_exec(GID g, location_id requester, work_item f)
  {
    if (try_home_route(g, requester, f))
      return;
    park_retry(g, requester, std::move(f));
  }

  /// At a presumed owner: executes `f` if the element is here, chases the
  /// forwarding hint if the element left, and otherwise adopts the GID
  /// when `designated` — i.e. the home's current record is *synthesized*
  /// from the default-owner function and names this location.  Adoption is
  /// safe exactly then: no registration or migration ever produced the
  /// record, so no live element exists anywhere and this location is the
  /// GID's rightful closed-form creator.  For registered records the
  /// empty state is always a transient race (record update, hint
  /// reclamation or migration payload still in flight), so the request
  /// parks and re-routes instead — adopting would fork ownership.  A
  /// request that finds this location stale tells the requester to drop
  /// its cache entry, so the next access resolves fresh instead of
  /// re-bouncing here.
  void handle_forward_exec(GID g, work_item f, bool designated,
                           location_id requester)
  {
    {
      std::unique_lock lock(m_mutex);
      if (m_owned.count(g)) {
        lock.unlock();
        f(get_location_id());
        return;
      }
      auto hint = m_away.find(g);
      if (hint != m_away.end()) {
        // The element lived here and left: chase it.  The chase does not
        // inherit designation — only the home's record confers it.
        location_id const next = hint->second;
        m_stats.forwards += 1;
        lock.unlock();
        notify_stale(g, requester);
        send_forward(next, g, std::move(f), false, requester);
        return;
      }
      if (designated) {
        m_owned.insert(g);
        lock.unlock();
        f(get_location_id());
        return;
      }
      m_stats.stale_bounces += 1;
    }
    // Stale knowledge (cache pointed here, or the record outran an
    // in-flight migration): park and re-route from scratch next poll.
    notify_stale(g, requester);
    park_retry(g, requester, std::move(f));
  }

  /// Cache maintenance messages.
  void handle_cache_update(GID const& g, location_id owner)
  {
    std::lock_guard lock(m_mutex);
    if (!m_owned.count(g))
      m_cache[g] = owner;
  }
  void handle_cache_invalidate(GID const& g)
  {
    std::lock_guard lock(m_mutex);
    m_cache.erase(g);
    m_stats.invalidations += 1;
  }

  /// The GID's record was erased: any forwarding hint held here belongs
  /// to a dead incarnation.
  void handle_clear_hint(GID const& g)
  {
    std::lock_guard lock(m_mutex);
    m_away.erase(g);
  }

  /// The home retired this location's forwarding hint for `g` (a newer
  /// owner record supersedes it; see handle_record_owner).
  void handle_reclaim_hint(GID const& g)
  {
    std::lock_guard lock(m_mutex);
    if (m_away.erase(g) != 0)
      m_stats.hints_reclaimed += 1;
  }

 private:
  struct home_record {
    location_id owner = invalid_location;
    /// Position of `owner` on the element's chain of ownership transfers.
    /// Updates whose seq does not advance this are stragglers of
    /// superseded hops and are dropped, so the record never regresses
    /// (the per-sender channels do not order different hops of the same
    /// element against each other).
    std::uint32_t seq = 0;
    /// True when the record was materialized lazily from the default-owner
    /// function instead of an explicit registration.  Only such records
    /// confer the *adopt* privilege on forwarded work: their owner may
    /// legitimately hold neither element nor hint (a fresh GID the
    /// container creates on first touch).  A registered/migrated owner
    /// always holds one or the other, so an empty designated location is a
    /// transient race (e.g. a reclaimed hint outrunning the next record
    /// update) and must park instead of adopting — adoption there would
    /// fork ownership.
    bool synthesized = false;
    /// Locations whose cache holds this record's answer.
    std::vector<location_id> copyset;
    /// Former owners (they hold forwarding hints for this GID); their
    /// hints are cleared when the record is erased, so chains from dead
    /// incarnations cannot persist.
    std::vector<location_id> former;
  };

  /// Points `g`'s home record at this location (registration and
  /// migration-arrival share this step; seq 0 marks a registration).
  void update_home_record(GID const& g, std::uint32_t seq = 0)
  {
    location_id const home = home_of(g);
    location_id const owner = get_location_id();
    if (home == owner) {
      handle_record_owner(g, owner, seq);
      return;
    }
    async_rmi<directory>(home, this->get_handle(),
                         [g, owner, seq](directory& d) {
                           d.handle_record_owner(g, owner, seq);
                         });
  }

  void subscribe(home_record& rec, location_id requester)
  {
    for (location_id l : rec.copyset)
      if (l == requester)
        return;
    rec.copyset.push_back(requester);
  }

  /// Requires m_mutex held.  Retires the forwarding hint for `g` at `l`
  /// (locally, or via a queued message — never inline, same deadlock
  /// argument as invalidate_copies_locked).
  void reclaim_hint_locked(GID const& g, location_id l)
  {
    if (l == invalid_location)
      return;
    if (l == get_location_id()) {
      if (m_away.erase(g) != 0)
        m_stats.hints_reclaimed += 1;
      return;
    }
    queued_rmi<directory>(l, this->get_handle(),
                          [g](directory& d) { d.handle_reclaim_hint(g); });
  }

  /// Requires m_mutex held.  Sends are queued, never inline: an inline
  /// send would take the target representative's mutex while this one is
  /// held (cross-location deadlock under the direct transport).  Queued
  /// delivery preserves push order, which is all the coherence argument
  /// needs: updates and invalidations reach each location in the order
  /// the home's record lock emitted them.
  void invalidate_copies_locked(GID const& g, location_id keep,
                                std::vector<location_id> const& targets)
  {
    for (location_id l : targets) {
      if (l == keep)
        continue;
      if (l == get_location_id()) {
        m_cache.erase(g);
        m_stats.invalidations += 1;
        continue;
      }
      queued_rmi<directory>(l, this->get_handle(),
                            [g](directory& d) { d.handle_cache_invalidate(g); });
    }
  }

  void send_forward(location_id dest, GID const& g, work_item f, bool adopt,
                    location_id requester)
  {
    STAPL_FAULT_POINT(fault::site::dir_forward);
    if (dest == get_location_id()) {
      handle_forward_exec(g, std::move(f), adopt, requester);
      return;
    }
    async_rmi<directory>(
        dest, this->get_handle(),
        [g, f = std::move(f), adopt, requester](directory& d) mutable {
          d.handle_forward_exec(g, std::move(f), adopt, requester);
        });
  }

  /// Tells `requester` that the knowledge which routed a request here was
  /// stale (no-op for anonymous or local requesters).
  void notify_stale(GID const& g, location_id requester)
  {
    if (requester == invalid_location)
      return;
    if (requester == get_location_id()) {
      handle_cache_invalidate(g);
      return;
    }
    queued_rmi<directory>(requester, this->get_handle(),
                          [g](directory& d) { d.handle_cache_invalidate(g); });
  }

  /// Routes `f` from this location: hint and cache first, then the home
  /// (forwarding mode) or a synchronous lookup (no-forwarding mode).
  void route_work(GID const& g, work_item f, location_id requester)
  {
    {
      std::unique_lock lock(m_mutex);
      auto hint = m_away.find(g);
      if (hint != m_away.end()) {
        location_id const next = hint->second;
        m_stats.forwards += 1;
        lock.unlock();
        send_forward(next, g, std::move(f), false, requester);
        return;
      }
      auto it = m_cache.find(g);
      if (it != m_cache.end()) {
        location_id const owner = it->second;
        m_stats.cache_hits += 1;
        lock.unlock();
        send_forward(owner, g, std::move(f), false, requester);
        return;
      }
    }
    location_id const home = home_of(g);
    if (home == get_location_id()) {
      handle_home_exec(g, requester, std::move(f));
      return;
    }
    if (!m_forwarding) {
      // Ch. XI.F.2 "dynamic without forwarding": fetch the owner first.
      location_id const owner = resolve(g);
      if (owner == invalid_location) {
        park_retry(g, requester, std::move(f));
        return;
      }
      send_forward(owner, g, std::move(f), false, requester);
      return;
    }
    {
      std::lock_guard lock(m_mutex);
      m_stats.home_routed += 1;
    }
    async_rmi<directory>(home, this->get_handle(),
                         [g, requester, f = std::move(f)](directory& d) mutable {
                           d.handle_home_exec(g, requester, std::move(f));
                         });
  }

  /// Home-side routing step; false when no progress is possible yet (`f`
  /// not consumed).
  [[nodiscard]] bool try_home_route(GID const& g, location_id requester,
                                    work_item& f)
  {
    location_id owner;
    bool adoptable = false;
    {
      std::lock_guard lock(m_mutex);
      auto it = m_registry.find(g);
      if (it == m_registry.end()) {
        if (!m_default_owner)
          return false; // registration still in flight: park
        home_record rec;
        rec.owner = m_default_owner(g);
        rec.synthesized = true;
        it = m_registry.emplace(g, std::move(rec)).first;
      }
      owner = it->second.owner;
      adoptable = it->second.synthesized;
      if (requester != invalid_location && requester != owner &&
          requester != get_location_id()) {
        // Piggyback the answer so the requester's next access skips the
        // home; sent under the record lock so it orders against
        // invalidations from concurrent ownership changes.
        subscribe(it->second, requester);
        queued_rmi<directory>(requester, this->get_handle(),
                              [g, owner](directory& d) {
                                d.handle_cache_update(g, owner);
                              });
      }
    }
    if (owner != get_location_id()) {
      // The forward carries the adopt privilege only for synthesized
      // records: their designated owner may legitimately hold neither
      // element nor hint (fresh GID).  A registered owner found empty is a
      // transient race and must park instead (see home_record).
      send_forward(owner, g, std::move(f), adoptable, requester);
      return true;
    }
    // The record points at the home itself: same rules, applied locally.
    {
      std::unique_lock lock(m_mutex);
      if (m_owned.count(g)) {
        lock.unlock();
        work_item body = std::move(f);
        body(get_location_id());
        return true;
      }
      auto hint = m_away.find(g);
      if (hint != m_away.end()) {
        location_id const next = hint->second;
        m_stats.forwards += 1;
        lock.unlock();
        send_forward(next, g, std::move(f), false, requester);
        return true;
      }
      if (!adoptable)
        return false; // record outran an in-flight move: park and retry
      m_owned.insert(g); // synthesized record with no element/hint: adopt
      lock.unlock();
      work_item body = std::move(f);
      body(get_location_id());
      return true;
    }
  }

  /// Parks `f` on this location's inbox (counted as pending traffic, so
  /// rmi_fence cannot terminate over it) and retries once per poll round
  /// until the route makes progress — the metadata it lacks travels as
  /// ordinary RMI traffic and lands between polls.
  void park_retry(GID const& g, location_id requester, work_item f)
  {
    {
      std::lock_guard lock(m_mutex);
      m_stats.retries += 1;
    }
    rmi_handle const h = this->get_handle();
    post_to_self([h, g, requester, f = std::move(f)]() mutable -> bool {
      auto* d = get_registered_object<directory>(h);
      assert(d != nullptr && "directory destroyed with parked work");
      return d->retry_route(g, requester, f);
    });
  }

  /// Re-evaluates a parked request on the polling location's representative.
  /// False keeps it parked for the next poll round.
  [[nodiscard]] bool retry_route(GID const& g, location_id requester,
                                 work_item& f)
  {
    {
      std::unique_lock lock(m_mutex);
      if (m_owned.count(g)) {
        lock.unlock();
        work_item body = std::move(f);
        body(get_location_id());
        return true;
      }
      auto hint = m_away.find(g);
      if (hint != m_away.end()) {
        location_id const next = hint->second;
        m_stats.forwards += 1;
        lock.unlock();
        send_forward(next, g, std::move(f), false, requester);
        return true;
      }
    }
    if (home_of(g) == get_location_id())
      return try_home_route(g, requester, f);
    // Not the home: push the request back onto the home once; the home
    // parks it again if its record is still in flight.
    route_work(g, std::move(f), requester);
    return true;
  }

  std::function<location_id(GID const&)> m_default_owner;
  bool m_forwarding = true;

  mutable std::mutex m_mutex;
  std::unordered_map<GID, home_record, Hash> m_registry;
  std::unordered_set<GID, Hash> m_owned;
  /// Migration sequence number of locally owned elements that have moved
  /// at least once (absent == 0): travels with the element and orders the
  /// home's record updates.  One entry per live migrated element, dropped
  /// on departure/erase — not a per-history map.
  std::unordered_map<GID, std::uint32_t, Hash> m_owned_seq;
  std::unordered_map<GID, location_id, Hash> m_away;
  std::unordered_map<GID, location_id, Hash> m_cache;
  directory_stats m_stats;
  /// Load-balancing support: owner-side access counting (note_access).
  /// The counters are relaxed atomics so the owner hot path never takes
  /// m_mutex for them; the sketch (m_hot) stays mutex-guarded but is only
  /// touched for sampled accesses.
  std::atomic<bool> m_track_accesses{false};
  std::atomic<std::uint64_t> m_epoch_accesses{0};
  std::atomic<std::uint64_t> m_owner_accesses{0};
  unsigned m_sample_every = 1;
  space_saving_tracker<GID, Hash> m_hot;
  metrics::contributor_id m_metrics_id = 0;

  /// Mixed (splitmix64-style) 1-in-`every` sampling decision for access n.
  [[nodiscard]] static bool sampled(std::uint64_t n, unsigned every) noexcept
  {
    std::uint64_t z = n + 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z ^= z >> 31;
    return z % every == 0;
  }
};

} // namespace stapl

#endif
