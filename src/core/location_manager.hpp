#ifndef STAPL_CORE_LOCATION_MANAGER_HPP
#define STAPL_CORE_LOCATION_MANAGER_HPP

// Location manager (dissertation Ch. V.C.2, Table IV): administers the
// collection of bContainers of one pContainer that are mapped to one
// location.

#include <cassert>
#include <cstddef>
#include <map>
#include <memory>
#include <utility>

#include "base_containers.hpp"
#include "partitions.hpp"

namespace stapl {

template <typename BContainer>
class location_manager {
 public:
  using bcontainer_type = BContainer;
  /// Ordered by bCID so local traversals follow the partition order.
  using storage_type = std::map<bcid_type, std::unique_ptr<BContainer>>;
  using iterator = typename storage_type::iterator;
  using const_iterator = typename storage_type::const_iterator;

  location_manager() = default;

  /// Takes ownership of a bContainer (Table IV `add_bcontainer`).
  BContainer& add_bcontainer(bcid_type bcid, std::unique_ptr<BContainer> bc)
  {
    auto [it, inserted] = m_bcs.emplace(bcid, std::move(bc));
    assert(inserted && "duplicate bContainer id on this location");
    return *it->second;
  }

  /// Constructs a bContainer in place.
  template <typename... Args>
  BContainer& emplace_bcontainer(bcid_type bcid, Args&&... args)
  {
    return add_bcontainer(
        bcid, std::make_unique<BContainer>(std::forward<Args>(args)...));
  }

  void delete_bcontainer(bcid_type bcid) { m_bcs.erase(bcid); }

  /// Releases ownership (used by redistribution to migrate storage).
  [[nodiscard]] std::unique_ptr<BContainer> extract_bcontainer(bcid_type bcid)
  {
    auto it = m_bcs.find(bcid);
    if (it == m_bcs.end())
      return nullptr;
    auto p = std::move(it->second);
    m_bcs.erase(it);
    return p;
  }

  [[nodiscard]] std::size_t size() const noexcept { return m_bcs.size(); }
  [[nodiscard]] bool has(bcid_type bcid) const { return m_bcs.count(bcid) != 0; }

  [[nodiscard]] BContainer& get_bcontainer(bcid_type bcid)
  {
    auto it = m_bcs.find(bcid);
    assert(it != m_bcs.end() && "bContainer not on this location");
    return *it->second;
  }
  [[nodiscard]] BContainer const& get_bcontainer(bcid_type bcid) const
  {
    auto it = m_bcs.find(bcid);
    assert(it != m_bcs.end() && "bContainer not on this location");
    return *it->second;
  }

  [[nodiscard]] iterator begin() noexcept { return m_bcs.begin(); }
  [[nodiscard]] iterator end() noexcept { return m_bcs.end(); }
  [[nodiscard]] const_iterator begin() const noexcept { return m_bcs.begin(); }
  [[nodiscard]] const_iterator end() const noexcept { return m_bcs.end(); }

  /// Total number of elements across local bContainers.
  [[nodiscard]] std::size_t local_size() const noexcept
  {
    std::size_t n = 0;
    for (auto const& [bcid, bc] : m_bcs)
      n += bc->size();
    return n;
  }

  void clear() { m_bcs.clear(); }

  [[nodiscard]] memory_report memory_size() const noexcept
  {
    memory_report r{sizeof(*this), 0};
    for (auto const& [bcid, bc] : m_bcs) {
      auto const [meta, data] = bc->memory_size();
      r.first += meta + 4 * sizeof(void*); // map node overhead
      r.second += data;
    }
    return r;
  }

 private:
  storage_type m_bcs;
};

} // namespace stapl

#endif
