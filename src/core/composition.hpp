#ifndef STAPL_CORE_COMPOSITION_HPP
#define STAPL_CORE_COMPOSITION_HPP

// pContainer composition (dissertation Ch. IV.C, evaluated in Ch. XIII).
//
// A composed pContainer pC1 o pC2 has GIDs that are tuples over the levels
// of the hierarchy (Eq. 4.2) and methods that apply level methods in series
// (pApA.get_element(1).get_element(0)).  In this reproduction the outer
// level is a distributed pContainer and the nested levels are
// location-local containers stored as elements of the outer one; each
// nested container is wholly owned by the location owning its outer slot,
// so the hierarchy maps onto the machine hierarchy exactly as Ch. IV.C
// prescribes for a one-level machine (locality preserved per slot, outer
// level concurrent).  Nested methods execute where the inner container
// lives via the composed-access helpers below.

#include <cstddef>
#include <utility>
#include <vector>

#include "../runtime/runtime.hpp"

namespace stapl {

/// Composed GID for a height-2 hierarchy (Eq. 4.2: D = U {i} x D_i).
struct gid_nested {
  std::size_t outer = 0;
  std::size_t inner = 0;
  [[nodiscard]] bool operator==(gid_nested const&) const = default;
};

/// get: pC.get_element(i).get_element(j) — the composed read of Ch. IV.C.
/// Executes at the owner of outer slot `i`; one RMI total, not one per level.
template <typename Outer>
[[nodiscard]] auto get_nested(Outer& o, typename Outer::gid_type i,
                              std::size_t j)
{
  return o.apply_get(i, [j](auto const& inner) { return inner[j]; });
}

/// set: composed write through both levels.
template <typename Outer, typename V>
void set_nested(Outer& o, typename Outer::gid_type i, std::size_t j, V v)
{
  o.apply_set(i, [j, v = std::move(v)](auto& inner) { inner[j] = v; });
}

/// Size of the nested container in outer slot `i`.
template <typename Outer>
[[nodiscard]] std::size_t nested_size(Outer& o, typename Outer::gid_type i)
{
  return o.apply_get(i, [](auto const& inner) { return inner.size(); });
}

/// Resizes the nested container of slot `i`
/// (pApA[0].resize(2) of the Ch. IV.C example).
template <typename Outer>
void resize_nested(Outer& o, typename Outer::gid_type i, std::size_t n)
{
  o.apply_set(i, [n](auto& inner) { inner.resize(n); });
}

/// Composed domain of a height-2 container (Eq. 4.2): the union of the
/// cross products {i} x D_i.  Collective.
template <typename Outer>
[[nodiscard]] std::vector<gid_nested> composed_domain(Outer& o)
{
  std::vector<gid_nested> local;
  o.for_each_local([&](std::size_t i, auto& inner) {
    for (std::size_t j = 0; j < inner.size(); ++j)
      local.push_back({i, j});
  });
  rmi_fence();
  auto const parts = allgather(local.size());
  std::vector<gid_nested> all;
  // Deterministic order: gather per location (small domains only; used by
  // tests and the composition study).
  auto gathered = allgather(local);
  for (auto const& part : gathered)
    all.insert(all.end(), part.begin(), part.end());
  (void)parts;
  return all;
}

} // namespace stapl

template <>
struct std::hash<stapl::gid_nested> {
  std::size_t operator()(stapl::gid_nested const& g) const noexcept
  {
    return std::hash<std::size_t>{}(g.outer * 0x9E3779B97F4A7C15ull + g.inner);
  }
};

#endif
