#ifndef STAPL_CORE_MAPPERS_HPP
#define STAPL_CORE_MAPPERS_HPP

// Partition mappers (dissertation Ch. V.C.5, Table IX): map each sub-domain
// identifier (bCID) to the location that stores the corresponding
// bContainer.

#include <cassert>
#include <cstddef>
#include <vector>

#include "../runtime/runtime.hpp"
#include "../runtime/serialization.hpp"
#include "partitions.hpp"

namespace stapl {

/// Sub-domains dealt to locations round-robin: loc(b) = b mod L.
class cyclic_mapper {
 public:
  cyclic_mapper() = default;
  cyclic_mapper(std::size_t num_bcontainers, unsigned num_locs)
      : m_bcontainers(num_bcontainers), m_locs(num_locs)
  {}

  void init(std::size_t num_bcontainers, unsigned num_locs)
  {
    m_bcontainers = num_bcontainers;
    m_locs = num_locs;
  }

  [[nodiscard]] location_id map(bcid_type b) const noexcept
  {
    return static_cast<location_id>(b % m_locs);
  }
  [[nodiscard]] bool is_local(bcid_type b) const noexcept
  {
    return map(b) == this_location();
  }
  [[nodiscard]] std::size_t num_bcontainers() const noexcept
  {
    return m_bcontainers;
  }
  [[nodiscard]] std::vector<bcid_type> local_bcids(location_id loc) const
  {
    std::vector<bcid_type> out;
    for (bcid_type b = loc; b < m_bcontainers; b += m_locs)
      out.push_back(b);
    return out;
  }

  void define_type(typer& t)
  {
    t.member(m_bcontainers);
    t.member(m_locs);
  }

 private:
  std::size_t m_bcontainers = 0;
  unsigned m_locs = 1;
};

/// m/L consecutive sub-domains per location.
class blocked_mapper {
 public:
  blocked_mapper() = default;
  blocked_mapper(std::size_t num_bcontainers, unsigned num_locs)
  {
    init(num_bcontainers, num_locs);
  }

  void init(std::size_t num_bcontainers, unsigned num_locs)
  {
    m_bcontainers = num_bcontainers;
    m_locs = num_locs;
  }

  [[nodiscard]] location_id map(bcid_type b) const noexcept
  {
    // Balanced contiguous assignment: first r locations get q+1 bContainers.
    std::size_t const q = m_bcontainers / m_locs;
    std::size_t const r = m_bcontainers % m_locs;
    std::size_t const big = r * (q + 1);
    if (b < big)
      return static_cast<location_id>(b / (q + 1));
    return static_cast<location_id>(r + (b - big) / (q > 0 ? q : 1));
  }
  [[nodiscard]] bool is_local(bcid_type b) const noexcept
  {
    return map(b) == this_location();
  }
  [[nodiscard]] std::size_t num_bcontainers() const noexcept
  {
    return m_bcontainers;
  }
  [[nodiscard]] std::vector<bcid_type> local_bcids(location_id loc) const
  {
    std::vector<bcid_type> out;
    for (bcid_type b = 0; b < m_bcontainers; ++b)
      if (map(b) == loc)
        out.push_back(b);
    return out;
  }

  void define_type(typer& t)
  {
    t.member(m_bcontainers);
    t.member(m_locs);
  }

 private:
  std::size_t m_bcontainers = 0;
  unsigned m_locs = 1;
};

/// Arbitrary explicit bCID -> location table.
class arbitrary_mapper {
 public:
  arbitrary_mapper() = default;
  explicit arbitrary_mapper(std::vector<location_id> table)
      : m_table(std::move(table))
  {}

  void init(std::size_t num_bcontainers, unsigned num_locs)
  {
    if (m_table.empty()) { // fall back to cyclic when no table given
      m_table.resize(num_bcontainers);
      for (std::size_t b = 0; b < num_bcontainers; ++b)
        m_table[b] = static_cast<location_id>(b % num_locs);
    }
    assert(m_table.size() == num_bcontainers);
  }

  [[nodiscard]] location_id map(bcid_type b) const noexcept
  {
    return m_table[b];
  }
  [[nodiscard]] bool is_local(bcid_type b) const noexcept
  {
    return map(b) == this_location();
  }
  [[nodiscard]] std::size_t num_bcontainers() const noexcept
  {
    return m_table.size();
  }
  [[nodiscard]] std::vector<bcid_type> local_bcids(location_id loc) const
  {
    std::vector<bcid_type> out;
    for (bcid_type b = 0; b < m_table.size(); ++b)
      if (m_table[b] == loc)
        out.push_back(b);
    return out;
  }

  void define_type(typer& t) { t.member(m_table); }

 private:
  std::vector<location_id> m_table;
};

} // namespace stapl

#endif
