#ifndef STAPL_CORE_BASE_CONTAINERS_HPP
#define STAPL_CORE_BASE_CONTAINERS_HPP

// Base containers (dissertation Ch. V.C.1, Table III).
//
// A bContainer adapts an existing sequential container so it can serve as
// one unit of distributed storage of a pContainer.  The adaptors below wrap
// std::vector, std::list and the standard associative containers; they all
// implement the minimal Table III interface (size/empty/clear/get_bcid/
// define_type/memory_size) plus the access methods their category needs.

#include <cstddef>
#include <list>
#include <map>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "../runtime/serialization.hpp"
#include "domains.hpp"
#include "partitions.hpp"

namespace stapl {

/// Memory usage report: (metadata bytes, data bytes) — Table III
/// `memory_size`.
using memory_report = std::pair<std::size_t, std::size_t>;

// ---------------------------------------------------------------------------
// Indexed storage (pArray, pVector, pMatrix)
// ---------------------------------------------------------------------------

/// Fixed-size contiguous storage indexed by local offset; the pArray
/// bContainer of Ch. V.E (an adapted std::valarray/std::vector).
template <typename T>
class vector_bcontainer {
 public:
  using value_type = T;
  using gid_type = gid1d;

  vector_bcontainer() = default;
  vector_bcontainer(bcid_type bcid, std::size_t n, T const& init = T{})
      : m_bcid(bcid), m_data(n, init)
  {}

  [[nodiscard]] std::size_t size() const noexcept { return m_data.size(); }
  [[nodiscard]] bool empty() const noexcept { return m_data.empty(); }
  void clear() { m_data.clear(); }
  [[nodiscard]] bcid_type get_bcid() const noexcept { return m_bcid; }

  [[nodiscard]] T& at(std::size_t local) { return m_data[local]; }
  [[nodiscard]] T const& at(std::size_t local) const { return m_data[local]; }
  void set(std::size_t local, T v) { m_data[local] = std::move(v); }

  /// Dynamic (pVector) operations on the block.
  void insert(std::size_t local, T v)
  {
    m_data.insert(m_data.begin() + static_cast<std::ptrdiff_t>(local),
                  std::move(v));
  }
  void erase(std::size_t local)
  {
    m_data.erase(m_data.begin() + static_cast<std::ptrdiff_t>(local));
  }
  void push_back(T v) { m_data.push_back(std::move(v)); }
  void pop_back() { m_data.pop_back(); }

  [[nodiscard]] std::vector<T>& data() noexcept { return m_data; }
  [[nodiscard]] std::vector<T> const& data() const noexcept { return m_data; }

  void define_type(typer& t)
  {
    t.member(m_bcid);
    t.member(m_data);
  }

  [[nodiscard]] memory_report memory_size() const noexcept
  {
    return {sizeof(*this), m_data.capacity() * sizeof(T)};
  }

 private:
  bcid_type m_bcid = invalid_bcid;
  std::vector<T> m_data;
};

// ---------------------------------------------------------------------------
// Sequence storage (pList)
// ---------------------------------------------------------------------------

/// Doubly linked storage with stable GIDs: each element receives a
/// `dynamic_gid` minted from this bContainer's id and a local counter; a
/// side index maps GIDs to list iterators so that element methods are O(1)
/// (the pList design of Ch. X.C).
template <typename T>
class list_bcontainer {
 public:
  using value_type = T;
  using gid_type = dynamic_gid;
  using iterator = typename std::list<std::pair<dynamic_gid, T>>::iterator;
  using const_iterator =
      typename std::list<std::pair<dynamic_gid, T>>::const_iterator;

  list_bcontainer() = default;
  explicit list_bcontainer(bcid_type bcid) : m_bcid(bcid) {}

  [[nodiscard]] std::size_t size() const noexcept { return m_list.size(); }
  [[nodiscard]] bool empty() const noexcept { return m_list.empty(); }
  void clear()
  {
    m_list.clear();
    m_index.clear();
  }
  [[nodiscard]] bcid_type get_bcid() const noexcept { return m_bcid; }

  [[nodiscard]] dynamic_gid push_back(T v)
  {
    return emplace(m_list.end(), std::move(v));
  }
  [[nodiscard]] dynamic_gid push_front(T v)
  {
    return emplace(m_list.begin(), std::move(v));
  }
  /// Inserts before the element identified by `before`.
  [[nodiscard]] dynamic_gid insert_before(dynamic_gid before, T v)
  {
    return emplace(m_index.at(before), std::move(v));
  }

  void pop_back()
  {
    if (!m_list.empty()) {
      m_index.erase(m_list.back().first);
      m_list.pop_back();
    }
  }
  void pop_front()
  {
    if (!m_list.empty()) {
      m_index.erase(m_list.front().first);
      m_list.pop_front();
    }
  }
  void erase(dynamic_gid g)
  {
    auto it = m_index.find(g);
    if (it != m_index.end()) {
      m_list.erase(it->second);
      m_index.erase(it);
    }
  }

  [[nodiscard]] bool contains(dynamic_gid g) const
  {
    return m_index.count(g) != 0;
  }
  [[nodiscard]] T& at(dynamic_gid g) { return m_index.at(g)->second; }
  [[nodiscard]] T const& at(dynamic_gid g) const
  {
    return m_index.at(g)->second;
  }
  void set(dynamic_gid g, T v) { m_index.at(g)->second = std::move(v); }

  [[nodiscard]] iterator begin() noexcept { return m_list.begin(); }
  [[nodiscard]] iterator end() noexcept { return m_list.end(); }
  [[nodiscard]] const_iterator begin() const noexcept { return m_list.begin(); }
  [[nodiscard]] const_iterator end() const noexcept { return m_list.end(); }

  [[nodiscard]] dynamic_gid front_gid() const { return m_list.front().first; }
  [[nodiscard]] dynamic_gid back_gid() const { return m_list.back().first; }

  [[nodiscard]] memory_report memory_size() const noexcept
  {
    // std::list node overhead: two pointers per node; index entry ~ 3 words.
    std::size_t const node = sizeof(std::pair<dynamic_gid, T>) + 2 * sizeof(void*);
    std::size_t const idx = m_index.size() * (sizeof(dynamic_gid) + 3 * sizeof(void*));
    return {sizeof(*this) + idx, m_list.size() * node};
  }

 private:
  [[nodiscard]] dynamic_gid emplace(iterator pos, T v)
  {
    dynamic_gid const g(m_bcid, m_counter++);
    auto it = m_list.insert(pos, {g, std::move(v)});
    m_index.emplace(g, it);
    return g;
  }

  bcid_type m_bcid = invalid_bcid;
  std::uint64_t m_counter = 0;
  std::list<std::pair<dynamic_gid, T>> m_list;
  std::unordered_map<dynamic_gid, iterator> m_index;
};

// ---------------------------------------------------------------------------
// Associative storage (pMap, pSet, pHashMap, ... — Ch. XII)
// ---------------------------------------------------------------------------

/// Adaptor over any std map-like container (std::map, std::unordered_map,
/// std::multimap, ...).  Works for both unique and multi variants.
template <typename Map>
class map_bcontainer {
 public:
  using map_type = Map;
  using key_type = typename Map::key_type;
  using mapped_type = typename Map::mapped_type;
  using value_type = typename Map::value_type;
  using gid_type = key_type;
  using iterator = typename Map::iterator;
  using const_iterator = typename Map::const_iterator;

  map_bcontainer() = default;
  explicit map_bcontainer(bcid_type bcid) : m_bcid(bcid) {}

  [[nodiscard]] std::size_t size() const noexcept { return m_map.size(); }
  [[nodiscard]] bool empty() const noexcept { return m_map.empty(); }
  void clear() { m_map.clear(); }
  [[nodiscard]] bcid_type get_bcid() const noexcept { return m_bcid; }

  /// Returns true if a new element was inserted (unique maps semantics;
  /// multi maps always insert).
  bool insert(key_type k, mapped_type v)
  {
    return do_insert(std::move(k), std::move(v));
  }

  std::size_t erase(key_type const& k) { return m_map.erase(k); }

  [[nodiscard]] bool contains(key_type const& k) const
  {
    return m_map.find(k) != m_map.end();
  }
  [[nodiscard]] std::size_t count(key_type const& k) const
  {
    return m_map.count(k);
  }
  [[nodiscard]] std::pair<mapped_type, bool> find_val(key_type const& k) const
  {
    auto it = m_map.find(k);
    if (it == m_map.end())
      return {mapped_type{}, false};
    return {it->second, true};
  }
  [[nodiscard]] mapped_type& at(key_type const& k) { return m_map.at(k); }
  /// Removes exactly one occurrence of `k` and returns its mapped value
  /// (multi containers keep their other occurrences) — migration support.
  [[nodiscard]] mapped_type extract_one(key_type const& k)
  {
    auto it = m_map.find(k);
    assert(it != m_map.end() && "extract_one: key not in this bContainer");
    mapped_type v = std::move(it->second);
    m_map.erase(it);
    return v;
  }

  /// Removes every occurrence of `k` and returns the mapped values in
  /// equal-range order — the migration payload of pair-associative
  /// containers (multi containers move the whole key atomically; unique
  /// containers yield a single-element vector).
  [[nodiscard]] std::vector<mapped_type> extract_all(key_type const& k)
  {
    auto const [first, last] = m_map.equal_range(k);
    assert(first != last && "extract_all: key not in this bContainer");
    std::vector<mapped_type> out;
    for (auto it = first; it != last; ++it)
      out.push_back(std::move(it->second));
    m_map.erase(first, last);
    return out;
  }
  /// operator[]-like access: default-constructs missing entries.
  [[nodiscard]] mapped_type& get_or_create(key_type const& k)
  {
    return m_map[k];
  }

  template <typename F>
  void apply(key_type const& k, F&& f)
  {
    std::forward<F>(f)(m_map[k]);
  }

  [[nodiscard]] map_type& data() noexcept { return m_map; }
  [[nodiscard]] map_type const& data() const noexcept { return m_map; }

  [[nodiscard]] iterator begin() noexcept { return m_map.begin(); }
  [[nodiscard]] iterator end() noexcept { return m_map.end(); }
  [[nodiscard]] const_iterator begin() const noexcept { return m_map.begin(); }
  [[nodiscard]] const_iterator end() const noexcept { return m_map.end(); }

  [[nodiscard]] memory_report memory_size() const noexcept
  {
    std::size_t const node = sizeof(value_type) + 4 * sizeof(void*);
    return {sizeof(*this), m_map.size() * node};
  }

 private:
  template <typename K, typename V>
  bool do_insert(K&& k, V&& v)
  {
    if constexpr (requires {
                    m_map.insert_or_assign(std::forward<K>(k),
                                           std::forward<V>(v));
                  }) {
      auto [it, inserted] =
          m_map.emplace(std::forward<K>(k), std::forward<V>(v));
      return inserted;
    } else { // multimap family: emplace returns iterator only
      m_map.emplace(std::forward<K>(k), std::forward<V>(v));
      return true;
    }
  }

  bcid_type m_bcid = invalid_bcid;
  Map m_map;
};

/// Adaptor over any std set-like container (std::set, std::unordered_set,
/// std::multiset, ...) for simple associative pContainers (key == value).
template <typename Set>
class set_bcontainer {
 public:
  using set_type = Set;
  using key_type = typename Set::key_type;
  using value_type = key_type;
  using gid_type = key_type;
  using iterator = typename Set::iterator;
  using const_iterator = typename Set::const_iterator;

  set_bcontainer() = default;
  explicit set_bcontainer(bcid_type bcid) : m_bcid(bcid) {}

  [[nodiscard]] std::size_t size() const noexcept { return m_set.size(); }
  [[nodiscard]] bool empty() const noexcept { return m_set.empty(); }
  void clear() { m_set.clear(); }
  [[nodiscard]] bcid_type get_bcid() const noexcept { return m_bcid; }

  bool insert(key_type k)
  {
    if constexpr (requires { m_set.insert(k).second; }) {
      return m_set.insert(std::move(k)).second;
    } else { // multiset family
      m_set.insert(std::move(k));
      return true;
    }
  }
  std::size_t erase(key_type const& k) { return m_set.erase(k); }
  [[nodiscard]] bool contains(key_type const& k) const
  {
    return m_set.find(k) != m_set.end();
  }
  [[nodiscard]] std::size_t count(key_type const& k) const
  {
    return m_set.count(k);
  }

  [[nodiscard]] set_type& data() noexcept { return m_set; }
  [[nodiscard]] set_type const& data() const noexcept { return m_set; }
  [[nodiscard]] const_iterator begin() const noexcept { return m_set.begin(); }
  [[nodiscard]] const_iterator end() const noexcept { return m_set.end(); }

  [[nodiscard]] memory_report memory_size() const noexcept
  {
    std::size_t const node = sizeof(key_type) + 4 * sizeof(void*);
    return {sizeof(*this), m_set.size() * node};
  }

 private:
  bcid_type m_bcid = invalid_bcid;
  Set m_set;
};

// ---------------------------------------------------------------------------
// Dense 2D storage (pMatrix)
// ---------------------------------------------------------------------------

/// Dense row-major block of a matrix.
template <typename T>
class matrix_bcontainer {
 public:
  using value_type = T;
  using gid_type = gid2d;

  matrix_bcontainer() = default;
  matrix_bcontainer(bcid_type bcid, std::size_t rows, std::size_t cols,
                    T const& init = T{})
      : m_bcid(bcid), m_rows(rows), m_cols(cols), m_data(rows * cols, init)
  {}

  [[nodiscard]] std::size_t size() const noexcept { return m_data.size(); }
  [[nodiscard]] bool empty() const noexcept { return m_data.empty(); }
  void clear() { m_data.clear(); }
  [[nodiscard]] bcid_type get_bcid() const noexcept { return m_bcid; }
  [[nodiscard]] std::size_t rows() const noexcept { return m_rows; }
  [[nodiscard]] std::size_t cols() const noexcept { return m_cols; }

  [[nodiscard]] T& at(std::size_t local) { return m_data[local]; }
  [[nodiscard]] T const& at(std::size_t local) const { return m_data[local]; }
  void set(std::size_t local, T v) { m_data[local] = std::move(v); }

  [[nodiscard]] std::vector<T>& data() noexcept { return m_data; }
  [[nodiscard]] std::vector<T> const& data() const noexcept { return m_data; }

  void define_type(typer& t)
  {
    t.member(m_bcid);
    t.member(m_rows);
    t.member(m_cols);
    t.member(m_data);
  }

  [[nodiscard]] memory_report memory_size() const noexcept
  {
    return {sizeof(*this), m_data.capacity() * sizeof(T)};
  }

 private:
  bcid_type m_bcid = invalid_bcid;
  std::size_t m_rows = 0;
  std::size_t m_cols = 0;
  std::vector<T> m_data;
};

} // namespace stapl

#endif
