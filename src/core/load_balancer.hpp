#ifndef STAPL_CORE_LOAD_BALANCER_HPP
#define STAPL_CORE_LOAD_BALANCER_HPP

// Hot-element load balancing on top of the directory and migrate()
// (ROADMAP follow-up to the PR-1 directory subsystem; cf. the adaptive
// placement argument of the BCL distributed-container work and the skewed
// access patterns dominating pSTL-Bench scalability).
//
// Location-transparent access makes element placement a pure performance
// knob: every request routes to the current owner, so moving a hot element
// moves its execution load.  The balancer turns the directory's owner-side
// access statistics into migration decisions, in epochs:
//
//   1. measure  — each location's directory counts the accesses it executed
//      as owner (directory::note_access) and tracks its hottest GIDs in a
//      bounded space-saving sketch (no unbounded maps, however many
//      distinct GIDs the epoch touches);
//   2. plan     — rebalance() all-gathers (load, hot list) summaries; when
//      max/avg load exceeds the configured imbalance threshold, a greedy
//      planner drains the most-loaded locations: hottest tracked element
//      first, onto the currently least-loaded location, clamped so every
//      move strictly improves the spread.  The plan is computed from
//      identical inputs with identical arithmetic on every location, so no
//      coordinator and no plan broadcast is needed;
//   3. execute  — each location issues batched migrate() calls for the
//      planned moves it owns; the migration protocol updates home records
//      and invalidates stale caches, and the trailing fence completes the
//      wave.  Counters reset so the next epoch measures fresh traffic.
//
// Containers opt in through p_container_base::enable_load_balancing() and
// either call rebalance() explicitly or drive advance_epoch() from their
// computation loop (rebalances every N epochs).

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <iterator>
#include <unordered_set>
#include <utility>
#include <vector>

#include "../runtime/locality.hpp"
#include "../runtime/runtime.hpp"
#include "directory.hpp"
#include "migration.hpp"

namespace stapl {

/// Tuning knobs of the epoch-based load balancer.
struct load_balancer_config {
  /// Tolerated max/avg owner-load ratio; rebalance() is a no-op below it.
  double imbalance_threshold = 1.25;
  /// Capacity of the per-location space-saving hot-GID tracker.
  std::size_t hot_k = 64;
  /// Upper bound on migrations per rebalance wave (0 = unbounded: each
  /// donor can contribute at most its hot_k tracked candidates anyway).
  std::size_t max_moves = 0;
  /// Upper bound on bytes transferred per rebalance wave (0 = unlimited).
  /// Together with the density ordering below, this keeps one huge element
  /// from dominating a wave's transfer cost.
  std::uint64_t max_wave_bytes = 0;
  /// advance_epoch(): run rebalance() every this many epochs
  /// (0 = never rebalance automatically; rebalance() remains available).
  unsigned epoch_interval = 1;
  /// advance_epoch() auto-tuning: when true, the effective interval adapts
  /// to the imbalance drift observed between consecutive waves' load
  /// summaries — a triggered wave or drift above `auto_drift` halves it
  /// (placement is in flux, re-measure soon), a quiet stable wave doubles
  /// it (stop paying measurement fences), clamped to
  /// [min_epoch_interval, max_epoch_interval].
  bool auto_epoch = false;
  unsigned min_epoch_interval = 1;
  unsigned max_epoch_interval = 32;
  double auto_drift = 0.25;
  /// Sketch sampling of directory::note_access: 1 records every owner
  /// access in the hot-GID sketch (exact, but each hit takes the
  /// directory mutex); N > 1 updates the sketch for ~1-in-N accesses
  /// (weight-compensated), leaving the hot path a single relaxed atomic
  /// increment — measurement stops serializing the path it measures.
  unsigned access_sample = 1;
  /// Weight of the task-graph placement signal in the load model: each
  /// location's epoch load becomes its directory access count plus
  /// task_stats_weight * (tasks_lost - tasks_stolen) scaled to access
  /// units — a location whose chunks were carried off by thieves is
  /// hotter than its access count shows, and one that pulled work in has
  /// spare capacity.  0 disables the second signal.
  double task_stats_weight = 1.0;
};

/// Outcome of one rebalance() wave (identical on every location).
struct rebalance_report {
  bool triggered = false;        ///< a migration plan was computed/executed
  std::size_t moves = 0;         ///< migrations in the plan (global)
  std::uint64_t total_load = 0;  ///< owner accesses observed this epoch
  std::uint64_t bytes_moved = 0; ///< estimated payload bytes of the plan
  double imbalance_before = 1.0; ///< max/avg load at measurement
  double imbalance_after = 1.0;  ///< projected max/avg after the plan
};

namespace lb_detail {

/// Estimated in-memory payload size of one element value (shallow struct
/// size plus the dynamic buffer of string/vector-like values).
template <typename T>
[[nodiscard]] std::uint64_t byte_size_of(T const& v)
{
  if constexpr (requires {
                  v.capacity();
                  typename T::value_type;
                }) {
    return sizeof(T) + v.capacity() * sizeof(typename T::value_type);
  } else if constexpr (requires {
                         std::size(v);
                         typename T::value_type;
                       }) {
    return sizeof(T) + std::size(v) * sizeof(typename T::value_type);
  } else {
    return sizeof(T);
  }
}

/// Estimated migration-payload bytes of the (locally owned) element `g`:
/// the container's own element_bytes hook when it has one, else the local
/// value's size, else the static value size.
template <typename C>
[[nodiscard]] std::uint64_t element_bytes(C& c, typename C::gid_type const& g)
{
  if constexpr (requires { c.element_bytes(g); }) {
    return c.element_bytes(g);
  } else if constexpr (requires { c.local_element_ptr(g); }) {
    if (auto* p = c.local_element_ptr(g))
      return byte_size_of(*p);
    return sizeof(typename C::value_type);
  } else {
    return sizeof(typename C::value_type);
  }
}

/// One hot-element candidate in a location's load summary.
template <typename GID>
struct hot_candidate {
  GID gid{};
  std::uint64_t count = 0;  ///< estimated owner accesses this epoch
  std::uint64_t bytes = 0;  ///< estimated migration payload
};

/// One planned migration: `gid` (currently on `from`) moves to `to` with
/// estimated load `weight` and transfer cost `bytes`.
template <typename GID>
struct planned_move {
  GID gid;
  location_id from;
  location_id to;
  std::uint64_t weight;
  std::uint64_t bytes;
};

/// Greedy drain of overloaded locations.  `loads[l]` is location l's epoch
/// load; `hot[l]` its tracked hot candidates.  Candidates are considered
/// in *transfer-efficiency* order — load moved per byte shipped (density),
/// count and lower GID as tie-breaks — so a huge element no longer beats a
/// small one of equal hotness, and `max_wave_bytes` (0 = unlimited) caps
/// the wave's total payload.  Deterministic: called with identical
/// arguments on every location, it yields the same plan everywhere (ties
/// break toward the lower location id).  Locations flagged in
/// `demoted_mask` (stragglers demoted by the steal-probe detector) are
/// skipped as receivers for the wave — piling migrated elements onto a
/// stalled location would convert a slow peer into a hot spot — but still
/// drain as donors.
template <typename GID, typename Hash = std::hash<GID>>
[[nodiscard]] std::vector<planned_move<GID>>
greedy_plan(std::vector<std::uint64_t> const& loads,
            std::vector<std::vector<hot_candidate<GID>>> const& hot,
            std::size_t max_moves, std::uint64_t max_wave_bytes = 0,
            std::uint64_t demoted_mask = 0)
{
  auto const is_demoted = [demoted_mask](location_id l) {
    return l < 64 && (demoted_mask & (std::uint64_t{1} << l)) != 0;
  };
  unsigned const p = static_cast<unsigned>(loads.size());
  std::uint64_t total = 0;
  for (auto l : loads)
    total += l;
  double const avg = static_cast<double>(total) / p;
  std::vector<planned_move<GID>> plan;
  if (total == 0)
    return plan;

  std::vector<double> cur(loads.begin(), loads.end());
  // Donors in descending load order (stable: lower id first on ties).
  std::vector<location_id> order(p);
  for (location_id l = 0; l < p; ++l)
    order[l] = l;
  std::sort(order.begin(), order.end(), [&](location_id a, location_id b) {
    return cur[a] != cur[b] ? cur[a] > cur[b] : a < b;
  });

  auto density = [](hot_candidate<GID> const& c) {
    return static_cast<double>(c.count) /
           static_cast<double>(c.bytes == 0 ? 1 : c.bytes);
  };

  std::uint64_t wave_bytes = 0;
  std::unordered_set<GID, Hash> planned;
  for (location_id const d : order) {
    auto candidates = hot[d];
    std::sort(candidates.begin(), candidates.end(),
              [&](hot_candidate<GID> const& a, hot_candidate<GID> const& b) {
                double const da = density(a), db = density(b);
                if (da != db)
                  return da > db;
                if (a.count != b.count)
                  return a.count > b.count;
                return a.gid < b.gid;
              });
    for (auto const& [g, count, bytes] : candidates) {
      if (plan.size() >= max_moves)
        return plan;
      if (cur[d] <= avg)
        break; // donor drained to the mean: next donor
      if (max_wave_bytes != 0 && wave_bytes + bytes > max_wave_bytes)
        continue; // over the wave's transfer budget: try a smaller element
      // An element that migrated mid-epoch is counted in two sketches;
      // only its first (hottest-donor) appearance may be planned — a
      // second move of the same GID would race it and double-count load.
      if (planned.count(g) != 0)
        continue;
      location_id r = d;
      for (location_id l = 0; l < p; ++l)
        if (l != d && !is_demoted(l) && (r == d || cur[l] < cur[r]))
          r = l;
      if (r == d)
        break;
      // migrate() moves the whole element, so the projection must charge
      // its whole estimated weight; the move is taken only when that
      // strictly improves the donor/receiver pair (otherwise an
      // indivisible hot element would ping-pong between waves without
      // ever reducing the real imbalance).
      double const w = static_cast<double>(count);
      if (cur[r] + w >= cur[d]) {
        // Too heavy for every receiver (r is the least loaded); a colder
        // tracked element may still fit.
        continue;
      }
      plan.push_back({g, d, r, count, bytes});
      planned.insert(g);
      wave_bytes += bytes;
      cur[d] -= w;
      cur[r] += w;
    }
  }
  return plan;
}

/// max/avg of the given loads (1.0 for an empty or zero-load epoch).  The
/// single definition of the spread metric: the planner, the bench and the
/// tests all measure against it.
template <typename T>
[[nodiscard]] double imbalance_of(std::vector<T> const& loads)
{
  double total = 0.0, mx = 0.0;
  for (T const& l : loads) {
    double const v = static_cast<double>(l);
    total += v;
    mx = v > mx ? v : mx;
  }
  if (total <= 0.0)
    return 1.0;
  return mx / (total / static_cast<double>(loads.size()));
}

} // namespace lb_detail

/// Collective: one epoch-based rebalance wave over container `c` (must be
/// directory-backed with access tracking enabled — see
/// p_container_base::enable_load_balancing).  Gathers per-location load
/// summaries, computes the greedy migration plan when the imbalance exceeds
/// `cfg.imbalance_threshold`, executes it as batched migrate() calls, and
/// resets the epoch counters.  Every location returns the same report.
template <typename C>
rebalance_report rebalance(C& c, load_balancer_config const& cfg)
{
  using gid_type = typename C::gid_type;
  assert(c.is_dynamic() && "rebalance() requires directory-backed resolution");
  auto& dir = c.get_directory();

  trace::trace_scope wave_scope(trace::event_kind::rebalance_wave);
  latency::timed_op lat_scope(latency::op::lb_wave_stall);
  metrics::add("lb.waves", 1);

  // Quiesce: in-flight accesses execute (and are counted) before measuring.
  rmi_fence();

  rebalance_report rep;
  auto loads = allgather(dir.epoch_accesses());
  for (auto l : loads)
    rep.total_load += l;

  // Second signal: the task-graph executor's verdict on chunk placement.
  // tasks_lost says thieves had to carry this location's chunks away (it
  // is hotter than its access count shows); tasks_stolen says it had the
  // slack to pull work in.  Tasks convert into access units at the
  // epoch's global mean accesses-per-task, so both signals share a scale
  // and the adjusted loads stay identical on every location.
  if constexpr (requires { c.epoch_task_stats(); }) {
    if (cfg.task_stats_weight > 0.0) {
      auto const tstats = allgather(c.epoch_task_stats());
      std::uint64_t total_tasks = 0;
      for (auto const& s : tstats)
        total_tasks += s.tasks_run;
      if (total_tasks != 0 && rep.total_load != 0) {
        double const unit = static_cast<double>(rep.total_load) /
                            static_cast<double>(total_tasks);
        for (location_id l = 0; l < loads.size(); ++l) {
          double const shift =
              cfg.task_stats_weight * unit *
              (static_cast<double>(tstats[l].tasks_lost) -
               static_cast<double>(tstats[l].tasks_stolen));
          double const adjusted =
              std::max(0.0, static_cast<double>(loads[l]) + shift);
          loads[l] = static_cast<std::uint64_t>(std::llround(adjusted));
        }
      }
    }
  }

  rep.imbalance_before = lb_detail::imbalance_of(loads);
  rep.imbalance_after = rep.imbalance_before;

  if (rep.total_load == 0 || rep.imbalance_before <= cfg.imbalance_threshold) {
    rmi_fence();
    return rep; // balanced (or idle) epoch: keep counters accumulating
  }

  // Attach payload sizes to the local hot list: transfer cost weights the
  // plan alongside access count (an element the sketch still lists after
  // it departed falls back to the static value size).
  std::vector<lb_detail::hot_candidate<gid_type>> my_hot;
  for (auto const& [g, count] : dir.hot_elements())
    my_hot.push_back({g, count, lb_detail::element_bytes(c, g)});
  auto const hot = allgather(my_hot);
  std::size_t const max_moves =
      cfg.max_moves != 0 ? cfg.max_moves : cfg.hot_k * num_locations();
  // The demotion registry is per-process atomics read at slightly
  // different instants per location; OR-reducing the views gives every
  // location the identical mask the deterministic plan requires.
  std::uint64_t const demoted = allreduce(
      robust::demoted_mask(),
      [](std::uint64_t a, std::uint64_t b) { return a | b; });
  auto const plan = lb_detail::greedy_plan<gid_type>(
      loads, hot, max_moves, cfg.max_wave_bytes, demoted);

  rep.triggered = true;
  rep.moves = plan.size();
  for (auto const& mv : plan)
    rep.bytes_moved += mv.bytes;
  wave_scope.set_arg(rep.moves);
  metrics::add("lb.triggered", 1);
  metrics::add("lb.moves", rep.moves);
  metrics::add("lb.bytes_moved", rep.bytes_moved);
  {
    std::vector<double> projected(loads.begin(), loads.end());
    for (auto const& mv : plan) {
      projected[mv.from] -= static_cast<double>(mv.weight);
      projected[mv.to] += static_cast<double>(mv.weight);
    }
    rep.imbalance_after = lb_detail::imbalance_of(projected);
  }

  // Execute my share of the plan as a batch of asynchronous migrations.
  // migrate() routes through the directory, so a plan entry whose element
  // moved since measurement still reaches the current owner.
  for (auto const& mv : plan)
    if (mv.from == c.get_location_id())
      migrate(c, mv.gid, mv.to);
  rmi_fence(); // the wave (and every request it re-routed) completes

  dir.reset_epoch(); // next epoch measures fresh, post-move traffic
  if constexpr (requires { c.reset_task_stats(); })
    c.reset_task_stats(); // both signals measure the same window
  rmi_fence();
  return rep;
}

} // namespace stapl

#endif
