#ifndef STAPL_CORE_THREAD_SAFETY_HPP
#define STAPL_CORE_THREAD_SAFETY_HPP

// Thread-safety manager (dissertation Ch. VI).
//
// Every pContainer carries a thread-safety manager that is informed by the
// framework (through the invoke skeleton, Fig. 17) before and after each
// access to metadata and data.  The manager decides granularity and type of
// locking based on a per-method locking-policy table (Ch. VI.D).  Managers
// are selected through the container traits; the default locks only under
// the `direct` transport, where multiple threads may genuinely touch the
// same bContainer concurrently (under the `queue` transport every
// bContainer is accessed by its owning location's thread only).

#include <array>
#include <cstddef>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "../runtime/runtime.hpp"
#include "partitions.hpp"

namespace stapl {

/// Granularity of the data access performed by a method (Ch. VI.D).
enum class lock_granularity {
  none,       ///< no locking required (e.g. read-only static container)
  element,    ///< a single element of one bContainer
  bcontainer, ///< an entire bContainer (e.g. insert into a vector)
  local       ///< all local bContainers (e.g. size())
};

/// Access mode of a method on data / metadata.
enum class rw_mode { read, write };

/// Per-method locking attributes.
struct locking_policy {
  lock_granularity granularity = lock_granularity::bcontainer;
  rw_mode data = rw_mode::write;
  rw_mode metadata = rw_mode::read;
};

/// Identifiers for the common pContainer methods (indices into the locking
/// policy table; containers may register additional methods).
enum method_id : std::size_t {
  MP_SET_ELEMENT,
  MP_GET_ELEMENT,
  MP_APPLY,
  MP_INSERT,
  MP_ERASE,
  MP_PUSH_BACK,
  MP_POP_BACK,
  MP_PUSH_FRONT,
  MP_POP_FRONT,
  MP_FIND,
  MP_ADD_VERTEX,
  MP_DELETE_VERTEX,
  MP_ADD_EDGE,
  MP_DELETE_EDGE,
  MP_SIZE,
  MP_CUSTOM_FIRST ///< first id available for container-specific methods
};

/// Table of locking policies indexed by method id.
class locking_policy_table {
 public:
  locking_policy_table()
  {
    m_policies.resize(MP_CUSTOM_FIRST + 8);
    set(MP_SET_ELEMENT, {lock_granularity::element, rw_mode::write, rw_mode::read});
    set(MP_GET_ELEMENT, {lock_granularity::element, rw_mode::read, rw_mode::read});
    set(MP_APPLY, {lock_granularity::element, rw_mode::write, rw_mode::read});
    set(MP_INSERT, {lock_granularity::bcontainer, rw_mode::write, rw_mode::write});
    set(MP_ERASE, {lock_granularity::bcontainer, rw_mode::write, rw_mode::write});
    set(MP_PUSH_BACK, {lock_granularity::bcontainer, rw_mode::write, rw_mode::write});
    set(MP_POP_BACK, {lock_granularity::bcontainer, rw_mode::write, rw_mode::write});
    set(MP_PUSH_FRONT, {lock_granularity::bcontainer, rw_mode::write, rw_mode::write});
    set(MP_POP_FRONT, {lock_granularity::bcontainer, rw_mode::write, rw_mode::write});
    set(MP_FIND, {lock_granularity::bcontainer, rw_mode::read, rw_mode::read});
    set(MP_ADD_VERTEX, {lock_granularity::bcontainer, rw_mode::write, rw_mode::write});
    set(MP_DELETE_VERTEX, {lock_granularity::bcontainer, rw_mode::write, rw_mode::write});
    set(MP_ADD_EDGE, {lock_granularity::element, rw_mode::write, rw_mode::read});
    set(MP_DELETE_EDGE, {lock_granularity::element, rw_mode::write, rw_mode::read});
    set(MP_SIZE, {lock_granularity::local, rw_mode::read, rw_mode::read});
  }

  void set(std::size_t id, locking_policy p)
  {
    if (id >= m_policies.size())
      m_policies.resize(id + 1);
    m_policies[id] = p;
  }

  [[nodiscard]] locking_policy const& get(std::size_t id) const
  {
    return m_policies[id];
  }

 private:
  std::vector<locking_policy> m_policies;
};

/// Information handed to the thread-safety manager when a method begins
/// (Ch. VI.C `ths_info`).
struct ths_info {
  std::size_t method = MP_SET_ELEMENT;
  bcid_type bcid = invalid_bcid;
};

// ---------------------------------------------------------------------------
// Managers
// ---------------------------------------------------------------------------

/// No-op manager: for read-only containers or when concurrency is handled by
/// the task dependence graph (Ch. VI.E "Customizations").
class no_locking_manager {
 public:
  explicit no_locking_manager(locking_policy_table const* = nullptr) {}
  void data_access_pre(ths_info const&) noexcept {}
  void data_access_post(ths_info const&) noexcept {}
  void metadata_access_pre(ths_info const&) noexcept {}
  void metadata_access_post(ths_info const&) noexcept {}
  [[nodiscard]] static constexpr bool locks() noexcept { return false; }
  [[nodiscard]] std::size_t memory_size() const noexcept { return 0; }
};

/// Reader/writer locking at the granularity requested by the policy table:
/// one shared_mutex per bContainer plus one for the metadata.  bContainer
/// mutexes are materialized lazily under a registry mutex.
class mutex_locking_manager {
 public:
  explicit mutex_locking_manager(locking_policy_table const* table)
      : m_table(table)
  {}

  void metadata_access_pre(ths_info const& i)
  {
    lock(m_metadata_mutex, m_table->get(i.method).metadata);
  }
  void metadata_access_post(ths_info const& i)
  {
    unlock(m_metadata_mutex, m_table->get(i.method).metadata);
  }

  void data_access_pre(ths_info const& i)
  {
    auto const& p = m_table->get(i.method);
    if (p.granularity == lock_granularity::none)
      return;
    lock(bc_mutex(i.bcid), p.data);
  }
  void data_access_post(ths_info const& i)
  {
    auto const& p = m_table->get(i.method);
    if (p.granularity == lock_granularity::none)
      return;
    unlock(bc_mutex(i.bcid), p.data);
  }

  [[nodiscard]] static constexpr bool locks() noexcept { return true; }

  [[nodiscard]] std::size_t memory_size() const
  {
    std::lock_guard g(m_registry_mutex);
    return m_bc_mutexes.size() * sizeof(std::shared_mutex);
  }

 private:
  static void lock(std::shared_mutex& m, rw_mode mode)
  {
    if (mode == rw_mode::read)
      m.lock_shared();
    else
      m.lock();
  }
  static void unlock(std::shared_mutex& m, rw_mode mode)
  {
    if (mode == rw_mode::read)
      m.unlock_shared();
    else
      m.unlock();
  }

  [[nodiscard]] std::shared_mutex& bc_mutex(bcid_type b)
  {
    std::lock_guard g(m_registry_mutex);
    auto& slot = m_bc_mutexes[b];
    if (!slot)
      slot = std::make_unique<std::shared_mutex>();
    return *slot;
  }

  locking_policy_table const* m_table;
  mutable std::mutex m_registry_mutex;
  std::unordered_map<bcid_type, std::unique_ptr<std::shared_mutex>> m_bc_mutexes;
  std::shared_mutex m_metadata_mutex;
};

/// K hashed locks shared by all elements (the Ch. VI.E refinement): each
/// access hashes its bCID to one of K mutexes, bounding memory while still
/// allowing concurrency.
template <std::size_t K = 64>
class hashed_locking_manager {
 public:
  explicit hashed_locking_manager(locking_policy_table const* table)
      : m_table(table)
  {}

  void metadata_access_pre(ths_info const&) noexcept {}
  void metadata_access_post(ths_info const&) noexcept {}

  void data_access_pre(ths_info const& i)
  {
    if (m_table->get(i.method).granularity == lock_granularity::none)
      return;
    m_locks[i.bcid % K].lock();
  }
  void data_access_post(ths_info const& i)
  {
    if (m_table->get(i.method).granularity == lock_granularity::none)
      return;
    m_locks[i.bcid % K].unlock();
  }

  [[nodiscard]] static constexpr bool locks() noexcept { return true; }
  [[nodiscard]] std::size_t memory_size() const noexcept
  {
    return K * sizeof(std::mutex);
  }

 private:
  locking_policy_table const* m_table;
  std::array<std::mutex, K> m_locks;
};

/// Default manager: delegates to the mutex manager only when the runtime
/// uses the `direct` transport (concurrent access possible); under the
/// `queue` transport each bContainer is touched by a single thread and no
/// locking is performed.
class default_thread_safety_manager {
 public:
  explicit default_thread_safety_manager(locking_policy_table const* table)
      : m_inner(table)
  {}

  void metadata_access_pre(ths_info const& i)
  {
    if (active())
      m_inner.metadata_access_pre(i);
  }
  void metadata_access_post(ths_info const& i)
  {
    if (active())
      m_inner.metadata_access_post(i);
  }
  void data_access_pre(ths_info const& i)
  {
    if (active())
      m_inner.data_access_pre(i);
  }
  void data_access_post(ths_info const& i)
  {
    if (active())
      m_inner.data_access_post(i);
  }

  [[nodiscard]] static bool locks()
  {
    return current_transport() == transport_kind::direct;
  }
  [[nodiscard]] std::size_t memory_size() const { return m_inner.memory_size(); }

 private:
  [[nodiscard]] static bool active()
  {
    return current_transport() == transport_kind::direct;
  }
  mutex_locking_manager m_inner;
};

} // namespace stapl

#endif
