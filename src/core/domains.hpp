#ifndef STAPL_CORE_DOMAINS_HPP
#define STAPL_CORE_DOMAINS_HPP

// Domain concepts of the PCF (dissertation Ch. IV.B.2-3, Tables V/VI).
//
// A domain is the set of GIDs identifying the elements of a pContainer.
// Ordered domains additionally expose first/last/next/prev/advance/offset
// following the finite-ordered-domain interface; the `last` GID is a
// past-the-end convention, STL style.

#include <cassert>
#include <compare>
#include <cstdint>
#include <cstddef>
#include <functional>
#include <limits>
#include <utility>
#include <vector>

#include "../runtime/serialization.hpp"

namespace stapl {

/// One-dimensional index GID.
using gid1d = std::size_t;

inline constexpr gid1d invalid_gid = std::numeric_limits<gid1d>::max();

/// Finite totally ordered 1D range domain [first, last).
/// This is the domain of indexed pContainers (pArray, pVector).
class indexed_domain {
 public:
  using gid_type = gid1d;

  indexed_domain() = default;
  indexed_domain(gid_type first, gid_type last) noexcept
      : m_first(first), m_last(last)
  {
    assert(first <= last);
  }
  /// Domain [0, n).
  explicit indexed_domain(std::size_t n) noexcept : indexed_domain(0, n) {}

  [[nodiscard]] gid_type first() const noexcept { return m_first; }
  /// Past-the-end convention: not a member of the domain.
  [[nodiscard]] gid_type last() const noexcept { return m_last; }
  [[nodiscard]] std::size_t size() const noexcept { return m_last - m_first; }
  [[nodiscard]] bool empty() const noexcept { return m_first == m_last; }

  [[nodiscard]] bool contains(gid_type g) const noexcept
  {
    return g >= m_first && g < m_last;
  }
  [[nodiscard]] static bool less(gid_type a, gid_type b) noexcept
  {
    return a < b;
  }
  [[nodiscard]] static gid_type invalid() noexcept { return invalid_gid; }

  [[nodiscard]] gid_type next(gid_type g) const noexcept { return g + 1; }
  [[nodiscard]] gid_type prev(gid_type g) const noexcept { return g - 1; }
  [[nodiscard]] gid_type advance(gid_type g, std::size_t n) const noexcept
  {
    return g + n;
  }
  /// Offset of `g` within the unique enumeration of the domain.
  [[nodiscard]] std::size_t offset(gid_type g) const noexcept
  {
    assert(contains(g));
    return g - m_first;
  }
  [[nodiscard]] gid_type at_offset(std::size_t n) const noexcept
  {
    return m_first + n;
  }

  /// Intersection with another range (domain algebra).
  [[nodiscard]] indexed_domain intersect(indexed_domain const& o) const noexcept
  {
    gid_type const lo = std::max(m_first, o.m_first);
    gid_type const hi = std::min(m_last, o.m_last);
    return lo < hi ? indexed_domain(lo, hi) : indexed_domain();
  }

  [[nodiscard]] bool operator==(indexed_domain const&) const = default;

  void define_type(typer& t)
  {
    t.member(m_first);
    t.member(m_last);
  }

 private:
  gid_type m_first = 0;
  gid_type m_last = 0;
};

/// Two-dimensional GID (row, column).
struct gid2d {
  std::size_t row = 0;
  std::size_t col = 0;

  [[nodiscard]] bool operator==(gid2d const&) const = default;
  /// Row-major lexicographic order (Ch. IV.B.3, Cartesian-product domains).
  [[nodiscard]] auto operator<=>(gid2d const&) const = default;

  void define_type(typer& t)
  {
    t.member(row);
    t.member(col);
  }
};

/// Finite ordered 2D rectangular domain [0,rows) x [0,cols), row-major
/// linearization (the 2DRange of Ch. IV.B.3).
class domain2d {
 public:
  using gid_type = gid2d;

  domain2d() = default;
  domain2d(std::size_t rows, std::size_t cols) noexcept
      : m_rows(rows), m_cols(cols)
  {}

  [[nodiscard]] std::size_t rows() const noexcept { return m_rows; }
  [[nodiscard]] std::size_t cols() const noexcept { return m_cols; }
  [[nodiscard]] std::size_t size() const noexcept { return m_rows * m_cols; }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  [[nodiscard]] gid_type first() const noexcept { return {0, 0}; }
  [[nodiscard]] gid_type last() const noexcept { return {m_rows, 0}; }

  [[nodiscard]] bool contains(gid_type g) const noexcept
  {
    return g.row < m_rows && g.col < m_cols;
  }
  [[nodiscard]] static bool less(gid_type a, gid_type b) noexcept
  {
    return a < b;
  }

  [[nodiscard]] gid_type next(gid_type g) const noexcept
  {
    return g.col + 1 < m_cols ? gid_type{g.row, g.col + 1}
                              : gid_type{g.row + 1, 0};
  }
  [[nodiscard]] gid_type prev(gid_type g) const noexcept
  {
    return g.col > 0 ? gid_type{g.row, g.col - 1}
                     : gid_type{g.row - 1, m_cols - 1};
  }
  [[nodiscard]] std::size_t offset(gid_type g) const noexcept
  {
    return g.row * m_cols + g.col;
  }
  [[nodiscard]] gid_type at_offset(std::size_t n) const noexcept
  {
    return {n / m_cols, n % m_cols};
  }
  [[nodiscard]] gid_type advance(gid_type g, std::size_t n) const noexcept
  {
    return at_offset(offset(g) + n);
  }

  [[nodiscard]] bool operator==(domain2d const&) const = default;

  void define_type(typer& t)
  {
    t.member(m_rows);
    t.member(m_cols);
  }

 private:
  std::size_t m_rows = 0;
  std::size_t m_cols = 0;
};

/// Explicit enumeration domain: an ordered list of arbitrary GIDs
/// (Ch. IV.B.3, "enumeration of individual elements").
template <typename Gid>
class enumerated_domain {
 public:
  using gid_type = Gid;

  enumerated_domain() = default;
  explicit enumerated_domain(std::vector<Gid> gids) : m_gids(std::move(gids)) {}

  [[nodiscard]] std::size_t size() const noexcept { return m_gids.size(); }
  [[nodiscard]] bool empty() const noexcept { return m_gids.empty(); }
  [[nodiscard]] gid_type first() const { return m_gids.front(); }

  [[nodiscard]] bool contains(Gid const& g) const
  {
    for (auto const& x : m_gids)
      if (x == g)
        return true;
    return false;
  }

  [[nodiscard]] std::size_t offset(Gid const& g) const
  {
    for (std::size_t i = 0; i != m_gids.size(); ++i)
      if (m_gids[i] == g)
        return i;
    assert(false && "gid not in enumerated domain");
    return m_gids.size();
  }
  [[nodiscard]] Gid at_offset(std::size_t n) const { return m_gids[n]; }

  [[nodiscard]] std::vector<Gid> const& gids() const noexcept { return m_gids; }

  void define_type(typer& t) { t.member(m_gids); }

 private:
  std::vector<Gid> m_gids;
};

/// Open ordered key domain [lower, upper) for sorted associative
/// pContainers (Ch. IV.B.3, "open ordered domains").  Conceptually infinite:
/// has no size(); supports containment and comparison only.
template <typename Key, typename Compare = std::less<Key>>
class continuous_domain {
 public:
  using gid_type = Key;

  continuous_domain() = default;
  continuous_domain(Key lower, Key upper, bool unbounded_above = false,
                    bool unbounded_below = false)
      : m_lower(std::move(lower)),
        m_upper(std::move(upper)),
        m_unbounded_above(unbounded_above),
        m_unbounded_below(unbounded_below)
  {}

  /// The whole key universe.
  [[nodiscard]] static continuous_domain universe()
  {
    continuous_domain d;
    d.m_unbounded_above = true;
    d.m_unbounded_below = true;
    return d;
  }

  [[nodiscard]] bool contains(Key const& k) const
  {
    Compare cmp;
    bool const above_lower = m_unbounded_below || !cmp(k, m_lower);
    bool const below_upper = m_unbounded_above || cmp(k, m_upper);
    return above_lower && below_upper;
  }

  [[nodiscard]] static bool less(Key const& a, Key const& b)
  {
    return Compare{}(a, b);
  }

  [[nodiscard]] Key const& lower() const noexcept { return m_lower; }
  [[nodiscard]] Key const& upper() const noexcept { return m_upper; }

 private:
  Key m_lower{};
  Key m_upper{};
  bool m_unbounded_above = false;
  bool m_unbounded_below = false;
};

/// Filtered domain: lazily enumerates the GIDs of a base domain that satisfy
/// a predicate (Ch. IV.B.3, "filtered domain").
template <typename Base, typename Pred>
class filtered_domain {
 public:
  using gid_type = typename Base::gid_type;

  filtered_domain(Base base, Pred pred)
      : m_base(std::move(base)), m_pred(std::move(pred))
  {}

  [[nodiscard]] bool contains(gid_type g) const
  {
    return m_base.contains(g) && m_pred(g);
  }

  [[nodiscard]] std::size_t size() const
  {
    std::size_t n = 0;
    for (std::size_t i = 0; i != m_base.size(); ++i)
      if (m_pred(m_base.at_offset(i)))
        ++n;
    return n;
  }

  /// Materializes the filtered enumeration.
  [[nodiscard]] std::vector<gid_type> gids() const
  {
    std::vector<gid_type> out;
    for (std::size_t i = 0; i != m_base.size(); ++i)
      if (auto g = m_base.at_offset(i); m_pred(g))
        out.push_back(g);
    return out;
  }

 private:
  Base m_base;
  Pred m_pred;
};

// ---------------------------------------------------------------------------
// GIDs of dynamic pContainers (pList, dynamic pGraph)
// ---------------------------------------------------------------------------

/// GID for dynamic containers: encodes the base container in which the
/// element was created (high bits) plus a per-bContainer counter (low bits).
/// Elements keep their GID for life; the home bContainer is recoverable in
/// closed form, which is what makes the "static-like" fast path of dynamic
/// containers possible (Ch. V.C).
struct dynamic_gid {
  static constexpr unsigned bcid_bits = 20;
  static constexpr std::uint64_t counter_mask =
      (std::uint64_t{1} << (64 - bcid_bits)) - 1;

  std::uint64_t bits = ~std::uint64_t{0};

  dynamic_gid() = default;
  dynamic_gid(std::size_t bcid, std::uint64_t counter) noexcept
      : bits((static_cast<std::uint64_t>(bcid) << (64 - bcid_bits)) |
             (counter & counter_mask))
  {}

  [[nodiscard]] std::size_t bcid() const noexcept
  {
    return static_cast<std::size_t>(bits >> (64 - bcid_bits));
  }
  [[nodiscard]] std::uint64_t counter() const noexcept
  {
    return bits & counter_mask;
  }
  [[nodiscard]] bool valid() const noexcept { return bits != ~std::uint64_t{0}; }

  [[nodiscard]] bool operator==(dynamic_gid const&) const = default;
  [[nodiscard]] auto operator<=>(dynamic_gid const&) const = default;

  void define_type(typer& t) { t.member(bits); }
};

} // namespace stapl

template <>
struct std::hash<stapl::gid2d> {
  std::size_t operator()(stapl::gid2d const& g) const noexcept
  {
    return std::hash<std::size_t>{}(g.row * 0x9E3779B97F4A7C15ull + g.col);
  }
};

template <>
struct std::hash<stapl::dynamic_gid> {
  std::size_t operator()(stapl::dynamic_gid const& g) const noexcept
  {
    return std::hash<std::uint64_t>{}(g.bits);
  }
};

#endif
