#ifndef STAPL_CORE_PARTITIONS_HPP
#define STAPL_CORE_PARTITIONS_HPP

// Partition concepts of the PCF (dissertation Ch. IV.B.4-5 and V.C.4,
// Tables VII/VIII/XV).
//
// A partition decomposes a domain into ordered, disjoint sub-domains, one per
// base container (bCID), and answers the central address-resolution query
// `get_info(gid) -> bcid`.  Indexed partitions additionally provide the
// closed-form local index of a GID inside its bContainer and the inverse
// mapping, which lets bContainers use contiguous storage.

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <numeric>
#include <vector>

#include "domains.hpp"

namespace stapl {

/// Identifier of a sub-domain / base container.
using bcid_type = std::size_t;

inline constexpr bcid_type invalid_bcid = static_cast<bcid_type>(-1);

/// Pseudo-bCID of elements that migrated onto a location outside any of its
/// partition-assigned bContainers (they live in the container's overflow
/// store; see container_base.hpp).
inline constexpr bcid_type migrated_bcid = static_cast<bcid_type>(-2);

// ---------------------------------------------------------------------------
// Indexed partitions (pArray, pVector, static pGraph)
// ---------------------------------------------------------------------------

/// `partition_balanced`: N elements split into `p` contiguous sub-domains of
/// size N/p (first N%p get one extra).  Used by default by pArray.
class balanced_partition {
 public:
  using domain_type = indexed_domain;
  using gid_type = gid1d;

  balanced_partition() = default;
  explicit balanced_partition(std::size_t num_subdomains)
      : m_parts(num_subdomains)
  {}
  balanced_partition(domain_type d, std::size_t num_subdomains)
      : m_parts(num_subdomains)
  {
    set_domain(d);
  }

  void set_domain(domain_type d)
  {
    m_domain = d;
    if (m_parts == 0)
      m_parts = 1;
    if (m_domain.size() < m_parts && m_domain.size() > 0)
      m_parts = m_domain.size();
  }

  [[nodiscard]] domain_type const& domain() const noexcept { return m_domain; }
  [[nodiscard]] std::size_t size() const noexcept { return m_parts; }

  [[nodiscard]] bcid_type get_info(gid_type g) const noexcept
  {
    std::size_t const n = m_domain.size();
    std::size_t const off = m_domain.offset(g);
    std::size_t const q = n / m_parts, r = n % m_parts;
    // First r sub-domains have size q+1.
    std::size_t const big = r * (q + 1);
    return off < big ? off / (q + 1) : r + (off - big) / std::max<std::size_t>(q, 1);
  }

  [[nodiscard]] domain_type subdomain(bcid_type b) const noexcept
  {
    std::size_t const n = m_domain.size();
    std::size_t const q = n / m_parts, r = n % m_parts;
    std::size_t const lo =
        b < r ? b * (q + 1) : r * (q + 1) + (b - r) * q;
    std::size_t const sz = b < r ? q + 1 : q;
    return {m_domain.first() + lo, m_domain.first() + lo + sz};
  }

  [[nodiscard]] std::size_t subdomain_size(bcid_type b) const noexcept
  {
    return subdomain(b).size();
  }
  [[nodiscard]] std::size_t local_index(gid_type g) const noexcept
  {
    return g - subdomain(get_info(g)).first();
  }
  [[nodiscard]] gid_type gid_of(bcid_type b, std::size_t i) const noexcept
  {
    return subdomain(b).first() + i;
  }

  void define_type(typer& t)
  {
    t.member(m_domain);
    t.member(m_parts);
  }

 private:
  domain_type m_domain;
  std::size_t m_parts = 1;
};

/// `partition_blocked`: fixed block size; N/BS sub-domains (last may be
/// smaller).
class blocked_partition {
 public:
  using domain_type = indexed_domain;
  using gid_type = gid1d;

  blocked_partition() = default;
  explicit blocked_partition(std::size_t block_size) : m_block(block_size)
  {
    assert(block_size > 0);
  }
  blocked_partition(domain_type d, std::size_t block_size)
      : m_block(block_size)
  {
    set_domain(d);
  }

  void set_domain(domain_type d) { m_domain = d; }

  [[nodiscard]] domain_type const& domain() const noexcept { return m_domain; }
  [[nodiscard]] std::size_t size() const noexcept
  {
    return m_domain.empty() ? 1 : (m_domain.size() + m_block - 1) / m_block;
  }

  [[nodiscard]] bcid_type get_info(gid_type g) const noexcept
  {
    return m_domain.offset(g) / m_block;
  }
  [[nodiscard]] domain_type subdomain(bcid_type b) const noexcept
  {
    gid_type const lo = m_domain.first() + b * m_block;
    gid_type const hi =
        std::min<gid_type>(lo + m_block, m_domain.last());
    return {lo, hi};
  }
  [[nodiscard]] std::size_t subdomain_size(bcid_type b) const noexcept
  {
    return subdomain(b).size();
  }
  [[nodiscard]] std::size_t local_index(gid_type g) const noexcept
  {
    return m_domain.offset(g) % m_block;
  }
  [[nodiscard]] gid_type gid_of(bcid_type b, std::size_t i) const noexcept
  {
    return m_domain.first() + b * m_block + i;
  }

  void define_type(typer& t)
  {
    t.member(m_domain);
    t.member(m_block);
  }

 private:
  domain_type m_domain;
  std::size_t m_block = 1;
};

/// `partition_block_cyclic`: `p` sub-domains; blocks of `block` consecutive
/// GIDs dealt to sub-domains round-robin (Ch. V.D.4 examples).
class block_cyclic_partition {
 public:
  using domain_type = indexed_domain;
  using gid_type = gid1d;

  block_cyclic_partition() = default;
  block_cyclic_partition(std::size_t num_subdomains, std::size_t block)
      : m_parts(num_subdomains), m_block(block)
  {
    assert(num_subdomains > 0 && block > 0);
  }

  void set_domain(domain_type d) { m_domain = d; }

  [[nodiscard]] domain_type const& domain() const noexcept { return m_domain; }
  [[nodiscard]] std::size_t size() const noexcept { return m_parts; }

  [[nodiscard]] bcid_type get_info(gid_type g) const noexcept
  {
    return (m_domain.offset(g) / m_block) % m_parts;
  }

  [[nodiscard]] std::size_t subdomain_size(bcid_type b) const noexcept
  {
    std::size_t const n = m_domain.size();
    std::size_t const full_rounds = n / (m_block * m_parts);
    std::size_t const rem = n % (m_block * m_parts);
    std::size_t extra = 0;
    if (rem > b * m_block)
      extra = std::min(rem - b * m_block, m_block);
    return full_rounds * m_block + extra;
  }

  [[nodiscard]] std::size_t local_index(gid_type g) const noexcept
  {
    std::size_t const off = m_domain.offset(g);
    std::size_t const round = off / (m_block * m_parts);
    return round * m_block + off % m_block;
  }

  [[nodiscard]] gid_type gid_of(bcid_type b, std::size_t i) const noexcept
  {
    std::size_t const round = i / m_block;
    std::size_t const within = i % m_block;
    return m_domain.first() + round * m_block * m_parts + b * m_block + within;
  }

  void define_type(typer& t)
  {
    t.member(m_domain);
    t.member(m_parts);
    t.member(m_block);
  }

 private:
  domain_type m_domain;
  std::size_t m_parts = 1;
  std::size_t m_block = 1;
};

/// `partition_blocked_explicit`: arbitrary, explicitly enumerated contiguous
/// block sizes (Ch. V.D.4: `BLOCK(v{3,4,4})`).
class explicit_partition {
 public:
  using domain_type = indexed_domain;
  using gid_type = gid1d;

  explicit_partition() = default;
  explicit explicit_partition(std::vector<std::size_t> block_sizes)
      : m_sizes(std::move(block_sizes))
  {
    rebuild();
  }

  void set_domain(domain_type d)
  {
    m_domain = d;
    assert(m_offsets.empty() || m_offsets.back() == d.size());
  }

  [[nodiscard]] domain_type const& domain() const noexcept { return m_domain; }
  [[nodiscard]] std::size_t size() const noexcept
  {
    return std::max<std::size_t>(m_sizes.size(), 1);
  }

  [[nodiscard]] bcid_type get_info(gid_type g) const noexcept
  {
    std::size_t const off = m_domain.offset(g);
    auto it = std::upper_bound(m_offsets.begin(), m_offsets.end(), off);
    return static_cast<bcid_type>(it - m_offsets.begin());
  }

  [[nodiscard]] domain_type subdomain(bcid_type b) const noexcept
  {
    std::size_t const lo = b == 0 ? 0 : m_offsets[b - 1];
    std::size_t const hi = m_offsets.empty() ? 0 : m_offsets[b];
    return {m_domain.first() + lo, m_domain.first() + hi};
  }
  [[nodiscard]] std::size_t subdomain_size(bcid_type b) const noexcept
  {
    return m_sizes.empty() ? 0 : m_sizes[b];
  }
  [[nodiscard]] std::size_t local_index(gid_type g) const noexcept
  {
    return g - subdomain(get_info(g)).first();
  }
  [[nodiscard]] gid_type gid_of(bcid_type b, std::size_t i) const noexcept
  {
    return subdomain(b).first() + i;
  }

  void define_type(typer& t)
  {
    t.member(m_domain);
    t.member(m_sizes);
    t.member(m_offsets);
  }

 private:
  void rebuild()
  {
    m_offsets.resize(m_sizes.size());
    std::partial_sum(m_sizes.begin(), m_sizes.end(), m_offsets.begin());
  }

  domain_type m_domain;
  std::vector<std::size_t> m_sizes;
  std::vector<std::size_t> m_offsets; ///< inclusive prefix sums of m_sizes
};

// ---------------------------------------------------------------------------
// 2D matrix partition (pMatrix, Ch. V.D.4 "p_matrix_partition")
// ---------------------------------------------------------------------------

/// Decomposes a rows x cols domain into a grid of block sub-domains
/// (row-wise, column-wise, or 2D checkerboard depending on grid shape).
class matrix_partition {
 public:
  using domain_type = domain2d;
  using gid_type = gid2d;

  matrix_partition() = default;
  matrix_partition(std::size_t grid_rows, std::size_t grid_cols)
      : m_grows(grid_rows), m_gcols(grid_cols)
  {
    assert(grid_rows > 0 && grid_cols > 0);
  }

  void set_domain(domain_type d)
  {
    m_domain = d;
    m_grows = std::min(m_grows, std::max<std::size_t>(d.rows(), 1));
    m_gcols = std::min(m_gcols, std::max<std::size_t>(d.cols(), 1));
  }

  [[nodiscard]] domain_type const& domain() const noexcept { return m_domain; }
  [[nodiscard]] std::size_t size() const noexcept { return m_grows * m_gcols; }
  [[nodiscard]] std::size_t grid_rows() const noexcept { return m_grows; }
  [[nodiscard]] std::size_t grid_cols() const noexcept { return m_gcols; }

  /// Block boundaries of dimension `n` split into `p` balanced pieces.
  [[nodiscard]] static std::pair<std::size_t, std::size_t>
  split1d(std::size_t n, std::size_t p, std::size_t i) noexcept
  {
    std::size_t const q = n / p, r = n % p;
    std::size_t const lo = i < r ? i * (q + 1) : r * (q + 1) + (i - r) * q;
    std::size_t const sz = i < r ? q + 1 : q;
    return {lo, sz};
  }

  [[nodiscard]] static std::size_t index1d(std::size_t n, std::size_t p,
                                           std::size_t x) noexcept
  {
    std::size_t const q = n / p, r = n % p;
    std::size_t const big = r * (q + 1);
    return x < big ? x / (q + 1) : r + (x - big) / std::max<std::size_t>(q, 1);
  }

  [[nodiscard]] bcid_type get_info(gid_type g) const noexcept
  {
    std::size_t const br = index1d(m_domain.rows(), m_grows, g.row);
    std::size_t const bc = index1d(m_domain.cols(), m_gcols, g.col);
    return br * m_gcols + bc;
  }

  /// The rectangular block of bCID `b`: returns {row_lo, row_sz, col_lo, col_sz}.
  struct block {
    std::size_t row_lo, row_sz, col_lo, col_sz;
  };

  [[nodiscard]] block subblock(bcid_type b) const noexcept
  {
    auto const [rlo, rsz] = split1d(m_domain.rows(), m_grows, b / m_gcols);
    auto const [clo, csz] = split1d(m_domain.cols(), m_gcols, b % m_gcols);
    return {rlo, rsz, clo, csz};
  }

  [[nodiscard]] std::size_t subdomain_size(bcid_type b) const noexcept
  {
    auto const bl = subblock(b);
    return bl.row_sz * bl.col_sz;
  }

  /// Row-major local index within the block.
  [[nodiscard]] std::size_t local_index(gid_type g) const noexcept
  {
    auto const bl = subblock(get_info(g));
    return (g.row - bl.row_lo) * bl.col_sz + (g.col - bl.col_lo);
  }

  [[nodiscard]] gid_type gid_of(bcid_type b, std::size_t i) const noexcept
  {
    auto const bl = subblock(b);
    return {bl.row_lo + i / bl.col_sz, bl.col_lo + i % bl.col_sz};
  }

  void define_type(typer& t)
  {
    t.member(m_domain);
    t.member(m_grows);
    t.member(m_gcols);
  }

 private:
  domain_type m_domain;
  std::size_t m_grows = 1;
  std::size_t m_gcols = 1;
};

// ---------------------------------------------------------------------------
// Associative partitions (Ch. XII, Fig. 58)
// ---------------------------------------------------------------------------

/// Value-based partition for sorted associative pContainers: explicit key
/// boundaries k_1 < ... < k_{p-1} split the key universe into p ranges.
template <typename Key, typename Compare = std::less<Key>>
class value_partition {
 public:
  using gid_type = Key;

  value_partition() = default;
  explicit value_partition(std::vector<Key> boundaries)
      : m_bounds(std::move(boundaries))
  {
    assert(std::is_sorted(m_bounds.begin(), m_bounds.end(), Compare{}));
  }

  /// Uniform boundaries over [lo, hi) — integral keys.
  static value_partition uniform(Key lo, Key hi, std::size_t parts)
  {
    std::vector<Key> bounds;
    for (std::size_t i = 1; i < parts; ++i)
      bounds.push_back(lo + static_cast<Key>((hi - lo) * i / parts));
    return value_partition(std::move(bounds));
  }

  [[nodiscard]] std::size_t size() const noexcept { return m_bounds.size() + 1; }

  [[nodiscard]] bcid_type get_info(Key const& k) const
  {
    auto it = std::upper_bound(m_bounds.begin(), m_bounds.end(), k, Compare{});
    return static_cast<bcid_type>(it - m_bounds.begin());
  }

  void define_type(typer& t) { t.member(m_bounds); }

 private:
  std::vector<Key> m_bounds;
};

/// Hash-based partition for hashed associative pContainers.
template <typename Key, typename Hash = std::hash<Key>>
class hashed_partition {
 public:
  using gid_type = Key;

  hashed_partition() = default;
  explicit hashed_partition(std::size_t parts) : m_parts(parts)
  {
    assert(parts > 0);
  }

  [[nodiscard]] std::size_t size() const noexcept { return m_parts; }

  [[nodiscard]] bcid_type get_info(Key const& k) const
  {
    return Hash{}(k) % m_parts;
  }

  void define_type(typer& t) { t.member(m_parts); }

 private:
  std::size_t m_parts = 1;
};

// ---------------------------------------------------------------------------
// Dynamic-GID partition (pList, dynamic pGraph)
// ---------------------------------------------------------------------------

/// Partition for containers whose elements carry `dynamic_gid`s: the home
/// bContainer is encoded in the GID itself, so resolution is closed-form and
/// never needs communication (Fig. 37's default pList organization).
class dynamic_partition {
 public:
  using gid_type = dynamic_gid;

  dynamic_partition() = default;
  explicit dynamic_partition(std::size_t parts) : m_parts(parts) {}

  [[nodiscard]] std::size_t size() const noexcept { return m_parts; }

  [[nodiscard]] bcid_type get_info(dynamic_gid g) const noexcept
  {
    return g.bcid();
  }

  void define_type(typer& t) { t.member(m_parts); }

 private:
  std::size_t m_parts = 1;
};

} // namespace stapl

#endif
