#include "fault.hpp"

#include "runtime.hpp"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

namespace stapl {
namespace fault {

namespace fault_detail {

std::atomic<bool> g_armed{false};
std::atomic<bool> g_paused{false};
std::atomic<std::uint64_t> g_seed{0};
std::atomic<std::uint64_t> g_gate_mask{0};
std::atomic<std::uint64_t> g_watchdog_ms{30000};

// Plans are swapped as an immutable snapshot so on_site never reads a
// vector another thread is mutating; the mutex only guards the swap and
// the shared_ptr copy (cold: the layer is armed in tests/benches only).
using plan_set = std::vector<plan>;
std::mutex g_plan_mutex;
std::shared_ptr<plan_set const> g_plans = std::make_shared<plan_set>();

[[nodiscard]] std::shared_ptr<plan_set const> snapshot_plans()
{
  std::lock_guard lock(g_plan_mutex);
  return g_plans;
}

// Injection event log: per-location vectors under one mutex.  Injections
// are rare relative to site hits, so the lock is off the common path.
constexpr std::size_t max_events_per_location = std::size_t{1} << 16;
std::mutex g_event_mutex;
std::map<location_id, std::vector<event>> g_events;

// Per-thread decision state: the bound location and per-site hit counters
// (reset at attach so every execution replays from hit 0).
struct tl_state_t {
  location_id loc = invalid_location;
  std::uint64_t hits[num_sites] = {};
};

[[nodiscard]] tl_state_t& tl_state() noexcept
{
  thread_local tl_state_t s;
  return s;
}

// splitmix64: the per-hit hash behind probability plans.  A pure function
// of (seed, site, location, hit count) — thread interleaving cannot change
// a decision, which is what makes same-seed replay exact.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept
{
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

[[nodiscard]] double draw(std::uint64_t seed, site s, location_id loc,
                          std::uint64_t n) noexcept
{
  std::uint64_t const h = mix64(
      seed ^ mix64(static_cast<std::uint64_t>(s) + 1) ^
      mix64((static_cast<std::uint64_t>(loc) + 1) * 0x9E3779B97F4A7C15ull) ^
      mix64(n * 0xBF58476D1CE4E5B9ull));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::mutex g_report_mutex;
std::string g_last_report;

} // namespace fault_detail

using namespace fault_detail;

char const* name_of(site s) noexcept
{
  switch (s) {
    case site::rmi_enqueue: return "rmi.enqueue";
    case site::rmi_flush:   return "rmi.flush";
    case site::rmi_poll:    return "rmi.poll";
    case site::coll_cell:   return "coll.cell";
    case site::dir_forward: return "dir.forward";
    case site::tg_steal:    return "tg.steal";
    case site::tg_payload:  return "tg.payload";
    case site::migration:   return "migration";
    case site::site_count_: break;
  }
  return "?";
}

site site_from_name(std::string const& name) noexcept
{
  for (unsigned i = 0; i < num_sites; ++i)
    if (name == name_of(static_cast<site>(i)))
      return static_cast<site>(i);
  return site::site_count_;
}

void add_plan(plan p)
{
  std::lock_guard lock(g_plan_mutex);
  auto next = std::make_shared<plan_set>(*g_plans);
  next->push_back(p);
  g_plans = std::move(next);
}

void clear_plans()
{
  std::lock_guard lock(g_plan_mutex);
  g_plans = std::make_shared<plan_set>();
}

void arm(std::uint64_t seed)
{
  g_seed.store(seed, std::memory_order_relaxed);
  g_paused.store(false, std::memory_order_relaxed);
  g_armed.store(true, std::memory_order_release);
}

void disarm()
{
  g_armed.store(false, std::memory_order_release);
}

std::uint64_t seed() noexcept
{
  return g_seed.load(std::memory_order_relaxed);
}

void pause() noexcept
{
  g_paused.store(true, std::memory_order_relaxed);
}

void resume() noexcept
{
  g_paused.store(false, std::memory_order_relaxed);
}

void set_gate(std::uint64_t mask) noexcept
{
  g_gate_mask.store(mask, std::memory_order_relaxed);
}

void attach(location_id id) noexcept
{
  auto& st = tl_state();
  st.loc = id;
  std::memset(st.hits, 0, sizeof(st.hits));
}

void detach() noexcept
{
  tl_state().loc = invalid_location;
}

outcome on_site(site s)
{
  auto& st = tl_state();
  if (st.loc == invalid_location)
    return {};
  if (g_paused.load(std::memory_order_relaxed))
    return {};
  std::uint64_t const n = ++st.hits[static_cast<unsigned>(s)];

  auto const plans = snapshot_plans();
  std::uint64_t const gate_mask = g_gate_mask.load(std::memory_order_relaxed);
  std::uint64_t const sd = seed();
  outcome o;
  for (plan const& p : *plans) {
    if (p.where != s)
      continue;
    if (p.only_location != invalid_location && p.only_location != st.loc)
      continue;
    if (p.gate != 0 && (p.gate & gate_mask) == 0)
      continue;
    bool hit = false;
    if (p.every_n != 0)
      hit = (n % p.every_n) == 0;
    else if (p.probability > 0.0)
      hit = draw(sd, s, st.loc, n) < p.probability;
    if (!hit)
      continue;
    o.actions |= p.actions;
    if ((p.actions & act_delay) && p.delay_polls > o.delay_polls)
      o.delay_polls = p.delay_polls;
    if ((p.actions & act_stall) && p.stall_us > o.stall_us)
      o.stall_us = p.stall_us;
  }
  if (o.actions == 0)
    return o;

  auto& c = tl_counters();
  c.injected += 1;
  if (o.actions & act_delay)
    c.delays += 1;
  if (o.actions & act_duplicate)
    c.dups += 1;
  if (o.actions & act_reorder)
    c.reorders += 1;
  if (o.actions & act_stall)
    c.stalls += 1;
  if (o.actions & act_alloc_fail)
    c.alloc_fails += 1;

  {
    std::lock_guard lock(g_event_mutex);
    auto& log = g_events[st.loc];
    if (log.size() < max_events_per_location)
      log.push_back({s, o.actions, n, st.loc});
  }
  STAPL_TRACE(trace::event_kind::fault_inject,
              (static_cast<std::uint64_t>(s) << 8) | o.actions);

  if ((o.actions & act_stall) && o.stall_us != 0) {
    metrics::idle().sleeps += 1;
    metrics::idle().nap_us += o.stall_us;
    std::this_thread::sleep_for(std::chrono::microseconds(o.stall_us));
  }
  return o;
}

std::vector<event> events(location_id loc)
{
  std::lock_guard lock(g_event_mutex);
  auto it = g_events.find(loc);
  return it == g_events.end() ? std::vector<event>{} : it->second;
}

std::vector<event> all_events()
{
  std::lock_guard lock(g_event_mutex);
  std::vector<event> out;
  for (auto const& [loc, log] : g_events)
    out.insert(out.end(), log.begin(), log.end());
  return out;
}

void clear_events()
{
  std::lock_guard lock(g_event_mutex);
  g_events.clear();
}

void init_from_env()
{
  static std::once_flag once;
  std::call_once(once, [] {
    if (char const* wd = std::getenv("STAPL_WATCHDOG_MS"))
      g_watchdog_ms.store(std::strtoull(wd, nullptr, 10),
                          std::memory_order_relaxed);
    char const* spec = std::getenv("STAPL_FAULTS");
    if (spec == nullptr || *spec == '\0')
      return;
    std::uint64_t seed = 1;
    if (char const* sd = std::getenv("STAPL_FAULT_SEED"))
      seed = std::strtoull(sd, nullptr, 10);
    // Syntax: site:action[:key=val[,key=val...]] entries joined by ';'.
    // Actions: delay, dup, reorder, stall, alloc_fail.  Keys: n, p,
    // polls, us, loc.  Malformed entries are skipped with a warning.
    std::stringstream ss(spec);
    std::string entry;
    while (std::getline(ss, entry, ';')) {
      if (entry.empty())
        continue;
      std::stringstream es(entry);
      std::string site_name, action_name, params;
      std::getline(es, site_name, ':');
      std::getline(es, action_name, ':');
      std::getline(es, params);
      plan p;
      p.where = site_from_name(site_name);
      if (action_name == "delay")
        p.actions = act_delay;
      else if (action_name == "dup")
        p.actions = act_duplicate;
      else if (action_name == "reorder")
        p.actions = act_reorder;
      else if (action_name == "stall")
        p.actions = act_stall;
      else if (action_name == "alloc_fail")
        p.actions = act_alloc_fail;
      if (p.where == site::site_count_ || p.actions == 0) {
        std::cerr << "STAPL_FAULTS: skipping malformed entry '" << entry
                  << "'\n";
        continue;
      }
      std::stringstream ps(params);
      std::string kv;
      while (std::getline(ps, kv, ',')) {
        auto const eq = kv.find('=');
        if (eq == std::string::npos)
          continue;
        std::string const k = kv.substr(0, eq);
        std::string const v = kv.substr(eq + 1);
        if (k == "n")
          p.every_n = static_cast<unsigned>(std::strtoul(v.c_str(), nullptr, 10));
        else if (k == "p")
          p.probability = std::strtod(v.c_str(), nullptr);
        else if (k == "polls")
          p.delay_polls = static_cast<unsigned>(std::strtoul(v.c_str(), nullptr, 10));
        else if (k == "us")
          p.stall_us = static_cast<unsigned>(std::strtoul(v.c_str(), nullptr, 10));
        else if (k == "loc")
          p.only_location = static_cast<location_id>(std::strtoul(v.c_str(), nullptr, 10));
      }
      if (p.every_n == 0 && p.probability <= 0.0)
        p.every_n = 1; // bare "site:action" means every hit
      add_plan(p);
    }
    arm(seed);
  });
}

std::uint64_t watchdog_ms() noexcept
{
  return g_watchdog_ms.load(std::memory_order_relaxed);
}

void set_watchdog_ms(std::uint64_t ms) noexcept
{
  g_watchdog_ms.store(ms, std::memory_order_relaxed);
}

void watchdog_fire(char const* what)
{
  using namespace runtime_detail;
  robust::tl().watchdog_dumps += 1;
  STAPL_TRACE(trace::event_kind::watchdog);

  // Build the report from cross-thread-safe state only: atomics (inbox
  // counts, deferred-depth gauges, collective cell seq/ack) and the trace
  // registry (its own mutex).  Other locations' plain counters are theirs.
  std::ostringstream r;
  location_id const me = tl_location;
  r << "==== STAPL watchdog ====\n"
    << "location " << me << " blocked in '" << (what ? what : "?")
    << "' past " << watchdog_ms() << "ms\n";
  if (g_runtime != nullptr) {
    auto& impl = *g_runtime;
    r << "pending RMIs: sent="
      << impl.total_sent.load(std::memory_order_acquire) << " executed="
      << impl.total_executed.load(std::memory_order_acquire)
      << " active_polls="
      << impl.active_polls.load(std::memory_order_acquire) << "\n";
    for (location_id l = 0; l < impl.num_locations(); ++l) {
      auto& ls = impl.loc(l);
      r << "  loc " << l << ": inbox_depth=" << ls.in.size()
        << " parked=" << ls.deferred_depth.load(std::memory_order_relaxed);
      bool cells_open = false;
      for (unsigned c = 0; c < location_state::num_coll_cells; ++c) {
        auto const seq = ls.cells[c].seq.load(std::memory_order_acquire);
        auto const ack = ls.cells[c].ack.load(std::memory_order_acquire);
        if (seq != ack) {
          if (!cells_open) {
            r << " coll_cells[";
            cells_open = true;
          }
          r << " " << c << ":seq=" << seq << ",ack=" << ack;
        }
      }
      if (cells_open)
        r << " ]";
      if (trace::enabled()) {
        auto const evs = trace::events(l);
        std::size_t const n = evs.size();
        if (n != 0) {
          r << " last_trace=[";
          for (std::size_t i = n - std::min<std::size_t>(n, 3); i < n; ++i)
            r << " " << trace::name_of(evs[i].kind) << "(" << evs[i].arg
              << ")@" << evs[i].ts_us << "us";
          r << " ]";
        }
      }
      r << "\n";
    }
  } else {
    r << "(no active runtime)\n";
  }
  if (!trace::enabled())
    r << "(enable trace:: for per-location event history)\n";
  r << "========================\n";

  std::string const report = r.str();
  {
    std::lock_guard lock(g_report_mutex);
    g_last_report = report;
  }
  std::cerr << report;
}

std::string last_watchdog_report()
{
  std::lock_guard lock(g_report_mutex);
  return g_last_report;
}

} // namespace fault

namespace robust {

namespace {
std::atomic<std::uint64_t> g_demoted{0};
std::atomic<std::uint64_t> g_probe_timeout_us{100000};
std::atomic<unsigned> g_demote_after{3};

[[nodiscard]] constexpr std::uint64_t bit_of(location_id l) noexcept
{
  return l < 64 ? (std::uint64_t{1} << l) : 0;
}
} // namespace

bool demote(location_id l) noexcept
{
  std::uint64_t const b = bit_of(l);
  if (b == 0)
    return false;
  return (g_demoted.fetch_or(b, std::memory_order_acq_rel) & b) == 0;
}

bool promote(location_id l) noexcept
{
  std::uint64_t const b = bit_of(l);
  if (b == 0)
    return false;
  return (g_demoted.fetch_and(~b, std::memory_order_acq_rel) & b) != 0;
}

bool is_demoted(location_id l) noexcept
{
  return (g_demoted.load(std::memory_order_acquire) & bit_of(l)) != 0;
}

std::uint64_t demoted_mask() noexcept
{
  return g_demoted.load(std::memory_order_acquire);
}

void reset_demotions() noexcept
{
  g_demoted.store(0, std::memory_order_release);
}

std::uint64_t probe_timeout_us() noexcept
{
  return g_probe_timeout_us.load(std::memory_order_relaxed);
}

void set_probe_timeout_us(std::uint64_t us) noexcept
{
  g_probe_timeout_us.store(us, std::memory_order_relaxed);
}

unsigned demote_after() noexcept
{
  return g_demote_after.load(std::memory_order_relaxed);
}

void set_demote_after(unsigned strikes) noexcept
{
  g_demote_after.store(strikes == 0 ? 1 : strikes, std::memory_order_relaxed);
}

} // namespace robust
} // namespace stapl
