#ifndef STAPL_RUNTIME_COLLECTIVES_HPP
#define STAPL_RUNTIME_COLLECTIVES_HPP

// Tree-structured group communication (FooPar / "Group Communication
// Patterns for HPC"-style; dissertation Ch. III.B names broadcast/reduce
// as RTS primitives).
//
// The flat value-exchange protocol in runtime.hpp is O(P) reads per
// participant and two full barriers per collective.  This layer provides
// the scalable shapes:
//
//   * broadcast  — binomial tree rooted at `root`: ceil(log2 P) hops, the
//     root sends log2 P messages instead of P-1 being read from it.
//   * reduce     — binomial tree mirrored towards the root; partial values
//     combine in (rotated) rank order, so associative non-commutative
//     operators fold deterministically.
//   * allreduce  — recursive doubling: log2 P exchange rounds, every
//     location finishes with the identical rank-ordered fold.
//   * allgather  — recursive doubling on the accumulated entry sets.
//
// Non-power-of-two P uses the standard remainder fold: the first
// 2*(P - bit_floor(P)) ranks pair up (even folds into odd) before the
// doubling phase and receive the result afterwards, so the core always
// runs on a power of two.
//
// Transport: collectives do not ride the RMI layer.  Each location owns a
// small array of `coll_cell`s (runtime.hpp); a publish stores a data
// pointer then an operation token into the cell's `seq`, the single
// designated reader spins on `seq` (driving `poll_once` so RMI traffic
// keeps progressing), copies the value out, and acks.  Publishers await
// the ack before reusing or destroying the published data.  The token is
// the per-location count of tree collectives — identical everywhere by
// SPMD order — so cells never need resetting and back-to-back collectives
// cannot alias.  Unlike the flat protocol, tree collectives are *not*
// location barriers: a location may leave the collective while slower
// peers are still inside.  No call site relies on the old barrier
// side effect.
//
// Mode selection: below `coll::flat_threshold()` locations (default 4) the
// flat exchange wins on latency (one shared-memory read beats pointer
// chasing through log P cells), so `coll::mode::auto_select` falls back to
// it and counts the fallback.  `coll::set_mode(flat|tree)` pins either
// path — benches and tests use this; set it outside stapl::execute() only,
// since every location must take the same branch to keep tokens aligned.

#include "runtime.hpp"

#include <cstdint>
#include <utility>
#include <vector>

namespace stapl {

namespace coll {

/// Which engine the public collectives dispatch to.
enum class mode {
  auto_select, ///< tree above the flat threshold, flat below (default)
  flat,        ///< always the value-exchange protocol
  tree         ///< always the tree engine (P >= 2)
};

[[nodiscard]] mode get_mode() noexcept;
void set_mode(mode m) noexcept;

/// Largest P still served by the flat exchange under auto_select.
[[nodiscard]] unsigned flat_threshold() noexcept;
void set_flat_threshold(unsigned p) noexcept;

} // namespace coll

namespace coll_detail {

using runtime_detail::poll_once;
using runtime_detail::rt;
using runtime_detail::tl_location;

// Cell indices: 0 = remainder pre-fold, 1+r = doubling/binomial round r,
// last = remainder post-fold.
inline constexpr unsigned cell_pre = 0;
inline constexpr unsigned cell_round0 = 1;
inline constexpr unsigned cell_post =
    runtime_detail::location_state::num_coll_cells - 1;

[[nodiscard]] inline unsigned floor_log2(unsigned v) noexcept
{
  unsigned r = 0;
  while (v >>= 1)
    ++r;
  return r;
}

[[nodiscard]] inline unsigned ceil_log2(unsigned v) noexcept
{
  return v <= 1 ? 0 : floor_log2(v - 1) + 1;
}

/// Largest power of two <= v (v >= 1).
[[nodiscard]] inline unsigned bit_floor_u(unsigned v) noexcept
{
  return 1u << floor_log2(v);
}

/// Real rank of dense (post-remainder-fold) rank `d`: the odd survivors of
/// the fold zone come first, then the untouched tail.  Monotonic in `d`,
/// which is what keeps the recursive-doubling fold rank-ordered.
[[nodiscard]] inline location_id dense_to_real(unsigned d, unsigned rem) noexcept
{
  return d < rem ? 2 * d + 1 : d + rem;
}

[[nodiscard]] inline bool use_flat(unsigned p) noexcept
{
  switch (coll::get_mode()) {
    case coll::mode::flat:
      return true;
    case coll::mode::tree:
      return false;
    default:
      return p <= coll::flat_threshold();
  }
}

/// Counts one tree collective of the given depth and returns its token.
[[nodiscard]] inline std::uint64_t begin_tree_op(unsigned depth) noexcept
{
  auto& self = rt().loc(tl_location);
  self.stats.coll_ops += 1;
  if (self.stats.coll_depth < depth)
    self.stats.coll_depth = depth;
  return ++self.coll_token;
}

inline void publish(unsigned cell, std::uint64_t token, void const* data)
{
  STAPL_FAULT_POINT(fault::site::coll_cell); // stall before the seq release
  auto& c = rt().loc(tl_location).cells[cell];
  c.data = data;
  c.seq.store(token, std::memory_order_release);
}

/// Spins (driving RMI progress) until `peer` publishes `token` on `cell`;
/// the caller must copy the pointed-to data out before acking.
[[nodiscard]] inline void const* await_publish(location_id peer, unsigned cell,
                                               std::uint64_t token)
{
  auto& c = rt().loc(peer).cells[cell];
  runtime_detail::deadline_backoff bo("coll.publish");
  while (c.seq.load(std::memory_order_acquire) != token) {
    if (poll_once())
      bo.reset();
    else
      bo.pause();
  }
  return c.data;
}

inline void ack(location_id peer, unsigned cell, std::uint64_t token) noexcept
{
  rt().loc(peer).cells[cell].ack.store(token, std::memory_order_release);
}

/// Spins until this location's publish on `cell` has been acked; after
/// this the published data may be reused or destroyed.
inline void await_ack(unsigned cell, std::uint64_t token)
{
  auto& c = rt().loc(tl_location).cells[cell];
  runtime_detail::deadline_backoff bo("coll.ack");
  while (c.ack.load(std::memory_order_acquire) != token) {
    if (poll_once())
      bo.reset();
    else
      bo.pause();
  }
}

/// Binomial-tree broadcast from `root` (MPICH shape): relative rank v
/// receives from v - mask at its lowest set bit, then relays downwards.
template <typename T>
[[nodiscard]] T tree_broadcast(location_id root, T const& value)
{
  auto& self = rt().loc(tl_location);
  unsigned const p = rt().num_locations();
  unsigned const vrank = (tl_location + p - root) % p;
  std::uint64_t const token = begin_tree_op(ceil_log2(p));

  T result{};
  unsigned mask = 1;
  if (vrank == 0) {
    result = value;
    while (mask < p)
      mask <<= 1;
  } else {
    while ((vrank & mask) == 0)
      mask <<= 1;
    location_id const parent = (vrank - mask + root) % p;
    unsigned const cell = cell_round0 + floor_log2(mask);
    result = *static_cast<T const*>(await_publish(parent, cell, token));
    ack(parent, cell, token);
    self.stats.coll_rounds += 1;
  }
  // Relay to the subtree below the receive mask, largest child first.
  std::uint64_t pending = 0; // bitmask of cells awaiting ack
  for (unsigned m = mask >> 1; m != 0; m >>= 1) {
    if (vrank + m >= p)
      continue;
    unsigned const cell = cell_round0 + floor_log2(m);
    publish(cell, token, &result);
    pending |= std::uint64_t{1} << cell;
    self.stats.coll_rounds += 1;
  }
  // `result` is stack-local: every child must ack before we return.
  for (unsigned cell = cell_round0; pending != 0; ++cell) {
    if ((pending & (std::uint64_t{1} << cell)) == 0)
      continue;
    await_ack(cell, token);
    pending &= ~(std::uint64_t{1} << cell);
  }
  return result;
}

/// Binomial-tree reduce towards `root`.  The child at relative rank
/// v + mask covers the block [v+mask, v+2*mask), so acc = op(acc, child)
/// folds in ascending relative-rank order — deterministic for any
/// associative operator.  The returned value is the full fold at `root`
/// and a partial fold elsewhere.
template <typename T, typename BinaryOp>
[[nodiscard]] T tree_reduce(location_id root, T const& value, BinaryOp op)
{
  auto& self = rt().loc(tl_location);
  unsigned const p = rt().num_locations();
  unsigned const vrank = (tl_location + p - root) % p;
  std::uint64_t const token = begin_tree_op(ceil_log2(p));

  T acc = value;
  for (unsigned mask = 1; mask < p; mask <<= 1) {
    if (vrank & mask) {
      location_id const parent = (vrank - mask + root) % p;
      unsigned const cell = cell_round0 + floor_log2(mask);
      (void)parent; // the parent reads our cell; we only publish
      publish(cell, token, &acc);
      await_ack(cell, token);
      self.stats.coll_rounds += 1;
      break;
    }
    if (vrank + mask < p) {
      location_id const child = (vrank + mask + root) % p;
      unsigned const cell = cell_round0 + floor_log2(mask);
      T peer = *static_cast<T const*>(await_publish(child, cell, token));
      ack(child, cell, token);
      acc = op(std::move(acc), std::move(peer));
      self.stats.coll_rounds += 1;
    }
  }
  return acc;
}

/// Recursive-doubling allreduce with the remainder fold for non-power-of-
/// two P.  Every location returns the identical rank-ordered fold
/// op(v_0, op-combined ... v_{P-1}) (grouping varies, order does not).
template <typename T, typename BinaryOp>
[[nodiscard]] T tree_allreduce(T const& value, BinaryOp op)
{
  auto& self = rt().loc(tl_location);
  unsigned const p = rt().num_locations();
  unsigned const me = tl_location;
  unsigned const p2 = bit_floor_u(p);
  unsigned const rem = p - p2;
  std::uint64_t const token = begin_tree_op(ceil_log2(p));

  T acc = value;
  unsigned dense;
  if (me < 2 * rem) {
    if ((me & 1u) == 0) {
      // Fold into the odd neighbour, then sit out the doubling phase and
      // receive the finished result from it.
      publish(cell_pre, token, &acc);
      await_ack(cell_pre, token);
      self.stats.coll_rounds += 1;
      T result =
          *static_cast<T const*>(await_publish(me + 1, cell_post, token));
      ack(me + 1, cell_post, token);
      self.stats.coll_rounds += 1;
      return result;
    }
    T peer = *static_cast<T const*>(await_publish(me - 1, cell_pre, token));
    ack(me - 1, cell_pre, token);
    acc = op(std::move(peer), std::move(acc)); // even rank precedes odd
    self.stats.coll_rounds += 1;
    dense = me / 2;
  } else {
    dense = me - rem;
  }

  for (unsigned mask = 1; mask < p2; mask <<= 1) {
    unsigned const pdense = dense ^ mask;
    location_id const partner = dense_to_real(pdense, rem);
    unsigned const cell = cell_round0 + floor_log2(mask);
    publish(cell, token, &acc);
    T peer = *static_cast<T const*>(await_publish(partner, cell, token));
    ack(partner, cell, token);
    await_ack(cell, token); // partner copied acc; safe to overwrite now
    acc = (dense & mask) == 0 ? op(std::move(acc), std::move(peer))
                              : op(std::move(peer), std::move(acc));
    self.stats.coll_rounds += 1;
  }

  if (me < 2 * rem) {
    // Ship the finished fold back to the folded-out even neighbour.
    publish(cell_post, token, &acc);
    await_ack(cell_post, token);
    self.stats.coll_rounds += 1;
  }
  return acc;
}

/// Recursive-doubling allgather: each location accumulates the set of
/// entries it has seen; partners exchange and union their sets each round.
/// The published view points into the owner's live vectors, so readers
/// copy to scratch before acking and only merge after their own publish
/// has been acked (the arrays must not move while a partner reads them).
template <typename T>
[[nodiscard]] std::vector<T> tree_allgather(T const& value)
{
  auto& self = rt().loc(tl_location);
  unsigned const p = rt().num_locations();
  unsigned const me = tl_location;
  unsigned const p2 = bit_floor_u(p);
  unsigned const rem = p - p2;
  std::uint64_t const token = begin_tree_op(ceil_log2(p));

  std::vector<T> res(p);
  std::vector<unsigned char> present(p, 0);
  res[me] = value;
  present[me] = 1;

  struct view {
    T const* res;
    unsigned char const* present;
  };

  // Copies the peer's entries this location lacks into scratch (before
  // acking — the peer may touch its arrays once acked).
  auto collect = [&](view const& v) {
    std::vector<std::pair<unsigned, T>> scratch;
    for (unsigned i = 0; i < p; ++i)
      if (v.present[i] && !present[i])
        scratch.emplace_back(i, v.res[i]);
    return scratch;
  };
  auto merge = [&](std::vector<std::pair<unsigned, T>>&& scratch) {
    for (auto& [i, t] : scratch) {
      res[i] = std::move(t);
      present[i] = 1;
    }
  };

  unsigned dense;
  if (me < 2 * rem) {
    if ((me & 1u) == 0) {
      view const my{res.data(), present.data()};
      publish(cell_pre, token, &my);
      await_ack(cell_pre, token);
      self.stats.coll_rounds += 1;
      view const* pv =
          static_cast<view const*>(await_publish(me + 1, cell_post, token));
      auto scratch = collect(*pv);
      ack(me + 1, cell_post, token);
      merge(std::move(scratch));
      self.stats.coll_rounds += 1;
      return res;
    }
    view const* pv =
        static_cast<view const*>(await_publish(me - 1, cell_pre, token));
    auto scratch = collect(*pv);
    ack(me - 1, cell_pre, token);
    merge(std::move(scratch));
    self.stats.coll_rounds += 1;
    dense = me / 2;
  } else {
    dense = me - rem;
  }

  for (unsigned mask = 1; mask < p2; mask <<= 1) {
    unsigned const pdense = dense ^ mask;
    location_id const partner = dense_to_real(pdense, rem);
    unsigned const cell = cell_round0 + floor_log2(mask);
    view const my{res.data(), present.data()};
    publish(cell, token, &my);
    view const* pv =
        static_cast<view const*>(await_publish(partner, cell, token));
    auto scratch = collect(*pv);
    ack(partner, cell, token);
    await_ack(cell, token); // partner done reading res/present
    merge(std::move(scratch));
    self.stats.coll_rounds += 1;
  }

  if (me < 2 * rem) {
    view const my{res.data(), present.data()};
    publish(cell_post, token, &my);
    await_ack(cell_post, token);
    self.stats.coll_rounds += 1;
  }
  return res;
}

} // namespace coll_detail

// ---------------------------------------------------------------------------
// Public collectives — dispatch between the tree engine and the flat
// exchange (runtime.hpp) per coll::mode / coll::flat_threshold().
// ---------------------------------------------------------------------------

/// All-reduce over all locations: every location receives the op-combined
/// value.  On the tree path the fold is deterministic and rank-ordered;
/// the flat path combines in a per-location order, so non-commutative
/// operators should force tree mode (or tolerate any combine order).
template <typename T, typename BinaryOp>
[[nodiscard]] T allreduce(T const& value, BinaryOp op)
{
  unsigned const p = num_locations();
  if (p == 1)
    return value;
  if (coll_detail::use_flat(p)) {
    runtime_detail::rt().loc(this_location()).stats.coll_flat += 1;
    return runtime_detail::flat_allreduce(value, op);
  }
  return coll_detail::tree_allreduce(value, op);
}

/// Broadcast from `root` to all locations.
template <typename T>
[[nodiscard]] T broadcast(location_id root, T const& value)
{
  unsigned const p = num_locations();
  if (p == 1)
    return value;
  if (coll_detail::use_flat(p)) {
    runtime_detail::rt().loc(this_location()).stats.coll_flat += 1;
    return runtime_detail::flat_broadcast(root, value);
  }
  return coll_detail::tree_broadcast(root, value);
}

/// Reduce to `root`: the full fold lands on `root` only (other locations
/// receive an unspecified partial fold).  Combines in rank order rotated
/// to start at `root` on both paths.
template <typename T, typename BinaryOp>
[[nodiscard]] T reduce(location_id root, T const& value, BinaryOp op)
{
  unsigned const p = num_locations();
  if (p == 1)
    return value;
  if (coll_detail::use_flat(p)) {
    runtime_detail::rt().loc(this_location()).stats.coll_flat += 1;
    return runtime_detail::flat_reduce(root, value, op);
  }
  return coll_detail::tree_reduce(root, value, op);
}

/// Gathers one value per location; every location receives the full vector.
template <typename T>
[[nodiscard]] std::vector<T> allgather(T const& value)
{
  unsigned const p = num_locations();
  if (p == 1)
    return std::vector<T>{value};
  if (coll_detail::use_flat(p)) {
    runtime_detail::rt().loc(this_location()).stats.coll_flat += 1;
    return runtime_detail::flat_allgather(value);
  }
  return coll_detail::tree_allgather(value);
}

// ---------------------------------------------------------------------------
// Global metric/latency merges — true tree reductions (log P combines per
// location instead of P-1) now that they sit on the dispatchers above.
// ---------------------------------------------------------------------------

namespace metrics {

/// Collective: the union of every location's `snapshot()`, counters summed
/// by name (latency gauge keys — quantiles, max — merge by max instead;
/// see `sums_on_merge`).  Must be called by all locations.  This is the
/// one map that surfaces all stats families — runtime, task-graph,
/// directory, load-balancer, idle time — plus the byte counters and
/// per-family latency keys.
[[nodiscard]] inline counter_map global_snapshot()
{
  return allreduce(snapshot(), [](counter_map a, counter_map const& b) {
    for (auto const& [k, v] : b) {
      if (sums_on_merge(k))
        a[k] += v;
      else if (v > a[k])
        a[k] = v;
    }
    return a;
  });
}

} // namespace metrics

namespace latency {

/// Collective: the bucket-wise merge of every location's histogram for `o`
/// — exactly the histogram a single recorder would hold had it seen every
/// location's samples.  Must be called by all locations.
[[nodiscard]] inline histogram global_histogram(op o)
{
  return allreduce(local_snapshot(o), [](histogram a, histogram const& b) {
    a.merge(b);
    return a;
  });
}

/// Collective: all families merged at once (one reduction).
[[nodiscard]] inline histogram_set global_histograms()
{
  return allreduce(local_snapshots(),
                   [](histogram_set a, histogram_set const& b) {
                     for (std::size_t i = 0; i != op_count; ++i)
                       a[i].merge(b[i]);
                     return a;
                   });
}

} // namespace latency

namespace metrics {

/// Collective window capture: merges every location's cumulative counters
/// and latency histograms and pushes one sample into `s` on location 0
/// (the sampler lives wherever the bench declared it; only location 0
/// touches it).  Call at window boundaries from all locations — typically
/// right after the quiescing work of the window, never from per-location
/// timers (the merge is a collective and needs everyone).
inline void sample_global(sampler& s, std::string const& label = {})
{
  auto const counters = global_snapshot();
  auto const hists = latency::global_histograms();
  if (this_location() == 0)
    s.push(counters, hists, label);
}

} // namespace metrics

} // namespace stapl

#endif
