#ifndef STAPL_RUNTIME_INSTRUMENT_HPP
#define STAPL_RUNTIME_INSTRUMENT_HPP

// Runtime instrumentation layer: structured event tracing and a unified
// metrics registry.
//
// Everything the runtime can *count* or *timestamp* reports through this
// header so that later transport/collective backends observe through one
// pipe instead of growing yet another ad-hoc stats family:
//
//   * trace::   — a per-location, single-writer ring-buffer event tracer
//     with typed events (RMI send/execute, aggregated message flush, fence,
//     task run, steal probe/grant/nack, payload forward, migration,
//     rebalance wave, epoch advance).  Disabled cost is one relaxed atomic
//     load behind the STAPL_TRACE macro; enabled cost is one ring slot
//     write.  `trace::dump(path)` exports Chrome trace-event JSON with one
//     pid/tid lane per location, loadable directly in Perfetto.
//
//   * metrics:: — a named-counter registry.  Stats producers (the RTS
//     location counters, task-graph executors, directories, the load
//     balancer) register fold/reset contributor callbacks on their owning
//     location thread; `metrics::snapshot()` folds all of them plus the
//     finals of already-destroyed contributors into one map, and
//     `metrics::reset_all()` resets every family through the same hooks.
//     The legacy accessors (`my_stats()`, `task_graph::global_stats()`,
//     `directory::stats()`) remain as thin compatibility shims over the
//     same underlying counters.
//
// Layering: this header depends only on types.hpp (plus the standard
// library) because it is included *by* runtime.hpp — emit sites live in the
// runtime core itself.  All mutable global state lives in instrument.cpp;
// per-location state is keyed off the calling thread (a location is a
// thread in this RTS, so each ring and each contributor list is naturally
// single-writer).

#include "types.hpp"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace stapl {

// ---------------------------------------------------------------------------
// trace — typed event tracer
// ---------------------------------------------------------------------------

namespace trace {

/// Typed runtime events.  Scope kinds (see `is_scope`) are recorded as
/// Chrome "X" complete events with a duration; the rest are instants.
enum class event_kind : std::uint8_t {
  rmi_send,         ///< RMI enqueued to a remote location (arg: payload bytes)
  rmi_execute,      ///< incoming RMI executed here (arg: 0)
  msg_flush,        ///< aggregation buffer flushed (arg: requests in message)
  fence,            ///< rmi_fence, entry to exit (scope)
  task_run,         ///< one task-graph task body (scope; arg: task id)
  steal_probe,      ///< steal request sent (arg: victim location)
  steal_grant,      ///< steal request granted (arg: tasks granted)
  steal_nack,       ///< steal request declined (arg: thief location)
  payload_forward,  ///< owner-side chunk payload forward (arg: bytes)
  migration,        ///< element migration arrived here (arg: gid)
  rebalance_wave,   ///< one load-balancer wave (scope; arg: moves planned)
  epoch_advance,    ///< container epoch advance (arg: new epoch)
  tg_execute,       ///< task-graph execution phase (scope; arg: tasks run)
  fault_inject,     ///< fault-layer injection (arg: site<<8 | action bits)
  watchdog,         ///< hang watchdog fired on this location (arg: 0)
  demotion,         ///< straggler demoted from steal/balance (arg: location)
  repromotion,      ///< demoted straggler recovered (arg: location)
  kind_count_       ///< sentinel, keep last
};

/// Kinds recorded with a duration (Chrome "X") rather than as instants.
[[nodiscard]] constexpr bool is_scope(event_kind k) noexcept
{
  return k == event_kind::fence || k == event_kind::task_run ||
         k == event_kind::rebalance_wave || k == event_kind::tg_execute;
}

/// Stable display name of an event kind (used by the exporter and tests).
[[nodiscard]] char const* name_of(event_kind k) noexcept;

/// One recorded event.  32 bytes; rings are arrays of these.
struct event {
  std::uint64_t ts_us = 0;   ///< microseconds since the trace epoch
  std::uint64_t dur_us = 0;  ///< scope duration (0 for instants)
  std::uint64_t arg = 0;     ///< event-specific payload
  location_id loc = invalid_location;
  event_kind kind = event_kind::rmi_send;
};

namespace instrument_detail {
extern std::atomic<bool> g_trace_enabled;
extern std::atomic<std::uint64_t> g_kind_mask;
} // namespace instrument_detail

/// Whether tracing is on.  This is the only cost paid at every emit site
/// when tracing is disabled.
[[nodiscard]] inline bool enabled() noexcept
{
  return instrument_detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Mask bit of one event kind (for composing `enable` kind masks).
[[nodiscard]] constexpr std::uint64_t kind_bit(event_kind k) noexcept
{
  return std::uint64_t{1} << static_cast<unsigned>(k);
}

/// Mask selecting every event kind (the `enable` default).
inline constexpr std::uint64_t all_kinds =
    (std::uint64_t{1} << static_cast<unsigned>(event_kind::kind_count_)) - 1;

/// The active emit filter.  Events whose kind bit is clear are skipped at
/// the emit site (not recorded, not counted as dropped).
[[nodiscard]] inline std::uint64_t kind_mask() noexcept
{
  return instrument_detail::g_kind_mask.load(std::memory_order_relaxed);
}

/// Whether events of kind `k` are currently recorded — the hot-path test:
/// one relaxed load when disabled, plus one mask test when enabled.
[[nodiscard]] inline bool recording(event_kind k) noexcept
{
  return enabled() && (kind_mask() & kind_bit(k)) != 0;
}

/// Turns tracing on.  Rings are created lazily at `attach` with
/// `capacity_per_location` slots each; call outside (or between) SPMD
/// executions so every location attaches with tracing visible.
///
/// Overflow policy: with `keep_last == false` (default) a full ring keeps
/// the *first* `capacity` events and drops the tail; with `keep_last ==
/// true` the ring is circular — new events overwrite the oldest, so long
/// steady-state runs (serving loops, scaling sweeps) retain the most
/// recent window instead of the warm-up.  Drop counts are exact in both
/// modes: a keep-last overwrite counts the displaced event as dropped.
///
/// `kind_mask` filters at emit: only kinds whose `kind_bit` is set are
/// recorded (one mask test on the hot path), so a long serving run can
/// trace rebalance waves and fences without drowning in per-op rmi_send.
void enable(std::size_t capacity_per_location = std::size_t{1} << 16,
            bool keep_last = false, std::uint64_t kind_mask = all_kinds);

/// Turns tracing off.  Recorded events remain readable until `clear()`.
void disable();

/// Drops all recorded events, rings and drop counts.
void clear();

/// Binds the calling thread to location `id`'s ring (creating it on first
/// attach).  Called by the SPMD driver when a location thread starts; a
/// no-op when tracing is disabled.
void attach(location_id id);

/// Unbinds the calling thread from its ring (the ring itself persists for
/// dumping).
void detach();

/// Microseconds since the trace epoch (set at `enable`).
[[nodiscard]] std::uint64_t now_us() noexcept;

/// Records an instant event on the calling location's ring.  No-op when the
/// thread is not attached.  On a full ring the event is dropped and counted.
void emit(event_kind k, std::uint64_t arg = 0) noexcept;

/// Records a scope (complete) event with an explicit start and duration.
void emit_complete(event_kind k, std::uint64_t ts_us, std::uint64_t dur_us,
                   std::uint64_t arg = 0) noexcept;

/// Locations that have recorded (or attached) rings, ascending.
[[nodiscard]] std::vector<location_id> traced_locations();

/// Copy of the events currently held by `loc`'s ring, oldest first.  In
/// keep-first mode these are the first `capacity` events; in keep-last
/// mode the most recent `capacity` (overwritten events are gone and
/// counted in `dropped`).
[[nodiscard]] std::vector<event> events(location_id loc);

/// Total events recorded across all rings.
[[nodiscard]] std::uint64_t total_events();

/// Events dropped on `loc`'s ring because it was full.
[[nodiscard]] std::uint64_t dropped(location_id loc);

/// Total drops across all rings.
[[nodiscard]] std::uint64_t total_dropped();

/// Writes all recorded events as Chrome trace-event JSON ("traceEvents"
/// array; one pid/tid lane per location) — loadable in Perfetto or
/// chrome://tracing.  Returns false if the file cannot be written.
bool dump(std::string const& path);

/// Opens an incremental streaming sink: from now on, whenever a ring
/// fills, its events are flushed to `path` (Chrome trace-event JSON) and
/// the ring restarts empty — so a long run's trace lands on disk during
/// the run instead of dump-at-end, with no events dropped while the sink
/// is open.  Call `stream_close()` to flush the remaining ring contents
/// and finalize the file (the file is also valid mid-run: the array is
/// kept well-formed after every flush).  Returns false if the file cannot
/// be opened.  Streaming composes with the kind mask; `keep_last` rings
/// flush the same way (the circular window is linearized on flush).
bool stream_to(std::string const& path);

/// Flushes all rings and finalizes the streaming sink opened by
/// `stream_to`.  No-op when no sink is open.
void stream_close();

/// Whether a streaming sink is currently open.
[[nodiscard]] bool streaming();

/// Events written to the streaming sink so far (across all flushes).
[[nodiscard]] std::uint64_t streamed_events();

/// RAII timer emitting one scope event from construction to destruction.
/// Near-zero cost when tracing is disabled (one relaxed load).  A kind
/// masked out by `enable` deactivates the scope at construction, skipping
/// both clock reads.
class trace_scope {
 public:
  explicit trace_scope(event_kind k, std::uint64_t arg = 0) noexcept
      : m_kind(k), m_arg(arg), m_active(recording(k))
  {
    if (m_active)
      m_start = now_us();
  }

  trace_scope(trace_scope const&) = delete;
  trace_scope& operator=(trace_scope const&) = delete;

  /// Updates the argument recorded at scope exit (e.g. tasks run).
  void set_arg(std::uint64_t arg) noexcept { m_arg = arg; }

  ~trace_scope()
  {
    if (m_active)
      emit_complete(m_kind, m_start, now_us() - m_start, m_arg);
  }

 private:
  event_kind m_kind;
  std::uint64_t m_arg;
  std::uint64_t m_start = 0;
  bool m_active;
};

} // namespace trace

/// Emit hook used at every instrumented site: one relaxed atomic load when
/// tracing is disabled, a ring write when enabled.
#define STAPL_TRACE(...)                                                     \
  do {                                                                       \
    if (::stapl::trace::enabled())                                           \
      ::stapl::trace::emit(__VA_ARGS__);                                     \
  } while (0)

// ---------------------------------------------------------------------------
// metrics — unified named-counter registry
// ---------------------------------------------------------------------------

namespace metrics {

/// Ordered so snapshots print and compare deterministically.
using counter_map = std::map<std::string, std::uint64_t>;

/// Whether a snapshot key is additive across locations/executions.
/// Latency quantile keys ("lat.<family>.p99_ns" etc.) are gauges: summing
/// four locations' p99s is meaningless, so cross-location merges take the
/// max instead and the process accumulator recomputes them from the exact
/// merged histograms.  "coll.tree_depth" is likewise a gauge (the deepest
/// tree any location drove).  Counts and sums stay additive.
[[nodiscard]] inline bool sums_on_merge(std::string const& key) noexcept
{
  if (key == "coll.tree_depth")
    return false;
  if (key == "rmi.inbox_depth" || key == "rmi.deferred_depth")
    return false; // high-water gauges: the deepest backlog, not a sum
  if (key.rfind("lat.", 0) != 0)
    return true;
  auto const ends_with = [&key](char const* suffix) {
    std::string const s(suffix);
    return key.size() >= s.size() &&
           key.compare(key.size() - s.size(), s.size(), s) == 0;
  };
  return ends_with(".count") || ends_with(".sum_ns");
}

using contributor_id = std::uint64_t;

/// Registers a stats producer on the calling location thread.  `fold` adds
/// the producer's current counters into the map; `reset` zeroes them.
/// Producers register from their owning thread (constructor) and must
/// unregister (destructor) before dying.
contributor_id register_contributor(std::function<void(counter_map&)> fold,
                                    std::function<void()> reset);

/// Unregisters a producer, folding its final counter values into the
/// calling thread's accumulated map so they survive the producer.
void unregister_contributor(contributor_id id);

/// Adds directly into the calling thread's accumulated map (for one-shot
/// producers like a rebalance wave that has no live object to register).
void add(std::string const& name, std::uint64_t delta);

/// All counters visible to the calling location: finals of dead producers
/// plus a fold over every live contributor, plus "lat.<family>.*"
/// count/sum/quantile keys for every latency family this location has
/// recorded (see latency.hpp).
[[nodiscard]] counter_map snapshot();

/// Resets every live contributor and clears the accumulated finals —
/// the one-call replacement for the per-family piecemeal resets.  Also
/// bumps the latency reset epoch, clearing every location's latency
/// recorders (lazily) and re-baselining armed samplers, so back-to-back
/// bench sections don't bleed quantiles into each other.
void reset_all();

/// Per-thread idle-time counters fed by the runtime's wait loops
/// (deadline_backoff) and the task-graph executor naps, folded into
/// snapshots by the runtime contributor.
struct idle_counters {
  std::uint64_t spins = 0;   ///< yield-phase backoff iterations
  std::uint64_t sleeps = 0;  ///< sleep-phase backoff iterations
  std::uint64_t nap_us = 0;  ///< total napped microseconds
};

[[nodiscard]] inline idle_counters& idle() noexcept
{
  thread_local idle_counters c;
  return c;
}

/// Folds a (usually end-of-execution) snapshot into the process-wide
/// accumulator.  Called once per location at the end of every
/// `stapl::execute`; safe from any thread.
void fold_into_process(counter_map const& m);

/// Process-wide counter totals across all completed executions — what
/// bench_common embeds into every BENCH_*.json.
[[nodiscard]] counter_map process_totals();

} // namespace metrics

} // namespace stapl

#endif
