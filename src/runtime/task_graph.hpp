#ifndef STAPL_RUNTIME_TASK_GRAPH_HPP
#define STAPL_RUNTIME_TASK_GRAPH_HPP

// PARAGRAPH-style task-graph executor (dissertation Ch. III / Ch. VII): a
// pAlgorithm is a graph of *coarsened* tasks — one task per bView chunk, not
// one per location — with value-carrying dependence edges, run by a
// distributed executor with cross-location work stealing.
//
// Model
// -----
// The graph *descriptor* (task ids, owners, dependence edges, work
// functions) is replicated: every location adds the same tasks and edges in
// the same order, SPMD style.  What is NOT replicated is each task's
// *payload* (e.g. the GIDs of the chunk it processes): only the owner knows
// it.  This split is what makes stealing cheap — execution rights plus the
// payload travel in one message; the closure is already everywhere.
//
// The same split governs the spawn path.  Stealable chunk factories
// replicate only the chunk_wire metadata (owner, cached-at, digest
// bounds, byte/element counts — runtime/locality.hpp); GID payloads are
// run-length encoded (gid_sequence) and never replicated.  When a
// repartitioning view's chunk is produced on a location other than its
// owner, the producer forwards the payload point-to-point
// (forward_payload -> handle_payload) and the owner holds the task back
// from its ready queue until the payload lands.  task_graph_stats counts
// the spawn traffic (spawn_bytes, payload_forwards) so the metadata-only
// exchange stays observable.
//
// Value-carrying dependences
// --------------------------
// A task computes `E work(inputs, payload)`.  Its result is delivered to
// every successor's owner (slot order == add_dependence order), so
// tree-reduce and scan factories chain partial results through the graph
// instead of allgather+fence between phases.  Delivery reuses the
// pc_future-style state machine: values land in per-task input slots and
// the task becomes ready when the last slot fills.
//
// Work stealing
// -------------
// A task marked `stealable` (locality-free work, or a read-only chunk whose
// element accesses route through the shared-object view) may execute on any
// location.  An idle location asks a victim for work; victims are ranked by
// the locality metadata of the replicated descriptor (steal_victim_order in
// runtime/locality.hpp): peers owning stealable chunks annotated cached-at
// this location come first, then descending owned-task count.  A probe
// sticks to its victim while grants keep coming and advances on a nack.
// The victim grants the back *half* of its stealable ready tail in one
// message (steal-half): each granted task ships (task id, input values,
// payload) together, so a drained location rebalances in O(log) probes
// instead of one round trip per task.  The thief runs its own replica of
// the closure, delivers successor values itself, and sends the result back
// to the owner, which keeps the authoritative completion record (including
// *where* the task ran — the placement feedback consumed by
// lost_events()).  Non-stealable tasks never leave their owner.
//
// Termination
// -----------
// When a location's owned tasks are all complete it tells location 0; when
// all locations have quiesced, location 0 broadcasts done.  Locations keep
// stealing until the done flag arrives, and the trailing rmi_fence —
// the existing system-wide termination detection — drains every straggler
// (late steal requests, nacks, value deliveries), so the fence the
// executor already needed doubles as the steal-protocol shutdown.

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "locality.hpp"
#include "runtime.hpp"

namespace stapl {

/// Per-task scheduling options.  The locality fields are part of the
/// *replicated* descriptor (every location passes the same values), so the
/// executor can rank steal victims and report placement without touching
/// the owner-only payload.
struct task_options {
  /// True when the task may execute on any location: its work either
  /// touches no storage (locality-free) or reaches elements through the
  /// shared-object view, which routes correctly from anywhere.
  bool stealable = false;
  /// Peer believed to hold the task's chunk warm (chunk_descriptor hint);
  /// that location ranks the owner first among its steal victims.
  location_id cached_at = invalid_location;
  /// GID-digest range of the task's chunk (valid when has_digest): the
  /// coordinates of placement feedback (lost_events()).
  std::uint64_t digest_lo = 0;
  std::uint64_t digest_hi = 0;
  bool has_digest = false;
  /// Relative work estimate (the chunk descriptor's byte estimate, or any
  /// caller-chosen unit; 0 = unknown, counted as 1).  Steal-half grants
  /// split the ready tail by this weight, not by task count, so one huge
  /// chunk is not traded as if it equalled a tiny one.
  std::uint64_t weight = 0;
  /// True when the owner's payload arrives by a point-to-point
  /// forward_payload instead of add_task (a chunk produced on a location
  /// other than its owner).  Replicated like the rest of the options —
  /// every location passes owner != producer — but only the owner acts on
  /// it: the task stays out of the ready queue until handle_payload.
  bool payload_pending = false;
};

/// A distributed graph of coarsened tasks with value-carrying dependence
/// edges.  Construction is collective and replicated: every location adds
/// the same tasks and edges in the same order; each task's payload is
/// supplied by its owner only.  `E` is the dependence-edge value type
/// (default-constructible); `P` the owner-local payload type.
template <typename E, typename P = char>
class task_graph : public p_object {
 public:
  using task_id = std::size_t;
  using value_type = E;
  using payload_type = P;
  /// inputs arrive in add_dependence order; payload is the owner's (or the
  /// granted copy on a thief).
  using work_fn = std::function<E(std::vector<E> const&, P const&)>;

  task_graph()
      : m_metrics_id(metrics::register_contributor(
            [this](metrics::counter_map& m) {
              std::lock_guard lock(m_mutex);
              m["tg.tasks_run"] += m_stats.tasks_run;
              m["tg.tasks_stolen"] += m_stats.tasks_stolen;
              m["tg.tasks_lost"] += m_stats.tasks_lost;
              m["tg.steal_grants"] += m_stats.steal_grants;
              m["tg.steal_fail"] += m_stats.steal_fail;
              m["tg.values_sent"] += m_stats.values_sent;
              m["tg.spawn_bytes"] += m_stats.spawn_bytes;
              m["tg.payload_forwards"] += m_stats.payload_forwards;
            },
            [this] {
              std::lock_guard lock(m_mutex);
              m_stats = {};
            }))
  {}

  ~task_graph() override { metrics::unregister_contributor(m_metrics_id); }

  /// Adds a task owned by `owner`.  `payload` matters on the owner only.
  task_id add_task(location_id owner, work_fn work, P payload = P{},
                   task_options opts = {})
  {
    std::lock_guard lock(m_mutex);
    assert(!m_started && "graph is frozen once execute() begins");
    task_id const id = m_tasks.size();
    task tk;
    tk.work = std::move(work);
    tk.payload = std::move(payload);
    tk.owner = owner;
    tk.opts = opts;
    tk.awaiting_payload = opts.payload_pending;
    m_tasks.push_back(std::move(tk));
    if (opts.stealable)
      m_has_stealable = true;
    return id;
  }

  /// Producer-side half of the payload split: ships task `t`'s GID
  /// payload to its owner (the repartitioning-view case where the chunk
  /// was produced on a location that does not store it).  Call between
  /// add_task (with opts.payload_pending) and execute(); the owner holds
  /// the task until the payload lands.  Counts the packed payload bytes
  /// as spawn traffic.
  void forward_payload(task_id t, P payload)
  {
    location_id owner;
    {
      std::lock_guard lock(m_mutex);
      assert(t < m_tasks.size());
      assert(!m_started && "payloads are forwarded at spawn time");
      owner = m_tasks[t].owner;
      m_stats.payload_forwards += 1;
      std::size_t const bytes = packed_size(payload);
      m_stats.spawn_bytes += bytes;
      STAPL_TRACE(trace::event_kind::payload_forward, bytes);
    }
    assert(owner != this->get_location_id() &&
           "a local owner takes its payload through add_task");
    STAPL_FAULT_POINT(fault::site::tg_payload);
    async_rmi<task_graph>(owner, this->get_handle(),
                          &task_graph::handle_payload, t, std::move(payload));
  }

  /// Records spawn-path bytes this location shipped (the wire-form
  /// descriptor exchange of the chunk factories).
  void note_spawn_bytes(std::uint64_t n)
  {
    std::lock_guard lock(m_mutex);
    m_stats.spawn_bytes += n;
  }

  /// Declares that `succ` consumes `pred`'s value (as its next input slot).
  void add_dependence(task_id pred, task_id succ)
  {
    std::lock_guard lock(m_mutex);
    assert(pred < m_tasks.size() && succ < m_tasks.size());
    assert(!m_started && "graph is frozen once execute() begins");
    auto const slot = static_cast<std::uint32_t>(m_tasks[succ].n_inputs++);
    m_tasks[pred].succ_slots.emplace_back(succ, slot);
  }

  /// Enables/disables stealing for this graph (default on; call
  /// SPMD-consistently before execute()).
  void set_stealing(bool enable) noexcept { m_steal_enabled = enable; }

  [[nodiscard]] std::size_t num_tasks() const
  {
    std::lock_guard lock(m_mutex);
    return m_tasks.size();
  }

  /// True once the task completed (authoritative on the owner).
  [[nodiscard]] bool task_done(task_id t) const
  {
    std::lock_guard lock(m_mutex);
    return m_tasks[t].done;
  }

  /// Result value of a locally owned, completed task (valid after
  /// execute(); completion records carry the value home from thieves).
  [[nodiscard]] E const& result_of(task_id t) const
  {
    std::lock_guard lock(m_mutex);
    assert(m_tasks[t].owner == this->get_location_id() && m_tasks[t].done);
    return m_tasks[t].value;
  }

  [[nodiscard]] task_graph_stats const& stats() const noexcept
  {
    return m_stats;
  }

  /// One placement observation: an owned chunk task (with a GID digest)
  /// that completed on another location — its data is warm there now.
  struct placement_event {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    location_id ran_at = invalid_location;
  };

  /// Where this location's chunk tasks actually ran (valid after
  /// execute()): one event per owned, digest-carrying task that a thief
  /// executed.  Factories feed these back into the container's chunk
  /// affinity table, which stamps the next graph's cached_at hints.
  [[nodiscard]] std::vector<placement_event> lost_events() const
  {
    std::lock_guard lock(m_mutex);
    std::vector<placement_event> out;
    for (task const& tk : m_tasks) {
      if (tk.owner != this->get_location_id() || !tk.done)
        continue;
      if (!tk.opts.has_digest || tk.ran_at == invalid_location ||
          tk.ran_at == tk.owner)
        continue;
      out.push_back({tk.opts.digest_lo, tk.opts.digest_hi, tk.ran_at});
    }
    return out;
  }

  /// Field-wise sum of every location's counters.  Collective.
  [[nodiscard]] task_graph_stats global_stats() const
  {
    return allreduce(m_stats, [](task_graph_stats a,
                                 task_graph_stats const& b) {
      a += b;
      return a;
    });
  }

  /// Runs the graph to completion.  Collective; one-shot; ends with a
  /// fence.  Task work functions may invoke element methods (including
  /// synchronous ones — the executor polls) but must not fence.
  ///
  /// Two schedules, chosen from the (replicated) descriptor:
  ///  * local drain — no stealable task exists, so tasks only ever run on
  ///    their owner: each location drains its own ready queue, polling
  ///    for dependence values while stalled, and the trailing fence
  ///    completes the graph.  No termination-protocol traffic at all.
  ///  * steal mode — locations keep scheduling until the done broadcast:
  ///    they poll between tasks (so a busy victim grants steals
  ///    mid-stream) and probe victims while idle.
  void execute() { execute_impl(true); }

  /// Local-drain variant for *pure-read* factories: returns as soon as
  /// this location's tasks are done, without the trailing fence (outgoing
  /// dependence values are flushed so peers' polls retrieve them).  Only
  /// meaningful for graphs with no stealable tasks whose work performs no
  /// writes that later phases must observe; steal-mode graphs always
  /// fence.  Every message of the graph is addressed to a task that must
  /// complete before its owner exits, so no straggler can outlive the
  /// graph object.
  void execute_drain_only() { execute_impl(false); }

 private:
  void execute_impl(bool with_fence)
  {
    trace::trace_scope phase_scope(trace::event_kind::tg_execute);
    seed();
    runtime_detail::deadline_backoff bo("tg.execute");
    if (!m_steal_mode) {
      while (m_local_remaining != 0) {
        if (run_one()) {
          bo.reset();
          continue;
        }
        if (runtime_detail::poll_once()) {
          bo.reset();
          continue;
        }
        bo.pause();
      }
      if (with_fence)
        rmi_fence();
      else
        runtime_detail::flush_aggregation();
      return;
    }
    unsigned idle_rounds = 0;
    while (!m_done.load(std::memory_order_acquire)) {
      // Poll before each task so a busy victim services steal requests
      // and value deliveries between chunks, not only when it runs dry.
      bool const progressed = runtime_detail::poll_once();
      if (run_one() || progressed) {
        bo.reset();
        idle_rounds = 0;
        continue;
      }
      ++idle_rounds;
      maybe_steal(idle_rounds);
      if (m_steal_inflight.load(std::memory_order_acquire)) {
        // A probe is on the wire: the answer needs the *victim* to get
        // CPU time (it services probes between chunks).  Napping outright
        // beats the backoff's yield phase, which on an oversubscribed
        // host burns the very cycles the victim's wakeup is waiting for.
        metrics::idle().sleeps += 1;
        metrics::idle().nap_us += 50;
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        std::uint64_t const to = robust::probe_timeout_us();
        if (to != 0 && std::chrono::steady_clock::now() - m_probe_sent >
                           std::chrono::microseconds(to))
          on_probe_timeout();
        continue;
      }
      bool drained = false;
      {
        std::lock_guard lock(m_mutex);
        drained = !m_victims.empty() && m_fail_streak >= m_victims.size();
      }
      if (drained) {
        // Every victim just nacked: the system is drained (or one long
        // dependence chain is finishing elsewhere).  Sleep a poll
        // interval instead of lock-churning — stragglers land in the
        // inbox and are picked up at the next wake.
        metrics::idle().sleeps += 1;
        metrics::idle().nap_us += 200;
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        continue;
      }
      bo.pause();
    }
    rmi_fence();
  }

 public:
  // -------------------------------------------------------------------------
  // Message handlers (public: executed on remote representatives via ARMI)
  // -------------------------------------------------------------------------

  /// At the successor's owner: one input value arrived.  Under the direct
  /// transport a fast peer may deliver before this location finished
  /// building its replica; such values park in m_early until seed().
  void handle_value(task_id t, std::uint32_t slot, E v)
  {
    std::lock_guard lock(m_mutex);
    if (!m_started && t >= m_tasks.size()) {
      m_early.emplace_back(t, slot, std::move(v));
      return;
    }
    deliver_locked(t, slot, std::move(v));
  }

  /// At the owner: a producer forwarded the payload of our task `t`.
  /// Like handle_value, a fast peer may deliver before this location
  /// finished building its replica; such payloads park until seed().
  void handle_payload(task_id t, P payload)
  {
    std::lock_guard lock(m_mutex);
    if (!m_started && t >= m_tasks.size()) {
      m_early_payloads.emplace_back(t, std::move(payload));
      return;
    }
    accept_payload_locked(t, std::move(payload));
  }

  /// At the owner: `ran_at` finished our task; record result and placement.
  void handle_complete(task_id t, E v, location_id ran_at)
  {
    bool quiesced = false;
    {
      std::lock_guard lock(m_mutex);
      task& tk = m_tasks[t];
      assert(!tk.done);
      tk.done = true;
      tk.value = std::move(v);
      tk.ran_at = ran_at;
      m_stats.tasks_lost += 1;
      quiesced = (--m_local_remaining == 0);
    }
    if (quiesced)
      send_quiesced();
  }

  /// One granted task on the wire: execution rights, buffered inputs and
  /// the owner's payload travel together (the closure is replicated).
  struct stolen_task {
    task_id id = 0;
    std::vector<E> inputs;
    P payload{};

    /// Marshalable whenever the edge-value and payload types are, so the
    /// byte counters price a steal grant at its real wire footprint.
    void define_type(typer& t)
      requires(wire_measurable_v<E> && wire_measurable_v<P>)
    {
      t.member(id);
      t.member(inputs);
      t.member(payload);
    }
  };

  /// At a victim: `thief` wants work, carrying the weight of its own
  /// current ready backlog.  Steal-half: grant the back half of the
  /// stealable ready tail in one message, not one task per probe — a
  /// loaded victim sheds its backlog in O(log backlog) round trips.  The
  /// half is measured in task *weight* (the chunk descriptors' byte
  /// estimates) when the graph carries it, so a huge chunk is not traded
  /// as if it equalled a tiny one; weightless graphs split by count.
  /// The grant is capped by steal_grant_cap so a thief that still holds
  /// work cannot hoard more weight than the victim keeps (probes are
  /// normally sent idle-handed, but value deliveries can refill the
  /// thief while its probe is on the wire).
  void handle_steal_request(location_id thief, std::uint64_t thief_backlog)
  {
    // An injected grant-buffer allocation failure degrades to a nack: the
    // thief moves on, the victim keeps its backlog (act_stall naps here,
    // turning this victim into the straggler the probe-timeout detector
    // is aimed at).
    auto const fo = STAPL_FAULT(fault::site::tg_steal);
    bool const alloc_failed = (fo.actions & fault::act_alloc_fail) != 0;
    std::vector<stolen_task> grants;
    if (!alloc_failed) {
      std::lock_guard lock(m_mutex);
      std::vector<std::size_t> stealable;
      std::uint64_t avail_w = 0;
      for (std::size_t i = 0; i < m_ready.size(); ++i)
        if (!m_ready[i].stolen && m_tasks[m_ready[i].id].opts.stealable) {
          stealable.push_back(i);
          std::uint64_t const w = m_tasks[m_ready[i].id].opts.weight;
          avail_w += w == 0 ? 1 : w;
        }
      // Longest tail suffix whose weight stays within the hoarding cap.
      // Only an idle-handed thief gets the first task unconditionally
      // (the classic at-least-one floor); a loaded thief is capped
      // strictly, so one huge chunk cannot smuggle more weight past the
      // guard than the victim keeps.
      std::uint64_t const cap = steal_grant_cap(avail_w, thief_backlog);
      std::size_t take = 0;
      std::uint64_t granted_w = 0;
      for (std::size_t k = stealable.size(); cap != 0 && k != 0; --k) {
        std::uint64_t w =
            m_tasks[m_ready[stealable[k - 1]].id].opts.weight;
        w = w == 0 ? 1 : w;
        if ((take != 0 || thief_backlog != 0) && granted_w + w > cap)
          break;
        granted_w += w;
        take += 1;
      }
      if (take != 0) {
        // Grant the *tail* (the half farthest from being run here), in
        // queue order; compact the survivors front-to-back.
        std::size_t const first = stealable.size() - take;
        grants.reserve(take);
        for (std::size_t k = first; k < stealable.size(); ++k) {
          ready_item& item = m_ready[stealable[k]];
          task& tk = m_tasks[item.id];
          // Owned ready items keep their inputs in the task record; the
          // grant ships them (and the payload) to the thief.
          grants.push_back(stolen_task{item.id, std::move(tk.inputs),
                                       std::move(tk.payload)});
          item.granted = true;
        }
        std::deque<ready_item> keep;
        for (auto& item : m_ready)
          if (!item.granted)
            keep.push_back(std::move(item));
        m_ready = std::move(keep);
      }
    }
    // Answers carry the victim's identity: under the direct transport the
    // handler runs on the *victim's caller thread*, so the thief cannot
    // recover the answering location any other way — and the straggler
    // detector needs to know who answered to clear its strikes.
    location_id const victim = this->get_location_id();
    if (!grants.empty()) {
      async_rmi<task_graph>(thief, this->get_handle(),
                            &task_graph::handle_steal_grant,
                            std::move(grants), victim);
    } else {
      async_rmi<task_graph>(thief, this->get_handle(),
                            &task_graph::handle_steal_nack, victim);
    }
  }

  /// At the thief: granted tasks (each with its inputs and payload).
  void handle_steal_grant(std::vector<stolen_task> grants, location_id victim)
  {
    STAPL_TRACE(trace::event_kind::steal_grant, grants.size());
    note_victim_answered(victim);
    {
      std::lock_guard lock(m_mutex);
      m_stats.tasks_stolen += grants.size();
      m_stats.steal_grants += 1;
      for (auto& g : grants)
        m_ready.push_back(
            ready_item{g.id, true, false, std::move(g.inputs),
                       std::move(g.payload)});
      m_fail_streak = 0;
    }
    m_steal_inflight.store(false, std::memory_order_release);
  }

  /// At the thief: the victim had nothing stealable — move to the next
  /// victim in warmth order (a granting victim keeps being probed).
  void handle_steal_nack(location_id victim)
  {
    STAPL_TRACE(trace::event_kind::steal_nack);
    note_victim_answered(victim);
    {
      std::lock_guard lock(m_mutex);
      m_stats.steal_fail += 1;
      m_fail_streak += 1;
      m_victim_idx += 1;
    }
    m_steal_inflight.store(false, std::memory_order_release);
  }

  /// At location 0: one location's owned tasks all completed.
  void handle_quiesced()
  {
    if (++m_quiesced == this->get_num_locations())
      handle_done();
  }

  /// Everywhere: the whole graph completed; stop scheduling.  Completion
  /// fans out along a binomial tree rooted at location 0: each location
  /// relays to the ranks its subtree covers (id + 2^j for every 2^j below
  /// its own lowest set bit; all of them for location 0), so termination
  /// reaches P locations in ceil(log2 P) relay hops instead of P-1 sends
  /// from location 0.
  void handle_done()
  {
    if (m_done.exchange(true, std::memory_order_acq_rel))
      return;
    unsigned const p = this->get_num_locations();
    unsigned const v = this->get_location_id();
    unsigned limit = 1; // lowest set bit of v; past P for the root
    while (limit < p && (v & limit) == 0)
      limit <<= 1;
    for (unsigned m = limit >> 1; m != 0; m >>= 1) {
      if (v + m >= p)
        continue;
      async_rmi<task_graph>(v + m, this->get_handle(),
                            &task_graph::handle_done);
    }
  }

 private:
  struct task {
    work_fn work;
    P payload{};
    location_id owner = 0;
    task_options opts;
    /// (successor, input slot) pairs, in add_dependence order.
    std::vector<std::pair<task_id, std::uint32_t>> succ_slots;
    std::uint32_t n_inputs = 0;  ///< dependences declared on this replica
    std::uint32_t arrived = 0;   ///< input values delivered (owner side)
    std::vector<E> inputs;       ///< slot-indexed input values (owner side)
    E value{};                   ///< result (owner side, after completion)
    location_id ran_at = invalid_location;  ///< where it executed (owner side)
    bool queued = false;         ///< entered the ready queue
    bool done = false;           ///< completed (authoritative at owner)
    /// Owner side: a forwarded payload has not landed yet (gates the
    /// ready queue alongside the input slots).
    bool awaiting_payload = false;
  };

  struct ready_item {
    task_id id = 0;
    bool stolen = false;
    bool granted = false;   ///< scratch flag of the steal-half compaction
    std::vector<E> inputs;  ///< set for stolen items; owned items read the
                            ///< task record
    P payload{};            ///< set for stolen items
  };

  /// Requires m_mutex held.
  void deliver_locked(task_id t, std::uint32_t slot, E v)
  {
    assert(t < m_tasks.size());
    task& tk = m_tasks[t];
    if (tk.inputs.size() <= slot)
      tk.inputs.resize(slot + 1);
    tk.inputs[slot] = std::move(v);
    tk.arrived += 1;
    // Readiness is only decided once this location finished building its
    // replica (n_inputs is final then); seed() re-scans for early arrivals.
    if (m_started && tk.owner == this->get_location_id() &&
        tk.arrived == tk.n_inputs && !tk.awaiting_payload && !tk.queued) {
      tk.queued = true;
      m_ready.push_back(ready_item{t, false, false, {}, P{}});
    }
  }

  /// Requires m_mutex held.  Owner side of forward_payload: stores the
  /// payload and enqueues the task if it was only waiting on it.
  void accept_payload_locked(task_id t, P payload)
  {
    assert(t < m_tasks.size());
    task& tk = m_tasks[t];
    assert(tk.owner == this->get_location_id() &&
           "payload forwarded to a non-owner");
    tk.payload = std::move(payload);
    tk.awaiting_payload = false;
    if (m_started && tk.arrived == tk.n_inputs && !tk.queued) {
      tk.queued = true;
      m_ready.push_back(ready_item{t, false, false, {}, P{}});
    }
  }

  void seed()
  {
    bool quiesced = false;
    {
      std::lock_guard lock(m_mutex);
      assert(!m_started && "task_graph::execute() is one-shot");
      m_started = true;
      m_local_remaining = 0;
      for (auto& [t, slot, v] : m_early)
        deliver_locked(t, slot, std::move(v));
      m_early.clear();
      for (auto& [t, p] : m_early_payloads)
        accept_payload_locked(t, std::move(p));
      m_early_payloads.clear();
      for (task_id t = 0; t < m_tasks.size(); ++t) {
        task& tk = m_tasks[t];
        if (tk.owner != this->get_location_id())
          continue;
        m_local_remaining += 1;
        if (tk.arrived == tk.n_inputs && !tk.awaiting_payload &&
            !tk.queued) {
          tk.queued = true;
          m_ready.push_back(ready_item{t, false, false, {}, P{}});
        }
      }
      // Stealing needs the full protocol; a steal-free graph (the common
      // chunked-map default) runs in local-drain mode with no
      // termination traffic.  m_has_stealable is identical everywhere
      // when the descriptor is replicated, and local-only graphs never
      // mark tasks stealable, so the mode is SPMD-consistent.
      m_steal_mode = m_steal_enabled && m_has_stealable &&
                     this->get_num_locations() > 1;
      quiesced = m_steal_mode && m_local_remaining == 0;
      // Victim preference (locality-aware, from the replicated
      // descriptor): peers whose stealable chunks are annotated cached-at
      // this location first — stealing those re-touches data already warm
      // here — then descending owned-task count, ties toward lower id.
      if (m_steal_mode) {
        location_id const me = this->get_location_id();
        std::vector<std::size_t> owned(this->get_num_locations(), 0);
        std::vector<std::size_t> warmth(this->get_num_locations(), 0);
        for (auto const& tk : m_tasks) {
          owned[tk.owner] += 1;
          if (tk.opts.stealable && tk.opts.cached_at == me)
            warmth[tk.owner] += 1;
        }
        // Stragglers demoted in an earlier graph of this execution start
        // at the back of the order; a probe answer re-promotes them.
        m_victims = steal_victim_order(me, owned, warmth,
                                       robust::demoted_mask());
        m_strikes.assign(this->get_num_locations(), 0);
      }
    }
    if (quiesced)
      send_quiesced();
  }

  /// Runs one ready task; false when none is queued.
  bool run_one()
  {
    ready_item item;
    {
      std::lock_guard lock(m_mutex);
      if (m_ready.empty())
        return false;
      item = std::move(m_ready.front());
      m_ready.pop_front();
      if (!item.stolen) {
        task& tk = m_tasks[item.id];
        item.inputs = std::move(tk.inputs);
        item.payload = std::move(tk.payload);
      }
    }
    // The task vector is frozen during execution (add_task asserts), so the
    // record reference stays valid across the unlocked work invocation.
    task const& tk = m_tasks[item.id];
    E result = [&] {
      trace::trace_scope run_scope(trace::event_kind::task_run, item.id);
      latency::timed_op lat_scope(latency::op::tg_task);
      return tk.work(item.inputs, item.payload);
    }();

    for (auto const& [succ, slot] : tk.succ_slots) {
      location_id const so = m_tasks[succ].owner;
      if (so == this->get_location_id()) {
        handle_value(succ, slot, result);
      } else {
        m_stats.values_sent += 1;
        async_rmi<task_graph>(so, this->get_handle(),
                              &task_graph::handle_value, succ, slot, result);
      }
    }
    m_stats.tasks_run += 1;

    if (item.stolen) {
      async_rmi<task_graph>(tk.owner, this->get_handle(),
                            &task_graph::handle_complete, item.id,
                            std::move(result), this->get_location_id());
    } else {
      bool quiesced = false;
      {
        std::lock_guard lock(m_mutex);
        task& mine = m_tasks[item.id];
        mine.done = true;
        mine.value = std::move(result);
        mine.ran_at = this->get_location_id();
        quiesced = (--m_local_remaining == 0) && m_steal_mode;
      }
      if (quiesced)
        send_quiesced();
    }
    return true;
  }

  void maybe_steal(unsigned idle_rounds)
  {
    if (!m_steal_enabled || !m_has_stealable || m_victims.empty())
      return;
    if (m_done.load(std::memory_order_acquire))
      return;
    if (m_steal_inflight.load(std::memory_order_acquire))
      return;
    {
      std::lock_guard lock(m_mutex);
      // After a full circle of empty-handed requests, slow down: retry a
      // victim only every few idle rounds instead of hammering the system
      // while a dependence chain drains elsewhere.
      if (m_fail_streak >= m_victims.size() && idle_rounds % 32 != 0)
        return;
    }
    m_steal_inflight.store(true, std::memory_order_release);
    location_id victim;
    std::uint64_t backlog = 0;
    {
      std::lock_guard lock(m_mutex);
      // Sticky pointer into the warmth-ordered victim list: a granting
      // victim keeps being probed (its backlog halves per grant); nacks
      // advance the pointer (handle_steal_nack).
      victim = m_victims[m_victim_idx % m_victims.size()];
      // The probe carries this location's current ready-backlog weight
      // (usually 0 — probes go out idle-handed — but value deliveries
      // can refill the queue between run_one() and here): the victim
      // caps its grant so we cannot hoard more than it keeps.
      for (auto const& item : m_ready) {
        std::uint64_t const w = m_tasks[item.id].opts.weight;
        backlog += w == 0 ? 1 : w;
      }
    }
    STAPL_TRACE(trace::event_kind::steal_probe, victim);
    m_probe_victim = victim;
    m_probe_sent = std::chrono::steady_clock::now();
    async_rmi<task_graph>(victim, this->get_handle(),
                          &task_graph::handle_steal_request,
                          this->get_location_id(), backlog);
  }

  /// A probe answer arrived from `victim`: clear its strikes, and if an
  /// earlier timeout demoted it, re-promote — the straggler recovered.
  /// Only the executor thread and its own inbound handlers touch the
  /// strike table under m_mutex.
  void note_victim_answered(location_id victim)
  {
    bool repromoted = false;
    {
      std::lock_guard lock(m_mutex);
      if (victim < m_strikes.size())
        m_strikes[victim] = 0;
    }
    repromoted = robust::promote(victim);
    if (repromoted) {
      robust::tl().repromotions += 1;
      STAPL_TRACE(trace::event_kind::repromotion, victim);
    }
  }

  /// The in-flight probe to m_probe_victim went unanswered past the
  /// timeout: strike the victim (demoting it after demote_after strikes),
  /// advance past it, and clear the in-flight flag so scheduling resumes.
  /// The late answer — probes are never lost on these transports, only
  /// slow — stays benign: a grant still adds its tasks, a nack advances
  /// the pointer once more, and either clears the strikes again.
  void on_probe_timeout()
  {
    location_id const victim = m_probe_victim;
    robust::tl().probe_timeouts += 1;
    bool demoted_now = false;
    {
      std::lock_guard lock(m_mutex);
      if (victim < m_strikes.size() &&
          ++m_strikes[victim] >= robust::demote_after())
        demoted_now = robust::demote(victim);
      // Give up on the straggler for now: move it to the back of the
      // probe order and advance, exactly as a nack would.
      auto it = std::find(m_victims.begin(), m_victims.end(), victim);
      if (it != m_victims.end())
        std::rotate(it, it + 1, m_victims.end());
      m_stats.steal_fail += 1;
      m_fail_streak += 1;
      m_victim_idx += 1;
      m_probe_sent = std::chrono::steady_clock::now(); // re-arm the clock
    }
    if (demoted_now) {
      robust::tl().demotions += 1;
      STAPL_TRACE(trace::event_kind::demotion, victim);
    }
    m_steal_inflight.store(false, std::memory_order_release);
  }

  void send_quiesced()
  {
    if (this->get_location_id() == 0) {
      handle_quiesced();
      return;
    }
    async_rmi<task_graph>(0, this->get_handle(), &task_graph::handle_quiesced);
  }

  mutable std::mutex m_mutex;
  std::vector<task> m_tasks;
  /// Values that arrived before this replica's construction finished.
  std::vector<std::tuple<task_id, std::uint32_t, E>> m_early;
  /// Forwarded payloads that outran this replica's construction.
  std::vector<std::pair<task_id, P>> m_early_payloads;
  std::deque<ready_item> m_ready;
  std::vector<location_id> m_victims;  ///< steal order (warmth, then load)
  std::size_t m_victim_idx = 0;        ///< advances on nack (sticky on grant)
  /// Straggler detector: per-victim unanswered-probe strikes, plus the
  /// send time and target of the probe currently in flight (executor
  /// thread only).
  std::vector<unsigned> m_strikes;
  std::chrono::steady_clock::time_point m_probe_sent{};
  location_id m_probe_victim = invalid_location;
  std::size_t m_local_remaining = 0;
  std::size_t m_fail_streak = 0;
  bool m_started = false;
  bool m_steal_enabled = true;
  bool m_has_stealable = false;
  bool m_steal_mode = false;  ///< decided in seed() from the descriptor
  std::atomic<bool> m_steal_inflight{false};
  std::atomic<bool> m_done{false};
  std::atomic<unsigned> m_quiesced{0};  ///< location 0 only
  task_graph_stats m_stats;
  metrics::contributor_id m_metrics_id;
};

// ---------------------------------------------------------------------------
// Coarsening heuristic and execution policy
// ---------------------------------------------------------------------------

/// Elements per chunk task when the caller does not choose: aim for several
/// tasks per location so the tail can be stolen/overlapped, but never chunks
/// so small that per-task overhead shows.  Seeded from the container size
/// and num_locations() (Ch. VII granularity discussion; cf. sptl's
/// granularity control).
[[nodiscard]] inline std::size_t default_grain(std::size_t total_elements)
{
  constexpr std::size_t tasks_per_location = 8;
  constexpr std::size_t min_grain = 512;
  std::size_t const per_loc =
      total_elements / std::max(1u, num_locations());
  return std::max<std::size_t>(min_grain,
                               per_loc / tasks_per_location);
}

/// How a chunked factory schedules its tasks.
struct exec_policy {
  std::size_t grain = 0;  ///< elements per chunk task (0 = default_grain)
  /// Chunk tasks may execute on any location when true.  Off by default:
  /// every chunk then runs on its bView's location, preserving the
  /// classic per-location execution contract even for work functions
  /// with location-local side effects.  Opt in for locality-free or
  /// read-only chunks whose per-element work dwarfs routed element
  /// access — the work-stealing candidates of the PARAGRAPH model.
  bool stealable = false;
  bool steal = true;  ///< executor-wide stealing toggle for this graph
};

namespace tg_detail {

/// View whose elements have a local fast path (chunks of such views stay on
/// their owner unless the caller opts in — remote fallback access would
/// dominate stolen-chunk runtime for cheap work functions).
template <typename V>
concept locality_bound_view = requires(V v, typename V::gid_type g) {
  { v.try_local_ref(g) };
};

/// Result type of a map functor invocable as mapf(gid, value) or
/// mapf(value).
template <typename Map, typename G, typename V>
struct map_result {
  static auto probe()
  {
    if constexpr (std::is_invocable_v<Map&, G, V>)
      return std::type_identity<std::invoke_result_t<Map&, G, V>>{};
    else
      return std::type_identity<std::invoke_result_t<Map&, V>>{};
  }
  using type = typename decltype(probe())::type;
};

template <typename V>
concept has_member_chunks = requires(V v, std::size_t g) {
  { v.chunks(g) };
};

/// Splits an ordered GID sequence into contiguous runs of ~grain elements
/// (building block of the descriptor producers; algorithms never consume
/// raw runs directly — they go through chunk descriptors).
template <typename G>
[[nodiscard]] std::vector<std::vector<G>> chunk_gids(std::vector<G> gids,
                                                     std::size_t grain)
{
  std::vector<std::vector<G>> out;
  if (gids.empty())
    return out;
  grain = std::max<std::size_t>(1, grain);
  out.reserve((gids.size() + grain - 1) / grain);
  for (std::size_t i = 0; i < gids.size(); i += grain) {
    std::size_t const n = std::min(grain, gids.size() - i);
    out.emplace_back(gids.begin() + static_cast<std::ptrdiff_t>(i),
                     gids.begin() + static_cast<std::ptrdiff_t>(i + n));
  }
  return out;
}

/// Wraps contiguous GID runs into chunk descriptors owned by this location
/// (the fallback producer for views without locality knowledge of their
/// own; container-backed views stamp owner/cached_at/bytes themselves).
template <typename G>
[[nodiscard]] std::vector<chunk_descriptor<G>>
make_descriptors(std::vector<std::vector<G>> runs, std::size_t elem_bytes)
{
  std::vector<chunk_descriptor<G>> out;
  out.reserve(runs.size());
  for (auto& r : runs) {
    chunk_descriptor<G> d;
    d.bytes = static_cast<std::uint64_t>(r.size()) * elem_bytes;
    d.gids.assign(std::move(r));
    d.owner = this_location();
    out.push_back(std::move(d));
  }
  return out;
}

/// This location's bView, coarsened into chunk descriptors: the view's own
/// chunks(grain) when it has one, else descriptor-wrapped fixed-size runs
/// of local_gids().
template <typename V>
[[nodiscard]] auto view_chunks(V const& v, std::size_t grain)
{
  if constexpr (has_member_chunks<V>)
    return v.chunks(grain);
  else
    return make_descriptors(chunk_gids(v.local_gids(), grain),
                            sizeof(typename V::value_type));
}

/// Elements per chunk task for this call: the explicit policy grain wins;
/// otherwise default_grain, filtered through the view's (container's)
/// adaptive grain hint when it has one — the feedback loop closed by
/// note_task_graph_stats below.
template <typename V>
[[nodiscard]] std::size_t effective_grain(V const& v, exec_policy const& pol)
{
  if (pol.grain != 0)
    return std::max<std::size_t>(1, pol.grain);
  std::size_t g = default_grain(v.size());
  if constexpr (requires {
                  { v.tuned_grain(g) } -> std::convertible_to<std::size_t>;
                }) {
    g = v.tuned_grain(g);
  }
  return std::max<std::size_t>(1, g);
}

/// Replicated task_options off a chunk's wire form — the only descriptor
/// half peers ever see, so placement, victim ranking and the affinity
/// feedback all read their digests from it.
[[nodiscard]] inline task_options wire_options(chunk_wire const& w,
                                               bool stealable)
{
  task_options o;
  o.stealable = stealable;
  o.cached_at = w.cached_at;
  o.weight = w.bytes != 0 ? w.bytes : w.elements;
  if (w.has_digest) {
    o.digest_lo = w.digest_lo;
    o.digest_hi = w.digest_hi;
    o.has_digest = true;
  }
  return o;
}

/// Replicated task_options for one chunk descriptor.
template <typename G>
[[nodiscard]] task_options chunk_options(chunk_descriptor<G> const& d,
                                         bool stealable)
{
  return wire_options(d.wire(), stealable);
}

/// Spawns one chunk task off its replicated wire form — the one idiom
/// every split spawn site shares.  `producer` is the location whose
/// exchange slot the wire came from; `local` is this location's own
/// descriptor array (indexed by `k`), consulted only when this location
/// is the producer: it attaches the payload through add_task when it
/// also owns the chunk, and forwards it point-to-point otherwise, with
/// every replica marking the task payload-pending in that case so the
/// owner holds it until the payload lands.
template <typename TG, typename Work, typename G>
typename TG::task_id
spawn_chunk_task(TG& tg, chunk_wire const& w, location_id producer,
                 std::size_t k, std::vector<chunk_descriptor<G>>& local,
                 Work const& work, bool stealable)
{
  task_options opts = wire_options(w, stealable);
  opts.payload_pending = w.owner != producer;
  bool const mine = producer == this_location();
  auto const id =
      mine && w.owner == producer
          ? tg.add_task(w.owner, work, std::move(local[k].gids), opts)
          : tg.add_task(w.owner, work, {}, opts);
  if (mine && w.owner != producer)
    tg.forward_payload(id, std::move(local[k].gids));
  return id;
}

/// The metadata-only spawn exchange: allgathers the wire forms of this
/// location's descriptors — owner, cached-at, digest bounds, byte and
/// element counts, never the GID runs — and counts what a network
/// transport would have shipped to the P-1 peers into `bytes_out`.  The
/// payloads stay behind in `local`, to be attached by add_task when this
/// location owns the chunk or forwarded point-to-point when it does not.
template <typename G>
[[nodiscard]] std::vector<std::vector<chunk_wire>>
exchange_wire_forms(std::vector<chunk_descriptor<G>> const& local,
                    std::uint64_t& bytes_out)
{
  std::vector<chunk_wire> wires;
  wires.reserve(local.size());
  for (auto const& d : local)
    wires.push_back(d.wire());
  bytes_out = static_cast<std::uint64_t>(packed_size(wires)) *
              (num_locations() - 1);
  return allgather(wires);
}

/// Closes the feedback loops after a steal-mode graph: the executor's
/// steal/idle counters tune the container's grain hint, and lost-chunk
/// placement events warm its affinity table (the source of the next
/// graph's cached_at hints).  No-op for views without the hooks.
template <typename V, typename TG>
void feed_back_execution(V const& v, TG const& tg)
{
  if constexpr (requires { v.note_task_graph_stats(tg.stats()); })
    v.note_task_graph_stats(tg.stats());
  if constexpr (requires {
                  v.note_chunk_placement(std::uint64_t{}, std::uint64_t{},
                                         location_id{});
                }) {
    for (auto const& e : tg.lost_events())
      v.note_chunk_placement(e.lo, e.hi, e.ran_at);
  }
}

/// Whether this call's chunk tasks are steal candidates: strictly opt-in
/// (see exec_policy::stealable) — the policy object is where callers
/// declare their chunks locality-free/read-only enough to travel.
template <typename V>
[[nodiscard]] bool stealable_for(exec_policy const& pol)
{
  return pol.stealable;
}

/// Builds and runs one chunk-task graph over `v`: `body(gid)` per element.
/// When the chunks are stealable, only the chunk *wire forms* are
/// allgathered — enough for every location to replicate the graph
/// descriptor (task ids, owners, locality annotations) and spawn each
/// chunk task on its descriptor's owner, which may differ from the
/// location that produced it (a repartitioning view whose deal crosses
/// the storage distribution).  The run-encoded GID payload never rides
/// the allgather: a producer that owns its chunk attaches the payload
/// through add_task, and a producer that does not forwards it
/// point-to-point (forward_payload), with the owner holding the task
/// until it lands.  In the default non-stealable case no location ever
/// references another location's tasks, so each builds only its own
/// chunk tasks — no metadata exchange at all — and the executor's
/// local-drain schedule plus trailing fence match the classic
/// one-task-per-location map.
template <typename View, typename PerGid>
void chunked_for_each_gid(View const& v, exec_policy pol, PerGid body)
{
  using gid_type = typename View::gid_type;
  std::size_t const grain = effective_grain(v, pol);
  bool const steal_chunks = stealable_for<View>(pol) && pol.steal &&
                            num_locations() > 1;
  // One work-function instance per location, shared by its chunk tasks (and
  // by any replica a thief runs), so stateful work functions behave as they
  // did with one task per location.
  auto shared_body = std::make_shared<PerGid>(std::move(body));
  if (!steal_chunks) {
    // Local chunk tasks over index ranges of one shared bView snapshot —
    // no payload copies, no descriptor replication (see above).
    auto const gids =
        std::make_shared<std::vector<gid_type>>(v.local_gids());
    task_graph<char> tg;
    tg.set_stealing(false);
    std::size_t const n = gids->size();
    for (std::size_t i = 0; i < n; i += grain) {
      std::size_t const e = std::min(n, i + grain);
      tg.add_task(this_location(),
                  [gids, shared_body, i, e](std::vector<char> const&,
                                            char const&) {
                    for (std::size_t j = i; j != e; ++j)
                      (*shared_body)((*gids)[j]);
                    return char{};
                  });
    }
    tg.execute();
    return;
  }
  auto work = [shared_body](std::vector<char> const&,
                            gid_sequence<gid_type> const& gids) {
    gids.for_each([&](gid_type const& g) { (*shared_body)(g); });
    return char{};
  };
  task_graph<char, gid_sequence<gid_type>> tg;
  tg.set_stealing(pol.steal);
  auto local = view_chunks(v, grain);
  std::uint64_t wire_bytes = 0;
  auto all = exchange_wire_forms(local, wire_bytes);
  tg.note_spawn_bytes(wire_bytes);
  for (location_id l = 0; l < num_locations(); ++l)
    for (std::size_t k = 0; k < all[l].size(); ++k)
      spawn_chunk_task(tg, all[l][k], l, k, local, work, true);
  tg.execute();
  feed_back_execution(v, tg);
}

} // namespace tg_detail

// ---------------------------------------------------------------------------
// map_func — the Ch. VII.A elementary factory, coarsened
// ---------------------------------------------------------------------------

/// Applies `wf` to every element of the view as chunk tasks (many per
/// location).  Collective; ends with a fence and the view's post_execute.
template <typename WF, typename View>
void map_func(WF wf, View v, exec_policy pol = {})
{
  auto shared_wf = std::make_shared<WF>(std::move(wf));
  tg_detail::chunked_for_each_gid(
      v, pol, [shared_wf, v](typename View::gid_type g) mutable {
        auto f = [&](auto& x) { (*shared_wf)(x); };
        if constexpr (tg_detail::locality_bound_view<View>) {
          if (auto* p = v.try_local_ref(g)) {
            f(*p);
            return;
          }
        }
        auto x = v.read(g);
        f(x);
        if constexpr (requires { v.write(g, x); })
          v.write(g, x);
      });
  v.post_execute();
}

// ---------------------------------------------------------------------------
// tree_reduce — map_reduce as a dependence tree (no intermediate fences)
// ---------------------------------------------------------------------------

/// Reduces mapf(element) over the whole view with `redf` (associative).
/// Leaf chunk tasks fold locally and feed a per-location partial task;
/// the root folds the partials in location order — the same fold order an
/// allgather-based combine would use — and per-location sink tasks fan the
/// result out, so every location returns the value with exactly two
/// cross-location value hops and no broadcast.  `mapf` is invoked as
/// mapf(value) or mapf(gid, value).  In the default non-stealable case
/// leaves are index ranges over one shared bView snapshot (no payload
/// copies) and the pure-read graph skips the trailing fence; stealable
/// leaves carry their chunk GIDs so thieves can run them.  Returns
/// nullopt for empty views.  Collective.
template <typename View, typename Map, typename Reduce>
[[nodiscard]] auto tree_reduce(View v, Map mapf, Reduce redf,
                               exec_policy pol = {})
{
  using gid_type = typename View::gid_type;
  using T = typename tg_detail::map_result<Map, gid_type,
                                           typename View::value_type>::type;
  using EV = std::pair<T, bool>;  ///< (partial, nonempty)

  std::size_t const grain = tg_detail::effective_grain(v, pol);
  bool const steal_chunks = tg_detail::stealable_for<View>(pol) &&
                            pol.steal && num_locations() > 1;

  auto fold_one = [v, mapf, redf](EV acc, gid_type const& g) mutable {
    T m = [&]() -> T {
      if constexpr (std::is_invocable_v<Map&, gid_type,
                                        typename View::value_type>)
        return mapf(g, v.read(g));
      else
        return mapf(v.read(g));
    }();
    if (!acc.second)
      return EV{std::move(m), true};
    return EV{redf(std::move(acc.first), std::move(m)), true};
  };
  auto combine_work = [redf](std::vector<EV> const& ins, auto const&) {
    EV out{T{}, false};
    for (auto const& in : ins) {
      if (!in.second)
        continue;
      out = out.second ? EV{redf(out.first, in.first), true} : in;
    }
    return out;
  };
  auto sink_work = [](std::vector<EV> const& ins, auto const&) {
    return ins.at(0);
  };

  // Two-level combine tree over the (replicated) leaf ids: leaves ->
  // per-location partial -> root (location order) -> per-location sinks.
  auto wire = [&](auto& tg, std::vector<std::size_t> const& counts,
                  auto&& leaf_for) {
    using tid = typename std::remove_reference_t<decltype(tg)>::task_id;
    std::vector<tid> partials;
    for (location_id l = 0; l < num_locations(); ++l) {
      std::vector<tid> leaves;
      for (std::size_t k = 0; k < counts[l]; ++k)
        leaves.push_back(leaf_for(l, k));
      tid const partial = tg.add_task(l, combine_work);
      for (tid const leaf : leaves)
        tg.add_dependence(leaf, partial);
      partials.push_back(partial);
    }
    tid const root = tg.add_task(0, combine_work);
    for (tid const partial : partials)
      tg.add_dependence(partial, root);
    std::vector<tid> sinks;
    for (location_id l = 0; l < num_locations(); ++l) {
      tid const s = tg.add_task(l, sink_work);
      tg.add_dependence(root, s);
      sinks.push_back(s);
    }
    return sinks;
  };

  if (!steal_chunks) {
    auto const gids =
        std::make_shared<std::vector<gid_type>>(v.local_gids());
    std::size_t const n = gids->size();
    auto const counts = allgather((n + grain - 1) / grain);
    std::size_t total = 0;
    for (auto c : counts)
      total += c;
    if (total == 0)
      return std::optional<T>{};
    task_graph<EV> tg;
    tg.set_stealing(false);
    auto leaf_for = [&](location_id l, std::size_t k) {
      if (l != this_location()) {
        // Placeholder replica of a peer's owner-pinned leaf: keeps task
        // ids aligned across locations, never runs.
        return tg.add_task(l, [](std::vector<EV> const&, char const&) {
          return EV{T{}, false};
        });
      }
      std::size_t const b = k * grain;
      std::size_t const e = std::min(n, b + grain);
      return tg.add_task(
          l, [gids, fold_one, b, e](std::vector<EV> const&,
                                    char const&) mutable {
            EV acc{T{}, false};
            for (std::size_t j = b; j != e; ++j)
              acc = fold_one(std::move(acc), (*gids)[j]);
            return acc;
          });
    };
    auto const sinks = wire(tg, counts, leaf_for);
    tg.execute_drain_only();
    EV const out = tg.result_of(sinks[this_location()]);
    return out.second ? std::optional<T>(out.first) : std::optional<T>{};
  }

  // Stealable leaves: replicate only the wire forms — every location can
  // place each leaf on its descriptor's owner and annotate it for
  // locality-aware stealing off the metadata alone; GID payloads attach
  // locally (producer == owner) or travel point-to-point
  // (forward_payload) when a repartitioning deal separates the two.
  auto local = tg_detail::view_chunks(v, grain);
  std::uint64_t wire_bytes = 0;
  auto all = tg_detail::exchange_wire_forms(local, wire_bytes);
  std::vector<std::size_t> counts;
  counts.reserve(all.size());
  std::size_t total = 0;
  for (auto const& wires : all) {
    counts.push_back(wires.size());
    total += wires.size();
  }
  if (total == 0)
    return std::optional<T>{};
  task_graph<EV, gid_sequence<gid_type>> tg;
  tg.set_stealing(pol.steal);
  tg.note_spawn_bytes(wire_bytes);
  auto leaf_work = [fold_one](std::vector<EV> const&,
                              gid_sequence<gid_type> const& gs) mutable {
    EV acc{T{}, false};
    gs.for_each(
        [&](gid_type const& g) { acc = fold_one(std::move(acc), g); });
    return acc;
  };
  auto leaf_for = [&](location_id l, std::size_t k) {
    return tg_detail::spawn_chunk_task(tg, all[l][k], l, k, local,
                                       leaf_work, true);
  };
  auto const sinks = wire(tg, counts, leaf_for);
  tg.execute();
  tg_detail::feed_back_execution(v, tg);
  EV const out = tg.result_of(sinks[this_location()]);
  return out.second ? std::optional<T>(out.first) : std::optional<T>{};
}

} // namespace stapl

#endif
