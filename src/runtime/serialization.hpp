#ifndef STAPL_RUNTIME_SERIALIZATION_HPP
#define STAPL_RUNTIME_SERIALIZATION_HPP

// Marshaling substrate (dissertation Ch. V.G.1, Fig. 14).
//
// Classes participate in marshaling by exposing
//   void define_type(stapl::typer& t);
// which registers every data member with the typer.  The same definition
// drives three passes: size computation, packing and unpacking, exactly like
// the RTS typer the paper describes.  Built-in support is provided for
// trivially copyable types, std::string, std::pair, std::vector, std::list,
// std::deque, std::map and std::unordered_map.

#include <cstddef>
#include <cstring>
#include <deque>
#include <list>
#include <map>
#include <span>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

namespace stapl {

class typer;

namespace detail {

template <typename T>
concept has_define_type = requires(T& t, typer& ty) { t.define_type(ty); };

template <typename T>
concept trivially_packable =
    std::is_trivially_copyable_v<T> && !has_define_type<T>;

} // namespace detail

/// Three-pass marshaler.  A `define_type` implementation calls
/// `t.member(x)` for each data member; the typer either measures, writes or
/// reads the bytes depending on its mode.
class typer {
 public:
  enum class pass { size, pack, unpack };

  explicit typer(pass p) noexcept : m_pass(p) {}
  typer(pass p, std::vector<std::byte>& buf) noexcept
      : m_pass(p), m_buffer(&buf)
  {}
  typer(pass p, std::span<const std::byte> in) noexcept : m_pass(p), m_input(in)
  {}

  [[nodiscard]] pass mode() const noexcept { return m_pass; }
  [[nodiscard]] std::size_t size() const noexcept { return m_size; }

  // -- scalar / trivially copyable members ---------------------------------
  template <detail::trivially_packable T>
  void member(T& t)
  {
    raw(&t, sizeof(T));
  }

  /// C-array of trivially copyable elements.
  template <detail::trivially_packable T, std::size_t N>
  void member(T (&arr)[N])
  {
    raw(arr, sizeof(T) * N);
  }

  // -- user classes with define_type ---------------------------------------
  template <detail::has_define_type T>
  void member(T& t)
  {
    t.define_type(*this);
  }

  // -- standard library types ----------------------------------------------
  void member(std::string& s)
  {
    auto n = pack_size(s.size());
    if (m_pass == pass::unpack)
      s.resize(n);
    if (n != 0)
      raw(s.data(), n);
  }

  template <typename A, typename B>
  void member(std::pair<A, B>& p)
  {
    member(p.first);
    member(p.second);
  }

  template <typename T>
  void member(std::vector<T>& v)
  {
    sequence(v);
  }

  template <typename T>
  void member(std::list<T>& v)
  {
    sequence(v);
  }

  template <typename T>
  void member(std::deque<T>& v)
  {
    sequence(v);
  }

  template <typename K, typename V, typename C>
  void member(std::map<K, V, C>& m)
  {
    associative(m);
  }

  template <typename K, typename V, typename H, typename E>
  void member(std::unordered_map<K, V, H, E>& m)
  {
    associative(m);
  }

 private:
  template <typename Seq>
  void sequence(Seq& v)
  {
    auto n = pack_size(v.size());
    if (m_pass == pass::unpack) {
      v.clear();
      for (std::size_t i = 0; i != n; ++i) {
        typename Seq::value_type x{};
        member(x);
        v.push_back(std::move(x));
      }
    } else {
      for (auto& x : v)
        member(x);
    }
  }

  template <typename M>
  void associative(M& m)
  {
    auto n = pack_size(m.size());
    if (m_pass == pass::unpack) {
      m.clear();
      for (std::size_t i = 0; i != n; ++i) {
        std::remove_const_t<typename M::key_type> k{};
        typename M::mapped_type v{};
        member(k);
        member(v);
        m.emplace(std::move(k), std::move(v));
      }
    } else {
      for (auto& [k, v] : m) {
        auto key = k; // keys are stored const inside the map
        member(key);
        member(v);
      }
    }
  }

  /// Handles the element-count prefix of variable-size members.
  [[nodiscard]] std::size_t pack_size(std::size_t n)
  {
    std::uint64_t count = n;
    raw(&count, sizeof(count));
    return static_cast<std::size_t>(count);
  }

  void raw(void* p, std::size_t n)
  {
    switch (m_pass) {
      case pass::size:
        m_size += n;
        break;
      case pass::pack: {
        auto const* b = static_cast<std::byte const*>(p);
        m_buffer->insert(m_buffer->end(), b, b + n);
        break;
      }
      case pass::unpack:
        std::memcpy(p, m_input.data() + m_cursor, n);
        m_cursor += n;
        break;
    }
  }

  pass m_pass;
  std::size_t m_size = 0;
  std::vector<std::byte>* m_buffer = nullptr;
  std::span<const std::byte> m_input;
  std::size_t m_cursor = 0;
};

namespace detail {

/// Deep compile-time test of "the typer can marshal T": unlike probing
/// `typer::member(t)` (which accepts any std::vector shallowly and then
/// fails inside), this recurses into the element types of the supported
/// containers, so callers can fall back to sizeof for unmarshalable
/// payloads (e.g. closures) without a hard error.
template <typename T>
struct is_wire_measurable
    : std::bool_constant<trivially_packable<T> || has_define_type<T>> {};

template <>
struct is_wire_measurable<std::string> : std::true_type {};

template <typename A, typename B>
struct is_wire_measurable<std::pair<A, B>>
    : std::bool_constant<is_wire_measurable<A>::value &&
                         is_wire_measurable<B>::value> {};

template <typename T, typename A>
struct is_wire_measurable<std::vector<T, A>> : is_wire_measurable<T> {};

template <typename T, typename A>
struct is_wire_measurable<std::list<T, A>> : is_wire_measurable<T> {};

template <typename T, typename A>
struct is_wire_measurable<std::deque<T, A>> : is_wire_measurable<T> {};

template <typename K, typename V, typename C, typename A>
struct is_wire_measurable<std::map<K, V, C, A>>
    : std::bool_constant<is_wire_measurable<K>::value &&
                         is_wire_measurable<V>::value> {};

template <typename K, typename V, typename H, typename E, typename A>
struct is_wire_measurable<std::unordered_map<K, V, H, E, A>>
    : std::bool_constant<is_wire_measurable<K>::value &&
                         is_wire_measurable<V>::value> {};

} // namespace detail

/// True when `packed_size`/`pack` can marshal a T.
template <typename T>
inline constexpr bool wire_measurable_v = detail::is_wire_measurable<T>::value;

/// Number of bytes `pack` would produce for `t`.
template <typename T>
[[nodiscard]] std::size_t packed_size(T const& t)
{
  typer ty(typer::pass::size);
  ty.member(const_cast<T&>(t));
  return ty.size();
}

/// Serializes `t` into a byte buffer.
template <typename T>
[[nodiscard]] std::vector<std::byte> pack(T const& t)
{
  std::vector<std::byte> buf;
  buf.reserve(packed_size(t));
  typer ty(typer::pass::pack, buf);
  ty.member(const_cast<T&>(t));
  return buf;
}

/// Reconstructs a `T` from bytes previously produced by `pack`.
template <typename T>
[[nodiscard]] T unpack(std::span<const std::byte> bytes)
{
  T t{};
  typer ty(typer::pass::unpack, bytes);
  ty.member(t);
  return t;
}

// ---------------------------------------------------------------------------
// Run-length-encoded GID sequences (the spawn path's payload currency)
// ---------------------------------------------------------------------------

/// One maximal run of consecutive integral GIDs: first, first+1, ...,
/// first+count-1.
struct gid_run {
  std::uint64_t first = 0;
  std::uint64_t count = 0;

  friend bool operator==(gid_run const&, gid_run const&) = default;
};

/// An ordered GID sequence stored run-length encoded when that pays off.
///
/// Chunk payloads and steal grants carry GID runs of coarsened chunks; the
/// common case — a dense slice of an integral index space — is one
/// `gid_run{first, count}` regardless of how many elements the chunk
/// holds, so marshaling such a payload costs O(runs) instead of
/// O(elements).  Encoding falls back to the raw vector when it cannot
/// compress (sparse integral sequences whose runs are mostly singletons)
/// and always for non-integral GID types, where "consecutive" has no
/// meaning the container layer guarantees.
template <typename G>
class gid_sequence {
 public:
  /// Whether G can be run-encoded at all.
  static constexpr bool run_capable = std::is_integral_v<G>;

  gid_sequence() = default;
  explicit gid_sequence(std::vector<G> gids) { assign(std::move(gids)); }

  /// Re-encodes from an ordered GID vector: maximal +1 runs, kept only
  /// when they beat the raw representation byte-wise.
  void assign(std::vector<G> gids)
  {
    m_runs.clear();
    m_raw.clear();
    m_size = gids.size();
    if constexpr (run_capable) {
      std::vector<gid_run> runs;
      for (G const& g : gids) {
        auto const v = static_cast<std::uint64_t>(g);
        if (!runs.empty() && runs.back().first + runs.back().count == v)
          runs.back().count += 1;
        else
          runs.push_back({v, 1});
      }
      if (runs.size() * sizeof(gid_run) < gids.size() * sizeof(G)) {
        m_runs = std::move(runs);
        return;
      }
    }
    m_raw = std::move(gids);
  }

  [[nodiscard]] std::size_t size() const noexcept { return m_size; }
  [[nodiscard]] bool empty() const noexcept { return m_size == 0; }

  /// True when the sequence is stored as runs (dense integral case).
  [[nodiscard]] bool run_encoded() const noexcept { return !m_runs.empty(); }
  [[nodiscard]] std::vector<gid_run> const& runs() const noexcept
  {
    return m_runs;
  }

  [[nodiscard]] G front() const
  {
    if constexpr (run_capable)
      if (run_encoded())
        return static_cast<G>(m_runs.front().first);
    return m_raw.front();
  }
  [[nodiscard]] G back() const
  {
    if constexpr (run_capable)
      if (run_encoded())
        return static_cast<G>(m_runs.back().first + m_runs.back().count -
                              1);
    return m_raw.back();
  }

  /// Visits every GID in sequence order.
  template <typename F>
  void for_each(F&& f) const
  {
    if constexpr (run_capable) {
      if (run_encoded()) {
        for (gid_run const& r : m_runs)
          for (std::uint64_t i = 0; i != r.count; ++i)
            f(static_cast<G>(r.first + i));
        return;
      }
    }
    for (G const& g : m_raw)
      f(g);
  }

  /// Materializes the sequence (tests and compatibility paths).
  [[nodiscard]] std::vector<G> to_vector() const
  {
    std::vector<G> out;
    out.reserve(m_size);
    for_each([&](G const& g) { out.push_back(g); });
    return out;
  }

  void define_type(typer& t)
  {
    t.member(m_size);
    t.member(m_runs);
    t.member(m_raw);
  }

 private:
  std::size_t m_size = 0;
  std::vector<gid_run> m_runs;  ///< active when run-encoded
  std::vector<G> m_raw;         ///< fallback representation
};

} // namespace stapl

#endif
