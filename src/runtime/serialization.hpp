#ifndef STAPL_RUNTIME_SERIALIZATION_HPP
#define STAPL_RUNTIME_SERIALIZATION_HPP

// Marshaling substrate (dissertation Ch. V.G.1, Fig. 14).
//
// Classes participate in marshaling by exposing
//   void define_type(stapl::typer& t);
// which registers every data member with the typer.  The same definition
// drives three passes: size computation, packing and unpacking, exactly like
// the RTS typer the paper describes.  Built-in support is provided for
// trivially copyable types, std::string, std::pair, std::vector, std::list,
// std::deque, std::map and std::unordered_map.

#include <cstddef>
#include <cstring>
#include <deque>
#include <list>
#include <map>
#include <span>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

namespace stapl {

class typer;

namespace detail {

template <typename T>
concept has_define_type = requires(T& t, typer& ty) { t.define_type(ty); };

template <typename T>
concept trivially_packable =
    std::is_trivially_copyable_v<T> && !has_define_type<T>;

} // namespace detail

/// Three-pass marshaler.  A `define_type` implementation calls
/// `t.member(x)` for each data member; the typer either measures, writes or
/// reads the bytes depending on its mode.
class typer {
 public:
  enum class pass { size, pack, unpack };

  explicit typer(pass p) noexcept : m_pass(p) {}
  typer(pass p, std::vector<std::byte>& buf) noexcept
      : m_pass(p), m_buffer(&buf)
  {}
  typer(pass p, std::span<const std::byte> in) noexcept : m_pass(p), m_input(in)
  {}

  [[nodiscard]] pass mode() const noexcept { return m_pass; }
  [[nodiscard]] std::size_t size() const noexcept { return m_size; }

  // -- scalar / trivially copyable members ---------------------------------
  template <detail::trivially_packable T>
  void member(T& t)
  {
    raw(&t, sizeof(T));
  }

  /// C-array of trivially copyable elements.
  template <detail::trivially_packable T, std::size_t N>
  void member(T (&arr)[N])
  {
    raw(arr, sizeof(T) * N);
  }

  // -- user classes with define_type ---------------------------------------
  template <detail::has_define_type T>
  void member(T& t)
  {
    t.define_type(*this);
  }

  // -- standard library types ----------------------------------------------
  void member(std::string& s)
  {
    auto n = pack_size(s.size());
    if (m_pass == pass::unpack)
      s.resize(n);
    if (n != 0)
      raw(s.data(), n);
  }

  template <typename A, typename B>
  void member(std::pair<A, B>& p)
  {
    member(p.first);
    member(p.second);
  }

  template <typename T>
  void member(std::vector<T>& v)
  {
    sequence(v);
  }

  template <typename T>
  void member(std::list<T>& v)
  {
    sequence(v);
  }

  template <typename T>
  void member(std::deque<T>& v)
  {
    sequence(v);
  }

  template <typename K, typename V, typename C>
  void member(std::map<K, V, C>& m)
  {
    associative(m);
  }

  template <typename K, typename V, typename H, typename E>
  void member(std::unordered_map<K, V, H, E>& m)
  {
    associative(m);
  }

 private:
  template <typename Seq>
  void sequence(Seq& v)
  {
    auto n = pack_size(v.size());
    if (m_pass == pass::unpack) {
      v.clear();
      for (std::size_t i = 0; i != n; ++i) {
        typename Seq::value_type x{};
        member(x);
        v.push_back(std::move(x));
      }
    } else {
      for (auto& x : v)
        member(x);
    }
  }

  template <typename M>
  void associative(M& m)
  {
    auto n = pack_size(m.size());
    if (m_pass == pass::unpack) {
      m.clear();
      for (std::size_t i = 0; i != n; ++i) {
        std::remove_const_t<typename M::key_type> k{};
        typename M::mapped_type v{};
        member(k);
        member(v);
        m.emplace(std::move(k), std::move(v));
      }
    } else {
      for (auto& [k, v] : m) {
        auto key = k; // keys are stored const inside the map
        member(key);
        member(v);
      }
    }
  }

  /// Handles the element-count prefix of variable-size members.
  [[nodiscard]] std::size_t pack_size(std::size_t n)
  {
    std::uint64_t count = n;
    raw(&count, sizeof(count));
    return static_cast<std::size_t>(count);
  }

  void raw(void* p, std::size_t n)
  {
    switch (m_pass) {
      case pass::size:
        m_size += n;
        break;
      case pass::pack: {
        auto const* b = static_cast<std::byte const*>(p);
        m_buffer->insert(m_buffer->end(), b, b + n);
        break;
      }
      case pass::unpack:
        std::memcpy(p, m_input.data() + m_cursor, n);
        m_cursor += n;
        break;
    }
  }

  pass m_pass;
  std::size_t m_size = 0;
  std::vector<std::byte>* m_buffer = nullptr;
  std::span<const std::byte> m_input;
  std::size_t m_cursor = 0;
};

/// Number of bytes `pack` would produce for `t`.
template <typename T>
[[nodiscard]] std::size_t packed_size(T const& t)
{
  typer ty(typer::pass::size);
  ty.member(const_cast<T&>(t));
  return ty.size();
}

/// Serializes `t` into a byte buffer.
template <typename T>
[[nodiscard]] std::vector<std::byte> pack(T const& t)
{
  std::vector<std::byte> buf;
  buf.reserve(packed_size(t));
  typer ty(typer::pass::pack, buf);
  ty.member(const_cast<T&>(t));
  return buf;
}

/// Reconstructs a `T` from bytes previously produced by `pack`.
template <typename T>
[[nodiscard]] T unpack(std::span<const std::byte> bytes)
{
  T t{};
  typer ty(typer::pass::unpack, bytes);
  ty.member(t);
  return t;
}

} // namespace stapl

#endif
