#include "instrument.hpp"

#include "latency.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <memory>
#include <mutex>

namespace stapl {

// ---------------------------------------------------------------------------
// trace
// ---------------------------------------------------------------------------

namespace trace {

namespace instrument_detail {
std::atomic<bool> g_trace_enabled{false};
std::atomic<std::uint64_t> g_kind_mask{all_kinds};
} // namespace instrument_detail

namespace {

/// One location's event storage.  A location is a thread, so each ring has
/// exactly one writer; `size` is released by the writer and acquired by
/// readers (dump/tests run after a fence or after execute() joined).
/// In keep-first mode `size` counts stored events (capped at capacity);
/// in keep-last (circular) mode it counts *all* events ever emitted —
/// slot `size % capacity` is the next write position and the stored
/// window is the trailing `min(size, capacity)` events.
struct ring {
  ring(location_id l, std::size_t cap, bool kl)
      : loc(l), keep_last(kl), buf(cap)
  {}

  location_id loc;
  bool keep_last;
  std::vector<event> buf;
  std::atomic<std::size_t> size{0};
  std::atomic<std::uint64_t> drops{0};

  [[nodiscard]] std::size_t stored() const
  {
    return std::min(size.load(std::memory_order_acquire), buf.size());
  }

  /// Events currently held, oldest first (callers hold g_ring_mutex and
  /// run after the writer quiesced).
  [[nodiscard]] std::vector<event> ordered() const
  {
    std::size_t const n = size.load(std::memory_order_acquire);
    if (!keep_last || n <= buf.size())
      return {buf.begin(),
              buf.begin() + static_cast<std::ptrdiff_t>(std::min(n, buf.size()))};
    std::vector<event> out;
    out.reserve(buf.size());
    std::size_t const start = n % buf.size();
    for (std::size_t i = 0; i != buf.size(); ++i)
      out.push_back(buf[(start + i) % buf.size()]);
    return out;
  }
};

std::mutex g_ring_mutex;                      // guards the registry only
std::vector<std::unique_ptr<ring>> g_rings;   // one per traced location
std::size_t g_capacity = std::size_t{1} << 16;
bool g_keep_last = false;
std::chrono::steady_clock::time_point g_epoch{};

thread_local ring* tl_ring = nullptr;

/// Streaming sink state.  g_stream_mutex serializes file writes across
/// location threads; the lock order is g_ring_mutex before g_stream_mutex
/// (stream_close), never the reverse — ring-full flushes from the writer
/// thread take only g_stream_mutex.
std::mutex g_stream_mutex;
std::unique_ptr<std::ofstream> g_stream;
std::atomic<bool> g_streaming{false};
std::atomic<std::uint64_t> g_streamed{0};
bool g_stream_first = true;               ///< no event object written yet
std::ofstream::pos_type g_stream_tail{};  ///< where the trailing "]}" starts
std::vector<location_id> g_stream_named;  ///< lanes with metadata written

ring* find_ring(location_id id)
{
  for (auto const& r : g_rings)
    if (r->loc == id)
      return r.get();
  return nullptr;
}

/// One event as a Chrome trace-event JSON object (shared by dump and the
/// streaming sink).
void write_event_json(std::ostream& out, event const& e)
{
  out << R"({"name":")" << name_of(e.kind) << R"(","pid":1,"tid":)" << e.loc
      << R"(,"ts":)" << e.ts_us;
  if (is_scope(e.kind))
    out << R"(,"ph":"X","dur":)" << e.dur_us;
  else
    out << R"(,"ph":"i","s":"t")";
  out << R"(,"args":{"v":)" << e.arg << "}}";
}

/// Appends one JSON object slot to the stream (comma/newline bookkeeping).
/// Requires g_stream_mutex held and the tail rewound.
void stream_sep()
{
  if (!g_stream_first)
    *g_stream << ",";
  g_stream_first = false;
  *g_stream << "\n";
}

/// Re-seals the file so it stays a well-formed JSON document between
/// flushes.  Requires g_stream_mutex held.
void stream_seal()
{
  g_stream_tail = g_stream->tellp();
  *g_stream << "\n]}";
  g_stream->flush();
}

/// Flushes `r`'s current contents to the open sink and restarts it empty.
/// Requires g_stream_mutex held; safe only from `r`'s writer thread or
/// after the writer quiesced (stream_close).
void flush_ring_to_stream(ring& r)
{
  if (!g_stream)
    return;
  g_stream->seekp(g_stream_tail);
  if (std::find(g_stream_named.begin(), g_stream_named.end(), r.loc) ==
      g_stream_named.end()) {
    stream_sep();
    *g_stream << R"({"name":"thread_name","ph":"M","pid":1,"tid":)" << r.loc
              << R"(,"args":{"name":"location )" << r.loc << R"("}})";
    g_stream_named.push_back(r.loc);
  }
  for (event const& e : r.ordered()) {
    stream_sep();
    write_event_json(*g_stream, e);
    g_streamed.fetch_add(1, std::memory_order_relaxed);
  }
  r.size.store(0, std::memory_order_release);
  stream_seal();
}

} // namespace

char const* name_of(event_kind k) noexcept
{
  switch (k) {
    case event_kind::rmi_send:        return "rmi_send";
    case event_kind::rmi_execute:     return "rmi_execute";
    case event_kind::msg_flush:       return "msg_flush";
    case event_kind::fence:           return "fence";
    case event_kind::task_run:        return "task_run";
    case event_kind::steal_probe:     return "steal_probe";
    case event_kind::steal_grant:     return "steal_grant";
    case event_kind::steal_nack:      return "steal_nack";
    case event_kind::payload_forward: return "payload_forward";
    case event_kind::migration:       return "migration";
    case event_kind::rebalance_wave:  return "rebalance_wave";
    case event_kind::epoch_advance:   return "epoch_advance";
    case event_kind::tg_execute:      return "tg_execute";
    case event_kind::fault_inject:    return "fault_inject";
    case event_kind::watchdog:        return "watchdog";
    case event_kind::demotion:        return "demotion";
    case event_kind::repromotion:     return "repromotion";
    case event_kind::kind_count_:     break;
  }
  return "unknown";
}

void enable(std::size_t capacity_per_location, bool keep_last,
            std::uint64_t kind_mask)
{
  std::lock_guard lock(g_ring_mutex);
  g_capacity = std::max<std::size_t>(1, capacity_per_location);
  g_keep_last = keep_last;
  g_epoch = std::chrono::steady_clock::now();
  instrument_detail::g_kind_mask.store(kind_mask, std::memory_order_relaxed);
  instrument_detail::g_trace_enabled.store(true, std::memory_order_release);
}

void disable()
{
  instrument_detail::g_trace_enabled.store(false, std::memory_order_release);
}

void clear()
{
  std::lock_guard lock(g_ring_mutex);
  g_rings.clear();
}

void attach(location_id id)
{
  if (!enabled()) {
    tl_ring = nullptr;
    return;
  }
  std::lock_guard lock(g_ring_mutex);
  ring* r = find_ring(id);
  if (r == nullptr) {
    g_rings.push_back(std::make_unique<ring>(id, g_capacity, g_keep_last));
    r = g_rings.back().get();
  }
  tl_ring = r;
}

void detach()
{
  tl_ring = nullptr;
}

std::uint64_t now_us() noexcept
{
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - g_epoch)
          .count());
}

namespace {

void record(event const& e) noexcept
{
  ring* r = tl_ring;
  if (r == nullptr || !enabled())
    return;
  if ((kind_mask() & kind_bit(e.kind)) == 0)
    return; // filtered at emit: one mask test, not recorded, not a drop
  std::size_t n = r->size.load(std::memory_order_relaxed);
  if (n >= r->buf.size() && g_streaming.load(std::memory_order_acquire)) {
    // Streaming sink open: retire the full ring to disk and restart it —
    // no drops while streaming.  We are this ring's only writer.
    std::lock_guard lock(g_stream_mutex);
    flush_ring_to_stream(*r);
    n = 0;
  }
  if (r->keep_last) {
    r->buf[n % r->buf.size()] = e;
    if (n >= r->buf.size())
      r->drops.fetch_add(1, std::memory_order_relaxed);
    r->size.store(n + 1, std::memory_order_release);
    return;
  }
  if (n >= r->buf.size()) {
    r->drops.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  r->buf[n] = e;
  r->size.store(n + 1, std::memory_order_release);
}

} // namespace

void emit(event_kind k, std::uint64_t arg) noexcept
{
  ring* r = tl_ring;
  if (r == nullptr)
    return;
  record(event{now_us(), 0, arg, r->loc, k});
}

void emit_complete(event_kind k, std::uint64_t ts_us, std::uint64_t dur_us,
                   std::uint64_t arg) noexcept
{
  ring* r = tl_ring;
  if (r == nullptr)
    return;
  record(event{ts_us, dur_us, arg, r->loc, k});
}

std::vector<location_id> traced_locations()
{
  std::lock_guard lock(g_ring_mutex);
  std::vector<location_id> out;
  out.reserve(g_rings.size());
  for (auto const& r : g_rings)
    out.push_back(r->loc);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<event> events(location_id loc)
{
  std::lock_guard lock(g_ring_mutex);
  ring const* r = find_ring(loc);
  return r == nullptr ? std::vector<event>{} : r->ordered();
}

std::uint64_t total_events()
{
  std::lock_guard lock(g_ring_mutex);
  std::uint64_t n = 0;
  for (auto const& r : g_rings)
    n += r->stored();
  return n;
}

std::uint64_t dropped(location_id loc)
{
  std::lock_guard lock(g_ring_mutex);
  ring const* r = find_ring(loc);
  return r == nullptr ? 0 : r->drops.load(std::memory_order_acquire);
}

std::uint64_t total_dropped()
{
  std::lock_guard lock(g_ring_mutex);
  std::uint64_t n = 0;
  for (auto const& r : g_rings)
    n += r->drops.load(std::memory_order_acquire);
  return n;
}

bool dump(std::string const& path)
{
  std::ofstream out(path);
  if (!out)
    return false;

  std::lock_guard lock(g_ring_mutex);
  out << "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first)
      out << ",";
    first = false;
    out << "\n";
  };

  sep();
  out << R"({"name":"process_name","ph":"M","pid":1,"args":)"
      << R"({"name":"stapl"}})";

  for (auto const& r : g_rings) {
    sep();
    out << R"({"name":"thread_name","ph":"M","pid":1,"tid":)" << r->loc
        << R"(,"args":{"name":"location )" << r->loc << R"("}})";
  }

  for (auto const& r : g_rings) {
    for (event const& e : r->ordered()) {
      sep();
      write_event_json(out, e);
    }
    std::uint64_t const drops = r->drops.load(std::memory_order_acquire);
    if (drops != 0) {
      sep();
      out << R"({"name":"dropped_events","ph":"i","s":"t","pid":1,"tid":)"
          << r->loc << R"(,"ts":)" << now_us() << R"(,"args":{"v":)" << drops
          << "}}";
    }
  }

  out << "\n]}\n";
  return static_cast<bool>(out);
}

bool stream_to(std::string const& path)
{
  std::lock_guard lock(g_stream_mutex);
  auto f = std::make_unique<std::ofstream>(path);
  if (!*f)
    return false;
  g_stream = std::move(f);
  g_stream_first = true;
  g_stream_named.clear();
  g_streamed.store(0, std::memory_order_relaxed);
  *g_stream << "{\"traceEvents\":[";
  stream_sep();
  *g_stream << R"({"name":"process_name","ph":"M","pid":1,"args":)"
            << R"({"name":"stapl"}})";
  stream_seal();
  g_streaming.store(true, std::memory_order_release);
  return true;
}

void stream_close()
{
  std::lock_guard rlock(g_ring_mutex);
  std::lock_guard slock(g_stream_mutex);
  if (!g_stream)
    return;
  g_streaming.store(false, std::memory_order_release);
  for (auto const& r : g_rings)
    flush_ring_to_stream(*r);
  g_stream->seekp(g_stream_tail);
  for (auto const& r : g_rings) {
    std::uint64_t const drops = r->drops.load(std::memory_order_acquire);
    if (drops != 0) {
      stream_sep();
      *g_stream << R"({"name":"dropped_events","ph":"i","s":"t","pid":1,)"
                << R"("tid":)" << r->loc << R"(,"ts":)" << now_us()
                << R"(,"args":{"v":)" << drops << "}}";
    }
  }
  stream_seal();
  g_stream.reset();
}

bool streaming()
{
  return g_streaming.load(std::memory_order_acquire);
}

std::uint64_t streamed_events()
{
  return g_streamed.load(std::memory_order_relaxed);
}

} // namespace trace

// ---------------------------------------------------------------------------
// metrics
// ---------------------------------------------------------------------------

namespace metrics {

namespace {

struct contributor {
  contributor_id id;
  std::function<void(counter_map&)> fold;
  std::function<void()> reset;
};

/// Per-location-thread registry state.  Contributors register and fold on
/// their owning thread, so no lock is needed.
struct registry_state {
  std::vector<contributor> live;
  counter_map accumulated;  ///< finals of unregistered contributors
  contributor_id next_id = 1;
};

registry_state& tls()
{
  thread_local registry_state s;
  return s;
}

std::mutex g_process_mutex;
counter_map g_process_totals;

} // namespace

contributor_id register_contributor(std::function<void(counter_map&)> fold,
                                    std::function<void()> reset)
{
  auto& s = tls();
  contributor_id const id = s.next_id++;
  s.live.push_back({id, std::move(fold), std::move(reset)});
  return id;
}

void unregister_contributor(contributor_id id)
{
  auto& s = tls();
  auto it = std::find_if(s.live.begin(), s.live.end(),
                         [id](contributor const& c) { return c.id == id; });
  if (it == s.live.end())
    return;
  it->fold(s.accumulated);
  s.live.erase(it);
}

void add(std::string const& name, std::uint64_t delta)
{
  tls().accumulated[name] += delta;
}

counter_map snapshot()
{
  auto& s = tls();
  counter_map m = s.accumulated;
  for (auto const& c : s.live)
    c.fold(m);
  for (std::size_t i = 0; i != latency::op_count; ++i) {
    auto const o = static_cast<latency::op>(i);
    auto const h = latency::local_snapshot(o);
    if (h.empty())
      continue;
    std::string const stem = std::string("lat.") + latency::name_of(o);
    m[stem + ".count"] = h.count;
    m[stem + ".sum_ns"] = h.sum_ns;
    m[stem + ".p50_ns"] = h.p50();
    m[stem + ".p90_ns"] = h.p90();
    m[stem + ".p99_ns"] = h.p99();
    m[stem + ".p999_ns"] = h.p999();
    m[stem + ".max_ns"] = h.max();
  }
  return m;
}

void reset_all()
{
  auto& s = tls();
  for (auto const& c : s.live)
    c.reset();
  s.accumulated.clear();
  latency::reset();
}

void fold_into_process(counter_map const& m)
{
  std::lock_guard lock(g_process_mutex);
  for (auto const& [k, v] : m) {
    if (sums_on_merge(k))
      g_process_totals[k] += v;
    else if (v > g_process_totals[k])
      g_process_totals[k] = v; // gauge: keep the worst location's value
  }
}

counter_map process_totals()
{
  std::lock_guard lock(g_process_mutex);
  return g_process_totals;
}

} // namespace metrics

} // namespace stapl
