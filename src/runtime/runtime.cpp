#include "runtime.hpp"

namespace stapl {
namespace runtime_detail {

runtime_impl* g_runtime = nullptr;
thread_local location_id tl_location = invalid_location;

} // namespace runtime_detail

void rmi_fence()
{
  using namespace runtime_detail;
  auto& impl = rt();
  rt().loc(tl_location).stats.fences += 1;
  trace::trace_scope fence_scope(trace::event_kind::fence);

  // Distributed termination detection: drain, synchronize, and re-check
  // until a round completes with globally balanced sent/executed counters.
  // Processing a request may itself send new requests (method forwarding,
  // continuations), which unbalances the counters and forces another round.
  for (;;) {
    while (poll_once()) {
    }
    flush_aggregation();
    // The first barrier must poll while waiting: a peer may still be blocked
    // in a sync_rmi whose request landed in our inbox after we drained.
    polling_barrier_wait();
    // After the barrier no location starts a new poll this round, but one
    // poll per location may straddle the barrier release and still send
    // messages.  Wait for those to retire so the counters are frozen and all
    // locations take the same verdict.
    wait_backoff bo;
    while (impl.active_polls.load(std::memory_order_acquire) != 0)
      bo.pause();
    bool const quiesced =
        impl.total_sent.load(std::memory_order_acquire) ==
        impl.total_executed.load(std::memory_order_acquire);
    impl.barrier().arrive_and_wait();
    if (quiesced)
      return;
  }
}

void execute(runtime_config const& cfg, std::function<void()> spmd)
{
  using namespace runtime_detail;
  assert(g_runtime == nullptr && "nested stapl::execute is not supported");
  assert(cfg.num_locations >= 1);

  runtime_impl impl(cfg);
  g_runtime = &impl;

  std::mutex error_mutex;
  std::exception_ptr first_error;

  auto body = [&](location_id id) {
    tl_location = id;
    trace::attach(id);
    // The runtime itself is the first metrics contributor on every
    // location: the RTS communication counters plus the idle-time counters
    // fed by wait_backoff and the executor naps.
    auto const runtime_contributor = metrics::register_contributor(
        [id](metrics::counter_map& m) {
          location_stats const& s = rt().loc(id).stats;
          m["rmi.rmis_sent"] += s.rmis_sent;
          m["rmi.rmis_executed"] += s.rmis_executed;
          m["rmi.local_rmis"] += s.local_rmis;
          m["rmi.msgs_sent"] += s.msgs_sent;
          m["rmi.sync_rmis"] += s.sync_rmis;
          m["rmi.fences"] += s.fences;
          m["rmi.rmi_bytes"] += s.rmi_bytes;
          m["rmi.msg_bytes"] += s.msg_bytes;
          m["coll.ops"] += s.coll_ops;
          m["coll.rounds"] += s.coll_rounds;
          if (m["coll.tree_depth"] < s.coll_depth)
            m["coll.tree_depth"] = s.coll_depth; // gauge: deepest tree
          m["coll.flat_fallbacks"] += s.coll_flat;
          m["coll.agg_batches"] += s.agg_batches;
          m["coll.agg_bytes"] += s.agg_batch_bytes;
          metrics::idle_counters const& i = metrics::idle();
          m["idle.spins"] += i.spins;
          m["idle.sleeps"] += i.sleeps;
          m["idle.nap_us"] += i.nap_us;
        },
        [id] {
          rt().loc(id).stats = {};
          metrics::idle() = {};
        });
    try {
      spmd();
    } catch (...) {
      std::lock_guard lock(error_mutex);
      if (!first_error)
        first_error = std::current_exception();
    }
    // Implicit final fence so that all in-flight traffic of well-formed
    // programs drains before teardown.  If a location failed we still must
    // not deadlock: locations that threw participate in the fence too.
    try {
      rmi_fence();
    } catch (...) {
      std::lock_guard lock(error_mutex);
      if (!first_error)
        first_error = std::current_exception();
    }
    // Preserve this execution's counters and latency histograms for the
    // process-wide accumulators (what bench_common embeds in its JSON)
    // before the thread dies.
    metrics::fold_into_process(metrics::snapshot());
    latency::fold_into_process();
    metrics::unregister_contributor(runtime_contributor);
    trace::detach();
    tl_location = invalid_location;
  };

  std::vector<std::thread> threads;
  threads.reserve(cfg.num_locations);
  for (location_id id = 0; id < cfg.num_locations; ++id)
    threads.emplace_back(body, id);
  for (auto& t : threads)
    t.join();

  g_runtime = nullptr;
  if (first_error)
    std::rethrow_exception(first_error);
}

void execute(unsigned p, std::function<void()> spmd)
{
  runtime_config cfg;
  cfg.num_locations = p;
  execute(cfg, std::move(spmd));
}

} // namespace stapl
