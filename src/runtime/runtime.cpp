#include "runtime.hpp"

namespace stapl {
namespace runtime_detail {

runtime_impl* g_runtime = nullptr;
thread_local location_id tl_location = invalid_location;

} // namespace runtime_detail

void rmi_fence()
{
  using namespace runtime_detail;
  auto& impl = rt();
  rt().loc(tl_location).stats.fences += 1;
  trace::trace_scope fence_scope(trace::event_kind::fence);

  // Distributed termination detection: drain, synchronize, and re-check
  // until a round completes with globally balanced sent/executed counters.
  // Processing a request may itself send new requests (method forwarding,
  // continuations), which unbalances the counters and forces another round.
  for (;;) {
    while (poll_once()) {
    }
    flush_aggregation();
    // The first barrier must poll while waiting: a peer may still be blocked
    // in a sync_rmi whose request landed in our inbox after we drained.
    polling_barrier_wait();
    // After the barrier no location starts a new poll this round, but one
    // poll per location may straddle the barrier release and still send
    // messages.  Wait for those to retire so the counters are frozen and all
    // locations take the same verdict.
    deadline_backoff bo("rmi.fence");
    while (impl.active_polls.load(std::memory_order_acquire) != 0)
      bo.pause();
    bool const quiesced =
        impl.total_sent.load(std::memory_order_acquire) ==
        impl.total_executed.load(std::memory_order_acquire);
    impl.barrier().arrive_and_wait();
    if (quiesced)
      return;
  }
}

void execute(runtime_config const& cfg, std::function<void()> spmd)
{
  using namespace runtime_detail;
  assert(g_runtime == nullptr && "nested stapl::execute is not supported");
  assert(cfg.num_locations >= 1);

  // Environment-driven fault arming must precede construction: the impl
  // latches sequenced delivery off fault::armed().  Straggler demotions do
  // not survive across executions.
  fault::init_from_env();
  robust::reset_demotions();

  runtime_impl impl(cfg);
  g_runtime = &impl;

  std::mutex error_mutex;
  std::exception_ptr first_error;

  auto body = [&](location_id id) {
    tl_location = id;
    trace::attach(id);
    fault::attach(id);
    // The runtime itself is the first metrics contributor on every
    // location: the RTS communication counters plus the idle-time counters
    // fed by deadline_backoff and the executor naps.
    auto const runtime_contributor = metrics::register_contributor(
        [id](metrics::counter_map& m) {
          location_stats const& s = rt().loc(id).stats;
          m["rmi.rmis_sent"] += s.rmis_sent;
          m["rmi.rmis_executed"] += s.rmis_executed;
          m["rmi.local_rmis"] += s.local_rmis;
          m["rmi.msgs_sent"] += s.msgs_sent;
          m["rmi.sync_rmis"] += s.sync_rmis;
          m["rmi.fences"] += s.fences;
          m["rmi.rmi_bytes"] += s.rmi_bytes;
          m["rmi.msg_bytes"] += s.msg_bytes;
          m["coll.ops"] += s.coll_ops;
          m["coll.rounds"] += s.coll_rounds;
          if (m["coll.tree_depth"] < s.coll_depth)
            m["coll.tree_depth"] = s.coll_depth; // gauge: deepest tree
          m["coll.flat_fallbacks"] += s.coll_flat;
          m["coll.agg_batches"] += s.agg_batches;
          m["coll.agg_bytes"] += s.agg_batch_bytes;
          if (m["rmi.inbox_depth"] < s.inbox_depth)
            m["rmi.inbox_depth"] = s.inbox_depth; // gauge: deepest backlog
          if (m["rmi.deferred_depth"] < s.deferred_hw)
            m["rmi.deferred_depth"] = s.deferred_hw; // gauge
          metrics::idle_counters const& i = metrics::idle();
          m["idle.spins"] += i.spins;
          m["idle.sleeps"] += i.sleeps;
          m["idle.nap_us"] += i.nap_us;
          fault::counters const& f = fault::tl_counters();
          m["fault.injected"] += f.injected;
          m["fault.delays"] += f.delays;
          m["fault.dups"] += f.dups;
          m["fault.reorders"] += f.reorders;
          m["fault.stalls"] += f.stalls;
          m["fault.alloc_fails"] += f.alloc_fails;
          robust::counters const& r = robust::tl();
          m["robust.retries"] += r.retries;
          m["robust.dups_suppressed"] += r.dups_suppressed;
          m["robust.watchdog_dumps"] += r.watchdog_dumps;
          m["robust.probe_timeouts"] += r.probe_timeouts;
          m["robust.demotions"] += r.demotions;
          m["robust.repromotions"] += r.repromotions;
        },
        [id] {
          rt().loc(id).stats = {};
          metrics::idle() = {};
          fault::tl_counters() = {};
          robust::tl() = {};
        });
    try {
      spmd();
    } catch (...) {
      std::lock_guard lock(error_mutex);
      if (!first_error)
        first_error = std::current_exception();
    }
    // Implicit final fence so that all in-flight traffic of well-formed
    // programs drains before teardown.  If a location failed we still must
    // not deadlock: locations that threw participate in the fence too.
    try {
      rmi_fence();
    } catch (...) {
      std::lock_guard lock(error_mutex);
      if (!first_error)
        first_error = std::current_exception();
    }
    // Preserve this execution's counters and latency histograms for the
    // process-wide accumulators (what bench_common embeds in its JSON)
    // before the thread dies.
    metrics::fold_into_process(metrics::snapshot());
    latency::fold_into_process();
    metrics::unregister_contributor(runtime_contributor);
    fault::detach();
    trace::detach();
    tl_location = invalid_location;
  };

  std::vector<std::thread> threads;
  threads.reserve(cfg.num_locations);
  for (location_id id = 0; id < cfg.num_locations; ++id)
    threads.emplace_back(body, id);
  for (auto& t : threads)
    t.join();

  g_runtime = nullptr;
  if (first_error)
    std::rethrow_exception(first_error);
}

void execute(unsigned p, std::function<void()> spmd)
{
  runtime_config cfg;
  cfg.num_locations = p;
  execute(cfg, std::move(spmd));
}

} // namespace stapl
