#include "latency.hpp"

#include <memory>
#include <mutex>

namespace stapl {
namespace latency {

namespace latency_detail {
std::atomic<bool> g_enabled{false};
} // namespace latency_detail

namespace {

std::atomic<std::uint64_t> g_reset_epoch{1};

/// The calling thread's recorders.  Heap-allocated: a histogram_set is
/// ~55 KB and most threads never record.  A location is a thread, so each
/// set has exactly one writer; readers (snapshots, fold) run on the same
/// thread.  `epoch` implements the lazy reset: a stale set clears itself
/// on first touch after a reset() bump.
struct thread_recorders {
  std::unique_ptr<histogram_set> hists;
  std::uint64_t epoch = 0;
};

thread_recorders& tls()
{
  thread_local thread_recorders r;
  return r;
}

histogram_set& fresh_hists()
{
  auto& r = tls();
  if (!r.hists)
    r.hists = std::make_unique<histogram_set>();
  std::uint64_t const e = g_reset_epoch.load(std::memory_order_relaxed);
  if (r.epoch != e) {
    for (auto& h : *r.hists)
      h.clear();
    r.epoch = e;
  }
  return *r.hists;
}

std::mutex g_process_mutex;
std::unique_ptr<histogram_set> g_process_hists;

} // namespace

char const* name_of(op o) noexcept
{
  switch (o) {
    case op::dir_resolve:     return "dir.resolve";
    case op::rmi_sync:        return "rmi.sync";
    case op::tg_task:         return "tg.task";
    case op::container_apply: return "container.apply";
    case op::lb_wave_stall:   return "lb.wave_stall";
    case op::serve_op:        return "serve.op";
    case op::op_count_:       break;
  }
  return "unknown";
}

void enable() noexcept
{
  latency_detail::g_enabled.store(true, std::memory_order_release);
}

void disable() noexcept
{
  latency_detail::g_enabled.store(false, std::memory_order_release);
}

std::uint64_t reset_epoch() noexcept
{
  return g_reset_epoch.load(std::memory_order_relaxed);
}

void reset()
{
  g_reset_epoch.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard lock(g_process_mutex);
  g_process_hists.reset();
}

void record_ns(op o, std::uint64_t ns) noexcept
{
  fresh_hists()[static_cast<std::size_t>(o)].record(ns);
}

histogram local_snapshot(op o)
{
  return fresh_hists()[static_cast<std::size_t>(o)];
}

histogram_set local_snapshots()
{
  return fresh_hists();
}

void fold_into_process()
{
  auto& r = tls();
  if (!r.hists)
    return;
  // A stale set holds pre-reset samples; fresh_hists() discards them.
  auto& mine = fresh_hists();
  {
    std::lock_guard lock(g_process_mutex);
    if (!g_process_hists)
      g_process_hists = std::make_unique<histogram_set>();
    for (std::size_t i = 0; i != op_count; ++i)
      (*g_process_hists)[i].merge(mine[i]);
  }
  for (auto& h : mine)
    h.clear();
}

histogram process_histogram(op o)
{
  std::lock_guard lock(g_process_mutex);
  if (!g_process_hists)
    return {};
  return (*g_process_hists)[static_cast<std::size_t>(o)];
}

} // namespace latency
} // namespace stapl
