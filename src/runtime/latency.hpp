#ifndef STAPL_RUNTIME_LATENCY_HPP
#define STAPL_RUNTIME_LATENCY_HPP

// Tail-latency observability: per-operation HDR-style histograms and the
// steady-state time-series sampler.
//
//   * latency:: — lock-free per-location latency recorders.  Each location
//     (a thread in this RTS) owns one log-bucketed histogram per named
//     operation family; recording is a single-writer bucket increment, so
//     the instrumented hot paths take no locks.  Buckets subdivide every
//     power-of-two octave into 2^sub_bits linear sub-buckets (HdrHistogram
//     style), covering ~1 ns to ~18 minutes in ~9 KB per histogram with a
//     bounded relative error of 1/2^sub_bits; count and sum are exact.
//     Histograms are plain mergeable value types: snapshots add bucket-wise,
//     so a collective merge (latency::global_histogram, defined with the
//     other collectives in runtime.hpp) equals a histogram that recorded
//     every location's samples directly.
//
//     The RAII `timed_op` scope is the emit site: when recording is
//     disabled (the default) its cost is one relaxed atomic load — the
//     same contract as the STAPL_TRACE sites.
//
//   * metrics::sampler — a time-series sampler for long steady-state runs.
//     A serving bench arms one and periodically feeds it *cumulative*
//     global state (counters + histograms); the sampler subtracts the
//     previous sample bucket-wise and stores one timestamped window delta:
//     counter deltas plus per-family window quantiles.  The series exports
//     as the "timeseries" JSON array, turning an end-of-run number into a
//     latency-over-time curve.
//
// Layering: like instrument.hpp this header depends only on types.hpp,
// instrument.hpp and the standard library, because the timed-op sites live
// in runtime.hpp itself (sync_rmi).  Collective wrappers
// (latency::global_histogram, metrics::sample_global) are defined at the
// bottom of runtime.hpp next to metrics::global_snapshot.  Mutable global
// state lives in latency.cpp.

#include "instrument.hpp"
#include "types.hpp"

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace stapl {

namespace latency {

/// Named operation families.  One histogram per family per location.
enum class op : std::uint8_t {
  dir_resolve,      ///< directory::resolve: blocking owner lookup
  rmi_sync,         ///< sync_rmi: synchronous RMI round trip
  tg_task,          ///< one task-graph task body
  container_apply,  ///< container element-method execution (invoke paths)
  lb_wave_stall,    ///< one rebalance() wave, entry to exit (the stall it
                    ///< imposes on concurrent traffic)
  serve_op,         ///< serving-bench operation (intended-start corrected)
  op_count_         ///< sentinel, keep last
};

inline constexpr std::size_t op_count = static_cast<std::size_t>(op::op_count_);

/// Stable display name ("dir.resolve", "rmi.sync", ...) — also the key stem
/// of the "lat.<name>.*" entries in metrics::snapshot().
[[nodiscard]] char const* name_of(op o) noexcept;

// ---------------------------------------------------------------------------
// histogram — log-bucketed, mergeable, bounded memory
// ---------------------------------------------------------------------------

/// HDR-style histogram over nanosecond values.  Value domain [0, 2^max_exp);
/// larger samples clamp into the last bucket (max_ns stays exact).
struct histogram {
  static constexpr unsigned sub_bits = 5;            ///< 32 sub-buckets/octave
  static constexpr std::uint64_t sub = 1ull << sub_bits;
  static constexpr unsigned max_exp = 40;            ///< 2^40 ns ~ 18 minutes
  static constexpr std::size_t n_buckets =
      (static_cast<std::size_t>(max_exp) - sub_bits + 1) * sub;

  std::array<std::uint64_t, n_buckets> counts{};
  std::uint64_t count = 0;    ///< total samples (exact)
  std::uint64_t sum_ns = 0;   ///< sum of samples (exact)
  std::uint64_t max_ns = 0;   ///< largest sample (exact)

  /// Bucket index of a value.  Values below `sub` get exact unit buckets;
  /// above, the top sub_bits bits after the leading one select the
  /// sub-bucket, so the relative bucket width stays 1/2^sub_bits.
  [[nodiscard]] static constexpr std::size_t index_of(std::uint64_t ns) noexcept
  {
    if (ns < sub)
      return static_cast<std::size_t>(ns);
    unsigned e = 63u;
    while ((ns >> e) == 0)
      --e; // bit_width - 1 without <bit> (kept constexpr-friendly)
    if (e >= max_exp)
      return n_buckets - 1;
    std::size_t const sidx =
        static_cast<std::size_t>((ns >> (e - sub_bits)) - sub);
    return (static_cast<std::size_t>(e) - sub_bits + 1) * sub + sidx;
  }

  /// Smallest value mapping into bucket `i`.
  [[nodiscard]] static constexpr std::uint64_t bucket_lower(std::size_t i) noexcept
  {
    if (i < sub)
      return i;
    std::size_t const block = i / sub;             // >= 1
    unsigned const e = static_cast<unsigned>(block) + sub_bits - 1;
    std::uint64_t const sidx = i % sub;
    return (sub + sidx) << (e - sub_bits);
  }

  /// Largest value mapping into bucket `i` (inclusive).
  [[nodiscard]] static constexpr std::uint64_t bucket_upper(std::size_t i) noexcept
  {
    if (i + 1 >= n_buckets)
      return ~std::uint64_t{0};
    return bucket_lower(i + 1) - 1;
  }

  /// Representative value reported for bucket `i` (its midpoint).
  [[nodiscard]] static constexpr std::uint64_t bucket_value(std::size_t i) noexcept
  {
    std::uint64_t const lo = bucket_lower(i);
    if (i + 1 >= n_buckets)
      return lo;
    return lo + (bucket_upper(i) - lo) / 2;
  }

  void record(std::uint64_t ns) noexcept
  {
    counts[index_of(ns)] += 1;
    count += 1;
    sum_ns += ns;
    if (ns > max_ns)
      max_ns = ns;
  }

  /// Bucket-wise addition: merge(record(A), record(B)) == record(A ∪ B).
  void merge(histogram const& o) noexcept
  {
    for (std::size_t i = 0; i != n_buckets; ++i)
      counts[i] += o.counts[i];
    count += o.count;
    sum_ns += o.sum_ns;
    if (o.max_ns > max_ns)
      max_ns = o.max_ns;
  }

  void clear() noexcept { *this = histogram{}; }

  [[nodiscard]] bool empty() const noexcept { return count == 0; }

  /// Value at quantile `q` in [0, 1]: the representative value of the
  /// bucket holding the ceil(q * count)-th sample, clamped by the exact
  /// max.  Zero on an empty histogram.  Monotone non-decreasing in q.
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept
  {
    if (count == 0)
      return 0;
    if (q < 0.0)
      q = 0.0;
    if (q > 1.0)
      q = 1.0;
    std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(count));
    if (rank < 1)
      rank = 1;
    if (rank > count)
      rank = count;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i != n_buckets; ++i) {
      seen += counts[i];
      if (seen >= rank) {
        std::uint64_t const v = bucket_value(i);
        return v < max_ns ? v : max_ns;
      }
    }
    return max_ns;
  }

  [[nodiscard]] std::uint64_t p50() const noexcept { return quantile(0.50); }
  [[nodiscard]] std::uint64_t p90() const noexcept { return quantile(0.90); }
  [[nodiscard]] std::uint64_t p99() const noexcept { return quantile(0.99); }
  [[nodiscard]] std::uint64_t p999() const noexcept { return quantile(0.999); }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_ns; }

  /// Window delta of two cumulative snapshots (cur recorded everything old
  /// did plus the window): bucket-wise subtraction, clamped at zero so a
  /// reset between snapshots degrades to "cur is the window".  The window
  /// max is approximated by the highest non-empty delta bucket's upper
  /// bound, clamped by cur's exact max.
  [[nodiscard]] static histogram delta(histogram const& cur,
                                       histogram const& old) noexcept
  {
    histogram d;
    std::size_t top = n_buckets; // no non-empty bucket yet
    for (std::size_t i = 0; i != n_buckets; ++i) {
      std::uint64_t const c = cur.counts[i];
      std::uint64_t const o = old.counts[i];
      d.counts[i] = c > o ? c - o : 0;
      if (d.counts[i] != 0) {
        d.count += d.counts[i];
        top = i;
      }
    }
    d.sum_ns = cur.sum_ns > old.sum_ns ? cur.sum_ns - old.sum_ns : 0;
    if (top != n_buckets) {
      std::uint64_t const hi = bucket_upper(top);
      d.max_ns = hi < cur.max_ns ? hi : cur.max_ns;
    }
    return d;
  }
};

using histogram_set = std::array<histogram, op_count>;

// ---------------------------------------------------------------------------
// Recording
// ---------------------------------------------------------------------------

namespace latency_detail {
extern std::atomic<bool> g_enabled;
} // namespace latency_detail

/// Whether latency recording is on — the only cost paid by a disabled
/// timed_op site.
[[nodiscard]] inline bool enabled() noexcept
{
  return latency_detail::g_enabled.load(std::memory_order_relaxed);
}

/// Turns recording on/off.  Off is the default: the timed-op sites in the
/// runtime core then cost one relaxed atomic load each.
void enable() noexcept;
void disable() noexcept;

/// Global reset epoch: bumping it (metrics::reset_all does) lazily clears
/// every thread's recorders and re-baselines armed samplers, so
/// back-to-back bench sections do not bleed quantiles into each other.
[[nodiscard]] std::uint64_t reset_epoch() noexcept;

/// Bumps the reset epoch and clears the process-wide accumulator.  Called
/// by metrics::reset_all(); also callable directly.
void reset();

/// Records one sample into the calling thread's histogram for `o`.
/// Wait-free (single-writer); records even when `enabled()` is false —
/// the flag gates the timed_op sites, not direct feeds.
void record_ns(op o, std::uint64_t ns) noexcept;

/// Copy of the calling thread's histogram for `o` (empty if this thread
/// never recorded or a reset intervened).
[[nodiscard]] histogram local_snapshot(op o);

/// All families of the calling thread in one copy.
[[nodiscard]] histogram_set local_snapshots();

/// Folds the calling thread's recorders into the process-wide accumulator
/// and clears them.  Called once per location at the end of every
/// stapl::execute (mirrors metrics::fold_into_process).
void fold_into_process();

/// Process-wide accumulated histogram across completed executions — what
/// bench_common's "latency" JSON section reports.
[[nodiscard]] histogram process_histogram(op o);

/// Monotonic nanosecond clock used by timed_op.
[[nodiscard]] inline std::uint64_t now_ns() noexcept
{
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// RAII emit site: records the scope's duration into the calling thread's
/// histogram for `o`.  Disabled cost is one relaxed atomic load (no clock
/// read).
class timed_op {
 public:
  explicit timed_op(op o) noexcept : m_op(o), m_active(enabled())
  {
    if (m_active)
      m_start = now_ns();
  }

  timed_op(timed_op const&) = delete;
  timed_op& operator=(timed_op const&) = delete;

  /// Drops the measurement (e.g. a path that turned out to be a no-op).
  void cancel() noexcept { m_active = false; }

  ~timed_op()
  {
    if (m_active)
      record_ns(m_op, now_ns() - m_start);
  }

 private:
  op m_op;
  bool m_active;
  std::uint64_t m_start = 0;
};

} // namespace latency

// ---------------------------------------------------------------------------
// metrics::sampler — steady-state time series of snapshot deltas
// ---------------------------------------------------------------------------

namespace metrics {

/// One captured window.
struct sample_point {
  std::uint64_t t_ms = 0;  ///< milliseconds since arm()
  std::string label;       ///< caller-supplied window tag (steady/wave/...)

  /// Window quantiles of one operation family.
  struct op_window {
    std::uint64_t count = 0;
    std::uint64_t p50_ns = 0;
    std::uint64_t p90_ns = 0;
    std::uint64_t p99_ns = 0;
    std::uint64_t p999_ns = 0;
    std::uint64_t max_ns = 0;
  };
  std::array<op_window, latency::op_count> ops{};

  counter_map counters;  ///< counter deltas over the window (non-zero only)
};

/// Captures timestamped deltas of cumulative global state into an
/// in-memory time series.  The caller owns the cadence: arm() once, then
/// feed push() one cumulative (counters, histograms) pair per window —
/// the collective wrapper metrics::sample_global (runtime.hpp) gathers
/// those globally and pushes on location 0.  A metrics::reset_all()
/// between pushes re-baselines instead of producing negative windows.
class sampler {
 public:
  /// Clears the series, stamps t0 and zeroes the baselines.
  void arm()
  {
    m_armed = true;
    m_epoch = latency::reset_epoch();
    m_t0 = std::chrono::steady_clock::now();
    m_last_counters.clear();
    for (auto& h : m_last_hists)
      h.clear();
    m_series.clear();
  }

  [[nodiscard]] bool armed() const noexcept { return m_armed; }

  /// Appends one window: deltas of `cumulative_counters` and
  /// `cumulative_hists` against the previous push (or the arm() baseline).
  void push(counter_map const& cumulative_counters,
            latency::histogram_set const& cumulative_hists,
            std::string label = {})
  {
    if (!m_armed)
      arm();
    if (m_epoch != latency::reset_epoch()) {
      // A reset_all() intervened: the cumulative state restarted from
      // zero, so restart the baseline too instead of clamping everything.
      m_epoch = latency::reset_epoch();
      m_last_counters.clear();
      for (auto& h : m_last_hists)
        h.clear();
    }

    sample_point p;
    p.t_ms = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - m_t0)
            .count());
    p.label = std::move(label);

    for (auto const& [k, v] : cumulative_counters) {
      if (k.rfind("lat.", 0) == 0)
        continue; // families are reported through p.ops, properly merged
      auto const it = m_last_counters.find(k);
      std::uint64_t const old = it == m_last_counters.end() ? 0 : it->second;
      if (v > old)
        p.counters[k] = v - old;
    }

    for (std::size_t i = 0; i != latency::op_count; ++i) {
      auto const w =
          latency::histogram::delta(cumulative_hists[i], m_last_hists[i]);
      p.ops[i] = {w.count, w.p50(), w.p90(), w.p99(), w.p999(), w.max()};
    }

    m_last_counters = cumulative_counters;
    m_last_hists = cumulative_hists;
    m_series.push_back(std::move(p));
  }

  [[nodiscard]] std::vector<sample_point> const& series() const noexcept
  {
    return m_series;
  }

  /// The "timeseries" JSON array: one object per window with timestamp,
  /// label, per-family window quantiles (families with samples only) and
  /// non-zero counter deltas.
  [[nodiscard]] std::string to_json() const
  {
    auto quote = [](std::string const& s) {
      std::string out = "\"";
      for (char c : s) {
        if (c == '"' || c == '\\')
          out += '\\';
        out += c;
      }
      return out + "\"";
    };
    std::string out = "[";
    bool first = true;
    for (auto const& p : m_series) {
      out += first ? "\n" : ",\n";
      first = false;
      out += "    {\"t_ms\": " + std::to_string(p.t_ms) +
             ", \"label\": " + quote(p.label) + ", \"ops\": {";
      bool fo = true;
      for (std::size_t i = 0; i != latency::op_count; ++i) {
        auto const& w = p.ops[i];
        if (w.count == 0)
          continue;
        if (!fo)
          out += ", ";
        fo = false;
        out += quote(latency::name_of(static_cast<latency::op>(i))) +
               ": {\"count\": " + std::to_string(w.count) +
               ", \"p50_ns\": " + std::to_string(w.p50_ns) +
               ", \"p90_ns\": " + std::to_string(w.p90_ns) +
               ", \"p99_ns\": " + std::to_string(w.p99_ns) +
               ", \"p999_ns\": " + std::to_string(w.p999_ns) +
               ", \"max_ns\": " + std::to_string(w.max_ns) + "}";
      }
      out += "}, \"counters\": {";
      bool fc = true;
      for (auto const& [k, v] : p.counters) {
        if (!fc)
          out += ", ";
        fc = false;
        out += quote(k) + ": " + std::to_string(v);
      }
      out += "}}";
    }
    return out + "\n  ]";
  }

 private:
  bool m_armed = false;
  std::uint64_t m_epoch = 0;
  std::chrono::steady_clock::time_point m_t0{};
  counter_map m_last_counters;
  latency::histogram_set m_last_hists{};
  std::vector<sample_point> m_series;
};

} // namespace metrics

} // namespace stapl

#endif
