#ifndef STAPL_RUNTIME_TIMER_HPP
#define STAPL_RUNTIME_TIMER_HPP

#include <chrono>

namespace stapl {

/// Simple wall-clock timer used by the benchmark harness
/// (start_timer/stop_timer mirror the kernel of Fig. 24).
class timer {
 public:
  using clock = std::chrono::steady_clock;

  void start() noexcept { m_start = clock::now(); }

  /// Elapsed seconds since start().
  [[nodiscard]] double elapsed() const noexcept
  {
    return std::chrono::duration<double>(clock::now() - m_start).count();
  }

 private:
  clock::time_point m_start{clock::now()};
};

[[nodiscard]] inline timer start_timer() noexcept
{
  timer t;
  t.start();
  return t;
}

[[nodiscard]] inline double stop_timer(timer const& t) noexcept
{
  return t.elapsed();
}

} // namespace stapl

#endif
